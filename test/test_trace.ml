(* Observability: histogram percentile summaries, engine event-ring
   wraparound with span events, span nesting and error handling, and the
   Chrome trace / report exporters (structure, determinism, and timing
   neutrality). *)

open Gem_sim
module Stats = Gem_util.Stats
module J = Gem_util.Jsonx
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime

(* --- Stats.Histogram summaries -------------------------------------------- *)

let test_histogram_empty () =
  let h = Stats.Histogram.create ~buckets:8 ~range:64. in
  let s = Stats.Histogram.summary h in
  Alcotest.(check bool) "p50 nan" true (Float.is_nan s.Stats.Histogram.p50);
  Alcotest.(check bool) "p95 nan" true (Float.is_nan s.Stats.Histogram.p95);
  Alcotest.(check bool) "p99 nan" true (Float.is_nan s.Stats.Histogram.p99);
  Alcotest.(check bool) "max nan" true (Float.is_nan s.Stats.Histogram.max)

let test_histogram_single_bucket () =
  let h = Stats.Histogram.create ~buckets:8 ~range:64. in
  (* All samples land in bucket 0 (width 8); every percentile is its
     midpoint and max is the exact raw value. *)
  List.iter (Stats.Histogram.add h) [ 1.; 2.; 3. ];
  let s = Stats.Histogram.summary h in
  Alcotest.(check (float 1e-9)) "p50 midpoint" 4. s.Stats.Histogram.p50;
  Alcotest.(check (float 1e-9)) "p95 midpoint" 4. s.Stats.Histogram.p95;
  Alcotest.(check (float 1e-9)) "p99 midpoint" 4. s.Stats.Histogram.p99;
  Alcotest.(check (float 1e-9)) "max exact" 3. s.Stats.Histogram.max

let test_histogram_clamped () =
  let h = Stats.Histogram.create ~buckets:4 ~range:40. in
  (* Nine samples in the first bucket, one far beyond the range: the
     outlier clamps into the last bucket but the recorded max stays
     exact. *)
  for _ = 1 to 9 do
    Stats.Histogram.add h 5.
  done;
  Stats.Histogram.add h 1000.;
  let s = Stats.Histogram.summary h in
  Alcotest.(check (float 1e-9)) "p50 in first bucket" 5. s.Stats.Histogram.p50;
  Alcotest.(check (float 1e-9)) "p99 clamped to last bucket midpoint" 35.
    s.Stats.Histogram.p99;
  Alcotest.(check (float 1e-9)) "max exact beyond range" 1000.
    s.Stats.Histogram.max;
  Alcotest.(check int) "count" 10 (Stats.Histogram.count h)

(* --- engine ring wraparound with span events -------------------------------- *)

let span_open ~component ~time ~name ~cat =
  Engine.Span_open { component; time; name; cat; args = [] }

let span_close ~component ~time ~name =
  Engine.Span_close { component; time; name }

let test_ring_wraparound () =
  let e = Engine.create ~trace_capacity:4 ~trace:true () in
  for i = 1 to 3 do
    Engine.emit e
      (span_open ~component:"c" ~time:(10 * i)
         ~name:(Printf.sprintf "s%d" i)
         ~cat:"kernel");
    Engine.emit e
      (span_close ~component:"c" ~time:((10 * i) + 5)
         ~name:(Printf.sprintf "s%d" i))
  done;
  Alcotest.(check int) "total recorded" 6 (Engine.event_count e);
  let evs = Engine.events e in
  Alcotest.(check int) "capacity retained" 4 (List.length evs);
  (* Oldest first: the ring kept the events of spans 2 and 3. *)
  Alcotest.(check (list int)) "times oldest-first" [ 20; 25; 30; 35 ]
    (List.map Engine.event_time evs);
  (* A recorder fed only the surviving ring contents sees closes for
     span 1 never opened: the orphan counter, not a crash. *)
  let r = Span.create () in
  List.iter (Span.on_event r) evs;
  Alcotest.(check int) "ring replay recovers spans" 2 (Span.count r);
  Alcotest.(check int) "no orphans in surviving window" 0 (Span.orphan_closes r)

(* --- span nesting and error handling ---------------------------------------- *)

let test_span_nesting () =
  let r = Span.create () in
  let ev = Span.on_event r in
  ev (span_open ~component:"core0/host" ~time:0 ~name:"net" ~cat:"network");
  ev (span_open ~component:"core0/host" ~time:10 ~name:"l1" ~cat:"layer");
  ev (span_open ~component:"core0/mesh" ~time:20 ~name:"mm" ~cat:"kernel");
  ev (span_close ~component:"core0/mesh" ~time:30 ~name:"mm");
  ev (span_close ~component:"core0/host" ~time:40 ~name:"l1");
  ev (span_close ~component:"core0/host" ~time:50 ~name:"net");
  Alcotest.(check int) "three spans" 3 (Span.count r);
  let net = Span.get r 0 and l1 = Span.get r 1 and mm = Span.get r 2 in
  Alcotest.(check int) "network is root" (-1) net.Span.parent;
  Alcotest.(check int) "layer under network" net.Span.id l1.Span.parent;
  Alcotest.(check int) "kernel under layer" l1.Span.id mm.Span.parent;
  Alcotest.(check int) "kernel t1" 30 mm.Span.t1;
  Alcotest.(check int) "all closed" 0 (Span.open_count r)

let test_span_orphan_and_forced () =
  let r = Span.create () in
  let ev = Span.on_event r in
  (* A close that matches nothing is an orphan. *)
  ev (span_close ~component:"core0/host" ~time:5 ~name:"ghost");
  Alcotest.(check int) "orphan counted" 1 (Span.orphan_closes r);
  (* A close that skips an inner open force-closes it at the closer's
     stamp. *)
  ev (span_open ~component:"core0/host" ~time:10 ~name:"outer" ~cat:"layer");
  ev (span_open ~component:"core0/host" ~time:20 ~name:"inner" ~cat:"kernel");
  ev (span_close ~component:"core0/host" ~time:30 ~name:"outer");
  Alcotest.(check int) "forced close counted" 1 (Span.forced_closes r);
  let inner = Span.get r 1 in
  Alcotest.(check int) "inner forced at closer stamp" 30 inner.Span.t1;
  (* finalize closes whatever is still open, at the horizon. *)
  ev (span_open ~component:"core0/host" ~time:40 ~name:"dangling" ~cat:"layer");
  Span.finalize r ~horizon:99;
  Alcotest.(check int) "nothing open after finalize" 0 (Span.open_count r);
  Alcotest.(check int) "finalize forced it" 2 (Span.forced_closes r);
  Alcotest.(check int) "dangling closed at horizon" 99 (Span.get r 2).Span.t1

let test_span_scopes () =
  (* Interleaved cores keep independent stacks; shared components attach
     to the scope that opened a span most recently. *)
  let r = Span.create () in
  let ev = Span.on_event r in
  ev (span_open ~component:"core0/host" ~time:0 ~name:"l0" ~cat:"layer");
  ev (span_open ~component:"core1/host" ~time:0 ~name:"l1" ~cat:"layer");
  ev (span_open ~component:"core1/mesh" ~time:5 ~name:"k1" ~cat:"kernel");
  ev (span_open ~component:"core0/mesh" ~time:6 ~name:"k0" ~cat:"kernel");
  ev (span_close ~component:"core0/mesh" ~time:9 ~name:"k0");
  ev (span_close ~component:"core1/mesh" ~time:9 ~name:"k1");
  ev (span_close ~component:"core0/host" ~time:10 ~name:"l0");
  ev (span_close ~component:"core1/host" ~time:10 ~name:"l1");
  let by_name n =
    let found = ref None in
    Span.iter r (fun s -> if s.Span.name = n then found := Some s);
    Option.get !found
  in
  Alcotest.(check int) "core0 kernel under core0 layer" (by_name "l0").Span.id
    (by_name "k0").Span.parent;
  Alcotest.(check int) "core1 kernel under core1 layer" (by_name "l1").Span.id
    (by_name "k1").Span.parent;
  Alcotest.(check int) "no forced closes" 0 (Span.forced_closes r)

let test_acquire_spans () =
  let e = Engine.create () in
  let r = Span.attach ~acquire_spans:(fun c -> c = "bus") e in
  Engine.emit e
    (Engine.Acquire { component = "bus"; time = 5; start = 7; finish = 12 });
  Engine.emit e
    (Engine.Acquire { component = "dram"; time = 5; start = 7; finish = 12 });
  Alcotest.(check int) "only predicated component" 1 (Span.count r);
  let s = Span.get r 0 in
  Alcotest.(check string) "cat" "acquire" s.Span.cat;
  Alcotest.(check int) "t0 is service start" 7 s.Span.t0;
  Alcotest.(check int) "t1 is finish" 12 s.Span.t1

(* --- export: chrome structure, hierarchy, determinism, neutrality ----------- *)

let small_model =
  lazy
    (Gem_dnn.Model_zoo.scale_model ~factor:32 Gem_dnn.Model_zoo.mobilenetv2)

let traced_run () =
  let soc = Soc.create Soc_config.default in
  let c = Export.attach (Soc.engine soc) in
  let r =
    Runtime.run soc ~core:0 (Lazy.force small_model)
      ~mode:(Runtime.Accel { im2col_on_accel = true })
  in
  Export.finalize c;
  (c, r)

let test_chrome_structure () =
  let c, _ = traced_run () in
  let json =
    match J.of_string (Export.chrome_string c) with
    | Ok j -> j
    | Error e -> Alcotest.failf "trace does not parse: %s" e
  in
  let events = Option.get (J.to_list json) in
  let with_ph ph =
    List.filter
      (fun ev -> J.member "ph" ev = Some (J.String ph))
      events
  in
  let tracks =
    List.filter
      (fun ev -> J.member "name" ev = Some (J.String "thread_name"))
      (with_ph "M")
  in
  Alcotest.(check bool)
    (Printf.sprintf "at least 4 component tracks (got %d)" (List.length tracks))
    true
    (List.length tracks >= 4);
  let counters =
    List.sort_uniq compare
      (List.filter_map
         (fun ev -> Option.bind (J.member "name" ev) J.to_str)
         (with_ph "C"))
  in
  Alcotest.(check bool)
    (Printf.sprintf "at least 2 counter tracks (got %d)" (List.length counters))
    true
    (List.length counters >= 2);
  Alcotest.(check bool) "has sync slices" true (with_ph "X" <> []);
  Alcotest.(check bool) "has async spans" true (with_ph "b" <> []);
  Alcotest.(check int) "async opens and closes pair up"
    (List.length (with_ph "b"))
    (List.length (with_ph "e"))

let test_span_hierarchy_end_to_end () =
  let c, _ = traced_run () in
  let r = Export.recorder c in
  (* Walk one command span up to the root: command -> kernel -> layer ->
     network. *)
  let cat_of id = (Span.get r id).Span.cat in
  let some_command = ref None in
  Span.iter r (fun s ->
      if s.Span.cat = "command" && !some_command = None then
        some_command := Some s);
  let s = Option.get !some_command in
  let k = s.Span.parent in
  Alcotest.(check string) "command under kernel" "kernel" (cat_of k);
  let l = (Span.get r k).Span.parent in
  Alcotest.(check string) "kernel under layer" "layer" (cat_of l);
  let n = (Span.get r l).Span.parent in
  Alcotest.(check string) "layer under network" "network" (cat_of n);
  Alcotest.(check int) "network is root" (-1) (Span.get r n).Span.parent;
  (* Every span carries an end stamp after finalize. *)
  Span.iter r (fun s ->
      if s.Span.t1 < s.Span.t0 then
        Alcotest.failf "span %s [%s] has no end stamp" s.Span.name s.Span.cat);
  Alcotest.(check int) "clean run forced no closes" 0 (Span.forced_closes r);
  Alcotest.(check int) "clean run orphaned no closes" 0 (Span.orphan_closes r)

let test_chrome_deterministic () =
  let c1, _ = traced_run () in
  let c2, _ = traced_run () in
  Alcotest.(check bool) "byte-identical traces" true
    (String.equal (Export.chrome_string c1) (Export.chrome_string c2))

let test_collector_timing_neutral () =
  let quiet =
    let soc = Soc.create Soc_config.default in
    let r =
      Runtime.run soc ~core:0 (Lazy.force small_model)
        ~mode:(Runtime.Accel { im2col_on_accel = true })
    in
    r.Runtime.r_total_cycles
  in
  let _, r = traced_run () in
  Alcotest.(check int) "collector does not move the clock" quiet
    r.Runtime.r_total_cycles

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_report_renders () =
  let c, _ = traced_run () in
  let report = Export.report c in
  Alcotest.(check bool) "has layer profile" true
    (contains ~sub:"Layer profile" report);
  Alcotest.(check bool) "has queue latency table" true
    (contains ~sub:"Queue latency" report);
  Alcotest.(check bool) "mentions a real layer" true
    (contains ~sub:"conv1" report)

(* --- ring truncation is reported, never silent ------------------------------ *)

let test_dropped_events_reported () =
  (* A 4-slot ring fed 6 events drops the oldest 2 — and must say so in
     both export formats. *)
  let e = Engine.create ~trace_capacity:4 ~trace:true () in
  let c = Export.attach e in
  for i = 1 to 3 do
    Engine.emit e
      (span_open ~component:"core0/host" ~time:(10 * i)
         ~name:(Printf.sprintf "s%d" i)
         ~cat:"layer");
    Engine.emit e
      (span_close ~component:"core0/host" ~time:((10 * i) + 5)
         ~name:(Printf.sprintf "s%d" i))
  done;
  Export.finalize c;
  Alcotest.(check int) "dropped count" 2 (Engine.dropped_events e);
  Alcotest.(check bool) "chrome carries a dropped_events marker" true
    (contains ~sub:"dropped_events" (Export.chrome_string c));
  Alcotest.(check bool) "report calls out the wrapped ring" true
    (contains ~sub:"2 of 6 event(s) dropped" (Export.report c))

let test_dropped_events_absent_when_clean () =
  (* Collector sinks are ring-independent: a default engine that never
     wraps must not grow a marker (existing byte-gates depend on it). *)
  let c, _ = traced_run () in
  Alcotest.(check bool) "no marker in clean trace" false
    (contains ~sub:"dropped_events" (Export.chrome_string c));
  Alcotest.(check bool) "no note in clean report" false
    (contains ~sub:"ring wrapped" (Export.report c))

(* --- streaming chrome writer ------------------------------------------------ *)

let streamed_run () =
  let buf = Buffer.create (1 lsl 16) in
  let soc = Soc.create Soc_config.default in
  let s = Export.Streaming.attach (Soc.engine soc) ~out:(Buffer.add_string buf) in
  let r =
    Runtime.run soc ~core:0 (Lazy.force small_model)
      ~mode:(Runtime.Accel { im2col_on_accel = true })
  in
  Export.Streaming.finish s;
  (Buffer.contents buf, s, r)

let test_streaming_valid_and_paired () =
  let text, s, _ = streamed_run () in
  let json =
    match J.of_string text with
    | Ok j -> j
    | Error e -> Alcotest.failf "streamed trace does not parse: %s" e
  in
  let events = Option.get (J.to_list json) in
  let with_ph ph =
    List.filter (fun ev -> J.member "ph" ev = Some (J.String ph)) events
  in
  Alcotest.(check bool) "events streamed" true
    (Export.Streaming.events_written s > 0);
  Alcotest.(check bool) "has track metadata" true (with_ph "M" <> []);
  Alcotest.(check bool) "has sync slices" true (with_ph "X" <> []);
  Alcotest.(check int) "async opens and closes pair up"
    (List.length (with_ph "b"))
    (List.length (with_ph "e"));
  Alcotest.(check int) "clean run: no orphan closes" 0
    (Export.Streaming.orphan_closes s);
  Alcotest.(check int) "clean run: no forced closes" 0
    (Export.Streaming.forced_closes s)

let test_streaming_deterministic () =
  let a, _, _ = streamed_run () in
  let b, _, _ = streamed_run () in
  Alcotest.(check bool) "byte-identical streamed traces" true
    (String.equal a b)

let test_streaming_timing_neutral () =
  let quiet =
    let soc = Soc.create Soc_config.default in
    let r =
      Runtime.run soc ~core:0 (Lazy.force small_model)
        ~mode:(Runtime.Accel { im2col_on_accel = true })
    in
    r.Runtime.r_total_cycles
  in
  let _, _, r = streamed_run () in
  Alcotest.(check int) "streaming does not move the clock" quiet
    r.Runtime.r_total_cycles

let test_streaming_finish_idempotent () =
  let buf = Buffer.create 1024 in
  let e = Engine.create () in
  let s = Export.Streaming.attach e ~out:(Buffer.add_string buf) in
  Engine.emit e
    (span_open ~component:"core0/host" ~time:1 ~name:"open" ~cat:"layer");
  Export.Streaming.finish s;
  let once = Buffer.contents buf in
  (* The dangling span was force-closed at the horizon. *)
  Alcotest.(check int) "forced at finish" 1 (Export.Streaming.forced_closes s);
  Export.Streaming.finish s;
  Engine.emit e
    (span_open ~component:"core0/host" ~time:2 ~name:"late" ~cat:"layer");
  Alcotest.(check string) "finish twice, events after: no change" once
    (Buffer.contents buf);
  match J.of_string once with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "finished stream does not parse: %s" e

let suite =
  [
    Alcotest.test_case "histogram: empty summary" `Quick test_histogram_empty;
    Alcotest.test_case "histogram: single bucket" `Quick
      test_histogram_single_bucket;
    Alcotest.test_case "histogram: clamped samples" `Quick
      test_histogram_clamped;
    Alcotest.test_case "engine ring: span-event wraparound" `Quick
      test_ring_wraparound;
    Alcotest.test_case "span: nesting and parents" `Quick test_span_nesting;
    Alcotest.test_case "span: orphan and forced closes" `Quick
      test_span_orphan_and_forced;
    Alcotest.test_case "span: per-core scopes" `Quick test_span_scopes;
    Alcotest.test_case "span: acquire predicate" `Quick test_acquire_spans;
    Alcotest.test_case "chrome: structure" `Quick test_chrome_structure;
    Alcotest.test_case "chrome: full hierarchy" `Quick
      test_span_hierarchy_end_to_end;
    Alcotest.test_case "chrome: deterministic" `Quick test_chrome_deterministic;
    Alcotest.test_case "collector: timing neutral" `Quick
      test_collector_timing_neutral;
    Alcotest.test_case "report: renders tables" `Quick test_report_renders;
    Alcotest.test_case "ring: dropped events reported" `Quick
      test_dropped_events_reported;
    Alcotest.test_case "ring: no marker when clean" `Quick
      test_dropped_events_absent_when_clean;
    Alcotest.test_case "streaming: valid and paired" `Quick
      test_streaming_valid_and_paired;
    Alcotest.test_case "streaming: deterministic" `Quick
      test_streaming_deterministic;
    Alcotest.test_case "streaming: timing neutral" `Quick
      test_streaming_timing_neutral;
    Alcotest.test_case "streaming: finish idempotent" `Quick
      test_streaming_finish_idempotent;
  ]
