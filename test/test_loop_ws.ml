(* The LOOP_WS CISC extension: one command executes a whole tiled matmul
   through the hardware sequencer. Checks: bit-exact equivalence with the
   discrete command stream, host-dispatch savings, and encode/decode of
   the new command family. Also: OS-noise failure injection (periodic TLB
   flushes, as context switches would cause — paper Section III-C). *)

open Gem_util
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Kernels = Gem_sw.Kernels
module Isa = Gemmini.Isa

let small_params =
  {
    Gemmini.Params.default with
    mesh_rows = 4;
    mesh_cols = 4;
    sp_capacity_bytes = 4 * 1024;
    sp_banks = 4;
    acc_capacity_bytes = 2 * 1024;
    acc_banks = 2;
  }

let functional_soc () =
  Soc.create
    {
      Soc_config.default with
      functional = true;
      cores = [ { Soc_config.default_core with accel = small_params } ];
    }

let setup_matmul soc core ~m ~k ~n ~seed =
  let rng = Rng.create ~seed in
  let a = Matrix.random rng ~rows:m ~cols:k ~lo:(-16) ~hi:16 in
  let b = Matrix.random rng ~rows:k ~cols:n ~lo:(-8) ~hi:8 in
  let bias = Array.init n (fun _ -> Rng.int_in rng ~lo:(-100) ~hi:100) in
  let a_va = Soc.alloc soc core ~bytes:(m * k) in
  let b_va = Soc.alloc soc core ~bytes:(k * n) in
  let bias_va = Soc.alloc soc core ~bytes:(4 * n) in
  let out_va = Soc.alloc soc core ~bytes:(m * n) in
  Soc.host_write_i8 soc core ~vaddr:a_va (Array.concat (Array.to_list a));
  Soc.host_write_i8 soc core ~vaddr:b_va (Array.concat (Array.to_list b));
  Soc.host_write_i32 soc core ~vaddr:bias_va bias;
  (a_va, b_va, bias_va, out_va)

let qcheck_loop_ws_equivalence =
  let gen =
    QCheck2.Gen.(
      let* m = int_range 1 20 in
      let* k = int_range 1 20 in
      let* n = int_range 1 20 in
      let* seed = int_range 0 100_000 in
      let* with_bias = bool in
      return (m, k, n, seed, with_bias))
  in
  QCheck2.Test.make ~name:"LOOP_WS == discrete command stream (bit-exact)"
    ~count:30 gen (fun (m, k, n, seed, with_bias) ->
      let run use_loop =
        let soc = functional_soc () in
        let core = Soc.core soc 0 in
        let a, b, bias, out = setup_matmul soc core ~m ~k ~n ~seed in
        let bias = if with_bias then Some bias else None in
        let ops =
          (if use_loop then
             Kernels.matmul_loop_ws_ops small_params ?bias
               ~act:Gemmini.Peripheral.Relu ~scale:0.0625 ~a ~b ~out ~m ~k ~n ()
           else
             Kernels.matmul_ops small_params ?bias ~act:Gemmini.Peripheral.Relu
               ~scale:0.0625 ~a ~b ~out ~m ~k ~n ())
          @ [ Kernels.fence ]
        in
        ignore (Soc.run_program soc core (List.to_seq ops));
        Soc.host_read_i8 soc core ~vaddr:out ~n:(m * n)
      in
      run true = run false)

let test_loop_ws_issue_savings () =
  (* With a slow host, the sequencer's 1-cycle micro-ops beat per-command
     RoCC dispatch. *)
  let run use_loop =
    let soc = Soc.create Soc_config.default in
    let core = Soc.core soc 0 in
    Gemmini.Controller.set_issue_cycles (Soc.controller core) 20;
    let a = Soc.alloc soc core ~bytes:(256 * 256) in
    let b = Soc.alloc soc core ~bytes:(256 * 256) in
    let out = Soc.alloc soc core ~bytes:(256 * 256) in
    let p = Gemmini.Params.default in
    let ops =
      (if use_loop then Kernels.matmul_loop_ws_ops p ~a ~b ~out ~m:256 ~k:256 ~n:256 ()
       else Kernels.matmul_ops p ~a ~b ~out ~m:256 ~k:256 ~n:256 ())
      @ [ Kernels.fence ]
    in
    let cycles = Soc.run_program soc core (List.to_seq ops) in
    let s = Gemmini.Controller.stats (Soc.controller core) in
    (cycles, s)
  in
  let loop_cycles, loop_stats = run true in
  let discrete_cycles, discrete_stats = run false in
  Alcotest.(check bool) "few host dispatches" true
    (loop_stats.Gemmini.Controller.insns < 10);
  Alcotest.(check bool) "micro-ops expanded" true
    (loop_stats.Gemmini.Controller.loop_micro_ops > 1000);
  Alcotest.(check int) "same compute work" discrete_stats.Gemmini.Controller.macs
    loop_stats.Gemmini.Controller.macs;
  Alcotest.(check bool)
    (Printf.sprintf "loop faster on a slow host (%d < %d)" loop_cycles discrete_cycles)
    true
    (loop_cycles < discrete_cycles)

let test_loop_ws_requires_config () =
  let soc = Soc.create Soc_config.default in
  let core = Soc.core soc 0 in
  match
    Gemmini.Controller.execute (Soc.controller core)
      (Isa.Loop_ws { Isa.lw_a_stride = 1; lw_b_stride = 1; lw_c_stride = 1; lw_scale = 1.0 })
  with
  | () -> Alcotest.fail "unconfigured loop accepted"
  | exception Gem_sim.Fault.Trap f ->
      Alcotest.(check string)
        "trap cause" "LOOP_WS without LOOP_WS_CONFIG_BOUNDS"
        (Gem_sim.Fault.cause_detail f.Gem_sim.Fault.cause)

let test_loop_ws_encoding () =
  List.iter
    (fun cmd ->
      match Isa.decode (Isa.encode cmd) with
      | Ok cmd' ->
          if not (Isa.equal cmd cmd') then
            Alcotest.failf "roundtrip: %s vs %s" (Isa.to_string cmd) (Isa.to_string cmd')
      | Error e -> Alcotest.failf "decode: %s" e)
    [
      Isa.Loop_ws_bounds
        { Isa.lw_m = 1024; lw_k = 768; lw_n = 3072; lw_has_bias = true; lw_activation = Gemmini.Peripheral.Relu };
      Isa.Loop_ws_addrs { Isa.lw_a = 0x1234_5000; lw_b = 0xFEDC_0000 };
      Isa.Loop_ws_outs { Isa.lw_bias = 0x10_0000; lw_c = 0x20_0000 };
      Isa.Loop_ws { Isa.lw_a_stride = 768; lw_b_stride = 3072; lw_c_stride = 3072; lw_scale = 0.0625 };
    ]

(* --- OS-noise failure injection ----------------------------------------------- *)

let test_context_switch_noise () =
  (* Periodic TLB flushes (what a context switch does to the accelerator's
     translation state) must not affect results, only time. *)
  let run ~flush_every =
    let soc = functional_soc () in
    let core = Soc.core soc 0 in
    let a, b, bias, out = setup_matmul soc core ~m:12 ~k:9 ~n:10 ~seed:33 in
    ignore bias;
    let base_ops =
      Kernels.matmul_ops small_params ~a ~b ~out ~m:12 ~k:9 ~n:10 ()
      @ [ Kernels.fence ]
    in
    let ops =
      match flush_every with
      | None -> base_ops
      | Some n ->
          List.concat
            (List.mapi
               (fun i op -> if i mod n = n - 1 then [ op; Kernels.flush_tlb ] else [ op ])
               base_ops)
    in
    let cycles = Soc.run_program soc core (List.to_seq ops) in
    (Soc.host_read_i8 soc core ~vaddr:out ~n:120, cycles)
  in
  let clean, t_clean = run ~flush_every:None in
  let noisy, t_noisy = run ~flush_every:(Some 5) in
  Alcotest.(check (array int)) "results survive context switches" clean noisy;
  Alcotest.(check bool) "flushes cost time" true (t_noisy > t_clean)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_loop_ws_equivalence;
    Alcotest.test_case "LOOP_WS saves host dispatches" `Quick test_loop_ws_issue_savings;
    Alcotest.test_case "LOOP_WS requires configuration" `Quick test_loop_ws_requires_config;
    Alcotest.test_case "LOOP_WS command encoding" `Quick test_loop_ws_encoding;
    Alcotest.test_case "context-switch TLB flush injection" `Quick test_context_switch_noise;
  ]
