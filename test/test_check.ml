(* The differential-fuzzing harness (lib/check): the golden interpreter
   against a plain reference matmul, hand-written programs through the
   full sim-vs-golden pipeline (WS, OS, residual add, LOOP_WS, trap
   parity on an invalid program), mutated-golden detection power,
   shrinker convergence to a 1-minimal counterexample, and generator
   seed determinism. *)

open Gem_util
module Golden = Gem_check.Golden
module Gen = Gem_check.Gen
module Diff = Gem_check.Diff
module Shrink = Gem_check.Shrink
module Isa = Gemmini.Isa
module La = Gemmini.Local_addr
module P = Gemmini.Peripheral
module Kernels = Gem_sw.Kernels

let small_params =
  {
    Gemmini.Params.default with
    mesh_rows = 4;
    mesh_cols = 4;
    sp_capacity_bytes = 4 * 1024;
    sp_banks = 4;
    acc_capacity_bytes = 2 * 1024;
    acc_banks = 2;
  }

let base = Gen.arena_base
let clamp8 v = if v < -128 then -128 else if v > 127 then 127 else v

let hand_case ?(invalid = false) ~init ~arena_bytes program =
  { Gen.seed = 0; invalid; params = small_params; program; init; arena_bytes }

let check_clean name (r : Diff.report) =
  Alcotest.(check (list string)) name [] r.Diff.divergences

(* A dense 4x4 matmul: A into scratchpad rows 0..3, B into 4..7, WS
   compute into accumulator row 0, store back as int8. *)
let ws_program ~a_off ~b_off ~out_off =
  [
    Isa.Config_ex
      {
        dataflow = `WS;
        activation = P.No_activation;
        sys_shift = 0;
        a_transpose = false;
        b_transpose = false;
      };
    Isa.Config_ld
      { ld_stride_bytes = 4; ld_scale = 1.0; ld_shrunk = false; ld_id = 0 };
    Isa.Mvin
      ( { dram_addr = base + a_off; local = La.scratchpad ~row:0; cols = 4; rows = 4 },
        0 );
    Isa.Mvin
      ( { dram_addr = base + b_off; local = La.scratchpad ~row:4; cols = 4; rows = 4 },
        0 );
    Isa.Preload
      {
        b = La.scratchpad ~row:4;
        c = La.accumulator ~row:0 ();
        b_cols = 4;
        b_rows = 4;
        c_cols = 4;
        c_rows = 4;
      };
    Isa.Compute_preloaded
      {
        a = La.scratchpad ~row:0;
        bd = La.garbage;
        a_cols = 4;
        a_rows = 4;
        bd_cols = 4;
        bd_rows = 4;
      };
    Isa.Config_st
      {
        st_stride_bytes = 4;
        st_activation = P.No_activation;
        st_scale = 1.0;
        st_pool = None;
      };
    Isa.Mvout
      { dram_addr = base + out_off; local = La.accumulator ~row:0 (); cols = 4; rows = 4 };
    Isa.Fence;
  ]

let random_mat rng ~rows ~cols ~lo ~hi =
  Array.init rows (fun _ ->
      Array.init cols (fun _ -> Rng.int_in rng ~lo ~hi))

let mat_bytes m = Array.concat (Array.to_list m)

(* The golden model alone, against a matmul written with no knowledge of
   either executor: the oracle itself has an oracle. *)
let test_golden_matches_reference () =
  let rng = Rng.create ~seed:7 in
  let a = random_mat rng ~rows:4 ~cols:4 ~lo:(-128) ~hi:127 in
  let b = random_mat rng ~rows:4 ~cols:4 ~lo:(-128) ~hi:127 in
  let g = Golden.create small_params in
  Golden.write_host g ~addr:base (mat_bytes a);
  Golden.write_host g ~addr:(base + 16) (mat_bytes b);
  (match Golden.run g (ws_program ~a_off:0 ~b_off:16 ~out_off:32) with
  | None -> ()
  | Some (i, c) ->
      Alcotest.failf "golden trapped at %d: %s" i (Gem_sim.Fault.cause_label c));
  let got = Golden.read_host_i8 g ~addr:(base + 32) ~n:16 in
  let expect =
    Array.init 16 (fun idx ->
        let i = idx / 4 and j = idx mod 4 in
        let acc = ref 0 in
        for kk = 0 to 3 do
          acc := !acc + (a.(i).(kk) * b.(kk).(j))
        done;
        clamp8 !acc)
  in
  Alcotest.(check (array int)) "C = clamp8(A.B)" expect got

let test_diff_handwritten_ws () =
  let rng = Rng.create ~seed:21 in
  let init =
    mat_bytes (random_mat rng ~rows:8 ~cols:4 ~lo:(-128) ~hi:127)
  in
  let case =
    hand_case ~init ~arena_bytes:48 (ws_program ~a_off:0 ~b_off:16 ~out_off:32)
  in
  check_clean "WS divergences" (Diff.run_case case)

(* OS dataflow: the product forms in the mesh's accumulators and is
   flushed to the local accumulator by the fence. *)
let test_diff_handwritten_os () =
  let rng = Rng.create ~seed:22 in
  let init =
    mat_bytes (random_mat rng ~rows:8 ~cols:4 ~lo:(-128) ~hi:127)
  in
  let program =
    [
      Isa.Config_ex
        {
          dataflow = `OS;
          activation = P.No_activation;
          sys_shift = 2;
          a_transpose = false;
          b_transpose = false;
        };
      Isa.Config_ld
        { ld_stride_bytes = 4; ld_scale = 1.0; ld_shrunk = false; ld_id = 0 };
      Isa.Mvin
        ( { dram_addr = base; local = La.scratchpad ~row:0; cols = 4; rows = 4 },
          0 );
      Isa.Mvin
        ( { dram_addr = base + 16; local = La.scratchpad ~row:4; cols = 4; rows = 4 },
          0 );
      Isa.Preload
        {
          b = La.garbage;
          c = La.accumulator ~row:0 ();
          b_cols = 4;
          b_rows = 4;
          c_cols = 4;
          c_rows = 4;
        };
      Isa.Compute_preloaded
        {
          a = La.scratchpad ~row:0;
          bd = La.scratchpad ~row:4;
          a_cols = 4;
          a_rows = 4;
          bd_cols = 4;
          bd_rows = 4;
        };
      Isa.Fence;
      Isa.Config_st
        {
          st_stride_bytes = 4;
          st_activation = P.Relu;
          st_scale = 1.0;
          st_pool = None;
        };
      Isa.Mvout
        { dram_addr = base + 32; local = La.accumulator ~row:0 (); cols = 4; rows = 4 };
      Isa.Fence;
    ]
  in
  let case = hand_case ~init ~arena_bytes:48 program in
  check_clean "OS divergences" (Diff.run_case case)

(* Residual addition: two widening (shrunk) mvins into the same
   accumulator rows, the second with the accumulate flag. *)
let test_diff_resadd () =
  let rng = Rng.create ~seed:23 in
  let init =
    mat_bytes (random_mat rng ~rows:8 ~cols:4 ~lo:(-128) ~hi:127)
  in
  let program =
    [
      Isa.Config_ld
        { ld_stride_bytes = 4; ld_scale = 1.0; ld_shrunk = true; ld_id = 0 };
      Isa.Mvin
        ( { dram_addr = base; local = La.accumulator ~row:0 (); cols = 4; rows = 4 },
          0 );
      Isa.Mvin
        ( {
            dram_addr = base + 16;
            local = La.accumulator ~accumulate:true ~row:0 ();
            cols = 4;
            rows = 4;
          },
          0 );
      Isa.Config_st
        {
          st_stride_bytes = 4;
          st_activation = P.Relu;
          st_scale = 1.0;
          st_pool = None;
        };
      Isa.Mvout
        { dram_addr = base + 32; local = La.accumulator ~row:0 (); cols = 4; rows = 4 };
      Isa.Fence;
    ]
  in
  let case = hand_case ~init ~arena_bytes:48 program in
  check_clean "resadd divergences" (Diff.run_case case)

(* LOOP_WS is never emitted by the random generator, and the golden model
   interprets it as pure linear algebra instead of replaying the
   sequencer — so this hand-written case is the one place the two
   interpretations meet. *)
let test_diff_loop_ws () =
  let m, k, n = (6, 5, 7) in
  let a_off = 0 and b_off = 64 and bias_off = 128 and out_off = 192 in
  let rng = Rng.create ~seed:11 in
  let init = Array.make (out_off + (m * n)) 0 in
  let fill off bytes = Array.blit bytes 0 init off (Array.length bytes) in
  fill a_off (mat_bytes (random_mat rng ~rows:m ~cols:k ~lo:(-128) ~hi:127));
  fill b_off (mat_bytes (random_mat rng ~rows:k ~cols:n ~lo:(-128) ~hi:127));
  for j = 0 to n - 1 do
    let v = Rng.int_in rng ~lo:(-3000) ~hi:3000 in
    for byte = 0 to 3 do
      init.(bias_off + (4 * j) + byte) <- (v asr (8 * byte)) land 0xFF
    done
  done;
  let ops =
    Kernels.matmul_loop_ws_ops small_params ~bias:(base + bias_off) ~act:P.Relu
      ~scale:0.0625 ~a:(base + a_off) ~b:(base + b_off) ~out:(base + out_off)
      ~m ~k ~n ()
    @ [ Kernels.fence ]
  in
  let program =
    List.filter_map
      (function Gem_soc.Soc.Insn i -> Some i | _ -> None)
      ops
  in
  let case = hand_case ~init ~arena_bytes:(Array.length init) program in
  check_clean "LOOP_WS divergences" (Diff.run_case case)

(* An invalid program must trap in both executors at the same command
   index with the same cause. *)
let test_invalid_trap_parity () =
  let sp_rows =
    small_params.Gemmini.Params.sp_capacity_bytes / 4 (* dim=4, int8 *)
  in
  let program =
    [
      Isa.Config_ld
        { ld_stride_bytes = 4; ld_scale = 1.0; ld_shrunk = false; ld_id = 0 };
      Isa.Mvin
        ( {
            dram_addr = base;
            local = La.scratchpad ~row:(sp_rows - 1);
            cols = 4;
            rows = 2;
          },
          0 );
      Isa.Fence;
    ]
  in
  let case = hand_case ~invalid:true ~init:(Array.make 8 1) ~arena_bytes:8 program in
  let r = Diff.run_case case in
  check_clean "trap-parity divergences" r;
  (match r.Diff.sim_trap with
  | Some (1, "local-oob") -> ()
  | Some (i, l) -> Alcotest.failf "sim trapped at %d with %s" i l
  | None -> Alcotest.fail "sim did not trap");
  Alcotest.(check bool)
    "golden trap matches" true
    (r.Diff.gold_trap = r.Diff.sim_trap)

(* The self-test that gives the whole harness its teeth: each deliberate
   golden-model bug must be caught within a small seed budget. *)
let detection_seed mutate =
  let rec go seed =
    if seed > 60 then None
    else
      let case = Gen.case ~force_invalid:false ~seed () in
      let r = Diff.run_case ~mutate case in
      if r.Diff.divergences <> [] then Some (seed, case) else go (seed + 1)
  in
  go 1

let test_mutation_detection () =
  List.iter
    (fun mutate ->
      match detection_seed mutate with
      | Some _ -> ()
      | None ->
          Alcotest.failf "mutation %s not detected in seeds 1..60"
            (Golden.mutation_name mutate))
    Golden.mutations

(* Shrinking a mutated-golden counterexample must converge to a
   1-minimal program: still diverging, and no single command removable. *)
let test_shrinker_converges () =
  let mutate = Golden.Dropped_activation in
  match detection_seed mutate with
  | None -> Alcotest.fail "no counterexample to shrink"
  | Some (_, case) ->
      let shrunk = Shrink.minimize_case ~mutate case in
      let n0 = List.length case.Gen.program in
      let n1 = List.length shrunk.Gen.program in
      Alcotest.(check bool) "no growth" true (n1 <= n0);
      Alcotest.(check bool)
        "still diverges" true
        ((Diff.run_case ~mutate shrunk).Diff.divergences <> []);
      List.iteri
        (fun drop _ ->
          let program =
            List.filteri (fun i _ -> i <> drop) shrunk.Gen.program
          in
          let r = Diff.run_case ~mutate { shrunk with Gen.program } in
          Alcotest.(check (list string))
            (Printf.sprintf "1-minimal: dropping command %d passes" drop)
            [] r.Diff.divergences)
        shrunk.Gen.program

let test_seed_determinism () =
  let c1 = Gen.case ~seed:123 () and c2 = Gen.case ~seed:123 () in
  Alcotest.(check bool)
    "same program" true
    (List.length c1.Gen.program = List.length c2.Gen.program
    && List.for_all2 Isa.equal c1.Gen.program c2.Gen.program);
  Alcotest.(check (array int)) "same init" c1.Gen.init c2.Gen.init;
  Alcotest.(check bool) "same mode" c1.Gen.invalid c2.Gen.invalid;
  Alcotest.(check int) "same arena" c1.Gen.arena_bytes c2.Gen.arena_bytes

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_repro_line () =
  let line = Diff.repro (Gen.case ~seed:5 ()) in
  Alcotest.(check bool) "repro names the seed" true (contains ~sub:"--seed 5" line)

(* A fresh batch of seeds, disjoint from the CI fuzz budget. *)
let test_clean_batch () =
  let invalid = ref 0 in
  for seed = 1001 to 1040 do
    let case = Gen.case ~seed () in
    if case.Gen.invalid then incr invalid;
    let r = Diff.run_case case in
    if r.Diff.divergences <> [] then
      Alcotest.failf "seed %d diverged: %s" seed
        (String.concat " | " r.Diff.divergences)
  done;
  Alcotest.(check bool) "batch exercises invalid mode" true (!invalid > 0)

let suite =
  [
    Alcotest.test_case "golden WS matmul matches plain reference" `Quick
      test_golden_matches_reference;
    Alcotest.test_case "diff: hand-written WS program agrees" `Quick
      test_diff_handwritten_ws;
    Alcotest.test_case "diff: hand-written OS program agrees" `Quick
      test_diff_handwritten_os;
    Alcotest.test_case "diff: residual-add program agrees" `Quick
      test_diff_resadd;
    Alcotest.test_case "diff: LOOP_WS program agrees" `Quick test_diff_loop_ws;
    Alcotest.test_case "invalid program traps identically" `Quick
      test_invalid_trap_parity;
    Alcotest.test_case "mutated golden is detected (all mutations)" `Quick
      test_mutation_detection;
    Alcotest.test_case "shrinker converges to a 1-minimal program" `Quick
      test_shrinker_converges;
    Alcotest.test_case "equal seeds give equal cases" `Quick
      test_seed_determinism;
    Alcotest.test_case "repro line replays the seed" `Quick test_repro_line;
    Alcotest.test_case "40 fresh seeds: zero divergences" `Quick
      test_clean_batch;
  ]
