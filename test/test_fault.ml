(* The fault subsystem: structured traps, the PTW occupancy regression,
   ISA validation edges, fuzzed command streams, the runtime's recovery
   policies (Retry_map / Degrade / watchdog), and deterministic fault
   injection. *)

open Gem_util
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime
module Isa = Gemmini.Isa
module Local_addr = Gemmini.Local_addr
module Fault = Gem_sim.Fault
module Engine = Gem_sim.Engine

let single_core_soc () = Soc.create Soc_config.default

let squeezenet8 =
  Gem_dnn.Model_zoo.scale_model ~factor:8 Gem_dnn.Model_zoo.squeezenet

let accel_mode = Runtime.Accel { im2col_on_accel = true }

(* --- satellite: a faulting PTW walk must not occupy the walker ------------- *)

let test_ptw_fault_no_occupancy () =
  let engine = Engine.create () in
  let pt = Gem_vm.Page_table.create ~node_region_base:0x1000_0000 () in
  Gem_vm.Page_table.map pt ~vpn:1 ~ppn:50;
  let ptw =
    Gem_vm.Ptw.create ~engine ~name:"ptw" ~page_table:pt
      ~mem_read:(fun ~now ~paddr:_ ~bytes:_ -> now + 20)
      ()
  in
  (match Gem_vm.Ptw.walk ptw ~now:0 ~vpn:0x777 with
  | _ -> Alcotest.fail "walk of unmapped vpn must fault"
  | exception Gem_vm.Ptw.Page_fault 0x777 -> ());
  let ptw_stat () =
    List.find (fun s -> s.Engine.stat_name = "ptw") (Engine.stats engine)
  in
  Alcotest.(check int) "faulting walk left the walker free" 0
    (ptw_stat ()).Engine.stat_busy;
  (* A subsequent walk starts immediately: the faulting walk must not
     have committed a reservation on the shared walker. *)
  let _, finish = Gem_vm.Ptw.walk ptw ~now:0 ~vpn:1 in
  let s = ptw_stat () in
  Alcotest.(check int) "no queueing behind the faulted walk" 0 s.Engine.stat_wait;
  Alcotest.(check int) "only the successful walk is charged" finish
    s.Engine.stat_busy

(* --- Isa.validate edges ---------------------------------------------------- *)

let p = Gemmini.Params.default (* dim 16 *)

let check_cause name cmd expect =
  match Isa.validate p cmd with
  | Ok () -> Alcotest.failf "%s: expected %s, got Ok" name expect
  | Error cause ->
      Alcotest.(check string) name expect (Fault.cause_label cause)

let check_ok name cmd =
  match Isa.validate p cmd with
  | Ok () -> ()
  | Error cause -> Alcotest.failf "%s: rejected: %s" name (Fault.cause_detail cause)

let mvin ?(row = 0) ?(cols = 16) ?(rows = 16) ?(dram = 0x10000) () =
  Isa.Mvin
    ({ Isa.dram_addr = dram; local = Local_addr.scratchpad ~row; cols; rows }, 0)

let test_validate_edges () =
  check_ok "plain mvin" (mvin ());
  check_ok "wide mvin (4 blocks)" (mvin ~cols:(4 * 16) ());
  check_cause "mvin 0 cols" (mvin ~cols:0 ()) "illegal-inst";
  check_cause "mvin too many cols" (mvin ~cols:65 ()) "illegal-inst";
  check_cause "mvin rows > dim" (mvin ~rows:17 ()) "illegal-inst";
  check_cause "mvin negative dram addr" (mvin ~dram:(-1) ()) "illegal-inst";
  check_cause "mvin dram addr > 2^48" (mvin ~dram:(1 lsl 48) ()) "illegal-inst";
  check_cause "mvin to garbage"
    (Isa.Mvin
       ( { Isa.dram_addr = 0; local = Local_addr.garbage; cols = 1; rows = 1 },
         0 ))
    "illegal-inst";
  (* Last block row must stay inside the scratchpad. *)
  let sp_rows = Gemmini.Params.sp_rows p in
  check_ok "mvin at top of scratchpad" (mvin ~row:(sp_rows - 16) ());
  check_cause "mvin over scratchpad end" (mvin ~row:(sp_rows - 15) ()) "local-oob";
  check_cause "mvin channel 3"
    (Isa.Mvin
       ({ Isa.dram_addr = 0; local = Local_addr.scratchpad ~row:0; cols = 1; rows = 1 }, 3))
    "illegal-inst";
  check_cause "config_ld bad channel"
    (Isa.Config_ld { ld_stride_bytes = 0; ld_scale = 1.0; ld_shrunk = false; ld_id = 3 })
    "illegal-inst";
  check_cause "config_ld NaN scale"
    (Isa.Config_ld { ld_stride_bytes = 0; ld_scale = Float.nan; ld_shrunk = false; ld_id = 0 })
    "acc-overflow";
  check_cause "config_ex shift 64"
    (Isa.Config_ex
       { dataflow = `WS; activation = Gemmini.Peripheral.No_activation;
         sys_shift = 64; a_transpose = false; b_transpose = false })
    "illegal-inst";
  check_cause "preload c_rows > dim"
    (Isa.Preload
       { b = Local_addr.scratchpad ~row:0; c = Local_addr.accumulator ~row:0 ();
         b_cols = 16; b_rows = 16; c_cols = 16; c_rows = 17 })
    "illegal-inst";
  check_cause "loop bounds zero"
    (Isa.Loop_ws_bounds
       { lw_m = 0; lw_k = 1; lw_n = 1; lw_has_bias = false;
         lw_activation = Gemmini.Peripheral.No_activation })
    "illegal-inst";
  check_ok "fence" Isa.Fence;
  check_ok "flush" Isa.Flush

(* --- fuzz: malformed streams only ever trap -------------------------------- *)

let random_local rng =
  match Rng.int rng 6 with
  | 0 -> Local_addr.garbage
  | 1 -> Local_addr.scratchpad ~row:(Rng.int rng 32768)
  | 2 ->
      Local_addr.accumulator ~accumulate:(Rng.bool rng)
        ~row:(Rng.int rng 8192) ()
  | 3 -> Local_addr.scratchpad ~row:(Rng.int rng 64)
  | 4 -> Local_addr.accumulator ~row:(Rng.int rng 64) ()
  | _ -> Local_addr.of_bits (Rng.int rng 0x4000_0000)

let random_dram rng ~base =
  match Rng.int rng 4 with
  | 0 -> base + Rng.int rng 4096
  | 1 -> Rng.int rng 0x100_0000
  | 2 -> (1 lsl 48) + Rng.int rng 1024 (* beyond the 48-bit VA space *)
  | _ -> Rng.int rng (1 lsl 30)

(* Mostly-plausible dims with deliberate poison values. *)
let random_dim rng =
  match Rng.int rng 8 with
  | 0 -> 0
  | 1 -> Rng.int_in rng ~lo:65 ~hi:300
  | _ -> Rng.int_in rng ~lo:1 ~hi:16

let random_scale rng =
  Rng.pick rng [| 1.0; 0.0625; -2.0; Float.nan; Float.infinity |]

let random_cmd rng ~base =
  match Rng.int rng 14 with
  | 0 ->
      Isa.Config_ex
        { dataflow = (if Rng.bool rng then `WS else `OS);
          activation = Gemmini.Peripheral.No_activation;
          sys_shift = Rng.int rng 80;
          a_transpose = false; b_transpose = false }
  | 1 ->
      Isa.Config_ld
        { ld_stride_bytes = Rng.int rng 0x2_0000; ld_scale = random_scale rng;
          ld_shrunk = Rng.bool rng; ld_id = Rng.int rng 4 }
  | 2 ->
      Isa.Config_st
        { st_stride_bytes = Rng.int rng 0x2_0000;
          st_activation = Gemmini.Peripheral.No_activation;
          st_scale = random_scale rng; st_pool = None }
  | 3 | 4 ->
      Isa.Mvin
        ( { Isa.dram_addr = random_dram rng ~base; local = random_local rng;
            cols = random_dim rng; rows = random_dim rng },
          Rng.int rng 4 )
  | 5 | 6 ->
      Isa.Mvout
        { Isa.dram_addr = random_dram rng ~base; local = random_local rng;
          cols = random_dim rng; rows = random_dim rng }
  | 7 ->
      Isa.Preload
        { b = random_local rng; c = random_local rng;
          b_cols = random_dim rng; b_rows = random_dim rng;
          c_cols = random_dim rng; c_rows = random_dim rng }
  | 8 | 9 ->
      let args =
        { Isa.a = random_local rng; bd = random_local rng;
          a_cols = random_dim rng; a_rows = random_dim rng;
          bd_cols = random_dim rng; bd_rows = random_dim rng }
      in
      if Rng.bool rng then Isa.Compute_preloaded args
      else Isa.Compute_accumulated args
  | 10 ->
      (* Bounds capped well below 2^16: an accepted LOOP_WS expands into
         real micro-ops, so keep the tile count small. *)
      Isa.Loop_ws_bounds
        { lw_m = Rng.int_in rng ~lo:0 ~hi:100; lw_k = Rng.int_in rng ~lo:0 ~hi:100;
          lw_n = Rng.int_in rng ~lo:0 ~hi:100; lw_has_bias = Rng.bool rng;
          lw_activation = Gemmini.Peripheral.No_activation }
  | 11 ->
      Isa.Loop_ws_addrs { lw_a = random_dram rng ~base; lw_b = random_dram rng ~base }
  | 12 ->
      Isa.Loop_ws
        { lw_a_stride = Rng.int rng 200; lw_b_stride = Rng.int rng 200;
          lw_c_stride = Rng.int rng 200; lw_scale = random_scale rng }
  | _ -> if Rng.bool rng then Isa.Fence else Isa.Flush

let test_fuzz_streams () =
  let soc = single_core_soc () in
  let core = Soc.core soc 0 in
  let base = Soc.alloc soc core ~bytes:(1 lsl 20) in
  let ctrl = Soc.controller core in
  let rng = Rng.create ~seed:0xF0F0 in
  let traps = ref 0 and oks = ref 0 in
  for _stream = 1 to 1000 do
    for _i = 1 to 8 do
      let cmd = random_cmd rng ~base in
      match Gemmini.Controller.execute ctrl cmd with
      | () -> incr oks
      | exception Fault.Trap f ->
          incr traps;
          (* Every trap names its core, component and cycle. *)
          Alcotest.(check int) "trap core" 0 f.Fault.core;
          if String.length f.Fault.component = 0 then
            Alcotest.fail "trap without component";
          if f.Fault.cycle < 0 then Alcotest.fail "trap with negative cycle"
      | exception e ->
          Alcotest.failf "unstructured escape from %s: %s" (Isa.to_string cmd)
            (Printexc.to_string e)
    done
  done;
  Alcotest.(check bool) "fuzz saw traps" true (!traps > 1000);
  Alcotest.(check bool) "fuzz saw successes" true (!oks > 100)

(* --- recovery policies ------------------------------------------------------ *)

let unmap_every soc core ~nth =
  let lo, hi = Soc.va_extent core in
  let page = Gem_vm.Page_table.page_size in
  let n = ref 0 in
  let va = ref lo in
  while !va < hi do
    if !n mod nth = 0 then ignore (Soc.unmap_page soc core ~vaddr:!va);
    incr n;
    va := !va + page
  done

let test_retry_map_resnet () =
  (* Full ResNet timing run starting with a hole-ridden address space:
     Retry_map's page-fault handler must carry it to completion. *)
  let model = Gem_dnn.Model_zoo.scale_model ~factor:8 Gem_dnn.Model_zoo.resnet50 in
  let soc = single_core_soc () in
  let r =
    Runtime.run ~policy:Runtime.Retry_map
      ~prepare:(fun core -> unmap_every soc core ~nth:5)
      soc ~core:0 model ~mode:accel_mode
  in
  Alcotest.(check bool) "run completed" true (r.Runtime.r_total_cycles > 0);
  Alcotest.(check bool) "page faults recovered" true
    (List.length r.Runtime.r_faults > 10);
  List.iter
    (fun fr ->
      Alcotest.(check string) "every action is a remap" "remap" fr.Runtime.fr_action;
      Alcotest.(check string) "every cause is a page fault" "page-fault"
        (Fault.cause_label fr.Runtime.fr_fault.Fault.cause))
    r.Runtime.r_faults;
  (* Recovery costs cycles but converges to the same layer structure. *)
  let clean =
    Runtime.run (single_core_soc ()) ~core:0 model ~mode:accel_mode
  in
  Alcotest.(check int) "same layer count"
    (List.length clean.Runtime.r_layers)
    (List.length r.Runtime.r_layers);
  (* No cycle-count ordering is asserted between the two runs: an aborted
     DMA burst's L2 line fills survive the trap (speculative fills, as on
     real hardware), so the retried rows can hit where the clean run
     missed — recovery overhead and cache warming pull in opposite
     directions. *)
  ignore clean.Runtime.r_total_cycles

let test_degrade_completes () =
  (* Unmap the network input: the first layer's first mvin traps, the
     layer degrades to the CPU kernel, and the run still completes. *)
  let soc = single_core_soc () in
  let r =
    Runtime.run ~policy:Runtime.Degrade
      ~prepare:(fun core ->
        let lo, _ = Soc.va_extent core in
        ignore (Soc.unmap_page soc core ~vaddr:lo))
      soc ~core:0 squeezenet8 ~mode:accel_mode
  in
  Alcotest.(check bool) "run completed" true (r.Runtime.r_total_cycles > 0);
  (match r.Runtime.r_faults with
  | [] -> Alcotest.fail "expected a degrade record"
  | fr :: _ ->
      Alcotest.(check string) "action" "degrade" fr.Runtime.fr_action;
      Alcotest.(check string) "cause" "page-fault"
        (Fault.cause_label fr.Runtime.fr_fault.Fault.cause));
  Alcotest.(check int) "all layers accounted"
    (List.length squeezenet8.Gem_dnn.Layer.layers)
    (List.length r.Runtime.r_layers)

let test_watchdog () =
  (* An absurdly tight per-layer budget fires the watchdog. Abort
     propagates the trap; Degrade absorbs it and finishes the run. *)
  (match
     Runtime.run ~watchdog:50 (single_core_soc ()) ~core:0 squeezenet8
       ~mode:accel_mode
   with
  | _ -> Alcotest.fail "watchdog under Abort must raise"
  | exception Fault.Trap f ->
      Alcotest.(check string) "cause" "watchdog-timeout"
        (Fault.cause_label f.Fault.cause));
  let r =
    Runtime.run ~policy:Runtime.Degrade ~watchdog:50 (single_core_soc ())
      ~core:0 squeezenet8 ~mode:accel_mode
  in
  Alcotest.(check bool) "degrade absorbs the watchdog" true
    (r.Runtime.r_total_cycles > 0);
  Alcotest.(check bool) "timeouts recorded" true
    (List.exists
       (fun fr ->
         Fault.cause_label fr.Runtime.fr_fault.Fault.cause = "watchdog-timeout")
       r.Runtime.r_faults)

(* --- deterministic injection ------------------------------------------------ *)

let fault_trace r =
  List.map
    (fun fr -> fr.Runtime.fr_action ^ " " ^ Fault.to_string fr.Runtime.fr_fault)
    r.Runtime.r_faults

let injected_run ~seed =
  let soc = single_core_soc () in
  Soc.arm_injection soc ~seed ~rate:0.0005;
  let r =
    Runtime.run ~policy:Runtime.Retry_map soc ~core:0 squeezenet8
      ~mode:accel_mode
  in
  (r.Runtime.r_total_cycles, fault_trace r)

let test_injection_determinism () =
  let c1, t1 = injected_run ~seed:42 in
  let c2, t2 = injected_run ~seed:42 in
  Alcotest.(check bool) "injection fired" true (List.length t1 > 0);
  Alcotest.(check (list string)) "same seed, same fault trace" t1 t2;
  Alcotest.(check int) "same seed, same final cycle count" c1 c2

let injected_dual_run ~seed =
  let soc = Soc.create Soc_config.dual_core in
  Soc.arm_injection soc ~seed ~rate:0.0005;
  let rs =
    Runtime.run_parallel ~policy:Runtime.Retry_map soc
      [| (squeezenet8, accel_mode); (squeezenet8, accel_mode) |]
  in
  ( Array.to_list (Array.map (fun r -> r.Runtime.r_total_cycles) rs),
    List.concat_map fault_trace (Array.to_list rs) )

let test_dual_core_injection_determinism () =
  let c1, t1 = injected_dual_run ~seed:7 in
  let c2, t2 = injected_dual_run ~seed:7 in
  Alcotest.(check bool) "injection fired on both cores" true
    (List.length t1 > 0);
  Alcotest.(check (list string)) "dual-core fault traces match" t1 t2;
  Alcotest.(check (list int)) "dual-core finish times match" c1 c2

(* --- injection across checkpoint/restore ------------------------------------ *)

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let test_injection_restore_determinism () =
  (* A seeded injected run interrupted mid-network and restored into a
     fresh SoC must trip the exact same faults at the exact same cycles:
     the plan's RNG cursor rides in the snapshot, so the remaining trace
     is precisely the uninterrupted run's suffix. *)
  let soc1 = single_core_soc () in
  Soc.arm_injection soc1 ~seed:42 ~rate:0.0005;
  let r1 =
    Runtime.run ~policy:Runtime.Retry_map soc1 ~core:0 squeezenet8
      ~mode:accel_mode
  in
  let t1 = fault_trace r1 in
  let snap1 = Jsonx.to_string (Soc.snapshot soc1) in
  let k = List.length squeezenet8.Gem_dnn.Layer.layers / 2 in
  let soc2 = single_core_soc () in
  Soc.arm_injection soc2 ~seed:42 ~rate:0.0005;
  let mid = ref None in
  let _ =
    Runtime.run ~policy:Runtime.Retry_map
      ~on_layer:(fun ~layer ~records ~finish ->
        if layer = k then mid := Some (records, finish, Soc.snapshot soc2))
      soc2 ~core:0 squeezenet8 ~mode:accel_mode
  in
  let records, finish, soc_json =
    match !mid with
    | Some v -> v
    | None -> Alcotest.failf "no checkpoint captured at layer %d" k
  in
  (* No arm_injection on the fresh SoC: the armed plan (cursor included)
     is part of the snapshot being restored. *)
  let soc3 = single_core_soc () in
  let r3 =
    Runtime.run ~policy:Runtime.Retry_map
      ~prepare:(fun _ -> Soc.restore soc3 soc_json)
      ~start_layer:(k + 1) ~resume:(records, finish) soc3 ~core:0 squeezenet8
      ~mode:accel_mode
  in
  let t3 = fault_trace r3 in
  Alcotest.(check int) "same final cycle count" r1.Runtime.r_total_cycles
    r3.Runtime.r_total_cycles;
  Alcotest.(check bool) "faults fired after the restore point" true
    (List.length t3 > 0);
  Alcotest.(check (list string))
    "restored run trips the same faults at the same cycles"
    (drop (List.length t1 - List.length t3) t1)
    t3;
  Alcotest.(check string) "final SoC state byte-identical" snap1
    (Jsonx.to_string (Soc.snapshot soc3))

(* --- span hygiene on abort paths --------------------------------------------- *)

module Span = Gem_sim.Span

let network_span rc =
  List.find_opt (fun s -> s.Span.cat = "network") (Span.to_list rc)

let test_degrade_final_layer_closes_network_span () =
  (* A watchdog trap fires on every layer — the final one included. The
     Degrade handler must still emit the network-close marker, and clean
     span accounting must hold: nothing orphaned, nothing left open. *)
  let soc = single_core_soc () in
  let rc = Span.attach (Soc.engine soc) in
  let r =
    Runtime.run ~policy:Runtime.Degrade ~watchdog:50 soc ~core:0 squeezenet8
      ~mode:accel_mode
  in
  Alcotest.(check bool) "degraded run completed" true
    (r.Runtime.r_total_cycles > 0);
  (match network_span rc with
  | None -> Alcotest.fail "network span missing"
  | Some s ->
      Alcotest.(check bool) "network span closed" true (s.Span.t1 >= 0));
  Alcotest.(check int) "no orphan closes" 0 (Span.orphan_closes rc);
  Alcotest.(check int) "no span left open" 0 (Span.open_count rc)

let test_abort_closes_network_span () =
  (* When a trap escapes the policy entirely, the runtime closes the
     still-open layer and network spans at the abort horizon before
     re-raising, so an aborted trace is still a well-formed tree. *)
  let soc = single_core_soc () in
  let rc = Span.attach (Soc.engine soc) in
  (match Runtime.run ~watchdog:50 soc ~core:0 squeezenet8 ~mode:accel_mode with
  | _ -> Alcotest.fail "watchdog under Abort must raise"
  | exception Fault.Trap _ -> ());
  (match network_span rc with
  | None -> Alcotest.fail "network span missing"
  | Some s ->
      Alcotest.(check bool) "network span closed on abort" true
        (s.Span.t1 >= 0));
  Alcotest.(check int) "no orphan closes" 0 (Span.orphan_closes rc);
  Alcotest.(check int) "no span left open" 0 (Span.open_count rc)

let test_clean_run_span_accounting () =
  (* Guard rails for the abort-path closer: a clean run must not pick up
     spurious closes from it. *)
  let soc = single_core_soc () in
  let rc = Span.attach (Soc.engine soc) in
  let _ = Runtime.run soc ~core:0 squeezenet8 ~mode:accel_mode in
  Alcotest.(check int) "no orphan closes" 0 (Span.orphan_closes rc);
  Alcotest.(check int) "no forced closes" 0 (Span.forced_closes rc);
  Alcotest.(check int) "no span left open" 0 (Span.open_count rc)

(* --- profile integration ---------------------------------------------------- *)

let test_profile_faults_column () =
  (* Clean run: the Faults column exists and is all zero. *)
  let soc = single_core_soc () in
  let r = Runtime.run soc ~core:0 squeezenet8 ~mode:accel_mode in
  Alcotest.(check bool) "clean run has no faults" true
    (r.Runtime.r_faults = []);
  List.iter
    (fun s -> Alcotest.(check int) ("clean " ^ s.Engine.stat_name) 0 s.Engine.stat_faults)
    r.Runtime.r_profile;
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let table = Gem_util.Table.render (Engine.utilization_table (Soc.engine soc) ()) in
  Alcotest.(check bool) "profile has a Faults column" true
    (contains ~needle:"Faults" table);
  (* Injected run: counted traps appear against their components. *)
  let soc = single_core_soc () in
  Soc.arm_injection soc ~seed:42 ~rate:0.0005;
  let r =
    Runtime.run ~policy:Runtime.Retry_map soc ~core:0 squeezenet8
      ~mode:accel_mode
  in
  let counted =
    List.fold_left (fun acc s -> acc + s.Engine.stat_faults) 0 r.Runtime.r_profile
  in
  Alcotest.(check int) "profile fault counts cover every handled trap"
    (List.length r.Runtime.r_faults) counted;
  Alcotest.(check int) "engine total agrees"
    counted
    (Engine.total_faults (Soc.engine soc))

let suite =
  [
    Alcotest.test_case "PTW: faulting walk leaves walker free" `Quick
      test_ptw_fault_no_occupancy;
    Alcotest.test_case "Isa.validate edges" `Quick test_validate_edges;
    Alcotest.test_case "fuzz: 1000 malformed streams only trap" `Quick
      test_fuzz_streams;
    Alcotest.test_case "Retry_map completes ResNet with unmapped pages" `Quick
      test_retry_map_resnet;
    Alcotest.test_case "Degrade completes after a forced trap" `Quick
      test_degrade_completes;
    Alcotest.test_case "watchdog timeout" `Quick test_watchdog;
    Alcotest.test_case "injection determinism (single core)" `Quick
      test_injection_determinism;
    Alcotest.test_case "injection determinism (dual core)" `Quick
      test_dual_core_injection_determinism;
    Alcotest.test_case "injection determinism across restore" `Quick
      test_injection_restore_determinism;
    Alcotest.test_case "Degrade on final layer closes network span" `Quick
      test_degrade_final_layer_closes_network_span;
    Alcotest.test_case "abort path closes network span" `Quick
      test_abort_closes_network_span;
    Alcotest.test_case "clean run span accounting" `Quick
      test_clean_run_span_accounting;
    Alcotest.test_case "profile faults column" `Quick test_profile_faults_column;
  ]
