(* The two codegen artifacts that previously had no unit tests: the
   generated C header (gemmini_params.h, paper Section III-B) and the
   Fig. 6 area-breakdown / floorplan rendering. *)

module Params = Gemmini.Params
module Header_gen = Gemmini.Header_gen
module Floorplan = Gemmini.Floorplan
module Synthesis = Gemmini.Synthesis
module Table = Gem_util.Table

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let lookup defines key =
  match List.assoc_opt key defines with
  | Some v -> v
  | None -> Alcotest.failf "missing #define %s" key

let test_defines_consistency () =
  let p = Params.validate_exn Params.default in
  let d = Header_gen.defines p in
  Alcotest.(check string) "DIM" (string_of_int (Params.dim p)) (lookup d "DIM");
  Alcotest.(check string)
    "BANK_NUM" (string_of_int p.Params.sp_banks) (lookup d "BANK_NUM");
  Alcotest.(check string)
    "BANK_ROWS"
    (string_of_int (Params.sp_rows_per_bank p))
    (lookup d "BANK_ROWS");
  Alcotest.(check string)
    "ACC_ROWS" (string_of_int (Params.acc_rows p)) (lookup d "ACC_ROWS");
  Alcotest.(check string)
    "MAX_BLOCK_LEN"
    (string_of_int (max 1 (64 / Params.sp_row_bytes p)))
    (lookup d "MAX_BLOCK_LEN");
  (* The default instance supports both dataflows and 8-bit inputs. *)
  Alcotest.(check string) "DATAFLOW_WS" "1" (lookup d "DATAFLOW_WS");
  Alcotest.(check string) "DATAFLOW_OS" "1" (lookup d "DATAFLOW_OS");
  Alcotest.(check string) "INPUT_BITS" "8" (lookup d "INPUT_BITS");
  Alcotest.(check string) "ACC_BITS" "32" (lookup d "ACC_BITS")

let test_generate_guard () =
  let p = Params.default in
  let header = Header_gen.generate p in
  Alcotest.(check bool)
    "default guard opens" true
    (contains ~sub:"#ifndef GEMMINI_PARAMS_H" header);
  Alcotest.(check bool)
    "default guard defined" true
    (contains ~sub:"#define GEMMINI_PARAMS_H" header);
  let custom = Header_gen.generate ~guard:"MY_INSTANCE_H" p in
  Alcotest.(check bool)
    "custom guard used" true
    (contains ~sub:"#ifndef MY_INSTANCE_H" custom);
  Alcotest.(check bool)
    "custom guard closes" true
    (contains ~sub:"#endif // MY_INSTANCE_H" custom)

let test_elem_t_range_int8_only () =
  let int8 = Header_gen.generate Params.default in
  Alcotest.(check bool)
    "int8 has ELEM_T_MAX 127" true
    (contains ~sub:"#define ELEM_T_MAX 127" int8);
  Alcotest.(check bool)
    "int8 has ELEM_T_MIN -128" true
    (contains ~sub:"#define ELEM_T_MIN -128" int8);
  let fp =
    Header_gen.generate
      {
        Params.default with
        Params.input_type = Gemmini.Dtype.Fp32;
        acc_type = Gemmini.Dtype.Fp32;
      }
  in
  Alcotest.(check bool)
    "float type has no ELEM_T_MAX" false
    (contains ~sub:"ELEM_T_MAX" fp);
  Alcotest.(check bool)
    "float elem_t" true
    (contains ~sub:"typedef float elem_t;" fp)

let test_edge_vs_cloud_differ () =
  let edge = Header_gen.defines Params.edge
  and cloud = Header_gen.defines Params.cloud in
  Alcotest.(check bool)
    "edge and cloud headers differ" false
    (lookup edge "DIM" = lookup cloud "DIM"
    && lookup edge "SP_CAPACITY_BYTES" = lookup cloud "SP_CAPACITY_BYTES")

let report () = Synthesis.estimate ~host:Synthesis.Rocket Params.default

let test_breakdown_table () =
  let r = report () in
  let rendered = Table.render (Floorplan.breakdown_table r) in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "table lists %s" c.Synthesis.comp_name)
        true
        (contains ~sub:c.Synthesis.comp_name rendered))
    r.Synthesis.components;
  Alcotest.(check bool) "total row" true (contains ~sub:"total" rendered);
  Alcotest.(check bool) "100% row" true (contains ~sub:"100.0%" rendered);
  (* Shares are a partition of the total area. *)
  let sum =
    List.fold_left
      (fun acc c -> acc +. c.Synthesis.share)
      0. r.Synthesis.components
  in
  Alcotest.(check bool) "shares sum to 1" true (Float.abs (sum -. 1.0) < 1e-6)

let test_layout_sketch_geometry () =
  let r = report () in
  let width = 40 in
  let sketch = Floorplan.layout_sketch ~width r in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' sketch)
  in
  List.iter
    (fun l ->
      Alcotest.(check int) "uniform line width" (width + 2) (String.length l))
    lines;
  (* One separator above each component stack plus one per component. *)
  let seps =
    List.length (List.filter (fun l -> l.[0] = '-') lines)
  in
  Alcotest.(check int)
    "separator per component + top"
    (List.length r.Synthesis.components + 1)
    seps;
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "sketch labels %s" c.Synthesis.comp_name)
        true
        (contains ~sub:c.Synthesis.comp_name sketch))
    r.Synthesis.components

let test_render_composition () =
  let r = report () in
  let rendered = Floorplan.render r in
  Alcotest.(check bool)
    "render = table + sketch" true
    (contains ~sub:(Table.render (Floorplan.breakdown_table r)) rendered
    && contains ~sub:(Floorplan.layout_sketch r) rendered)

let suite =
  [
    Alcotest.test_case "header defines agree with Params accessors" `Quick
      test_defines_consistency;
    Alcotest.test_case "include guard (default and custom)" `Quick
      test_generate_guard;
    Alcotest.test_case "ELEM_T_MAX/MIN only for integer types" `Quick
      test_elem_t_range_int8_only;
    Alcotest.test_case "edge and cloud instances get different headers"
      `Quick test_edge_vs_cloud_differ;
    Alcotest.test_case "Fig. 6 breakdown table" `Quick test_breakdown_table;
    Alcotest.test_case "floorplan sketch geometry" `Quick
      test_layout_sketch_geometry;
    Alcotest.test_case "render composes table and sketch" `Quick
      test_render_composition;
  ]
