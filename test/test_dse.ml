(* The design-space-exploration engine: canonical point hashing, the
   persistent result cache (hit / miss / invalidation on param change and
   version bump), the Domain-pool executor's determinism (--jobs N equals
   serial), and cached-vs-fresh byte identity of the emitted reports. *)

module Point = Gem_dse.Point
module Outcome = Gem_dse.Outcome
module Cache = Gem_dse.Cache
module Exec = Gem_dse.Exec
module Sweep = Gem_dse.Sweep
module Report = Gem_dse.Report
module Soc_config = Gem_soc.Soc_config

(* Small, fast points: a heavily channel-scaled SqueezeNet on 8x8 / 16x16
   arrays (larger arrays simulate in fewer cycles). *)
let tiny_point ?(label = "tiny") ?(dim = 16) ?(scale = 8) () =
  Point.with_accel
    { Gemmini.Params.default with mesh_rows = dim; mesh_cols = dim }
    (Point.make ~label ~model:"squeezenet1.1" ~scale ())

let tiny_sweep () =
  Sweep.cartesian ~base:(Point.make ~model:"squeezenet1.1" ~scale:8 ())
    [
      Sweep.ints "dim"
        (fun dim p ->
          Point.with_accel
            { Gemmini.Params.default with mesh_rows = dim; mesh_cols = dim }
            p)
        [ 8; 16 ];
      Sweep.axis "im2col"
        [
          ("hw", fun p -> { p with Point.mode = Gem_sw.Runtime.Accel { im2col_on_accel = true } });
          ("sw", fun p -> { p with Point.mode = Gem_sw.Runtime.Accel { im2col_on_accel = false } });
        ];
    ]

let fresh_cache_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.temp_dir "gem_dse_test" (string_of_int !counter)

(* --- point hashing ---------------------------------------------------------- *)

let test_digest_keys () =
  let p = tiny_point () in
  Alcotest.(check string)
    "digest is stable for equal points" (Point.digest p)
    (Point.digest (tiny_point ()));
  Alcotest.(check string)
    "label is not part of the key" (Point.digest p)
    (Point.digest { p with Point.label = "renamed" });
  let differs name q =
    Alcotest.(check bool)
      (name ^ " changes the digest")
      false
      (String.equal (Point.digest p) (Point.digest q))
  in
  differs "mesh size" (tiny_point ~dim:8 ());
  differs "model scale" (tiny_point ~scale:4 ());
  differs "model" { p with Point.model = "resnet50" };
  differs "mode" { p with Point.mode = Gem_sw.Runtime.Cpu_only };
  differs "simulate flag" { p with Point.simulate = false };
  differs "synth host" { p with Point.synth_host = Gemmini.Synthesis.Boom };
  differs "tlb window" { p with Point.tlb_window = Some 1000. };
  differs "scratchpad capacity"
    (Point.with_accel
       { Gemmini.Params.default with sp_capacity_bytes = 128 * 1024 }
       p);
  differs "tlb entries"
    {
      p with
      Point.soc =
        Soc_config.map_tlb
          (fun t -> { t with Gem_vm.Hierarchy.private_entries = 64 })
          p.Point.soc;
    };
  differs "core count"
    { p with Point.soc = Soc_config.dual_core };
  differs "backend" (Point.with_backend Gem_sw.Backend.Analytic p)

(* --- outcome JSON round-trip ------------------------------------------------ *)

let test_outcome_roundtrip () =
  let o =
    {
      Outcome.empty with
      Outcome.total_cycles = 123_456;
      per_core_cycles = [| 123_456; 120_000 |];
      class_cycles = [ ("conv", 100_000); ("resadd", 23_456) ];
      fmax_ghz = 0.95;
      total_area_um2 = 1.0345e6;
      power_mw = 281.75;
      tlb_requests = 42;
      tlb_hit_rate = 0.98765432109876543;
      tlb_windows = [| (0., 0.25); (200_000., 0.5) |];
      l2_miss_rate = 1. /. 3.;
    }
  in
  let json = Gem_util.Jsonx.to_string (Outcome.to_json o) in
  match Gem_util.Jsonx.of_string json with
  | Error e -> Alcotest.fail ("emitted JSON failed to parse: " ^ e)
  | Ok v -> (
      match Outcome.of_json v with
      | Error e -> Alcotest.fail ("outcome failed to decode: " ^ e)
      | Ok o' ->
          Alcotest.(check bool)
            "outcome round-trips bit-exactly through JSON" true
            (compare o o' = 0))

(* An outcome without backend provenance (written before the seam
   existed) must fail to decode — the cache treats it as a miss and
   re-simulates rather than passing off a result of unknown fidelity. *)
let test_outcome_requires_backend () =
  let json = Outcome.to_json { Outcome.empty with Outcome.backend = "cycle" } in
  (match Outcome.of_json json with
  | Ok o ->
      Alcotest.(check string) "backend survives round-trip" "cycle" o.Outcome.backend
  | Error e -> Alcotest.fail ("outcome with backend failed to decode: " ^ e));
  let stripped =
    match json with
    | Gem_util.Jsonx.Obj fields ->
        Gem_util.Jsonx.Obj
          (List.filter (fun (k, _) -> k <> "backend") fields)
    | _ -> Alcotest.fail "outcome JSON is not an object"
  in
  match Outcome.of_json stripped with
  | Ok _ -> Alcotest.fail "outcome without backend provenance decoded"
  | Error _ -> ()

(* --- cache hit / miss / invalidation ---------------------------------------- *)

let test_cache_hit_miss_invalidation () =
  let cache = Cache.create ~dir:(fresh_cache_dir ()) () in
  let points = Sweep.points [ tiny_point () ] in
  let cold = Exec.run ~jobs:1 ~cache:(Some cache) points in
  Alcotest.(check (pair int int))
    "cold run simulates everything" (1, 0)
    (cold.Exec.simulated, cold.Exec.cached);
  let warm = Exec.run ~jobs:1 ~cache:(Some cache) points in
  Alcotest.(check (pair int int))
    "warm run simulates nothing" (0, 1)
    (warm.Exec.simulated, warm.Exec.cached);
  Alcotest.(check bool)
    "cached outcome equals fresh outcome" true
    (compare (snd cold.Exec.results.(0)) (snd warm.Exec.results.(0)) = 0);
  (* A parameter change is a different key: miss. *)
  let changed = Sweep.points [ tiny_point ~dim:32 () ] in
  let other = Exec.run ~jobs:1 ~cache:(Some cache) changed in
  Alcotest.(check (pair int int))
    "param change misses the cache" (1, 0)
    (other.Exec.simulated, other.Exec.cached);
  (* A sim-version bump shelves every entry. *)
  let bumped = Cache.create ~version:"next" ~dir:(Cache.dir cache) () in
  let after_bump = Exec.run ~jobs:1 ~cache:(Some bumped) points in
  Alcotest.(check (pair int int))
    "version bump invalidates the cache" (1, 0)
    (after_bump.Exec.simulated, after_bump.Exec.cached);
  (* A corrupt cache file reads as a miss, not a crash. *)
  let path = Cache.path_of cache (fst cold.Exec.results.(0) |> fun p -> p) in
  let oc = open_out path in
  output_string oc "{ not json";
  close_out oc;
  let repaired = Exec.run ~jobs:1 ~cache:(Some cache) points in
  Alcotest.(check (pair int int))
    "corrupt entry re-simulates" (1, 0)
    (repaired.Exec.simulated, repaired.Exec.cached);
  (* A truncated entry — a crash mid-write under a non-atomic writer —
     must read as a miss too. (The store path writes temp + rename, so
     this can only come from outside interference, but the reader still
     must not trust it.) *)
  let valid =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  output_string oc (String.sub valid 0 (String.length valid / 2));
  close_out oc;
  let after_truncation = Exec.run ~jobs:1 ~cache:(Some cache) points in
  Alcotest.(check (pair int int))
    "truncated entry re-simulates" (1, 0)
    (after_truncation.Exec.simulated, after_truncation.Exec.cached)

(* --- parallel executor ------------------------------------------------------ *)

let test_jobs_equality () =
  let points = tiny_sweep () in
  let serial = Exec.run ~jobs:1 ~cache:None points in
  let parallel = Exec.run ~jobs:4 ~cache:None points in
  Alcotest.(check int)
    "same point count"
    (Array.length serial.Exec.results)
    (Array.length parallel.Exec.results);
  Array.iteri
    (fun i (p, o) ->
      let p', o' = parallel.Exec.results.(i) in
      Alcotest.(check string)
        (Printf.sprintf "point %d label" i)
        p.Point.label p'.Point.label;
      Alcotest.(check bool)
        (Printf.sprintf "point %d outcome identical under --jobs 4" i)
        true
        (compare o o' = 0))
    serial.Exec.results

let test_jobs_zero_is_nproc () =
  (* jobs = 0 must resolve to the machine's recommended count and still
     produce ordered, serial-equal results. *)
  let points = Sweep.points [ tiny_point (); tiny_point ~dim:8 () ] in
  let serial = Exec.run ~jobs:1 ~cache:None points in
  let auto = Exec.run ~jobs:0 ~cache:None points in
  Alcotest.(check bool)
    "jobs 0 equals serial" true
    (compare
       (Array.map snd serial.Exec.results)
       (Array.map snd auto.Exec.results)
    = 0)

let test_worker_exception_propagates () =
  let bad = { (tiny_point ()) with Point.model = "no-such-model" } in
  let points = Sweep.points [ tiny_point (); bad ] in
  match Exec.run ~jobs:3 ~cache:None points with
  | _ -> Alcotest.fail "unknown model must raise"
  | exception Invalid_argument _ -> ()

(* --- crash-safe sweeps: journal resume and quarantine ------------------------ *)

let test_journal_resume_byte_identity () =
  let points = tiny_sweep () in
  let journal = Filename.temp_file "gem_dse_journal" ".json" in
  (* The uninterrupted reference. *)
  let full = Exec.run ~jobs:1 ~cache:None points in
  (* A "killed" sweep: only the first half of the points completed before
     the journal stopped being appended to. *)
  let half = Array.sub points 0 (Array.length points / 2) in
  let _ = Exec.run ~jobs:1 ~cache:None ~journal half in
  (* Resume salvages the completed half and evaluates only the rest. *)
  let resumed = Exec.run ~jobs:2 ~cache:None ~journal ~resume:true points in
  Alcotest.(check int) "completed half salvaged" (Array.length half)
    resumed.Exec.salvaged;
  Alcotest.(check int) "only the remainder simulated"
    (Array.length points - Array.length half)
    resumed.Exec.simulated;
  Alcotest.(check string)
    "resumed report byte-identical to uninterrupted run"
    (Report.json_string full.Exec.results)
    (Report.json_string resumed.Exec.results);
  (* A truncated journal — killed mid-rewrite — salvages nothing and the
     sweep simply re-simulates. *)
  let raw =
    let ic = open_in_bin journal in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin journal in
  output_string oc (String.sub raw 0 (String.length raw / 2));
  close_out oc;
  let from_scratch = Exec.run ~jobs:1 ~cache:None ~journal ~resume:true points in
  Alcotest.(check int) "truncated journal salvages nothing" 0
    from_scratch.Exec.salvaged;
  Alcotest.(check string)
    "re-simulated report still byte-identical"
    (Report.json_string full.Exec.results)
    (Report.json_string from_scratch.Exec.results);
  Sys.remove journal

let test_quarantine_reports_failures () =
  let bad =
    { (tiny_point ()) with Point.model = "no-such-model"; label = "bad" }
  in
  let points = Sweep.points [ tiny_point (); bad ] in
  (* With a retry budget, the failing point is quarantined — reported,
     not raised and not silently dropped. *)
  let r = Exec.run ~jobs:2 ~cache:None ~retries:1 ~backoff_ms:1 points in
  Alcotest.(check int) "healthy point survives" 1 (Array.length r.Exec.results);
  (match r.Exec.quarantined with
  | [ f ] ->
      Alcotest.(check int) "quarantined the right slot" 1 f.Exec.f_index;
      Alcotest.(check string) "quarantined the right point" "bad"
        f.Exec.f_point.Point.label;
      Alcotest.(check int) "1 + retries attempts" 2 f.Exec.f_attempts;
      Alcotest.(check bool) "reason captured" true
        (String.length f.Exec.f_reason > 0)
  | l -> Alcotest.failf "expected 1 quarantined point, got %d" (List.length l));
  let p, _ = r.Exec.results.(0) in
  Alcotest.(check string) "surviving outcome belongs to the healthy point"
    (Point.digest (tiny_point ()))
    (Point.digest p)

(* --- cached-vs-fresh byte identity ------------------------------------------ *)

let test_cached_report_byte_identity () =
  let cache = Cache.create ~dir:(fresh_cache_dir ()) () in
  let points = tiny_sweep () in
  let fresh = Exec.run ~jobs:2 ~cache:(Some cache) points in
  let cached = Exec.run ~jobs:1 ~cache:(Some cache) points in
  Alcotest.(check int) "everything came from the cache" 0 cached.Exec.simulated;
  Alcotest.(check string)
    "JSON report byte-identical from warm cache"
    (Report.json_string fresh.Exec.results)
    (Report.json_string cached.Exec.results);
  Alcotest.(check string)
    "CSV report byte-identical from warm cache"
    (Report.csv fresh.Exec.results)
    (Report.csv cached.Exec.results)

let suite =
  [
    Alcotest.test_case "digest: canonical keys" `Quick test_digest_keys;
    Alcotest.test_case "outcome: exact JSON round-trip" `Quick
      test_outcome_roundtrip;
    Alcotest.test_case "outcome: backend provenance is mandatory" `Quick
      test_outcome_requires_backend;
    Alcotest.test_case "cache: hit/miss/invalidation" `Quick
      test_cache_hit_miss_invalidation;
    Alcotest.test_case "exec: jobs 1 = jobs 4" `Quick test_jobs_equality;
    Alcotest.test_case "exec: jobs 0 = nproc" `Quick test_jobs_zero_is_nproc;
    Alcotest.test_case "exec: worker exception propagates" `Quick
      test_worker_exception_propagates;
    Alcotest.test_case "cache: report byte identity" `Quick
      test_cached_report_byte_identity;
    Alcotest.test_case "exec: journal resume byte identity" `Quick
      test_journal_resume_byte_identity;
    Alcotest.test_case "exec: quarantine reports failures" `Quick
      test_quarantine_reports_failures;
  ]
