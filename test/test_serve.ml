(* gem_serve: arrival streams, batching policies, the multi-core serving
   scheduler, and SLO accounting. *)

open Gem_serve

let req id arrival = { Arrival.rq_id = id; rq_arrival = arrival }

(* --- arrival generators ------------------------------------------------- *)

let test_arrival_determinism () =
  let spec = Arrival.Poisson { rate_rps = 100_000. } in
  let a = Arrival.generate spec ~seed:7 ~duration:1_000_000 in
  let b = Arrival.generate spec ~seed:7 ~duration:1_000_000 in
  Alcotest.(check bool) "same seed, same stream" true (a = b);
  let c = Arrival.generate spec ~seed:8 ~duration:1_000_000 in
  Alcotest.(check bool) "different seed differs" true (a <> c);
  Alcotest.(check bool) "nonempty" true (Array.length a > 0);
  Array.iteri
    (fun i r ->
      Alcotest.(check int) "ids are positional" i r.Arrival.rq_id;
      Alcotest.(check bool) "inside window" true
        (r.Arrival.rq_arrival >= 0 && r.Arrival.rq_arrival < 1_000_000);
      if i > 0 then
        Alcotest.(check bool) "sorted" true
          (a.(i - 1).Arrival.rq_arrival <= r.Arrival.rq_arrival))
    a;
  (* ~100k req/s over 1 ms is ~100 arrivals; allow generous slack. *)
  let n = Array.length a in
  Alcotest.(check bool) "rate plausible" true (n > 50 && n < 200)

let test_arrival_bursty () =
  let spec = Arrival.Bursty { rate_rps = 100_000.; burst = 4 } in
  let a = Arrival.generate spec ~seed:3 ~duration:1_000_000 in
  Alcotest.(check bool) "nonempty" true (Array.length a > 0);
  Alcotest.(check int) "whole bursts" 0 (Array.length a mod 4);
  (* Members of one burst share an arrival cycle. *)
  Array.iteri
    (fun i r ->
      if i mod 4 <> 0 then
        Alcotest.(check int) "burst member shares cycle"
          a.(i - 1).Arrival.rq_arrival r.Arrival.rq_arrival)
    a

let test_arrival_trace () =
  let file = Filename.temp_file "arrivals" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "300\n# comment\n\n100\n999999999\n0\n";
      close_out oc;
      let a =
        Arrival.generate (Arrival.Trace file) ~seed:0 ~duration:1_000_000
      in
      (* Sorted, ids reassigned in time order, out-of-window dropped. *)
      Alcotest.(check (list (pair int int)))
        "parsed, sorted, windowed"
        [ (0, 0); (1, 100); (2, 300) ]
        (Array.to_list
           (Array.map (fun r -> (r.Arrival.rq_id, r.Arrival.rq_arrival)) a)))

let test_arrival_parse () =
  (match Arrival.spec_of_string "poisson:2500" with
  | Ok (Arrival.Poisson { rate_rps }) ->
      Alcotest.(check (float 1e-9)) "rate" 2500. rate_rps
  | _ -> Alcotest.fail "poisson parse");
  (match Arrival.spec_of_string "bursty:1000:8" with
  | Ok (Arrival.Bursty { rate_rps; burst }) ->
      Alcotest.(check (float 1e-9)) "rate" 1000. rate_rps;
      Alcotest.(check int) "burst" 8 burst
  | _ -> Alcotest.fail "bursty parse");
  (match Arrival.spec_of_string "trace:/tmp/a:b.txt" with
  | Ok (Arrival.Trace f) ->
      Alcotest.(check string) "path keeps colons" "/tmp/a:b.txt" f
  | _ -> Alcotest.fail "trace parse");
  Alcotest.(check bool) "bad spec rejected" true
    (Result.is_error (Arrival.spec_of_string "uniform:10"));
  Alcotest.(check bool) "bad rate rejected" true
    (Result.is_error (Arrival.spec_of_string "poisson:-5"))

(* --- batching policies --------------------------------------------------- *)

let test_batch_no_batch () =
  let arrivals = [| req 0 100; req 1 100; req 2 100 |] in
  let k, start = Batch.form Batch.No_batch ~arrivals ~next:0 ~free:0 in
  Alcotest.(check (pair int int)) "single, at arrival" (1, 100) (k, start);
  let k, start = Batch.form Batch.No_batch ~arrivals ~next:1 ~free:500 in
  Alcotest.(check (pair int int)) "single, when free" (1, 500) (k, start)

let test_batch_fixed () =
  let arrivals = [| req 0 0; req 1 10; req 2 20; req 3 1000 |] in
  (* Greedy: everything already waiting at t0 rides, stragglers don't. *)
  let k, start = Batch.form (Batch.Fixed 4) ~arrivals ~next:0 ~free:50 in
  Alcotest.(check (pair int int)) "waiting requests ride" (3, 50) (k, start);
  (* Capacity caps the batch. *)
  let k, _ = Batch.form (Batch.Fixed 2) ~arrivals ~next:0 ~free:50 in
  Alcotest.(check int) "capacity respected" 2 k;
  (* Never waits for future arrivals. *)
  let k, start = Batch.form (Batch.Fixed 4) ~arrivals ~next:3 ~free:50 in
  Alcotest.(check (pair int int)) "head alone" (1, 1000) (k, start)

let test_batch_deadline () =
  let dl = Batch.Deadline { capacity = 3; max_wait = 100 } in
  (* Fills before the deadline: dispatch when the last seat is taken. *)
  let arrivals = [| req 0 0; req 1 50; req 2 80; req 3 500 |] in
  let k, start = Batch.form dl ~arrivals ~next:0 ~free:0 in
  Alcotest.(check (pair int int)) "full batch starts when full" (3, 80)
    (k, start);
  (* Not full: holds until the deadline, no oracle dispatch. *)
  let arrivals = [| req 0 0; req 1 50; req 2 400 |] in
  let k, start = Batch.form dl ~arrivals ~next:0 ~free:0 in
  Alcotest.(check (pair int int)) "partial batch waits out deadline" (2, 100)
    (k, start);
  (* A request past the deadline is never reordered into the batch. *)
  let arrivals = [| req 0 0; req 1 150 |] in
  let k, _ = Batch.form dl ~arrivals ~next:0 ~free:0 in
  Alcotest.(check int) "no reorder past deadline" 1 k;
  (* max_wait = 0 degenerates to greedy Fixed. *)
  let z = Batch.Deadline { capacity = 3; max_wait = 0 } in
  let arrivals = [| req 0 0; req 1 0; req 2 10 |] in
  let k, start = Batch.form z ~arrivals ~next:0 ~free:5 in
  Alcotest.(check (pair int int)) "zero wait is greedy" (2, 5) (k, start)

let test_batch_parse () =
  Alcotest.(check bool) "none" true
    (Batch.policy_of_string "none" = Ok Batch.No_batch);
  Alcotest.(check bool) "fixed" true
    (Batch.policy_of_string "fixed:8" = Ok (Batch.Fixed 8));
  (match Batch.policy_of_string "deadline:4:250" with
  | Ok (Batch.Deadline { capacity; max_wait }) ->
      Alcotest.(check int) "capacity" 4 capacity;
      (* 250 us = 250_000 cycles at 1 GHz *)
      Alcotest.(check int) "wait in cycles" 250_000 max_wait
  | _ -> Alcotest.fail "deadline parse");
  Alcotest.(check bool) "bad policy rejected" true
    (Result.is_error (Batch.policy_of_string "fixed:0"))

(* --- SLO accounting ------------------------------------------------------ *)

let completion id core ~arrival ~start ~finish =
  { Slo.c_id = id; c_core = core; c_arrival = arrival; c_start = start;
    c_finish = finish }

let test_slo_arithmetic () =
  (* Hand-checked: two completions (1 ms and 3 ms latency), one request
     never finished. *)
  let completions =
    [
      completion 0 0 ~arrival:0 ~start:0 ~finish:1_000_000;
      completion 1 1 ~arrival:500_000 ~start:1_000_000 ~finish:3_500_000;
    ]
  in
  let rp =
    Slo.analyze ~origin:0 ~offered:3 ~cores:2 ~slos_ms:[ 2.0; 5.0 ]
      completions
  in
  Alcotest.(check int) "offered" 3 rp.Slo.rp_offered;
  Alcotest.(check int) "completed" 2 rp.Slo.rp_completed;
  Alcotest.(check int) "horizon is last finish" 3_500_000 rp.Slo.rp_horizon;
  (* 2 requests over 3.5 ms = 571.43 req/s. *)
  Alcotest.(check (float 1e-6)) "throughput" (2. /. 3.5e-3)
    rp.Slo.rp_throughput_rps;
  (* 2 ms SLO: only the 1 ms request, out of 3 OFFERED. *)
  Alcotest.(check (float 1e-9)) "slo 2ms vs offered" (1. /. 3.)
    (List.assoc 2.0 rp.Slo.rp_attainment);
  (* 5 ms SLO: both completions, the queued request still counts missed. *)
  Alcotest.(check (float 1e-9)) "slo 5ms vs offered" (2. /. 3.)
    (List.assoc 5.0 rp.Slo.rp_attainment);
  Alcotest.(check (float 1.0)) "exact max latency" 3_000_000.
    rp.Slo.rp_latency.Gem_util.Stats.Histogram.max;
  Alcotest.(check (list (pair int int))) "per-core counts" [ (0, 1); (1, 1) ]
    rp.Slo.rp_per_core

let test_slo_origin_and_reuse () =
  (* Absolute cycles with a warm-start origin: latency is offset-free,
     horizon is origin-relative. *)
  let completions =
    [ completion 0 0 ~arrival:1_000_100 ~start:1_000_200 ~finish:1_000_600 ]
  in
  let rp =
    Slo.analyze ~origin:1_000_000 ~offered:1 ~cores:1 ~slos_ms:[] completions
  in
  Alcotest.(check int) "origin-relative horizon" 600 rp.Slo.rp_horizon;
  Alcotest.(check (float 0.1)) "offset-free latency" 500.
    rp.Slo.rp_latency.Gem_util.Stats.Histogram.max;
  (* Reusing one histogram across runs must not smear them (the
     Histogram.reset regression, at the serving level). *)
  let hist = Gem_util.Stats.Histogram.create ~buckets:64 ~range:1e7 in
  let big =
    [ completion 0 0 ~arrival:0 ~start:0 ~finish:9_000_000 ]
  in
  let _first =
    Slo.analyze ~hist ~origin:0 ~offered:1 ~cores:1 ~slos_ms:[] big
  in
  let small =
    [ completion 0 0 ~arrival:0 ~start:0 ~finish:1_000 ]
  in
  let second =
    Slo.analyze ~hist ~origin:0 ~offered:1 ~cores:1 ~slos_ms:[] small
  in
  Alcotest.(check (float 0.1)) "second run unsmeared" 1_000.
    second.Slo.rp_latency.Gem_util.Stats.Histogram.max;
  Alcotest.(check bool) "p99 from second run only" true
    (second.Slo.rp_latency.Gem_util.Stats.Histogram.p99 < 1e6)

(* --- end-to-end sharding on the cycle-accurate SoC ----------------------- *)

let tiny_scenario =
  {
    Serve.default with
    Serve.sv_model = "mobilenetv2";
    sv_scale = 32;
    sv_arrival = Arrival.Poisson { rate_rps = 4000. };
    sv_batch = Batch.Fixed 2;
    sv_duration_ms = 1.5;
    sv_slos_ms = [ 2.0 ];
  }

let check_conservation (r : Serve.result) =
  let offered = r.Serve.sr_report.Slo.rp_offered in
  Alcotest.(check bool) "stream nonempty" true (offered > 0);
  (* Every request completes exactly once. *)
  Alcotest.(check int) "all complete" offered
    r.Serve.sr_report.Slo.rp_completed;
  let ids = List.map (fun c -> c.Slo.c_id) r.Serve.sr_completions in
  Alcotest.(check (list int)) "each exactly once" (List.init offered Fun.id)
    ids;
  (* Dispatches partition the stream FIFO: concatenated ids are 0..n-1. *)
  let dispatched = List.concat_map snd r.Serve.sr_dispatches in
  Alcotest.(check (list int)) "FIFO partition" (List.init offered Fun.id)
    (List.sort compare dispatched);
  List.iter
    (fun (core, ids) ->
      Alcotest.(check bool) "valid core" true (core >= 0 && core < 2);
      Alcotest.(check bool) "batch nonempty" true (ids <> []))
    r.Serve.sr_dispatches;
  (* Per-core tallies add up. *)
  Alcotest.(check int) "per-core sums" offered
    (List.fold_left ( + ) 0 (List.map snd r.Serve.sr_report.Slo.rp_per_core));
  (* Causality per completion. *)
  List.iter
    (fun c ->
      Alcotest.(check bool) "starts after arrival" true
        (c.Slo.c_start >= c.Slo.c_arrival);
      Alcotest.(check bool) "finishes after start" true
        (c.Slo.c_finish > c.Slo.c_start))
    r.Serve.sr_completions

let test_sharding_cycle () =
  let r = Serve.run tiny_scenario in
  check_conservation r;
  (* Under a 4000 req/s open loop both cores must pull weight. *)
  List.iter
    (fun (_, n) -> Alcotest.(check bool) "both cores served" true (n > 0))
    r.Serve.sr_report.Slo.rp_per_core;
  (* Determinism: the full rendered report reproduces byte-for-byte. *)
  let r2 = Serve.run tiny_scenario in
  Alcotest.(check string) "byte-identical report" (Report.render r)
    (Report.render r2)

let test_sharding_analytic () =
  let sv = { tiny_scenario with Serve.sv_backend = Gem_sw.Backend.Analytic } in
  let r = Serve.run sv in
  check_conservation r;
  let r2 = Serve.run sv in
  Alcotest.(check string) "byte-identical report" (Report.render r)
    (Report.render r2)

(* --- streamed request-level chrome traces -------------------------------- *)

module Export = Gem_sim.Export
module J = Gem_util.Jsonx

(* The CLI's serve --trace-out path: a streaming writer attached to the
   SoC engine before the run, finished after it. *)
let streamed_serve () =
  let buf = Buffer.create (1 lsl 16) in
  let stream = ref None in
  let r =
    Serve.run
      ~attach:(fun soc ->
        stream :=
          Some
            (Export.Streaming.attach
               (Gem_soc.Soc.engine soc)
               ~out:(Buffer.add_string buf)))
      tiny_scenario
  in
  let s = Option.get !stream in
  Export.Streaming.finish s;
  (Buffer.contents buf, s, r)

let test_serve_trace_request_spans () =
  let text, s, r = streamed_serve () in
  let json =
    match J.of_string text with
    | Ok j -> j
    | Error e -> Alcotest.failf "serve trace does not parse: %s" e
  in
  let events = Option.get (J.to_list json) in
  let request_events =
    List.filter_map
      (fun ev ->
        match (J.member "cat" ev, J.member "ph" ev) with
        | Some (J.String "request"), Some (J.String ph)
          when ph = "b" || ph = "e" ->
            Some
              ( Option.get (Option.bind (J.member "pid" ev) J.to_int),
                ph,
                Option.get (Option.bind (J.member "id" ev) J.to_int) )
        | _ -> None)
      events
  in
  let completed = r.Serve.sr_report.Slo.rp_completed in
  Alcotest.(check int) "one open per completed request" completed
    (List.length (List.filter (fun (_, ph, _) -> ph = "b") request_events));
  (* Per core (pid): opens and closes must nest like brackets, pairing by
     async id — a core serves its requests sequentially, so the depth
     never exceeds the open batch and never goes negative. *)
  let pids = List.sort_uniq compare (List.map (fun (p, _, _) -> p) request_events) in
  Alcotest.(check int) "request spans on both core tracks" 2
    (List.length pids);
  List.iter
    (fun pid ->
      let stack = ref [] in
      List.iter
        (fun (p, ph, id) ->
          if p = pid then
            match ph with
            | "b" -> stack := id :: !stack
            | _ -> (
                match !stack with
                | top :: rest ->
                    Alcotest.(check int) "well-nested close" top id;
                    stack := rest
                | [] -> Alcotest.fail "request close with no open"))
        request_events;
      Alcotest.(check (list int)) "no dangling requests" [] !stack)
    pids;
  Alcotest.(check int) "no orphan closes" 0 (Export.Streaming.orphan_closes s);
  Alcotest.(check int) "no forced closes" 0 (Export.Streaming.forced_closes s)

let test_serve_trace_deterministic () =
  let a, _, ra = streamed_serve () in
  let b, _, _ = streamed_serve () in
  Alcotest.(check bool) "byte-identical streamed serve traces" true
    (String.equal a b);
  (* Streaming is observation only: the report matches an untraced run. *)
  let quiet = Serve.run tiny_scenario in
  Alcotest.(check string) "report unchanged by streaming"
    (Report.render quiet) (Report.render ra)

let suite =
  [
    Alcotest.test_case "arrival determinism" `Quick test_arrival_determinism;
    Alcotest.test_case "arrival bursty" `Quick test_arrival_bursty;
    Alcotest.test_case "arrival trace file" `Quick test_arrival_trace;
    Alcotest.test_case "arrival parsing" `Quick test_arrival_parse;
    Alcotest.test_case "batch none" `Quick test_batch_no_batch;
    Alcotest.test_case "batch fixed" `Quick test_batch_fixed;
    Alcotest.test_case "batch deadline" `Quick test_batch_deadline;
    Alcotest.test_case "batch parsing" `Quick test_batch_parse;
    Alcotest.test_case "slo arithmetic" `Quick test_slo_arithmetic;
    Alcotest.test_case "slo origin + histogram reuse" `Quick
      test_slo_origin_and_reuse;
    Alcotest.test_case "2-core sharding (cycle)" `Slow test_sharding_cycle;
    Alcotest.test_case "2-core sharding (analytic)" `Quick
      test_sharding_analytic;
    Alcotest.test_case "2-core trace: request spans well-nested" `Slow
      test_serve_trace_request_spans;
    Alcotest.test_case "2-core trace: deterministic" `Slow
      test_serve_trace_deterministic;
  ]
