(* The execution-backend seam: the registry, byte-identity of the cycle
   backend with the pre-seam runtime numbers, layer-walk conformance
   between implementations (same layers, same order, same classes, same
   fault-policy behaviour), estimator accuracy against the engine, and
   the analytic command-count model against the actually emitted
   streams. *)

module Backend = Gem_sw.Backend
module Backends = Gem_sw.Backends
module Backend_cycle = Gem_sw.Backend_cycle
module Backend_analytic = Gem_sw.Backend_analytic
module Runtime = Gem_sw.Runtime
module Lower = Gem_sw.Lower
module Kernels = Gem_sw.Kernels
module Layer = Gem_dnn.Layer
module Soc_config = Gem_soc.Soc_config
module Fault = Gem_sim.Fault
module Isa = Gemmini.Isa

let model ~scale name =
  match Gem_dnn.Model_zoo.find name with
  | None -> Alcotest.failf "unknown zoo model %s" name
  | Some m ->
      if scale = 1 then m else Gem_dnn.Model_zoo.scale_model ~factor:scale m

let accel_mode = Runtime.Accel { im2col_on_accel = true }

let request ?policy ?watchdog name =
  Backend.request ?policy ?watchdog ~config:Soc_config.default
    [| (model ~scale:8 name, accel_mode) |]

(* --- registry ---------------------------------------------------------------- *)

let test_registry () =
  Alcotest.(check (list string))
    "registry names" [ "cycle"; "analytic" ] Backends.names;
  List.iter
    (fun k ->
      let (module B : Backend.S) = Backends.of_kind k in
      Alcotest.(check string)
        "of_kind round-trips" (Backend.kind_name k)
        (Backend.kind_name B.kind))
    Backend.all_kinds;
  Alcotest.(check bool)
    "kind_of_string rejects junk" true
    (Backend.kind_of_string "verilate" = None)

(* --- cycle backend = pre-seam runtime, byte-identical ------------------------ *)

let test_cycle_byte_identity () =
  let results = Backend_cycle.run (request "mobilenetv2") in
  (* The seed's number for mobilenetv2 at scale 8; the Backend seam must
     not perturb the engine by a single cycle. *)
  Alcotest.(check int)
    "mobilenetv2 scale-8 total cycles" 2_928_563
    results.(0).Runtime.r_total_cycles

(* --- layer-walk conformance --------------------------------------------------- *)

let layer_shape (r : Runtime.result) =
  List.map
    (fun (l : Runtime.layer_record) ->
      (l.Runtime.lr_name, Layer.class_name l.Runtime.lr_class, l.Runtime.lr_macs))
    r.Runtime.r_layers

let test_conformance_layers () =
  List.iter
    (fun name ->
      let rq = request name in
      let shapes =
        List.map
          (fun k ->
            let (module B : Backend.S) = Backends.of_kind k in
            layer_shape (B.run rq).(0))
          Backend.all_kinds
      in
      match shapes with
      | [] | [ _ ] -> Alcotest.fail "expected at least two backends"
      | reference :: rest ->
          List.iter
            (fun s ->
              Alcotest.(check (list (triple string string int)))
                (name ^ ": same layers, order, classes, macs")
                reference s)
            rest)
    [ "squeezenet1.1"; "mobilenetv2"; "bert-base-seq128" ]

(* --- fault-policy conformance ------------------------------------------------- *)

(* Alexnet at scale 8: conv1 (~155k cycles) and fc6 (~140k) sit far above
   a 100k watchdog in both backends; every other layer is below 65k, so
   the trip set is insensitive to estimator error. *)
let test_watchdog_degrade_parity () =
  let faulted (module B : Backend.S) =
    let rq = request ~policy:Runtime.Degrade ~watchdog:100_000 "alexnet" in
    List.map
      (fun (f : Runtime.fault_record) -> (f.Runtime.fr_layer, f.Runtime.fr_action))
      (B.run rq).(0).Runtime.r_faults
  in
  let expected = [ ("conv1", "degrade"); ("fc6", "degrade") ] in
  List.iter
    (fun k ->
      Alcotest.(check (list (pair string string)))
        (Backend.kind_name k ^ ": degraded layers")
        expected
        (faulted (Backends.of_kind k)))
    Backend.all_kinds

let test_watchdog_abort_parity () =
  List.iter
    (fun k ->
      let (module B : Backend.S) = Backends.of_kind k in
      let rq = request ~policy:Runtime.Abort ~watchdog:100_000 "alexnet" in
      let trapped =
        try
          ignore (B.run rq);
          false
        with Fault.Trap _ -> true
      in
      Alcotest.(check bool)
        (Backend.kind_name k ^ ": abort re-raises the trap")
        true trapped)
    Backend.all_kinds

(* --- estimator accuracy -------------------------------------------------------- *)

let test_analytic_accuracy () =
  List.iter
    (fun name ->
      let rq = request name in
      let cycle = (Backend_cycle.run rq).(0).Runtime.r_total_cycles in
      let ana = (Backend_analytic.run rq).(0).Runtime.r_total_cycles in
      let err =
        Float.abs (float_of_int (ana - cycle)) /. float_of_int cycle
      in
      if err > 0.15 then
        Alcotest.failf "%s: analytic %d vs cycle %d (|err| %.1f%% > 15%%)"
          name ana cycle (100. *. err))
    [ "squeezenet1.1"; "alexnet"; "mobilenetv2" ]

(* --- command-count model vs emitted streams ------------------------------------ *)

let count_stream ops =
  let c =
    ref
      {
        Backend_analytic.mc_configs = 0;
        mc_bias_mvins = 0;
        mc_a_mvins = 0;
        mc_b_mvins = 0;
        mc_preloads = 0;
        mc_computes = 0;
        mc_mvouts = 0;
      }
  in
  List.iter
    (fun op ->
      match op with
      | Gem_soc.Soc.Insn i -> (
          let t = !c in
          match i with
          | Isa.Config_ex _ | Isa.Config_ld _ | Isa.Config_st _ ->
              c := { t with Backend_analytic.mc_configs = t.Backend_analytic.mc_configs + 1 }
          | Isa.Mvin (_, 0) ->
              c := { t with Backend_analytic.mc_a_mvins = t.Backend_analytic.mc_a_mvins + 1 }
          | Isa.Mvin (_, 1) ->
              c := { t with Backend_analytic.mc_b_mvins = t.Backend_analytic.mc_b_mvins + 1 }
          | Isa.Mvin (_, _) ->
              c := { t with Backend_analytic.mc_bias_mvins = t.Backend_analytic.mc_bias_mvins + 1 }
          | Isa.Preload _ ->
              c := { t with Backend_analytic.mc_preloads = t.Backend_analytic.mc_preloads + 1 }
          | Isa.Compute_preloaded _ | Isa.Compute_accumulated _ ->
              c := { t with Backend_analytic.mc_computes = t.Backend_analytic.mc_computes + 1 }
          | Isa.Mvout _ ->
              c := { t with Backend_analytic.mc_mvouts = t.Backend_analytic.mc_mvouts + 1 }
          | _ -> ())
      | _ -> ())
    ops;
  !c

let test_command_counts () =
  let p = Soc_config.default_core.Soc_config.accel in
  let cpu = Soc_config.default_core.Soc_config.cpu in
  let checked = ref 0 in
  List.iter
    (fun name ->
      let plans = Lower.plan p ~cpu ~mode:accel_mode (model ~scale:8 name) in
      List.iter
        (fun (lp : Lower.layer_plan) ->
          match lp.Lower.lp_kernel with
          | Lower.K_matmul { insts; _ } ->
              List.iter
                (fun ((ms : Lower.matmul_shape), _count) ->
                  let predicted = Backend_analytic.matmul_command_counts p ms in
                  let ops =
                    Kernels.matmul_ops p ~schedule:ms.Lower.ms_schedule
                      ?bias:
                        (match ms.Lower.ms_bias with
                        | `Broadcast -> Some 0x10_000
                        | _ -> None)
                      ?bias_column:
                        (match ms.Lower.ms_bias with
                        | `Column -> Some 0x10_000
                        | _ -> None)
                      ~a_row_stride:ms.Lower.ms_a_stride
                      ~b_row_stride:ms.Lower.ms_b_stride
                      ~c_row_stride:ms.Lower.ms_c_stride
                      ~a_condense:ms.Lower.ms_a_condense ~a:0x20_000 ~b:0x40_000
                      ~out:0x60_000 ~m:ms.Lower.ms_m ~k:ms.Lower.ms_k
                      ~n:ms.Lower.ms_n ()
                  in
                  let emitted = count_stream ops in
                  if predicted <> emitted then
                    Alcotest.failf
                      "%s/%s: predicted \
                       (cfg=%d bias=%d a=%d b=%d pre=%d comp=%d out=%d) vs \
                       emitted (cfg=%d bias=%d a=%d b=%d pre=%d comp=%d out=%d)"
                      name lp.Lower.lp_name predicted.Backend_analytic.mc_configs
                      predicted.Backend_analytic.mc_bias_mvins
                      predicted.Backend_analytic.mc_a_mvins
                      predicted.Backend_analytic.mc_b_mvins
                      predicted.Backend_analytic.mc_preloads
                      predicted.Backend_analytic.mc_computes
                      predicted.Backend_analytic.mc_mvouts
                      emitted.Backend_analytic.mc_configs
                      emitted.Backend_analytic.mc_bias_mvins
                      emitted.Backend_analytic.mc_a_mvins
                      emitted.Backend_analytic.mc_b_mvins
                      emitted.Backend_analytic.mc_preloads
                      emitted.Backend_analytic.mc_computes
                      emitted.Backend_analytic.mc_mvouts;
                  incr checked)
                insts
          | _ -> ())
        plans)
    [ "squeezenet1.1"; "mobilenetv2"; "bert-base-seq128" ];
  Alcotest.(check bool)
    "covered a meaningful number of matmul shapes" true (!checked > 20)

let suite =
  [
    Alcotest.test_case "registry: names and round-trip" `Quick test_registry;
    Alcotest.test_case "cycle backend: byte-identical to seed" `Slow
      test_cycle_byte_identity;
    Alcotest.test_case "conformance: identical layer walks" `Slow
      test_conformance_layers;
    Alcotest.test_case "conformance: watchdog + Degrade parity" `Slow
      test_watchdog_degrade_parity;
    Alcotest.test_case "conformance: watchdog + Abort parity" `Slow
      test_watchdog_abort_parity;
    Alcotest.test_case "analytic: within 15% on scaled networks" `Slow
      test_analytic_accuracy;
    Alcotest.test_case "analytic: command counts match emitted streams" `Quick
      test_command_counts;
  ]
