(* End-to-end functional tests: real int8 data through the virtual-memory
   DMA, scratchpad, and cycle-accurate mesh, against the pure-host golden
   model. These are the tests that prove the whole stack — ISA, controller,
   dataflows, tiling, kernels — computes the right numbers. *)

open Gem_util
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime
module Kernels = Gem_sw.Kernels
module Layer = Gem_dnn.Layer

(* A small accelerator so the tests exercise multi-tile loops. *)
let small_params =
  {
    Gemmini.Params.default with
    mesh_rows = 4;
    mesh_cols = 4;
    sp_capacity_bytes = 4 * 1024;
    sp_banks = 4;
    acc_capacity_bytes = 2 * 1024;
    acc_banks = 2;
  }

let functional_soc () =
  Soc.create
    {
      Soc_config.default with
      functional = true;
      cores = [ { Soc_config.default_core with accel = small_params } ];
    }

let check_tensor msg expected actual =
  if not (Tensor.equal expected actual) then begin
    let show t =
      let d = Tensor.data t in
      let n = min 64 (Array.length d) in
      String.concat " " (List.init n (fun i -> string_of_int d.(i)))
    in
    Alcotest.failf "%s:\nexpected: %s\ngot:      %s" msg (show expected) (show actual)
  end

(* --- raw kernel matmul vs reference ---------------------------------------- *)

let run_matmul_kernel ~m ~k ~n ~seed ~with_bias () =
  let soc = functional_soc () in
  let core = Soc.core soc 0 in
  let rng = Rng.create ~seed in
  let a = Matrix.random rng ~rows:m ~cols:k ~lo:(-16) ~hi:16 in
  let b = Matrix.random rng ~rows:k ~cols:n ~lo:(-8) ~hi:8 in
  let bias = Array.init n (fun _ -> Rng.int_in rng ~lo:(-100) ~hi:100) in
  let a_va = Soc.alloc soc core ~bytes:(m * k) in
  let b_va = Soc.alloc soc core ~bytes:(k * n) in
  let bias_va = Soc.alloc soc core ~bytes:(4 * n) in
  let out_va = Soc.alloc soc core ~bytes:(m * n) in
  Soc.host_write_i8 soc core ~vaddr:a_va (Array.concat (Array.to_list a));
  Soc.host_write_i8 soc core ~vaddr:b_va (Array.concat (Array.to_list b));
  Soc.host_write_i32 soc core ~vaddr:bias_va bias;
  let ops =
    Kernels.matmul_ops small_params
      ?bias:(if with_bias then Some bias_va else None)
      ~act:Gemmini.Peripheral.Relu ~scale:0.0625 ~a:a_va ~b:b_va ~out:out_va ~m
      ~k ~n ()
    @ [ Kernels.fence ]
  in
  ignore (Soc.run_program soc core (List.to_seq ops));
  let got = Soc.host_read_i8 soc core ~vaddr:out_va ~n:(m * n) in
  (* Golden: int32 saturating product + bias, scale, relu. *)
  let prod = Matrix.mul_sat32 a b in
  let expected =
    Array.init (m * n) (fun i ->
        let r = i / n and c = i mod n in
        let v =
          Fixed.sat32 (Matrix.get prod r c + if with_bias then bias.(c) else 0)
        in
        Gemmini.Peripheral.apply_activation Gemmini.Peripheral.Relu
          (Gemmini.Peripheral.scale_to Gemmini.Dtype.Int8 ~scale:0.0625 v))
  in
  Alcotest.(check (array int)) "matmul result" expected got

let qcheck_kernel_matmul =
  let gen =
    QCheck2.Gen.(
      let* m = int_range 1 24 in
      let* k = int_range 1 24 in
      let* n = int_range 1 24 in
      let* seed = int_range 0 100_000 in
      let* with_bias = bool in
      return (m, k, n, seed, with_bias))
  in
  QCheck2.Test.make
    ~name:"tiled kernel matmul == golden (arbitrary sizes, multi-tile)"
    ~count:40 gen (fun (m, k, n, seed, with_bias) ->
      run_matmul_kernel ~m ~k ~n ~seed ~with_bias ();
      true)

(* --- residual addition ------------------------------------------------------ *)

let test_resadd () =
  let soc = functional_soc () in
  let core = Soc.core soc 0 in
  let elems = 333 in
  let rng = Rng.create ~seed:5 in
  let x = Array.init elems (fun _ -> Rng.int_in rng ~lo:(-128) ~hi:127) in
  let y = Array.init elems (fun _ -> Rng.int_in rng ~lo:(-128) ~hi:127) in
  let x_va = Soc.alloc soc core ~bytes:(elems + 64) in
  let y_va = Soc.alloc soc core ~bytes:(elems + 64) in
  let out_va = Soc.alloc soc core ~bytes:(elems + 64) in
  Soc.host_write_i8 soc core ~vaddr:x_va x;
  Soc.host_write_i8 soc core ~vaddr:y_va y;
  let ops =
    Kernels.resadd_ops small_params ~x:x_va ~y:y_va ~out:out_va ~elems ()
    @ [ Kernels.fence ]
  in
  ignore (Soc.run_program soc core (List.to_seq ops));
  let got = Soc.host_read_i8 soc core ~vaddr:out_va ~n:elems in
  let expected = Array.init elems (fun i -> Fixed.sat8 (x.(i) + y.(i))) in
  Alcotest.(check (array int)) "resadd" expected got

(* --- whole-network functional inference -------------------------------------- *)

let tiny_cnn : Layer.model =
  let conv ~h ~in_ch ~out_ch ~relu =
    Layer.Conv
      {
        Layer.in_h = h;
        in_w = h;
        in_ch;
        out_ch;
        kernel = 3;
        stride = 1;
        padding = 1;
        relu;
        depthwise = false;
      }
  in
  {
    Layer.model_name = "tiny-cnn";
    input_desc = "8x8x3";
    layers =
      [
        ("conv1", conv ~h:8 ~in_ch:3 ~out_ch:8 ~relu:true);
        ("conv2", conv ~h:8 ~in_ch:8 ~out_ch:8 ~relu:false);
        ( "add",
          Layer.Residual_add { r_h = 8; r_w = 8; r_ch = 8; back1 = 1; back2 = 2 } );
        ( "pool",
          Layer.Max_pool
            { p_in_h = 8; p_in_w = 8; p_ch = 8; window = 2; p_stride = 2; p_padding = 0 } );
        ("gap", Layer.Global_avg_pool { g_h = 4; g_w = 4; g_ch = 8 });
        ("fc", Layer.Matmul { m = 1; k = 8; n = 10; relu = false; count = 1 });
      ];
  }

let tiny_dw : Layer.model =
  {
    Layer.model_name = "tiny-dw";
    input_desc = "6x6x4";
    layers =
      [
        ( "dw",
          Layer.Conv
            {
              Layer.in_h = 6;
              in_w = 6;
              in_ch = 4;
              out_ch = 4;
              kernel = 3;
              stride = 1;
              padding = 1;
              relu = true;
              depthwise = true;
            } );
        ( "pw",
          Layer.Conv
            {
              Layer.in_h = 6;
              in_w = 6;
              in_ch = 4;
              out_ch = 6;
              kernel = 1;
              stride = 1;
              padding = 0;
              relu = false;
              depthwise = false;
            } );
      ];
  }

let run_net_test model ~input_shape ~seed () =
  let soc = functional_soc () in
  let rng = Rng.create ~seed:(seed + 7) in
  let input = Tensor.random rng input_shape ~lo:(-32) ~hi:32 in
  let expected = Runtime.reference_inference model ~input ~seed in
  let got = Runtime.run_functional soc ~core:0 model ~input ~seed in
  check_tensor (model.Layer.model_name ^ " inference") expected got

let test_strided_conv () =
  let model : Layer.model =
    {
      Layer.model_name = "strided";
      input_desc = "9x9x2";
      layers =
        [
          ( "conv",
            Layer.Conv
              {
                Layer.in_h = 9;
                in_w = 9;
                in_ch = 2;
                out_ch = 5;
                kernel = 3;
                stride = 2;
                padding = 1;
                relu = true;
                depthwise = false;
              } );
        ];
    }
  in
  run_net_test model ~input_shape:[| 1; 9; 9; 2 |] ~seed:31 ()

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_kernel_matmul;
    Alcotest.test_case "resadd through accumulator" `Quick test_resadd;
    Alcotest.test_case "tiny CNN end-to-end (conv/resadd/pool/gap/fc)" `Quick
      (run_net_test tiny_cnn ~input_shape:[| 1; 8; 8; 3 |] ~seed:11);
    Alcotest.test_case "depthwise + pointwise end-to-end" `Quick
      (run_net_test tiny_dw ~input_shape:[| 1; 6; 6; 4 |] ~seed:13);
    Alcotest.test_case "strided padded conv end-to-end" `Quick test_strided_conv;
  ]
