(* gem_vm: page tables, hardware walks, TLBs, and the two-level hierarchy
   with filter registers. *)

open Gem_vm

let mk_pt () = Page_table.create ~node_region_base:0x1000_0000 ()

let test_page_table_map () =
  let pt = mk_pt () in
  Page_table.map pt ~vpn:5 ~ppn:100;
  Alcotest.(check (option int)) "translate" (Some ((100 * 4096) + 7))
    (Page_table.translate pt ~vaddr:((5 * 4096) + 7));
  Alcotest.(check (option int)) "unmapped" None (Page_table.translate pt ~vaddr:0xdead000);
  Alcotest.(check int) "mapped pages" 1 (Page_table.mapped_pages pt);
  (* Remap doesn't double count. *)
  Page_table.map pt ~vpn:5 ~ppn:200;
  Alcotest.(check int) "remap" 1 (Page_table.mapped_pages pt)

let test_page_table_walk_addrs () =
  let pt = mk_pt () in
  Page_table.map pt ~vpn:0x12345 ~ppn:42;
  let addrs, ppn = Page_table.walk pt ~vpn:0x12345 in
  Alcotest.(check (option int)) "walk result" (Some 42) ppn;
  Alcotest.(check int) "three levels" 3 (List.length addrs);
  List.iter
    (fun a -> Alcotest.(check bool) "PTE in node region" true (a >= 0x1000_0000))
    addrs;
  (* A walk of an unmapped VPN stops early. *)
  let addrs', ppn' = Page_table.walk pt ~vpn:0x99999 in
  Alcotest.(check (option int)) "fault" None ppn';
  Alcotest.(check bool) "partial walk" true (List.length addrs' <= 3)

let qcheck_map_range =
  QCheck2.Test.make ~name:"map_range translates linearly" ~count:50
    QCheck2.Gen.(pair (int_range 1 64) (int_range 0 1000))
    (fun (pages, off) ->
      let pt = mk_pt () in
      let vaddr = 0x10000 and paddr = 0x200000 in
      Page_table.map_range pt ~vaddr ~bytes:(pages * 4096) ~paddr;
      let probe = vaddr + (off mod (pages * 4096)) in
      Page_table.translate pt ~vaddr:probe = Some (paddr + (probe - vaddr)))

let test_tlb_lru () =
  let tlb = Tlb.create ~entries:2 in
  Tlb.fill tlb ~vpn:1 ~ppn:10;
  Tlb.fill tlb ~vpn:2 ~ppn:20;
  ignore (Tlb.lookup tlb ~vpn:1);
  Tlb.fill tlb ~vpn:3 ~ppn:30;
  (* vpn 2 was LRU. *)
  Alcotest.(check bool) "1 kept" true (Tlb.probe tlb ~vpn:1 <> None);
  Alcotest.(check bool) "2 evicted" true (Tlb.probe tlb ~vpn:2 = None);
  Alcotest.(check bool) "3 present" true (Tlb.probe tlb ~vpn:3 <> None)

let test_tlb_zero_entries () =
  let tlb = Tlb.create ~entries:0 in
  Tlb.fill tlb ~vpn:1 ~ppn:10;
  (match Tlb.lookup tlb ~vpn:1 with
  | Tlb.Miss -> ()
  | Tlb.Hit _ -> Alcotest.fail "0-entry TLB must always miss");
  Alcotest.(check int) "stats" 1 (Tlb.misses tlb)

let test_ptw_timing_and_cache () =
  let pt = mk_pt () in
  Page_table.map_range pt ~vaddr:0 ~bytes:(1 lsl 21) ~paddr:0x40_0000;
  let ptw =
    Ptw.create ~page_table:pt ~pte_cache_entries:16
      ~mem_read:(fun ~now ~paddr:_ ~bytes:_ -> now + 20)
      ()
  in
  let _, t1 = Ptw.walk ptw ~now:0 ~vpn:0 in
  Alcotest.(check int) "cold walk = 3 reads" 60 t1;
  let _, t2 = Ptw.walk ptw ~now:100 ~vpn:1 in
  (* Upper levels cached: only the leaf PTE read remains. *)
  Alcotest.(check int) "warm walk = 1 read" 120 t2;
  Alcotest.(check bool) "cache hits counted" true (Ptw.pte_cache_hits ptw >= 2);
  Alcotest.check_raises "page fault" (Ptw.Page_fault 0x777777) (fun () ->
      ignore (Ptw.walk ptw ~now:0 ~vpn:0x777777))

let mk_hierarchy ?(priv = 4) ?(shared = 0) ?(filters = true) () =
  let pt = mk_pt () in
  Page_table.map_range pt ~vaddr:0 ~bytes:(1 lsl 22) ~paddr:0x40_0000;
  let ptw =
    Ptw.create ~page_table:pt ~mem_read:(fun ~now ~paddr:_ ~bytes:_ -> now + 20) ()
  in
  Hierarchy.create
    {
      Hierarchy.private_entries = priv;
      shared_entries = shared;
      filter_registers = filters;
      private_hit_latency = 2;
      shared_hit_latency = 8;
    }
    ~ptw

let test_hierarchy_levels () =
  let h = mk_hierarchy ~filters:true () in
  let o1 = Hierarchy.translate h ~now:0 ~vaddr:0x1000 ~write:false in
  Alcotest.(check bool) "first is walk" true (o1.Hierarchy.level = Hierarchy.Walk);
  let o2 = Hierarchy.translate h ~now:100 ~vaddr:0x1008 ~write:false in
  Alcotest.(check bool) "same page filters" true (o2.Hierarchy.level = Hierarchy.Filter);
  Alcotest.(check int) "filter costs zero" 100 o2.Hierarchy.finish;
  (* A write to the same page does NOT hit the read filter. *)
  let o3 = Hierarchy.translate h ~now:200 ~vaddr:0x1010 ~write:true in
  Alcotest.(check bool) "write misses read filter" true
    (o3.Hierarchy.level = Hierarchy.Private);
  Alcotest.(check int) "private hit latency" 202 o3.Hierarchy.finish;
  (* Correct physical addresses throughout. *)
  Alcotest.(check int) "paddr" (0x40_0000 + 0x1008) o2.Hierarchy.paddr

let test_hierarchy_shared_level () =
  let h = mk_hierarchy ~priv:1 ~shared:64 ~filters:false () in
  (* Touch pages 0 and 1 so page 0 falls out of the 1-entry private TLB
     but stays in the shared TLB. *)
  ignore (Hierarchy.translate h ~now:0 ~vaddr:0x0000 ~write:false);
  ignore (Hierarchy.translate h ~now:100 ~vaddr:0x1000 ~write:false);
  let o = Hierarchy.translate h ~now:200 ~vaddr:0x0008 ~write:false in
  Alcotest.(check bool) "shared hit" true (o.Hierarchy.level = Hierarchy.Shared);
  Alcotest.(check int) "shared latency" 210 o.Hierarchy.finish

let test_hierarchy_flush () =
  let h = mk_hierarchy () in
  ignore (Hierarchy.translate h ~now:0 ~vaddr:0x1000 ~write:false);
  Hierarchy.flush h;
  let o = Hierarchy.translate h ~now:100 ~vaddr:0x1000 ~write:false in
  Alcotest.(check bool) "walk after flush" true (o.Hierarchy.level = Hierarchy.Walk)

let qcheck_hierarchy_matches_page_table =
  QCheck2.Test.make ~name:"hierarchy translation == software translation" ~count:100
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 0 ((1 lsl 22) - 1)))
    (fun (seed, _) ->
      let h = mk_hierarchy ~priv:4 ~shared:16 () in
      let rng = Gem_util.Rng.create ~seed in
      let ok = ref true in
      for i = 0 to 50 do
        let vaddr = Gem_util.Rng.int rng (1 lsl 22) in
        let o = Hierarchy.translate h ~now:(i * 10) ~vaddr ~write:(Gem_util.Rng.bool rng) in
        if o.Hierarchy.paddr <> 0x40_0000 + vaddr then ok := false
      done;
      !ok)

let test_locality_stats () =
  let h = mk_hierarchy () in
  (* 3 reads on one page, then one on another: 2/3 same-page transitions. *)
  ignore (Hierarchy.translate h ~now:0 ~vaddr:0x1000 ~write:false);
  ignore (Hierarchy.translate h ~now:1 ~vaddr:0x1004 ~write:false);
  ignore (Hierarchy.translate h ~now:2 ~vaddr:0x1008 ~write:false);
  ignore (Hierarchy.translate h ~now:3 ~vaddr:0x2000 ~write:false);
  Alcotest.(check (float 1e-9)) "same-page reads" 0.5
    (Hierarchy.same_page_fraction_reads h)

let suite =
  [
    Alcotest.test_case "page table map/translate" `Quick test_page_table_map;
    Alcotest.test_case "page table walk addresses" `Quick test_page_table_walk_addrs;
    Alcotest.test_case "TLB true LRU" `Quick test_tlb_lru;
    Alcotest.test_case "0-entry TLB" `Quick test_tlb_zero_entries;
    Alcotest.test_case "PTW timing + PTE cache" `Quick test_ptw_timing_and_cache;
    Alcotest.test_case "hierarchy levels and latencies" `Quick test_hierarchy_levels;
    Alcotest.test_case "hierarchy shared level" `Quick test_hierarchy_shared_level;
    Alcotest.test_case "hierarchy flush" `Quick test_hierarchy_flush;
    Alcotest.test_case "page locality stats" `Quick test_locality_stats;
    QCheck_alcotest.to_alcotest qcheck_map_range;
    QCheck_alcotest.to_alcotest qcheck_hierarchy_matches_page_table;
  ]
