(* Checkpoint/restore: envelope integrity (version, checksum, atomic
   write), byte-identical resumption across the model zoo, the
   Resume_checkpoint replay loop, and the file-level round trip the CLI
   uses. *)

open Gem_util
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime
module Persist = Gem_persist.Persist
module Fault = Gem_sim.Fault
module J = Jsonx

let accel_mode = Runtime.Accel { im2col_on_accel = true }

let scaled name =
  match Gem_dnn.Model_zoo.find name with
  | Some m -> Gem_dnn.Model_zoo.scale_model ~factor:8 m
  | None -> Alcotest.failf "model zoo lost %S" name

let squeezenet8 = scaled "squeezenet1.1"

let temp_path suffix =
  Filename.temp_file "gem_persist_test" suffix

(* --- envelope ---------------------------------------------------------------- *)

let test_envelope_roundtrip () =
  let path = temp_path ".json" in
  let payload =
    J.Obj [ ("clock", J.Int 12345); ("data", Snap.of_int_list [ 1; 2; 3 ]) ]
  in
  let meta = [ ("model", J.String "test"); ("layers_done", J.Int 7) ] in
  Persist.save ~path ~meta ~payload;
  (match Persist.load ~path with
  | Error msg -> Alcotest.failf "fresh envelope rejected: %s" msg
  | Ok (meta', payload') ->
      Alcotest.(check string)
        "meta round-trips"
        (J.to_string (J.Obj meta))
        (J.to_string (J.Obj meta'));
      Alcotest.(check string)
        "payload round-trips" (J.to_string payload) (J.to_string payload'));
  Sys.remove path

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let expect_error what = function
  | Ok _ -> Alcotest.failf "%s: expected Error, got Ok" what
  | Error _ -> ()

let test_envelope_rejects () =
  let path = temp_path ".json" in
  (* Truncated write: a crash halfway through a non-atomic writer. *)
  Persist.save ~path ~meta:[] ~payload:(J.Obj [ ("x", J.Int 1) ]);
  let raw =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  write_raw path (String.sub raw 0 (String.length raw / 2));
  expect_error "truncated file" (Persist.load ~path);
  (* Checksum mismatch: payload bits changed after sealing. *)
  let bogus checksum version =
    J.to_string
      (J.Obj
         [ ("gem_persist_version", J.String version);
           ("checksum", J.String checksum);
           ("meta", J.Obj []);
           ("payload", J.Int 42) ])
  in
  write_raw path (bogus (String.make 32 '0') Persist.format_version);
  expect_error "corrupt payload" (Persist.load ~path);
  (* Version from a different build. *)
  write_raw path (bogus (String.make 32 '0') "999");
  expect_error "version mismatch" (Persist.load ~path);
  (* Not JSON at all. *)
  write_raw path "{ not json";
  expect_error "garbage" (Persist.load ~path);
  (* Missing file. *)
  Sys.remove path;
  expect_error "missing file" (Persist.load ~path)

(* --- restore determinism across the zoo --------------------------------------- *)

(* The golden property: interrupt a run at a mid-network checkpoint,
   rebuild a fresh SoC, restore, run the remainder — the final cycle
   count, per-layer records, profile table and the full serialized SoC
   state (engine clock, resource counters, trace ring, memory contents)
   must be byte-identical to the uninterrupted run's. *)
let check_restore_identity model =
  let name = model.Gem_dnn.Layer.model_name in
  let soc1 = Soc.create Soc_config.default in
  let r1 = Runtime.run soc1 ~core:0 model ~mode:accel_mode in
  let snap1 = J.to_string (Soc.snapshot soc1) in
  let k = List.length model.Gem_dnn.Layer.layers / 2 in
  let soc2 = Soc.create Soc_config.default in
  let mid = ref None in
  let _ =
    Runtime.run
      ~on_layer:(fun ~layer ~records ~finish ->
        if layer = k then mid := Some (records, finish, Soc.snapshot soc2))
      soc2 ~core:0 model ~mode:accel_mode
  in
  let records, finish, soc_json =
    match !mid with
    | Some v -> v
    | None -> Alcotest.failf "%s: no checkpoint captured at layer %d" name k
  in
  let soc3 = Soc.create Soc_config.default in
  let r3 =
    Runtime.run
      ~prepare:(fun _ -> Soc.restore soc3 soc_json)
      ~start_layer:(k + 1) ~resume:(records, finish) soc3 ~core:0 model
      ~mode:accel_mode
  in
  Alcotest.(check int)
    (name ^ ": total cycles") r1.Runtime.r_total_cycles
    r3.Runtime.r_total_cycles;
  Alcotest.(check bool)
    (name ^ ": per-layer records identical") true
    (r1.Runtime.r_layers = r3.Runtime.r_layers);
  Alcotest.(check bool)
    (name ^ ": profile table identical") true
    (r1.Runtime.r_profile = r3.Runtime.r_profile);
  Alcotest.(check string)
    (name ^ ": final SoC state byte-identical") snap1
    (J.to_string (Soc.snapshot soc3))

let test_restore_zoo () =
  List.iter
    (fun name -> check_restore_identity (scaled name))
    Gem_dnn.Model_zoo.names

(* A checkpoint restored into a *different* configuration must refuse,
   not half-restore. *)
let test_restore_shape_mismatch () =
  let soc = Soc.create Soc_config.default in
  let _ = Runtime.run soc ~core:0 squeezenet8 ~mode:accel_mode in
  let snap = Soc.snapshot soc in
  let other = Soc.create Soc_config.dual_core in
  (match Soc.restore other snap with
  | () -> Alcotest.fail "restore into a dual-core SoC must raise"
  | exception Snap.Malformed _ -> ());
  (* And the trivial sanity: restoring into a matching fresh SoC works. *)
  let same = Soc.create Soc_config.default in
  Soc.restore same snap;
  Alcotest.(check string)
    "restore is lossless" (J.to_string snap)
    (J.to_string (Soc.snapshot same))

(* --- the file-level driver (what the CLI runs) --------------------------------- *)

let test_driver_file_roundtrip () =
  let path = temp_path ".ckpt" in
  let config = Soc_config.default in
  let clean =
    Persist.run ~config ~core:0 squeezenet8 ~mode:accel_mode
  in
  let ck_run =
    Persist.run ~checkpoint_every:3 ~checkpoint_out:path ~config ~core:0
      squeezenet8 ~mode:accel_mode
  in
  Alcotest.(check bool) "checkpoints taken" true (ck_run.Persist.o_checkpoints > 0);
  Alcotest.(check int)
    "checkpointing does not perturb timing"
    clean.Persist.o_result.Runtime.r_total_cycles
    ck_run.Persist.o_result.Runtime.r_total_cycles;
  (* Resume from whatever checkpoint the file holds. *)
  let ck =
    match Persist.load_checkpoint ~path with
    | Ok ck -> ck
    | Error msg -> Alcotest.failf "reload failed: %s" msg
  in
  Alcotest.(check bool) "mid-run checkpoint" true (ck.Persist.ck_next_layer > 0);
  let resumed =
    Persist.run ~restore:ck ~config ~core:0 squeezenet8 ~mode:accel_mode
  in
  Alcotest.(check int)
    "resumed run reproduces the uninterrupted total"
    clean.Persist.o_result.Runtime.r_total_cycles
    resumed.Persist.o_result.Runtime.r_total_cycles;
  Alcotest.(check bool)
    "resumed run reproduces the full layer table" true
    (clean.Persist.o_result.Runtime.r_layers
    = resumed.Persist.o_result.Runtime.r_layers);
  (* Mismatched metadata refuses up front. *)
  (match
     Persist.run ~restore:ck ~config ~core:0 (scaled "alexnet")
       ~mode:accel_mode
   with
  | _ -> Alcotest.fail "restoring a squeezenet checkpoint into alexnet must raise"
  | exception Invalid_argument _ -> ());
  Sys.remove path

(* --- Resume_checkpoint replay --------------------------------------------------- *)

let test_resume_checkpoint_recovers () =
  (* Injected faults under Resume_checkpoint: each trap replays from the
     last quiesced snapshot with a re-salted plan until an attempt's
     remaining draws stay clean. Deterministic: same seeds, same replay
     count, same final total. *)
  let go () =
    Persist.run ~policy:Runtime.Resume_checkpoint ~inject:(42, 0.00002)
      ~checkpoint_every:2 ~max_replays:20 ~config:Soc_config.default ~core:0
      squeezenet8 ~mode:accel_mode
  in
  let o1 = go () in
  Alcotest.(check bool) "run completed" true
    (o1.Persist.o_result.Runtime.r_total_cycles > 0);
  Alcotest.(check bool) "replays happened" true (o1.Persist.o_replays > 0);
  Alcotest.(check int) "all layers accounted"
    (List.length squeezenet8.Gem_dnn.Layer.layers)
    (List.length o1.Persist.o_result.Runtime.r_layers);
  let o2 = go () in
  Alcotest.(check int) "deterministic replay count" o1.Persist.o_replays
    o2.Persist.o_replays;
  Alcotest.(check int) "deterministic final total"
    o1.Persist.o_result.Runtime.r_total_cycles
    o2.Persist.o_result.Runtime.r_total_cycles

let test_resume_checkpoint_bounded () =
  (* A watchdog trip is not transient: every replay re-trips it, so the
     budget must exhaust and the trap propagate instead of looping. *)
  match
    Persist.run ~policy:Runtime.Resume_checkpoint ~watchdog:50
      ~checkpoint_every:2 ~max_replays:2 ~config:Soc_config.default ~core:0
      squeezenet8 ~mode:accel_mode
  with
  | _ -> Alcotest.fail "exhausted replays must propagate the trap"
  | exception Fault.Trap f ->
      Alcotest.(check string) "cause" "watchdog-timeout"
        (Fault.cause_label f.Fault.cause)

let suite =
  [
    Alcotest.test_case "envelope round-trip" `Quick test_envelope_roundtrip;
    Alcotest.test_case "envelope rejects corrupt/truncated/foreign" `Quick
      test_envelope_rejects;
    Alcotest.test_case "restore determinism across the model zoo" `Slow
      test_restore_zoo;
    Alcotest.test_case "restore refuses a mismatched SoC" `Quick
      test_restore_shape_mismatch;
    Alcotest.test_case "driver: checkpoint file round-trip" `Quick
      test_driver_file_roundtrip;
    Alcotest.test_case "Resume_checkpoint replays to completion" `Quick
      test_resume_checkpoint_recovers;
    Alcotest.test_case "Resume_checkpoint budget is bounded" `Quick
      test_resume_checkpoint_bounded;
  ]
