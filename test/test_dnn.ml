(* gem_dnn: model-zoo MAC/weight counts against published values, layer
   arithmetic, residual back-references, scaling. *)

open Gem_dnn

let test_model_macs () =
  (* Exact MAC counts for the generated layer tables; reference values
     match the published per-network totals (ResNet50 ~4.1 GMACs, AlexNet
     ~0.71, SqueezeNet1.1 ~0.35, MobileNetV2 ~0.3, BERT-base@128 ~11.2). *)
  Alcotest.(check int) "resnet50" 4_089_184_256 (Layer.total_macs Model_zoo.resnet50);
  Alcotest.(check int) "alexnet" 714_188_480 (Layer.total_macs Model_zoo.alexnet);
  Alcotest.(check int) "squeezenet" 349_151_936 (Layer.total_macs Model_zoo.squeezenet);
  Alcotest.(check int) "mobilenetv2" 300_774_272 (Layer.total_macs Model_zoo.mobilenetv2);
  Alcotest.(check int) "bert" 11_174_215_680 (Layer.total_macs Model_zoo.bert)

let test_model_weights () =
  let mb m = Layer.total_weight_bytes m / 1_000_000 in
  Alcotest.(check int) "resnet50 ~25.5M" 25 (mb Model_zoo.resnet50);
  Alcotest.(check int) "alexnet ~61M" 61 (mb Model_zoo.alexnet);
  Alcotest.(check int) "squeezenet ~1.2M" 1 (mb Model_zoo.squeezenet);
  Alcotest.(check int) "mobilenet ~3.5M" 3 (mb Model_zoo.mobilenetv2)

let test_layer_math () =
  let conv =
    Layer.Conv
      {
        Layer.in_h = 56;
        in_w = 56;
        in_ch = 64;
        out_ch = 64;
        kernel = 3;
        stride = 1;
        padding = 1;
        relu = true;
        depthwise = false;
      }
  in
  Alcotest.(check int) "conv macs" (56 * 56 * 64 * 64 * 9) (Layer.macs conv);
  Alcotest.(check int) "conv weights" (64 * 64 * 9) (Layer.weight_bytes conv);
  (match Layer.as_matmul conv with
  | Some mm ->
      Alcotest.(check int) "lowered M" (56 * 56) mm.Layer.m;
      Alcotest.(check int) "lowered K" (9 * 64) mm.Layer.k;
      Alcotest.(check int) "lowered N" 64 mm.Layer.n
  | None -> Alcotest.fail "conv should lower");
  let dw = Layer.Conv { (match conv with Layer.Conv c -> c | _ -> assert false) with Layer.depthwise = true } in
  (match Layer.as_matmul dw with
  | Some mm ->
      Alcotest.(check int) "dw N=1" 1 mm.Layer.n;
      Alcotest.(check int) "dw count" 64 mm.Layer.count
  | None -> Alcotest.fail "dw should lower")

let test_resnet_structure () =
  let m = Model_zoo.resnet50 in
  let convs =
    List.length
      (List.filter
         (fun (_, l) -> Layer.class_of l = Layer.Class_conv)
         m.Layer.layers)
  in
  let adds =
    List.length
      (List.filter
         (fun (_, l) -> Layer.class_of l = Layer.Class_resadd)
         m.Layer.layers)
  in
  Alcotest.(check int) "53 convolutions (incl. projections)" 53 convs;
  Alcotest.(check int) "16 residual adds" 16 adds;
  (* Every resadd back-reference points at a layer with matching size. *)
  let layers = Array.of_list m.Layer.layers in
  Array.iteri
    (fun i (_, l) ->
      match l with
      | Layer.Residual_add { r_h; r_w; r_ch; back1; back2 } ->
          List.iter
            (fun back ->
              let _, src = layers.(i - back) in
              Alcotest.(check int)
                (Printf.sprintf "operand bytes at layer %d (back %d)" i back)
                (r_h * r_w * r_ch) (Layer.out_bytes src))
            [ back1; back2 ]
      | _ -> ())
    layers

let test_mobilenet_depthwise () =
  let dw_macs =
    Gem_util.Mathx.sum_list
      (List.filter_map
         (fun (_, l) ->
           if Layer.class_of l = Layer.Class_depthwise then Some (Layer.macs l)
           else None)
         Model_zoo.mobilenetv2.Layer.layers)
  in
  (* Depthwise is a small MAC fraction but a large time fraction on wide
     arrays — the asymmetry the paper highlights. *)
  Alcotest.(check bool) "dw macs ~ 10-15% of total" true
    (let frac = float_of_int dw_macs /. float_of_int (Layer.total_macs Model_zoo.mobilenetv2) in
     frac > 0.05 && frac < 0.25)

let test_scale_model () =
  let s = Model_zoo.scale_model ~factor:4 Model_zoo.resnet50 in
  Alcotest.(check int) "layer count preserved"
    (Layer.layer_count Model_zoo.resnet50)
    (Layer.layer_count s);
  Alcotest.(check bool) "macs shrink ~16x" true
    (let ratio =
       float_of_int (Layer.total_macs Model_zoo.resnet50)
       /. float_of_int (Layer.total_macs s)
     in
     ratio > 10. && ratio < 24.)

let test_find () =
  Alcotest.(check bool) "find by name" true (Model_zoo.find "ResNet50" <> None);
  Alcotest.(check bool) "unknown" true (Model_zoo.find "vgg" = None)

let suite =
  [
    Alcotest.test_case "model-zoo MAC counts (published values)" `Quick test_model_macs;
    Alcotest.test_case "model-zoo weight sizes" `Quick test_model_weights;
    Alcotest.test_case "layer arithmetic and lowering" `Quick test_layer_math;
    Alcotest.test_case "ResNet50 structure + resadd backrefs" `Quick test_resnet_structure;
    Alcotest.test_case "MobileNetV2 depthwise share" `Quick test_mobilenet_depthwise;
    Alcotest.test_case "scale_model" `Quick test_scale_model;
    Alcotest.test_case "model lookup" `Quick test_find;
  ]
