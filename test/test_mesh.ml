(* Cycle-accurate spatial-array tests: both dataflows, both extremes of the
   two-level hierarchy (fully pipelined TPU-like and fully combinational
   NVDLA-like tiles), against the saturating reference matrix product. *)

open Gem_util
module P = Gemmini.Params
module Mesh = Gemmini.Mesh

let check_matrix msg expected actual =
  if not (Matrix.equal expected actual) then
    Alcotest.failf "%s:\nexpected:\n%sgot:\n%s" msg (Matrix.to_string expected)
      (Matrix.to_string actual)

let mesh_configs =
  [
    ("pipelined 4x4 (1x1 tiles)", { P.default with mesh_rows = 4; mesh_cols = 4; tile_rows = 1; tile_cols = 1 });
    ("combinational 4x4 (one tile)", { P.default with mesh_rows = 1; mesh_cols = 1; tile_rows = 4; tile_cols = 4 });
    ("mixed 4x4 (2x2 mesh of 2x2 tiles)", { P.default with mesh_rows = 2; mesh_cols = 2; tile_rows = 2; tile_cols = 2 });
    ("rect tiles 4x4 (4x1 tiles)", { P.default with mesh_rows = 1; mesh_cols = 4; tile_rows = 4; tile_cols = 1 });
  ]

let run_one params ~dataflow ~i ~k ~j ~seed ~with_bias () =
  let rng = Rng.create ~seed in
  let a = Matrix.random rng ~rows:i ~cols:k ~lo:(-128) ~hi:127 in
  let b = Matrix.random rng ~rows:k ~cols:j ~lo:(-128) ~hi:127 in
  let d =
    if with_bias then Some (Matrix.random rng ~rows:i ~cols:j ~lo:(-100) ~hi:100)
    else None
  in
  let mesh = Mesh.create params in
  let result = Mesh.run_matmul mesh ~dataflow ~a ~b ?d () in
  let expected =
    let prod = Matrix.mul_sat32 a b in
    match d with None -> prod | Some d -> Matrix.add_sat32 prod d
  in
  check_matrix "matmul result" expected result.Mesh.out;
  (* The closed-form timing model must agree with the measured schedule. *)
  Alcotest.(check int)
    "closed-form cycles"
    (Mesh.block_cycles params ~dataflow ~rows:i ~k ~cols:j ~preload:true)
    result.Mesh.cycles

let matmul_cases =
  List.concat_map
    (fun (name, params) ->
      List.concat_map
        (fun dataflow ->
          let df_name = match dataflow with `WS -> "WS" | `OS -> "OS" in
          [
            Alcotest.test_case
              (Printf.sprintf "%s %s full block" name df_name)
              `Quick
              (run_one params ~dataflow ~i:4 ~k:4 ~j:4 ~seed:1 ~with_bias:false);
            Alcotest.test_case
              (Printf.sprintf "%s %s tall A" name df_name)
              `Quick
              (run_one params ~dataflow ~i:(match dataflow with `WS -> 9 | `OS -> 3)
                 ~k:4 ~j:4 ~seed:2 ~with_bias:false);
            Alcotest.test_case
              (Printf.sprintf "%s %s ragged" name df_name)
              `Quick
              (run_one params ~dataflow ~i:3 ~k:2 ~j:3 ~seed:3 ~with_bias:false);
            Alcotest.test_case
              (Printf.sprintf "%s %s with bias" name df_name)
              `Quick
              (run_one params ~dataflow ~i:4 ~k:4 ~j:4 ~seed:4 ~with_bias:true);
          ])
        [ `WS; `OS ])
    mesh_configs

let test_saturation () =
  (* All-max int8 inputs with a deep K should clamp at int32 max rather
     than wrap. Use a 4x4 array, K=4: 127*127*4 fits, so scale up with
     repeated accumulate via bias instead: bias near int32 max. *)
  let params = { P.default with mesh_rows = 4; mesh_cols = 4 } in
  let mesh = Mesh.create params in
  let a = Matrix.init ~rows:1 ~cols:4 (fun _ _ -> 127) in
  let b = Matrix.init ~rows:4 ~cols:4 (fun _ _ -> 127) in
  let d = Matrix.init ~rows:1 ~cols:4 (fun _ _ -> Fixed.int32_max - 10) in
  let result = Mesh.run_matmul mesh ~dataflow:`WS ~a ~b ~d () in
  Alcotest.(check int) "saturated" Fixed.int32_max (Matrix.get result.Mesh.out 0 0)

let test_ws_weights_resident () =
  (* Running twice without re-preloading is the WS dataflow's reuse case;
     block_cycles ~preload:false must be cheaper by exactly dim rows. *)
  let params = { P.default with mesh_rows = 4; mesh_cols = 4 } in
  let with_pl = Mesh.block_cycles params ~dataflow:`WS ~rows:4 ~k:4 ~cols:4 ~preload:true in
  let without = Mesh.block_cycles params ~dataflow:`WS ~rows:4 ~k:4 ~cols:4 ~preload:false in
  Alcotest.(check int) "preload cost" 4 (with_pl - without)

let test_pipelining_cost () =
  (* Fully pipelined vs fully combinational: same MACs, different skew. The
     combinational tile has no inter-tile registers, so its schedule is
     shorter in cycles (it pays in clock period instead, cf. Fig. 3). *)
  let pipelined = P.tpu_like ~pes:16 in
  let combinational = P.nvdla_like ~pes:16 in
  let c_pipe = Mesh.block_cycles pipelined ~dataflow:`WS ~rows:4 ~k:4 ~cols:4 ~preload:true in
  let c_comb = Mesh.block_cycles combinational ~dataflow:`WS ~rows:4 ~k:4 ~cols:4 ~preload:true in
  Alcotest.(check bool) "combinational has fewer skew cycles" true (c_comb < c_pipe)

let qcheck_matmul =
  let gen =
    QCheck2.Gen.(
      let* i = int_range 1 12 in
      let* k = int_range 1 4 in
      let* j = int_range 1 4 in
      let* seed = int_range 0 10_000 in
      let* df = oneofl [ `WS; `OS ] in
      let* cfg = int_range 0 (List.length mesh_configs - 1) in
      return (i, k, j, seed, df, cfg))
  in
  QCheck2.Test.make ~name:"mesh matmul == saturating reference (all configs)"
    ~count:60 gen (fun (i, k, j, seed, df, cfg) ->
      let _, params = List.nth mesh_configs cfg in
      let i = match df with `WS -> i | `OS -> min i 4 in
      run_one params ~dataflow:df ~i ~k ~j ~seed ~with_bias:(seed mod 2 = 0) ();
      true)

(* The two dataflows are different schedules of the same arithmetic: for
   any operands that fit a single block in both (OS limits output rows to
   the array height), WS and OS must produce bit-identical results. *)
let qcheck_ws_os_equivalence =
  let gen =
    QCheck2.Gen.(
      let* i = int_range 1 4 in
      let* k = int_range 1 4 in
      let* j = int_range 1 4 in
      let* seed = int_range 0 1_000_000 in
      let* with_bias = bool in
      let* cfg = int_range 0 (List.length mesh_configs - 1) in
      return (i, k, j, seed, with_bias, cfg))
  in
  QCheck2.Test.make ~name:"WS == OS on shared-domain blocks (all configs)"
    ~count:100 gen (fun (i, k, j, seed, with_bias, cfg) ->
      let _, params = List.nth mesh_configs cfg in
      let rng = Rng.create ~seed in
      let a = Matrix.random rng ~rows:i ~cols:k ~lo:(-128) ~hi:127 in
      let b = Matrix.random rng ~rows:k ~cols:j ~lo:(-128) ~hi:127 in
      let d =
        if with_bias then
          Some (Matrix.random rng ~rows:i ~cols:j ~lo:(-128) ~hi:127)
        else None
      in
      let run dataflow =
        let mesh = Mesh.create params in
        (Mesh.run_matmul mesh ~dataflow ~a ~b ?d ()).Mesh.out
      in
      Matrix.equal (run `WS) (run `OS))

(* Negative paths of the local memories: structured traps, never silent
   corruption or an unstructured exception. *)
let sp4 () = Gemmini.Scratchpad.create { P.default with mesh_rows = 4; mesh_cols = 4 }

let check_trap name expect f =
  match f () with
  | _ -> Alcotest.failf "%s: no trap raised" name
  | exception Gem_sim.Fault.Trap fault ->
      Alcotest.(check string)
        name expect
        (Gem_sim.Fault.cause_label fault.Gem_sim.Fault.cause)

let test_scratchpad_oob () =
  let sp = sp4 () in
  let last = Gemmini.Scratchpad.sp_rows sp - 1 in
  check_trap "read_block past the end" "local-oob" (fun () ->
      Gemmini.Scratchpad.read_block sp
        (Gemmini.Local_addr.scratchpad ~row:last)
        ~rows:2 ~cols:4);
  check_trap "write_block past the end" "local-oob" (fun () ->
      Gemmini.Scratchpad.write_block sp
        (Gemmini.Local_addr.scratchpad ~row:last)
        (Matrix.init ~rows:2 ~cols:4 (fun _ _ -> 1)));
  let acc_last = Gemmini.Scratchpad.acc_rows sp - 1 in
  check_trap "accumulator read_block past the end" "local-oob" (fun () ->
      Gemmini.Scratchpad.read_block sp
        (Gemmini.Local_addr.accumulator ~row:acc_last ())
        ~rows:2 ~cols:4)

let test_scratchpad_illegal () =
  let sp = sp4 () in
  check_trap "garbage dereference" "illegal-inst" (fun () ->
      Gemmini.Scratchpad.read_row sp Gemmini.Local_addr.garbage ~offset:0);
  check_trap "accumulate flag on a scratchpad address" "illegal-inst"
    (fun () ->
      Gemmini.Scratchpad.write_row sp
        (Gemmini.Local_addr.of_bits (0x4000_0000 lor 3))
        ~offset:0 (Array.make 4 1))

let suite =
  matmul_cases
  @ [
      Alcotest.test_case "int32 saturation in accumulation" `Quick test_saturation;
      Alcotest.test_case "WS preload cost is dim rows" `Quick test_ws_weights_resident;
      Alcotest.test_case "combinational tiles shorten schedule" `Quick test_pipelining_cost;
      QCheck_alcotest.to_alcotest qcheck_matmul;
      QCheck_alcotest.to_alcotest qcheck_ws_os_equivalence;
      Alcotest.test_case "scratchpad blocks trap out-of-bounds" `Quick
        test_scratchpad_oob;
      Alcotest.test_case "scratchpad traps garbage / misplaced flags" `Quick
        test_scratchpad_illegal;
    ]
