(* ISA encode/decode: bit-exact roundtrip over the full command space. *)

open Gemmini
module L = Local_addr

let check_roundtrip cmd =
  match Isa.decode (Isa.encode cmd) with
  | Ok cmd' ->
      if not (Isa.equal cmd cmd') then
        Alcotest.failf "roundtrip mismatch:\n  %s\n  %s" (Isa.to_string cmd)
          (Isa.to_string cmd')
  | Error e -> Alcotest.failf "decode failed for %s: %s" (Isa.to_string cmd) e

let sample_cmds =
  [
    Isa.Config_ex
      {
        dataflow = `WS;
        activation = Peripheral.Relu;
        sys_shift = 12;
        a_transpose = true;
        b_transpose = false;
      };
    Isa.Config_ex
      {
        dataflow = `OS;
        activation = Peripheral.Relu6 { shift = 5 };
        sys_shift = 0;
        a_transpose = false;
        b_transpose = true;
      };
    Isa.Config_ld { ld_stride_bytes = 224 * 3; ld_scale = 0.5; ld_shrunk = false; ld_id = 0 };
    Isa.Config_ld { ld_stride_bytes = 0; ld_scale = 1.0; ld_shrunk = true; ld_id = 2 };
    Isa.Config_st
      {
        st_stride_bytes = 1000;
        st_activation = Peripheral.Relu;
        st_scale = 0.0625;
        st_pool = Some { Isa.window = 3; stride = 2; padding = 1 };
      };
    Isa.Mvin
      ( { Isa.dram_addr = 0xDEAD000; local = L.scratchpad ~row:1234; cols = 64; rows = 16 },
        1 );
    Isa.Mvout
      {
        Isa.dram_addr = 0xBEEF000;
        local = L.accumulator ~accumulate:true ~row:77 ();
        cols = 16;
        rows = 16;
      };
    Isa.Preload
      {
        b = L.scratchpad ~row:512;
        c = L.accumulator ~row:0 ();
        b_cols = 16;
        b_rows = 16;
        c_cols = 16;
        c_rows = 16;
      };
    Isa.Compute_preloaded
      {
        a = L.scratchpad ~row:0;
        bd = L.garbage;
        a_cols = 16;
        a_rows = 16;
        bd_cols = 16;
        bd_rows = 16;
      };
    Isa.Compute_accumulated
      {
        a = L.garbage;
        bd = L.accumulator ~full_width:true ~row:3 ();
        a_cols = 1;
        a_rows = 1;
        bd_cols = 1;
        bd_rows = 1;
      };
    Isa.Flush;
    Isa.Fence;
  ]

let test_samples () = List.iter check_roundtrip sample_cmds

let qcheck_mv_roundtrip =
  let gen =
    QCheck2.Gen.(
      let* addr = int_range 0 ((1 lsl 40) - 1) in
      let* row = int_range 0 100000 in
      let* cols = int_range 1 0xFFFF in
      let* rows = int_range 1 0xFFFF in
      let* id = int_range 0 2 in
      let* acc = bool in
      let* accum = bool in
      let* full = bool in
      return (addr, row, cols, rows, id, acc, accum, full))
  in
  QCheck2.Test.make ~name:"mvin/mvout roundtrip" ~count:200 gen
    (fun (addr, row, cols, rows, id, acc, accum, full) ->
      let local =
        if acc then L.accumulator ~accumulate:accum ~full_width:full ~row ()
        else L.scratchpad ~row
      in
      let mv = { Isa.dram_addr = addr; local; cols; rows } in
      check_roundtrip (Isa.Mvin (mv, id));
      check_roundtrip (Isa.Mvout mv);
      true)

let qcheck_config_ld_roundtrip =
  let gen =
    QCheck2.Gen.(
      let* stride = int_range 0 0xFFFF_FFFF in
      let* id = int_range 0 2 in
      let* shrunk = bool in
      let* scale = oneofl [ 1.0; 0.5; 0.25; 0.0625; 2.0 ] in
      return (stride, id, shrunk, scale))
  in
  QCheck2.Test.make ~name:"config_ld roundtrip" ~count:100 gen
    (fun (stride, id, shrunk, scale) ->
      check_roundtrip
        (Isa.Config_ld
           { ld_stride_bytes = stride; ld_scale = scale; ld_shrunk = shrunk; ld_id = id });
      true)

let test_local_addr () =
  let sp = L.scratchpad ~row:42 in
  Alcotest.(check bool) "sp not acc" false (L.is_accumulator sp);
  Alcotest.(check int) "row" 42 (L.row sp);
  let acc = L.accumulator ~accumulate:true ~full_width:true ~row:7 () in
  Alcotest.(check bool) "acc" true (L.is_accumulator acc);
  Alcotest.(check bool) "accumulate" true (L.accumulate_flag acc);
  Alcotest.(check bool) "full" true (L.full_width_flag acc);
  Alcotest.(check int) "row" 7 (L.row acc);
  let acc2 = L.add_rows acc 5 in
  Alcotest.(check int) "add_rows keeps flags" 12 (L.row acc2);
  Alcotest.(check bool) "add_rows keeps acc" true (L.accumulate_flag acc2);
  Alcotest.(check bool) "garbage" true (L.is_garbage L.garbage);
  Alcotest.(check bool) "garbage roundtrip" true
    (L.is_garbage (L.of_bits (L.to_bits L.garbage)))

let test_bad_decode () =
  (match Isa.decode { Isa.funct = 99; rs1 = 0L; rs2 = 0L } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown funct error");
  match Isa.decode { Isa.funct = 0; rs1 = 3L; rs2 = 0L } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected bad config selector error"

(* One random instance of EVERY constructor per iteration, so the fuzz
   cannot silently lose coverage when the command set grows. Scales are
   drawn from fp32-exact values — the packed formats carry 32-bit floats. *)
let qcheck_all_constructors =
  let open Gem_util in
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"every constructor roundtrips" ~count:200 gen
    (fun seed ->
      let rng = Rng.create ~seed in
      let i ~lo ~hi = Rng.int_in rng ~lo ~hi in
      let scale () = Rng.pick rng [| 1.0; 0.5; 0.25; 0.0625; 2.0; -1.5; 0.0 |] in
      let activation () =
        match i ~lo:0 ~hi:2 with
        | 0 -> Peripheral.No_activation
        | 1 -> Peripheral.Relu
        | _ -> Peripheral.Relu6 { shift = i ~lo:0 ~hi:63 }
      in
      let local () =
        match i ~lo:0 ~hi:2 with
        | 0 -> L.garbage
        | 1 -> L.scratchpad ~row:(i ~lo:0 ~hi:((1 lsl 29) - 1))
        | _ ->
            L.accumulator ~accumulate:(Rng.bool rng)
              ~full_width:(Rng.bool rng)
              ~row:(i ~lo:0 ~hi:((1 lsl 29) - 1))
              ()
      in
      let mv () =
        {
          Isa.dram_addr = i ~lo:0 ~hi:((1 lsl 48) - 1);
          local = local ();
          cols = i ~lo:1 ~hi:0xFFFF;
          rows = i ~lo:1 ~hi:0xFFFF;
        }
      in
      let compute () =
        {
          Isa.a = local ();
          bd = local ();
          a_cols = i ~lo:0 ~hi:0xFFFF;
          a_rows = i ~lo:0 ~hi:0xFFFF;
          bd_cols = i ~lo:0 ~hi:0xFFFF;
          bd_rows = i ~lo:0 ~hi:0xFFFF;
        }
      in
      let every_constructor =
        [
          Isa.Config_ex
            {
              dataflow = (if Rng.bool rng then `WS else `OS);
              activation = activation ();
              sys_shift = i ~lo:0 ~hi:63;
              a_transpose = Rng.bool rng;
              b_transpose = Rng.bool rng;
            };
          Isa.Config_ld
            {
              ld_stride_bytes = i ~lo:0 ~hi:0xFFFF_FFFF;
              ld_scale = scale ();
              ld_shrunk = Rng.bool rng;
              ld_id = i ~lo:0 ~hi:2;
            };
          Isa.Config_st
            {
              st_stride_bytes = i ~lo:0 ~hi:0xFFFF_FFFF;
              st_activation = activation ();
              st_scale = scale ();
              st_pool =
                (if Rng.bool rng then None
                 else
                   Some
                     {
                       Isa.window = i ~lo:1 ~hi:15;
                       stride = i ~lo:1 ~hi:15;
                       padding = i ~lo:0 ~hi:15;
                     });
            };
          Isa.Mvin (mv (), i ~lo:0 ~hi:2);
          Isa.Mvout (mv ());
          Isa.Preload
            {
              b = local ();
              c = local ();
              b_cols = i ~lo:0 ~hi:0xFFFF;
              b_rows = i ~lo:0 ~hi:0xFFFF;
              c_cols = i ~lo:0 ~hi:0xFFFF;
              c_rows = i ~lo:0 ~hi:0xFFFF;
            };
          Isa.Compute_preloaded (compute ());
          Isa.Compute_accumulated (compute ());
          Isa.Loop_ws_bounds
            {
              lw_m = i ~lo:1 ~hi:0xFFFF;
              lw_k = i ~lo:1 ~hi:0xFFFF;
              lw_n = i ~lo:1 ~hi:0xFFFF;
              lw_has_bias = Rng.bool rng;
              lw_activation = activation ();
            };
          Isa.Loop_ws_addrs
            {
              lw_a = i ~lo:0 ~hi:((1 lsl 48) - 1);
              lw_b = i ~lo:0 ~hi:((1 lsl 48) - 1);
            };
          Isa.Loop_ws_outs
            {
              lw_bias = i ~lo:0 ~hi:((1 lsl 48) - 1);
              lw_c = i ~lo:0 ~hi:((1 lsl 48) - 1);
            };
          Isa.Loop_ws
            {
              lw_a_stride = i ~lo:0 ~hi:0xFF_FFFF;
              lw_b_stride = i ~lo:0 ~hi:0xFF_FFFF;
              lw_c_stride = i ~lo:0 ~hi:0xFF_FFFF;
              lw_scale = scale ();
            };
          Isa.Flush;
          Isa.Fence;
        ]
      in
      List.iter check_roundtrip every_constructor;
      true)

let check_rejected name insn =
  match Isa.decode insn with
  | Error _ -> ()
  | Ok cmd ->
      Alcotest.failf "%s decoded to %s instead of an error" name
        (Isa.to_string cmd)

let test_corrupted_encodings () =
  (* Unknown functs: the gaps in the opcode map and beyond it. *)
  List.iter
    (fun funct ->
      check_rejected
        (Printf.sprintf "funct %d" funct)
        { Isa.funct; rs1 = 0L; rs2 = 0L })
    [ 12; 13; 16; 99; 127 ];
  (* Config with the unused selector value. *)
  check_rejected "config selector 3" { Isa.funct = 0; rs1 = 3L; rs2 = 0L };
  (* Reserved activation code 3, in both places it is encoded. *)
  let ex_good = Isa.encode (List.hd sample_cmds) in
  check_rejected "config_ex activation code 3"
    { ex_good with Isa.rs1 = Int64.logor ex_good.Isa.rs1 0b11000L };
  let lwb_good =
    Isa.encode
      (Isa.Loop_ws_bounds
         {
           lw_m = 4;
           lw_k = 4;
           lw_n = 4;
           lw_has_bias = false;
           lw_activation = Peripheral.No_activation;
         })
  in
  check_rejected "loop_ws_bounds activation code 3"
    { lwb_good with Isa.rs2 = Int64.logor lwb_good.Isa.rs2 0b110L }

let test_local_addr_invalid () =
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "negative row" (fun () -> L.scratchpad ~row:(-1));
  expect_invalid "row = 2^29" (fun () -> L.scratchpad ~row:(1 lsl 29));
  expect_invalid "accumulator row overflow" (fun () ->
      L.accumulator ~row:(1 lsl 30) ());
  expect_invalid "add_rows overflow" (fun () ->
      L.add_rows (L.scratchpad ~row:((1 lsl 29) - 1)) 1);
  (* add_rows on garbage stays garbage instead of raising. *)
  Alcotest.(check bool)
    "garbage + rows = garbage" true
    (L.is_garbage (L.add_rows L.garbage 1000))

let suite =
  [
    Alcotest.test_case "sample command roundtrips" `Quick test_samples;
    Alcotest.test_case "local address flags" `Quick test_local_addr;
    Alcotest.test_case "bad decodes rejected" `Quick test_bad_decode;
    Alcotest.test_case "corrupted encodings rejected" `Quick
      test_corrupted_encodings;
    Alcotest.test_case "local address invalid rows raise" `Quick
      test_local_addr_invalid;
    QCheck_alcotest.to_alcotest qcheck_mv_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_config_ld_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_all_constructors;
  ]
