(* ISA encode/decode: bit-exact roundtrip over the full command space. *)

open Gemmini
module L = Local_addr

let check_roundtrip cmd =
  match Isa.decode (Isa.encode cmd) with
  | Ok cmd' ->
      if not (Isa.equal cmd cmd') then
        Alcotest.failf "roundtrip mismatch:\n  %s\n  %s" (Isa.to_string cmd)
          (Isa.to_string cmd')
  | Error e -> Alcotest.failf "decode failed for %s: %s" (Isa.to_string cmd) e

let sample_cmds =
  [
    Isa.Config_ex
      {
        dataflow = `WS;
        activation = Peripheral.Relu;
        sys_shift = 12;
        a_transpose = true;
        b_transpose = false;
      };
    Isa.Config_ex
      {
        dataflow = `OS;
        activation = Peripheral.Relu6 { shift = 5 };
        sys_shift = 0;
        a_transpose = false;
        b_transpose = true;
      };
    Isa.Config_ld { ld_stride_bytes = 224 * 3; ld_scale = 0.5; ld_shrunk = false; ld_id = 0 };
    Isa.Config_ld { ld_stride_bytes = 0; ld_scale = 1.0; ld_shrunk = true; ld_id = 2 };
    Isa.Config_st
      {
        st_stride_bytes = 1000;
        st_activation = Peripheral.Relu;
        st_scale = 0.0625;
        st_pool = Some { Isa.window = 3; stride = 2; padding = 1 };
      };
    Isa.Mvin
      ( { Isa.dram_addr = 0xDEAD000; local = L.scratchpad ~row:1234; cols = 64; rows = 16 },
        1 );
    Isa.Mvout
      {
        Isa.dram_addr = 0xBEEF000;
        local = L.accumulator ~accumulate:true ~row:77 ();
        cols = 16;
        rows = 16;
      };
    Isa.Preload
      {
        b = L.scratchpad ~row:512;
        c = L.accumulator ~row:0 ();
        b_cols = 16;
        b_rows = 16;
        c_cols = 16;
        c_rows = 16;
      };
    Isa.Compute_preloaded
      {
        a = L.scratchpad ~row:0;
        bd = L.garbage;
        a_cols = 16;
        a_rows = 16;
        bd_cols = 16;
        bd_rows = 16;
      };
    Isa.Compute_accumulated
      {
        a = L.garbage;
        bd = L.accumulator ~full_width:true ~row:3 ();
        a_cols = 1;
        a_rows = 1;
        bd_cols = 1;
        bd_rows = 1;
      };
    Isa.Flush;
    Isa.Fence;
  ]

let test_samples () = List.iter check_roundtrip sample_cmds

let qcheck_mv_roundtrip =
  let gen =
    QCheck2.Gen.(
      let* addr = int_range 0 ((1 lsl 40) - 1) in
      let* row = int_range 0 100000 in
      let* cols = int_range 1 0xFFFF in
      let* rows = int_range 1 0xFFFF in
      let* id = int_range 0 2 in
      let* acc = bool in
      let* accum = bool in
      let* full = bool in
      return (addr, row, cols, rows, id, acc, accum, full))
  in
  QCheck2.Test.make ~name:"mvin/mvout roundtrip" ~count:200 gen
    (fun (addr, row, cols, rows, id, acc, accum, full) ->
      let local =
        if acc then L.accumulator ~accumulate:accum ~full_width:full ~row ()
        else L.scratchpad ~row
      in
      let mv = { Isa.dram_addr = addr; local; cols; rows } in
      check_roundtrip (Isa.Mvin (mv, id));
      check_roundtrip (Isa.Mvout mv);
      true)

let qcheck_config_ld_roundtrip =
  let gen =
    QCheck2.Gen.(
      let* stride = int_range 0 0xFFFF_FFFF in
      let* id = int_range 0 2 in
      let* shrunk = bool in
      let* scale = oneofl [ 1.0; 0.5; 0.25; 0.0625; 2.0 ] in
      return (stride, id, shrunk, scale))
  in
  QCheck2.Test.make ~name:"config_ld roundtrip" ~count:100 gen
    (fun (stride, id, shrunk, scale) ->
      check_roundtrip
        (Isa.Config_ld
           { ld_stride_bytes = stride; ld_scale = scale; ld_shrunk = shrunk; ld_id = id });
      true)

let test_local_addr () =
  let sp = L.scratchpad ~row:42 in
  Alcotest.(check bool) "sp not acc" false (L.is_accumulator sp);
  Alcotest.(check int) "row" 42 (L.row sp);
  let acc = L.accumulator ~accumulate:true ~full_width:true ~row:7 () in
  Alcotest.(check bool) "acc" true (L.is_accumulator acc);
  Alcotest.(check bool) "accumulate" true (L.accumulate_flag acc);
  Alcotest.(check bool) "full" true (L.full_width_flag acc);
  Alcotest.(check int) "row" 7 (L.row acc);
  let acc2 = L.add_rows acc 5 in
  Alcotest.(check int) "add_rows keeps flags" 12 (L.row acc2);
  Alcotest.(check bool) "add_rows keeps acc" true (L.accumulate_flag acc2);
  Alcotest.(check bool) "garbage" true (L.is_garbage L.garbage);
  Alcotest.(check bool) "garbage roundtrip" true
    (L.is_garbage (L.of_bits (L.to_bits L.garbage)))

let test_bad_decode () =
  (match Isa.decode { Isa.funct = 99; rs1 = 0L; rs2 = 0L } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown funct error");
  match Isa.decode { Isa.funct = 0; rs1 = 3L; rs2 = 0L } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected bad config selector error"

let suite =
  [
    Alcotest.test_case "sample command roundtrips" `Quick test_samples;
    Alcotest.test_case "local address flags" `Quick test_local_addr;
    Alcotest.test_case "bad decodes rejected" `Quick test_bad_decode;
    QCheck_alcotest.to_alcotest qcheck_mv_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_config_ld_roundtrip;
  ]
