let () =
  Alcotest.run "gemmini"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("sim", Test_sim.suite);
      ("trace", Test_trace.suite);
      ("mem", Test_mem.suite);
      ("vm", Test_vm.suite);
      ("mesh", Test_mesh.suite);
      ("isa", Test_isa.suite);
      ("synthesis", Test_synthesis.suite);
      ("dnn", Test_dnn.suite);
      ("sw", Test_sw.suite);
      ("runtime", Test_runtime.suite);
      ("backend", Test_backend.suite);
      ("soc", Test_soc.suite);
      ("parallel", Test_parallel.suite);
      ("loop_ws", Test_loop_ws.suite);
      ("fault", Test_fault.suite);
      ("persist", Test_persist.suite);
      ("serve", Test_serve.suite);
      ("dse", Test_dse.suite);
      ("experiments", Test_experiments.suite);
      ("check", Test_check.suite);
      ("codegen", Test_codegen.suite);
    ]
