(* Domain-parallel simulation: the Domains > 1 driver must be
   byte-identical to the sequential reference at every (model, cores,
   domains) point — cycle counts, the rendered engine profile, and the
   full SoC snapshot — including under deterministic fault injection,
   across checkpoint/restore, and for the serving scheduler's reports.
   The traced path falls back to the sequential driver, which is also
   pinned here. *)

module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime
module Engine = Gem_sim.Engine
module Fault = Gem_sim.Fault
module Jsonx = Gem_util.Jsonx
module Zoo = Gem_dnn.Model_zoo

let squeezenet16 = Zoo.scale_model ~factor:16 Zoo.squeezenet
let mobilenetv2_32 = Zoo.scale_model ~factor:32 Zoo.mobilenetv2

let config ~cores =
  Soc_config.with_cores
    (List.init cores (fun _ -> Soc_config.default_core))
    Soc_config.default

(* Alternate the im2col placement so cores run asymmetric programs and a
   scheduling bug cannot hide behind symmetry. *)
let mode_for i = Runtime.Accel { im2col_on_accel = i mod 2 = 0 }

let jobs_for model ~cores =
  Array.init cores (fun i -> (model, mode_for i))

(* Everything observable about a finished run: per-core cycle counts, the
   rendered engine utilization table (requests/busy/wait for every
   component), and the full SoC snapshot (controllers, caches, TLBs,
   trace rings, injection cursors). *)
let fingerprint soc rs =
  let cycles =
    Array.to_list (Array.map (fun r -> r.Runtime.r_total_cycles) rs)
  in
  let profile =
    Gem_util.Table.render (Engine.utilization_table (Soc.engine soc) ())
  in
  (cycles, profile, Jsonx.to_string (Soc.snapshot soc))

let run_point ?(inject = false) model ~cores ~domains =
  let soc = Soc.create (config ~cores) in
  if inject then Soc.arm_injection soc ~seed:42 ~rate:0.0005;
  let rs =
    Runtime.run_parallel ~policy:Runtime.Retry_map ~domains soc
      (jobs_for model ~cores)
  in
  let faults =
    List.concat_map
      (fun r ->
        List.map
          (fun fr ->
            fr.Runtime.fr_action ^ " " ^ Fault.to_string fr.Runtime.fr_fault)
          r.Runtime.r_faults)
      (Array.to_list rs)
  in
  (fingerprint soc rs, faults)

let check_point ?inject model name ~cores =
  let (ref_fp, ref_faults) = run_point ?inject model ~cores ~domains:1 in
  List.iter
    (fun domains ->
      let (fp, faults) = run_point ?inject model ~cores ~domains in
      let label what =
        Printf.sprintf "%s cores=%d domains=%d: %s" name cores domains what
      in
      let (c0, p0, s0) = ref_fp and (c1, p1, s1) = fp in
      Alcotest.(check (list int)) (label "cycle counts") c0 c1;
      Alcotest.(check string) (label "engine profile") p0 p1;
      Alcotest.(check string) (label "SoC snapshot") s0 s1;
      Alcotest.(check (list string)) (label "fault trace") ref_faults faults)
    [ 2; 4 ]

let test_stress_squeezenet () =
  List.iter (fun cores -> check_point squeezenet16 "squeezenet/16" ~cores)
    [ 1; 2; 4 ]

let test_stress_mobilenet () =
  List.iter (fun cores -> check_point mobilenetv2_32 "mobilenetv2/32" ~cores)
    [ 1; 2; 4 ]

let test_injection_identity () =
  (* Injected faults fire in shared (coordinator-serialized) ops, so the
     recovery schedule — and therefore every retry's timing — must not
     depend on the Domain count. *)
  let (_, faults) =
    run_point ~inject:true squeezenet16 ~cores:2 ~domains:1
  in
  Alcotest.(check bool) "injection fired" true (faults <> []);
  check_point ~inject:true squeezenet16 "squeezenet/16+inject" ~cores:2

let test_restore_interleaving () =
  (* Checkpoint state produced by one round of parallel inference, restore
     it into fresh SoCs, and drive a second round at different Domain
     counts: the restored-state continuation must stay byte-identical. *)
  let first_round domains =
    let soc = Soc.create (config ~cores:2) in
    ignore (Runtime.run_parallel ~domains soc (jobs_for squeezenet16 ~cores:2));
    Soc.snapshot soc
  in
  let snap = first_round 4 in
  Alcotest.(check string) "first-round snapshot matches sequential"
    (Jsonx.to_string (first_round 1))
    (Jsonx.to_string snap);
  let second_round domains =
    let soc = Soc.create (config ~cores:2) in
    Soc.restore soc snap;
    let rs =
      Runtime.run_parallel ~domains soc (jobs_for mobilenetv2_32 ~cores:2)
    in
    fingerprint soc rs
  in
  let (c1, p1, s1) = second_round 1 and (c4, p4, s4) = second_round 4 in
  Alcotest.(check (list int)) "restored continuation cycles" c1 c4;
  Alcotest.(check string) "restored continuation profile" p1 p4;
  Alcotest.(check string) "restored continuation snapshot" s1 s4

let test_traced_fallback () =
  (* An observing engine (trace ring live) forces the sequential driver
     regardless of the requested Domain count; the traced run must agree
     with the quiet parallel run cycle-for-cycle. *)
  let quiet =
    let soc = Soc.create (config ~cores:2) in
    let rs = Runtime.run_parallel ~domains:4 soc (jobs_for squeezenet16 ~cores:2) in
    Array.to_list (Array.map (fun r -> r.Runtime.r_total_cycles) rs)
  in
  let soc = Soc.create (config ~cores:2) in
  Engine.set_tracing (Soc.engine soc) true;
  let rs = Runtime.run_parallel ~domains:4 soc (jobs_for squeezenet16 ~cores:2) in
  Alcotest.(check bool) "trace ring captured events" true
    (Engine.event_count (Soc.engine soc) > 0);
  Alcotest.(check (list int)) "traced run agrees with quiet parallel run"
    quiet
    (Array.to_list (Array.map (fun r -> r.Runtime.r_total_cycles) rs))

let test_serve_identity () =
  let scenario =
    {
      Gem_serve.Serve.default with
      Gem_serve.Serve.sv_model = "mobilenetv2";
      sv_scale = 32;
      sv_arrival = Gem_serve.Arrival.Poisson { rate_rps = 4000. };
      sv_batch = Gem_serve.Batch.Fixed 2;
      sv_duration_ms = 1.5;
      sv_slos_ms = [ 2.0 ];
    }
  in
  let report domains =
    Gem_serve.Report.render (Gem_serve.Serve.run ~domains scenario)
  in
  Alcotest.(check string) "serve report identical at domains 1 vs 4"
    (report 1) (report 4)

let test_domain_overflow () =
  (* More Domains than cores (and than the machine has CPUs) must neither
     wedge nor change the schedule. *)
  check_point squeezenet16 "squeezenet/16 overcommit" ~cores:2;
  let ((c, _, _), _) = run_point squeezenet16 ~cores:1 ~domains:8 in
  let ((c', _, _), _) = run_point squeezenet16 ~cores:1 ~domains:1 in
  Alcotest.(check (list int)) "single core at domains=8" c' c

let suite =
  [
    Alcotest.test_case "squeezenet: cores x domains identity" `Quick
      test_stress_squeezenet;
    Alcotest.test_case "mobilenetv2: cores x domains identity" `Quick
      test_stress_mobilenet;
    Alcotest.test_case "fault injection identity across domains" `Quick
      test_injection_identity;
    Alcotest.test_case "checkpoint/restore continuation identity" `Quick
      test_restore_interleaving;
    Alcotest.test_case "traced run falls back and agrees" `Quick
      test_traced_fallback;
    Alcotest.test_case "serve report identity across domains" `Quick
      test_serve_identity;
    Alcotest.test_case "domain overcommit is safe" `Quick test_domain_overflow;
  ]
