(* Experiment-shaped assertions: every figure driver runs (quick mode) and
   its qualitative claims — who wins, which direction deltas point — hold.
   These are the regression guards for the paper reproduction itself. *)

module E = Gem_experiments

let test_table1 () =
  let t = E.Table1.table () in
  let s = Gem_util.Table.render t in
  Alcotest.(check bool) "renders with gemmini row" true (String.length s > 500)

let test_fig3_shape () =
  let r = E.Fig3.measure () in
  Alcotest.(check bool) "fmax ratio 2.2-3.2" true
    (r.E.Fig3.fmax_ratio > 2.2 && r.E.Fig3.fmax_ratio < 3.2);
  Alcotest.(check bool) "area ratio 1.5-2.1" true
    (r.E.Fig3.area_ratio > 1.5 && r.E.Fig3.area_ratio < 2.1);
  Alcotest.(check bool) "power ratio 2.4-3.6" true
    (r.E.Fig3.power_ratio > 2.4 && r.E.Fig3.power_ratio < 3.6);
  (* Monotone across the intermediate factorizations. *)
  let fmaxes = List.map (fun p -> p.E.Fig3.fmax_ghz) r.E.Fig3.points in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "fmax decreases with tile size" true (decreasing fmaxes)

let test_fig6_shape () =
  let r = E.Fig6.measure () in
  let share p = E.Fig6.measured_share r p in
  Alcotest.(check bool) "scratchpad dominates" true (share "scratchpad" > 45.);
  Alcotest.(check bool) "array ~10-13%" true
    (share "spatial array" > 9. && share "spatial array" < 14.);
  Alcotest.(check bool) "cpu > array" true (share "cpu" > share "spatial array")

let test_fig4_shape () =
  let r = E.Fig4.measure ~quick:true ~window_cycles:50_000. () in
  Alcotest.(check bool) "many requests" true (r.E.Fig4.total_requests > 10_000);
  Alcotest.(check bool) "has windows" true (Array.length r.E.Fig4.windows > 10);
  Alcotest.(check bool) "spiky: peak well above mean" true
    (r.E.Fig4.peak_window_miss_rate > 2. *. r.E.Fig4.overall_miss_rate)

let test_fig7_shape () =
  let r = E.Fig7.measure ~quick:true () in
  List.iter
    (fun row ->
      let open E.Fig7 in
      (* The accelerator always wins big over software. *)
      Alcotest.(check bool) (row.model ^ ": accel >> cpu") true
        (row.baseline_rocket > 20 * row.rocket_accel_im2col);
      (* BOOM helps when the CPU does im2col; is ~neutral otherwise. *)
      Alcotest.(check bool) (row.model ^ ": boom helps cpu-im2col") true
        (row.boom_cpu_im2col <= row.rocket_cpu_im2col);
      Alcotest.(check bool) (row.model ^ ": im2col unit helps or is neutral") true
        (row.rocket_accel_im2col <= row.rocket_cpu_im2col))
    r.E.Fig7.rows;
  (* MobileNet (depthwise-heavy) gets the smallest CNN speedup; BERT shows
     no im2col sensitivity at all. *)
  let find name = List.find (fun x -> x.E.Fig7.model = name) r.E.Fig7.rows in
  let speedup row =
    float_of_int row.E.Fig7.baseline_rocket /. float_of_int row.E.Fig7.rocket_accel_im2col
  in
  Alcotest.(check bool) "mobilenet lowest CNN speedup" true
    (speedup (find "mobilenetv2/4") < speedup (find "resnet50/4")
    && speedup (find "mobilenetv2/4") < speedup (find "squeezenet1.1/4")
    && speedup (find "mobilenetv2/4") < speedup (find "alexnet/4"));
  let bert = find "bert-base-seq128/4" in
  Alcotest.(check int) "bert ignores im2col unit" bert.E.Fig7.rocket_cpu_im2col
    bert.E.Fig7.rocket_accel_im2col

let test_fig8_shape () =
  let r = E.Fig8.measure ~quick:true () in
  let find ~priv ~shared ~filters =
    List.find
      (fun p ->
        p.E.Fig8.private_entries = priv
        && p.E.Fig8.shared_entries = shared
        && p.E.Fig8.filters = filters)
      r.E.Fig8.points
  in
  (* Bigger private TLB helps (no filters). *)
  Alcotest.(check bool) "private 4 -> 16 helps" true
    ((find ~priv:16 ~shared:0 ~filters:false).E.Fig8.cycles
    < (find ~priv:4 ~shared:0 ~filters:false).E.Fig8.cycles);
  (* Filters make the small TLB competitive: better than quadrupling the
     private TLB without them. *)
  Alcotest.(check bool) "4+filters beats 16 without" true
    ((find ~priv:4 ~shared:0 ~filters:true).E.Fig8.cycles
    < (find ~priv:16 ~shared:0 ~filters:false).E.Fig8.cycles);
  (* The recommended config is within 10% of the best swept point. *)
  Alcotest.(check bool) "small+filters near best" true (r.E.Fig8.small_with_filters_gap < 0.10);
  (* Page locality is high, reads and writes both. *)
  let p = List.hd r.E.Fig8.points in
  Alcotest.(check bool) "read locality > 70%" true (p.E.Fig8.same_page_reads > 0.7);
  Alcotest.(check bool) "write locality > 70%" true (p.E.Fig8.same_page_writes > 0.7)

let test_fig9_shape () =
  let r = E.Fig9.measure ~quick:true () in
  let f name cores = E.Fig9.find r ~name ~cores in
  let open E.Fig9 in
  (* Single core: extra SRAM in the scratchpad never hurts. *)
  Alcotest.(check bool) "1-core BigSP >= Base" true
    ((f BigSP 1).total_cycles <= (f Base 1).total_cycles);
  (* Dual core: BigL2 is the best configuration (the paper's headline). *)
  Alcotest.(check bool) "2-core BigL2 beats Base" true
    ((f BigL2 2).total_cycles < (f Base 2).total_cycles);
  Alcotest.(check bool) "2-core BigL2 best overall" true
    ((f BigL2 2).total_cycles <= (f BigSP 2).total_cycles);
  (* The resadd class is where BigL2's dual-core win comes from. *)
  Alcotest.(check bool) "2-core resadd improves with BigL2" true
    ((f BigL2 2).resadd_cycles < (f Base 2).resadd_cycles);
  (* And the L2 miss rate drops. *)
  Alcotest.(check bool) "L2 miss rate drops" true
    ((f BigL2 2).l2_miss_rate < (f Base 2).l2_miss_rate);
  (* Contention: dual core is slower than single core end-to-end. *)
  Alcotest.(check bool) "contention visible" true
    ((f Base 2).total_cycles > (f Base 1).total_cycles)

let suite =
  [
    Alcotest.test_case "table1 renders" `Quick test_table1;
    Alcotest.test_case "fig3: pipelining trade-off shape" `Quick test_fig3_shape;
    Alcotest.test_case "fig6: breakdown shape" `Quick test_fig6_shape;
    Alcotest.test_case "fig4: miss-rate series shape" `Slow test_fig4_shape;
    Alcotest.test_case "fig7: speedup shapes" `Slow test_fig7_shape;
    Alcotest.test_case "fig8: TLB co-design shapes" `Slow test_fig8_shape;
    Alcotest.test_case "fig9: partitioning shapes" `Slow test_fig9_shape;
  ]
