(* gem_mem: SRAM banking, set-associative cache behavior, DRAM/bus timing,
   sparse main memory. *)

open Gem_mem

let test_sram_rw () =
  let s = Sram.create ~banks:4 ~rows_per_bank:8 ~elems_per_row:16 in
  Alcotest.(check int) "total rows" 32 (Sram.total_rows s);
  Alcotest.(check int) "bank of row" 2 (Sram.bank_of_row s 17);
  Sram.write_row s ~row:17 (Array.init 16 (fun i -> i));
  Alcotest.(check int) "readback" 5 (Sram.read_elem s ~row:17 ~col:5);
  (* Short writes zero-pad. *)
  Sram.write_row s ~row:17 [| 9 |];
  Alcotest.(check int) "pad wrote" 9 (Sram.read_elem s ~row:17 ~col:0);
  Alcotest.(check int) "pad zeroed" 0 (Sram.read_elem s ~row:17 ~col:5);
  Alcotest.check_raises "row bounds"
    (Invalid_argument "Sram: row 32 out of range [0,32)") (fun () ->
      ignore (Sram.read_row s ~row:32))

let test_sram_accumulate () =
  let s = Sram.create ~banks:1 ~rows_per_bank:4 ~elems_per_row:4 in
  Sram.write_row s ~row:0 [| 10; 20; 30; 40 |];
  Sram.accumulate_row s ~row:0 [| 1; 2; 3; 4 |];
  Alcotest.(check (array int)) "accumulated" [| 11; 22; 33; 44 |] (Sram.read_row s ~row:0);
  Sram.write_row s ~row:1 [| Gem_util.Fixed.int32_max; 0; 0; 0 |];
  Sram.accumulate_row s ~row:1 [| 100; 0; 0; 0 |];
  Alcotest.(check int) "saturates" Gem_util.Fixed.int32_max (Sram.read_row s ~row:1).(0)

let test_cache_basics () =
  let c = Cache.create ~size_bytes:4096 ~ways:4 ~line_bytes:64 () in
  Alcotest.(check int) "sets" 16 (Cache.sets c);
  (match Cache.access c ~addr:0 ~write:false with
  | Cache.Miss -> ()
  | _ -> Alcotest.fail "cold miss expected");
  (match Cache.access c ~addr:32 ~write:false with
  | Cache.Hit -> ()
  | _ -> Alcotest.fail "same line should hit");
  (* Fill one set past associativity: set 0 lines are multiples of 1024. *)
  for i = 1 to 4 do
    ignore (Cache.access c ~addr:(i * 1024) ~write:false)
  done;
  (match Cache.access c ~addr:0 ~write:false with
  | Cache.Miss | Cache.Miss_writeback -> ()
  | Cache.Hit -> Alcotest.fail "LRU line should have been evicted")

let test_cache_lru_order () =
  let c = Cache.create ~size_bytes:4096 ~ways:4 ~line_bytes:64 () in
  (* Touch lines A B C D, re-touch A, add E: victim must be B. *)
  let line i = i * 1024 in
  List.iter (fun i -> ignore (Cache.access c ~addr:(line i) ~write:false)) [ 0; 1; 2; 3 ];
  ignore (Cache.access c ~addr:(line 0) ~write:false);
  ignore (Cache.access c ~addr:(line 4) ~write:false);
  Alcotest.(check bool) "A still resident" true (Cache.probe c ~addr:(line 0));
  Alcotest.(check bool) "B evicted" false (Cache.probe c ~addr:(line 1))

let test_cache_writeback () =
  let c = Cache.create ~size_bytes:4096 ~ways:4 ~line_bytes:64 () in
  ignore (Cache.access c ~addr:0 ~write:true);
  for i = 1 to 4 do
    ignore (Cache.access c ~addr:(i * 1024) ~write:false)
  done;
  Alcotest.(check int) "one writeback of the dirty victim" 1 (Cache.writebacks c)

let qcheck_cache_occupancy =
  QCheck2.Test.make ~name:"cache occupancy never exceeds capacity, access implies resident"
    ~count:50
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 50 300))
    (fun (seed, n) ->
      let c = Cache.create ~size_bytes:2048 ~ways:2 ~line_bytes:64 () in
      let rng = Gem_util.Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to n do
        let addr = Gem_util.Rng.int rng 65536 in
        let write = Gem_util.Rng.bool rng in
        ignore (Cache.access c ~addr ~write);
        if not (Cache.probe c ~addr) then ok := false;
        if Cache.resident_lines c > 32 then ok := false
      done;
      !ok)

let test_cache_range () =
  let c = Cache.create ~size_bytes:4096 ~ways:4 ~line_bytes:64 () in
  let hits, misses, _ = Cache.access_range c ~addr:0 ~bytes:256 ~write:false in
  Alcotest.(check (pair int int)) "4 cold lines" (0, 4) (hits, misses);
  let hits, misses, _ = Cache.access_range c ~addr:32 ~bytes:64 ~write:false in
  (* 32..96 overlaps lines 0 and 1, both resident. *)
  Alcotest.(check (pair int int)) "warm range" (2, 0) (hits, misses)

let test_dram_timing () =
  let d = Dram.create ~latency:100 ~bytes_per_cycle:16 () in
  let t1 = Dram.access d ~now:0 ~bytes:64 ~write:false in
  Alcotest.(check int) "first access" 104 t1;
  (* Second access queues behind the first's occupancy (4 cycles). *)
  let t2 = Dram.access d ~now:0 ~bytes:64 ~write:false in
  Alcotest.(check int) "queued access" 108 t2;
  Alcotest.(check int) "bytes counted" 128 (Dram.bytes_read d)

let test_bus () =
  let b = Bus.create ~width_bytes:8 () in
  Alcotest.(check int) "transfer time" 8 (Bus.transfer b ~now:0 ~bytes:64);
  Alcotest.(check int) "second queues" 16 (Bus.transfer b ~now:0 ~bytes:64)

let test_mainmem () =
  let m = Mainmem.create () in
  Alcotest.(check int) "untouched is zero" 0 (Mainmem.read_byte m ~addr:123456);
  Mainmem.write_i8 m ~addr:100 (-5);
  Alcotest.(check int) "i8 sign" (-5) (Mainmem.read_i8 m ~addr:100);
  Mainmem.write_i32 m ~addr:200 (-123456789);
  Alcotest.(check int) "i32 roundtrip" (-123456789) (Mainmem.read_i32 m ~addr:200);
  (* Cross-page array roundtrip. *)
  let data = Array.init 100 (fun i -> i - 50) in
  Mainmem.write_i8_array m ~addr:4090 data;
  Alcotest.(check (array int)) "cross-page array" data
    (Mainmem.read_i8_array m ~addr:4090 ~n:100);
  Alcotest.(check bool) "pages sparse" true (Mainmem.touched_pages m < 10)

let qcheck_mainmem_i32 =
  QCheck2.Test.make ~name:"mainmem i32 roundtrip (full range)" ~count:200
    QCheck2.Gen.(pair (int_range 0 100000) (int_range Gem_util.Fixed.int32_min Gem_util.Fixed.int32_max))
    (fun (addr, v) ->
      let m = Mainmem.create () in
      Mainmem.write_i32 m ~addr v;
      Mainmem.read_i32 m ~addr = v)

let suite =
  [
    Alcotest.test_case "sram read/write" `Quick test_sram_rw;
    Alcotest.test_case "sram accumulate" `Quick test_sram_accumulate;
    Alcotest.test_case "cache basics" `Quick test_cache_basics;
    Alcotest.test_case "cache LRU order" `Quick test_cache_lru_order;
    Alcotest.test_case "cache writeback" `Quick test_cache_writeback;
    Alcotest.test_case "cache range access" `Quick test_cache_range;
    Alcotest.test_case "dram timing" `Quick test_dram_timing;
    Alcotest.test_case "bus timing" `Quick test_bus;
    Alcotest.test_case "main memory" `Quick test_mainmem;
    QCheck_alcotest.to_alcotest qcheck_cache_occupancy;
    QCheck_alcotest.to_alcotest qcheck_mainmem_i32;
  ]
