(* gem_soc + controller integration: allocation, host access, fences,
   multi-core interleaving and contention. *)

module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime
module Kernels = Gem_sw.Kernels

let small_model = Gem_dnn.Model_zoo.(scale_model ~factor:8 squeezenet)
let mode = Runtime.Accel { im2col_on_accel = true }

let test_alloc_distinct () =
  let soc = Soc.create Soc_config.dual_core in
  let c0 = Soc.core soc 0 and c1 = Soc.core soc 1 in
  let v0 = Soc.alloc soc c0 ~bytes:10000 in
  let v1 = Soc.alloc soc c1 ~bytes:10000 in
  (* Same or different VAs are fine (separate address spaces), but the
     physical backing must differ. *)
  let p0 = Option.get (Gem_vm.Page_table.translate (Soc.page_table c0) ~vaddr:v0) in
  let p1 = Option.get (Gem_vm.Page_table.translate (Soc.page_table c1) ~vaddr:v1) in
  Alcotest.(check bool) "distinct physical pages" true (abs (p0 - p1) >= 4096);
  (* Two allocations on one core never overlap. *)
  let v2 = Soc.alloc soc c0 ~bytes:4096 in
  Alcotest.(check bool) "va grows" true (v2 >= v0 + 10000)

let test_host_access_roundtrip () =
  let soc = Soc.create (Soc_config.with_functional true Soc_config.default) in
  let core = Soc.core soc 0 in
  let va = Soc.alloc soc core ~bytes:9000 in
  let data = Array.init 9000 (fun i -> (i mod 256) - 128) in
  Soc.host_write_i8 soc core ~vaddr:va data;
  Alcotest.(check (array int)) "i8 roundtrip across pages" data
    (Soc.host_read_i8 soc core ~vaddr:va ~n:9000);
  let words = Array.init 100 (fun i -> (i * 1_000_003) - 50_000_000) in
  Soc.host_write_i32 soc core ~vaddr:(va + 4096) words;
  Alcotest.(check (array int)) "i32 roundtrip" words
    (Soc.host_read_i32 soc core ~vaddr:(va + 4096) ~n:100)

let test_fence_drains () =
  let soc = Soc.create Soc_config.default in
  let core = Soc.core soc 0 in
  let ctl = Soc.controller core in
  let va = Soc.alloc soc core ~bytes:(1 lsl 16) in
  let ops =
    Kernels.matmul_ops Gemmini.Params.default ~a:va ~b:va ~out:(va + 32768)
      ~m:64 ~k:64 ~n:64 ()
    @ [ Kernels.fence ]
  in
  ignore (Soc.run_program soc core (List.to_seq ops));
  (* After a fence, the issue cursor has caught up with all pipelines. *)
  Alcotest.(check int) "now = finish after fence"
    (Gemmini.Controller.finish_time ctl)
    (Gemmini.Controller.now ctl)

let test_controller_stats () =
  let soc = Soc.create Soc_config.default in
  let core = Soc.core soc 0 in
  let va = Soc.alloc soc core ~bytes:(1 lsl 16) in
  let ops =
    Kernels.matmul_ops Gemmini.Params.default ~a:va ~b:va ~out:(va + 32768)
      ~m:32 ~k:32 ~n:32 ()
    @ [ Kernels.fence ]
  in
  ignore (Soc.run_program soc core (List.to_seq ops));
  let s = Gemmini.Controller.stats (Soc.controller core) in
  Alcotest.(check int) "macs counted" (32 * 32 * 32) s.Gemmini.Controller.macs;
  Alcotest.(check int) "computes = 8 blocks" 8 s.Gemmini.Controller.computes;
  Alcotest.(check bool) "loads happened" true (s.Gemmini.Controller.loads > 0);
  Alcotest.(check bool) "stores happened" true (s.Gemmini.Controller.stores > 0);
  Alcotest.(check bool) "utilization sane" true
    (let u = Gemmini.Controller.utilization (Soc.controller core) in
     u > 0. && u <= 1.

     )

let test_dual_core_contention () =
  (* Two cores running the same workload on a shared memory system must
     each be at least as slow as one core running alone, and the combined
     DRAM traffic roughly doubles. *)
  let solo_soc = Soc.create Soc_config.default in
  let solo = Runtime.run solo_soc ~core:0 small_model ~mode in
  let dual_soc = Soc.create Soc_config.dual_core in
  let rs = Runtime.run_parallel dual_soc [| (small_model, mode); (small_model, mode) |] in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "contention slows cores" true
        (r.Runtime.r_total_cycles >= solo.Runtime.r_total_cycles))
    rs;
  let solo_dram = Gem_mem.Dram.bytes_read (Soc.dram solo_soc) in
  let dual_dram = Gem_mem.Dram.bytes_read (Soc.dram dual_soc) in
  Alcotest.(check bool) "dual traffic > 1.5x solo" true
    (float_of_int dual_dram > 1.5 *. float_of_int solo_dram)

let test_parallel_single_equivalence () =
  (* run_parallel with one program must agree with run_program. *)
  let soc1 = Soc.create Soc_config.default in
  let r1 = Runtime.run soc1 ~core:0 small_model ~mode in
  let soc2 = Soc.create Soc_config.default in
  let r2 = (Runtime.run_parallel soc2 [| (small_model, mode) |]).(0) in
  Alcotest.(check int) "same cycles" r1.Runtime.r_total_cycles r2.Runtime.r_total_cycles

let test_determinism () =
  let run () =
    let soc = Soc.create Soc_config.dual_core in
    let rs = Runtime.run_parallel soc [| (small_model, mode); (small_model, mode) |] in
    (rs.(0).Runtime.r_total_cycles, rs.(1).Runtime.r_total_cycles)
  in
  Alcotest.(check (pair int int)) "dual-core sim is deterministic" (run ()) (run ())

let test_cpu_model_sanity () =
  let open Gem_cpu.Cpu_model in
  Alcotest.(check bool) "boom beats rocket" true
    (conv_macs_cycles Boom ~macs:1000000 < conv_macs_cycles Rocket ~macs:1000000);
  Alcotest.(check bool) "matmul cheaper than conv per mac" true
    (matmul_macs_cycles Rocket ~macs:1000 < conv_macs_cycles Rocket ~macs:1000);
  Alcotest.(check int) "im2col boom = rocket/2"
    (im2col_cycles Rocket ~patch_elems:10000 / 2)
    (im2col_cycles Boom ~patch_elems:10000);
  Alcotest.(check bool) "baseline ordering matches MAC counts" true
    (Runtime.cpu_only_cycles Rocket Gem_dnn.Model_zoo.resnet50
     > Runtime.cpu_only_cycles Rocket Gem_dnn.Model_zoo.squeezenet)

let suite =
  [
    Alcotest.test_case "allocation: distinct physical backing" `Quick test_alloc_distinct;
    Alcotest.test_case "host access roundtrips" `Quick test_host_access_roundtrip;
    Alcotest.test_case "fence drains pipelines" `Quick test_fence_drains;
    Alcotest.test_case "controller statistics" `Quick test_controller_stats;
    Alcotest.test_case "dual-core contention" `Quick test_dual_core_contention;
    Alcotest.test_case "run_parallel == run for one core" `Quick test_parallel_single_equivalence;
    Alcotest.test_case "multi-core determinism" `Quick test_determinism;
    Alcotest.test_case "CPU cost model sanity" `Quick test_cpu_model_sanity;
  ]
