(* Synthesis model, parameter validation, header generation, floorplan:
   the Fig. 3 ratio calibration and Fig. 6 breakdown are asserted here so
   regressions in the tech model are caught immediately. *)

module P = Gemmini.Params
module S = Gemmini.Synthesis

let within ~tolerance expected actual =
  abs_float (actual -. expected) /. expected <= tolerance

let test_fig3_ratios () =
  let tpu = S.estimate ~host:S.No_host (P.tpu_like ~pes:256) in
  let nvdla = S.estimate ~host:S.No_host (P.nvdla_like ~pes:256) in
  let fr = tpu.S.fmax_ghz /. nvdla.S.fmax_ghz in
  let ar = tpu.S.spatial_array_area_um2 /. nvdla.S.spatial_array_area_um2 in
  let pr = tpu.S.power_mw /. nvdla.S.power_mw in
  Alcotest.(check bool) (Printf.sprintf "fmax ratio %.2f ~ 2.7" fr) true (within ~tolerance:0.1 2.7 fr);
  Alcotest.(check bool) (Printf.sprintf "area ratio %.2f ~ 1.8" ar) true (within ~tolerance:0.1 1.8 ar);
  Alcotest.(check bool) (Printf.sprintf "power ratio %.2f ~ 3.0" pr) true (within ~tolerance:0.15 3.0 pr)

let test_fig6_breakdown () =
  let r = S.estimate ~host:S.Rocket P.default in
  let share prefix = 100. *. S.component_area r prefix /. r.S.total_area_um2 in
  Alcotest.(check bool) "array ~11.3%" true (within ~tolerance:0.15 11.3 (share "spatial array"));
  Alcotest.(check bool) "scratchpad ~52.9%" true (within ~tolerance:0.1 52.9 (share "scratchpad"));
  Alcotest.(check bool) "accumulator ~14.2%" true (within ~tolerance:0.1 14.2 (share "accumulator"));
  Alcotest.(check bool) "cpu ~16.6%" true (within ~tolerance:0.1 16.6 (share "cpu"));
  Alcotest.(check bool) "total ~1.03mm^2" true
    (within ~tolerance:0.1 1.029e6 r.S.total_area_um2)

let test_monotonicity () =
  (* More PEs => more area; bigger tiles => lower fmax. *)
  let a16 = (S.estimate ~host:S.No_host (P.tpu_like ~pes:256)).S.total_area_um2 in
  let a32 = (S.estimate ~host:S.No_host (P.tpu_like ~pes:1024)).S.total_area_um2 in
  Alcotest.(check bool) "area grows with PEs" true (a32 > a16);
  let f t =
    S.mesh_fmax_ghz
      (P.validate_exn
         { P.default with mesh_rows = 16 / t; mesh_cols = 16 / t; tile_rows = t; tile_cols = t })
  in
  Alcotest.(check bool) "fmax drops with tile size" true (f 1 > f 4 && f 4 > f 16)

let test_node_scaling () =
  let t = Gemmini.Tech.scale_to_node Gemmini.Tech.intel_22ffl ~factor:0.7 in
  let small = S.estimate ~tech:t ~host:S.No_host P.default in
  let base = S.estimate ~host:S.No_host P.default in
  Alcotest.(check bool) "scaled node is smaller and faster" true
    (small.S.total_area_um2 < base.S.total_area_um2 && small.S.fmax_ghz > base.S.fmax_ghz)

let test_params_validation () =
  let bad = { P.default with mesh_cols = 8 } in
  (match P.validate bad with
  | Error errs ->
      Alcotest.(check bool) "square error" true
        (List.exists (fun e -> String.length e > 0 && e.[0] = 's') errs)
  | Ok () -> Alcotest.fail "non-square array accepted");
  (match P.validate { P.default with sp_banks = 3 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-pow2 banks accepted");
  (match P.validate { P.default with input_type = Gemmini.Dtype.Fp32; acc_type = Gemmini.Dtype.Int32 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "float inputs with int accumulator accepted")

let test_derived_sizes () =
  let p = P.default in
  Alcotest.(check int) "dim" 16 (P.dim p);
  Alcotest.(check int) "sp rows" 16384 (P.sp_rows p);
  Alcotest.(check int) "acc rows" 1024 (P.acc_rows p);
  Alcotest.(check int) "sp row bytes" 16 (P.sp_row_bytes p);
  Alcotest.(check int) "acc row bytes" 64 (P.acc_row_bytes p)

let test_header () =
  let defines = Gemmini.Header_gen.defines P.default in
  let get k = List.assoc k defines in
  Alcotest.(check string) "DIM" "16" (get "DIM");
  Alcotest.(check string) "BANK_NUM" "4" (get "BANK_NUM");
  Alcotest.(check string) "BANK_ROWS" "4096" (get "BANK_ROWS");
  Alcotest.(check string) "HAS_IM2COL" "1" (get "HAS_IM2COL");
  Alcotest.(check string) "WS supported" "1" (get "DATAFLOW_WS");
  let text = Gemmini.Header_gen.generate P.default in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("header contains " ^ needle) true (contains needle))
    [ "#ifndef GEMMINI_PARAMS_H"; "typedef int8_t elem_t;"; "typedef int32_t acc_t;" ]

let test_floorplan_render () =
  let r = S.estimate P.default in
  let s = Gemmini.Floorplan.render r in
  Alcotest.(check bool) "non-empty" true (String.length s > 200)

let test_dtype () =
  let open Gemmini.Dtype in
  Alcotest.(check int) "int8 bytes" 1 (bytes Int8);
  Alcotest.(check int) "fp32 bits" 32 (bits Fp32);
  Alcotest.(check bool) "fp32 float" true (is_float Fp32);
  Alcotest.(check int) "saturate" 127 (saturate Int8 1000);
  Alcotest.(check bool) "acc pairing" true (valid_acc_for ~input:Int8 ~acc:Int32);
  Alcotest.(check bool) "bad pairing" false (valid_acc_for ~input:Int8 ~acc:Fp32)

let suite =
  [
    Alcotest.test_case "Fig. 3 calibration ratios" `Quick test_fig3_ratios;
    Alcotest.test_case "Fig. 6 area breakdown" `Quick test_fig6_breakdown;
    Alcotest.test_case "area/fmax monotonicity" `Quick test_monotonicity;
    Alcotest.test_case "node scaling" `Quick test_node_scaling;
    Alcotest.test_case "parameter validation" `Quick test_params_validation;
    Alcotest.test_case "derived sizes" `Quick test_derived_sizes;
    Alcotest.test_case "header generation" `Quick test_header;
    Alcotest.test_case "floorplan rendering" `Quick test_floorplan_render;
    Alcotest.test_case "dtype" `Quick test_dtype;
  ]
