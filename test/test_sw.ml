(* gem_sw: tiling heuristics, kernel-emission invariants, the DRAM-traffic
   model, and the ONNX front end. *)

open Gem_util
module P = Gemmini.Params
module Isa = Gemmini.Isa
module L = Gemmini.Local_addr
module Tiling = Gem_sw.Tiling
module Kernels = Gem_sw.Kernels
module Onnx = Gem_sw.Onnx
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config

(* --- tiling ------------------------------------------------------------------ *)

let qcheck_tiling_fits =
  QCheck2.Test.make ~name:"chosen tiling always fits the memories" ~count:100
    QCheck2.Gen.(triple (int_range 1 4096) (int_range 1 4096) (int_range 1 4096))
    (fun (m, k, n) ->
      let t = Tiling.choose P.default ~m ~k ~n in
      Tiling.fits P.default t)

let qcheck_tiling_maximal =
  QCheck2.Test.make ~name:"chosen tiling is maximal (no dimension can grow)" ~count:100
    QCheck2.Gen.(triple (int_range 1 2048) (int_range 1 2048) (int_range 1 2048))
    (fun (m, k, n) ->
      let t = Tiling.choose P.default ~m ~k ~n in
      let bi, bk, bj = Tiling.blocks P.default ~m ~k ~n in
      let can_grow c cap cur = cur < cap && Tiling.fits P.default c in
      not
        (can_grow { t with Tiling.ti = t.Tiling.ti + 1 } bi t.Tiling.ti
        || can_grow { t with Tiling.tj = t.Tiling.tj + 1 } bj t.Tiling.tj
        || can_grow { t with Tiling.tk = t.Tiling.tk + 1 } bk t.Tiling.tk))

let test_manual_tiling_rejected () =
  Alcotest.check_raises "oversized manual tiling"
    (Invalid_argument "Kernels.matmul: manual tiling does not fit the memories")
    (fun () ->
      ignore
        (Kernels.matmul_ops P.default
           ~tiling:(Tiling.manual ~ti:100 ~tk:100 ~tj:100)
           ~a:0 ~b:0 ~out:0 ~m:64 ~k:64 ~n:64 ()))

(* --- kernel emission invariants ------------------------------------------------ *)

let insns ops =
  List.filter_map (function Soc.Insn i -> Some i | _ -> None) ops

let qcheck_kernel_invariants =
  QCheck2.Test.make
    ~name:"matmul command stream: hardware limits respected, addresses in range"
    ~count:60
    QCheck2.Gen.(triple (int_range 1 100) (int_range 1 100) (int_range 1 100))
    (fun (m, k, n) ->
      let p = P.default in
      let dim = P.dim p in
      let a = 0x100000 and b = 0x200000 and out = 0x300000 in
      let ops = Kernels.matmul_ops p ~a ~b ~out ~m ~k ~n () in
      let ok = ref true in
      let computes = ref 0 in
      List.iter
        (fun i ->
          match i with
          | Isa.Mvin (mv, _) ->
              if mv.Isa.rows > dim then ok := false;
              if mv.Isa.cols > 4 * dim then ok := false;
              (* highest scratchpad row touched (wide mvins split into
                 adjacent DIM-blocks) stays within the target memory *)
              let nblocks = Mathx.ceil_div mv.Isa.cols dim in
              let top = L.row mv.Isa.local + ((nblocks - 1) * dim) + mv.Isa.rows - 1 in
              let capacity =
                if L.is_accumulator mv.Isa.local then P.acc_rows p else P.sp_rows p
              in
              if top >= capacity then ok := false
          | Isa.Mvout mv ->
              if mv.Isa.rows > dim || mv.Isa.cols > dim then ok := false;
              (* Outputs land inside the C matrix. *)
              if mv.Isa.dram_addr < out || mv.Isa.dram_addr >= out + (m * n) then
                ok := false
          | Isa.Compute_preloaded args | Isa.Compute_accumulated args ->
              incr computes;
              if args.Isa.a_rows > dim || args.Isa.a_cols > dim then ok := false
          | _ -> ())
        (insns ops);
      (* Every DIM-block of the iteration space is computed exactly once. *)
      let blocks_expected =
        Mathx.ceil_div m dim * Mathx.ceil_div k dim * Mathx.ceil_div n dim
      in
      !ok && !computes = blocks_expected)

(* --- traffic model -------------------------------------------------------------- *)

let test_traffic_model_matches_dma () =
  (* The Tiling.dram_traffic_bytes prediction must match the bytes the DMA
     actually moves for a dense matmul (timing mode). *)
  let p = P.default in
  let m, k, n = (256, 320, 192) in
  let soc = Soc.create Soc_config.default in
  let core = Soc.core soc 0 in
  let a = Soc.alloc soc core ~bytes:(m * k) in
  let b = Soc.alloc soc core ~bytes:(k * n) in
  let out = Soc.alloc soc core ~bytes:(m * n) in
  let ops = Kernels.matmul_ops p ~a ~b ~out ~m ~k ~n () @ [ Kernels.fence ] in
  ignore (Soc.run_program soc core (List.to_seq ops));
  let dma = Gemmini.Controller.dma (Soc.controller core) in
  let t = Tiling.choose p ~m ~k ~n in
  let predicted_in = Tiling.dram_traffic_bytes p t ~m ~k ~n - (m * n) in
  Alcotest.(check int) "input traffic" predicted_in (Gemmini.Dma.bytes_in dma);
  Alcotest.(check int) "output traffic" (m * n) (Gemmini.Dma.bytes_out dma)

(* --- ONNX ------------------------------------------------------------------------ *)

let test_onnx_roundtrip () =
  let g = Onnx.simple_cnn in
  match Onnx.parse (Onnx.to_string g) with
  | Ok g' ->
      Alcotest.(check bool) "roundtrip equal" true (g = g');
      Alcotest.(check string) "reprint stable" (Onnx.to_string g) (Onnx.to_string g')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_onnx_shapes () =
  let shapes = Onnx.infer_shapes Onnx.simple_cnn in
  let get name = List.assoc name shapes in
  Alcotest.(check (array int)) "conv1" [| 1; 8; 8; 8 |] (get "conv1");
  Alcotest.(check (array int)) "pool" [| 1; 4; 4; 8 |] (get "pool");
  Alcotest.(check (array int)) "gap" [| 1; 1; 1; 8 |] (get "gap");
  Alcotest.(check (array int)) "fc" [| 1; 10 |] (get "fc")

let test_onnx_lowering () =
  let model = Onnx.lower Onnx.simple_cnn in
  let classes =
    List.map (fun (_, l) -> Gem_dnn.Layer.class_of l) model.Gem_dnn.Layer.layers
  in
  Alcotest.(check int) "layer count (relu fused, flatten erased)" 7
    (List.length model.Gem_dnn.Layer.layers);
  Alcotest.(check bool) "relu fused into conv1" true
    (match List.assoc "conv1" model.Gem_dnn.Layer.layers with
    | Gem_dnn.Layer.Conv c -> c.Gem_dnn.Layer.relu
    | _ -> false);
  (* resadd back refs: conv2 is -1, act1 (conv1's fused output) is -2 *)
  Alcotest.(check bool) "resadd backrefs" true
    (match List.assoc "add" model.Gem_dnn.Layer.layers with
    | Gem_dnn.Layer.Residual_add { back1 = 1; back2 = 2; _ } -> true
    | _ -> false);
  ignore classes

let test_onnx_validation_errors () =
  let bad_ref =
    {
      Onnx.simple_cnn with
      Onnx.nodes =
        [ { Onnx.n_name = "x"; op = Onnx.Relu; inputs = [ "nope" ]; output = "y" } ];
      g_output = "y";
    }
  in
  (match Onnx.validate bad_ref with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undefined tensor accepted");
  match Onnx.parse "(graph g (input x (1 2)) (output missing))" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing output accepted"

let test_onnx_depthwise () =
  let g =
    {
      Onnx.g_name = "dw";
      g_input = { Onnx.t_name = "x"; dims = [| 1; 6; 6; 4 |] };
      initializers = [ { Onnx.t_name = "w"; dims = [| 3; 3; 1; 4 |] } ];
      nodes = [ Onnx.conv_node ~name:"dw" ~input:"x" ~weight:"w" ~padding:1 ~group:4 () ];
      g_output = "dw_out";
    }
  in
  let model = Onnx.lower g in
  match List.assoc "dw" model.Gem_dnn.Layer.layers with
  | Gem_dnn.Layer.Conv c ->
      Alcotest.(check bool) "depthwise" true c.Gem_dnn.Layer.depthwise
  | _ -> Alcotest.fail "expected conv"

let suite =
  [
    Alcotest.test_case "manual tiling rejected when oversized" `Quick test_manual_tiling_rejected;
    Alcotest.test_case "traffic model matches DMA counters" `Quick test_traffic_model_matches_dma;
    Alcotest.test_case "onnx print/parse roundtrip" `Quick test_onnx_roundtrip;
    Alcotest.test_case "onnx shape inference" `Quick test_onnx_shapes;
    Alcotest.test_case "onnx lowering (fusion + backrefs)" `Quick test_onnx_lowering;
    Alcotest.test_case "onnx validation errors" `Quick test_onnx_validation_errors;
    Alcotest.test_case "onnx depthwise group" `Quick test_onnx_depthwise;
    QCheck_alcotest.to_alcotest qcheck_tiling_fits;
    QCheck_alcotest.to_alcotest qcheck_tiling_maximal;
    QCheck_alcotest.to_alcotest qcheck_kernel_invariants;
  ]
