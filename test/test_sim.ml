(* gem_sim: resource arbitration edge cases, trace ring-buffer semantics,
   the engine's registry/clock/event stream, and end-to-end determinism of
   a dual-core run. *)

open Gem_sim
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime

(* --- Resource ------------------------------------------------------------- *)

let test_resource_zero_occupancy () =
  let r = Resource.create ~name:"r" in
  Alcotest.(check int) "first acquire" 15 (Resource.acquire r ~now:10 ~occupancy:5);
  Alcotest.(check int) "busy_until" 15 (Resource.busy_until r);
  (* A zero-occupancy request (a probe, a zero-byte burst) must observe its
     slot time without reserving anything: it is not allowed to push
     busy_until forward to its own arrival time. *)
  Alcotest.(check int) "zero-occupancy returns slot" 20
    (Resource.acquire r ~now:20 ~occupancy:0);
  Alcotest.(check int) "busy_until unchanged" 15 (Resource.busy_until r);
  Alcotest.(check int) "busy_cycles unchanged" 5 (Resource.busy_cycles r);
  Alcotest.(check int) "but it counted as a request" 2 (Resource.requests r);
  (* An earlier-in-time requester must still queue behind the first
     reservation only, not behind the probe. *)
  Alcotest.(check int) "queues at 15" 18 (Resource.acquire r ~now:12 ~occupancy:3);
  Alcotest.(check int) "waited 3" 3 (Resource.wait_cycles r)

let test_resource_next_free_occupy () =
  let r = Resource.create ~name:"r" in
  Alcotest.(check int) "idle: start at now" 7 (Resource.next_free r ~now:7);
  Alcotest.(check int) "query had no side effects" 0 (Resource.requests r);
  (* Commit a reservation whose duration was computed downstream. *)
  Resource.occupy_until r ~now:7 ~start:7 ~until:19;
  Alcotest.(check int) "busy_until" 19 (Resource.busy_until r);
  Alcotest.(check int) "busy_cycles" 12 (Resource.busy_cycles r);
  Alcotest.(check int) "requests" 1 (Resource.requests r);
  (* next_free + occupy_until must agree with what acquire would do. *)
  let start = Resource.next_free r ~now:10 in
  Alcotest.(check int) "queued start" 19 start;
  Resource.occupy_until r ~now:10 ~start ~until:(start + 4);
  Alcotest.(check int) "wait charged" 9 (Resource.wait_cycles r);
  Alcotest.(check int) "busy extended" 23 (Resource.busy_until r);
  (* A commit that ends inside an existing reservation never rewinds. *)
  Resource.occupy_until r ~now:23 ~start:23 ~until:23;
  Alcotest.(check int) "zero-length commit keeps busy_until" 23
    (Resource.busy_until r);
  Alcotest.check_raises "start before now"
    (Invalid_argument "Resource.occupy_until: start before now") (fun () ->
      Resource.occupy_until r ~now:5 ~start:4 ~until:6);
  Alcotest.check_raises "until before start"
    (Invalid_argument "Resource.occupy_until: until before start") (fun () ->
      Resource.occupy_until r ~now:30 ~start:31 ~until:30)

let test_resource_reset () =
  let r = Resource.create ~name:"r" in
  ignore (Resource.acquire r ~now:0 ~occupancy:10);
  ignore (Resource.acquire r ~now:0 ~occupancy:10);
  Resource.reset r;
  Alcotest.(check int) "busy_until" 0 (Resource.busy_until r);
  Alcotest.(check int) "busy_cycles" 0 (Resource.busy_cycles r);
  Alcotest.(check int) "wait_cycles" 0 (Resource.wait_cycles r);
  Alcotest.(check int) "requests" 0 (Resource.requests r);
  Alcotest.(check string) "name survives" "r" (Resource.name r)

(* --- Trace ---------------------------------------------------------------- *)

let test_trace_ring () =
  let tr = Trace.create ~capacity:4 ~enabled:true () in
  for i = 1 to 6 do
    Trace.record tr ~time:(10 * i) ~tag:"t" (string_of_int i)
  done;
  Alcotest.(check int) "count is total recorded" 6 (Trace.count tr);
  let evs = Trace.events tr in
  Alcotest.(check int) "capacity retained" 4 (List.length evs);
  Alcotest.(check (list string)) "oldest first, newest last"
    [ "3"; "4"; "5"; "6" ]
    (List.map (fun e -> e.Trace.detail) evs);
  Alcotest.(check (list int)) "times follow"
    [ 30; 40; 50; 60 ]
    (List.map (fun e -> e.Trace.time) evs)

let test_trace_disabled_and_recordf () =
  let tr = Trace.create ~capacity:4 ~enabled:false () in
  Trace.record tr ~time:0 ~tag:"t" "dropped";
  Alcotest.(check int) "disabled drops" 0 (Trace.count tr);
  (* recordf must not even evaluate its format arguments when disabled. *)
  let calls = ref 0 in
  let expensive () v =
    incr calls;
    string_of_int v
  in
  Trace.recordf tr ~time:0 ~tag:"t" "val=%a" expensive 42;
  Alcotest.(check int) "no formatting when disabled" 0 !calls;
  Trace.set_enabled tr true;
  Trace.recordf tr ~time:5 ~tag:"t" "val=%a" expensive 42;
  Alcotest.(check int) "formats when enabled" 1 !calls;
  match Trace.events tr with
  | [ e ] -> Alcotest.(check string) "formatted detail" "val=42" e.Trace.detail
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

(* --- Engine --------------------------------------------------------------- *)

let test_engine_registry () =
  let e = Engine.create () in
  let a = Engine.resource e ~kind:Engine.Bus ~name:"bus" in
  let b = Engine.resource e ~kind:Engine.Bus ~name:"bus" in
  Engine.register_probe e ~kind:Engine.Tlb ~name:"tlb" ~sample:(fun () ->
      { Engine.p_requests = 3; p_busy = 1; p_wait = 2; p_note = "probed" });
  Alcotest.(check string) "first keeps its name" "bus" (Resource.name a);
  Alcotest.(check string) "duplicate is uniquified" "bus#2" (Resource.name b);
  Alcotest.(check (list string)) "registration order"
    [ "bus"; "bus#2"; "tlb" ]
    (List.map fst (Engine.components e));
  match Engine.stats e with
  | [ _; _; p ] ->
      Alcotest.(check string) "probe name" "tlb" p.Engine.stat_name;
      Alcotest.(check int) "probe requests" 3 p.Engine.stat_requests;
      Alcotest.(check int) "probe busy" 1 p.Engine.stat_busy;
      Alcotest.(check int) "probe wait" 2 p.Engine.stat_wait;
      Alcotest.(check string) "probe note" "probed" p.Engine.stat_note
  | l -> Alcotest.failf "expected 3 stats, got %d" (List.length l)

let test_engine_clock_and_stats () =
  let e = Engine.create () in
  let bus = Engine.resource e ~kind:Engine.Bus ~name:"bus" in
  Alcotest.(check int) "clock starts at zero" 0 (Engine.now e);
  Alcotest.(check int) "acquire times like the resource" 12
    (Engine.acquire e bus ~now:2 ~occupancy:10);
  Alcotest.(check int) "clock is the high-water mark" 12 (Engine.now e);
  let start = Engine.next_free e bus ~now:5 in
  Engine.occupy e bus ~now:5 ~start ~until:(start + 3);
  Alcotest.(check int) "occupy advances the clock" 15 (Engine.now e);
  (match Engine.stats e with
  | [ s ] ->
      Alcotest.(check int) "requests" 2 s.Engine.stat_requests;
      Alcotest.(check int) "busy" 13 s.Engine.stat_busy;
      Alcotest.(check int) "wait" 7 s.Engine.stat_wait
  | l -> Alcotest.failf "expected 1 stat, got %d" (List.length l));
  Engine.observe e 100;
  Alcotest.(check int) "observe moves forward" 100 (Engine.now e);
  Engine.observe e 50;
  Alcotest.(check int) "observe never rewinds" 100 (Engine.now e)

let test_engine_events_and_sinks () =
  let e = Engine.create ~trace_capacity:8 () in
  let bus = Engine.resource e ~kind:Engine.Bus ~name:"bus" in
  Alcotest.(check bool) "quiet by default" false (Engine.observing e);
  ignore (Engine.acquire e bus ~now:0 ~occupancy:4);
  Alcotest.(check int) "no events while quiet" 0 (Engine.event_count e);
  Engine.set_tracing e true;
  let seen = ref [] in
  Engine.add_sink e (fun ev -> seen := ev :: !seen);
  ignore (Engine.acquire e bus ~now:10 ~occupancy:2);
  Engine.emit e
    (Engine.Transfer { component = "bus"; time = 12; dir = `Read; bytes = 64 });
  Alcotest.(check int) "ring recorded both" 2 (Engine.event_count e);
  Alcotest.(check int) "sink saw both" 2 (List.length !seen);
  (match Engine.events e with
  | [
   Engine.Acquire { component; start; finish; _ };
   Engine.Transfer { bytes; _ };
  ] ->
      Alcotest.(check string) "acquire component" "bus" component;
      Alcotest.(check int) "acquire start follows first burst" 10 start;
      Alcotest.(check int) "acquire finish" 12 finish;
      Alcotest.(check int) "transfer bytes" 64 bytes
  | _ -> Alcotest.fail "expected [Acquire; Transfer]");
  Engine.reset e;
  Alcotest.(check int) "reset clears the ring" 0 (Engine.event_count e);
  Alcotest.(check int) "reset clears the clock" 0 (Engine.now e);
  match Engine.stats e with
  | [ s ] -> Alcotest.(check int) "reset clears resources" 0 s.Engine.stat_requests
  | _ -> Alcotest.fail "registry survives reset"

(* --- Heap ------------------------------------------------------------------ *)

let drain h =
  let rec go acc =
    match Heap.pop h with None -> List.rev acc | Some kv -> go (kv :: acc)
  in
  go []

let test_heap_ordering () =
  let h = Heap.create () in
  Alcotest.(check bool) "fresh heap empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek on empty" None (Heap.peek_key h);
  List.iter
    (fun k -> Heap.push h ~key:k (10 * k))
    [ 7; 3; 9; 1; 4; 8; 2; 6; 5; 0 ];
  Alcotest.(check int) "size" 10 (Heap.size h);
  Alcotest.(check (option int)) "peek is min" (Some 0) (Heap.peek_key h);
  Alcotest.(check (list (pair int int))) "pops sorted by key"
    (List.init 10 (fun k -> (k, 10 * k)))
    (drain h);
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_heap_tie_stability () =
  (* The multi-core driver breaks equal-time ties by insertion order;
     equal keys must pop FIFO even across sift-up/down reshuffles. *)
  let h = Heap.create () in
  Heap.push h ~key:5 "a";
  Heap.push h ~key:3 "x";
  Heap.push h ~key:5 "b";
  Heap.push h ~key:1 "y";
  Heap.push h ~key:5 "c";
  Alcotest.(check (list (pair int string))) "ties pop in insertion order"
    [ (1, "y"); (3, "x"); (5, "a"); (5, "b"); (5, "c") ]
    (drain h);
  (* Stability must survive interleaved pops (the seq counter keeps
     advancing; it is not reset by reaching empty). *)
  Heap.push h ~key:2 "p";
  Heap.push h ~key:2 "q";
  Alcotest.(check (option (pair int string))) "reuse after drain"
    (Some (2, "p")) (Heap.pop h);
  Heap.push h ~key:2 "r";
  Alcotest.(check (list (pair int string))) "FIFO across interleaved pops"
    [ (2, "q"); (2, "r") ]
    (drain h)

let test_heap_grow_shrink () =
  (* Push far past the initial capacity, drain to empty, and reuse: the
     backing array growth must be invisible to ordering. *)
  let h = Heap.create () in
  for i = 99 downto 0 do
    Heap.push h ~key:i i
  done;
  Alcotest.(check int) "grew past initial capacity" 100 (Heap.size h);
  Alcotest.(check (list (pair int int))) "descending inserts pop ascending"
    (List.init 100 (fun i -> (i, i)))
    (drain h);
  (* Shrink back to empty and round-trip again across the old boundary. *)
  for round = 1 to 3 do
    for i = 0 to 20 do
      Heap.push h ~key:(i mod 4) (round * 100 + i)
    done;
    let keys = List.map fst (drain h) in
    Alcotest.(check (list int)) "reused heap still sorted"
      (List.sort compare keys) keys;
    Alcotest.(check bool) "empty again" true (Heap.is_empty h)
  done

(* --- allocation-free quiet hot path ----------------------------------------

   The flattened hot path promises zero per-event heap allocation while no
   observer is attached: Resource.acquire, the engine's quiet acquire
   loop, and the DMA's timing-only transfer walk. [Gc.allocated_bytes]
   deltas pin that down — a regression that boxes a result or rebuilds a
   closure per event shows up as bytes per iteration. *)

let measure_alloc f =
  (* Empty the minor arena first: the measured loops allocate well under
     one arena, so no collection can land inside the measurement window
     and perturb the counter. *)
  Gc.minor ();
  (* Calibrate away the allocation of the [Gc.allocated_bytes] floats
     themselves. *)
  let overhead =
    let a = Gc.allocated_bytes () in
    let b = Gc.allocated_bytes () in
    b -. a
  in
  let before = Gc.allocated_bytes () in
  f ();
  let after = Gc.allocated_bytes () in
  after -. before -. overhead

let test_alloc_free_resource_acquire () =
  let r = Resource.create ~name:"r" in
  ignore (Resource.acquire r ~now:0 ~occupancy:1);
  let bytes =
    measure_alloc (fun () ->
        for i = 1 to 10_000 do
          ignore (Resource.acquire r ~now:i ~occupancy:1)
        done)
  in
  Alcotest.(check (float 0.)) "Resource.acquire allocates nothing" 0. bytes

let test_alloc_free_engine_quiet () =
  let e = Engine.create () in
  let bus = Engine.resource e ~kind:Engine.Bus ~name:"bus" in
  ignore (Engine.acquire e bus ~now:0 ~occupancy:1);
  Alcotest.(check bool) "engine is quiet" false (Engine.observing e);
  let bytes =
    measure_alloc (fun () ->
        for i = 1 to 10_000 do
          ignore (Engine.acquire e bus ~now:i ~occupancy:1)
        done)
  in
  Alcotest.(check (float 0.)) "quiet Engine.acquire allocates nothing" 0.
    bytes

let test_alloc_constant_dma_transfer () =
  (* Timing-only mvin: the per-row segment walk reuses one preallocated
     translation slot and the DMA's cursor fields, so allocation per
     transfer is one constant-size result record — independent of the
     row count. *)
  let pt = Gem_vm.Page_table.create ~node_region_base:0x1000_0000 () in
  Gem_vm.Page_table.map_range pt ~vaddr:0 ~bytes:(1 lsl 22) ~paddr:0x40_0000;
  let ptw =
    Gem_vm.Ptw.create ~page_table:pt
      ~mem_read:(fun ~now ~paddr:_ ~bytes:_ -> now + 20)
      ()
  in
  let tlb =
    Gem_vm.Hierarchy.create
      {
        Gem_vm.Hierarchy.private_entries = 4;
        shared_entries = 0;
        filter_registers = true;
        private_hit_latency = 2;
        shared_hit_latency = 8;
      }
      ~ptw
  in
  let dma =
    Gemmini.Dma.create Gemmini.Params.default ~port:Gemmini.Dma.null_port ~tlb
  in
  let per_call rows =
    (* Warm the TLB/filters so the measured calls stay on the hit path. *)
    ignore
      (Gemmini.Dma.mvin dma ~now:0 ~vaddr:0 ~stride_bytes:64 ~rows
         ~row_bytes:64);
    let iters = 1_000 in
    let bytes =
      measure_alloc (fun () ->
          for i = 1 to iters do
            ignore
              (Gemmini.Dma.mvin dma ~now:(i * 10_000) ~vaddr:0
                 ~stride_bytes:64 ~rows ~row_bytes:64)
          done)
    in
    bytes /. float_of_int iters
  in
  let one = per_call 1 and many = per_call 32 in
  Alcotest.(check (float 0.)) "per-transfer bytes independent of rows" one
    many;
  Alcotest.(check bool) "per-transfer bytes are one small record" true
    (one <= 64.)

(* --- determinism guard ----------------------------------------------------

   The fig7/fig9-style experiments rely on simulated-time interleaving of
   two cores over shared L2/DRAM resources. Run the same dual-core job mix
   on two freshly elaborated SoCs: finish times, and the entire rendered
   engine profile (every component's requests/busy/wait), must be
   byte-identical. *)

let test_dual_core_determinism () =
  let model = Gem_dnn.Model_zoo.(scale_model ~factor:8 squeezenet) in
  let jobs =
    [|
      (model, Runtime.Accel { im2col_on_accel = true });
      (model, Runtime.Accel { im2col_on_accel = false });
    |]
  in
  let run_once () =
    let soc = Soc.create Soc_config.dual_core in
    let rs = Runtime.run_parallel soc jobs in
    let totals = Array.map (fun r -> r.Runtime.r_total_cycles) rs in
    let profile =
      Gem_util.Table.render (Engine.utilization_table (Soc.engine soc) ())
    in
    (totals, profile)
  in
  let t1, p1 = run_once () in
  let t2, p2 = run_once () in
  Alcotest.(check (array int)) "finish times identical" t1 t2;
  Alcotest.(check string) "rendered engine profile identical" p1 p2;
  Alcotest.(check bool) "profile mentions both cores" true
    (let has s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has p1 "core0/mesh" && has p1 "core1/mesh")

let suite =
  [
    Alcotest.test_case "resource: zero-occupancy probe" `Quick
      test_resource_zero_occupancy;
    Alcotest.test_case "resource: next_free/occupy_until" `Quick
      test_resource_next_free_occupy;
    Alcotest.test_case "resource: reset" `Quick test_resource_reset;
    Alcotest.test_case "trace: ring overwrite order" `Quick test_trace_ring;
    Alcotest.test_case "trace: disabled recordf is free" `Quick
      test_trace_disabled_and_recordf;
    Alcotest.test_case "engine: registry and probes" `Quick
      test_engine_registry;
    Alcotest.test_case "engine: clock and stats" `Quick
      test_engine_clock_and_stats;
    Alcotest.test_case "engine: events and sinks" `Quick
      test_engine_events_and_sinks;
    Alcotest.test_case "heap: ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap: same-key insertion order" `Quick
      test_heap_tie_stability;
    Alcotest.test_case "heap: grow, drain, reuse" `Quick test_heap_grow_shrink;
    Alcotest.test_case "alloc-free: Resource.acquire" `Quick
      test_alloc_free_resource_acquire;
    Alcotest.test_case "alloc-free: quiet engine acquire" `Quick
      test_alloc_free_engine_quiet;
    Alcotest.test_case "alloc-constant: timing-only DMA transfer" `Quick
      test_alloc_constant_dma_transfer;
    Alcotest.test_case "engine: dual-core determinism" `Quick
      test_dual_core_determinism;
  ]
