(* Gem_obs: the host-side self-profiler (phase attribution, exclusive
   time, anomaly self-healing) and the unified metrics registry
   (deterministic snapshots, JSON/CSV shapes, duplicate rejection). *)

module P = Gem_obs.Profile
module M = Gem_obs.Metrics
module Stats = Gem_util.Stats
module J = Gem_util.Jsonx

(* Every test starts from a clean, disabled profiler; the suite runs in
   one process, so leaked state would couple test cases. *)
let fresh () =
  P.disable ();
  P.reset ()

let phase name =
  List.find_opt (fun p -> p.P.ph_name = name) (P.phases ())

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let spin () =
  (* Burn a little attributable wall time and allocation. *)
  let acc = ref [] in
  for i = 0 to 2_000 do
    acc := i :: !acc
  done;
  ignore (Sys.opaque_identity !acc)

(* --- profiler ------------------------------------------------------------- *)

let test_profile_disabled_noop () =
  fresh ();
  Alcotest.(check bool) "disabled" false (P.enabled ());
  (* [record] must not attribute anything while disabled. *)
  Alcotest.(check int) "record returns value" 7 (P.record "phase.x" (fun () -> 7));
  Alcotest.(check (list string)) "no phases" []
    (List.map (fun p -> p.P.ph_name) (P.phases ()))

let test_profile_enter_leave () =
  fresh ();
  P.enable ();
  P.enter "outer";
  spin ();
  P.enter "inner";
  spin ();
  P.leave "inner";
  spin ();
  P.leave "outer";
  P.disable ();
  let outer = Option.get (phase "outer") in
  let inner = Option.get (phase "inner") in
  Alcotest.(check int) "outer calls" 1 outer.P.ph_calls;
  Alcotest.(check int) "inner calls" 1 inner.P.ph_calls;
  (* Inclusive vs exclusive: outer's total covers inner entirely; its
     self time excludes inner's slice. *)
  Alcotest.(check bool) "outer total >= inner total" true
    (outer.P.ph_total_s >= inner.P.ph_total_s);
  Alcotest.(check bool) "outer self < outer total" true
    (outer.P.ph_self_s < outer.P.ph_total_s);
  Alcotest.(check bool) "inner self = inner total (leaf)" true
    (Float.abs (inner.P.ph_self_s -. inner.P.ph_total_s) < 1e-9);
  Alcotest.(check bool) "self times are attributed" true
    (P.attributed_s (P.phases ()) > 0.);
  let orphans, forced = P.anomalies () in
  Alcotest.(check int) "no orphans" 0 orphans;
  Alcotest.(check int) "no forced leaves" 0 forced

let test_profile_self_excludes_nested () =
  fresh ();
  P.enable ();
  (* outer's work happens only inside inner, so outer's self time must be
     a small fraction of its total. *)
  P.enter "outer";
  P.enter "inner";
  for _ = 1 to 20 do
    spin ()
  done;
  P.leave "inner";
  P.leave "outer";
  P.disable ();
  let outer = Option.get (phase "outer") in
  let inner = Option.get (phase "inner") in
  Alcotest.(check bool)
    (Printf.sprintf "outer self (%.6fs) well under inner self (%.6fs)"
       outer.P.ph_self_s inner.P.ph_self_s)
    true
    (outer.P.ph_self_s < inner.P.ph_self_s);
  Alcotest.(check bool) "inner allocated" true (inner.P.ph_alloc_bytes > 0.)

let test_profile_anomalies_self_heal () =
  fresh ();
  P.enable ();
  (* A leave with no matching open frame is an orphan, counted and
     otherwise ignored. *)
  P.leave "ghost";
  (* A leave that skips an inner open frame (an exception unwound through
     a probed region) force-pops it: the inner slice is still attributed
     and the stack self-heals. *)
  P.enter "outer";
  P.enter "abandoned";
  spin ();
  P.leave "outer";
  P.disable ();
  let orphans, forced = P.anomalies () in
  Alcotest.(check int) "orphan counted" 1 orphans;
  Alcotest.(check int) "forced counted" 1 forced;
  Alcotest.(check bool) "abandoned still attributed" true
    (Option.is_some (phase "abandoned"));
  Alcotest.(check bool) "no ghost phase" true (Option.is_none (phase "ghost"))

let test_profile_record_and_reset () =
  fresh ();
  P.enable ();
  Alcotest.(check int) "record passes value through" 42
    (P.record "phase.rec" (fun () -> 42));
  (* record is exception-safe: the frame closes when f raises. *)
  (try P.record "phase.raise" (fun () -> failwith "boom") with _ -> ());
  P.enter "balanced";
  P.leave "balanced";
  P.disable ();
  Alcotest.(check bool) "recorded" true (Option.is_some (phase "phase.rec"));
  Alcotest.(check bool) "raising phase closed and attributed" true
    (Option.is_some (phase "phase.raise"));
  let orphans, forced = P.anomalies () in
  Alcotest.(check int) "record cleanup leaves no orphans" 0 orphans;
  Alcotest.(check int) "record cleanup forces nothing" 0 forced;
  P.reset ();
  Alcotest.(check (list string)) "reset clears phases" []
    (List.map (fun p -> p.P.ph_name) (P.phases ()))

let test_profile_report_shapes () =
  fresh ();
  P.enable ();
  P.enter "hot";
  spin ();
  P.leave "hot";
  P.disable ();
  let total_s = P.attributed_s (P.phases ()) *. 2. in
  let pct = P.coverage_pct ~total_s (P.phases ()) in
  Alcotest.(check (float 1e-6)) "coverage is attributed/total" 50. pct;
  (match P.to_json ~total_s () with
  | J.Obj kvs ->
      Alcotest.(check bool) "json has phases" true
        (List.mem_assoc "phases" kvs);
      Alcotest.(check bool) "json has coverage" true
        (List.mem_assoc "coverage_pct" kvs)
  | _ -> Alcotest.fail "to_json not an object");
  let txt = P.render ~total_s () in
  Alcotest.(check bool) "render names the phase" true
    (contains ~sub:"hot" txt)

(* --- metrics registry ------------------------------------------------------ *)

let test_metrics_registry_basics () =
  let r = M.create () in
  M.int r "b.second" 2;
  M.int r "a.first" 1;
  M.float r "c.third" 1.5;
  let cnt = M.counter r "d.counter" in
  Stats.Counter.add cnt 5;
  Alcotest.(check int) "size" 4 (M.size r);
  Alcotest.(check bool) "mem" true (M.mem r "a.first");
  Alcotest.(check bool) "not mem" false (M.mem r "z.absent");
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Metrics.register: duplicate metric \"a.first\"")
    (fun () -> M.int r "a.first" 9);
  Alcotest.check_raises "empty name rejected"
    (Invalid_argument "Metrics.register: empty name") (fun () ->
      M.int r "" 0);
  match M.to_json r with
  | J.Obj kvs -> (
      match List.assoc "scalars" kvs with
      | J.Obj scalars ->
          (* Sorted by name regardless of registration order. *)
          Alcotest.(check (list string)) "sorted names"
            [ "a.first"; "b.second"; "c.third"; "d.counter" ]
            (List.map fst scalars);
          Alcotest.(check bool) "counter sampled" true
            (List.assoc "d.counter" scalars = J.Int 5)
      | _ -> Alcotest.fail "scalars not an object")
  | _ -> Alcotest.fail "to_json not an object"

let test_metrics_pull_sampled_at_snapshot () =
  let r = M.create () in
  let v = ref 1 in
  M.pull_int r "gauge" (fun () -> !v);
  v := 99;
  match M.to_json r with
  | J.Obj kvs -> (
      match List.assoc "scalars" kvs with
      | J.Obj scalars ->
          Alcotest.(check bool) "pull reads at snapshot time" true
            (List.assoc "gauge" scalars = J.Int 99)
      | _ -> Alcotest.fail "scalars not an object")
  | _ -> Alcotest.fail "to_json not an object"

let test_metrics_histogram_expansion () =
  let r = M.create () in
  let h = Stats.Histogram.create ~buckets:10 ~range:100. in
  List.iter (Stats.Histogram.add h) [ 10.; 20.; 90. ];
  M.histogram r "lat" h;
  match M.to_json r with
  | J.Obj kvs -> (
      match List.assoc "scalars" kvs with
      | J.Obj scalars ->
          Alcotest.(check (list string)) "fixed sub-rows"
            [ "lat.count"; "lat.max"; "lat.p50"; "lat.p95"; "lat.p99" ]
            (List.map fst scalars);
          Alcotest.(check bool) "count row" true
            (List.assoc "lat.count" scalars = J.Int 3)
      | _ -> Alcotest.fail "scalars not an object")
  | _ -> Alcotest.fail "to_json not an object"

let test_metrics_series_means_and_totals () =
  let r = M.create () in
  let s = Stats.Series.create ~window:10. in
  Stats.Series.add s ~time:1. 2.;
  Stats.Series.add s ~time:2. 4.;
  Stats.Series.add s ~time:15. 10.;
  M.series r "mean_series" s;
  M.series_total r "total_series" s;
  match M.to_json r with
  | J.Obj kvs -> (
      match List.assoc "series" kvs with
      | J.Obj series ->
          let windows name =
            match List.assoc name series with
            | J.List l ->
                List.map
                  (function
                    | J.List [ t; v ] ->
                        ( Option.get (J.to_float t),
                          Option.get (J.to_float v) )
                    | _ -> Alcotest.fail "bad window pair")
                  l
            | _ -> Alcotest.fail "series not a list"
          in
          (* Same samples, two reductions: window means vs window sums. *)
          Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
            "means" [ (0., 3.); (10., 10.) ] (windows "mean_series");
          Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
            "sums" [ (0., 6.); (10., 10.) ] (windows "total_series")
      | _ -> Alcotest.fail "series not an object")
  | _ -> Alcotest.fail "to_json not an object"

let test_metrics_csv_shape () =
  let r = M.create () in
  M.int r "scalar.a" 7;
  let s = Stats.Series.create ~window:10. in
  Stats.Series.add s ~time:1. 2.;
  M.series r "ser" s;
  let csv = M.to_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header" "metric,time,value" (List.hd lines);
  Alcotest.(check bool) "scalar row has empty time" true
    (List.mem "scalar.a,,7" lines);
  Alcotest.(check bool) "series row carries its window start" true
    (List.exists (fun l -> String.length l > 4 && String.sub l 0 4 = "ser,")
       lines)

let test_metrics_snapshot_deterministic () =
  let build order =
    let r = M.create () in
    List.iter (fun (n, v) -> M.int r n v) order;
    J.to_string (M.to_json r)
  in
  Alcotest.(check string) "registration order is irrelevant"
    (build [ ("a", 1); ("b", 2); ("c", 3) ])
    (build [ ("c", 3); ("a", 1); ("b", 2) ])

let suite =
  [
    Alcotest.test_case "profile: disabled is a no-op" `Quick
      test_profile_disabled_noop;
    Alcotest.test_case "profile: enter/leave attribution" `Quick
      test_profile_enter_leave;
    Alcotest.test_case "profile: self excludes nested" `Quick
      test_profile_self_excludes_nested;
    Alcotest.test_case "profile: orphan/forced self-healing" `Quick
      test_profile_anomalies_self_heal;
    Alcotest.test_case "profile: record and reset" `Quick
      test_profile_record_and_reset;
    Alcotest.test_case "profile: report shapes" `Quick
      test_profile_report_shapes;
    Alcotest.test_case "metrics: registry basics" `Quick
      test_metrics_registry_basics;
    Alcotest.test_case "metrics: pull sampled at snapshot" `Quick
      test_metrics_pull_sampled_at_snapshot;
    Alcotest.test_case "metrics: histogram expansion" `Quick
      test_metrics_histogram_expansion;
    Alcotest.test_case "metrics: series means and totals" `Quick
      test_metrics_series_means_and_totals;
    Alcotest.test_case "metrics: csv shape" `Quick test_metrics_csv_shape;
    Alcotest.test_case "metrics: deterministic snapshot" `Quick
      test_metrics_snapshot_deterministic;
  ]
