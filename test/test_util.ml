(* gem_util: math, RNG, statistics, tables, fixed-point, matrices, tensors. *)

open Gem_util

let test_mathx () =
  Alcotest.(check int) "ceil_div exact" 4 (Mathx.ceil_div 16 4);
  Alcotest.(check int) "ceil_div round" 5 (Mathx.ceil_div 17 4);
  Alcotest.(check int) "round_up" 20 (Mathx.round_up 17 4);
  Alcotest.(check bool) "pow2 yes" true (Mathx.is_pow2 64);
  Alcotest.(check bool) "pow2 no" false (Mathx.is_pow2 48);
  Alcotest.(check bool) "pow2 zero" false (Mathx.is_pow2 0);
  Alcotest.(check int) "log2_ceil" 7 (Mathx.log2_ceil 65);
  Alcotest.(check int) "log2_exact" 6 (Mathx.log2_exact 64);
  Alcotest.check_raises "log2_exact rejects" (Invalid_argument "Mathx.log2_exact: not a power of two")
    (fun () -> ignore (Mathx.log2_exact 48));
  Alcotest.(check int) "clamp low" 0 (Mathx.clamp ~lo:0 ~hi:10 (-5));
  Alcotest.(check int) "clamp high" 10 (Mathx.clamp ~lo:0 ~hi:10 15)

let qcheck_ceil_div =
  QCheck2.Test.make ~name:"ceil_div is minimal cover" ~count:200
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 1000))
    (fun (a, b) ->
      let q = Mathx.ceil_div a b in
      q * b >= a && (q - 1) * b < a)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create ~seed:8 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1_000_000 <> Rng.int c 1_000_000 then differs := true
  done;
  Alcotest.(check bool) "different seed differs" true !differs

let qcheck_rng_bounds =
  QCheck2.Test.make ~name:"int_in stays in range" ~count:500
    QCheck2.Gen.(triple (int_range 0 10000) (int_range (-500) 500) (int_range 0 500))
    (fun (seed, lo, span) ->
      let rng = Rng.create ~seed in
      let hi = lo + span in
      let v = Rng.int_in rng ~lo ~hi in
      v >= lo && v <= hi)

let test_running_stats () =
  let r = Stats.Running.create () in
  List.iter (Stats.Running.add r) [ 2.; 4.; 6.; 8. ];
  Alcotest.(check (float 1e-9)) "mean" 5. (Stats.Running.mean r);
  Alcotest.(check (float 1e-9)) "min" 2. (Stats.Running.min r);
  Alcotest.(check (float 1e-9)) "max" 8. (Stats.Running.max r);
  Alcotest.(check (float 1e-9)) "total" 20. (Stats.Running.total r);
  Alcotest.(check (float 1e-6)) "variance" (20. /. 3.) (Stats.Running.variance r)

let qcheck_running_merge =
  QCheck2.Test.make ~name:"Running.merge == concatenated stream" ~count:100
    QCheck2.Gen.(pair (list_size (int_range 1 50) (float_range (-100.) 100.))
                   (list_size (int_range 1 50) (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let a = Stats.Running.create () and b = Stats.Running.create () in
      let c = Stats.Running.create () in
      List.iter (Stats.Running.add a) xs;
      List.iter (Stats.Running.add b) ys;
      List.iter (Stats.Running.add c) (xs @ ys);
      let m = Stats.Running.merge a b in
      abs_float (Stats.Running.mean m -. Stats.Running.mean c) < 1e-6
      && Stats.Running.count m = Stats.Running.count c
      && abs_float (Stats.Running.variance m -. Stats.Running.variance c) < 1e-4)

let test_series () =
  let s = Stats.Series.create ~window:10. in
  Stats.Series.add s ~time:1. 1.0;
  Stats.Series.add s ~time:5. 0.0;
  Stats.Series.add s ~time:15. 1.0;
  let w = Stats.Series.windows s in
  Alcotest.(check int) "two windows" 2 (Array.length w);
  Alcotest.(check (float 1e-9)) "first mean" 0.5 (snd w.(0));
  Alcotest.(check (float 1e-9)) "second mean" 1.0 (snd w.(1))

let test_histogram () =
  let h = Stats.Histogram.create ~buckets:10 ~range:100. in
  for i = 0 to 99 do
    Stats.Histogram.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Stats.Histogram.count h);
  let p50 = Stats.Histogram.percentile h 50. in
  Alcotest.(check bool) "median near 50" true (p50 > 35. && p50 < 65.)

(* Regression: a histogram reused across measurement runs must reset in
   between, or the second run's percentiles smear both sample sets. *)
let test_histogram_reset () =
  let h = Stats.Histogram.create ~buckets:10 ~range:100. in
  for _ = 1 to 50 do
    Stats.Histogram.add h 90.
  done;
  Stats.Histogram.reset h;
  Alcotest.(check int) "empty after reset" 0 (Stats.Histogram.count h);
  Alcotest.(check bool) "max cleared" true
    (Float.is_nan (Stats.Histogram.max h));
  Alcotest.(check bool) "buckets cleared" true
    (Array.for_all (fun c -> c = 0) (Stats.Histogram.bucket_counts h));
  for _ = 1 to 10 do
    Stats.Histogram.add h 10.
  done;
  (* With the stale 90s still counted this would sit near 90. *)
  Alcotest.(check bool) "fresh percentiles" true
    (Stats.Histogram.percentile h 99. < 50.);
  Alcotest.(check (float 1e-9)) "fresh max" 10. (Stats.Histogram.max h)

let test_histogram_merge () =
  let mk samples =
    let h = Stats.Histogram.create ~buckets:10 ~range:100. in
    List.iter (Stats.Histogram.add h) samples;
    h
  in
  (* Merging an empty histogram is the identity on every observable. *)
  let a = mk [ 5.; 15.; 95. ] and empty = mk [] in
  let m = Stats.Histogram.merge a empty in
  Alcotest.(check int) "empty right: count" 3 (Stats.Histogram.count m);
  Alcotest.(check (float 1e-9)) "empty right: max" 95. (Stats.Histogram.max m);
  Alcotest.(check (array int)) "empty right: buckets"
    (Stats.Histogram.bucket_counts a)
    (Stats.Histogram.bucket_counts m);
  let m = Stats.Histogram.merge empty a in
  Alcotest.(check int) "empty left: count" 3 (Stats.Histogram.count m);
  Alcotest.(check (float 1e-9)) "empty left: max" 95. (Stats.Histogram.max m);
  let m = Stats.Histogram.merge empty (mk []) in
  Alcotest.(check int) "both empty: count" 0 (Stats.Histogram.count m);
  Alcotest.(check bool) "both empty: max nan" true
    (Float.is_nan (Stats.Histogram.max m));
  (* Disjoint sample ranges: the merge sees both populations and equals a
     histogram fed the union. *)
  let low = mk [ 5.; 6.; 7. ] and high = mk [ 85.; 95. ] in
  let m = Stats.Histogram.merge low high in
  let union = mk [ 5.; 6.; 7.; 85.; 95. ] in
  Alcotest.(check int) "disjoint: count" 5 (Stats.Histogram.count m);
  Alcotest.(check (array int)) "disjoint: buckets"
    (Stats.Histogram.bucket_counts union)
    (Stats.Histogram.bucket_counts m);
  Alcotest.(check (float 1e-9)) "disjoint: max" 95. (Stats.Histogram.max m);
  Alcotest.(check (float 1e-9)) "disjoint: p99 matches union"
    (Stats.Histogram.percentile union 99.)
    (Stats.Histogram.percentile m 99.);
  (* Overlapping ranges accumulate bucket-wise. *)
  let x = mk [ 10.; 20.; 30. ] and y = mk [ 15.; 25.; 90. ] in
  let m = Stats.Histogram.merge x y in
  let union = mk [ 10.; 20.; 30.; 15.; 25.; 90. ] in
  Alcotest.(check int) "overlap: count" 6 (Stats.Histogram.count m);
  Alcotest.(check (array int)) "overlap: buckets"
    (Stats.Histogram.bucket_counts union)
    (Stats.Histogram.bucket_counts m);
  Alcotest.(check (float 1e-9)) "overlap: p50 matches union"
    (Stats.Histogram.percentile union 50.)
    (Stats.Histogram.percentile m 50.);
  (* Merge never mutates its inputs. *)
  Alcotest.(check int) "left untouched" 3 (Stats.Histogram.count x);
  Alcotest.(check int) "right untouched" 3 (Stats.Histogram.count y);
  (* Shape mismatches are programming errors, caught loudly. *)
  Alcotest.check_raises "bucket mismatch"
    (Invalid_argument "Histogram.merge: bucket counts differ") (fun () ->
      ignore
        (Stats.Histogram.merge x
           (Stats.Histogram.create ~buckets:4 ~range:100.)));
  Alcotest.check_raises "range mismatch"
    (Invalid_argument "Histogram.merge: ranges differ") (fun () ->
      ignore
        (Stats.Histogram.merge x
           (Stats.Histogram.create ~buckets:10 ~range:50.)))

let test_table_render () =
  let t = Table.create ~title:"T" [ "a"; "bb" ] in
  Table.set_align t 1 Table.Right;
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "long"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains title" true (String.length s > 0 && String.sub s 0 1 = "T");
  Alcotest.(check bool) "right aligned" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> l = "| x    |  1 |") lines)

let test_fmt () =
  Alcotest.(check string) "thousands" "1,234,567" (Table.fmt_int 1234567);
  Alcotest.(check string) "negative" "-1,000" (Table.fmt_int (-1000));
  Alcotest.(check string) "bytes kb" "256 KB" (Table.fmt_bytes (256 * 1024));
  Alcotest.(check string) "bytes mb" "2 MB" (Table.fmt_bytes (2 * 1024 * 1024));
  Alcotest.(check string) "speedup" "2670x" (Table.fmt_x 2670.)

let test_fixed () =
  Alcotest.(check int) "sat8 high" 127 (Fixed.sat8 1000);
  Alcotest.(check int) "sat8 low" (-128) (Fixed.sat8 (-1000));
  Alcotest.(check int) "mac32 saturates" Fixed.int32_max
    (Fixed.mac32 ~acc:Fixed.int32_max 10 10);
  Alcotest.(check int) "rounding_shift half-even down" 2 (Fixed.rounding_shift 5 1);
  Alcotest.(check int) "rounding_shift half-even up" 2 (Fixed.rounding_shift 3 1);
  Alcotest.(check int) "relu" 0 (Fixed.relu (-5));
  Alcotest.(check int) "relu6" 6 (Fixed.relu6 ~shift:0 100)

let qcheck_rounding_shift =
  QCheck2.Test.make ~name:"rounding_shift within 1/2 ulp" ~count:300
    QCheck2.Gen.(pair (int_range (-100000) 100000) (int_range 1 8))
    (fun (x, s) ->
      let q = Fixed.rounding_shift x s in
      let exact = float_of_int x /. float_of_int (1 lsl s) in
      abs_float (float_of_int q -. exact) <= 0.5 +. 1e-9)

let qcheck_matrix_transpose =
  QCheck2.Test.make ~name:"transpose involutive" ~count:100
    QCheck2.Gen.(triple (int_range 1 12) (int_range 1 12) (int_range 0 10000))
    (fun (r, c, seed) ->
      let rng = Rng.create ~seed in
      let m = Matrix.random rng ~rows:r ~cols:c ~lo:(-50) ~hi:50 in
      Matrix.equal m (Matrix.transpose (Matrix.transpose m)))

let qcheck_matmul_assoc_dims =
  QCheck2.Test.make ~name:"mul dims and identity" ~count:100
    QCheck2.Gen.(triple (int_range 1 8) (int_range 1 8) (int_range 0 1000))
    (fun (n, k, seed) ->
      let rng = Rng.create ~seed in
      let a = Matrix.random rng ~rows:n ~cols:k ~lo:(-10) ~hi:10 in
      let id = Matrix.init ~rows:k ~cols:k (fun r c -> if r = c then 1 else 0) in
      Matrix.equal a (Matrix.mul a id))

let test_tensor () =
  let t = Tensor.create [| 2; 3; 4 |] in
  Alcotest.(check int) "elems" 24 (Tensor.num_elems t);
  Tensor.set t [| 1; 2; 3 |] 42;
  Alcotest.(check int) "get/set" 42 (Tensor.get t [| 1; 2; 3 |]);
  let r = Tensor.reshape t [| 6; 4 |] in
  Alcotest.(check int) "reshape shares" 42 (Tensor.get r [| 5; 3 |]);
  Alcotest.check_raises "bad reshape"
    (Invalid_argument "Tensor.reshape: element count mismatch") (fun () ->
      ignore (Tensor.reshape t [| 5; 5 |]));
  let m = Matrix.of_lists [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check bool) "matrix roundtrip" true
    (Matrix.equal m (Tensor.to_matrix (Tensor.of_matrix m)))

let suite =
  [
    Alcotest.test_case "mathx" `Quick test_mathx;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "running stats" `Quick test_running_stats;
    Alcotest.test_case "series windows" `Quick test_series;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram reset" `Quick test_histogram_reset;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "formatting" `Quick test_fmt;
    Alcotest.test_case "fixed point" `Quick test_fixed;
    Alcotest.test_case "tensor" `Quick test_tensor;
    QCheck_alcotest.to_alcotest qcheck_ceil_div;
    QCheck_alcotest.to_alcotest qcheck_rng_bounds;
    QCheck_alcotest.to_alcotest qcheck_running_merge;
    QCheck_alcotest.to_alcotest qcheck_rounding_shift;
    QCheck_alcotest.to_alcotest qcheck_matrix_transpose;
    QCheck_alcotest.to_alcotest qcheck_matmul_assoc_dims;
  ]
