(* The bench-regression gate: diffs the cycle counts in a fresh
   BENCH_results.json (written by `bench/main.exe -- quick`) against the
   committed BENCH_baseline.json and fails on ANY drift — a changed count,
   a metric that disappeared, or a new metric not yet in the baseline.

     dune exec bench/check_regression.exe
     dune exec bench/check_regression.exe -- baseline.json results.json

   Cycle counts in this repository are deterministic, so an exact match is
   the correct bar. Wall times are reported for context but never gate.
   When a simulator change legitimately moves the numbers, regenerate the
   baseline (`dune exec bench/main.exe -- quick && cp BENCH_results.json
   BENCH_baseline.json`) and commit it alongside the change. *)

let fail_count = ref 0

let problem fmt =
  Printf.ksprintf
    (fun s ->
      incr fail_count;
      Printf.printf "FAIL %s\n" s)
    fmt

let malformed path fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "error: %s: %s\n" path s;
      exit 2)
    fmt

let load path =
  let ic =
    try open_in path
    with Sys_error e ->
      Printf.eprintf "error: cannot open %s: %s\n" path e;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Gem_util.Jsonx.of_string s with
  | Ok v -> v
  | Error e -> malformed path "invalid JSON: %s" e

let obj_field path json name =
  match Gem_util.Jsonx.member name json with
  | Some v -> v
  | None -> malformed path "no %S field" name

let int_section path json name =
  match Gem_util.Jsonx.to_obj (obj_field path json name) with
  | Some kvs ->
      List.map
        (fun (k, v) ->
          match Gem_util.Jsonx.to_int v with
          | Some n -> (k, n)
          | None -> malformed path "%s metric %S is not an integer" name k)
        kvs
  | None -> malformed path "%S is not an object" name

let metrics path json = int_section path json "metrics"

(* The serving section (schema 1 files from before lib/serve existed lack
   it) gets the same exact-match treatment as the figure metrics. *)
let serving path json =
  match Gem_util.Jsonx.member "serving" json with
  | None -> None
  | Some _ -> Some (int_section path json "serving")

let diff_section ~label base_m res_m =
  List.iter
    (fun (k, bv) ->
      match List.assoc_opt k res_m with
      | None -> problem "%s%s: in baseline but missing from results" label k
      | Some rv when rv <> bv ->
          problem "%s%s: baseline %d, got %d (%+d)" label k bv rv (rv - bv)
      | Some _ -> ())
    base_m;
  List.iter
    (fun (k, _) ->
      if not (List.mem_assoc k base_m) then
        problem "%s%s: new metric not in baseline (regenerate BENCH_baseline.json)"
          label k)
    res_m

let quick_flag path json =
  match Gem_util.Jsonx.to_bool (obj_field path json "quick") with
  | Some b -> b
  | None -> malformed path "\"quick\" is not a boolean"

let () =
  let baseline_path, results_path =
    match Array.to_list Sys.argv with
    | [ _ ] -> ("BENCH_baseline.json", "BENCH_results.json")
    | [ _; b ] -> (b, "BENCH_results.json")
    | [ _; b; r ] -> (b, r)
    | _ ->
        Printf.eprintf "usage: check_regression [baseline.json [results.json]]\n";
        exit 2
  in
  let baseline = load baseline_path in
  let results = load results_path in
  let bq = quick_flag baseline_path baseline in
  let rq = quick_flag results_path results in
  if bq <> rq then
    problem "quick flags differ: baseline quick=%b, results quick=%b" bq rq;
  let base_m = metrics baseline_path baseline in
  let res_m = metrics results_path results in
  diff_section ~label:"" base_m res_m;
  let serving_count =
    match (serving baseline_path baseline, serving results_path results) with
    | Some bs, Some rs ->
        diff_section ~label:"serving/" bs rs;
        List.length bs
    | None, Some rs ->
        problem
          "serving: results have a serving section but the baseline has none \
           (regenerate BENCH_baseline.json)";
        List.length rs
    | Some _, None ->
        problem "serving: baseline has a serving section but the results have none";
        0
    | None, None -> 0
  in
  (* The self_profile section is wall-clock attribution of the simulator's
     own host time (bench/main.exe selfprofile). Machine-dependent by
     nature, so it is acknowledged here and deliberately never gated —
     same policy as wall_s. *)
  (match
     Option.bind
       (Gem_util.Jsonx.member "self_profile" results)
       Gem_util.Jsonx.to_obj
   with
  | Some sp when sp <> [] ->
      Printf.printf "info self_profile: %d wall-only entries (ungated)\n"
        (List.length sp)
  | _ -> ());
  (* The hotpath section pairs wall time (ns/op) with allocation
     (bytes/op) per quiet-path benchmark. Both are machine-dependent, so
     like self_profile they are reported with baseline context but never
     gated. *)
  (let floats json =
     match
       Option.bind (Gem_util.Jsonx.member "hotpath" json) Gem_util.Jsonx.to_obj
     with
     | Some kvs ->
         List.filter_map
           (fun (k, v) ->
             Option.map (fun f -> (k, f)) (Gem_util.Jsonx.to_float v))
           kvs
     | None -> []
   in
   let res_hp = floats results in
   let base_hp = floats baseline in
   List.iter
     (fun (k, ns) ->
       if Filename.check_suffix k ".ns_per_op" then
         let name = Filename.chop_suffix k ".ns_per_op" in
         match List.assoc_opt (name ^ ".bytes_per_op") res_hp with
         | Some bytes ->
             let context =
               match List.assoc_opt k base_hp with
               | Some b -> Printf.sprintf " (baseline %.1f ns/op)" b
               | None -> ""
             in
             Printf.printf "info hotpath %s: %.1f ns/op, %.1f B/op%s\n" name
               ns bytes context
         | None -> ())
     res_hp);
  (match
     ( Gem_util.Jsonx.to_obj (obj_field baseline_path baseline "wall_s"),
       Gem_util.Jsonx.to_obj (obj_field results_path results "wall_s") )
   with
  | Some bw, Some rw ->
      List.iter
        (fun (k, v) ->
          match Gem_util.Jsonx.to_float v with
          | None -> ()
          | Some r -> (
              match Option.bind (List.assoc_opt k bw) Gem_util.Jsonx.to_float with
              | Some b -> Printf.printf "info %s: %.2fs (baseline %.2fs)\n" k r b
              | None -> Printf.printf "info %s: %.2fs (no baseline)\n" k r))
        rw
  | _ -> ());
  if !fail_count = 0 then (
    Printf.printf "OK: %d metrics match %s\n"
      (List.length base_m + serving_count)
      baseline_path;
    exit 0)
  else (
    Printf.printf "%d regression(s) against %s\n" !fail_count baseline_path;
    exit 1)
