(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sections IV and V) and runs bechamel microbenchmarks of the
   simulator's hot paths.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig7    -- one experiment
     dune exec bench/main.exe -- quick   -- scaled-down figures (CI-sized)

   Absolute cycle counts come from this repository's simulator; each table
   prints the paper's reference numbers alongside. *)

let banner name =
  Printf.printf "\n%s\n%s\n" name (String.make (String.length name) '=')

(* Machine-readable results: every experiment contributes its deterministic
   cycle counts (and similar integer measurements) plus its wall time; the
   whole collection is written to BENCH_results.json at the end, and the CI
   regression gate (bench/check_regression.exe) diffs the cycle counts
   against the committed BENCH_baseline.json. *)

let metrics : (string * int) list ref = ref []
let walls : (string * float) list ref = ref []
let metric name v = metrics := (name, v) :: !metrics

(* Serving measurements live in their own gated section: they come from the
   open-loop serving layer (lib/serve) rather than a paper figure, and the
   regression gate diffs them with the same exact-match bar. *)
let serving : (string * int) list ref = ref []
let serving_metric name v = serving := (name, v) :: !serving

(* Self-profiler measurements are wall-clock (machine-dependent), so they
   get their own ungated section: check_regression.exe acknowledges and
   skips it, the same treatment as wall_s. *)
let self_profile : (string * float) list ref = ref []
let self_profile_wall name v = self_profile := (name, v) :: !self_profile

(* Hot-path measurements are wall-clock (ns/op) and allocation (bytes/op)
   pairs for the quiet event loop — machine-dependent like self_profile,
   so they live in their own ungated section that check_regression.exe
   reports but never gates. *)
let hotpath : (string * float) list ref = ref []
let hotpath_stat name v = hotpath := (name, v) :: !hotpath

let slug s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
    s

let timed name f =
  banner name;
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  walls := (name, dt) :: !walls;
  Printf.printf "[%s: %.1fs]\n%!" name dt;
  r

let write_results ~quick path =
  let open Gem_util.Jsonx in
  let json =
    Obj
      [
        ("schema", Int 1);
        ("quick", Bool quick);
        ( "metrics",
          Obj
            (List.sort
               (fun (a, _) (b, _) -> compare a b)
               (List.rev_map (fun (k, v) -> (k, Int v)) !metrics)) );
        ( "serving",
          Obj
            (List.sort
               (fun (a, _) (b, _) -> compare a b)
               (List.rev_map (fun (k, v) -> (k, Int v)) !serving)) );
        ( "self_profile",
          Obj (List.rev_map (fun (k, v) -> (k, Float v)) !self_profile) );
        ( "hotpath",
          Obj (List.rev_map (fun (k, v) -> (k, Float v)) !hotpath) );
        ( "wall_s",
          Obj (List.rev_map (fun (k, v) -> (k, Float v)) !walls) );
      ]
  in
  let oc = open_out path in
  output_string oc (to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (%d metrics)\n" path (List.length !metrics)

let run_table1 () = timed "Table I: generator feature comparison" Gem_experiments.Table1.run

let run_fig3 () =
  ignore (timed "Fig. 3: pipelined vs combinational spatial arrays" Gem_experiments.Fig3.run)

let run_fig4 ?quick () =
  let r = timed "Fig. 4: TLB miss rate over ResNet50" (Gem_experiments.Fig4.run ?quick) in
  metric "fig4.tlb_requests" r.Gem_experiments.Fig4.total_requests

let run_fig6 () =
  ignore (timed "Fig. 6: area breakdown" Gem_experiments.Fig6.run)

let run_fig7 ?quick () =
  let r = timed "Fig. 7: speedup over CPU baselines" (Gem_experiments.Fig7.run ?quick) in
  List.iter
    (fun (row : Gem_experiments.Fig7.row) ->
      let m = slug row.Gem_experiments.Fig7.model in
      metric (Printf.sprintf "fig7.%s.baseline_rocket" m) row.Gem_experiments.Fig7.baseline_rocket;
      metric (Printf.sprintf "fig7.%s.rocket_cpu_im2col" m) row.Gem_experiments.Fig7.rocket_cpu_im2col;
      metric (Printf.sprintf "fig7.%s.boom_cpu_im2col" m) row.Gem_experiments.Fig7.boom_cpu_im2col;
      metric (Printf.sprintf "fig7.%s.rocket_accel_im2col" m) row.Gem_experiments.Fig7.rocket_accel_im2col;
      metric (Printf.sprintf "fig7.%s.boom_accel_im2col" m) row.Gem_experiments.Fig7.boom_accel_im2col)
    r.Gem_experiments.Fig7.rows

let run_fig8 ?quick () =
  let r =
    timed "Fig. 8: virtual-address translation co-design"
      (Gem_experiments.Fig8.run ?quick)
  in
  List.iter
    (fun (p : Gem_experiments.Fig8.point) ->
      metric
        (Printf.sprintf "fig8.%s.p%d.s%d"
           (if p.Gem_experiments.Fig8.filters then "filters" else "nofilters")
           p.Gem_experiments.Fig8.private_entries
           p.Gem_experiments.Fig8.shared_entries)
        p.Gem_experiments.Fig8.cycles)
    r.Gem_experiments.Fig8.points

let run_fig9 ?quick () =
  let r = timed "Fig. 9: memory partitioning" (Gem_experiments.Fig9.run ?quick) in
  List.iter
    (fun (x : Gem_experiments.Fig9.run) ->
      metric
        (Printf.sprintf "fig9.c%d.%s" x.Gem_experiments.Fig9.cores
           (Gem_experiments.Fig9.config_label x.Gem_experiments.Fig9.name))
        x.Gem_experiments.Fig9.total_cycles)
    r.Gem_experiments.Fig9.runs

let run_ablations ?quick () =
  let r = timed "Ablations (design-choice studies)" (Gem_experiments.Ablations.run ?quick) in
  List.iter
    (fun (row : Gem_experiments.Ablations.row) ->
      let a = slug row.Gem_experiments.Ablations.ablation in
      metric (Printf.sprintf "ablations.%s.baseline" a) row.Gem_experiments.Ablations.baseline;
      metric (Printf.sprintf "ablations.%s.ablated" a) row.Gem_experiments.Ablations.ablated)
    r.Gem_experiments.Ablations.rows

(* Observability overhead: a collected run must report exactly the same
   cycle count as a quiet run (events carry already-observed timestamps),
   and a quiet run must not pay for span construction (every emission site
   is guarded by Engine.live). Asserted hard here rather than contributed
   as gated metrics — the regression gate would treat any new metric name
   as a failure. *)
let run_trace_overhead () =
  timed "Trace overhead: quiet vs collected run" (fun () ->
      let model =
        Gem_dnn.Model_zoo.scale_model ~factor:8 Gem_dnn.Model_zoo.mobilenetv2
      in
      let run ~collect =
        let soc = Gem_soc.Soc.create Gem_soc.Soc_config.default in
        let collector =
          if collect then Some (Gem_sim.Export.attach (Gem_soc.Soc.engine soc))
          else None
        in
        let t0 = Unix.gettimeofday () in
        let r =
          Gem_sw.Runtime.run soc ~core:0 model
            ~mode:(Gem_sw.Runtime.Accel { im2col_on_accel = true })
        in
        let dt = Unix.gettimeofday () -. t0 in
        let spans =
          match collector with
          | Some c ->
              Gem_sim.Export.finalize c;
              Gem_sim.Span.count (Gem_sim.Export.recorder c)
          | None -> 0
        in
        (r.Gem_sw.Runtime.r_total_cycles, spans, dt)
      in
      let quiet_cycles, _, quiet_dt = run ~collect:false in
      let traced_cycles, spans, traced_dt = run ~collect:true in
      Printf.printf
        "  quiet  %s cycles in %.2fs\n  traced %s cycles in %.2fs (%s spans)\n"
        (Gem_util.Table.fmt_int quiet_cycles)
        quiet_dt
        (Gem_util.Table.fmt_int traced_cycles)
        traced_dt
        (Gem_util.Table.fmt_int spans);
      if quiet_cycles <> traced_cycles then
        failwith "trace overhead: collected run changed the cycle count";
      if spans = 0 then failwith "trace overhead: collector recorded no spans")

(* Self-profiler gate: a profiled run must report exactly the same cycle
   count as a quiet run (the profiler reads host clocks and GC counters
   only — simulated time is untouchable), and the disabled probes must
   not record anything. Cycle equality is asserted hard; the wall-time
   attribution lands in the ungated self_profile section. *)
let run_selfprofile_bench () =
  timed "Self-profile: probed vs quiet run (mobilenetv2)" (fun () ->
      let module P = Gem_obs.Profile in
      let model =
        Gem_dnn.Model_zoo.scale_model ~factor:8 Gem_dnn.Model_zoo.mobilenetv2
      in
      let run () =
        let soc = Gem_soc.Soc.create Gem_soc.Soc_config.default in
        let t0 = Unix.gettimeofday () in
        let r =
          Gem_sw.Runtime.run soc ~core:0 model
            ~mode:(Gem_sw.Runtime.Accel { im2col_on_accel = true })
        in
        (r.Gem_sw.Runtime.r_total_cycles, Unix.gettimeofday () -. t0)
      in
      P.reset ();
      let quiet_cycles, quiet_dt = run () in
      if P.phases () <> [] then
        failwith "self-profile: disabled probes recorded phases";
      P.enable ();
      let profiled_cycles, profiled_dt =
        Fun.protect ~finally:P.disable run
      in
      let phases = P.phases () in
      let coverage = P.coverage_pct ~total_s:profiled_dt phases in
      Printf.printf
        "  quiet    %s cycles in %.2fs\n\
        \  profiled %s cycles in %.2fs (%d phase(s), %.1f%% attributed)\n"
        (Gem_util.Table.fmt_int quiet_cycles)
        quiet_dt
        (Gem_util.Table.fmt_int profiled_cycles)
        profiled_dt (List.length phases) coverage;
      if quiet_cycles <> profiled_cycles then
        failwith "self-profile: probed run changed the cycle count";
      if phases = [] then
        failwith "self-profile: enabled probes recorded nothing";
      let orphans, forced = P.anomalies () in
      if orphans > 0 || forced > 0 then
        failwith
          (Printf.sprintf "self-profile: %d orphan / %d forced leave(s)"
             orphans forced);
      self_profile_wall "selfprofile.quiet_s" quiet_dt;
      self_profile_wall "selfprofile.profiled_s" profiled_dt;
      self_profile_wall "selfprofile.coverage_pct" coverage;
      List.iter
        (fun (ph : P.phase) ->
          self_profile_wall
            (Printf.sprintf "selfprofile.%s.self_s" (slug ph.P.ph_name))
            ph.P.ph_self_s)
        phases)

(* Analytic-backend throughput: estimate every zoo network (full scale)
   repeatedly and report design points per second — the number that makes
   10k-point sweeps tractable. Wall-clock only (wall_s entries): the
   figures are machine-dependent, so they stay out of the gated metrics. *)
let run_analytic_bench () =
  timed "Analytic backend: full-zoo estimation throughput" (fun () ->
      let jobs =
        List.map
          (fun m -> (m, Gem_sw.Runtime.Accel { im2col_on_accel = true }))
          Gem_dnn.Model_zoo.all
      in
      let rounds = 20 in
      let checksum = ref 0 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to rounds do
        List.iter
          (fun job ->
            let rq =
              Gem_sw.Backend.request ~config:Gem_soc.Soc_config.default
                [| job |]
            in
            let r = Gem_sw.Backend_analytic.run rq in
            checksum := !checksum + r.(0).Gem_sw.Runtime.r_total_cycles)
          jobs
      done;
      let dt = Unix.gettimeofday () -. t0 in
      let points = rounds * List.length jobs in
      let pps = float_of_int points /. dt in
      walls := ("analytic.points_per_s", pps) :: !walls;
      Printf.printf
        "  %d full-scale network estimates in %.3fs (%.0f points/s, checksum %d)\n"
        points dt pps !checksum)

(* Checkpoint cost: serialize/deserialize wall time and snapshot size for
   MobileNetV2. Wall-clock only (wall_s entries): machine-dependent, so
   deliberately outside the gated metrics; the snapshot byte count rides
   along in wall_s for the same reason. *)
let run_persist_bench () =
  timed "Persist: checkpoint serialize/deserialize (mobilenetv2)" (fun () ->
      let model =
        Gem_dnn.Model_zoo.scale_model ~factor:8 Gem_dnn.Model_zoo.mobilenetv2
      in
      let mode = Gem_sw.Runtime.Accel { im2col_on_accel = true } in
      let soc = Gem_soc.Soc.create Gem_soc.Soc_config.default in
      let r = Gem_sw.Runtime.run soc ~core:0 model ~mode in
      let ck =
        {
          Gem_persist.Persist.ck_model = model.Gem_dnn.Layer.model_name;
          ck_mode = Gem_sw.Runtime.mode_desc mode;
          ck_core = 0;
          ck_next_layer = List.length model.Gem_dnn.Layer.layers;
          ck_last_finish = r.Gem_sw.Runtime.r_total_cycles;
          ck_records = r.Gem_sw.Runtime.r_layers;
          ck_soc = Gem_soc.Soc.snapshot soc;
        }
      in
      let path = Filename.temp_file "gem_bench_persist" ".ckpt" in
      let rounds = 10 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to rounds do
        Gem_persist.Persist.save_checkpoint ~path ck
      done;
      let ser = (Unix.gettimeofday () -. t0) /. float_of_int rounds in
      let bytes = (Unix.stat path).Unix.st_size in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to rounds do
        match Gem_persist.Persist.load_checkpoint ~path with
        | Ok _ -> ()
        | Error msg -> failwith ("persist bench: reload failed: " ^ msg)
      done;
      let de = (Unix.gettimeofday () -. t0) /. float_of_int rounds in
      Sys.remove path;
      walls := ("persist.serialize_s", ser) :: !walls;
      walls := ("persist.deserialize_s", de) :: !walls;
      walls := ("persist.snapshot_bytes", float_of_int bytes) :: !walls;
      Printf.printf
        "  snapshot %s bytes; serialize %.1f ms, deserialize %.1f ms (avg of %d)\n"
        (Gem_util.Table.fmt_int bytes) (ser *. 1e3) (de *. 1e3) rounds)

(* Serving: open-loop Poisson traffic sharded over 2 Gemmini cores, on both
   the cycle-accurate SoC and the analytic estimator. Every contributed
   number is a deterministic function of the seed, so the regression gate
   holds them to exact equality (the CI serving gate in ci.yml additionally
   re-runs the CLI twice and compares bytes). *)
let run_serving_bench () =
  timed "Serving: 2-core open-loop latency/throughput" (fun () ->
      let scenario backend =
        {
          Gem_serve.Serve.default with
          Gem_serve.Serve.sv_model = "mobilenetv2";
          sv_scale = 32;
          sv_backend = backend;
          sv_arrival = Gem_serve.Arrival.Poisson { rate_rps = 4000. };
          sv_batch = Gem_serve.Batch.Fixed 2;
          sv_duration_ms = 1.5;
          sv_slos_ms = [ 2.0 ];
          sv_seed = 42;
        }
      in
      List.iter
        (fun (tag, backend) ->
          let r = Gem_serve.Serve.run (scenario backend) in
          let rp = r.Gem_serve.Serve.sr_report in
          let lat = rp.Gem_serve.Slo.rp_latency in
          serving_metric (tag ^ ".offered") rp.Gem_serve.Slo.rp_offered;
          serving_metric (tag ^ ".completed") rp.Gem_serve.Slo.rp_completed;
          serving_metric (tag ^ ".horizon_cycles") rp.Gem_serve.Slo.rp_horizon;
          serving_metric (tag ^ ".p50_cycles")
            (int_of_float lat.Gem_util.Stats.Histogram.p50);
          serving_metric (tag ^ ".p95_cycles")
            (int_of_float lat.Gem_util.Stats.Histogram.p95);
          serving_metric (tag ^ ".max_cycles")
            (int_of_float lat.Gem_util.Stats.Histogram.max);
          serving_metric (tag ^ ".batches")
            (List.length r.Gem_serve.Serve.sr_dispatches);
          List.iter
            (fun (core, n) ->
              serving_metric (Printf.sprintf "%s.core%d" tag core) n)
            rp.Gem_serve.Slo.rp_per_core;
          Printf.printf "  %-8s %d/%d requests, horizon %s cycles, p95 %.3f ms\n"
            tag rp.Gem_serve.Slo.rp_completed rp.Gem_serve.Slo.rp_offered
            (Gem_util.Table.fmt_int rp.Gem_serve.Slo.rp_horizon)
            (Gem_serve.Slo.ms_of_cycles
               (int_of_float lat.Gem_util.Stats.Histogram.p95)))
        [ ("cycle", Gem_sw.Backend.Cycle); ("analytic", Gem_sw.Backend.Analytic) ])

(* Hot-path bench: wall time AND allocation per operation for the three
   flattened quiet paths (engine acquire, timing-only DMA transfer, the
   multi-core dispatch loop), plus hard equality gates for the parallel
   driver — a probed or multi-Domain run must report exactly the cycle
   counts of the quiet sequential reference. The ns/op / bytes/op pairs
   land in the ungated hotpath section of BENCH_results.json. *)
let run_hotpath_bench () =
  timed "Hot path: ns/op and bytes/op (quiet event loop)" (fun () ->
      let measure name iters f =
        Gc.minor ();
        let a = Gc.allocated_bytes () in
        let t0 = Unix.gettimeofday () in
        f iters;
        let dt = Unix.gettimeofday () -. t0 in
        let alloc = Gc.allocated_bytes () -. a in
        let ns = dt *. 1e9 /. float_of_int iters in
        let bytes = alloc /. float_of_int iters in
        hotpath_stat (name ^ ".ns_per_op") ns;
        hotpath_stat (name ^ ".bytes_per_op") bytes;
        Printf.printf "  %-24s %10.1f ns/op %8.1f B/op\n" name ns bytes
      in
      (let open Gem_sim in
       let e = Engine.create () in
       let bus = Engine.resource e ~kind:Engine.Bus ~name:"bus" in
       measure "engine_acquire" 1_000_000 (fun n ->
           for i = 1 to n do
             ignore (Engine.acquire e bus ~now:i ~occupancy:1)
           done));
      (let pt = Gem_vm.Page_table.create ~node_region_base:0x1000_0000 () in
       Gem_vm.Page_table.map_range pt ~vaddr:0 ~bytes:(1 lsl 22)
         ~paddr:0x40_0000;
       let ptw =
         Gem_vm.Ptw.create ~page_table:pt
           ~mem_read:(fun ~now ~paddr:_ ~bytes:_ -> now + 20)
           ()
       in
       let tlb =
         Gem_vm.Hierarchy.create Gem_vm.Hierarchy.default_config ~ptw
       in
       let dma =
         Gemmini.Dma.create Gemmini.Params.default ~port:Gemmini.Dma.null_port
           ~tlb
       in
       measure "dma_mvin_16rows" 50_000 (fun n ->
           for i = 1 to n do
             ignore
               (Gemmini.Dma.mvin dma ~now:(i * 1000) ~vaddr:0 ~stride_bytes:64
                  ~rows:16 ~row_bytes:64)
           done));
      (let ops k =
         Seq.init k (fun i ->
             if i mod 4 = 3 then Gem_soc.Soc.Marker (fun _ -> ())
             else Gem_soc.Soc.Host_work { cycles = 3; tag = "w" })
       in
       measure "soc_dispatch" 50_000 (fun n ->
           let soc = Gem_soc.Soc.create Gem_soc.Soc_config.dual_core in
           ignore (Gem_soc.Soc.run_parallel soc [| ops (n / 2); ops (n / 2) |])));
      (* Equality gates for the Domain-parallel driver. *)
      let model =
        Gem_dnn.Model_zoo.scale_model ~factor:16 Gem_dnn.Model_zoo.squeezenet
      in
      let jobs =
        [|
          (model, Gem_sw.Runtime.Accel { im2col_on_accel = true });
          (model, Gem_sw.Runtime.Accel { im2col_on_accel = false });
        |]
      in
      let cycles ?(domains = 1) ?(probed = false) () =
        let module P = Gem_obs.Profile in
        let soc = Gem_soc.Soc.create Gem_soc.Soc_config.dual_core in
        if probed then P.enable ();
        let rs =
          Fun.protect
            ~finally:(fun () -> if probed then P.disable ())
            (fun () -> Gem_sw.Runtime.run_parallel ~domains soc jobs)
        in
        Array.map (fun r -> r.Gem_sw.Runtime.r_total_cycles) rs
      in
      let reference = cycles () in
      if cycles ~domains:4 () <> reference then
        failwith "hotpath: domains=4 changed the parallel cycle counts";
      if cycles ~domains:4 ~probed:true () <> reference then
        failwith "hotpath: probed parallel run changed the cycle counts";
      Printf.printf
        "  parallel gates: domains=4 and probed runs match (%s / %s cycles)\n"
        (Gem_util.Table.fmt_int reference.(0))
        (Gem_util.Table.fmt_int reference.(1)))

(* --- bechamel microbenchmarks of simulator hot paths ----------------------- *)

let micro () =
  banner "Microbenchmarks (bechamel)";
  let open Bechamel in
  let mesh_matmul =
    Test.make ~name:"mesh 16x16 WS matmul (cycle-accurate)"
      (Staged.stage (fun () ->
           let mesh = Gemmini.Mesh.create Gemmini.Params.default in
           let rng = Gem_util.Rng.create ~seed:1 in
           let a = Gem_util.Matrix.random rng ~rows:16 ~cols:16 ~lo:(-128) ~hi:127 in
           let b = Gem_util.Matrix.random rng ~rows:16 ~cols:16 ~lo:(-128) ~hi:127 in
           ignore (Gemmini.Mesh.run_matmul mesh ~dataflow:`WS ~a ~b ())))
  in
  let tlb_translate =
    Test.make ~name:"tlb hierarchy translate (hit path)"
      (Staged.stage
         (let pt = Gem_vm.Page_table.create ~node_region_base:0x1000_0000 () in
          Gem_vm.Page_table.map_range pt ~vaddr:0x10000 ~bytes:(1 lsl 20)
            ~paddr:0x2000_0000;
          let ptw =
            Gem_vm.Ptw.create ~page_table:pt
              ~mem_read:(fun ~now ~paddr:_ ~bytes:_ -> now + 20)
              ()
          in
          let h = Gem_vm.Hierarchy.create Gem_vm.Hierarchy.default_config ~ptw in
          let i = ref 0 in
          fun () ->
            incr i;
            ignore
              (Gem_vm.Hierarchy.translate h ~now:!i
                 ~vaddr:(0x10000 + (!i mod 4096))
                 ~write:false)))
  in
  let cache_access =
    Test.make ~name:"L2 cache access"
      (Staged.stage
         (let c = Gem_mem.Cache.create ~size_bytes:(1 lsl 20) ~ways:16 ~line_bytes:64 () in
          let i = ref 0 in
          fun () ->
            i := !i + 64;
            ignore (Gem_mem.Cache.access c ~addr:(!i land 0x3F_FFFF) ~write:false)))
  in
  let kernel_emit =
    Test.make ~name:"matmul kernel emission (128x128x128)"
      (Staged.stage (fun () ->
           ignore
             (Gem_sw.Kernels.matmul_ops Gemmini.Params.default ~a:0x10000
                ~b:0x20000 ~out:0x30000 ~m:128 ~k:128 ~n:128 ())))
  in
  let engine_acquire =
    (* The engine hot path every timed request goes through: resource
       arbitration + clock high-water + the observing guard (quiet, the
       common case). *)
    Test.make ~name:"engine acquire (quiet hot path)"
      (Staged.stage
         (let open Gem_sim in
          let e = Engine.create () in
          let bus = Engine.resource e ~kind:Engine.Bus ~name:"bus" in
          let i = ref 0 in
          fun () ->
            incr i;
            ignore (Engine.acquire e bus ~now:!i ~occupancy:1)))
  in
  let engine_acquire_traced =
    Test.make ~name:"engine acquire (tracing ring)"
      (Staged.stage
         (let open Gem_sim in
          let e = Engine.create ~trace_capacity:1024 ~trace:true () in
          let bus = Engine.resource e ~kind:Engine.Bus ~name:"bus" in
          let i = ref 0 in
          fun () ->
            incr i;
            ignore (Engine.acquire e bus ~now:!i ~occupancy:1)))
  in
  let tests =
    [
      mesh_matmul;
      tlb_translate;
      cache_access;
      kernel_emit;
      engine_acquire;
      engine_acquire_traced;
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    Benchmark.all
      (Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ())
      [ instance ] test
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      let a = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name o ->
          match Analyze.OLS.estimates o with
          | Some (est :: _) -> Printf.printf "  %-44s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-44s (no estimate)\n" name)
        a)
    tests

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let has name = List.mem name args in
  let all =
    (not quick && args = [])
    || (quick && List.length args = 1)
    || has "all"
  in
  if all || has "table1" then run_table1 ();
  if all || has "fig3" then run_fig3 ();
  if all || has "fig6" then run_fig6 ();
  if all || has "fig4" then run_fig4 ~quick ();
  if all || has "fig7" then run_fig7 ~quick ();
  if all || has "fig8" then run_fig8 ~quick ();
  if all || has "fig9" then run_fig9 ~quick ();
  if all || has "ablations" then run_ablations ~quick ();
  if all || has "trace" then run_trace_overhead ();
  if all || has "selfprofile" then run_selfprofile_bench ();
  if all || has "analytic" then run_analytic_bench ();
  if all || has "persist" then run_persist_bench ();
  if all || has "serving" then run_serving_bench ();
  if all || has "hotpath" then run_hotpath_bench ();
  if all || has "micro" then micro ();
  write_results ~quick "BENCH_results.json";
  Printf.printf "\nDone.\n"
