let () =
  let open Gemmini in
  let tpu = Params.tpu_like ~pes:256 in
  let nvdla = Params.nvdla_like ~pes:256 in
  print_endline (Synthesis.compare_design_points tpu nvdla);
  let r = Synthesis.estimate Params.default in
  List.iter (fun c -> Printf.printf "%-28s %10.0f um2  %5.1f%%\n" c.Synthesis.comp_name c.Synthesis.area_um2 (100. *. c.Synthesis.share)) r.Synthesis.components;
  Printf.printf "total %.0f um2\n" r.Synthesis.total_area_um2

let () = print_string (Gem_util.Table.render (Gem_dnn.Model_zoo.summary_table ()))
