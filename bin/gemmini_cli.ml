(* The command-line face of the generator:

     gemmini_cli describe   [--preset NAME | sizing flags]
     gemmini_cli header     [...]          -- emit gemmini_params.h
     gemmini_cli synth      [...]          -- area/fmax/power estimate
     gemmini_cli run        --model NAME   -- simulate an inference
     gemmini_cli profile    --model NAME   -- profile the simulator itself
     gemmini_cli sweep      --model NAME   -- sweep array sizes
     gemmini_cli experiment --id fig7      -- reproduce a paper figure *)

open Cmdliner
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime
module Profile = Gem_obs.Profile
module Metrics = Gem_obs.Metrics

(* --- observability flags ------------------------------------------------------ *)

(* Self-profile and metrics output are deliberately stderr/file-only in
   run/serve/sweep: stdout carries byte-gated simulation results, and
   wall-clock numbers must never leak into them. *)

let self_profile_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "self-profile" ] ~docv:"FILE"
        ~doc:
          "Profile the simulator itself: attribute host wall time and \
           allocation to engine/runtime phases, write the ranked JSON \
           report to $(docv) and print the table to stderr. Simulated \
           cycle counts are unaffected (gated in bench).")

let metrics_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Snapshot the unified metrics registry (engine counters, \
           runtime results, serving SLO/occupancy series, DSE tallies) \
           to $(docv) after the run: CSV when $(docv) ends in .csv, \
           pretty JSON otherwise.")

(* Runs [f] under the self-profiler when a report file is requested. The
   report is written from a [finally] so a trapped run still shows where
   its host time went. *)
let with_self_profile self_profile f =
  match self_profile with
  | None -> f ()
  | Some file ->
      Profile.reset ();
      Profile.enable ();
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          Profile.disable ();
          let total_s = Unix.gettimeofday () -. t0 in
          Profile.write_file ~total_s file;
          prerr_string (Profile.render ~total_s ());
          Printf.eprintf "[profile] wrote %s\n%!" file)
        f

let write_metrics reg = function
  | None -> ()
  | Some file ->
      Metrics.write_file reg file;
      Printf.eprintf "[metrics] wrote %s (%d source(s))\n%!" file
        (Metrics.size reg)

(* --- shared parameter flags -------------------------------------------------- *)

let preset =
  let parse s =
    match String.lowercase_ascii s with
    | "default" -> Ok Gemmini.Params.default
    | "edge" -> Ok Gemmini.Params.edge
    | "cloud" -> Ok Gemmini.Params.cloud
    | "tpu256" -> Ok (Gemmini.Params.tpu_like ~pes:256)
    | "nvdla256" -> Ok (Gemmini.Params.nvdla_like ~pes:256)
    | other -> Error (`Msg (Printf.sprintf "unknown preset %S" other))
  in
  let print fmt p = Format.fprintf fmt "%s" (Gemmini.Params.describe p) in
  Arg.conv (parse, print)

let params_term =
  let open Term in
  let preset_arg =
    Arg.(value & opt preset Gemmini.Params.default
         & info [ "preset" ] ~doc:"Instance preset: default, edge, cloud, tpu256, nvdla256.")
  in
  let dim = Arg.(value & opt (some int) None & info [ "dim" ] ~doc:"Square array dimension (PE rows).") in
  let sp = Arg.(value & opt (some int) None & info [ "sp-kb" ] ~doc:"Scratchpad capacity in KiB.") in
  let acc = Arg.(value & opt (some int) None & info [ "acc-kb" ] ~doc:"Accumulator capacity in KiB.") in
  let im2col = Arg.(value & opt (some bool) None & info [ "im2col" ] ~doc:"Include the im2col block.") in
  let build p dim sp acc im2col =
    let p = match dim with Some d -> { p with Gemmini.Params.mesh_rows = d; mesh_cols = d; tile_rows = 1; tile_cols = 1 } | None -> p in
    let p = match sp with Some kb -> { p with Gemmini.Params.sp_capacity_bytes = kb * 1024 } | None -> p in
    let p = match acc with Some kb -> { p with Gemmini.Params.acc_capacity_bytes = kb * 1024 } | None -> p in
    let p = match im2col with Some b -> { p with Gemmini.Params.has_im2col = b } | None -> p in
    match Gemmini.Params.validate p with
    | Ok () -> `Ok p
    | Error errs -> `Error (false, String.concat "; " errs)
  in
  ret (const build $ preset_arg $ dim $ sp $ acc $ im2col)

let model_term =
  let parse s =
    match Gem_dnn.Model_zoo.find s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown model %S (available: %s)" s
               (String.concat ", " Gem_dnn.Model_zoo.names)))
  in
  let print fmt m = Format.fprintf fmt "%s" m.Gem_dnn.Layer.model_name in
  Arg.(
    value
    & opt (conv (parse, print)) Gem_dnn.Model_zoo.resnet50
    & info [ "model" ] ~doc:"DNN to run (resnet50, alexnet, squeezenet1.1, mobilenetv2, bert-base-seq128).")

let scale_term =
  Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Channel-scale divisor for faster runs.")

(* --- subcommands --------------------------------------------------------------- *)

let describe_cmd =
  let run p =
    print_endline (Gemmini.Params.describe p);
    print_endline (Gem_util.Table.render (Gem_dnn.Model_zoo.summary_table ()))
  in
  Cmd.v (Cmd.info "describe" ~doc:"Describe an accelerator instance and the model zoo.")
    Term.(const run $ params_term)

let header_cmd =
  let run p = print_string (Gemmini.Header_gen.generate p) in
  Cmd.v (Cmd.info "header" ~doc:"Emit the generated C header for an instance.")
    Term.(const run $ params_term)

let synth_cmd =
  let run p =
    let r = Gemmini.Synthesis.estimate p in
    print_string (Gemmini.Floorplan.render r)
  in
  Cmd.v (Cmd.info "synth" ~doc:"Analytical synthesis: area, fmax, power, floorplan.")
    Term.(const run $ params_term)

let backend_conv =
  let parse s =
    match Gem_sw.Backend.kind_of_string s with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown backend %S (available: %s)" s
               (String.concat ", " Gem_sw.Backends.names)))
  in
  let print fmt k = Format.fprintf fmt "%s" (Gem_sw.Backend.kind_name k) in
  Arg.conv (parse, print)

let backend_term =
  Arg.(
    value
    & opt backend_conv Gem_sw.Backend.Cycle
    & info [ "backend" ]
        ~doc:
          "Execution backend: cycle (event-driven cycle-accurate \
           simulation, the default) or analytic (closed-form latency \
           estimator, orders of magnitude faster, cross-validated in CI).")

let policy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "abort" -> Ok Runtime.Abort
    | "retry" | "retry-map" -> Ok Runtime.Retry_map
    | "degrade" -> Ok Runtime.Degrade
    | "resume" | "resume-checkpoint" -> Ok Runtime.Resume_checkpoint
    | other -> Error (`Msg (Printf.sprintf "unknown fault policy %S" other))
  in
  let print fmt p = Format.fprintf fmt "%s" (Runtime.policy_desc p) in
  Arg.conv (parse, print)

let run_cmd =
  let run p backend model scale im2col_on_accel profile inject_seed inject_rate
      policy watchdog cores domains trace_out trace_format checkpoint_every
      checkpoint_out restore max_replays self_profile metrics_out =
    let model = Gem_dnn.Model_zoo.scale_model ~factor:scale model in
    let core_cfg = { Soc_config.default_core with accel = p } in
    let config =
      { Soc_config.default with cores = List.init cores (fun _ -> core_cfg) }
    in
    let mode = Runtime.Accel { im2col_on_accel } in
    let print_header () =
      Printf.printf "%s on %s%s%s\n" model.Gem_dnn.Layer.model_name
        (Gemmini.Params.describe p)
        (if cores > 1 then Printf.sprintf " x %d cores" cores else "")
        (match backend with
        | Gem_sw.Backend.Cycle -> ""
        | k -> Printf.sprintf " [%s backend]" (Gem_sw.Backend.kind_name k))
    in
    let print_results results =
      let horizon = ref 0 in
      Array.iter
        (fun r ->
          horizon := max !horizon r.Runtime.r_total_cycles;
          (* Dual-core runs label every row with its core so the outputs
             line up with the core-prefixed component names below. *)
          let tag =
            if cores > 1 then Printf.sprintf "core%d: " r.Runtime.r_core else ""
          in
          Printf.printf "%stotal %s cycles = %.2f FPS at 1 GHz\n" tag
            (Gem_util.Table.fmt_int r.Runtime.r_total_cycles)
            (Gem_sim.Time.fps ~freq_ghz:1.0
               ~cycles_per_item:r.Runtime.r_total_cycles);
          List.iter
            (fun (k, c) ->
              Printf.printf "  %s%-12s %s cycles\n" tag
                (Gem_dnn.Layer.class_name k)
                (Gem_util.Table.fmt_int c))
            (Runtime.cycles_by_class r);
          if r.Runtime.r_faults <> [] then begin
            Printf.printf "%sfaults handled (%s policy): %d\n" tag
              (Runtime.policy_desc policy)
              (List.length r.Runtime.r_faults);
            List.iter
              (fun fr ->
                Printf.printf "  %s%-8s %-24s %s\n" tag fr.Runtime.fr_action
                  fr.Runtime.fr_layer
                  (Gem_sim.Fault.to_string fr.Runtime.fr_fault))
              r.Runtime.r_faults
          end)
        results;
      !horizon
    in
    let persisting =
      checkpoint_every <> None || checkpoint_out <> None || restore <> None
      || policy = Runtime.Resume_checkpoint
    in
    let reg = Metrics.create () in
    with_self_profile self_profile @@ fun () ->
    match backend with
    | Gem_sw.Backend.Analytic ->
        if inject_seed <> None || trace_out <> None || profile then
          prerr_endline
            "[run] note: --inject-seed/--trace-out/--profile are \
             cycle-engine features; the analytic backend ignores them";
        if persisting then begin
          prerr_endline
            "[run] checkpoint/restore needs the cycle backend (the \
             analytic estimator has no simulation state to snapshot)";
          exit 2
        end;
        let rq =
          Gem_sw.Backend.request ~policy ?watchdog ~config
            (Array.init cores (fun _ -> (model, mode)))
        in
        let results = Gem_sw.Backend_analytic.run rq in
        print_header ();
        ignore (print_results results);
        Array.iter (Runtime.register_metrics reg) results;
        write_metrics reg metrics_out
    | Gem_sw.Backend.Cycle when persisting ->
        if cores > 1 then begin
          prerr_endline "[run] checkpoint/restore is single-core for now";
          exit 2
        end;
        if trace_out <> None || profile then
          prerr_endline
            "[run] note: --trace-out/--profile attach before the run; the \
             checkpointing driver builds its own SoC, so they are ignored \
             here";
        let restore_ck =
          match restore with
          | None -> None
          | Some path -> (
              match Gem_persist.Persist.load_checkpoint ~path with
              | Ok ck -> Some ck
              | Error msg ->
                  Printf.eprintf "[persist] cannot restore: %s\n%!" msg;
                  exit 2)
        in
        let outcome =
          Gem_persist.Persist.run ~policy ?watchdog
            ?inject:(Option.map (fun s -> (s, inject_rate)) inject_seed)
            ?checkpoint_every ?checkpoint_out ?restore:restore_ck
            ~max_replays ~config ~core:0 model ~mode
        in
        print_header ();
        ignore (print_results [| outcome.Gem_persist.Persist.o_result |]);
        Option.iter
          (Printf.eprintf "[persist] resumed at layer %d\n%!")
          outcome.Gem_persist.Persist.o_resumed_at;
        if outcome.Gem_persist.Persist.o_checkpoints > 0 then
          Printf.eprintf "[persist] %d checkpoint(s)%s\n%!"
            outcome.Gem_persist.Persist.o_checkpoints
            (match checkpoint_out with
            | Some f -> Printf.sprintf " -> %s" f
            | None -> " (in-memory)");
        if outcome.Gem_persist.Persist.o_replays > 0 then
          Printf.eprintf "[persist] recovered via %d replay(s)\n%!"
            outcome.Gem_persist.Persist.o_replays;
        Runtime.register_metrics reg outcome.Gem_persist.Persist.o_result;
        write_metrics reg metrics_out
    | Gem_sw.Backend.Cycle ->
    let soc = Soc.create config in
    (match inject_seed with
    | Some seed -> Soc.arm_injection soc ~seed ~rate:inject_rate
    | None -> ());
    (* The trace collector doubles as the profile's latency source; it
       never perturbs simulated timing. *)
    let collector =
      if trace_out <> None || profile then
        Some (Gem_sim.Export.attach (Soc.engine soc))
      else None
    in
    let rq =
      Gem_sw.Backend.request ~policy ?watchdog ~domains ~config
        (Array.init cores (fun _ -> (model, mode)))
    in
    let results = Gem_sw.Backend_cycle.run_on soc rq in
    print_header ();
    let horizon = ref (print_results results) in
    Gem_sim.Engine.register_metrics (Soc.engine soc) reg;
    Array.iter (Runtime.register_metrics reg) results;
    write_metrics reg metrics_out;
    match collector with
    | None -> ()
    | Some c ->
        Gem_sim.Export.finalize c;
        (match trace_out with
        | Some file ->
            (match trace_format with
            | `Chrome -> Gem_sim.Export.write_chrome_file c file
            | `Report ->
                let oc = open_out file in
                Fun.protect
                  ~finally:(fun () -> close_out oc)
                  (fun () -> output_string oc (Gem_sim.Export.report c)));
            Printf.eprintf "[trace] wrote %s (%s)\n%!" file
              (match trace_format with
              | `Chrome -> "chrome"
              | `Report -> "report")
        | None -> ());
        if profile then begin
          print_newline ();
          Gem_util.Table.print
            (Gem_sim.Engine.utilization_table (Soc.engine soc)
               ~horizon:!horizon ());
          print_newline ();
          print_string (Gem_sim.Export.report c)
        end
  in
  let im2col =
    Arg.(value & opt bool true & info [ "accel-im2col" ] ~doc:"Use the hardware im2col block.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print the simulation engine's per-component utilization/wait \
             table after the run.")
  in
  let inject_seed =
    Arg.(
      value & opt (some int) None
      & info [ "inject-seed" ]
          ~doc:
            "Arm deterministic fault injection with this seed (same seed, \
             same fault trace).")
  in
  let inject_rate =
    Arg.(
      value & opt float 0.01
      & info [ "inject-rate" ]
          ~doc:"Per-event fault probability when injection is armed.")
  in
  let policy =
    Arg.(
      value & opt policy_conv Runtime.Abort
      & info [ "fault-policy" ] ~doc:"Trap recovery: abort, retry or degrade.")
  in
  let watchdog =
    Arg.(
      value & opt (some int) None
      & info [ "watchdog" ] ~doc:"Max cycles any single layer may spend.")
  in
  let cores =
    Arg.(
      value & opt int 1
      & info [ "cores" ]
          ~doc:
            "Accelerator cores; with more than one, every core runs the \
             model in parallel and outputs are labeled per core.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:
            "Host OCaml Domains driving a multi-core simulation (cycle \
             backend). Cycle counts are byte-identical at any value; \
             more than one only changes wall-clock time.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write an execution trace of the run to $(docv).")
  in
  let trace_format =
    let fmt = Arg.enum [ ("chrome", `Chrome); ("report", `Report) ] in
    Arg.(
      value & opt fmt `Chrome
      & info [ "trace-format" ]
          ~doc:
            "Trace format: chrome (Perfetto-loadable Trace Event JSON, the \
             default) or report (plain-text hierarchical profile).")
  in
  let checkpoint_every =
    Arg.(
      value & opt (some int) None
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Snapshot the full simulation state after every $(docv)-th \
             layer (cycle backend, single core).")
  in
  let checkpoint_out =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint-out" ] ~docv:"FILE"
          ~doc:
            "Persist each snapshot to $(docv) (atomic write; the file \
             always holds the latest complete checkpoint).")
  in
  let restore =
    Arg.(
      value & opt (some string) None
      & info [ "restore" ] ~docv:"FILE"
          ~doc:
            "Resume from a checkpoint written by --checkpoint-out. The \
             resumed run's remaining cycles, profile and trace are \
             byte-identical to the uninterrupted run's.")
  in
  let max_replays =
    Arg.(
      value & opt int 3
      & info [ "max-replays" ]
          ~doc:
            "With --fault-policy resume-checkpoint: recovery replays \
             allowed before the trap propagates.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Simulate a DNN inference on an SoC.")
    Term.(
      const run $ params_term $ backend_term $ model_term $ scale_term
      $ im2col $ profile $ inject_seed $ inject_rate $ policy $ watchdog
      $ cores $ domains $ trace_out $ trace_format $ checkpoint_every
      $ checkpoint_out $ restore $ max_replays $ self_profile_term
      $ metrics_out_term)

(* --- profile: where does the simulator's own time go? ------------------------ *)

let profile_cmd =
  let run p backend model scale cores out =
    let model = Gem_dnn.Model_zoo.scale_model ~factor:scale model in
    let core_cfg = { Soc_config.default_core with accel = p } in
    let config =
      { Soc_config.default with cores = List.init cores (fun _ -> core_cfg) }
    in
    let mode = Runtime.Accel { im2col_on_accel = true } in
    let rq =
      Gem_sw.Backend.request ~config
        (Array.init cores (fun _ -> (model, mode)))
    in
    Profile.reset ();
    Profile.enable ();
    let t0 = Unix.gettimeofday () in
    let results =
      Fun.protect
        ~finally:(fun () -> Profile.disable ())
        (fun () ->
          match backend with
          | Gem_sw.Backend.Analytic -> Gem_sw.Backend_analytic.run rq
          | Gem_sw.Backend.Cycle ->
              Gem_sw.Backend_cycle.run_on (Soc.create config) rq)
    in
    let total_s = Unix.gettimeofday () -. t0 in
    let horizon =
      Array.fold_left (fun acc r -> max acc r.Runtime.r_total_cycles) 0 results
    in
    Printf.printf "%s on %s [%s backend]: %s cycles simulated\n\n"
      model.Gem_dnn.Layer.model_name
      (Gemmini.Params.describe p)
      (Gem_sw.Backend.kind_name backend)
      (Gem_util.Table.fmt_int horizon);
    print_string (Profile.render ~total_s ());
    match out with
    | None -> ()
    | Some file ->
        Profile.write_file ~total_s file;
        Printf.eprintf "[profile] wrote %s\n%!" file
  in
  let cores =
    Arg.(
      value & opt int 1
      & info [ "cores" ] ~doc:"Accelerator cores running the model in parallel.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Also write the ranked phase report as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Self-profile the simulator: run one inference with the host-side \
          profiler enabled and print the ranked phase table (wall seconds \
          and allocation per engine phase; simulated cycles unaffected).")
    Term.(
      const run $ params_term $ backend_term $ model_term $ scale_term
      $ cores $ out)

let sweep_cmd =
  let run model scale backend jobs cache_dir no_cache out journal resume
      retries backoff_ms deadline self_profile metrics_out =
    let name = model.Gem_dnn.Layer.model_name in
    let base = Gem_dse.Point.make ~model:name ~scale ~backend () in
    let dim_axis =
      Gem_dse.Sweep.ints "dim"
        (fun dim p ->
          Gem_dse.Point.with_accel
            { Gemmini.Params.default with mesh_rows = dim; mesh_cols = dim }
            p)
        [ 4; 8; 16; 32 ]
    in
    let points = Gem_dse.Sweep.cartesian ~base [ dim_axis ] in
    let cache =
      if no_cache then None else Some (Gem_dse.Cache.create ~dir:cache_dir ())
    in
    if resume && journal = None then begin
      prerr_endline "[dse] --resume needs --journal FILE";
      exit 2
    end;
    let rr =
      with_self_profile self_profile (fun () ->
          Gem_dse.Exec.run ~jobs ~cache ~retries ~backoff_ms ?deadline
            ?journal ~resume points)
    in
    (match metrics_out with
    | None -> ()
    | Some _ ->
        let reg = Metrics.create () in
        Gem_dse.Exec.register_metrics reg rr;
        write_metrics reg metrics_out);
    Printf.eprintf "[dse] %d point(s): %d simulated, %d cached (jobs %d)\n%!"
      (Array.length points) rr.Gem_dse.Exec.simulated rr.Gem_dse.Exec.cached
      jobs;
    (* Provenance goes to stderr, never into report rows: a resumed
       sweep's stdout stays byte-identical to an uninterrupted run's. *)
    if rr.Gem_dse.Exec.salvaged > 0 then
      Printf.eprintf "[dse] resume: %d outcome(s) salvaged from %s\n%!"
        rr.Gem_dse.Exec.salvaged
        (Option.value ~default:"journal" journal);
    List.iter
      (fun (f : Gem_dse.Exec.failure) ->
        Printf.eprintf
          "[dse] QUARANTINED point %d (%s) after %d attempt(s): %s\n%!"
          f.Gem_dse.Exec.f_index f.Gem_dse.Exec.f_point.Gem_dse.Point.label
          f.Gem_dse.Exec.f_attempts f.Gem_dse.Exec.f_reason)
      rr.Gem_dse.Exec.quarantined;
    match out with
    | `Json -> print_string (Gem_dse.Report.json_string rr.Gem_dse.Exec.results)
    | `Csv -> print_string (Gem_dse.Report.csv rr.Gem_dse.Exec.results)
    | `Table ->
        let display_name =
          if scale = 1 then name else Printf.sprintf "%s/%d" name scale
        in
        let t =
          Gem_util.Table.create
            ~title:(Printf.sprintf "Array-size sweep (%s)" display_name)
            [ "DIM"; "Cycles"; "FPS@1GHz"; "Area (mm^2)"; "fmax (GHz)" ]
        in
        List.iter
          (fun i -> Gem_util.Table.set_align t i Gem_util.Table.Right)
          [ 1; 2; 3; 4 ];
        Array.iter
          (fun (p, o) ->
            Gem_util.Table.add_row t
              [
                p.Gem_dse.Point.label;
                Gem_util.Table.fmt_int o.Gem_dse.Outcome.total_cycles;
                Gem_util.Table.fmt_f ~dec:1 (Gem_dse.Report.fps_1ghz o);
                Gem_util.Table.fmt_f ~dec:2
                  (o.Gem_dse.Outcome.total_area_um2 /. 1e6);
                Gem_util.Table.fmt_f ~dec:2 o.Gem_dse.Outcome.fmax_ghz;
              ])
          rr.Gem_dse.Exec.results;
        Gem_util.Table.print t
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ]
          ~doc:
            "Simulation worker domains. 1 (the default) runs serially; 0 \
             uses the machine's recommended domain count. Results are \
             ordered by point, so any job count produces identical output.")
  in
  let cache_dir =
    Arg.(
      value & opt string "_dse_cache"
      & info [ "cache-dir" ]
          ~doc:"Persistent result-cache directory (content-addressed).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Simulate every point; touch no cache.")
  in
  let out =
    let fmt =
      Arg.enum [ ("table", `Table); ("json", `Json); ("csv", `Csv) ]
    in
    Arg.(
      value & opt fmt `Table
      & info [ "out" ] ~doc:"Output format: table (default), json or csv.")
  in
  let journal =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Atomically record every completed outcome in $(docv); a \
             killed sweep can be salvaged with --resume.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Salvage completed outcomes from the --journal file of a \
             previous (killed) sweep instead of re-simulating them. The \
             final report is byte-identical to an uninterrupted run's.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ]
          ~doc:
            "Retries per failing point (exponential backoff) before it is \
             quarantined. 0 (the default) keeps the historical behavior: \
             the first failure re-raises.")
  in
  let backoff_ms =
    Arg.(
      value & opt int 100
      & info [ "backoff-ms" ]
          ~doc:"First retry backoff in milliseconds; doubles per attempt.")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget per point evaluation (checked after the \
             evaluation returns); an over-budget point is retried, then \
             quarantined.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep spatial-array sizes for a workload (parallel, cached, \
          crash-safe: see --jobs, --cache-dir and --journal).")
    Term.(
      const run $ model_term $ scale_term $ backend_term $ jobs $ cache_dir
      $ no_cache $ out $ journal $ resume $ retries $ backoff_ms $ deadline
      $ self_profile_term $ metrics_out_term)

(* --- fuzz: differential testing against the golden model -------------------- *)

let fuzz_cmd =
  let run seed count shrink self_test =
    if self_test then begin
      (* Prove detection power: each deliberate golden-model bug must be
         caught within the case budget. *)
      let undetected =
        List.filter
          (fun mutation ->
            let detected = ref false in
            let i = ref 0 in
            while (not !detected) && !i < count do
              let case = Gem_check.Gen.case ~force_invalid:false ~seed:(seed + !i) () in
              let report = Gem_check.Diff.run_case ~mutate:mutation case in
              if report.Gem_check.Diff.divergences <> [] then detected := true;
              incr i
            done;
            Printf.printf "self-test %-18s %s\n"
              (Gem_check.Golden.mutation_name mutation)
              (if !detected then
                 Printf.sprintf "detected (seed %d)" (seed + !i - 1)
               else "NOT DETECTED");
            not !detected)
          Gem_check.Golden.mutations
      in
      if undetected <> [] then exit 1
    end
    else begin
      let failures = ref 0 and invalid = ref 0 in
      for i = 0 to count - 1 do
        let case = Gem_check.Gen.case ~seed:(seed + i) () in
        if case.Gem_check.Gen.invalid then incr invalid;
        let report = Gem_check.Diff.run_case case in
        if report.Gem_check.Diff.divergences <> [] then begin
          incr failures;
          Printf.printf "seed %d: %d divergence(s)\n" (seed + i)
            (List.length report.Gem_check.Diff.divergences);
          List.iter (Printf.printf "  %s\n") report.Gem_check.Diff.divergences;
          let case =
            if shrink then begin
              let small = Gem_check.Shrink.minimize_case case in
              Printf.printf "  shrunk to %d command(s):\n"
                (List.length small.Gem_check.Gen.program);
              small
            end
            else case
          in
          if shrink then
            List.iter
              (fun cmd -> Printf.printf "    %s\n" (Gemmini.Isa.to_string cmd))
              case.Gem_check.Gen.program;
          Printf.printf "  repro: %s\n" (Gem_check.Diff.repro case)
        end
      done;
      Printf.printf "fuzz: %d programs (%d invalid-mode), %d divergence(s), seeds %d..%d\n"
        count !invalid !failures seed (seed + count - 1);
      if !failures > 0 then exit 1
    end
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"First case seed; case $(i) uses seed + i.") in
  let count = Arg.(value & opt int 100 & info [ "count" ] ~doc:"Cases to run (self-test: per-mutation budget).") in
  let shrink = Arg.(value & flag & info [ "shrink" ] ~doc:"Minimize each failing program (ddmin) and print it.") in
  let self_test =
    Arg.(
      value & flag
      & info [ "self-test" ]
          ~doc:
            "Mutate the golden model instead of fuzzing: every deliberate \
             bug must be detected, proving the harness has teeth.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random ISA programs on the cycle-accurate \
          SoC vs an independent golden architectural model.")
    Term.(const run $ seed $ count $ shrink $ self_test)

(* --- xval: analytic backend vs cycle-accurate engine ------------------------- *)

let xval_cmd =
  let run models scale budget_file out =
    let models =
      match models with
      | [] -> Gem_dse.Xval.default_models
      | l -> l
    in
    let report = Gem_dse.Xval.validate ~models ~scale () in
    let t =
      Gem_util.Table.create
        ~title:(Printf.sprintf "Backend cross-validation (scale %d)" scale)
        [ "Model"; "Cycle"; "Analytic"; "Err"; "Speedup" ]
    in
    List.iter (fun i -> Gem_util.Table.set_align t i Gem_util.Table.Right) [ 1; 2; 3; 4 ];
    List.iter
      (fun (n : Gem_dse.Xval.network_report) ->
        Gem_util.Table.add_row t
          [
            n.Gem_dse.Xval.xn_model;
            Gem_util.Table.fmt_int n.Gem_dse.Xval.xn_cycle_total;
            Gem_util.Table.fmt_int n.Gem_dse.Xval.xn_analytic_total;
            Printf.sprintf "%+.1f%%" (100. *. n.Gem_dse.Xval.xn_rel_err);
            Printf.sprintf "%.0fx" n.Gem_dse.Xval.xn_speedup;
          ])
      report.Gem_dse.Xval.x_networks;
    Gem_util.Table.print t;
    Printf.printf "max |err| %.1f%%  mean |err| %.1f%%  min speedup %.0fx\n"
      (100. *. report.Gem_dse.Xval.x_max_abs_err)
      (100. *. report.Gem_dse.Xval.x_mean_abs_err)
      report.Gem_dse.Xval.x_min_speedup;
    (match out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc
              (Gem_util.Jsonx.to_string ~pretty:true
                 (Gem_dse.Xval.report_to_json report));
            output_char oc '\n');
        Printf.eprintf "[xval] wrote %s\n%!" file);
    match budget_file with
    | None -> ()
    | Some file -> (
        match Gem_dse.Xval.load_budget file with
        | Error msg ->
            Printf.eprintf "[xval] cannot load budget %s: %s\n%!" file msg;
            exit 2
        | Ok budget -> (
            match Gem_dse.Xval.check report budget with
            | Ok () -> Printf.printf "budget check: PASS (%s)\n" file
            | Error failures ->
                Printf.printf "budget check: FAIL (%s)\n" file;
                List.iter (Printf.printf "  %s\n") failures;
                exit 1))
  in
  let models =
    Arg.(
      value
      & opt (list string) []
      & info [ "models" ]
          ~doc:
            "Comma-separated model-zoo networks to validate (default: all \
             of them).")
  in
  let budget_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "budget-file" ] ~docv:"FILE"
          ~doc:
            "Check the report against this committed error budget and exit \
             non-zero when any network is over it.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the full per-layer JSON report to $(docv).")
  in
  Cmd.v
    (Cmd.info "xval"
       ~doc:
         "Cross-validate the analytic backend against the cycle-accurate \
          engine on the model zoo.")
    Term.(const run $ models $ scale_term $ budget_file $ out)

let experiment_cmd =
  let run id quick =
    match String.lowercase_ascii id with
    | "table1" -> Gem_experiments.Table1.run ()
    | "fig3" -> ignore (Gem_experiments.Fig3.run ())
    | "fig4" -> ignore (Gem_experiments.Fig4.run ~quick ())
    | "fig6" -> ignore (Gem_experiments.Fig6.run ())
    | "fig7" -> ignore (Gem_experiments.Fig7.run ~quick ())
    | "fig8" -> ignore (Gem_experiments.Fig8.run ~quick ())
    | "fig9" -> ignore (Gem_experiments.Fig9.run ~quick ())
    | other -> Printf.eprintf "unknown experiment %S\n" other
  in
  let id = Arg.(required & opt (some string) None & info [ "id" ] ~doc:"table1|fig3|fig4|fig6|fig7|fig8|fig9") in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Channel-scaled models.") in
  Cmd.v (Cmd.info "experiment" ~doc:"Reproduce a table/figure from the paper.")
    Term.(const run $ id $ quick)

(* --- serve: open-loop multi-core serving ------------------------------------- *)

let serve_cmd =
  let module Serve = Gem_serve.Serve in
  let run p model scale backend cores_list domains arrival seed batch slos
      duration no_warmup out trace_out warm warm_out rates jobs self_profile
      metrics_out =
    let name = model.Gem_dnn.Layer.model_name in
    let scenario_for ~cores ~arrival =
      {
        Serve.sv_model = name;
        sv_scale = scale;
        sv_soc = Serve.config_for ~cores p;
        sv_backend = backend;
        sv_mode = Runtime.Accel { im2col_on_accel = true };
        sv_arrival = arrival;
        sv_seed = seed;
        sv_batch = batch;
        sv_slos_ms = slos;
        sv_duration_ms = duration;
        sv_warmup = not no_warmup;
      }
    in
    match rates with
    | None -> (
        (* Single scenario: full report (or one CSV row) on stdout. *)
        let cores =
          match cores_list with
          | [ n ] -> n
          | _ ->
              prerr_endline
                "[serve] exactly one --cores value without --rates";
              exit 2
        in
        if trace_out <> None && backend <> Gem_sw.Backend.Cycle then begin
          prerr_endline "[serve] --trace-out needs the cycle backend";
          exit 2
        end;
        let reg = Metrics.create () in
        let stream = ref None in
        let hooks =
          List.filter_map Fun.id
            [
              (match trace_out with
              | None -> None
              | Some file ->
                  (* Streaming writer: events land on disk as they
                     retire, so long serving runs trace in constant
                     memory instead of filling the bounded ring. *)
                  Some
                    (fun soc ->
                      stream :=
                        Some
                          (Gem_sim.Export.Streaming.attach_file
                             (Soc.engine soc) file)));
              (if metrics_out <> None && backend = Gem_sw.Backend.Cycle then
                 Some
                   (fun soc ->
                     Gem_sim.Engine.register_metrics (Soc.engine soc) reg)
               else None);
            ]
        in
        let attach =
          match hooks with
          | [] -> None
          | hooks -> Some (fun soc -> List.iter (fun h -> h soc) hooks)
        in
        let result =
          with_self_profile self_profile (fun () ->
              try
                Serve.run ?attach ?warm_in:warm ?warm_out ~domains
                  (scenario_for ~cores ~arrival)
              with Invalid_argument msg ->
                Printf.eprintf "[serve] %s\n%!" msg;
                exit 2)
        in
        (match out with
        | `Report -> print_string (Gem_serve.Report.render result)
        | `Csv ->
            print_string Gem_serve.Report.csv_header;
            print_string (Gem_serve.Report.csv_row result));
        (match (trace_out, !stream) with
        | Some file, Some s ->
            Gem_sim.Export.Streaming.finish s;
            Printf.eprintf
              "[trace] wrote %s (chrome, %d event(s) streamed)\n%!" file
              (Gem_sim.Export.Streaming.events_written s)
        | _ -> ());
        if metrics_out <> None then Serve.register_metrics reg result;
        write_metrics reg metrics_out)
    | Some rates ->
        (* Throughput-vs-latency curve: arrival-rate x cores sweep through
           the DSE executor (parallelizable with --jobs; results are
           slotted by point index, so any job count prints identical
           bytes). *)
        if warm <> None || warm_out <> None || trace_out <> None then begin
          prerr_endline
            "[serve] --warm/--warm-out/--trace-out apply to single \
             scenarios, not --rates curves";
          exit 2
        end;
        let spec =
          {
            Gem_dse.Point.ss_arrival = Gem_serve.Arrival.spec_to_string arrival;
            ss_batch = Gem_serve.Batch.policy_to_string batch;
            ss_slo_ms = (match slos with s :: _ -> s | [] -> 10.0);
            ss_duration_ms = duration;
            ss_seed = seed;
          }
        in
        let base =
          Gem_dse.Point.make
            ~soc:(Serve.config_for ~cores:(List.hd cores_list) p)
            ~model:name ~scale ~backend ~serve:spec ()
        in
        let points =
          Gem_dse.Sweep.cartesian ~base
            [ Gem_dse.Sweep.cores cores_list; Gem_dse.Sweep.serve_rates rates ]
        in
        let rr =
          with_self_profile self_profile (fun () ->
              Gem_dse.Exec.run ~jobs ~cache:None points)
        in
        (match metrics_out with
        | None -> ()
        | Some _ ->
            let reg = Metrics.create () in
            Gem_dse.Exec.register_metrics reg rr;
            write_metrics reg metrics_out);
        print_string (Gem_dse.Report.csv rr.Gem_dse.Exec.results)
  in
  let arrival_conv =
    let parse s =
      Result.map_error (fun e -> `Msg e) (Gem_serve.Arrival.spec_of_string s)
    in
    let print fmt a =
      Format.fprintf fmt "%s" (Gem_serve.Arrival.spec_to_string a)
    in
    Arg.conv (parse, print)
  in
  let batch_conv =
    let parse s =
      Result.map_error (fun e -> `Msg e) (Gem_serve.Batch.policy_of_string s)
    in
    let print fmt b =
      Format.fprintf fmt "%s" (Gem_serve.Batch.policy_to_string b)
    in
    Arg.conv (parse, print)
  in
  let cores =
    Arg.(
      value
      & opt (list int) [ 2 ]
      & info [ "cores" ]
          ~doc:
            "Gemmini cores sharing the L2/DRAM. A single value for one \
             scenario; a comma-separated list becomes a sweep axis with \
             --rates.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:
            "Host OCaml Domains driving the simulation (cycle backend, \
             single scenario). Reports are byte-identical at any value.")
  in
  let arrival =
    Arg.(
      value
      & opt arrival_conv (Gem_serve.Arrival.Poisson { rate_rps = 2000. })
      & info [ "arrival" ]
          ~doc:
            "Arrival process: poisson:RATE, bursty:RATE:BURST or \
             trace:FILE (one arrival cycle per line). Rates are requests \
             per second at 1 GHz.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:"Arrival-stream seed; equal seeds give byte-identical runs.")
  in
  let batch =
    Arg.(
      value
      & opt batch_conv Gem_serve.Batch.No_batch
      & info [ "batch" ]
          ~doc:
            "Admission batching: none, fixed:N (greedy, size-capped) or \
             deadline:N:WAIT_US (hold the head up to WAIT_US microseconds \
             to fill a batch of N).")
  in
  let slos =
    Arg.(
      value
      & opt (list float) [ 5.0; 10.0 ]
      & info [ "slo-ms" ]
          ~doc:"SLO targets in milliseconds (comma-separated).")
  in
  let duration =
    Arg.(
      value & opt float 5.0
      & info [ "duration" ] ~docv:"MS"
          ~doc:"Arrival-window length in milliseconds.")
  in
  let no_warmup =
    Arg.(
      value & flag
      & info [ "no-warmup" ]
          ~doc:
            "Skip the untimed per-core warmup inference (cold-start \
             effects then land on the first requests).")
  in
  let out =
    let fmt = Arg.enum [ ("report", `Report); ("csv", `Csv) ] in
    Arg.(
      value & opt fmt `Report
      & info [ "out" ] ~doc:"Single-scenario output: report (default) or csv.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace of the serving run (request > network > \
             layer spans) to $(docv). Cycle backend only.")
  in
  let warm =
    Arg.(
      value & opt (some string) None
      & info [ "warm" ] ~docv:"FILE"
          ~doc:
            "Warm-start from a post-warmup SoC snapshot saved by \
             --warm-out (same model/scale/cores), skipping the warmup \
             re-simulation.")
  in
  let warm_out =
    Arg.(
      value & opt (some string) None
      & info [ "warm-out" ] ~docv:"FILE"
          ~doc:"Save the post-warmup SoC snapshot for later --warm runs.")
  in
  let rates =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "rates" ]
          ~doc:
            "Curve mode: sweep these Poisson arrival rates (req/s, \
             comma-separated) x --cores through the DSE executor and \
             print a throughput-vs-latency CSV.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ]
          ~doc:
            "Worker domains for --rates curves; any value prints \
             identical bytes.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve an open-loop request stream on a multi-core SoC \
          (latency percentiles, SLO attainment, throughput curves).")
    Term.(
      const run $ params_term $ model_term $ scale_term $ backend_term
      $ cores $ domains $ arrival $ seed $ batch $ slos $ duration
      $ no_warmup $ out $ trace_out $ warm $ warm_out $ rates $ jobs
      $ self_profile_term $ metrics_out_term)

let () =
  let info =
    Cmd.info "gemmini_cli" ~version:"1.0.0"
      ~doc:"Full-stack DNN accelerator generator and SoC simulator (Gemmini reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            describe_cmd;
            header_cmd;
            synth_cmd;
            run_cmd;
            profile_cmd;
            serve_cmd;
            sweep_cmd;
            xval_cmd;
            experiment_cmd;
            fuzz_cmd;
          ]))
