open Gem_sim
open Gem_mem
open Gem_util

type core = {
  id : int;
  cpu : Gem_cpu.Cpu_model.kind;
  controller : Gemmini.Controller.t;
  hierarchy : Gem_vm.Hierarchy.t;
  page_table : Gem_vm.Page_table.t;
  mutable next_vaddr : int;
  (* swap space: ppn of every page injection has unmapped, so a remap
     restores the same physical page (and its contents) *)
  swapped : (int, int) Hashtbl.t;
}

type t = {
  cfg : Soc_config.t;
  engine : Engine.t; (* one simulation context for the whole chip *)
  l2 : Cache.t;
  l2_port : Resource.t;
  dram : Dram.t;
  mainmem : Mainmem.t option;
  mutable cores_arr : core array;
  mutable next_paddr : int; (* shared physical page allocator *)
}

let page_size = Gem_vm.Page_table.page_size

(* Physical memory layout: page-table nodes for core i live in their own
   16 MiB region; data pages are allocated from a shared bump pointer
   above all node regions. *)
let pt_region_base i = 0x4000_0000 + (i * 0x0100_0000)
let data_base cores = 0x4000_0000 + (cores * 0x0100_0000)
let va_base = 0x0001_0000

(* One L2+DRAM access path shared by every requester on the SoC. Runs once
   per cache line of every DMA burst, so the loop is tail-recursive with
   unboxed int accumulators: the quiet path allocates nothing. *)
let mem_access soc ~now ~paddr ~bytes ~write =
  let cfg = soc.cfg in
  let line = cfg.Soc_config.l2_line_bytes in
  let occupancy = Mathx.ceil_div line cfg.Soc_config.l2_port_bytes in
  let first = paddr / line and last = (paddr + max bytes 1 - 1) / line in
  let rec lines ln finish =
    if ln > last then finish
    else begin
      let addr = ln * line in
      let port_done = Engine.acquire soc.engine soc.l2_port ~now ~occupancy in
      let line_done =
        match Cache.access soc.l2 ~addr ~write with
        | Cache.Hit -> port_done + cfg.Soc_config.l2_hit_latency
        | Cache.Miss ->
            (* Allocate: fetch the line from DRAM. *)
            Dram.access soc.dram ~now:port_done ~bytes:line ~write:false
        | Cache.Miss_writeback ->
            (* A dirty victim writes back, consuming bandwidth but not
               adding to the critical path. *)
            let fetch_done =
              Dram.access soc.dram ~now:port_done ~bytes:line ~write:false
            in
            ignore (Dram.access soc.dram ~now:port_done ~bytes:line ~write:true);
            fetch_done
      in
      lines (ln + 1) (if line_done > finish then line_done else finish)
    end
  in
  lines first now

let make_port soc : Gemmini.Dma.port =
  {
    Gemmini.Dma.read_timing =
      (fun ~now ~paddr ~bytes -> mem_access soc ~now ~paddr ~bytes ~write:false);
    write_timing =
      (fun ~now ~paddr ~bytes -> mem_access soc ~now ~paddr ~bytes ~write:true);
    read_data =
      Option.map
        (fun mm -> fun ~paddr ~n -> Array.init n (fun i -> Mainmem.read_byte mm ~addr:(paddr + i)))
        soc.mainmem;
    write_data =
      Option.map
        (fun mm ->
          fun ~paddr bytes ->
           Array.iteri (fun i b -> Mainmem.write_byte mm ~addr:(paddr + i) b) bytes)
        soc.mainmem;
  }

let create cfg =
  (match Soc_config.validate cfg with
  | Ok () -> ()
  | Error errs -> invalid_arg ("Soc: " ^ String.concat "; " errs));
  let n = List.length cfg.Soc_config.cores in
  let engine = Engine.create () in
  (* Explicit lets fix the registry (and hence profile) order: shared
     memory system first, then each core's components. *)
  let l2 =
    Cache.create ~engine ~name:"l2" ~size_bytes:cfg.Soc_config.l2_size_bytes
      ~ways:cfg.Soc_config.l2_ways ~line_bytes:cfg.Soc_config.l2_line_bytes ()
  in
  let l2_port = Engine.resource engine ~kind:Engine.Cache ~name:"l2-port" in
  let dram =
    Dram.create ~engine ~latency:cfg.Soc_config.dram_latency
      ~bytes_per_cycle:cfg.Soc_config.dram_bytes_per_cycle ()
  in
  let soc =
    {
      cfg;
      engine;
      l2;
      l2_port;
      dram;
      mainmem = (if cfg.Soc_config.functional then Some (Mainmem.create ()) else None);
      cores_arr = [||];
      next_paddr = data_base n;
    }
  in
  let port = make_port soc in
  let cores =
    List.mapi
      (fun i (cc : Soc_config.core_config) ->
        let page_table =
          Gem_vm.Page_table.create ~node_region_base:(pt_region_base i) ()
        in
        let ptw =
          Gem_vm.Ptw.create ~engine:soc.engine
            ~name:(Printf.sprintf "core%d/ptw" i)
            ~page_table
            ~mem_read:(fun ~now ~paddr ~bytes ->
              mem_access soc ~now ~paddr ~bytes ~write:false)
            ()
        in
        let hierarchy =
          Gem_vm.Hierarchy.create ~engine:soc.engine
            ~name:(Printf.sprintf "core%d/tlb" i)
            ~core:i cc.Soc_config.tlb ~ptw
        in
        let controller =
          Gemmini.Controller.create ~engine:soc.engine
            ~name:(Printf.sprintf "core%d" i)
            ~core:i ~params:cc.Soc_config.accel ~port ~tlb:hierarchy
            ~issue_cycles:(Gem_cpu.Cpu_model.issue_cycles cc.Soc_config.cpu)
            ()
        in
        {
          id = i;
          cpu = cc.Soc_config.cpu;
          controller;
          hierarchy;
          page_table;
          next_vaddr = va_base;
          swapped = Hashtbl.create 64;
        })
      cfg.Soc_config.cores
  in
  soc.cores_arr <- Array.of_list cores;
  soc

let config t = t.cfg
let engine t = t.engine
let cores t = t.cores_arr
let core t i = t.cores_arr.(i)
let l2 t = t.l2
let dram t = t.dram
let mainmem t = t.mainmem

let core_id c = c.id
let cpu c = c.cpu
let controller c = c.controller
let tlb c = c.hierarchy
let page_table c = c.page_table

let alloc_paddr t ~pages =
  let base = t.next_paddr in
  t.next_paddr <- t.next_paddr + (pages * page_size);
  base

let alloc t c ~bytes =
  if bytes <= 0 then invalid_arg "Soc.alloc: non-positive size";
  let pages = Mathx.ceil_div bytes page_size in
  let vaddr = c.next_vaddr in
  c.next_vaddr <- c.next_vaddr + (pages * page_size);
  let paddr = alloc_paddr t ~pages in
  Gem_vm.Page_table.map_range c.page_table ~vaddr ~bytes:(pages * page_size) ~paddr;
  vaddr

let va_extent c = (va_base, c.next_vaddr)

(* --- paging (fault injection / recovery) --------------------------------- *)

let unmap_page _t c ~vaddr =
  let vpn = Gem_vm.Page_table.vpn_of_vaddr vaddr in
  match Gem_vm.Page_table.unmap c.page_table ~vpn with
  | None -> false
  | Some ppn ->
      Hashtbl.replace c.swapped vpn ppn;
      Gem_vm.Hierarchy.invalidate c.hierarchy ~vpn;
      true

let map_page t c ~vaddr =
  let vpn = Gem_vm.Page_table.vpn_of_vaddr vaddr in
  let ppn =
    match Hashtbl.find_opt c.swapped vpn with
    | Some ppn ->
        (* Swap the original physical page back in: contents survive. *)
        Hashtbl.remove c.swapped vpn;
        ppn
    | None -> Gem_vm.Page_table.vpn_of_vaddr (alloc_paddr t ~pages:1)
  in
  Gem_vm.Page_table.map c.page_table ~vpn ~ppn

(* One plan instance is shared between a core's DMA (bus-error rolls) and
   its TLB hierarchy (drop/unmap rolls): the snapshot serializes it once
   and the restore re-shares one rebuilt instance the same way. *)
let wire_inject t c plan =
  Gemmini.Dma.set_inject (Gemmini.Controller.dma c.controller) plan;
  Gem_vm.Hierarchy.set_inject c.hierarchy ~plan
    ~unmap:(fun ~vaddr -> ignore (unmap_page t c ~vaddr))
    ()

let arm_injection t ~seed ~rate =
  Array.iteri
    (fun i c ->
      (* Distinct per-core seeds: each core's plan is an independent but
         reproducible stream. *)
      let plan = Inject.create ~seed:(seed + (i * 0x9E3779B9)) ~rate () in
      wire_inject t c plan)
    t.cores_arr

(* --- snapshot / restore ---------------------------------------------------- *)

module J = Jsonx

let core_snapshot c =
  let swapped =
    Hashtbl.fold (fun vpn ppn acc -> (vpn, ppn) :: acc) c.swapped []
    |> List.sort compare
    |> List.map (fun (vpn, ppn) -> Snap.of_int_list [ vpn; ppn ])
  in
  J.Obj
    [ ("id", J.Int c.id);
      ("controller", Gemmini.Controller.snapshot c.controller);
      ("tlb", Gem_vm.Hierarchy.snapshot c.hierarchy);
      ("pt", Gem_vm.Page_table.snapshot c.page_table);
      ("next_vaddr", J.Int c.next_vaddr);
      ("swapped", J.List swapped);
      ( "inject",
        match Gemmini.Dma.inject (Gemmini.Controller.dma c.controller) with
        | None -> J.Null
        | Some plan -> Inject.to_json plan ) ]

let snapshot t =
  J.Obj
    [ ("engine", Engine.snapshot t.engine);
      ("l2", Cache.snapshot t.l2);
      ("dram", Dram.snapshot t.dram);
      ( "mainmem",
        match t.mainmem with
        | None -> J.Null
        | Some mm -> Mainmem.snapshot mm );
      ("next_paddr", J.Int t.next_paddr);
      ("cores", J.List (Array.to_list (Array.map core_snapshot t.cores_arr))) ]

let core_restore t c j =
  Snap.check ~what:"core id" (Snap.get_int "id" j = c.id);
  Gemmini.Controller.restore c.controller (Snap.member "controller" j);
  Gem_vm.Hierarchy.restore c.hierarchy (Snap.member "tlb" j);
  Gem_vm.Page_table.restore c.page_table (Snap.member "pt" j);
  c.next_vaddr <- Snap.get_int "next_vaddr" j;
  Hashtbl.reset c.swapped;
  List.iter
    (fun pair ->
      match Snap.int_list pair with
      | [ vpn; ppn ] -> Hashtbl.replace c.swapped vpn ppn
      | _ -> Snap.fail "bad swapped-page entry")
    (Snap.get_list "swapped" j);
  match Snap.member "inject" j with
  | J.Null -> ()
  | pj -> wire_inject t c (Inject.of_json pj)

let restore t j =
  Engine.restore t.engine (Snap.member "engine" j);
  Cache.restore t.l2 (Snap.member "l2" j);
  Dram.restore t.dram (Snap.member "dram" j);
  (match (t.mainmem, Snap.member "mainmem" j) with
  | None, J.Null -> ()
  | Some _, J.Null -> Snap.fail "snapshot lacks main memory (functional SoC)"
  | Some mm, mj -> Mainmem.restore mm mj
  | None, _ -> Snap.fail "snapshot has main memory but SoC is timing-only");
  t.next_paddr <- Snap.get_int "next_paddr" j;
  let cores_j = Snap.get_list "cores" j in
  Snap.check ~what:"core count"
    (List.length cores_j = Array.length t.cores_arr);
  List.iteri (fun i cj -> core_restore t t.cores_arr.(i) cj) cores_j


(* --- host-side data access (functional mode) ----------------------------- *)

let require_mainmem t =
  match t.mainmem with
  | Some mm -> mm
  | None -> invalid_arg "Soc: host data access requires a functional SoC"

let translate_exn c ~vaddr =
  match Gem_vm.Page_table.translate c.page_table ~vaddr with
  | Some paddr -> paddr
  | None -> invalid_arg (Printf.sprintf "Soc: unmapped vaddr 0x%x" vaddr)

(* Host accesses never cross page boundaries unsafely: walk bytewise by
   page segment. *)
let host_bytes_iter c ~vaddr ~n ~f =
  let off = ref 0 in
  while !off < n do
    let va = vaddr + !off in
    let in_page = page_size - (va land (page_size - 1)) in
    let seg = min in_page (n - !off) in
    let pa = translate_exn c ~vaddr:va in
    f ~pa ~off:!off ~len:seg;
    off := !off + seg
  done

let host_write_i8 t c ~vaddr data =
  let mm = require_mainmem t in
  host_bytes_iter c ~vaddr ~n:(Array.length data) ~f:(fun ~pa ~off ~len ->
      for i = 0 to len - 1 do
        Mainmem.write_i8 mm ~addr:(pa + i) data.(off + i)
      done)

let host_read_i8 t c ~vaddr ~n =
  let mm = require_mainmem t in
  let out = Array.make n 0 in
  host_bytes_iter c ~vaddr ~n ~f:(fun ~pa ~off ~len ->
      for i = 0 to len - 1 do
        out.(off + i) <- Mainmem.read_i8 mm ~addr:(pa + i)
      done);
  out

let host_write_i32 t c ~vaddr data =
  let mm = require_mainmem t in
  host_bytes_iter c ~vaddr ~n:(4 * Array.length data) ~f:(fun ~pa ~off ~len ->
      (* segments are page-sized and pages are 4-aligned, so i32s never
         straddle a segment *)
      assert (off land 3 = 0 && len land 3 = 0);
      for i = 0 to (len / 4) - 1 do
        Mainmem.write_i32 mm ~addr:(pa + (4 * i)) data.((off / 4) + i)
      done)

let host_read_i32 t c ~vaddr ~n =
  let mm = require_mainmem t in
  let out = Array.make n 0 in
  host_bytes_iter c ~vaddr ~n:(4 * n) ~f:(fun ~pa ~off ~len ->
      assert (off land 3 = 0 && len land 3 = 0);
      for i = 0 to (len / 4) - 1 do
        out.((off / 4) + i) <- Mainmem.read_i32 mm ~addr:(pa + (4 * i))
      done);
  out

(* --- program execution ---------------------------------------------------- *)

type op =
  | Insn of Gemmini.Isa.t
  | Host_work of { cycles : int; tag : string }
  | Marker of (core -> unit)
  | Guarded of { op : op; run : core -> unit }

module P = Gem_obs.Profile

let exec_op_quiet c = function
  | Insn insn -> Gemmini.Controller.execute c.controller insn
  | Host_work { cycles; tag = _ } ->
      Gemmini.Controller.host_work c.controller ~cycles
  | Marker f -> f c
  | Guarded { run; op = _ } -> run c

(* An op is private when executing it touches only its own core's state:
   config/compute/preload instructions and the loop staging commands stay
   inside the controller and scratchpad, and host work only advances the
   core clock. Mvin/Mvout and the composite WS loop drive DMA through the
   shared L2/DRAM (and the functional main memory); markers run arbitrary
   host closures. Those must execute on the coordinator. *)
let rec op_is_private = function
  | Insn (Gemmini.Isa.Mvin _ | Gemmini.Isa.Mvout _ | Gemmini.Isa.Loop_ws _) ->
      false
  | Insn _ -> true
  | Host_work _ -> true
  | Marker _ -> false
  | Guarded { op; run = _ } -> op_is_private op

(* The per-op dispatch probe is the self-profiler's widest net: nested
   engine/DMA probes subtract themselves out, so "soc.dispatch" self
   time is pure dispatch overhead. The quiet path stays branch-only;
   the profiled path tolerates simulated traps unwinding through it. *)
let exec_op c op =
  if !P.on then begin
    P.enter P.dispatch;
    Fun.protect
      ~finally:(fun () -> P.leave P.dispatch)
      (fun () -> exec_op_quiet c op)
  end
  else exec_op_quiet c op

let run_program _t c program =
  Seq.iter (exec_op c) program;
  Gemmini.Controller.finish_time c.controller

let run_sequential t programs =
  let n = Array.length programs in
  (* Per-core stream cursors. *)
  let cursors = Array.map (fun s -> ref s) programs in
  let next_op i =
    match !(cursors.(i)) () with
    | Seq.Nil -> None
    | Seq.Cons (op, rest) ->
        cursors.(i) := rest;
        Some op
  in
  let done_flags = Array.make n false in
  let finished = ref 0 in
  while !finished < n do
    (* Advance the live core whose issue cursor is earliest: simulated-
       time-ordered interleaving of shared-resource accesses. *)
    let best = ref (-1) in
    let best_time = ref max_int in
    for i = 0 to n - 1 do
      if not done_flags.(i) then begin
        let now = Gemmini.Controller.now (controller t.cores_arr.(i)) in
        if now < !best_time then begin
          best_time := now;
          best := i
        end
      end
    done;
    let i = !best in
    match next_op i with
    | Some op -> exec_op t.cores_arr.(i) op
    | None ->
        done_flags.(i) <- true;
        incr finished
  done;
  Array.mapi
    (fun i _ -> Gemmini.Controller.finish_time (controller t.cores_arr.(i)))
    programs

(* --- Domain-parallel driver -----------------------------------------------

   Private ops execute on worker Domains; shared ops (DMA through the
   L2/DRAM, markers, and forcing the lazy program streams themselves)
   stay on the coordinator. Picks happen in exactly the sequential
   driver's order, established conservatively:

   - a core is either {e busy} (one op in flight on its worker) or
     {e drained} (waiting to be picked). The sequential pick order is
     lexicographic (now, index), encoded as the single int key
     [now * n + index];
   - a core's clock never decreases while an op executes, so a busy
     core's next pick key is at least [bound * n + index], where [bound]
     is its clock at dispatch time;
   - hence the earliest drained core [j] may be picked iff its key is
     strictly below every busy core's dispatch bound: the sequential
     driver would pick [j] before any busy core could be picked again.
     Otherwise the coordinator waits for a busy core to retire.

   Overlapping a shared op with in-flight private ops is safe because
   they touch disjoint state (shared L2/DRAM vs. a core's controller and
   scratchpad) and the engine clock is kept in per-domain slots folded by
   max at the end ({!Engine.enter_parallel}). Publication is
   release/acquire through each mailbox's [m_state]: the coordinator
   writes [m_op] then stores 1; the worker loads 1, runs the op, stores
   0; the coordinator loads 0 and may again touch that core's state. *)

type mailbox = {
  mutable m_op : op; (* meaningful only while m_state = 1 *)
  m_state : int Atomic.t; (* 0 = core idle, 1 = op in flight *)
}

(* An eventcount: waiters spin briefly, then publish [ga_sleeping] and
   block on the condition. Wakers only take the mutex when a sleeper is
   published, so the uncontended (true-multicore) handoff stays a pair
   of atomic operations; on an oversubscribed host (fewer hardware
   threads than Domains) blocking hands the CPU straight to the peer
   instead of burning a scheduler quantum spinning. *)
type gate = {
  ga_mutex : Mutex.t;
  ga_cond : Condition.t;
  ga_sleeping : bool Atomic.t;
}

let make_gate () =
  {
    ga_mutex = Mutex.create ();
    ga_cond = Condition.create ();
    ga_sleeping = Atomic.make false;
  }

let gate_wake g =
  if Atomic.get g.ga_sleeping then begin
    Mutex.lock g.ga_mutex;
    Condition.signal g.ga_cond;
    Mutex.unlock g.ga_mutex
  end

(* Sleep unless [ready ()] already holds. Publishing [ga_sleeping] before
   re-checking closes the lost-wakeup race: a waker that misses the flag
   wrote its state before our re-check reads it (SC atomics), and one
   that sees the flag signals under the mutex we hold until the wait.
   Spurious wakeups are fine — every caller loops on its own predicate. *)
let gate_sleep g ~ready =
  Mutex.lock g.ga_mutex;
  Atomic.set g.ga_sleeping true;
  if not (ready ()) then Condition.wait g.ga_cond g.ga_mutex;
  Atomic.set g.ga_sleeping false;
  Mutex.unlock g.ga_mutex

let spin_budget = 200

let run_domains t programs ~domains =
  let n = Array.length programs in
  let workers = min (domains - 1) n in
  let nop = Host_work { cycles = 0; tag = "idle" } in
  let mailboxes =
    Array.init n (fun _ -> { m_op = nop; m_state = Atomic.make 0 })
  in
  let exns : exn option array = Array.make n None in
  let quit = Atomic.make false in
  let wgates = Array.init workers (fun _ -> make_gate ()) in
  let done_gate = make_gate () in
  Engine.enter_parallel t.engine ~slots:(workers + 1);
  (* Worker [w] owns cores [i] with [i mod workers = w]: at most one op
     is in flight per core, so the owner is the only domain that touches
     a busy core's state. *)
  let worker w () =
    Engine.set_domain_slot (w + 1);
    let gate = wgates.(w) in
    let pending () =
      let p = ref false in
      let i = ref w in
      while !i < n do
        if Atomic.get mailboxes.(!i).m_state = 1 then p := true;
        i := !i + workers
      done;
      !p
    in
    let stop = ref false in
    let idle = ref 0 in
    while not !stop do
      let progress = ref false in
      let i = ref w in
      while !i < n do
        let mb = mailboxes.(!i) in
        if Atomic.get mb.m_state = 1 then begin
          (try exec_op t.cores_arr.(!i) mb.m_op
           with e -> exns.(!i) <- Some e);
          Atomic.set mb.m_state 0;
          gate_wake done_gate;
          progress := true
        end;
        i := !i + workers
      done;
      if !progress then idle := 0
      else if Atomic.get quit then stop := true
      else begin
        incr idle;
        if !idle < spin_budget then Domain.cpu_relax ()
        else begin
          idle := 0;
          gate_sleep gate ~ready:(fun () -> pending () || Atomic.get quit)
        end
      end
    done
  in
  let doms = Array.init workers (fun w -> Domain.spawn (worker w)) in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set quit true;
      (* Unconditional broadcast: a worker between its sleeping-publish
         and its wait re-checks [quit] under the mutex, so none can miss
         the shutdown. *)
      Array.iter
        (fun g ->
          Mutex.lock g.ga_mutex;
          Condition.broadcast g.ga_cond;
          Mutex.unlock g.ga_mutex)
        wgates;
      Array.iter Domain.join doms;
      Engine.exit_parallel t.engine)
    (fun () ->
      Engine.set_domain_slot 0;
      let cursors = Array.map (fun s -> ref s) programs in
      let busy = Array.make n false in
      let bound = Array.make n 0 in
      let key_of i =
        (Gemmini.Controller.now t.cores_arr.(i).controller * n) + i
      in
      let some_retired () =
        let some = ref false in
        for i = 0 to n - 1 do
          if busy.(i) && Atomic.get mailboxes.(i).m_state = 0 then
            some := true
        done;
        !some
      in
      (* Drained cores, keyed by pick order. Every drained period pushes
         exactly one entry and pops it exactly once. *)
      let ready = Heap.create () in
      for i = 0 to n - 1 do
        Heap.push ready ~key:(key_of i) i
      done;
      let finished = ref 0 in
      let fatal = ref false in
      let idle = ref 0 in
      while !finished < n && not !fatal do
        (* Retire completed ops: their cores become pickable again. *)
        let reaped = ref false in
        for i = 0 to n - 1 do
          if busy.(i) && Atomic.get mailboxes.(i).m_state = 0 then begin
            busy.(i) <- false;
            if exns.(i) <> None then fatal := true
            else Heap.push ready ~key:(key_of i) i;
            reaped := true
          end
        done;
        if not !fatal then begin
          let safe key =
            let ok = ref true in
            for i = 0 to n - 1 do
              if busy.(i) && (bound.(i) * n) + i <= key then ok := false
            done;
            !ok
          in
          match Heap.peek_key ready with
          | Some key when safe key ->
              idle := 0;
              let j =
                match Heap.pop ready with
                | Some (_, j) -> j
                | None -> assert false
              in
              (match !(cursors.(j)) () with
              | Seq.Nil -> incr finished
              | Seq.Cons (op, rest) ->
                  cursors.(j) := rest;
                  if op_is_private op then begin
                    bound.(j) <-
                      Gemmini.Controller.now t.cores_arr.(j).controller;
                    busy.(j) <- true;
                    mailboxes.(j).m_op <- op;
                    Atomic.set mailboxes.(j).m_state 1;
                    gate_wake wgates.(j mod workers)
                  end
                  else begin
                    exec_op t.cores_arr.(j) op;
                    Heap.push ready ~key:(key_of j) j
                  end)
          | _ ->
              if !reaped then idle := 0
              else begin
                incr idle;
                if !idle < spin_budget then Domain.cpu_relax ()
                else begin
                  idle := 0;
                  (* Unsafe to pick while ops are in flight: wait for a
                     retirement. The unsafe-pick state implies at least
                     one busy core, so a wake-up is guaranteed. *)
                  gate_sleep done_gate ~ready:some_retired
                end
              end
        end
      done;
      if !fatal then begin
        (* Wait for the remaining in-flight ops, then surface the first
           worker exception in core order (matching the sequential
           driver's deterministic abort for single-core programs; the
           exact abort point with concurrent cores is documented as the
           one divergence from the sequential schedule). *)
        for i = 0 to n - 1 do
          while busy.(i) && Atomic.get mailboxes.(i).m_state = 1 do
            gate_sleep done_gate ~ready:(fun () ->
                Atomic.get mailboxes.(i).m_state = 0)
          done
        done;
        Array.iter (function Some e -> raise e | None -> ()) exns
      end;
      Array.mapi
        (fun i _ ->
          Gemmini.Controller.finish_time (controller t.cores_arr.(i)))
        programs)

let run_parallel ?(domains = 1) t programs =
  let n = Array.length programs in
  if n > Array.length t.cores_arr then
    invalid_arg "Soc.run_parallel: more programs than cores";
  (* Trace/event observers and the span collector are inherently
     sequential consumers, and a single stream (or core) has nothing to
     overlap: fall back to the reference driver. *)
  if domains <= 1 || n <= 1 || Engine.observing t.engine then
    run_sequential t programs
  else run_domains t programs ~domains

let finish_time t =
  Array.fold_left
    (fun acc c -> max acc (Gemmini.Controller.finish_time c.controller))
    0 t.cores_arr
