(** An elaborated SoC: cores (CPU + accelerator + TLBs + page table) wired
    to a shared L2, a shared DRAM channel, and — in functional mode — a
    shared physical main memory.

    All DMA and page-table-walk traffic flows through the shared L2 and
    DRAM bandwidth models, so multi-core contention (Fig. 9) and
    translation overheads (Fig. 4 / Fig. 8) are emergent rather than
    scripted. *)

type t

type core

val create : Soc_config.t -> t
(** Elaborates the SoC around a single {!Gem_sim.Engine}: every timed
    component (L2 port, DRAM channel, per-core pipelines, DMA links,
    PTWs) registers in its resource registry, so one registry describes
    the whole chip. *)

val engine : t -> Gem_sim.Engine.t
(** The chip-wide simulation context; [Gem_sim.Engine.stats] /
    [utilization_table] give the per-component profile. *)

val config : t -> Soc_config.t
val cores : t -> core array
val core : t -> int -> core
val l2 : t -> Gem_mem.Cache.t
val dram : t -> Gem_mem.Dram.t
val mainmem : t -> Gem_mem.Mainmem.t option

(* Core accessors *)

val core_id : core -> int
val cpu : core -> Gem_cpu.Cpu_model.kind
val controller : core -> Gemmini.Controller.t
val tlb : core -> Gem_vm.Hierarchy.t
val page_table : core -> Gem_vm.Page_table.t

val alloc : t -> core -> bytes:int -> int
(** Allocates [bytes] of page-aligned virtual memory in the core's address
    space, backed by fresh physical pages (mapped in the page table).
    Returns the virtual address. *)

val va_extent : core -> int * int
(** [(lo, hi)]: the core's allocated virtual address range so far. *)

val unmap_page : t -> core -> vaddr:int -> bool
(** Unmaps the page containing [vaddr] (leaf PTE cleared, TLB shootdown),
    stashing its physical page so a later {!map_page} restores the same
    contents — a swap-out. False when the page was not mapped. *)

val map_page : t -> core -> vaddr:int -> unit
(** (Re)maps the page containing [vaddr]: swapped-out pages get their
    original frame back, never-mapped ones a fresh zero frame. This is
    the host's page-fault handler, used by the runtime's [Retry_map]
    policy. *)

val arm_injection : t -> seed:int -> rate:float -> unit
(** Arms deterministic fault injection on every core: per-core
    {!Gem_sim.Inject} plans (seeds derived from [seed]) are hooked into
    each DMA (bus errors) and TLB hierarchy (drops and page unmaps).
    Equal seeds replay identical fault traces. *)

val snapshot : t -> Gem_util.Jsonx.t
(** The full mutable state of the chip: engine clock + resource registry
    + trace ring, L2 tags/dirty/LRU, DRAM counters, main-memory pages
    (functional mode), the physical-page bump allocator, and per core the
    controller (nested scratchpad/DMA), TLB hierarchy, page-table tree,
    virtual-address allocator, swap table and armed injection plan (with
    its RNG cursors). Deterministic: equal states serialize to equal
    JSON. *)

val restore : t -> Gem_util.Jsonx.t -> unit
(** Restores into a freshly-created SoC of the {e same}
    {!Soc_config.t}. Re-arms each core's injection hooks when the
    snapshot carries a plan. Raises {!Gem_util.Snap.Malformed} when the
    snapshot does not match this SoC's shape (resource registry, core
    count, memory geometry). *)

(* Host-side (zero-simulated-cost) data access, functional mode only. *)

val host_write_i8 : t -> core -> vaddr:int -> int array -> unit
val host_read_i8 : t -> core -> vaddr:int -> n:int -> int array
val host_write_i32 : t -> core -> vaddr:int -> int array -> unit
val host_read_i32 : t -> core -> vaddr:int -> n:int -> int array

(** Programs: per-core streams of accelerator commands, host work, and
    bookkeeping markers. *)
type op =
  | Insn of Gemmini.Isa.t
  | Host_work of { cycles : int; tag : string }
  | Marker of (core -> unit)
      (** executed (zero cost) when the core reaches this point *)
  | Guarded of { op : op; run : core -> unit }
      (** [run] executes [op] wrapped in caller-supplied trap handling
          (the runtime's fault policies). Keeping the underlying [op]
          visible lets the parallel driver classify the work as
          core-private or shared without forcing the wrapper. *)

val exec_op : core -> op -> unit
(** Executes one op on the core. Exposed so recovery layers (the
    runtime's fault policies) can wrap each op in their own
    trap-handling before delegating here. *)

val run_program : t -> core -> op Seq.t -> Gem_sim.Time.cycles
(** Runs a single core's program to completion; returns its finish time. *)

val run_parallel : ?domains:int -> t -> op Seq.t array -> Gem_sim.Time.cycles array
(** Runs one program per core, interleaved in simulated-time order (the
    core whose issue cursor is earliest executes next), so shared-resource
    contention is interleaving-accurate. Returns per-core finish times.

    With [domains > 1] (default 1), core-private ops execute on up to
    [domains - 1] worker Domains while shared ops stay on the
    coordinator, scheduled so every simulated-time pick happens in
    exactly the sequential order: cycle counts, metrics and snapshots
    are byte-identical at any Domain count. Falls back to the sequential
    driver for single-program runs and whenever the engine has trace
    observers attached ({!Gem_sim.Engine.observing}). *)

val finish_time : t -> Gem_sim.Time.cycles
(** Max finish time over cores. *)
