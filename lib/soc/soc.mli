(** An elaborated SoC: cores (CPU + accelerator + TLBs + page table) wired
    to a shared L2, a shared DRAM channel, and — in functional mode — a
    shared physical main memory.

    All DMA and page-table-walk traffic flows through the shared L2 and
    DRAM bandwidth models, so multi-core contention (Fig. 9) and
    translation overheads (Fig. 4 / Fig. 8) are emergent rather than
    scripted. *)

type t

type core

val create : Soc_config.t -> t
(** Elaborates the SoC around a single {!Gem_sim.Engine}: every timed
    component (L2 port, DRAM channel, per-core pipelines, DMA links,
    PTWs) registers in its resource registry, so one registry describes
    the whole chip. *)

val engine : t -> Gem_sim.Engine.t
(** The chip-wide simulation context; [Gem_sim.Engine.stats] /
    [utilization_table] give the per-component profile. *)

val config : t -> Soc_config.t
val cores : t -> core array
val core : t -> int -> core
val l2 : t -> Gem_mem.Cache.t
val dram : t -> Gem_mem.Dram.t
val mainmem : t -> Gem_mem.Mainmem.t option

(* Core accessors *)

val core_id : core -> int
val cpu : core -> Gem_cpu.Cpu_model.kind
val controller : core -> Gemmini.Controller.t
val tlb : core -> Gem_vm.Hierarchy.t
val page_table : core -> Gem_vm.Page_table.t

val alloc : t -> core -> bytes:int -> int
(** Allocates [bytes] of page-aligned virtual memory in the core's address
    space, backed by fresh physical pages (mapped in the page table).
    Returns the virtual address. *)

(* Host-side (zero-simulated-cost) data access, functional mode only. *)

val host_write_i8 : t -> core -> vaddr:int -> int array -> unit
val host_read_i8 : t -> core -> vaddr:int -> n:int -> int array
val host_write_i32 : t -> core -> vaddr:int -> int array -> unit
val host_read_i32 : t -> core -> vaddr:int -> n:int -> int array

(** Programs: per-core streams of accelerator commands, host work, and
    bookkeeping markers. *)
type op =
  | Insn of Gemmini.Isa.t
  | Host_work of { cycles : int; tag : string }
  | Marker of (core -> unit)
      (** executed (zero cost) when the core reaches this point *)

val run_program : t -> core -> op Seq.t -> Gem_sim.Time.cycles
(** Runs a single core's program to completion; returns its finish time. *)

val run_parallel : t -> op Seq.t array -> Gem_sim.Time.cycles array
(** Runs one program per core, interleaved in simulated-time order (the
    core whose issue cursor is earliest executes next), so shared-resource
    contention is interleaving-accurate. Returns per-core finish times. *)

val finish_time : t -> Gem_sim.Time.cycles
(** Max finish time over cores. *)
