type core_config = {
  cpu : Gem_cpu.Cpu_model.kind;
  accel : Gemmini.Params.t;
  tlb : Gem_vm.Hierarchy.config;
}

type t = {
  cores : core_config list;
  l2_size_bytes : int;
  l2_ways : int;
  l2_line_bytes : int;
  l2_hit_latency : Gem_sim.Time.cycles;
  l2_port_bytes : int;
  dram_latency : Gem_sim.Time.cycles;
  dram_bytes_per_cycle : int;
  functional : bool;
}

let default_core =
  {
    cpu = Gem_cpu.Cpu_model.Rocket;
    accel = Gemmini.Params.default;
    (* A general-purpose default: 16-entry private TLB with filter
       registers plus a 512-entry shared L2 TLB. The paper's recommended
       minimal point (4-entry private, no shared) is the Fig. 8 case-study
       subject and is swept there explicitly; page-strided weight streams
       of FC/attention layers want the larger second level. *)
    tlb =
      {
        Gem_vm.Hierarchy.default_config with
        private_entries = 16;
        shared_entries = 512;
      };
  }

let default =
  {
    cores = [ default_core ];
    l2_size_bytes = 1024 * 1024;
    l2_ways = 16;
    l2_line_bytes = 64;
    l2_hit_latency = 20;
    l2_port_bytes = 32;
    dram_latency = 110;
    dram_bytes_per_cycle = 16;
    functional = false;
  }

let dual_core = { default with cores = [ default_core; default_core ] }

let with_cores cores t = { t with cores }
let with_l2_size l2_size_bytes t = { t with l2_size_bytes }
let with_functional functional t = { t with functional }

let map_accel f t =
  { t with cores = List.map (fun c -> { c with accel = f c.accel }) t.cores }

let map_tlb f t =
  { t with cores = List.map (fun c -> { c with tlb = f c.tlb }) t.cores }

let validate t =
  let errors = ref [] in
  let check cond msg = if not cond then errors := msg :: !errors in
  check (t.cores <> []) "SoC needs at least one core";
  List.iteri
    (fun i c ->
      match Gemmini.Params.validate c.accel with
      | Ok () -> ()
      | Error errs ->
          errors :=
            Printf.sprintf "core %d accelerator: %s" i (String.concat "; " errs)
            :: !errors)
    t.cores;
  check (t.l2_size_bytes > 0 && t.l2_ways > 0) "L2 geometry must be positive";
  check
    (t.l2_size_bytes mod (t.l2_ways * t.l2_line_bytes) = 0)
    "L2 size must divide into ways x lines";
  check (t.l2_port_bytes > 0) "L2 port width must be positive";
  check (t.dram_bytes_per_cycle > 0) "DRAM bandwidth must be positive";
  check (t.dram_latency >= 0) "DRAM latency must be non-negative";
  match !errors with [] -> Ok () | errs -> Error (List.rev errs)

let describe t =
  Printf.sprintf "%d core(s), L2 %s %d-way, DRAM %d cyc / %d B-per-cyc%s"
    (List.length t.cores)
    (Gem_util.Table.fmt_bytes t.l2_size_bytes)
    t.l2_ways t.dram_latency t.dram_bytes_per_cycle
    (if t.functional then ", functional" else "")
