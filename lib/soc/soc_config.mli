(** SoC-level generator parameters (paper Section III-C / Fig. 5).

    An SoC instance is one or more cores — each a host CPU paired with a
    Gemmini-generated accelerator and its private TLB hierarchy — sharing
    an L2 cache, a system bus, and a DRAM channel. The Fig. 9 case study
    is expressed entirely in these knobs: Base / BigSP / BigL2 x
    single-core / dual-core. *)

type core_config = {
  cpu : Gem_cpu.Cpu_model.kind;
  accel : Gemmini.Params.t;
  tlb : Gem_vm.Hierarchy.config;
}

type t = {
  cores : core_config list;
  l2_size_bytes : int;
  l2_ways : int;
  l2_line_bytes : int;
  l2_hit_latency : Gem_sim.Time.cycles;
  l2_port_bytes : int;  (** L2 bandwidth per cycle, shared by all cores *)
  dram_latency : Gem_sim.Time.cycles;
  dram_bytes_per_cycle : int;
  functional : bool;  (** move real data (small workloads only) *)
}

val default_core : core_config
(** Rocket host + the paper's default 16x16 accelerator + the recommended
    4-entry private TLB with filter registers. *)

val default : t
(** Single default core, 1 MB / 16-way / 64 B shared L2 (20-cycle hit),
    32 B/cycle L2 port, DRAM 80 cycles / 16 B/cycle, timing-only. *)

val dual_core : t
(** Two default cores sharing the default memory system (Fig. 5). *)

val with_cores : core_config list -> t -> t
val with_l2_size : int -> t -> t
val with_functional : bool -> t -> t

val map_accel : (Gemmini.Params.t -> Gemmini.Params.t) -> t -> t
(** Applies a parameter change to every core's accelerator. *)

val map_tlb : (Gem_vm.Hierarchy.config -> Gem_vm.Hierarchy.config) -> t -> t

val validate : t -> (unit, string list) result
val describe : t -> string
