type conv_spec = {
  in_h : int;
  in_w : int;
  in_ch : int;
  out_ch : int;
  kernel : int;
  stride : int;
  padding : int;
  relu : bool;
  depthwise : bool;
}

type matmul_spec = { m : int; k : int; n : int; relu : bool; count : int }

type pool_spec = {
  p_in_h : int;
  p_in_w : int;
  p_ch : int;
  window : int;
  p_stride : int;
  p_padding : int;
}

type t =
  | Conv of conv_spec
  | Matmul of matmul_spec
  | Residual_add of { r_h : int; r_w : int; r_ch : int; back1 : int; back2 : int }
  | Max_pool of pool_spec
  | Global_avg_pool of { g_h : int; g_w : int; g_ch : int }
  | Elementwise of { e_elems : int; e_name : string }

type klass =
  | Class_conv
  | Class_depthwise
  | Class_matmul
  | Class_resadd
  | Class_pool
  | Class_elementwise

let class_of = function
  | Conv { depthwise = true; _ } -> Class_depthwise
  | Conv _ -> Class_conv
  | Matmul _ -> Class_matmul
  | Residual_add _ -> Class_resadd
  | Max_pool _ | Global_avg_pool _ -> Class_pool
  | Elementwise _ -> Class_elementwise

let class_name = function
  | Class_conv -> "conv"
  | Class_depthwise -> "depthwise"
  | Class_matmul -> "matmul"
  | Class_resadd -> "resadd"
  | Class_pool -> "pool"
  | Class_elementwise -> "elementwise"

let conv_out_dims c =
  let out d = ((d + (2 * c.padding) - c.kernel) / c.stride) + 1 in
  (out c.in_h, out c.in_w)

let macs = function
  | Conv c ->
      let oh, ow = conv_out_dims c in
      if c.depthwise then oh * ow * c.in_ch * c.kernel * c.kernel
      else oh * ow * c.out_ch * c.in_ch * c.kernel * c.kernel
  | Matmul m -> m.m * m.k * m.n * m.count
  | Residual_add _ | Max_pool _ | Global_avg_pool _ | Elementwise _ -> 0

let weight_bytes = function
  | Conv c ->
      if c.depthwise then c.in_ch * c.kernel * c.kernel
      else c.out_ch * c.in_ch * c.kernel * c.kernel
  | Matmul m -> m.k * m.n
  | Residual_add _ | Max_pool _ | Global_avg_pool _ | Elementwise _ -> 0

let in_bytes = function
  | Conv c -> c.in_h * c.in_w * c.in_ch
  | Matmul m -> m.m * m.k * m.count
  | Residual_add { r_h; r_w; r_ch; _ } -> 2 * r_h * r_w * r_ch
  | Max_pool p -> p.p_in_h * p.p_in_w * p.p_ch
  | Global_avg_pool { g_h; g_w; g_ch } -> g_h * g_w * g_ch
  | Elementwise { e_elems; _ } -> e_elems

let out_bytes = function
  | Conv c ->
      let oh, ow = conv_out_dims c in
      oh * ow * c.out_ch
  | Matmul m -> m.m * m.n * m.count
  | Residual_add { r_h; r_w; r_ch; _ } -> r_h * r_w * r_ch
  | Max_pool p ->
      let out d = ((d + (2 * p.p_padding) - p.window) / p.p_stride) + 1 in
      out p.p_in_h * out p.p_in_w * p.p_ch
  | Global_avg_pool { g_ch; _ } -> g_ch
  | Elementwise { e_elems; _ } -> e_elems

let as_matmul = function
  | Conv c ->
      let oh, ow = conv_out_dims c in
      if c.depthwise then
        Some { m = oh * ow; k = c.kernel * c.kernel; n = 1; relu = c.relu; count = c.in_ch }
      else
        Some
          {
            m = oh * ow;
            k = c.kernel * c.kernel * c.in_ch;
            n = c.out_ch;
            relu = c.relu;
            count = 1;
          }
  | Matmul m -> Some m
  | Residual_add _ | Max_pool _ | Global_avg_pool _ | Elementwise _ -> None

let describe = function
  | Conv c ->
      let oh, ow = conv_out_dims c in
      Printf.sprintf "%s %dx%d/%d %d->%d (%dx%d -> %dx%d)%s"
        (if c.depthwise then "dwconv" else "conv")
        c.kernel c.kernel c.stride c.in_ch c.out_ch c.in_h c.in_w oh ow
        (if c.relu then " relu" else "")
  | Matmul m ->
      Printf.sprintf "matmul %dx%dx%d%s%s" m.m m.k m.n
        (if m.count > 1 then Printf.sprintf " x%d" m.count else "")
        (if m.relu then " relu" else "")
  | Residual_add { r_h; r_w; r_ch; back1; back2 } ->
      Printf.sprintf "resadd %dx%dx%d (operands -%d, -%d)" r_h r_w r_ch back1 back2
  | Max_pool p ->
      Printf.sprintf "maxpool %dx%d/%d on %dx%dx%d" p.window p.window p.p_stride
        p.p_in_h p.p_in_w p.p_ch
  | Global_avg_pool { g_h; g_w; g_ch } ->
      Printf.sprintf "gap %dx%dx%d" g_h g_w g_ch
  | Elementwise { e_elems; e_name } -> Printf.sprintf "%s (%d elems)" e_name e_elems

type model = { model_name : string; input_desc : string; layers : (string * t) list }

let total_macs m = Gem_util.Mathx.sum_list (List.map (fun (_, l) -> macs l) m.layers)

let total_weight_bytes m =
  Gem_util.Mathx.sum_list (List.map (fun (_, l) -> weight_bytes l) m.layers)

let layer_count m = List.length m.layers

let macs_by_class m =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (_, l) ->
      let k = class_of l in
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k (prev + macs l))
    m.layers;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
