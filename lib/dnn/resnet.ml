(* ResNet50 (v1.5 bottleneck placement: the stride lives on the 3x3).
   224x224x3 input, 1000-class head; ~4.1 GMACs, ~25M weights. *)

open Layer

let conv ~h ~w ~in_ch ~out_ch ~kernel ~stride ~padding ?(relu = true) () =
  Conv
    {
      in_h = h;
      in_w = w;
      in_ch;
      out_ch;
      kernel;
      stride;
      padding;
      relu;
      depthwise = false;
    }

(* One bottleneck block: 1x1 reduce, 3x3 (carries the stride), 1x1 expand,
   plus a projection shortcut on the first block of each stage. *)
let bottleneck ~stage ~index ~h ~in_ch ~mid ~stride =
  let out_ch = 4 * mid in
  let oh = h / stride in
  let name part = Printf.sprintf "conv%d_%d_%s" stage index part in
  let main =
    [
      (name "1x1a", conv ~h ~w:h ~in_ch ~out_ch:mid ~kernel:1 ~stride:1 ~padding:0 ());
      (name "3x3", conv ~h ~w:h ~in_ch:mid ~out_ch:mid ~kernel:3 ~stride ~padding:1 ());
      ( name "1x1b",
        conv ~h:oh ~w:oh ~in_ch:mid ~out_ch ~kernel:1 ~stride:1 ~padding:0
          ~relu:false () );
    ]
  in
  let shortcut =
    if index = 1 then
      [
        ( name "proj",
          conv ~h ~w:h ~in_ch ~out_ch ~kernel:1 ~stride ~padding:0 ~relu:false () );
      ]
    else []
  in
  let add =
    let back1, back2 = if index = 1 then (1, 2) else (1, 4) in
    [ (name "add", Residual_add { r_h = oh; r_w = oh; r_ch = out_ch; back1; back2 }) ]
  in
  (main @ shortcut @ add, oh, out_ch)

let stage ~stage:s ~blocks ~h ~in_ch ~mid ~stride =
  let rec go index h in_ch acc =
    if index > blocks then (List.rev acc, h, 4 * mid)
    else begin
      let stride = if index = 1 then stride else 1 in
      let layers, oh, out_ch = bottleneck ~stage:s ~index ~h ~in_ch ~mid ~stride in
      go (index + 1) oh out_ch (List.rev_append layers acc)
    end
  in
  go 1 h in_ch []

let model : Layer.model =
  let l1 =
    [
      ( "conv1",
        conv ~h:224 ~w:224 ~in_ch:3 ~out_ch:64 ~kernel:7 ~stride:2 ~padding:3 () );
      ( "pool1",
        Max_pool
          { p_in_h = 112; p_in_w = 112; p_ch = 64; window = 3; p_stride = 2; p_padding = 1 } );
    ]
  in
  let s2, h, c = stage ~stage:2 ~blocks:3 ~h:56 ~in_ch:64 ~mid:64 ~stride:1 in
  let s3, h, c = stage ~stage:3 ~blocks:4 ~h ~in_ch:c ~mid:128 ~stride:2 in
  let s4, h, c = stage ~stage:4 ~blocks:6 ~h ~in_ch:c ~mid:256 ~stride:2 in
  let s5, h, c = stage ~stage:5 ~blocks:3 ~h ~in_ch:c ~mid:512 ~stride:2 in
  let head =
    [
      ("gap", Global_avg_pool { g_h = h; g_w = h; g_ch = c });
      ("fc1000", Matmul { m = 1; k = c; n = 1000; relu = false; count = 1 });
    ]
  in
  {
    model_name = "resnet50";
    input_desc = "224x224x3";
    layers = l1 @ s2 @ s3 @ s4 @ s5 @ head;
  }
