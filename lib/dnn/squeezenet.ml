(* SqueezeNet v1.1 (224x224x3): fire modules (1x1 squeeze feeding parallel
   1x1 and 3x3 expands); ~0.35 GMACs, 1.2M weights. The paper singles it
   out as "designed to be run efficiently on modern CPUs", hence its
   smaller accelerator speedup (1,760x). *)

open Layer

let conv ~h ~in_ch ~out_ch ~kernel ~stride ~padding =
  Conv
    {
      in_h = h;
      in_w = h;
      in_ch;
      out_ch;
      kernel;
      stride;
      padding;
      relu = true;
      depthwise = false;
    }

let fire ~name ~h ~in_ch ~squeeze ~expand =
  [
    (name ^ "_squeeze1x1", conv ~h ~in_ch ~out_ch:squeeze ~kernel:1 ~stride:1 ~padding:0);
    (name ^ "_expand1x1", conv ~h ~in_ch:squeeze ~out_ch:expand ~kernel:1 ~stride:1 ~padding:0);
    (name ^ "_expand3x3", conv ~h ~in_ch:squeeze ~out_ch:expand ~kernel:3 ~stride:1 ~padding:1);
  ]

let maxpool ~name ~h ~ch =
  [ (name, Max_pool { p_in_h = h; p_in_w = h; p_ch = ch; window = 3; p_stride = 2; p_padding = 0 }) ]

let model : Layer.model =
  {
    model_name = "squeezenet1.1";
    input_desc = "224x224x3";
    layers =
      [ ("conv1", conv ~h:224 ~in_ch:3 ~out_ch:64 ~kernel:3 ~stride:2 ~padding:0) ]
      @ maxpool ~name:"pool1" ~h:111 ~ch:64
      @ fire ~name:"fire2" ~h:55 ~in_ch:64 ~squeeze:16 ~expand:64
      @ fire ~name:"fire3" ~h:55 ~in_ch:128 ~squeeze:16 ~expand:64
      @ maxpool ~name:"pool3" ~h:55 ~ch:128
      @ fire ~name:"fire4" ~h:27 ~in_ch:128 ~squeeze:32 ~expand:128
      @ fire ~name:"fire5" ~h:27 ~in_ch:256 ~squeeze:32 ~expand:128
      @ maxpool ~name:"pool5" ~h:27 ~ch:256
      @ fire ~name:"fire6" ~h:13 ~in_ch:256 ~squeeze:48 ~expand:192
      @ fire ~name:"fire7" ~h:13 ~in_ch:384 ~squeeze:48 ~expand:192
      @ fire ~name:"fire8" ~h:13 ~in_ch:384 ~squeeze:64 ~expand:256
      @ fire ~name:"fire9" ~h:13 ~in_ch:512 ~squeeze:64 ~expand:256
      @ [
          ("conv10", conv ~h:13 ~in_ch:512 ~out_ch:1000 ~kernel:1 ~stride:1 ~padding:0);
          ("gap", Global_avg_pool { g_h = 13; g_w = 13; g_ch = 1000 });
        ];
  }
