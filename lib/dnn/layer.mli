(** Layer-level intermediate representation of DNN workloads.

    The evaluation networks (ResNet50, AlexNet, SqueezeNet v1.1,
    MobileNetV2, BERT) are described as sequences of these layers. The
    timing simulator consumes shapes only; the functional runtime also
    moves data for small instances. Layer classes matter because the
    paper's case studies differentiate them: convolutions (high reuse),
    matmuls (moderate reuse), residual additions (no reuse, cache-
    sensitive) — see Fig. 9. *)

type conv_spec = {
  in_h : int;
  in_w : int;
  in_ch : int;
  out_ch : int;
  kernel : int;
  stride : int;
  padding : int;
  relu : bool;
  depthwise : bool;  (** depthwise: one filter per channel, [out_ch = in_ch] *)
}

type matmul_spec = {
  m : int;
  k : int;
  n : int;
  relu : bool;
  count : int;  (** identical GEMMs batched (e.g. attention heads) *)
}

type pool_spec = {
  p_in_h : int;
  p_in_w : int;
  p_ch : int;
  window : int;
  p_stride : int;
  p_padding : int;
}

type t =
  | Conv of conv_spec
  | Matmul of matmul_spec
  | Residual_add of { r_h : int; r_w : int; r_ch : int; back1 : int; back2 : int }
      (** element-wise sum of the outputs of the layers [back1] and
          [back2] positions earlier in the sequence (1 = immediately
          preceding). The distance matters: far-back operands are the ones
          evicted from a small shared L2 (Fig. 9). *)
  | Max_pool of pool_spec
  | Global_avg_pool of { g_h : int; g_w : int; g_ch : int }
  | Elementwise of { e_elems : int; e_name : string }
      (** softmax, layernorm, GELU, quantize — host/peripheral ops *)

type klass = Class_conv | Class_depthwise | Class_matmul | Class_resadd | Class_pool | Class_elementwise

val class_of : t -> klass
val class_name : klass -> string

val conv_out_dims : conv_spec -> int * int
(** (out_h, out_w). *)

val macs : t -> int
(** Multiply-accumulates (0 for non-MAC layers). *)

val weight_bytes : t -> int
(** int8 weights (int32 bias excluded). *)

val in_bytes : t -> int
val out_bytes : t -> int

val as_matmul : t -> matmul_spec option
(** The GEMM a layer lowers to on the accelerator: convs lower via im2col
    ([m] = out pixels, [k] = kernel^2*in_ch, [n] = out_ch); depthwise convs
    lower per-channel ([count = channels], [k] = kernel^2, [n] = 1).
    [None] for non-MAC layers. *)

val describe : t -> string

type model = { model_name : string; input_desc : string; layers : (string * t) list }

val total_macs : model -> int
val total_weight_bytes : model -> int
val layer_count : model -> int
val macs_by_class : model -> (klass * int) list
