(** The five networks of the paper's evaluation (Section IV-A), plus a
    scaling hook for fast tests. *)

val resnet50 : Layer.model
val alexnet : Layer.model
val squeezenet : Layer.model
val mobilenetv2 : Layer.model
val bert : Layer.model
(** BERT-base at sequence length 128. *)

val bert_with_seq : int -> Layer.model

val all : Layer.model list

val find : string -> Layer.model option
(** Case-insensitive lookup by exact name, falling back to an unambiguous
    prefix ("mobilenet" finds mobilenetv2). *)

val names : string list

val scale_model : factor:int -> Layer.model -> Layer.model
(** Shrinks every layer's channel/feature dimensions by [factor] (keeping
    spatial structure), for fast experiment-shaped tests. MAC-less layers
    scale their element counts. *)

val summary_table : unit -> Gem_util.Table.t
(** Name / layers / MACs / weights for all models. *)
