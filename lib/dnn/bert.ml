(* BERT-base encoder (12 layers, hidden 768, 12 heads, FFN 3072), run at a
   sequence length of 128. All MAC work is GEMM; softmax/layernorm/GELU
   appear as elementwise layers (host or peripheral work). *)

open Layer

let hidden = 768
let heads = 12
let head_dim = hidden / heads
let ffn = 3072

let encoder_layer ~seq i =
  let n = Printf.sprintf "layer%d_" i in
  [
    (n ^ "q_proj", Matmul { m = seq; k = hidden; n = hidden; relu = false; count = 1 });
    (n ^ "k_proj", Matmul { m = seq; k = hidden; n = hidden; relu = false; count = 1 });
    (n ^ "v_proj", Matmul { m = seq; k = hidden; n = hidden; relu = false; count = 1 });
    ( n ^ "attn_scores",
      Matmul { m = seq; k = head_dim; n = seq; relu = false; count = heads } );
    (n ^ "softmax", Elementwise { e_elems = heads * seq * seq; e_name = "softmax" });
    ( n ^ "attn_context",
      Matmul { m = seq; k = seq; n = head_dim; relu = false; count = heads } );
    (n ^ "out_proj", Matmul { m = seq; k = hidden; n = hidden; relu = false; count = 1 });
    (n ^ "add1", Elementwise { e_elems = seq * hidden; e_name = "residual" });
    (n ^ "ln1", Elementwise { e_elems = seq * hidden; e_name = "layernorm" });
    (n ^ "ffn_up", Matmul { m = seq; k = hidden; n = ffn; relu = false; count = 1 });
    (n ^ "gelu", Elementwise { e_elems = seq * ffn; e_name = "gelu" });
    (n ^ "ffn_down", Matmul { m = seq; k = ffn; n = hidden; relu = false; count = 1 });
    (n ^ "add2", Elementwise { e_elems = seq * hidden; e_name = "residual" });
    (n ^ "ln2", Elementwise { e_elems = seq * hidden; e_name = "layernorm" });
  ]

let model_with_seq seq : Layer.model =
  {
    model_name = Printf.sprintf "bert-base-seq%d" seq;
    input_desc = Printf.sprintf "seq %d, hidden %d" seq hidden;
    layers =
      List.concat (List.init 12 (fun i -> encoder_layer ~seq (i + 1)))
      @ [ ("pooler", Matmul { m = 1; k = hidden; n = hidden; relu = false; count = 1 }) ];
  }

let model : Layer.model = model_with_seq 128
