(* AlexNet (single-tower, 224x224x3 input): 5 convolutions, 3 max-pools,
   3 fully-connected layers; ~0.7 GMACs, ~61M weights (FC-heavy). *)

open Layer

let conv ~h ~w ~in_ch ~out_ch ~kernel ~stride ~padding =
  Conv
    { in_h = h; in_w = w; in_ch; out_ch; kernel; stride; padding; relu = true; depthwise = false }

let model : Layer.model =
  {
    model_name = "alexnet";
    input_desc = "224x224x3";
    layers =
      [
        ("conv1", conv ~h:224 ~w:224 ~in_ch:3 ~out_ch:64 ~kernel:11 ~stride:4 ~padding:2);
        ( "pool1",
          Max_pool { p_in_h = 55; p_in_w = 55; p_ch = 64; window = 3; p_stride = 2; p_padding = 0 } );
        ("conv2", conv ~h:27 ~w:27 ~in_ch:64 ~out_ch:192 ~kernel:5 ~stride:1 ~padding:2);
        ( "pool2",
          Max_pool { p_in_h = 27; p_in_w = 27; p_ch = 192; window = 3; p_stride = 2; p_padding = 0 } );
        ("conv3", conv ~h:13 ~w:13 ~in_ch:192 ~out_ch:384 ~kernel:3 ~stride:1 ~padding:1);
        ("conv4", conv ~h:13 ~w:13 ~in_ch:384 ~out_ch:256 ~kernel:3 ~stride:1 ~padding:1);
        ("conv5", conv ~h:13 ~w:13 ~in_ch:256 ~out_ch:256 ~kernel:3 ~stride:1 ~padding:1);
        ( "pool5",
          Max_pool { p_in_h = 13; p_in_w = 13; p_ch = 256; window = 3; p_stride = 2; p_padding = 0 } );
        ("fc6", Matmul { m = 1; k = 9216; n = 4096; relu = true; count = 1 });
        ("fc7", Matmul { m = 1; k = 4096; n = 4096; relu = true; count = 1 });
        ("fc8", Matmul { m = 1; k = 4096; n = 1000; relu = false; count = 1 });
      ];
  }
