(* MobileNetV2 (224x224x3): inverted residual blocks with depthwise
   convolutions; ~0.3 GMACs. The depthwise layers have out_ch = 1 per
   channel group, which maps poorly onto a wide spatial array — the reason
   the paper reports only a 127x speedup for this network. *)

open Layer

let conv ~h ~in_ch ~out_ch ~kernel ~stride ~padding ?(relu = true) ?(depthwise = false) () =
  Conv { in_h = h; in_w = h; in_ch; out_ch; kernel; stride; padding; relu; depthwise }

(* Inverted residual: 1x1 expand (xt), 3x3 depthwise (stride s), 1x1
   linear project; residual add when the block preserves shape. *)
let inverted_residual ~name ~h ~in_ch ~expansion ~out_ch ~stride =
  let mid = in_ch * expansion in
  let oh = h / stride in
  let expand =
    if expansion = 1 then []
    else
      [ (name ^ "_expand", conv ~h ~in_ch ~out_ch:mid ~kernel:1 ~stride:1 ~padding:0 ()) ]
  in
  let body =
    [
      ( name ^ "_dw",
        conv ~h ~in_ch:mid ~out_ch:mid ~kernel:3 ~stride ~padding:1 ~depthwise:true () );
      ( name ^ "_project",
        conv ~h:oh ~in_ch:mid ~out_ch ~kernel:1 ~stride:1 ~padding:0 ~relu:false () );
    ]
  in
  let add =
    if stride = 1 && in_ch = out_ch then
      [
        ( name ^ "_add",
          Residual_add
            {
              r_h = oh;
              r_w = oh;
              r_ch = out_ch;
              back1 = 1;
              back2 = (if expansion = 1 then 3 else 4);
            } );
      ]
    else []
  in
  (expand @ body @ add, oh, out_ch)

(* (expansion, out channels, repeats, first stride) per the paper's Table 2. *)
let block_table =
  [ (1, 16, 1, 1); (6, 24, 2, 2); (6, 32, 3, 2); (6, 64, 4, 2); (6, 96, 3, 1); (6, 160, 3, 2); (6, 320, 1, 1) ]

let model : Layer.model =
  let layers = ref [ ("conv1", conv ~h:224 ~in_ch:3 ~out_ch:32 ~kernel:3 ~stride:2 ~padding:1 ()) ] in
  let h = ref 112 and ch = ref 32 in
  List.iteri
    (fun bi (expansion, out_ch, repeats, stride) ->
      for r = 1 to repeats do
        let name = Printf.sprintf "block%d_%d" (bi + 1) r in
        let stride = if r = 1 then stride else 1 in
        let ls, oh, oc =
          inverted_residual ~name ~h:!h ~in_ch:!ch ~expansion ~out_ch ~stride
        in
        layers := !layers @ ls;
        h := oh;
        ch := oc
      done)
    block_table;
  let tail =
    [
      ("conv_last", conv ~h:!h ~in_ch:!ch ~out_ch:1280 ~kernel:1 ~stride:1 ~padding:0 ());
      ("gap", Global_avg_pool { g_h = !h; g_w = !h; g_ch = 1280 });
      ("fc", Matmul { m = 1; k = 1280; n = 1000; relu = false; count = 1 });
    ]
  in
  { model_name = "mobilenetv2"; input_desc = "224x224x3"; layers = !layers @ tail }
