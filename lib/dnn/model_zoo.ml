open Layer

let resnet50 = Resnet.model
let alexnet = Alexnet.model
let squeezenet = Squeezenet.model
let mobilenetv2 = Mobilenet.model
let bert = Bert.model
let bert_with_seq = Bert.model_with_seq

let all = [ resnet50; alexnet; squeezenet; mobilenetv2; bert ]

let names = List.map (fun m -> m.model_name) all

let find name =
  let want = String.lowercase_ascii name in
  let lname m = String.lowercase_ascii m.model_name in
  match List.find_opt (fun m -> lname m = want) all with
  | Some m -> Some m
  | None -> (
      (* Accept an unambiguous prefix ("mobilenet" -> mobilenetv2). *)
      match List.filter (fun m -> String.starts_with ~prefix:want (lname m)) all with
      | [ m ] -> Some m
      | _ -> None)

let scale_dim factor d = max 1 (d / factor)

let scale_layer factor l =
  let s = scale_dim factor in
  match l with
  | Conv c ->
      Conv
        {
          c with
          in_ch = (if c.in_ch <= 4 then c.in_ch else s c.in_ch);
          out_ch = s c.out_ch;
        }
  | Matmul m -> Matmul { m with k = s m.k; n = s m.n }
  | Residual_add r -> Residual_add { r with r_ch = s r.r_ch }
  | Max_pool p -> Max_pool { p with p_ch = s p.p_ch }
  | Global_avg_pool { g_h; g_w; g_ch } -> Global_avg_pool { g_h; g_w; g_ch = s g_ch }
  | Elementwise e -> Elementwise { e with e_elems = s e.e_elems }

let scale_model ~factor m =
  if factor <= 0 then invalid_arg "Model_zoo.scale_model: non-positive factor";
  if factor = 1 then m
  else
    {
      m with
      model_name = Printf.sprintf "%s/%d" m.model_name factor;
      layers = List.map (fun (n, l) -> (n, scale_layer factor l)) m.layers;
    }

let summary_table () =
  let open Gem_util in
  let t = Table.create ~title:"Model zoo" [ "Model"; "Layers"; "MACs"; "Weights" ] in
  Table.set_align t 1 Table.Right;
  Table.set_align t 2 Table.Right;
  Table.set_align t 3 Table.Right;
  List.iter
    (fun m ->
      Table.add_row t
        [
          m.model_name;
          string_of_int (layer_count m);
          Table.fmt_int (total_macs m);
          Table.fmt_bytes (total_weight_bytes m);
        ])
    all;
  t
