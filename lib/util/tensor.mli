(** Dense n-dimensional integer tensors (row-major).

    Functional DNN data: activations are NHWC, convolution weights are
    [kh][kw][in_ch][out_ch] — the layouts Gemmini's software stack uses so
    that innermost dimensions are contiguous for DMA. *)

type t

val create : int array -> t
(** Zero-filled tensor with the given shape. *)

val init : int array -> (int array -> int) -> t
(** [init shape f] calls [f index] for every position. *)

val shape : t -> int array
val rank : t -> int
val num_elems : t -> int

val get : t -> int array -> int
val set : t -> int array -> int -> unit

val get4 : t -> int -> int -> int -> int -> int
(** Unchecked-rank fast path for rank-4 tensors. *)

val set4 : t -> int -> int -> int -> int -> int -> unit

val data : t -> int array
(** The underlying flat row-major array (not a copy). *)

val of_matrix : Matrix.t -> t
val to_matrix : t -> Matrix.t
(** Rank-2 only. *)

val reshape : t -> int array -> t
(** Shares data; element count must match. *)

val map : (int -> int) -> t -> t
val equal : t -> t -> bool
val random : Rng.t -> int array -> lo:int -> hi:int -> t
val fill : t -> int -> unit
