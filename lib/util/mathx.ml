let ceil_div a b =
  if b <= 0 then invalid_arg "Mathx.ceil_div: non-positive divisor";
  if a < 0 then invalid_arg "Mathx.ceil_div: negative dividend";
  (a + b - 1) / b

let round_up a b = ceil_div a b * b

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2_ceil n =
  if n < 1 then invalid_arg "Mathx.log2_ceil";
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

let log2_exact n =
  if not (is_pow2 n) then invalid_arg "Mathx.log2_exact: not a power of two";
  log2_ceil n

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let clamp_f ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let imin3 a b c = min a (min b c)
let imax3 a b c = max a (max b c)

let sum_list = List.fold_left ( + ) 0
let sum_listf = List.fold_left ( +. ) 0.

let pct part whole = if whole = 0. then 0. else 100. *. part /. whole

let ratio a b = if b = 0. then 0. else a /. b
