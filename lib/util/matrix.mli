(** Dense integer matrices — reference semantics for the spatial array.

    The functional simulator's golden model: plain row-major [int array
    array] matrices with exact (arbitrary-precision within OCaml int)
    arithmetic, plus saturating variants matching the hardware datapath. *)

type t = int array array

val create : rows:int -> cols:int -> t
val init : rows:int -> cols:int -> (int -> int -> int) -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> int
val set : t -> int -> int -> int -> unit
val copy : t -> t
val equal : t -> t -> bool
val transpose : t -> t

val mul : t -> t -> t
(** Plain matrix product; dimensions must agree. *)

val mul_sat32 : t -> t -> t
(** Product with int32-saturating accumulation — the accumulator
    semantics of an integer Gemmini instance. *)

val add : t -> t -> t
val add_sat32 : t -> t -> t
val map : (int -> int) -> t -> t
val random : Rng.t -> rows:int -> cols:int -> lo:int -> hi:int -> t
val of_lists : int list list -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
