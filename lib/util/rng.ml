type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next_int64 t in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Keep 62 random bits so the conversion to OCaml's 63-bit int stays
     non-negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. r /. 9007199254740992. (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let state t = t.state
let set_state t s = t.state <- s

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
