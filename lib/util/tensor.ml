type t = { shape : int array; strides : int array; data : int array }

let compute_strides shape =
  let n = Array.length shape in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * shape.(i + 1)
  done;
  strides

let num_elems_of shape = Array.fold_left ( * ) 1 shape

let create shape =
  if Array.length shape = 0 then invalid_arg "Tensor.create: rank 0";
  Array.iter (fun d -> if d <= 0 then invalid_arg "Tensor.create: bad dim") shape;
  {
    shape = Array.copy shape;
    strides = compute_strides shape;
    data = Array.make (num_elems_of shape) 0;
  }

let shape t = Array.copy t.shape
let rank t = Array.length t.shape
let num_elems t = Array.length t.data

let offset t idx =
  if Array.length idx <> Array.length t.shape then
    invalid_arg "Tensor: index rank mismatch";
  let off = ref 0 in
  Array.iteri
    (fun i x ->
      if x < 0 || x >= t.shape.(i) then invalid_arg "Tensor: index out of range";
      off := !off + (x * t.strides.(i)))
    idx;
  !off

let get t idx = t.data.(offset t idx)
let set t idx v = t.data.(offset t idx) <- v

let init shape f =
  let t = create shape in
  let n = Array.length shape in
  let idx = Array.make n 0 in
  let total = num_elems t in
  for flat = 0 to total - 1 do
    let rem = ref flat in
    for i = 0 to n - 1 do
      idx.(i) <- !rem / t.strides.(i);
      rem := !rem mod t.strides.(i)
    done;
    t.data.(flat) <- f idx
  done;
  t

let get4 t a b c d =
  t.data.((a * t.strides.(0)) + (b * t.strides.(1)) + (c * t.strides.(2)) + d)

let set4 t a b c d v =
  t.data.((a * t.strides.(0)) + (b * t.strides.(1)) + (c * t.strides.(2)) + d) <- v

let data t = t.data

let of_matrix m =
  let rows = Matrix.rows m and cols = Matrix.cols m in
  init [| rows; cols |] (fun idx -> Matrix.get m idx.(0) idx.(1))

let to_matrix t =
  if rank t <> 2 then invalid_arg "Tensor.to_matrix: rank must be 2";
  Matrix.init ~rows:t.shape.(0) ~cols:t.shape.(1) (fun r c ->
      t.data.((r * t.strides.(0)) + c))

let reshape t shape =
  if num_elems_of shape <> num_elems t then
    invalid_arg "Tensor.reshape: element count mismatch";
  { shape = Array.copy shape; strides = compute_strides shape; data = t.data }

let map f t =
  { shape = Array.copy t.shape; strides = Array.copy t.strides; data = Array.map f t.data }

let equal a b = a.shape = b.shape && a.data = b.data

let random rng shape ~lo ~hi =
  let t = create shape in
  for i = 0 to num_elems t - 1 do
    t.data.(i) <- Rng.int_in rng ~lo ~hi
  done;
  t

let fill t v = Array.fill t.data 0 (Array.length t.data) v
