(** ASCII table rendering for benchmark and experiment output.

    The benchmark harness prints every reproduced paper table/figure as an
    aligned text table; this module centralizes the formatting. *)

type align = Left | Right

type t

val create : ?title:string -> string list -> t
(** [create ~title headers] starts a table with the given column headers.
    Columns default to left alignment; numeric-looking cells are still
    aligned per-column via {!set_align}. *)

val set_align : t -> int -> align -> unit
(** [set_align t col align] overrides the alignment of column [col]. *)

val add_row : t -> string list -> unit
(** Adds a row. Rows shorter than the header are padded with empty cells;
    longer rows raise [Invalid_argument]. *)

val add_sep : t -> unit
(** Adds a horizontal separator row. *)

val render : t -> string
(** Renders the table to a string (ends with a newline). *)

val print : t -> unit
(** [print t] writes [render t] to stdout. *)

(* Cell formatting helpers. *)

val fmt_int : int -> string
(** Thousands-separated integer, e.g. [12_345] -> ["12,345"]. *)

val fmt_f : ?dec:int -> float -> string
(** Fixed-point float with [dec] decimals (default 2). *)

val fmt_pct : ?dec:int -> float -> string
(** [fmt_pct x] renders [x] (already in percent) as ["12.3%"]. *)

val fmt_x : ?dec:int -> float -> string
(** Speedup factor, e.g. ["2670x"]. *)

val fmt_bytes : int -> string
(** Human-readable byte size: ["256 KB"], ["1 MB"], ... *)
