(** Saturating fixed-point arithmetic, as used by Gemmini's datapath.

    Gemmini's default integer configuration multiplies [int8] inputs into
    [int32] accumulators, then scales results back down to [int8] with a
    rounding right-shift (or a float multiplier) followed by saturation.
    These helpers implement that arithmetic exactly so the functional model
    is bit-faithful to the hardware semantics. *)

val int8_min : int
val int8_max : int
val int32_min : int
val int32_max : int

val sat8 : int -> int
(** Saturate to signed 8-bit range. *)

val sat32 : int -> int
(** Saturate to signed 32-bit range. *)

val is_int8 : int -> bool
val is_int32 : int -> bool

val mac32 : acc:int -> int -> int -> int
(** [mac32 ~acc a b] is [sat32 (acc + a*b)] — one PE multiply-accumulate. *)

val rounding_shift : int -> int -> int
(** [rounding_shift x s] divides [x] by [2^s] with round-half-to-even
    semantics matching Gemmini's hardware rounding. [s = 0] is identity;
    requires [s >= 0]. *)

val scale_and_sat8 : scale:float -> int -> int
(** Accumulator read-out path: multiply by [scale], round to nearest-even,
    saturate to int8. This mirrors [ACC_SCALE] in the Gemmini RTL. *)

val relu : int -> int
(** max(x, 0). *)

val relu6 : shift:int -> int -> int
(** Clamp to [0, 6 << shift] — Gemmini's ReLU6 takes the fixed-point
    position of "6" as a shift amount. *)
