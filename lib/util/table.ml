type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  headers : string list;
  ncols : int;
  mutable aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ?title headers =
  let ncols = List.length headers in
  if ncols = 0 then invalid_arg "Table.create: no columns";
  { title; headers; ncols; aligns = Array.make ncols Left; rows = [] }

let set_align t col align =
  if col < 0 || col >= t.ncols then invalid_arg "Table.set_align: bad column";
  t.aligns.(col) <- align

let add_row t cells =
  let n = List.length cells in
  if n > t.ncols then invalid_arg "Table.add_row: too many cells";
  let padded = cells @ List.init (t.ncols - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.make t.ncols 0 in
  let measure cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Sep -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let emit_cells ?(aligns = t.aligns) cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) c))
      cells;
    Buffer.add_string buf " |\n"
  in
  let emit_sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  emit_sep ();
  emit_cells ~aligns:(Array.make t.ncols Left) t.headers;
  emit_sep ();
  List.iter (function Cells c -> emit_cells c | Sep -> emit_sep ()) rows;
  emit_sep ();
  Buffer.contents buf

let print t = print_string (render t)

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_f ?(dec = 2) x = Printf.sprintf "%.*f" dec x

let fmt_pct ?(dec = 1) x = Printf.sprintf "%.*f%%" dec x

let fmt_x ?(dec = 1) x =
  if x >= 100. then Printf.sprintf "%.0fx" x else Printf.sprintf "%.*fx" dec x

let fmt_bytes n =
  if n >= 1 lsl 30 && n mod (1 lsl 30) = 0 then
    Printf.sprintf "%d GB" (n lsr 30)
  else if n >= 1 lsl 20 && n mod (1 lsl 20) = 0 then
    Printf.sprintf "%d MB" (n lsr 20)
  else if n >= 1 lsl 10 && n mod (1 lsl 10) = 0 then
    Printf.sprintf "%d KB" (n lsr 10)
  else Printf.sprintf "%d B" n
