type t = int array array

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dims";
  Array.make_matrix rows cols 0

let init ~rows ~cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.init: non-positive dims";
  Array.init rows (fun r -> Array.init cols (fun c -> f r c))

let rows m = Array.length m
let cols m = if Array.length m = 0 then 0 else Array.length m.(0)
let get m r c = m.(r).(c)
let set m r c v = m.(r).(c) <- v
let copy m = Array.map Array.copy m

let equal a b =
  rows a = rows b && cols a = cols b
  && begin
       let ok = ref true in
       for r = 0 to rows a - 1 do
         if a.(r) <> b.(r) then ok := false
       done;
       !ok
     end

let transpose m = init ~rows:(cols m) ~cols:(rows m) (fun r c -> m.(c).(r))

let mul_with ~accumulate a b =
  let n = rows a and k = cols a and p = cols b in
  if rows b <> k then invalid_arg "Matrix.mul: dimension mismatch";
  init ~rows:n ~cols:p (fun i j ->
      let acc = ref 0 in
      for x = 0 to k - 1 do
        acc := accumulate !acc a.(i).(x) b.(x).(j)
      done;
      !acc)

let mul = mul_with ~accumulate:(fun acc x y -> acc + (x * y))
let mul_sat32 = mul_with ~accumulate:(fun acc x y -> Fixed.mac32 ~acc x y)

let add_with f a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg "Matrix.add: dimension mismatch";
  init ~rows:(rows a) ~cols:(cols a) (fun r c -> f a.(r).(c) b.(r).(c))

let add = add_with ( + )
let add_sat32 = add_with (fun x y -> Fixed.sat32 (x + y))

let map f m = Array.map (Array.map f) m

let random rng ~rows ~cols ~lo ~hi =
  init ~rows ~cols (fun _ _ -> Rng.int_in rng ~lo ~hi)

let of_lists lists =
  match lists with
  | [] -> invalid_arg "Matrix.of_lists: empty"
  | first :: _ ->
      let c = List.length first in
      if c = 0 || List.exists (fun row -> List.length row <> c) lists then
        invalid_arg "Matrix.of_lists: ragged rows";
      Array.of_list (List.map Array.of_list lists)

let to_string m =
  let buf = Buffer.create 128 in
  Array.iter
    (fun row ->
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int v))
        row;
      Buffer.add_char buf '\n')
    m;
  Buffer.contents buf

let pp fmt m = Format.pp_print_string fmt (to_string m)
