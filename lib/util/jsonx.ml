type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- emitter ---------------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else
    let s = Printf.sprintf "%.17g" f in
    (* Keep a floatness marker so the value parses back as a Float. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec emit depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              indent (depth + 1)
            end;
            emit (depth + 1) item)
          items;
        if pretty then begin
          Buffer.add_char buf '\n';
          indent depth
        end;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              indent (depth + 1)
            end;
            escape_string buf k;
            Buffer.add_char buf ':';
            if pretty then Buffer.add_char buf ' ';
            emit (depth + 1) item)
          fields;
        if pretty then begin
          Buffer.add_char buf '\n';
          indent depth
        end;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* --- parser ----------------------------------------------------------------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* UTF-8 encode the code point (BMP only). *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | c -> fail (Printf.sprintf "bad escape %C" c));
          advance ();
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' ->
        (* [null] or our non-finite token [nan]. *)
        if !pos + 3 <= n && String.sub s !pos 3 = "nan" then begin
          pos := !pos + 3;
          Float Float.nan
        end
        else literal "null" Null
    | Some 'i' -> literal "inf" (Float Float.infinity)
    | Some '-' when !pos + 4 <= n && String.sub s !pos 4 = "-inf" ->
        pos := !pos + 4;
        Float Float.neg_infinity
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "offset %d: trailing garbage" !pos)
    else Ok v
  with Parse_error (off, msg) -> Error (Printf.sprintf "offset %d: %s" off msg)

(* --- accessors -------------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj o -> Some o | _ -> None
let to_str = function String s -> Some s | _ -> None
