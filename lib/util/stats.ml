module Running = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable mn : float;
    mutable mx : float;
    mutable total : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; mn = nan; mx = nan; total = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    t.total <- t.total +. x;
    if t.n = 1 then begin
      t.mn <- x;
      t.mx <- x
    end
    else begin
      if x < t.mn then t.mn <- x;
      if x > t.mx then t.mx <- x
    end

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.mn
  let max t = t.mx
  let total t = t.total

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      {
        n;
        mean;
        m2;
        mn = Stdlib.min a.mn b.mn;
        mx = Stdlib.max a.mx b.mx;
        total = a.total +. b.total;
      }
    end
end

module Counter = struct
  type t = { name : string; mutable value : int }

  let create name = { name; value = 0 }
  let name t = t.name
  let incr t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let get t = t.value
  let reset t = t.value <- 0
end

let hit_rate ~hits ~total =
  if total = 0 then 0. else float_of_int hits /. float_of_int total

module Histogram = struct
  type t = {
    counts : int array;
    range : float;
    mutable n : int;
    mutable raw_max : float;
  }

  type summary = { p50 : float; p95 : float; p99 : float; max : float }

  let create ~buckets ~range =
    if buckets <= 0 then invalid_arg "Histogram.create: buckets <= 0";
    if range <= 0. then invalid_arg "Histogram.create: range <= 0";
    { counts = Array.make buckets 0; range; n = 0; raw_max = nan }

  let bucket_of t x =
    let b = int_of_float (x /. t.range *. float_of_int (Array.length t.counts)) in
    Mathx.clamp ~lo:0 ~hi:(Array.length t.counts - 1) b

  let add t x =
    let b = bucket_of t x in
    t.counts.(b) <- t.counts.(b) + 1;
    if t.n = 0 || x > t.raw_max then t.raw_max <- x;
    t.n <- t.n + 1

  let bucket_counts t = Array.copy t.counts
  let count t = t.n
  let max t = t.raw_max

  (* Percentile state accumulates monotonically; a histogram reused across
     measurement runs (e.g. one serving scenario after another) must be
     reset in between or the summaries smear samples from both runs. *)
  let reset t =
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.n <- 0;
    t.raw_max <- nan

  let percentile t p =
    if t.n = 0 then nan
    else begin
      let target = p /. 100. *. float_of_int t.n in
      let buckets = Array.length t.counts in
      let width = t.range /. float_of_int buckets in
      let rec go i seen =
        if i >= buckets then t.range
        else
          let seen' = seen + t.counts.(i) in
          if float_of_int seen' >= target then (float_of_int i +. 0.5) *. width
          else go (i + 1) seen'
      in
      go 0 0
    end

  let summary t =
    {
      p50 = percentile t 50.;
      p95 = percentile t 95.;
      p99 = percentile t 99.;
      max = t.raw_max;
    }

  (* Bucket-wise sum: only meaningful when both histograms were built
     with the same geometry (per-core serving latency histograms are).
     raw_max needs the nan dance — an empty histogram's max is nan, and
     nan must lose to any real sample from the other side. *)
  let merge a b =
    if Array.length a.counts <> Array.length b.counts then
      invalid_arg "Histogram.merge: bucket counts differ";
    if a.range <> b.range then invalid_arg "Histogram.merge: ranges differ";
    let counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts in
    let raw_max =
      if a.n = 0 then b.raw_max
      else if b.n = 0 then a.raw_max
      else Float.max a.raw_max b.raw_max
    in
    { counts; range = a.range; n = a.n + b.n; raw_max }
end

module Series = struct
  type window = { mutable sum : float; mutable n : int }

  type t = { window : float; tbl : (int, window) Hashtbl.t }

  let create ~window =
    if window <= 0. then invalid_arg "Series.create: window <= 0";
    { window; tbl = Hashtbl.create 64 }

  let add t ~time x =
    let key = int_of_float (time /. t.window) in
    match Hashtbl.find_opt t.tbl key with
    | Some w ->
        w.sum <- w.sum +. x;
        w.n <- w.n + 1
    | None -> Hashtbl.add t.tbl key { sum = x; n = 1 }

  let sorted t =
    let items = Hashtbl.fold (fun k w acc -> (k, w) :: acc) t.tbl [] in
    List.sort (fun (a, _) (b, _) -> compare a b) items

  let windows t =
    sorted t
    |> List.map (fun (k, w) ->
           (float_of_int k *. t.window, w.sum /. float_of_int w.n))
    |> Array.of_list

  let window_totals t =
    sorted t
    |> List.map (fun (k, w) -> (float_of_int k *. t.window, w.sum, w.n))
    |> Array.of_list
end
