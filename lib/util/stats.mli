(** Running statistics, counters and windowed time series.

    Every architectural structure in the simulator (TLBs, caches, meshes,
    controllers) exposes its activity through these primitives so that
    experiments can be written against a uniform statistics surface. *)

(** Streaming mean/min/max/variance accumulator (Welford). *)
module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  (** [min] of an empty accumulator is [nan]. *)

  val max : t -> float
  val total : t -> float
  val merge : t -> t -> t
  (** [merge a b] is a fresh accumulator equivalent to having seen both
      streams. *)
end

(** Named monotonically increasing event counters. *)
module Counter : sig
  type t

  val create : string -> t
  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

(** Ratio of two counters, e.g. hits / accesses. *)
val hit_rate : hits:int -> total:int -> float

(** Fixed-width histogram over [0, range). Out-of-range samples clamp to the
    first/last bucket. *)
module Histogram : sig
  type t

  type summary = { p50 : float; p95 : float; p99 : float; max : float }
  (** Quantile digest of a histogram: bucket-midpoint approximations for
      the percentiles plus the exact largest raw sample. *)

  val create : buckets:int -> range:float -> t
  val add : t -> float -> unit
  val bucket_counts : t -> int array
  val count : t -> int

  val max : t -> float
  (** Exact largest sample seen (pre-clamping). [nan] when empty. *)

  val reset : t -> unit
  (** Empties the histogram (bucket counts, sample count, recorded max) so
      it can be reused for an independent measurement run. Percentile
      summaries of a reused, unreset histogram would smear the runs
      together. *)

  val percentile : t -> float -> float
  (** [percentile t p] approximates the [p]-th percentile ([0 <= p <= 100])
      using bucket midpoints. [nan] when empty. *)

  val summary : t -> summary
  (** p50/p95/p99 via {!percentile}; [max] is exact. All [nan] when
      empty. *)

  val merge : t -> t -> t
  (** [merge a b] is a fresh histogram equivalent to having seen both
      sample streams: bucket-wise count sums, summed totals, and the
      larger of the two exact maxima (an empty side contributes
      nothing). Both inputs must share bucket count and range — per-core
      serving histograms do by construction; anything else raises
      [Invalid_argument]. Inputs are left untouched. *)
end

(** Windowed time series: samples are bucketed by timestamp into fixed-width
    windows; used e.g. for the Fig. 4 TLB miss-rate-over-time plot. *)
module Series : sig
  type t

  val create : window:float -> t
  (** [window] is the bucket width in timestamp units (cycles). *)

  val add : t -> time:float -> float -> unit
  val windows : t -> (float * float) array
  (** [(window_start_time, mean_of_samples)] for every non-empty window in
      increasing time order. *)

  val window_totals : t -> (float * float * int) array
  (** [(window_start_time, sum_of_samples, n_samples)] per window. *)
end
