(** Small integer/float math helpers used throughout the simulator. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a / b] rounded towards positive infinity.
    Requires [b > 0] and [a >= 0]. *)

val round_up : int -> int -> int
(** [round_up a b] is the smallest multiple of [b] that is [>= a]. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is true iff [n] is a positive power of two. *)

val log2_ceil : int -> int
(** [log2_ceil n] is the smallest [k] with [2^k >= n]. Requires [n >= 1]. *)

val log2_exact : int -> int
(** [log2_exact n] is [k] such that [2^k = n]. Raises [Invalid_argument]
    if [n] is not a power of two. *)

val clamp : lo:int -> hi:int -> int -> int
(** [clamp ~lo ~hi x] restricts [x] to the inclusive range [lo, hi]. *)

val clamp_f : lo:float -> hi:float -> float -> float
(** Float version of {!clamp}. *)

val imin3 : int -> int -> int -> int
val imax3 : int -> int -> int -> int

val sum_list : int list -> int
val sum_listf : float list -> float

val pct : float -> float -> float
(** [pct part whole] is [100 * part / whole], or [0.] when [whole = 0.]. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or [0.] when [b = 0.]. *)
