(** A minimal JSON value type with a deterministic emitter and a
    recursive-descent parser.

    Used by the DSE result cache (exact float round-trips matter: a cached
    sweep must reproduce a fresh sweep bit-for-bit) and by the bench
    regression checker. Floats are emitted with ["%.17g"], which
    round-trips every finite double exactly; non-finite floats are emitted
    as the bare tokens [nan]/[inf]/[-inf], which this parser (only)
    accepts back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents objects and lists by two
    spaces (stable output, suitable for committed baselines). Ends without
    a trailing newline. *)

val of_string : string -> (t, string) result
(** Parses a single JSON value (surrounding whitespace allowed). Errors
    carry a character offset. *)

(* Accessors: total lookups returning [None]/[Error] rather than raising. *)

val member : string -> t -> t option
(** [member key (Obj ...)] — [None] on missing key or non-object. *)

val to_int : t -> int option
(** [Int n] and integral [Float] values. *)

val to_float : t -> float option
(** [Float] or [Int] values. *)

val to_bool : t -> bool option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
val to_str : t -> string option
