(** Raising accessors over {!Jsonx} for snapshot decoding.

    Component [restore] functions parse their snapshot payloads with these
    helpers; any shape mismatch raises {!Malformed}, which the persistence
    layer catches at the envelope boundary and converts to a [Result] so a
    corrupt or mismatched checkpoint can never half-restore silently. *)

exception Malformed of string

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Malformed} with a formatted message. *)

val member : string -> Jsonx.t -> Jsonx.t
val int : Jsonx.t -> int
val str : Jsonx.t -> string
val float : Jsonx.t -> float
val bool : Jsonx.t -> bool
val list : Jsonx.t -> Jsonx.t list
val obj : Jsonx.t -> (string * Jsonx.t) list
val get_int : string -> Jsonx.t -> int
val get_str : string -> Jsonx.t -> string
val get_float : string -> Jsonx.t -> float
val get_bool : string -> Jsonx.t -> bool
val get_list : string -> Jsonx.t -> Jsonx.t list
val int_list : Jsonx.t -> int list
val int_array : Jsonx.t -> int array
val of_int_array : int array -> Jsonx.t
val of_int_list : int list -> Jsonx.t

val of_i64 : int64 -> Jsonx.t
(** 64-bit values (RNG cursors) as decimal strings — [Jsonx.Int] carries
    only OCaml's 63-bit payload. *)

val i64 : Jsonx.t -> int64
val get_i64 : string -> Jsonx.t -> int64

val check : what:string -> bool -> unit
(** [check ~what cond] raises {!Malformed} when [cond] is false — used to
    verify a snapshot matches the configuration it is restored into. *)
