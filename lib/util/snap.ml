exception Malformed of string

let fail fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let member key j =
  match Jsonx.member key j with
  | Some v -> v
  | None -> fail "missing field %S" key

let int j =
  match Jsonx.to_int j with Some n -> n | None -> fail "expected int"

let str j =
  match Jsonx.to_str j with Some s -> s | None -> fail "expected string"

let float j =
  match Jsonx.to_float j with Some f -> f | None -> fail "expected float"

let bool j =
  match Jsonx.to_bool j with Some b -> b | None -> fail "expected bool"

let list j =
  match Jsonx.to_list j with Some l -> l | None -> fail "expected list"

let obj j =
  match Jsonx.to_obj j with Some o -> o | None -> fail "expected object"

let get_int key j = int (member key j)
let get_str key j = str (member key j)
let get_float key j = float (member key j)
let get_bool key j = bool (member key j)
let get_list key j = list (member key j)

let int_list j = List.map int (list j)
let int_array j = Array.of_list (int_list j)
let of_int_array a = Jsonx.List (Array.to_list (Array.map (fun n -> Jsonx.Int n) a))
let of_int_list l = Jsonx.List (List.map (fun n -> Jsonx.Int n) l)

(* Int64 values (RNG cursors) do not fit [Jsonx.Int]'s 63-bit payload, so
   they travel as decimal strings. *)
let of_i64 v = Jsonx.String (Int64.to_string v)

let i64 j =
  let s = str j in
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> fail "expected int64 string, got %S" s

let get_i64 key j = i64 (member key j)

let check ~what cond =
  if not cond then fail "snapshot mismatch: %s" what
