let int8_min = -128
let int8_max = 127
let int32_min = -0x8000_0000
let int32_max = 0x7FFF_FFFF

let sat8 x = Mathx.clamp ~lo:int8_min ~hi:int8_max x
let sat32 x = Mathx.clamp ~lo:int32_min ~hi:int32_max x

let is_int8 x = x >= int8_min && x <= int8_max
let is_int32 x = x >= int32_min && x <= int32_max

let mac32 ~acc a b = sat32 (acc + (a * b))

(* Round-half-to-even division by 2^s, matching the RTL's rounding adder:
   add half the divisor, then adjust ties so the result is even. *)
let rounding_shift x s =
  if s < 0 then invalid_arg "Fixed.rounding_shift: negative shift";
  if s = 0 then x
  else begin
    let div = 1 lsl s in
    let half = div / 2 in
    let q = (x + half) asr s in
    let rem = x - ((x asr s) lsl s) in
    (* Tie (remainder exactly half): round to even. *)
    if rem = half && q land 1 = 1 then q - 1 else q
  end

let scale_and_sat8 ~scale x =
  let scaled = float_of_int x *. scale in
  (* Round half to even, like the hardware's float->int conversion. *)
  let f = Float.round scaled in
  let f =
    if Float.abs (scaled -. Float.of_int (int_of_float f)) = 0.5 then
      (* Float.round rounds half away from zero; fix up ties to even. *)
      let lower = Float.of_int (int_of_float (floor scaled)) in
      let upper = lower +. 1. in
      if Float.rem lower 2. = 0. then lower else upper
    else f
  in
  sat8 (int_of_float f)

let relu x = max x 0

let relu6 ~shift x =
  if shift < 0 then invalid_arg "Fixed.relu6: negative shift";
  Mathx.clamp ~lo:0 ~hi:(6 lsl shift) x
