(** Deterministic pseudo-random number generator (splitmix64).

    The simulator must be reproducible run-to-run, so all stochastic choices
    (synthetic data, workload jitter) draw from explicitly seeded generators
    rather than the global [Random] state. *)

type t

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val state : t -> int64
(** The raw generator cursor, for checkpointing. *)

val set_state : t -> int64 -> unit
(** Restore a cursor captured with {!state}: the generator then replays
    exactly the stream it would have produced from that point. *)
