module Isa = Gemmini.Isa
module Params = Gemmini.Params
module Local_addr = Gemmini.Local_addr
module Controller = Gemmini.Controller
module Scratchpad = Gemmini.Scratchpad
module Dma = Gemmini.Dma
module Mesh = Gemmini.Mesh
module Fault = Gem_sim.Fault
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config

type report = {
  divergences : string list;
  sim_trap : (int * string) option;
  gold_trap : (int * string) option;
  finish : Gem_sim.Time.cycles;
}

let max_reported = 12

let array_to_string a =
  "[" ^ String.concat " " (Array.to_list (Array.map string_of_int a)) ^ "]"

(* Execute the program on a real single-core functional SoC, stopping at
   the first architectural trap. *)
let run_sim (case : Gen.case) =
  let soc =
    Soc.create
      {
        Soc_config.default with
        Soc_config.functional = true;
        cores = [ { Soc_config.default_core with Soc_config.accel = case.Gen.params } ];
      }
  in
  let core = Soc.core soc 0 in
  let base = Soc.alloc soc core ~bytes:case.Gen.arena_bytes in
  if base <> Gen.arena_base then
    invalid_arg
      (Printf.sprintf "Diff: SoC arena landed at 0x%x, generator assumed 0x%x"
         base Gen.arena_base);
  Soc.host_write_i8 soc core ~vaddr:base case.Gen.init;
  let trap = ref None in
  (try
     List.iteri
       (fun i cmd ->
         match !trap with
         | Some _ -> ()
         | None -> (
             try Soc.exec_op core (Soc.Insn cmd)
             with Fault.Trap f -> trap := Some (i, Fault.cause_label f.Fault.cause)))
       case.Gen.program
   with Fault.Trap f -> trap := Some (-1, Fault.cause_label f.Fault.cause));
  (soc, core, !trap)

let run_gold ?mutate (case : Gen.case) =
  let g = Golden.create ?mutate case.Gen.params in
  Golden.write_host g ~addr:Gen.arena_base case.Gen.init;
  let trap =
    match Golden.run g case.Gen.program with
    | None -> None
    | Some (i, cause) -> Some (i, Fault.cause_label cause)
  in
  (g, trap)

let compare_state (case : Gen.case) soc core g out =
  let p = case.Gen.params in
  let ctl = Soc.controller core in
  let spad = Controller.scratchpad ctl in
  let stats = Controller.stats ctl in
  let dma = Controller.dma ctl in
  let diverge fmt = Printf.ksprintf (fun m -> out := m :: !out) fmt in
  let loop = Golden.saw_loop g in
  (* Local memories are unspecified on the golden side after a LOOP_WS. *)
  if not loop then begin
    for row = 0 to Params.sp_rows p - 1 do
      let sim = Scratchpad.read_row spad (Local_addr.scratchpad ~row) ~offset:0 in
      let gold = Golden.sp_row g row in
      if sim <> gold then
        diverge "sp[%d]: sim %s gold %s" row (array_to_string sim)
          (array_to_string gold)
    done;
    for row = 0 to Params.acc_rows p - 1 do
      let sim =
        Scratchpad.read_row spad (Local_addr.accumulator ~row ()) ~offset:0
      in
      let gold = Golden.acc_row g row in
      if sim <> gold then
        diverge "acc[%d]: sim %s gold %s" row (array_to_string sim)
          (array_to_string gold)
    done
  end;
  (* Host memory: the whole arena, byte for byte. *)
  let n = case.Gen.arena_bytes in
  let sim_host = Soc.host_read_i8 soc core ~vaddr:Gen.arena_base ~n in
  let gold_host = Golden.read_host_i8 g ~addr:Gen.arena_base ~n in
  for i = 0 to n - 1 do
    if sim_host.(i) <> gold_host.(i) then
      diverge "host[0x%x]: sim %d gold %d" (Gen.arena_base + i) sim_host.(i)
        gold_host.(i)
  done;
  (* Invariant oracles. *)
  if stats.Controller.macs <> Golden.macs g then
    diverge "macs: sim %d gold %d" stats.Controller.macs (Golden.macs g);
  let gin = Golden.bytes_in g and gout = Golden.bytes_out g in
  let sin = Dma.bytes_in dma and sout = Dma.bytes_out dma in
  if loop then begin
    (* tiling may re-load operands, never less than once each *)
    if sin < gin then diverge "bytes_in: sim %d below lower bound %d" sin gin
  end
  else if sin <> gin then diverge "bytes_in: sim %d gold %d" sin gin;
  if sout <> gout then diverge "bytes_out: sim %d gold %d" sout gout;
  (* The mesh pipe's busy cycles are exactly the sum of the pipelined
     block occupancies of the computes the golden model witnessed. *)
  let occupancy =
    List.fold_left
      (fun acc (dataflow, rows, k, cols, preload) ->
        acc + Mesh.pipelined_block_cycles p ~dataflow ~rows ~k ~cols ~preload)
      0 (Golden.compute_shapes g)
  in
  if not loop then begin
    if stats.Controller.ex_busy <> occupancy then
      diverge "ex_busy: sim %d, block-cycle model %d" stats.Controller.ex_busy
        occupancy
  end
  else if stats.Controller.ex_busy < occupancy then
    diverge "ex_busy: sim %d below lower bound %d" stats.Controller.ex_busy
      occupancy;
  if Soc.finish_time soc < occupancy then
    diverge "finish: sim %d below mesh-occupancy bound %d"
      (Soc.finish_time soc) occupancy

let run_case ?mutate (case : Gen.case) =
  let soc, core, sim_trap = run_sim case in
  let g, gold_trap = run_gold ?mutate case in
  let out = ref [] in
  (match (sim_trap, gold_trap) with
  | None, None -> compare_state case soc core g out
  | Some (si, sc), Some (gi, gc) ->
      (* Both trapped: agreement means same command, same cause. The
         post-trap state is not compared — an execution-stage trap may
         legitimately leave partial effects. *)
      if si <> gi || sc <> gc then
        out :=
          [
            Printf.sprintf "trap mismatch: sim %s@%d gold %s@%d" sc si gc gi;
          ]
  | Some (si, sc), None ->
      out := [ Printf.sprintf "sim trapped (%s@%d), golden ran clean" sc si ]
  | None, Some (gi, gc) ->
      out := [ Printf.sprintf "golden trapped (%s@%d), sim ran clean" gc gi ]);
  (match (case.Gen.invalid, sim_trap) with
  | true, None ->
      out := "invalid-mode case did not trap in the simulator" :: !out
  | _ -> ());
  let divergences =
    let all = List.rev !out in
    let n = List.length all in
    if n <= max_reported then all
    else
      List.filteri (fun i _ -> i < max_reported) all
      @ [ Printf.sprintf "... and %d more divergences" (n - max_reported) ]
  in
  { divergences; sim_trap; gold_trap; finish = Soc.finish_time soc }

let repro (case : Gen.case) =
  Printf.sprintf "gemmini_cli fuzz --seed %d --count 1 --shrink" case.Gen.seed
