(** Seeded random fuzz cases: a hardware configuration, a host-memory
    image biased toward dtype extremes, and a well-formed ISA program
    (random tilings of mvin / preload / compute / mvout in both
    dataflows, residual adds, wide multi-block moves). In invalid mode
    one command is deliberately malformed; both executors must trap on
    it, at the same index with the same cause. Equal seeds give equal
    cases, so every counterexample is a one-line repro. *)

type case = {
  seed : int;
  invalid : bool;  (** one command is malformed and must trap *)
  params : Gemmini.Params.t;
  program : Gemmini.Isa.t list;
  init : int array;  (** bytes written at [arena_base] before the run *)
  arena_bytes : int;  (** host allocation covering every dram access *)
}

val arena_base : int
(** Where {!Diff} expects the SoC's first allocation to land; every
    generated [dram_addr] lives in [arena_base, arena_base + arena_bytes). *)

val case : ?force_invalid:bool -> seed:int -> unit -> case
(** [force_invalid] pins the invalid-program mode (default: roughly a
    quarter of cases are invalid). *)
