(** Greedy delta-debugging minimizer for failing fuzz cases: repeatedly
    drops chunks of the program (halving chunk size down to single
    commands) while the failure predicate still holds, until a fixpoint.
    The result is 1-minimal — removing any single remaining command makes
    the divergence disappear. *)

val minimize : (Gemmini.Isa.t list -> bool) -> Gemmini.Isa.t list -> Gemmini.Isa.t list
(** [minimize still_fails program] assumes [still_fails program] is
    [true] and returns a minimal sub-program preserving it. *)

val minimize_case : ?mutate:Golden.mutation -> Gen.case -> Gen.case
(** Shrinks a diverging case's program under {!Diff.run_case} (with the
    same golden mutation, if any). Returns the case unchanged if it does
    not actually diverge. *)
