(** Runs one generated case on both executors — the real
    [Soc]/[Controller] pipeline in functional mode and the {!Golden}
    interpreter — and compares the architectural outcome: trap parity
    (index + cause), final scratchpad / accumulator / host-arena
    contents, and the invariant oracles (exact MAC and DMA-byte counts,
    the mesh-occupancy cycle identity, and the finish-time lower bound).

    After a [Loop_ws] the golden model's local memories are unspecified
    (it computes the loop as pure linear algebra), so state comparison
    narrows to host memory, MACs, stored bytes, and a loaded-bytes lower
    bound. *)

type report = {
  divergences : string list;  (** empty = the executors agree *)
  sim_trap : (int * string) option;  (** (command index, cause label) *)
  gold_trap : (int * string) option;
  finish : Gem_sim.Time.cycles;  (** simulator finish time, clean runs *)
}

val run_case : ?mutate:Golden.mutation -> Gen.case -> report
(** [mutate] plants a deliberate bug in the {e golden} side — the
    harness self-test: a mutated oracle must produce divergences. *)

val repro : Gen.case -> string
(** One-line CLI command that replays exactly this case. *)
