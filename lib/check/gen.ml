(* Program generator for the differential fuzzer. Valid mode emits
   well-formed programs (every command passes [Isa.validate] by
   construction — asserted, so a generator bug fails loudly instead of
   polluting the fuzz run with bogus divergences); invalid mode plants
   exactly one malformed command whose trap both executors must report
   at the same index with the same cause. *)

open Gem_util
module Isa = Gemmini.Isa
module Params = Gemmini.Params
module Local_addr = Gemmini.Local_addr
module Peripheral = Gemmini.Peripheral
module Fault = Gem_sim.Fault

type case = {
  seed : int;
  invalid : bool;
  params : Params.t;
  program : Isa.t list;
  init : int array;
  arena_bytes : int;
}

let arena_base = 0x1_0000

(* --- random hardware configurations -------------------------------------- *)

let params_of rng =
  let dim = Rng.pick rng [| 2; 4; 8 |] in
  let tile = Rng.pick rng (match dim with 2 -> [| 1; 2 |] | 4 -> [| 1; 2; 4 |] | _ -> [| 1; 2; 4; 8 |]) in
  let mesh = dim / tile in
  let sp_banks = Rng.pick rng [| 1; 2; 4 |] in
  let sp_rpb = Rng.pick rng [| 16; 32; 64 |] in
  let acc_banks = Rng.pick rng [| 1; 2 |] in
  let acc_rpb = Rng.pick rng [| 8; 16; 32 |] in
  let p =
    {
      Params.default with
      mesh_rows = mesh;
      mesh_cols = mesh;
      tile_rows = tile;
      tile_cols = tile;
      dataflow = Gemmini.Dataflow.Both;
      sp_capacity_bytes = sp_banks * sp_rpb * dim;
      sp_banks;
      acc_capacity_bytes = acc_banks * acc_rpb * dim * 4;
      acc_banks;
      dma_bus_bytes = Rng.pick rng [| 4; 8; 16 |];
      max_in_flight = Rng.pick rng [| 1; 4; 16 |];
    }
  in
  Params.validate_exn p

(* --- generator state ------------------------------------------------------ *)

type st = {
  rng : Rng.t;
  p : Params.t;
  dim : int;
  sp_rows : int;
  acc_rows : int;
  mutable off : int; (* bump allocator over the host arena *)
  mutable prog_rev : Isa.t list;
}

let alloc st bytes =
  let addr = arena_base + st.off in
  st.off <- st.off + bytes + Rng.int st.rng 32;
  addr

(* Room for [rows] rows of [row_bytes] at [stride] apart. *)
let alloc_rows st ~rows ~row_bytes ~stride =
  alloc st (((rows - 1) * stride) + row_bytes)

let emit st cmd =
  (match Isa.validate st.p cmd with
  | Ok () -> ()
  | Error c ->
      invalid_arg
        (Printf.sprintf "Gen bug: emitted invalid command %s (%s)"
           (Isa.to_string cmd) (Fault.cause_label c)));
  st.prog_rev <- cmd :: st.prog_rev

let sp_slot st rows = Rng.int_in st.rng ~lo:0 ~hi:(st.sp_rows - rows)
let acc_slot st rows = Rng.int_in st.rng ~lo:0 ~hi:(st.acc_rows - rows)

let ld_scale st = Rng.pick st.rng [| 1.0; 1.0; 0.5; 0.25 |]
let st_scale st = Rng.pick st.rng [| 1.0; 0.5; 0.0625; 0.0078125 |]

let st_act st =
  Rng.pick st.rng
    [| Peripheral.No_activation; Peripheral.Relu; Peripheral.Relu6 { shift = 4 } |]

let config_ld st ~id ~stride ~scale ~shrunk =
  emit st (Isa.Config_ld { Isa.ld_stride_bytes = stride; ld_scale = scale; ld_shrunk = shrunk; ld_id = id })

let config_st st ~stride ~act ~scale =
  emit st
    (Isa.Config_st { Isa.st_stride_bytes = stride; st_activation = act; st_scale = scale; st_pool = None })

(* mvin an int8 region of rows x cols through channel [id] into [local]. *)
let mvin_i8 st ~id ~rows ~cols ~scale local =
  let stride = cols + Rng.int st.rng 4 in
  let dram_addr = alloc_rows st ~rows ~row_bytes:cols ~stride in
  config_ld st ~id ~stride ~scale ~shrunk:false;
  emit st (Isa.Mvin ({ Isa.dram_addr; local; cols; rows }, id));
  dram_addr

(* mvin 32-bit host words into the accumulator (bias loads). *)
let mvin_i32 st ~id ~rows ~cols ~row =
  let stride = 4 * (cols + Rng.int st.rng 4) in
  let dram_addr = alloc_rows st ~rows ~row_bytes:(4 * cols) ~stride in
  config_ld st ~id ~stride ~scale:1.0 ~shrunk:false;
  emit st
    (Isa.Mvin
       ({ Isa.dram_addr; local = Local_addr.accumulator ~row (); cols; rows }, id))

let mvout st ~rows ~cols ~out_eb local =
  let row_bytes = cols * out_eb in
  let stride = row_bytes + (out_eb * Rng.int st.rng 4) in
  let dram_addr = alloc_rows st ~rows ~row_bytes ~stride in
  config_st st ~stride ~act:(st_act st) ~scale:(st_scale st);
  emit st (Isa.Mvout { Isa.dram_addr; local; cols; rows })

(* --- segments ------------------------------------------------------------- *)

type dest = Acc of { row : int; accumulate : bool } | Sp of int | Garbage

let pick_dest st ~rows =
  match Rng.int st.rng 8 with
  | 0 -> Garbage
  | 1 | 2 | 3 -> Sp (sp_slot st rows)
  | _ -> Acc { row = acc_slot st rows; accumulate = Rng.bool st.rng }

let dest_la dest =
  match dest with
  | Garbage -> Local_addr.garbage
  | Sp row -> Local_addr.scratchpad ~row
  | Acc { row; accumulate } -> Local_addr.accumulator ~accumulate ~row ()

(* Read-side address for the destination (no accumulate flag; maybe
   full-width for accumulator readouts). *)
let mvout_dest st dest ~rows ~cols =
  match dest with
  | Garbage -> ()
  | Sp row -> mvout st ~rows ~cols ~out_eb:1 (Local_addr.scratchpad ~row)
  | Acc { row; _ } ->
      let full = Rng.int st.rng 4 = 0 in
      mvout st ~rows ~cols
        ~out_eb:(if full then 4 else 1)
        (Local_addr.accumulator ~full_width:full ~row ())

(* One weight-stationary tile group: load A/B (and optionally D), preload
   B with a destination, compute, optionally a second accumulating
   compute on resident weights, then store the result. *)
let ws_segment st =
  let dim = st.dim in
  let square = Rng.int st.rng 4 = 0 in
  let a_t = square && Rng.bool st.rng and b_t = square && Rng.bool st.rng in
  let s = 1 + Rng.int st.rng dim in
  let i = if square then s else 1 + Rng.int st.rng dim in
  let k = if square then s else 1 + Rng.int st.rng dim in
  let j = if square then s else 1 + Rng.int st.rng dim in
  emit st
    (Isa.Config_ex
       {
         Isa.dataflow = `WS;
         activation = Peripheral.No_activation;
         sys_shift = 0;
         a_transpose = a_t;
         b_transpose = b_t;
       });
  let ra = sp_slot st i and rb = sp_slot st k in
  ignore (mvin_i8 st ~id:0 ~rows:i ~cols:k ~scale:(ld_scale st) (Local_addr.scratchpad ~row:ra));
  (* with b_transpose the staged block is read as j x k and transposed *)
  let b_rows = if b_t then j else k and b_cols = if b_t then k else j in
  ignore (mvin_i8 st ~id:1 ~rows:b_rows ~cols:b_cols ~scale:1.0 (Local_addr.scratchpad ~row:rb));
  let d =
    if Rng.int st.rng 3 = 0 then begin
      let rd = sp_slot st i in
      ignore (mvin_i8 st ~id:2 ~rows:i ~cols:j ~scale:1.0 (Local_addr.scratchpad ~row:rd));
      Some rd
    end
    else None
  in
  let dest = pick_dest st ~rows:i in
  (match dest with
  | Acc { row; accumulate } when accumulate ->
      (* an accumulating destination needs something to accumulate onto:
         a 32-bit bias at the dtype extremes *)
      mvin_i32 st ~id:2 ~rows:i ~cols:j ~row
  | _ -> ());
  emit st
    (Isa.Preload
       {
         b = Local_addr.scratchpad ~row:rb;
         c = dest_la dest;
         b_rows;
         b_cols;
         c_rows = i;
         c_cols = j;
       });
  let compute_args a_row ~rows =
    {
      Isa.a = Local_addr.scratchpad ~row:a_row;
      bd = (match d with Some rd -> Local_addr.scratchpad ~row:rd | None -> Local_addr.garbage);
      a_cols = k;
      a_rows = rows;
      bd_cols = j;
      bd_rows = rows;
    }
  in
  emit st (Isa.Compute_preloaded (compute_args ra ~rows:i));
  if Rng.int st.rng 3 = 0 then begin
    (* second tile against the resident weights *)
    let i2 = if a_t then s else 1 + Rng.int st.rng i in
    let ra2 = sp_slot st i2 in
    ignore (mvin_i8 st ~id:0 ~rows:i2 ~cols:k ~scale:1.0 (Local_addr.scratchpad ~row:ra2));
    emit st (Isa.Compute_accumulated (compute_args ra2 ~rows:i2))
  end;
  mvout_dest st dest ~rows:i ~cols:j

(* Output-stationary: results accumulate in the PEs across computes and
   reach memory only on the next preload or a fence. *)
let os_segment st =
  let dim = st.dim in
  let i = 1 + Rng.int st.rng dim
  and k = 1 + Rng.int st.rng dim
  and j = 1 + Rng.int st.rng dim in
  emit st
    (Isa.Config_ex
       {
         Isa.dataflow = `OS;
         activation = Peripheral.No_activation;
         sys_shift = Rng.int st.rng 9;
         a_transpose = false;
         b_transpose = false;
       });
  let ra = sp_slot st i and rb = sp_slot st k in
  ignore (mvin_i8 st ~id:0 ~rows:i ~cols:k ~scale:(ld_scale st) (Local_addr.scratchpad ~row:ra));
  ignore (mvin_i8 st ~id:1 ~rows:k ~cols:j ~scale:1.0 (Local_addr.scratchpad ~row:rb));
  let d =
    if Rng.int st.rng 3 = 0 then begin
      let rd = sp_slot st i in
      ignore (mvin_i8 st ~id:2 ~rows:i ~cols:j ~scale:1.0 (Local_addr.scratchpad ~row:rd));
      Some rd
    end
    else None
  in
  let dest = pick_dest st ~rows:i in
  emit st
    (Isa.Preload
       {
         b = (match d with Some rd -> Local_addr.scratchpad ~row:rd | None -> Local_addr.garbage);
         c = dest_la dest;
         b_rows = i;
         b_cols = j;
         c_rows = i;
         c_cols = j;
       });
  emit st
    (Isa.Compute_preloaded
       {
         Isa.a = Local_addr.scratchpad ~row:ra;
         bd = Local_addr.scratchpad ~row:rb;
         a_cols = k;
         a_rows = i;
         bd_cols = j;
         bd_rows = k;
       });
  if Rng.int st.rng 3 = 0 then begin
    (* keep accumulating into the resident tile with a fresh K slab *)
    let k2 = 1 + Rng.int st.rng dim in
    let ra2 = sp_slot st i and rb2 = sp_slot st k2 in
    ignore (mvin_i8 st ~id:0 ~rows:i ~cols:k2 ~scale:1.0 (Local_addr.scratchpad ~row:ra2));
    ignore (mvin_i8 st ~id:1 ~rows:k2 ~cols:j ~scale:1.0 (Local_addr.scratchpad ~row:rb2));
    emit st
      (Isa.Compute_accumulated
         {
           Isa.a = Local_addr.scratchpad ~row:ra2;
           bd = Local_addr.scratchpad ~row:rb2;
           a_cols = k2;
           a_rows = i;
           bd_cols = j;
           bd_rows = k2;
         })
  end;
  (* flush the resident results out of the PEs *)
  if Rng.bool st.rng then emit st Isa.Fence
  else
    emit st
      (Isa.Preload
         {
           b = Local_addr.garbage;
           c = Local_addr.garbage;
           b_rows = 1;
           b_cols = 1;
           c_rows = 1;
           c_cols = 1;
         });
  mvout_dest st dest ~rows:i ~cols:j

(* Residual addition: two shrunk loads into the same accumulator rows
   (the second with the accumulate flag), then an activated store. *)
let resadd_segment st =
  let rows = 1 + Rng.int st.rng st.dim and cols = 1 + Rng.int st.rng st.dim in
  let row = acc_slot st rows in
  let x_stride = cols + Rng.int st.rng 4 in
  let x_addr = alloc_rows st ~rows ~row_bytes:cols ~stride:x_stride in
  config_ld st ~id:0 ~stride:x_stride ~scale:(ld_scale st) ~shrunk:true;
  emit st
    (Isa.Mvin
       ( { Isa.dram_addr = x_addr; local = Local_addr.accumulator ~row (); cols; rows },
         0 ));
  let y_stride = cols + Rng.int st.rng 4 in
  let y_addr = alloc_rows st ~rows ~row_bytes:cols ~stride:y_stride in
  config_ld st ~id:1 ~stride:y_stride ~scale:(ld_scale st) ~shrunk:true;
  emit st
    (Isa.Mvin
       ( {
           Isa.dram_addr = y_addr;
           local = Local_addr.accumulator ~accumulate:true ~row ();
           cols;
           rows;
         },
         1 ));
  mvout st ~rows ~cols ~out_eb:1 (Local_addr.accumulator ~row ())

(* A wide (multi-block) mvin followed by a single-block mvout. *)
let wide_mvin_segment st =
  let dim = st.dim in
  let rows = 1 + Rng.int st.rng dim in
  let blocks_max = min 4 (((st.sp_rows - rows) / dim) + 1) in
  if blocks_max < 2 then ws_segment st
  else begin
    let blocks = Rng.int_in st.rng ~lo:2 ~hi:blocks_max in
    let cols = ((blocks - 1) * dim) + 1 + Rng.int st.rng dim in
    let row = Rng.int_in st.rng ~lo:0 ~hi:(st.sp_rows - (((blocks - 1) * dim) + rows)) in
    ignore (mvin_i8 st ~id:0 ~rows ~cols ~scale:1.0 (Local_addr.scratchpad ~row));
    let bi = Rng.int st.rng blocks in
    let bcols = min dim (cols - (bi * dim)) in
    mvout st ~rows ~cols:bcols ~out_eb:1 (Local_addr.scratchpad ~row:(row + (bi * dim)))
  end

(* --- the malformed command for invalid mode ------------------------------- *)

let bad_command st =
  let dim = st.dim in
  match Rng.int st.rng 6 with
  | 0 ->
      (* runs off the end of the scratchpad *)
      Isa.Mvin
        ( {
            Isa.dram_addr = arena_base;
            local = Local_addr.scratchpad ~row:(st.sp_rows - 1);
            cols = 1;
            rows = 2;
          },
          0 )
  | 1 ->
      Isa.Mvin
        ( {
            Isa.dram_addr = arena_base;
            local = Local_addr.scratchpad ~row:0;
            cols = (4 * dim) + 1;
            rows = 1;
          },
          0 )
  | 2 ->
      Isa.Mvout { Isa.dram_addr = arena_base; local = Local_addr.garbage; cols = 1; rows = 1 }
  | 3 ->
      Isa.Config_ld { Isa.ld_stride_bytes = 1; ld_scale = Float.nan; ld_shrunk = false; ld_id = 0 }
  | 4 ->
      (* accumulate flag on a scratchpad destination, constructible only
         through the raw 32-bit encoding *)
      Isa.Mvin
        ( {
            Isa.dram_addr = arena_base;
            local = Local_addr.of_bits (0x4000_0000 lor 1);
            cols = 1;
            rows = 1;
          },
          0 )
  | _ ->
      Isa.Preload
        {
          b = Local_addr.scratchpad ~row:0;
          c = Local_addr.garbage;
          b_cols = 0;
          b_rows = 1;
          c_cols = 1;
          c_rows = 1;
        }

let insert_at program idx cmd =
  let rec go i = function
    | rest when i = idx -> cmd :: rest
    | [] -> [ cmd ]
    | x :: rest -> x :: go (i + 1) rest
  in
  go 0 program

(* --- cases ---------------------------------------------------------------- *)

let extreme_byte rng =
  match Rng.int rng 5 with
  | 0 -> 0
  | 1 -> 0x7F
  | 2 -> 0x80
  | 3 -> 0xFF
  | _ -> Rng.int rng 256

let case ?force_invalid ~seed () =
  let rng = Rng.create ~seed in
  let invalid =
    match force_invalid with Some b -> b | None -> Rng.int rng 4 = 0
  in
  let p = params_of rng in
  let st =
    {
      rng;
      p;
      dim = Params.dim p;
      sp_rows = Params.sp_rows p;
      acc_rows = Params.acc_rows p;
      off = 0;
      prog_rev = [];
    }
  in
  let segments = 1 + Rng.int rng 3 in
  for _ = 1 to segments do
    match Rng.int rng 4 with
    | 0 -> os_segment st
    | 1 -> resadd_segment st
    | 2 -> wide_mvin_segment st
    | _ -> ws_segment st
  done;
  emit st Isa.Fence;
  let program = List.rev st.prog_rev in
  let program =
    if not invalid then program
    else begin
      let cmd = bad_command st in
      (match Isa.validate p cmd with
      | Error _ -> ()
      | Ok () -> invalid_arg "Gen bug: bad_command validated cleanly");
      insert_at program (Rng.int rng (List.length program)) cmd
    end
  in
  let arena_bytes = max 1 st.off in
  let init = Array.init arena_bytes (fun _ -> extreme_byte rng) in
  { seed; invalid; params = p; program; init; arena_bytes }
