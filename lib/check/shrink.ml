(* ddmin-style greedy minimization. The predicate re-runs both executors
   per candidate, so the loop bounds matter: each pass tries O(n/chunk)
   removals, chunk halves each round, and the outer loop restarts only
   after a successful shrink — O(n^2) predicate calls worst case on
   programs that are a few dozen commands long. *)

let drop_range lst ~lo ~len =
  List.filteri (fun i _ -> i < lo || i >= lo + len) lst

let minimize still_fails program =
  let current = ref program in
  let progress = ref true in
  while !progress do
    progress := false;
    let chunk = ref (max 1 (List.length !current / 2)) in
    let continue = ref true in
    while !continue do
      let lo = ref 0 in
      while !lo < List.length !current do
        let cand = drop_range !current ~lo:!lo ~len:!chunk in
        if List.length cand < List.length !current && still_fails cand then begin
          current := cand;
          progress := true
          (* keep [lo]: the next chunk slid into its place *)
        end
        else lo := !lo + !chunk
      done;
      if !chunk = 1 then continue := false else chunk := max 1 (!chunk / 2)
    done
  done;
  !current

let minimize_case ?mutate (case : Gen.case) =
  let fails program =
    let report = Diff.run_case ?mutate { case with Gen.program } in
    report.Diff.divergences <> []
  in
  if not (fails case.Gen.program) then case
  else { case with Gen.program = minimize fails case.Gen.program }
