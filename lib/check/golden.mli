(** An independent golden architectural model of the accelerator.

    A pure, cycle-free interpreter of {!Gemmini.Isa.t} programs used as the
    oracle for differential fuzzing: flat scratchpad/accumulator arrays, a
    byte-addressed host-memory image, and a naive saturating matmul written
    directly from the [Pe.ws_step]/[os_step] semantics. It deliberately
    shares {e no} execution code with the cycle-accurate path
    ([Controller]/[Mesh]/[Scratchpad]/[Dma]): saturation, round-half-even
    scaling, activation, rounding shifts, byte packing and even command
    validation are re-implemented here from the documented contracts, so a
    bug in either implementation shows up as a divergence instead of being
    shared by both sides.

    Known intentional deviation: [Loop_ws] is interpreted as the pure
    linear-algebra operation it architecturally promises (C = act(scale *
    (A*B + bias)) written straight to host memory) rather than by
    replaying the hardware sequencer, so after a [Loop_ws] the golden
    scratchpad/accumulator contents and compute staging state are
    unspecified. {!Diff} accounts for this by comparing only host memory
    and the exact invariants that survive tiling (total MACs, bytes
    stored). *)

(** Deliberate bugs for the harness self-test: a mutated golden model must
    make the differential harness report divergences, proving it has the
    power to catch real ones. *)
type mutation =
  | No_saturation  (** drop every saturation/clamp (MACs, scaling, widening) *)
  | Transposed_b  (** transpose the stationary operand before the matmul *)
  | Stride_off_by_one  (** mvin reads host rows one byte further apart *)
  | Dropped_activation  (** ignore the store-path activation function *)

val mutations : mutation list
val mutation_name : mutation -> string

type t

val create : ?mutate:mutation -> Gemmini.Params.t -> t
(** A fresh machine: zeroed local memories, empty host image, reset
    configuration state (mirroring the controller's reset values). *)

val write_host : t -> addr:int -> int array -> unit
(** Write raw bytes (values masked to 0..255) at a byte address. *)

val read_host_i8 : t -> addr:int -> n:int -> int array
(** Read [n] sign-extended bytes; unwritten locations read as 0, matching
    the SoC's functional main memory. *)

val sp_row : t -> int -> int array
(** Scratchpad row contents, [dim] elements. *)

val acc_row : t -> int -> int array

val exec : t -> Gemmini.Isa.t -> (unit, Gem_sim.Fault.cause) result
(** Execute one command. [Error cause] is the architectural trap the
    cycle-accurate controller must also raise for this command (compared
    by {!Gem_sim.Fault.cause_label}). A validation-stage trap leaves no
    side effects; an execution-stage trap may leave partial state, so
    {!Diff} compares only trap parity (index and cause) on trapping
    runs, mirroring the real controller's contract. *)

val run : t -> Gemmini.Isa.t list -> (int * Gem_sim.Fault.cause) option
(** Execute until the first trap; [Some (index, cause)] identifies the
    trapping command, [None] is a clean run. *)

(* Invariant oracles for {!Diff}. *)

val macs : t -> int
(** Total multiply-accumulates, counted exactly as the controller does
    (from command fields, before any transpose). *)

val bytes_in : t -> int
(** Total DMA bytes loaded (rows * row_bytes per mvin). *)

val bytes_out : t -> int
(** Total DMA bytes stored. *)

val compute_shapes : t -> ([ `WS | `OS ] * int * int * int * bool) list
(** (dataflow, rows, k, cols, preloaded) of every discrete compute
    executed, in order — the shapes the mesh pipe was occupied with, for
    the cycle lower-bound oracle. Empty contribution from [Loop_ws]. *)

val saw_loop : t -> bool
(** Whether a [Loop_ws] executed (limits what {!Diff} may compare). *)
