(* The independent oracle. Everything here is written from the ISA
   contracts (isa.mli, scratchpad.mli, the paper's Section II semantics),
   not from the cycle-accurate sources: flat arrays instead of banked
   SRAMs, a hashtable instead of paged main memory, a three-nested-loop
   matmul instead of the systolic pipeline. Where the architecture pins
   down an order of operations (per-MAC saturation in ascending k, tile
   accumulation in ascending k-tile order, round-half-even scaling) we
   follow the *documented* order — agreement with the simulator is then a
   checked property, not a shared subroutine. *)

module Isa = Gemmini.Isa
module Params = Gemmini.Params
module Local_addr = Gemmini.Local_addr
module Dataflow = Gemmini.Dataflow
module Dtype = Gemmini.Dtype
module Peripheral = Gemmini.Peripheral
module Fault = Gem_sim.Fault

type mutation = No_saturation | Transposed_b | Stride_off_by_one | Dropped_activation

let mutations = [ No_saturation; Transposed_b; Stride_off_by_one; Dropped_activation ]

let mutation_name = function
  | No_saturation -> "no-saturation"
  | Transposed_b -> "transposed-b"
  | Stride_off_by_one -> "stride-off-by-one"
  | Dropped_activation -> "dropped-activation"

type ld_cfg = { ld_stride : int; ld_scale : float; ld_shrunk : bool }

type preload = {
  pb : Local_addr.t;
  pc : Local_addr.t;
  pb_rows : int;
  pb_cols : int;
  pc_rows : int;
  pc_cols : int;
}

type t = {
  p : Params.t;
  mutate : mutation option;
  dim : int;
  sp_rows : int;
  acc_rows : int;
  sp : int array; (* sp_rows * dim, row-major *)
  acc : int array; (* acc_rows * dim, row-major *)
  host : (int, int) Hashtbl.t; (* byte address -> unsigned byte *)
  (* configuration state, reset exactly as the ISA documents *)
  mutable dataflow : [ `WS | `OS ];
  mutable sys_shift : int;
  mutable a_t : bool;
  mutable b_t : bool;
  ld : ld_cfg array; (* three mvin channels *)
  mutable st_stride : int;
  mutable st_act : Peripheral.activation;
  mutable st_scale : float;
  (* compute staging *)
  mutable preload : preload option;
  mutable resident_b : int array array option;
  mutable os_acc : (int array array * Local_addr.t) option;
  mutable loop_bounds : Isa.loop_bounds option;
  mutable loop_addrs : Isa.loop_addrs option;
  mutable loop_outs : Isa.loop_outs option;
  (* invariant oracles *)
  mutable macs : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable shapes_rev : ([ `WS | `OS ] * int * int * int * bool) list;
  mutable saw_loop : bool;
}

let create ?mutate p =
  let p = Params.validate_exn p in
  let dim = Params.dim p in
  let sp_rows = Params.sp_rows p and acc_rows = Params.acc_rows p in
  {
    p;
    mutate;
    dim;
    sp_rows;
    acc_rows;
    sp = Array.make (sp_rows * dim) 0;
    acc = Array.make (acc_rows * dim) 0;
    host = Hashtbl.create 1024;
    dataflow = (if Dataflow.supports p.Params.dataflow `WS then `WS else `OS);
    sys_shift = 0;
    a_t = false;
    b_t = false;
    ld = Array.init 3 (fun _ -> { ld_stride = 0; ld_scale = 1.0; ld_shrunk = false });
    st_stride = 0;
    st_act = Peripheral.No_activation;
    st_scale = 1.0;
    preload = None;
    resident_b = None;
    os_acc = None;
    loop_bounds = None;
    loop_addrs = None;
    loop_outs = None;
    macs = 0;
    bytes_in = 0;
    bytes_out = 0;
    shapes_rev = [];
    saw_loop = false;
  }

(* --- traps --------------------------------------------------------------- *)

exception Trap_c of Fault.cause

let trap cause = raise (Trap_c cause)

let illegal fmt = Printf.ksprintf (fun msg -> trap (Fault.Illegal_inst msg)) fmt

(* --- arithmetic, re-derived from the documented contracts ---------------- *)

let clamp ~lo ~hi v = if v < lo then lo else if v > hi then hi else v

let int32_lo = -0x8000_0000
let int32_hi = 0x7FFF_FFFF

let sat32 t v =
  if t.mutate = Some No_saturation then v else clamp ~lo:int32_lo ~hi:int32_hi v

let dt_range = function
  | Dtype.Int8 -> Some (-128, 127)
  | Dtype.Int16 -> Some (-32768, 32767)
  | Dtype.Int32 -> Some (int32_lo, int32_hi)
  | Dtype.Fp16 | Dtype.Fp32 -> None

let dt_sat t dt v =
  if t.mutate = Some No_saturation then v
  else match dt_range dt with None -> v | Some (lo, hi) -> clamp ~lo ~hi v

(* Round-half-to-even scaling: computed from floor and the fractional
   part, a different derivation from the RTL-mirroring implementation. *)
let scale_to t dt ~scale x =
  match dt_range dt with
  | None -> x
  | Some _ ->
      let scaled = float_of_int x *. scale in
      let fl = Float.floor scaled in
      let diff = scaled -. fl in
      let rounded =
        if diff > 0.5 then fl +. 1.
        else if diff < 0.5 then fl
        else if Float.rem fl 2. = 0. then fl
        else fl +. 1.
      in
      dt_sat t dt (int_of_float rounded)

let activation t act v =
  if t.mutate = Some Dropped_activation then v
  else
    match act with
    | Peripheral.No_activation -> v
    | Peripheral.Relu -> max v 0
    | Peripheral.Relu6 { shift } -> clamp ~lo:0 ~hi:(6 lsl shift) v

(* Divide by 2^s rounding half to even, via the bitwise remainder. *)
let rounding_shift v s =
  if s = 0 then v
  else begin
    let half = 1 lsl (s - 1) in
    let q = (v + half) asr s in
    let rem = v land ((1 lsl s) - 1) in
    if rem = half && q land 1 = 1 then q - 1 else q
  end

let sign_extend_byte b = if b >= 128 then b - 256 else b

let sign_extend_i32 v = (v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32)

(* --- host image ---------------------------------------------------------- *)

let write_host t ~addr bytes =
  Array.iteri (fun i b -> Hashtbl.replace t.host (addr + i) (b land 0xFF)) bytes

let host_byte t addr = try Hashtbl.find t.host addr with Not_found -> 0

let read_host_i8 t ~addr ~n =
  Array.init n (fun i -> sign_extend_byte (host_byte t (addr + i)))

let host_i32 t addr =
  let b0 = host_byte t addr
  and b1 = host_byte t (addr + 1)
  and b2 = host_byte t (addr + 2)
  and b3 = host_byte t (addr + 3) in
  sign_extend_i32 (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))

(* --- local memories ------------------------------------------------------ *)

let mem_of t la =
  if Local_addr.is_garbage la then
    illegal "golden: dereference of the garbage local address";
  if Local_addr.is_accumulator la then (t.acc, t.acc_rows, "accumulator")
  else (t.sp, t.sp_rows, "scratchpad")

let check_local_row t la row =
  let _, limit, target = mem_of t la in
  if row < 0 || row >= limit then
    trap (Fault.Local_oob { target; row; rows = 1; limit })

let read_row t la ~offset =
  let mem, _, _ = mem_of t la in
  let row = Local_addr.row la + offset in
  check_local_row t la row;
  Array.sub mem (row * t.dim) t.dim

(* A plain write zero-fills the row tail; an accumulating write adds
   element-wise with 32-bit saturation and leaves the tail alone. *)
let write_row t la ~offset (elems : int array) =
  let mem, _, _ = mem_of t la in
  let row = Local_addr.row la + offset in
  check_local_row t la row;
  let n = Array.length elems in
  if Local_addr.accumulate_flag la then begin
    if not (Local_addr.is_accumulator la) then
      illegal "golden: accumulate flag on a scratchpad address";
    Array.iteri
      (fun i v ->
        let j = (row * t.dim) + i in
        mem.(j) <- sat32 t (mem.(j) + v))
      elems
  end
  else begin
    Array.blit elems 0 mem (row * t.dim) n;
    Array.fill mem ((row * t.dim) + n) (t.dim - n) 0
  end

let read_block t la ~rows ~cols =
  Array.init rows (fun r -> Array.sub (read_row t la ~offset:r) 0 cols)

let read_block_or_zeros t la ~rows ~cols =
  if Local_addr.is_garbage la then Array.make_matrix rows cols 0
  else read_block t la ~rows ~cols

let write_block t la (m : int array array) =
  Array.iteri (fun r row -> write_row t la ~offset:r row) m

let transpose (m : int array array) =
  let rows = Array.length m and cols = Array.length m.(0) in
  Array.init cols (fun c -> Array.init rows (fun r -> m.(r).(c)))

(* --- the naive matmul ----------------------------------------------------

   C[i][j] starts from D (or zero) and accumulates A[i][r] * B[r][j] in
   ascending r with per-MAC accumulator-type saturation — the documented
   Pe.ws_step/os_step order. The dimension checks mirror the order the
   mesh documents so malformed operands trap identically. *)

let matmul t ~ws ~a ~b ~d =
  let i_n = Array.length a and k_n = Array.length a.(0) in
  let b_rows = Array.length b and j_n = Array.length b.(0) in
  if b_rows <> k_n then
    illegal "golden matmul: A is %dx%d but B is %dx%d" i_n k_n b_rows j_n;
  if ws then begin
    if k_n > t.dim then illegal "golden matmul: K=%d exceeds %d array rows" k_n t.dim
  end
  else if i_n > t.dim then
    illegal "golden matmul: I=%d exceeds %d array rows" i_n t.dim;
  if j_n > t.dim then illegal "golden matmul: J=%d exceeds %d array cols" j_n t.dim;
  (match d with
  | Some d ->
      if Array.length d <> i_n || Array.length d.(0) <> j_n then
        illegal "golden matmul: D is %dx%d, want %dx%d" (Array.length d)
          (Array.length d.(0)) i_n j_n
  | None -> ());
  let mutate_b = ws && t.mutate = Some Transposed_b in
  let acc_ty = t.p.Params.acc_type in
  Array.init i_n (fun i ->
      Array.init j_n (fun j ->
          let acc = ref (match d with Some d -> d.(i).(j) | None -> 0) in
          for r = 0 to k_n - 1 do
            let bv =
              if mutate_b then if j < b_rows && r < j_n then b.(j).(r) else 0
              else b.(r).(j)
            in
            acc := dt_sat t acc_ty (!acc + (a.(i).(r) * bv))
          done;
          !acc))

(* --- command validation, re-derived from isa.mli -------------------------- *)

let check ~what ~lo ~hi v =
  if v < lo || v > hi then illegal "%s = %d out of range [%d, %d]" what v lo hi

let finite scale =
  if not (Float.is_finite scale) then trap (Fault.Acc_overflow { scale })

let ceil_div a b = (a + b - 1) / b

let target_limit t la =
  if Local_addr.is_accumulator la then ("accumulator", t.acc_rows)
  else ("scratchpad", t.sp_rows)

(* A strided move touches rows [row, row + (blocks-1)*dim + rows). *)
let strided_extent t la ~cols ~rows =
  let blocks = ceil_div cols t.dim in
  let row = Local_addr.row la in
  let target, limit = target_limit t la in
  let last = row + ((blocks - 1) * t.dim) + rows in
  if last > limit then
    trap (Fault.Local_oob { target; row; rows = last - row; limit })

let block_extent t la ~rows =
  let row = Local_addr.row la in
  let target, limit = target_limit t la in
  if row + rows > limit then trap (Fault.Local_oob { target; row; rows; limit })

let dram_max = (1 lsl 48) - 1

let precheck t cmd =
  match cmd with
  | Isa.Config_ex { dataflow; sys_shift; _ } ->
      check ~what:"sys_shift" ~lo:0 ~hi:63 sys_shift;
      if not (Dataflow.supports t.p.Params.dataflow dataflow) then
        illegal "dataflow %s not supported by this instance"
          (match dataflow with `WS -> "WS" | `OS -> "OS")
  | Isa.Config_ld { ld_stride_bytes; ld_scale; ld_id; _ } ->
      check ~what:"ld_id" ~lo:0 ~hi:2 ld_id;
      check ~what:"ld_stride" ~lo:0 ~hi:0xFFFF_FFFF ld_stride_bytes;
      finite ld_scale
  | Isa.Config_st { st_stride_bytes; st_scale; st_pool; _ } ->
      check ~what:"st_stride" ~lo:0 ~hi:0xFFFF_FFFF st_stride_bytes;
      (match st_pool with
      | None -> ()
      | Some { Isa.window; stride; padding } ->
          check ~what:"pool window" ~lo:1 ~hi:15 window;
          check ~what:"pool stride" ~lo:1 ~hi:15 stride;
          check ~what:"pool padding" ~lo:0 ~hi:15 padding);
      finite st_scale
  | Isa.Mvin ({ Isa.dram_addr; local; cols; rows }, id) ->
      check ~what:"mvin id" ~lo:0 ~hi:2 id;
      check ~what:"dram_addr" ~lo:0 ~hi:dram_max dram_addr;
      check ~what:"mvin cols" ~lo:1 ~hi:(4 * t.dim) cols;
      check ~what:"mvin rows" ~lo:1 ~hi:t.dim rows;
      if Local_addr.is_garbage local then
        illegal "mvin destination is the garbage address";
      if Local_addr.accumulate_flag local && not (Local_addr.is_accumulator local)
      then illegal "mvin accumulate flag on a scratchpad destination";
      strided_extent t local ~cols ~rows
  | Isa.Mvout { Isa.dram_addr; local; cols; rows } ->
      check ~what:"dram_addr" ~lo:0 ~hi:dram_max dram_addr;
      check ~what:"mvout cols" ~lo:1 ~hi:t.dim cols;
      check ~what:"mvout rows" ~lo:1 ~hi:t.dim rows;
      if Local_addr.is_garbage local then
        illegal "mvout source is the garbage address";
      strided_extent t local ~cols ~rows
  | Isa.Preload { b; c; b_cols; b_rows; c_cols; c_rows } ->
      check ~what:"preload b_cols" ~lo:1 ~hi:t.dim b_cols;
      check ~what:"preload b_rows" ~lo:1 ~hi:t.dim b_rows;
      check ~what:"preload c_cols" ~lo:1 ~hi:t.dim c_cols;
      check ~what:"preload c_rows" ~lo:1 ~hi:t.dim c_rows;
      if not (Local_addr.is_garbage b) then block_extent t b ~rows:b_rows;
      if not (Local_addr.is_garbage c) then block_extent t c ~rows:c_rows
  | Isa.Compute_preloaded { a; bd; a_cols; a_rows; bd_cols; bd_rows }
  | Isa.Compute_accumulated { a; bd; a_cols; a_rows; bd_cols; bd_rows } ->
      check ~what:"compute a_cols" ~lo:1 ~hi:0xFFFF a_cols;
      check ~what:"compute a_rows" ~lo:1 ~hi:0xFFFF a_rows;
      check ~what:"compute bd_cols" ~lo:1 ~hi:0xFFFF bd_cols;
      check ~what:"compute bd_rows" ~lo:1 ~hi:0xFFFF bd_rows;
      if not (Local_addr.is_garbage a) then
        block_extent t a ~rows:(min a_rows t.dim);
      if not (Local_addr.is_garbage bd) then
        block_extent t bd ~rows:(min bd_rows t.dim)
  | Isa.Loop_ws_bounds { lw_m; lw_k; lw_n; _ } ->
      check ~what:"loop m" ~lo:1 ~hi:0xFFFF lw_m;
      check ~what:"loop k" ~lo:1 ~hi:0xFFFF lw_k;
      check ~what:"loop n" ~lo:1 ~hi:0xFFFF lw_n
  | Isa.Loop_ws_addrs { lw_a; lw_b } ->
      check ~what:"loop a" ~lo:0 ~hi:dram_max lw_a;
      check ~what:"loop b" ~lo:0 ~hi:dram_max lw_b
  | Isa.Loop_ws_outs { lw_bias; lw_c } ->
      check ~what:"loop bias" ~lo:0 ~hi:dram_max lw_bias;
      check ~what:"loop c" ~lo:0 ~hi:dram_max lw_c
  | Isa.Loop_ws { lw_a_stride; lw_b_stride; lw_c_stride; lw_scale } ->
      check ~what:"a stride" ~lo:0 ~hi:0xFF_FFFF lw_a_stride;
      check ~what:"b stride" ~lo:0 ~hi:0xFF_FFFF lw_b_stride;
      check ~what:"c stride" ~lo:0 ~hi:0xFF_FFFF lw_c_stride;
      finite lw_scale
  | Isa.Flush | Isa.Fence -> ()

(* --- command handlers ----------------------------------------------------- *)

let input_bytes t = Dtype.bytes t.p.Params.input_type

let elem_bytes t la =
  if Local_addr.is_accumulator la then Dtype.bytes t.p.Params.acc_type
  else input_bytes t

let do_mvin t (mv : Isa.mv) id =
  let cfg = t.ld.(id) in
  let eb = if cfg.ld_shrunk then input_bytes t else elem_bytes t mv.Isa.local in
  let row_bytes = mv.Isa.cols * eb in
  let stride =
    cfg.ld_stride + if t.mutate = Some Stride_off_by_one then 1 else 0
  in
  t.bytes_in <- t.bytes_in + (mv.Isa.rows * row_bytes);
  let acc_dest = Local_addr.is_accumulator mv.Isa.local in
  let wide = acc_dest && not cfg.ld_shrunk in
  for r = 0 to mv.Isa.rows - 1 do
    let base = mv.Isa.dram_addr + (r * stride) in
    let elems =
      Array.init mv.Isa.cols (fun c ->
          if wide then host_i32 t (base + (4 * c))
          else sign_extend_byte (host_byte t (base + c)))
    in
    let elems =
      if cfg.ld_scale = 1.0 then elems
      else
        Array.map
          (fun v ->
            scale_to t
              (if acc_dest then t.p.Params.acc_type else t.p.Params.input_type)
              ~scale:cfg.ld_scale v)
          elems
    in
    (* A wide mvin (cols > DIM) fills adjacent DIM-blocks a full array
       height apart: row r of block b lands at local + b*DIM + r. *)
    let nblocks = ceil_div mv.Isa.cols t.dim in
    for b = 0 to nblocks - 1 do
      let lo = b * t.dim in
      let len = min t.dim (mv.Isa.cols - lo) in
      write_row t mv.Isa.local ~offset:((b * t.dim) + r) (Array.sub elems lo len)
    done
  done

let do_mvout t (mv : Isa.mv) =
  let full = Local_addr.full_width_flag mv.Isa.local in
  let acc_src = Local_addr.is_accumulator mv.Isa.local in
  let out_eb =
    if acc_src && not full then input_bytes t else elem_bytes t mv.Isa.local
  in
  let row_bytes = mv.Isa.cols * out_eb in
  t.bytes_out <- t.bytes_out + (mv.Isa.rows * row_bytes);
  for r = 0 to mv.Isa.rows - 1 do
    let elems = Array.sub (read_row t mv.Isa.local ~offset:r) 0 mv.Isa.cols in
    let elems =
      if acc_src && not full then
        Array.map
          (fun v ->
            activation t t.st_act
              (scale_to t t.p.Params.input_type ~scale:t.st_scale v))
          elems
      else elems
    in
    let base = mv.Isa.dram_addr + (r * t.st_stride) in
    Array.iteri
      (fun c v ->
        if acc_src && full then begin
          Hashtbl.replace t.host (base + (4 * c)) (v land 0xFF);
          Hashtbl.replace t.host (base + (4 * c) + 1) ((v asr 8) land 0xFF);
          Hashtbl.replace t.host (base + (4 * c) + 2) ((v asr 16) land 0xFF);
          Hashtbl.replace t.host (base + (4 * c) + 3) ((v asr 24) land 0xFF)
        end
        else Hashtbl.replace t.host (base + c) (v land 0xFF))
      elems
  done

(* OS results stay resident in the PEs until the next preload (or a
   fence) flushes them to their destination — raw into the accumulator,
   shifted and saturated into the scratchpad. *)
let flush_os t =
  (match t.os_acc with
  | Some (data, dest) when not (Local_addr.is_garbage dest) ->
      let scaled =
        if Local_addr.is_accumulator dest then data
        else
          Array.map
            (Array.map (fun v ->
                 dt_sat t t.p.Params.input_type (rounding_shift v t.sys_shift)))
            data
      in
      write_block t dest scaled
  | _ -> ());
  t.os_acc <- None

let do_preload t ~b ~c ~b_rows ~b_cols ~c_rows ~c_cols =
  if t.dataflow = `OS then flush_os t;
  t.preload <-
    Some { pb = b; pc = c; pb_rows = b_rows; pb_cols = b_cols; pc_rows = c_rows; pc_cols = c_cols }

let do_compute t (args : Isa.compute_args) ~preloaded =
  let a_rows = min args.Isa.a_rows t.dim and a_cols = min args.Isa.a_cols t.dim in
  match t.dataflow with
  | `WS ->
      let pl =
        match t.preload with
        | Some pl -> pl
        | None -> illegal "WS compute without preload"
      in
      let k = a_cols and out_cols = pl.pc_cols in
      t.macs <- t.macs + (a_rows * k * out_cols);
      t.shapes_rev <- (`WS, a_rows, k, out_cols, preloaded) :: t.shapes_rev;
      let b =
        if preloaded then begin
          let b = read_block_or_zeros t pl.pb ~rows:pl.pb_rows ~cols:pl.pb_cols in
          let b = if t.b_t then transpose b else b in
          t.resident_b <- Some b;
          b
        end
        else
          match t.resident_b with
          | Some b -> b
          | None -> illegal "accumulate-compute without resident weights"
      in
      let a = read_block_or_zeros t args.Isa.a ~rows:a_rows ~cols:a_cols in
      let a = if t.a_t then transpose a else a in
      let d =
        if Local_addr.is_garbage args.Isa.bd then None
        else
          Some
            (read_block t args.Isa.bd
               ~rows:(min args.Isa.bd_rows t.dim)
               ~cols:(min args.Isa.bd_cols t.dim))
      in
      let out = matmul t ~ws:true ~a ~b ~d in
      if not (Local_addr.is_garbage pl.pc) then write_block t pl.pc out;
      if preloaded then t.preload <- Some { pl with pb = Local_addr.garbage }
  | `OS ->
      let pl =
        match t.preload with
        | Some pl -> pl
        | None -> illegal "OS compute without preload"
      in
      let k = a_cols in
      let out_rows = a_rows and out_cols = min args.Isa.bd_cols t.dim in
      t.macs <- t.macs + (out_rows * k * out_cols);
      t.shapes_rev <- (`OS, out_rows, k, out_cols, false) :: t.shapes_rev;
      let a = read_block_or_zeros t args.Isa.a ~rows:out_rows ~cols:k in
      let a = if t.a_t then transpose a else a in
      let b =
        read_block_or_zeros t args.Isa.bd
          ~rows:(min args.Isa.bd_rows t.dim)
          ~cols:out_cols
      in
      let b = if t.b_t then transpose b else b in
      let d =
        match t.os_acc with
        | Some (data, _) when not preloaded -> Some data
        | _ ->
            if Local_addr.is_garbage pl.pb then None
            else Some (read_block t pl.pb ~rows:pl.pb_rows ~cols:pl.pb_cols)
      in
      let out = matmul t ~ws:false ~a ~b ~d in
      t.os_acc <- Some (out, pl.pc)

(* LOOP_WS, interpreted as the linear algebra it promises: C = act(scale *
   (A*B + bias)), computed straight from and to host memory. Tile-order
   saturation is preserved (per-MAC accumulator-type saturation within
   each DIM-wide k-slab, 32-bit saturating accumulation across slabs in
   ascending order) because that grouping is architecturally visible at
   the extremes. Scratchpad/accumulator contents and compute staging are
   left unspecified afterwards. *)
let do_loop_ws t (strides : Isa.loop_strides) =
  let bounds =
    match t.loop_bounds with
    | Some b -> b
    | None -> illegal "LOOP_WS without LOOP_WS_CONFIG_BOUNDS"
  in
  let addrs =
    match t.loop_addrs with
    | Some a -> a
    | None -> illegal "LOOP_WS without LOOP_WS_CONFIG_ADDRS"
  in
  let outs =
    match t.loop_outs with
    | Some o -> o
    | None -> illegal "LOOP_WS without LOOP_WS_CONFIG_OUTS"
  in
  t.saw_loop <- true;
  let m = bounds.Isa.lw_m and k = bounds.Isa.lw_k and n = bounds.Isa.lw_n in
  t.macs <- t.macs + (m * k * n);
  (* Lower bounds on traffic: every A and B element crosses the bus at
     least once, biases are 4-byte broadcast rows, C leaves exactly once. *)
  t.bytes_in <-
    t.bytes_in + (m * k) + (k * n)
    + (if bounds.Isa.lw_has_bias then 4 * m * n else 0);
  t.bytes_out <- t.bytes_out + (m * n);
  let acc_ty = t.p.Params.acc_type in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc =
        ref
          (if bounds.Isa.lw_has_bias then host_i32 t (outs.Isa.lw_bias + (4 * j))
           else 0)
      in
      let slabs = ceil_div k t.dim in
      for gk = 0 to slabs - 1 do
        let r_lo = gk * t.dim and r_hi = min k ((gk + 1) * t.dim) in
        let tile = ref 0 in
        for r = r_lo to r_hi - 1 do
          let av =
            sign_extend_byte
              (host_byte t (addrs.Isa.lw_a + (i * strides.Isa.lw_a_stride) + r))
          in
          let bv =
            sign_extend_byte
              (host_byte t (addrs.Isa.lw_b + (r * strides.Isa.lw_b_stride) + j))
          in
          tile := dt_sat t acc_ty (!tile + (av * bv))
        done;
        acc := sat32 t (!acc + !tile)
      done;
      let v =
        activation t bounds.Isa.lw_activation
          (scale_to t t.p.Params.input_type ~scale:strides.Isa.lw_scale !acc)
      in
      Hashtbl.replace t.host
        (outs.Isa.lw_c + (i * strides.Isa.lw_c_stride) + j)
        (v land 0xFF)
    done
  done;
  (* The sequencer clobbers the mover/store configuration on its way
     through; later commands observe the clobbered values. *)
  t.dataflow <- `WS;
  t.sys_shift <- 0;
  t.a_t <- false;
  t.b_t <- false;
  t.ld.(0) <- { ld_stride = strides.Isa.lw_a_stride; ld_scale = 1.0; ld_shrunk = false };
  t.ld.(1) <- { ld_stride = strides.Isa.lw_b_stride; ld_scale = 1.0; ld_shrunk = false };
  t.ld.(2) <- { ld_stride = 0; ld_scale = 1.0; ld_shrunk = false };
  t.st_stride <- strides.Isa.lw_c_stride;
  t.st_act <- bounds.Isa.lw_activation;
  t.st_scale <- strides.Isa.lw_scale;
  t.preload <- None;
  t.resident_b <- None

(* --- dispatch ------------------------------------------------------------- *)

let exec t cmd =
  try
    precheck t cmd;
    (match cmd with
    | Isa.Config_ex c ->
        t.dataflow <- c.Isa.dataflow;
        t.sys_shift <- c.Isa.sys_shift;
        t.a_t <- c.Isa.a_transpose;
        t.b_t <- c.Isa.b_transpose
    | Isa.Config_ld c ->
        t.ld.(c.Isa.ld_id) <-
          { ld_stride = c.Isa.ld_stride_bytes; ld_scale = c.Isa.ld_scale; ld_shrunk = c.Isa.ld_shrunk }
    | Isa.Config_st c ->
        t.st_stride <- c.Isa.st_stride_bytes;
        t.st_act <- c.Isa.st_activation;
        t.st_scale <- c.Isa.st_scale
    | Isa.Mvin (mv, id) -> do_mvin t mv id
    | Isa.Mvout mv -> do_mvout t mv
    | Isa.Preload { b; c; b_cols; b_rows; c_cols; c_rows } ->
        do_preload t ~b ~c ~b_rows ~b_cols ~c_rows ~c_cols
    | Isa.Compute_preloaded args -> do_compute t args ~preloaded:true
    | Isa.Compute_accumulated args -> do_compute t args ~preloaded:false
    | Isa.Loop_ws_bounds b -> t.loop_bounds <- Some b
    | Isa.Loop_ws_addrs a -> t.loop_addrs <- Some a
    | Isa.Loop_ws_outs o -> t.loop_outs <- Some o
    | Isa.Loop_ws strides -> do_loop_ws t strides
    | Isa.Flush -> () (* TLB-only: no architectural data moves *)
    | Isa.Fence -> flush_os t);
    Ok ()
  with Trap_c cause -> Error cause

let run t program =
  let rec go i = function
    | [] -> None
    | cmd :: rest -> (
        match exec t cmd with
        | Ok () -> go (i + 1) rest
        | Error cause -> Some (i, cause))
  in
  go 0 program

(* --- accessors ------------------------------------------------------------ *)

let sp_row t row = Array.sub t.sp (row * t.dim) t.dim
let acc_row t row = Array.sub t.acc (row * t.dim) t.dim
let macs t = t.macs
let bytes_in t = t.bytes_in
let bytes_out t = t.bytes_out
let compute_shapes t = List.rev t.shapes_rev
let saw_loop t = t.saw_loop
