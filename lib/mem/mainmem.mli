(** Sparse functional main memory (physical address space).

    Backs the functional-mode DMA: pages (4 KiB) are allocated lazily, so a
    tiny test footprint costs a tiny amount of host memory even though the
    simulated physical address space is large. Reads of untouched memory
    return zero, like zero-filled pages from an OS. *)

type t

val create : unit -> t

val read_byte : t -> addr:int -> int
(** Unsigned byte value 0..255. *)

val write_byte : t -> addr:int -> int -> unit
(** Stores the low 8 bits of the value. *)

val read_i8 : t -> addr:int -> int
(** Sign-extended int8. *)

val write_i8 : t -> addr:int -> int -> unit
(** Saturation is the caller's business; stores the low byte. *)

val read_i32 : t -> addr:int -> int
(** Little-endian signed 32-bit. *)

val write_i32 : t -> addr:int -> int -> unit

val read_i8_array : t -> addr:int -> n:int -> int array
val write_i8_array : t -> addr:int -> int array -> unit
val read_i32_array : t -> addr:int -> n:int -> int array
val write_i32_array : t -> addr:int -> int array -> unit

val touched_pages : t -> int

val snapshot : t -> Gem_util.Jsonx.t
(** Every touched page as [[key, hex-bytes]], sorted by page key for
    deterministic output. *)

val restore : t -> Gem_util.Jsonx.t -> unit
(** Replaces the full contents with a {!snapshot}'s pages. *)
