(** DRAM channel model: fixed access latency plus a shared bandwidth
    resource.

    A request of [bytes] arriving at [now] occupies the channel for
    [ceil (bytes / bytes_per_cycle)] cycles after any queued requests, and
    data arrives [latency] cycles after its service slot starts. All
    requestors of an SoC (every core's accelerator DMA and every CPU) share
    one instance, which is how DRAM bandwidth contention appears in the
    dual-core experiments. *)

type t

val create :
  ?engine:Gem_sim.Engine.t ->
  ?name:string ->
  latency:Gem_sim.Time.cycles ->
  bytes_per_cycle:int ->
  unit ->
  t
(** The channel registers itself in [engine]'s resource registry (a fresh
    private engine is created when none is supplied). *)

val latency : t -> Gem_sim.Time.cycles
val bytes_per_cycle : t -> int

val access :
  t -> now:Gem_sim.Time.cycles -> bytes:int -> write:bool -> Gem_sim.Time.cycles
(** Completion time of the request. *)

val bytes_read : t -> int
val bytes_written : t -> int
val requests : t -> int
val busy_cycles : t -> Gem_sim.Time.cycles
val reset : t -> unit

val snapshot : t -> Gem_util.Jsonx.t
(** Byte counters only — the channel's timing state is engine-owned and
    travels with {!Gem_sim.Engine.snapshot}. *)

val restore : t -> Gem_util.Jsonx.t -> unit
