open Gem_sim

type t = {
  latency : Time.cycles;
  bytes_per_cycle : int;
  channel : Resource.t;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let create ?(name = "dram") ~latency ~bytes_per_cycle () =
  if latency < 0 then invalid_arg "Dram.create: negative latency";
  if bytes_per_cycle <= 0 then invalid_arg "Dram.create: bandwidth <= 0";
  {
    latency;
    bytes_per_cycle;
    channel = Resource.create ~name;
    bytes_read = 0;
    bytes_written = 0;
  }

let latency t = t.latency
let bytes_per_cycle t = t.bytes_per_cycle

let access t ~now ~bytes ~write =
  if bytes < 0 then invalid_arg "Dram.access: negative size";
  let occupancy = Gem_util.Mathx.ceil_div (max bytes 1) t.bytes_per_cycle in
  let service_done = Resource.acquire t.channel ~now ~occupancy in
  if write then t.bytes_written <- t.bytes_written + bytes
  else t.bytes_read <- t.bytes_read + bytes;
  service_done + t.latency

let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let requests t = Resource.requests t.channel
let busy_cycles t = Resource.busy_cycles t.channel

let reset t =
  Resource.reset t.channel;
  t.bytes_read <- 0;
  t.bytes_written <- 0
