open Gem_sim

type t = {
  latency : Time.cycles;
  bytes_per_cycle : int;
  engine : Engine.t;
  channel : Resource.t;
  bytes_read : int ref;
  bytes_written : int ref;
}

let create ?engine ?(name = "dram") ~latency ~bytes_per_cycle () =
  if latency < 0 then invalid_arg "Dram.create: negative latency";
  if bytes_per_cycle <= 0 then invalid_arg "Dram.create: bandwidth <= 0";
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let bytes_read = ref 0 and bytes_written = ref 0 in
  let channel =
    Engine.resource engine ~kind:Engine.Dram ~name ~note:(fun () ->
        Printf.sprintf "%s B read, %s B written"
          (Gem_util.Table.fmt_int !bytes_read)
          (Gem_util.Table.fmt_int !bytes_written))
  in
  { latency; bytes_per_cycle; engine; channel; bytes_read; bytes_written }

let latency t = t.latency
let bytes_per_cycle t = t.bytes_per_cycle

let access t ~now ~bytes ~write =
  if bytes < 0 then invalid_arg "Dram.access: negative size";
  let occupancy = Gem_util.Mathx.ceil_div (max bytes 1) t.bytes_per_cycle in
  let service_done = Engine.acquire t.engine t.channel ~now ~occupancy in
  if write then t.bytes_written := !(t.bytes_written) + bytes
  else t.bytes_read := !(t.bytes_read) + bytes;
  if Engine.live t.engine then
    Engine.emit t.engine
      (Engine.Transfer
         {
           component = Resource.name t.channel;
           time = now;
           dir = (if write then `Write else `Read);
           bytes;
         });
  service_done + t.latency

let bytes_read t = !(t.bytes_read)
let bytes_written t = !(t.bytes_written)
let requests t = Resource.requests t.channel
let busy_cycles t = Resource.busy_cycles t.channel

let reset t =
  Resource.reset t.channel;
  t.bytes_read := 0;
  t.bytes_written := 0

(* The channel resource itself is engine-owned and travels with the
   engine snapshot; only the byte counters live here. *)
let snapshot t =
  Gem_util.Jsonx.Obj
    [ ("bytes_read", Gem_util.Jsonx.Int !(t.bytes_read));
      ("bytes_written", Gem_util.Jsonx.Int !(t.bytes_written)) ]

let restore t j =
  t.bytes_read := Gem_util.Snap.get_int "bytes_read" j;
  t.bytes_written := Gem_util.Snap.get_int "bytes_written" j
