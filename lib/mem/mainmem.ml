let page_bits = 12
let page_size = 1 lsl page_bits

type t = { pages : (int, Bytes.t) Hashtbl.t }

let create () = { pages = Hashtbl.create 256 }

let page_of t addr =
  let key = addr lsr page_bits in
  match Hashtbl.find_opt t.pages key with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.add t.pages key p;
      p

let read_byte t ~addr =
  if addr < 0 then invalid_arg "Mainmem.read_byte: negative address";
  match Hashtbl.find_opt t.pages (addr lsr page_bits) with
  | None -> 0
  | Some p -> Char.code (Bytes.get p (addr land (page_size - 1)))

let write_byte t ~addr v =
  if addr < 0 then invalid_arg "Mainmem.write_byte: negative address";
  let p = page_of t addr in
  Bytes.set p (addr land (page_size - 1)) (Char.chr (v land 0xFF))

let read_i8 t ~addr =
  let b = read_byte t ~addr in
  if b >= 128 then b - 256 else b

let write_i8 t ~addr v = write_byte t ~addr v

let read_i32 t ~addr =
  let b0 = read_byte t ~addr in
  let b1 = read_byte t ~addr:(addr + 1) in
  let b2 = read_byte t ~addr:(addr + 2) in
  let b3 = read_byte t ~addr:(addr + 3) in
  let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  (* Sign-extend from 32 bits. *)
  (v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32)

let write_i32 t ~addr v =
  write_byte t ~addr v;
  write_byte t ~addr:(addr + 1) (v asr 8);
  write_byte t ~addr:(addr + 2) (v asr 16);
  write_byte t ~addr:(addr + 3) (v asr 24)

let read_i8_array t ~addr ~n = Array.init n (fun i -> read_i8 t ~addr:(addr + i))

let write_i8_array t ~addr vs =
  Array.iteri (fun i v -> write_i8 t ~addr:(addr + i) v) vs

let read_i32_array t ~addr ~n =
  Array.init n (fun i -> read_i32 t ~addr:(addr + (4 * i)))

let write_i32_array t ~addr vs =
  Array.iteri (fun i v -> write_i32 t ~addr:(addr + (4 * i)) v) vs

let touched_pages t = Hashtbl.length t.pages

let hex_of_bytes b =
  let n = Bytes.length b in
  let out = Buffer.create (2 * n) in
  for i = 0 to n - 1 do
    Buffer.add_string out (Printf.sprintf "%02x" (Char.code (Bytes.get b i)))
  done;
  Buffer.contents out

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Gem_util.Snap.fail "odd hex page length";
  let hexval c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> Gem_util.Snap.fail "bad hex digit %C" c
  in
  Bytes.init (n / 2)
    (fun i -> Char.chr ((hexval s.[2 * i] lsl 4) lor hexval s.[(2 * i) + 1]))

let snapshot t =
  let pages =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.pages [])
  in
  Gem_util.Jsonx.List
    (List.map
       (fun (key, page) ->
         Gem_util.Jsonx.List
           [ Gem_util.Jsonx.Int key; Gem_util.Jsonx.String (hex_of_bytes page) ])
       pages)

let restore t j =
  Hashtbl.reset t.pages;
  List.iter
    (fun entry ->
      match Gem_util.Snap.list entry with
      | [ k; v ] ->
          let page = bytes_of_hex (Gem_util.Snap.str v) in
          if Bytes.length page <> page_size then
            Gem_util.Snap.fail "bad page size %d" (Bytes.length page);
          Hashtbl.replace t.pages (Gem_util.Snap.int k) page
      | _ -> Gem_util.Snap.fail "bad mainmem page entry")
    (Gem_util.Snap.list j)
