open Gem_util

type t = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  sets : int;
  set_shift : int;
  set_mask : int;
  tags : int array; (* set*ways + way; -1 = invalid *)
  dirty : bool array;
  age : int array; (* larger = more recently used *)
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  mutable read_misses : int;
  mutable write_misses : int;
}

(* Constant constructors: the L2 sits on the DMA path, so [access] runs
   millions of times per inference and must not allocate a [Miss] record
   per call. *)
type result = Hit | Miss | Miss_writeback

let hit_rate t = Stats.hit_rate ~hits:t.hits ~total:t.accesses

let create ?engine ?(name = "cache") ~size_bytes ~ways ~line_bytes () =
  if size_bytes <= 0 || ways <= 0 || line_bytes <= 0 then
    invalid_arg "Cache.create: non-positive parameter";
  if not (Mathx.is_pow2 line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  if size_bytes mod (ways * line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by ways*line";
  let sets = size_bytes / (ways * line_bytes) in
  if not (Mathx.is_pow2 sets) then
    invalid_arg "Cache.create: set count must be a power of two";
  let t =
    {
      size_bytes;
      ways;
      line_bytes;
      sets;
      set_shift = Mathx.log2_exact line_bytes;
      set_mask = sets - 1;
      tags = Array.make (sets * ways) (-1);
      dirty = Array.make (sets * ways) false;
      age = Array.make (sets * ways) 0;
      clock = 0;
      accesses = 0;
      hits = 0;
      misses = 0;
      writebacks = 0;
      read_misses = 0;
      write_misses = 0;
    }
  in
  (match engine with
  | None -> ()
  | Some e ->
      (* The cache's timing is charged by whoever owns its port; it
         registers as a metrics probe so hit behavior shows up in the
         engine's profile next to the resources it drives. *)
      Gem_sim.Engine.register_probe e ~kind:Gem_sim.Engine.Cache ~name
        ~sample:(fun () ->
          {
            Gem_sim.Engine.p_requests = t.accesses;
            p_busy = 0;
            p_wait = 0;
            p_note =
              Printf.sprintf "%.1f%% hit, %d writebacks"
                (100. *. hit_rate t) t.writebacks;
          }));
  t

let size_bytes t = t.size_bytes
let ways t = t.ways
let line_bytes t = t.line_bytes
let sets t = t.sets

let decompose t addr =
  let line = addr lsr t.set_shift in
  let set = line land t.set_mask in
  let tag = line lsr (Mathx.log2_exact t.sets) in
  (set, tag)

let access t ~addr ~write =
  if addr < 0 then invalid_arg "Cache.access: negative address";
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let set, tag = decompose t addr in
  let base = set * t.ways in
  (* Look for a hit. *)
  let rec find w = if w >= t.ways then None
    else if t.tags.(base + w) = tag then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
      t.hits <- t.hits + 1;
      t.age.(base + w) <- t.clock;
      if write then t.dirty.(base + w) <- true;
      Hit
  | None ->
      t.misses <- t.misses + 1;
      if write then t.write_misses <- t.write_misses + 1
      else t.read_misses <- t.read_misses + 1;
      (* Choose victim: an invalid way if any, else LRU. *)
      let victim = ref 0 in
      let best_age = ref max_int in
      (try
         for w = 0 to t.ways - 1 do
           if t.tags.(base + w) = -1 then begin
             victim := w;
             raise Exit
           end;
           if t.age.(base + w) < !best_age then begin
             best_age := t.age.(base + w);
             victim := w
           end
         done
       with Exit -> ());
      let idx = base + !victim in
      let writeback = t.tags.(idx) <> -1 && t.dirty.(idx) in
      if writeback then t.writebacks <- t.writebacks + 1;
      t.tags.(idx) <- tag;
      t.dirty.(idx) <- write;
      t.age.(idx) <- t.clock;
      if writeback then Miss_writeback else Miss

let access_range t ~addr ~bytes ~write =
  if bytes < 0 then invalid_arg "Cache.access_range: negative size";
  let hits = ref 0 and misses = ref 0 and wbs = ref 0 in
  if bytes > 0 then begin
    let first = addr lsr t.set_shift in
    let last = (addr + bytes - 1) lsr t.set_shift in
    for line = first to last do
      match access t ~addr:(line lsl t.set_shift) ~write with
      | Hit -> incr hits
      | Miss -> incr misses
      | Miss_writeback ->
          incr misses;
          incr wbs
    done
  end;
  (!hits, !misses, !wbs)

let probe t ~addr =
  let set, tag = decompose t addr in
  let base = set * t.ways in
  let rec find w =
    if w >= t.ways then false
    else t.tags.(base + w) = tag || find (w + 1)
  in
  find 0

let resident_lines t =
  Array.fold_left (fun acc tag -> if tag >= 0 then acc + 1 else acc) 0 t.tags

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.age 0 (Array.length t.age) 0

let accesses t = t.accesses
let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks
let read_misses t = t.read_misses
let write_misses t = t.write_misses

let miss_rate t = Stats.hit_rate ~hits:t.misses ~total:t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0;
  t.read_misses <- 0;
  t.write_misses <- 0

module J = Jsonx

let snapshot t =
  J.Obj
    [ ("size_bytes", J.Int t.size_bytes);
      ("ways", J.Int t.ways);
      ("line_bytes", J.Int t.line_bytes);
      ("tags", Snap.of_int_array t.tags);
      ("dirty", J.List (Array.to_list (Array.map (fun b -> J.Bool b) t.dirty)));
      ("age", Snap.of_int_array t.age);
      ("clock", J.Int t.clock);
      ("accesses", J.Int t.accesses);
      ("hits", J.Int t.hits);
      ("misses", J.Int t.misses);
      ("writebacks", J.Int t.writebacks);
      ("read_misses", J.Int t.read_misses);
      ("write_misses", J.Int t.write_misses) ]

let restore t j =
  Snap.check ~what:"cache geometry"
    (Snap.get_int "size_bytes" j = t.size_bytes
    && Snap.get_int "ways" j = t.ways
    && Snap.get_int "line_bytes" j = t.line_bytes);
  let tags = Snap.int_array (Snap.member "tags" j) in
  let age = Snap.int_array (Snap.member "age" j) in
  let dirty = Array.of_list (List.map Snap.bool (Snap.get_list "dirty" j)) in
  Snap.check ~what:"cache array sizes"
    (Array.length tags = Array.length t.tags
    && Array.length age = Array.length t.age
    && Array.length dirty = Array.length t.dirty);
  Array.blit tags 0 t.tags 0 (Array.length tags);
  Array.blit age 0 t.age 0 (Array.length age);
  Array.blit dirty 0 t.dirty 0 (Array.length dirty);
  t.clock <- Snap.get_int "clock" j;
  t.accesses <- Snap.get_int "accesses" j;
  t.hits <- Snap.get_int "hits" j;
  t.misses <- Snap.get_int "misses" j;
  t.writebacks <- Snap.get_int "writebacks" j;
  t.read_misses <- Snap.get_int "read_misses" j;
  t.write_misses <- Snap.get_int "write_misses" j
