(** Set-associative write-back, write-allocate cache with LRU replacement.

    Used for the SoC's shared L2. Gemmini's DMA traffic flows through the
    shared L2 (as in Chipyard's TileLink hierarchy), so the cache contents
    are what create the resource-partitioning effects of the paper's
    Section V-B case study: residual-add inputs surviving (or not) in the
    L2, and dual-core workloads thrashing each other's lines. *)

type t

type result =
  | Hit
  | Miss  (** miss with a clean (or invalid) victim line *)
  | Miss_writeback
      (** miss whose victim line was dirty and must be written back to
          DRAM. Constant constructors keep the hot path allocation-free. *)

val create :
  ?engine:Gem_sim.Engine.t ->
  ?name:string ->
  size_bytes:int ->
  ways:int ->
  line_bytes:int ->
  unit ->
  t
(** [size_bytes] must be divisible by [ways * line_bytes] and the number of
    sets must be a power of two. When [engine] is given, the cache
    registers a metrics probe (accesses, hit rate, writebacks) in its
    registry; timing stays with the owner of the cache's port resource. *)

val size_bytes : t -> int
val ways : t -> int
val line_bytes : t -> int
val sets : t -> int

val access : t -> addr:int -> write:bool -> result
(** One access to the line containing [addr]. Allocates on miss (evicting
    the set's LRU line) and marks the line dirty on writes. *)

val access_range : t -> addr:int -> bytes:int -> write:bool -> int * int * int
(** [access_range t ~addr ~bytes ~write] touches every line overlapping
    [addr, addr+bytes) and returns [(hits, misses, writebacks)]. *)

val probe : t -> addr:int -> bool
(** True when the line containing [addr] is resident (no state change). *)

val resident_lines : t -> int
(** Number of valid lines currently held. *)

val invalidate_all : t -> unit
(** Drops all lines without writeback (used between experiment runs). *)

(* Statistics *)

val accesses : t -> int
val hits : t -> int
val misses : t -> int
val writebacks : t -> int
val read_misses : t -> int
val write_misses : t -> int
val hit_rate : t -> float
val miss_rate : t -> float
val reset_stats : t -> unit

val snapshot : t -> Gem_util.Jsonx.t
(** Full replacement state (tags/dirty/LRU ages) plus statistics, with the
    geometry embedded for restore-time verification. *)

val restore : t -> Gem_util.Jsonx.t -> unit
(** Overwrites contents and statistics from a {!snapshot} taken on a cache
    of identical geometry; raises {!Gem_util.Snap.Malformed} otherwise. *)
