type t = {
  banks : int;
  rows_per_bank : int;
  elems_per_row : int;
  data : int array array; (* bank -> flattened rows *)
  mutable reads : int;
  mutable writes : int;
}

let create ~banks ~rows_per_bank ~elems_per_row =
  if banks <= 0 || rows_per_bank <= 0 || elems_per_row <= 0 then
    invalid_arg "Sram.create: non-positive dimension";
  {
    banks;
    rows_per_bank;
    elems_per_row;
    data = Array.init banks (fun _ -> Array.make (rows_per_bank * elems_per_row) 0);
    reads = 0;
    writes = 0;
  }

let banks t = t.banks
let rows_per_bank t = t.rows_per_bank
let elems_per_row t = t.elems_per_row
let total_rows t = t.banks * t.rows_per_bank

let check_row t row =
  if row < 0 || row >= total_rows t then
    invalid_arg (Printf.sprintf "Sram: row %d out of range [0,%d)" row (total_rows t))

let bank_of_row t row =
  check_row t row;
  row / t.rows_per_bank

let locate t row =
  check_row t row;
  let bank = row / t.rows_per_bank in
  let local = row mod t.rows_per_bank in
  (t.data.(bank), local * t.elems_per_row)

let read_row t ~row =
  let bank, off = locate t row in
  t.reads <- t.reads + 1;
  Array.sub bank off t.elems_per_row

let read_elem t ~row ~col =
  if col < 0 || col >= t.elems_per_row then invalid_arg "Sram.read_elem: bad col";
  let bank, off = locate t row in
  t.reads <- t.reads + 1;
  bank.(off + col)

let write_row t ~row src =
  if Array.length src > t.elems_per_row then
    invalid_arg "Sram.write_row: source wider than row";
  let bank, off = locate t row in
  t.writes <- t.writes + 1;
  let n = Array.length src in
  Array.blit src 0 bank off n;
  Array.fill bank (off + n) (t.elems_per_row - n) 0

let write_elem t ~row ~col v =
  if col < 0 || col >= t.elems_per_row then invalid_arg "Sram.write_elem: bad col";
  let bank, off = locate t row in
  t.writes <- t.writes + 1;
  bank.(off + col) <- v

let accumulate_row t ~row src =
  if Array.length src > t.elems_per_row then
    invalid_arg "Sram.accumulate_row: source wider than row";
  let bank, off = locate t row in
  t.writes <- t.writes + 1;
  Array.iteri
    (fun i v -> bank.(off + i) <- Gem_util.Fixed.sat32 (bank.(off + i) + v))
    src

let fill t v = Array.iter (fun bank -> Array.fill bank 0 (Array.length bank) v) t.data

let reads t = t.reads
let writes t = t.writes

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0

module J = Gem_util.Jsonx
module Snap = Gem_util.Snap

let snapshot ?(with_data = false) t =
  let base =
    [ ("banks", J.Int t.banks);
      ("rows_per_bank", J.Int t.rows_per_bank);
      ("elems_per_row", J.Int t.elems_per_row);
      ("reads", J.Int t.reads);
      ("writes", J.Int t.writes) ]
  in
  let fields =
    if with_data then
      base
      @ [ ("data", J.List (Array.to_list (Array.map Snap.of_int_array t.data))) ]
    else base
  in
  J.Obj fields

let restore t j =
  Snap.check ~what:"sram geometry"
    (Snap.get_int "banks" j = t.banks
    && Snap.get_int "rows_per_bank" j = t.rows_per_bank
    && Snap.get_int "elems_per_row" j = t.elems_per_row);
  t.reads <- Snap.get_int "reads" j;
  t.writes <- Snap.get_int "writes" j;
  match Gem_util.Jsonx.member "data" j with
  | None -> ()
  | Some d ->
      let banks = List.map Snap.int_array (Snap.list d) in
      Snap.check ~what:"sram bank count" (List.length banks = t.banks);
      List.iteri
        (fun i bank ->
          Snap.check ~what:"sram bank size"
            (Array.length bank = Array.length t.data.(i));
          Array.blit bank 0 t.data.(i) 0 (Array.length bank))
        banks
