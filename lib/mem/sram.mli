(** Banked SRAM model — the substrate for Gemmini's scratchpad and
    accumulator memories.

    The memory is organized as [banks] banks of [rows_per_bank] rows, each
    row holding [elems_per_row] integer elements (int8 for the scratchpad,
    int32 for the accumulator). Rows are addressed with a flat row index
    whose high bits select the bank, exactly like Gemmini's local scratchpad
    addresses. The functional model stores real values; access counters feed
    the statistics surface. *)

type t

val create : banks:int -> rows_per_bank:int -> elems_per_row:int -> t

val banks : t -> int
val rows_per_bank : t -> int
val elems_per_row : t -> int
val total_rows : t -> int
val bank_of_row : t -> int -> int

val read_row : t -> row:int -> int array
(** Copy of the row's elements. Raises [Invalid_argument] on bad row. *)

val read_elem : t -> row:int -> col:int -> int

val write_row : t -> row:int -> int array -> unit
(** Writes a full row. The source array may be shorter than the row, in
    which case remaining elements are zero-filled (hardware pads mvins). *)

val write_elem : t -> row:int -> col:int -> int -> unit

val accumulate_row : t -> row:int -> int array -> unit
(** Element-wise saturating int32 addition into the row — the accumulator
    write path when the accumulate bit is set. *)

val fill : t -> int -> unit
(** Set every element of every row. *)

val reads : t -> int
val writes : t -> int
val reset_stats : t -> unit

val snapshot : ?with_data:bool -> t -> Gem_util.Jsonx.t
(** Geometry + access counters; [~with_data:true] additionally serializes
    the full contents (functional mode — timing-only runs never write
    data, so the default skips the arrays). *)

val restore : t -> Gem_util.Jsonx.t -> unit
(** Restores counters (and contents when present) from a {!snapshot} of an
    identically-shaped SRAM; raises {!Gem_util.Snap.Malformed} otherwise. *)
