(** System-bus model: a shared link of [width_bytes] per cycle between the
    accelerators/CPUs and the L2. Gemmini's SoC integration exposes the bus
    width as an SoC-level generator parameter; this model charges occupancy
    per transfer so narrow buses throttle DMA throughput. *)

type t

val create :
  ?engine:Gem_sim.Engine.t -> ?name:string -> width_bytes:int -> unit -> t
(** The link registers itself in [engine]'s resource registry (a fresh
    private engine is created when none is supplied). *)

val width_bytes : t -> int

val transfer :
  t -> now:Gem_sim.Time.cycles -> bytes:int -> Gem_sim.Time.cycles
(** Completion time of moving [bytes] across the bus starting no earlier
    than [now]. *)

val bytes_moved : t -> int
val busy_cycles : t -> Gem_sim.Time.cycles
val reset : t -> unit
