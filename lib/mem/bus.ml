open Gem_sim

type t = {
  width_bytes : int;
  engine : Engine.t;
  link : Resource.t;
  bytes_moved : int ref;
}

let create ?engine ?(name = "sysbus") ~width_bytes () =
  if width_bytes <= 0 then invalid_arg "Bus.create: width <= 0";
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let bytes_moved = ref 0 in
  let link =
    Engine.resource engine ~kind:Engine.Bus ~name ~note:(fun () ->
        Printf.sprintf "%s bytes moved" (Gem_util.Table.fmt_int !bytes_moved))
  in
  { width_bytes; engine; link; bytes_moved }

let width_bytes t = t.width_bytes

let transfer t ~now ~bytes =
  if bytes < 0 then invalid_arg "Bus.transfer: negative size";
  let occupancy = Gem_util.Mathx.ceil_div (max bytes 1) t.width_bytes in
  t.bytes_moved := !(t.bytes_moved) + bytes;
  Engine.acquire t.engine t.link ~now ~occupancy

let bytes_moved t = !(t.bytes_moved)
let busy_cycles t = Resource.busy_cycles t.link

let reset t =
  Resource.reset t.link;
  t.bytes_moved := 0
