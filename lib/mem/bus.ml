open Gem_sim

type t = {
  width_bytes : int;
  link : Resource.t;
  mutable bytes_moved : int;
}

let create ?(name = "sysbus") ~width_bytes () =
  if width_bytes <= 0 then invalid_arg "Bus.create: width <= 0";
  { width_bytes; link = Resource.create ~name; bytes_moved = 0 }

let width_bytes t = t.width_bytes

let transfer t ~now ~bytes =
  if bytes < 0 then invalid_arg "Bus.transfer: negative size";
  let occupancy = Gem_util.Mathx.ceil_div (max bytes 1) t.width_bytes in
  t.bytes_moved <- t.bytes_moved + bytes;
  Resource.acquire t.link ~now ~occupancy

let bytes_moved t = t.bytes_moved
let busy_cycles t = Resource.busy_cycles t.link

let reset t =
  Resource.reset t.link;
  t.bytes_moved <- 0
