module J = Gem_util.Jsonx
module Snap = Gem_util.Snap
module Soc = Gem_soc.Soc
module Runtime = Gem_sw.Runtime
module Layer = Gem_dnn.Layer
module Fault = Gem_sim.Fault

let format_version = "1"

(* --- envelope --------------------------------------------------------------- *)

(* The checksum covers the payload's canonical serialization (our own
   serializer is deterministic), so bit rot anywhere inside the state is
   caught before a single field restores. *)
let payload_checksum payload = Digest.to_hex (Digest.string (J.to_string payload))

let save ~path ~meta ~payload =
  let envelope =
    J.Obj
      [ ("gem_persist_version", J.String format_version);
        ("checksum", J.String (payload_checksum payload));
        ("meta", J.Obj meta);
        ("payload", payload) ]
  in
  (* Same-directory temp + rename: the rename is atomic on POSIX, so a
     crash (or SIGKILL) at any point leaves either the old file or a
     stray temp — never a truncated checkpoint under the real name. The
     pid keeps concurrent writers (sweep workers, parallel CI jobs) off
     each other's temp files. *)
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (match
     (output_string oc (J.to_string envelope); output_char oc '\n')
   with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | raw -> (
      match J.of_string raw with
      | Error msg -> Error (Printf.sprintf "%s: malformed JSON: %s" path msg)
      | Ok env -> (
          try
            let version = Snap.get_str "gem_persist_version" env in
            if version <> format_version then
              Error
                (Printf.sprintf "%s: format version %S, this build reads %S"
                   path version format_version)
            else begin
              let payload = Snap.member "payload" env in
              let expect = Snap.get_str "checksum" env in
              let got = payload_checksum payload in
              if got <> expect then
                Error
                  (Printf.sprintf "%s: checksum mismatch (file %s, payload %s)"
                     path expect got)
              else Ok (Snap.obj (Snap.member "meta" env), payload)
            end
          with Snap.Malformed msg ->
            Error (Printf.sprintf "%s: bad envelope: %s" path msg)))

(* --- run checkpoints ---------------------------------------------------------- *)

type checkpoint = {
  ck_model : string;
  ck_mode : string;
  ck_core : int;
  ck_next_layer : int;
  ck_last_finish : Gem_sim.Time.cycles;
  ck_records : Runtime.layer_record list;
  ck_soc : J.t;
}

let all_classes =
  [ Layer.Class_conv; Layer.Class_depthwise; Layer.Class_matmul;
    Layer.Class_resadd; Layer.Class_pool; Layer.Class_elementwise ]

let klass_of_name s =
  match List.find_opt (fun k -> Layer.class_name k = s) all_classes with
  | Some k -> k
  | None -> Snap.fail "unknown layer class %S" s

let record_to_json (r : Runtime.layer_record) =
  J.Obj
    [ ("name", J.String r.Runtime.lr_name);
      ("class", J.String (Layer.class_name r.Runtime.lr_class));
      ("cycles", J.Int r.Runtime.lr_cycles);
      ("macs", J.Int r.Runtime.lr_macs) ]

let record_of_json j =
  {
    Runtime.lr_name = Snap.get_str "name" j;
    lr_class = klass_of_name (Snap.get_str "class" j);
    lr_cycles = Snap.get_int "cycles" j;
    lr_macs = Snap.get_int "macs" j;
  }

let checkpoint_to_json ck =
  J.Obj
    [ ("model", J.String ck.ck_model);
      ("mode", J.String ck.ck_mode);
      ("core", J.Int ck.ck_core);
      ("next_layer", J.Int ck.ck_next_layer);
      ("last_finish", J.Int ck.ck_last_finish);
      ("records", J.List (List.map record_to_json ck.ck_records));
      ("soc", ck.ck_soc) ]

let checkpoint_of_json j =
  try
    Ok
      {
        ck_model = Snap.get_str "model" j;
        ck_mode = Snap.get_str "mode" j;
        ck_core = Snap.get_int "core" j;
        ck_next_layer = Snap.get_int "next_layer" j;
        ck_last_finish = Snap.get_int "last_finish" j;
        ck_records = List.map record_of_json (Snap.get_list "records" j);
        ck_soc = Snap.member "soc" j;
      }
  with Snap.Malformed msg -> Error msg

let save_checkpoint ~path ck =
  let meta =
    [ ("model", J.String ck.ck_model);
      ("mode", J.String ck.ck_mode);
      ("layers_done", J.Int ck.ck_next_layer);
      ("cycle", J.Int ck.ck_last_finish) ]
  in
  save ~path ~meta ~payload:(checkpoint_to_json ck)

let load_checkpoint ~path =
  match load ~path with
  | Error _ as e -> e
  | Ok (_meta, payload) -> checkpoint_of_json payload

(* --- resilient run driver ------------------------------------------------------ *)

type outcome = {
  o_result : Runtime.result;
  o_checkpoints : int;
  o_replays : int;
  o_resumed_at : int option;
}

(* Recovery replays must not restore the injection RNG cursors exactly:
   the very next roll would re-trip the very fault we are recovering
   from, forever. Re-arm with an attempt-salted seed — still fully
   deterministic (attempt k of any run draws the same plan), but a
   different draw sequence than the one that trapped. *)
let salt_injection soc ~attempt =
  let dma = Gemmini.Controller.dma (Soc.controller (Soc.core soc 0)) in
  match Gemmini.Dma.inject dma with
  | None -> ()
  | Some plan ->
      Soc.arm_injection soc
        ~seed:(Gem_sim.Inject.seed plan + (attempt * 7919))
        ~rate:(Gem_sim.Inject.rate plan)

let run ?(policy = Runtime.Abort) ?watchdog ?inject ?checkpoint_every
    ?checkpoint_out ?restore ?(max_replays = 3) ~config ~core model ~mode =
  let model_name = model.Layer.model_name in
  let mode_desc = Runtime.mode_desc mode in
  (match restore with
  | None -> ()
  | Some ck ->
      if ck.ck_model <> model_name then
        invalid_arg
          (Printf.sprintf "Persist.run: checkpoint is of %S, not %S"
             ck.ck_model model_name);
      if ck.ck_mode <> mode_desc then
        invalid_arg
          (Printf.sprintf "Persist.run: checkpoint mode %S, run mode %S"
             ck.ck_mode mode_desc);
      if ck.ck_core <> core then
        invalid_arg
          (Printf.sprintf "Persist.run: checkpoint core %d, run core %d"
             ck.ck_core core));
  (match checkpoint_every with
  | Some n when n <= 0 ->
      invalid_arg "Persist.run: checkpoint-every must be positive"
  | _ -> ());
  (* The most recent quiesced state, shared across replays. *)
  let latest = ref restore in
  let checkpoints = ref 0 in
  let replays = ref 0 in
  let rec attempt ~salt =
    let from = !latest in
    let soc = Soc.create config in
    let prepare _core =
      match from with
      | None -> (
          match inject with
          | Some (seed, rate) ->
              Soc.arm_injection soc ~seed:(seed + (salt * 7919)) ~rate
          | None -> ())
      | Some ck ->
          (match Soc.restore soc ck.ck_soc with
          | () -> ()
          | exception Snap.Malformed msg ->
              invalid_arg
                (Printf.sprintf
                   "Persist.run: checkpoint does not fit this SoC: %s" msg));
          if salt > 0 then salt_injection soc ~attempt:salt
    in
    let start_layer = match from with None -> 0 | Some ck -> ck.ck_next_layer in
    let resume =
      Option.map (fun ck -> (ck.ck_records, ck.ck_last_finish)) from
    in
    let on_layer ~layer ~records ~finish =
      match checkpoint_every with
      | Some n when (layer + 1) mod n = 0 ->
          let ck =
            {
              ck_model = model_name;
              ck_mode = mode_desc;
              ck_core = core;
              ck_next_layer = layer + 1;
              ck_last_finish = finish;
              ck_records = records;
              ck_soc = Soc.snapshot soc;
            }
          in
          latest := Some ck;
          incr checkpoints;
          Option.iter (fun path -> save_checkpoint ~path ck) checkpoint_out
      | _ -> ()
    in
    try
      Runtime.run ~policy ?watchdog ~prepare ~start_layer ?resume ~on_layer
        soc ~core model ~mode
    with
    | Fault.Trap _ when policy = Runtime.Resume_checkpoint
                        && !replays < max_replays ->
        incr replays;
        attempt ~salt:!replays
  in
  let result = attempt ~salt:0 in
  {
    o_result = result;
    o_checkpoints = !checkpoints;
    o_replays = !replays;
    o_resumed_at = Option.map (fun ck -> ck.ck_next_layer) restore;
  }
