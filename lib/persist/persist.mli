(** Deterministic checkpoint/restore for long simulations.

    A checkpoint captures the complete mutable state of a run at a fenced
    layer boundary — the {!Gem_sim.Engine} (clock, resource occupancy,
    fault tallies, trace ring), the whole SoC (scratchpad/accumulator,
    caches, DRAM and main-memory contents, TLBs, page tables, armed
    injection plans with their RNG cursors), and the runtime's progress
    (completed layers and their records). The golden property, gated in
    CI: a run restored from any checkpoint finishes with byte-identical
    cycle counts, profile tables and event streams to the uninterrupted
    run.

    On disk a checkpoint travels in a versioned envelope whose MD5
    checksum covers the canonical payload serialization, written
    atomically (temp file + rename): a crash mid-write leaves either the
    previous checkpoint or a temp file that {!load} rejects — never a
    half-written state that half-restores. *)

val format_version : string
(** Bump on any incompatible snapshot-layout change; {!load} rejects
    envelopes from other versions. *)

(* --- envelope ------------------------------------------------------------- *)

val save :
  path:string ->
  meta:(string * Gem_util.Jsonx.t) list ->
  payload:Gem_util.Jsonx.t ->
  unit
(** Atomically writes [{version, checksum, meta, payload}] to [path].
    [meta] is free-form description (model, layer, cycle) readable
    without deserializing the payload. Raises [Sys_error] on I/O
    failure. *)

val load :
  path:string ->
  ((string * Gem_util.Jsonx.t) list * Gem_util.Jsonx.t, string) result
(** Reads and verifies an envelope: parse failure (including a truncated
    write), a version mismatch, or a checksum mismatch all come back as
    [Error] with a human-readable reason. *)

(* --- run checkpoints -------------------------------------------------------- *)

type checkpoint = {
  ck_model : string;
  ck_mode : string;  (** {!Gem_sw.Runtime.mode_desc} of the run's mode *)
  ck_core : int;
  ck_next_layer : int;  (** first layer index not yet executed *)
  ck_last_finish : Gem_sim.Time.cycles;
  ck_records : Gem_sw.Runtime.layer_record list;  (** chronological *)
  ck_soc : Gem_util.Jsonx.t;  (** {!Gem_soc.Soc.snapshot} *)
}

val checkpoint_to_json : checkpoint -> Gem_util.Jsonx.t
val checkpoint_of_json : Gem_util.Jsonx.t -> (checkpoint, string) result

val save_checkpoint : path:string -> checkpoint -> unit
val load_checkpoint : path:string -> (checkpoint, string) result

(* --- resilient run driver ---------------------------------------------------- *)

type outcome = {
  o_result : Gem_sw.Runtime.result;
  o_checkpoints : int;  (** snapshots taken across all attempts *)
  o_replays : int;  (** recovery replays performed (Resume_checkpoint) *)
  o_resumed_at : int option;
      (** the layer index execution resumed from, when [restore] was given *)
}

val run :
  ?policy:Gem_sw.Runtime.policy ->
  ?watchdog:int ->
  ?inject:int * float ->
  ?checkpoint_every:int ->
  ?checkpoint_out:string ->
  ?restore:checkpoint ->
  ?max_replays:int ->
  config:Gem_soc.Soc_config.t ->
  core:int ->
  Gem_dnn.Layer.model ->
  mode:Gem_sw.Runtime.mode ->
  outcome
(** A {!Gem_sw.Runtime.run} with crash-safety around it. The SoC is
    always built fresh from [config]; tensor allocation is deterministic,
    so a restored run recomputes the interrupted run's addresses before
    the snapshot state is overlaid.

    [inject = (seed, rate)] arms deterministic fault injection on a fresh
    run (a restored one re-arms from the snapshot's RNG cursors, so the
    remaining fault trace is exactly the uninterrupted run's suffix).

    [checkpoint_every = n] snapshots after every [n]-th layer (absolute
    layer index, so resumed runs checkpoint at the same boundaries);
    [checkpoint_out] additionally persists each snapshot to disk.

    [restore] resumes from a checkpoint (shape-checked against [config],
    model and mode — raises [Invalid_argument] on a mismatch).

    Under [policy = Resume_checkpoint], a trap triggers a replay from the
    most recent snapshot (or the run's starting state) with the injection
    plan re-seeded per attempt — replaying the exact cursors would trip
    the identical fault forever — up to [max_replays] (default 3) times,
    after which the trap propagates. *)
