(** Host-CPU timing models: a Rocket-class in-order core and a BOOM-class
    out-of-order core.

    The paper uses these two hosts in three roles, all modeled here:
    + {b baseline}: running whole DNNs in software (the denominator of
      every Fig. 7 speedup);
    + {b offload helper}: performing im2col in software when the
      accelerator lacks the im2col block, plus per-command RoCC dispatch;
    + {b system role}: OS noise/launch overheads.

    Calibration. Cycles-per-MAC constants are fitted to the paper's
    reported end points: 2,670x ResNet50 speedup over Rocket at 22.8 FPS
    (implies ~28 cycles/MAC for software convolution), 144x on BERT
    (implies ~1.7 cycles/MAC for well-blocked integer GEMM), 127x on
    MobileNetV2 (~22 cycles/MAC for depthwise), and the 2.0x
    Rocket-to-BOOM gain when the CPU performs im2col. Everything else
    (which network wins, where crossovers fall) is produced by the model,
    not fitted. *)

type kind = Rocket | Boom

val name : kind -> string

val issue_cycles : kind -> int
(** Cost to dispatch one RoCC command to the accelerator. *)

val flush_cycles : kind -> int
(** Cost of a kernel-launch / fence round trip. *)

(* Software kernel costs (running ON the CPU). *)

val conv_macs_cycles : kind -> macs:int -> int
(** Direct/naive-im2col convolution in software. *)

val matmul_macs_cycles : kind -> macs:int -> int
(** Blocked integer GEMM in software. *)

val depthwise_macs_cycles : kind -> macs:int -> int

val elementwise_cycles : kind -> elems:int -> int
(** Residual adds and table-driven int8 activation passes (softmax,
    layernorm, GELU approximations). *)

val pooling_cycles : kind -> elems:int -> window:int -> int
(** [elems] output elements, each scanning [window^2] inputs. *)

val im2col_cycles : kind -> patch_elems:int -> int
(** Producing the patch matrix for the accelerator when the hardware
    im2col block is absent: [patch_elems] is rows x cols of the patch
    matrix. *)

val speedup_factor : kind -> float
(** Relative single-thread performance vs Rocket (1.0 for Rocket). *)
