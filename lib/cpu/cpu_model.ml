type kind = Rocket | Boom

let name = function Rocket -> "rocket" | Boom -> "boom"

(* BOOM's single-thread advantage over Rocket on compute-dense loops,
   fitted to the paper's 2,670x / 1,130x ResNet50 speedup pair. *)
let boom_speedup = 2670. /. 1130.

let speedup_factor = function Rocket -> 1.0 | Boom -> boom_speedup

let scaled kind cycles =
  match kind with
  | Rocket -> cycles
  | Boom -> int_of_float (ceil (float_of_int cycles /. boom_speedup))

let issue_cycles = function Rocket -> 2 | Boom -> 1

let flush_cycles = function Rocket -> 50 | Boom -> 30

(* Rocket cycles/MAC by kernel class; see the .mli for the fit targets. *)
let conv_cpm = 28.0
let matmul_cpm = 1.7
let depthwise_cpm = 22.0
let elementwise_cpe = 4.0
let pooling_cpe_per_window = 1.6

let of_f x = int_of_float (ceil x)

let conv_macs_cycles kind ~macs = scaled kind (of_f (conv_cpm *. float_of_int macs))

let matmul_macs_cycles kind ~macs =
  scaled kind (of_f (matmul_cpm *. float_of_int macs))

let depthwise_macs_cycles kind ~macs =
  scaled kind (of_f (depthwise_cpm *. float_of_int macs))

let elementwise_cycles kind ~elems =
  scaled kind (of_f (elementwise_cpe *. float_of_int elems))

let pooling_cycles kind ~elems ~window =
  scaled kind
    (of_f (pooling_cpe_per_window *. float_of_int (elems * window * window)))

(* Software im2col: a copy loop with address arithmetic; BOOM gains
   exactly its memory-level parallelism factor of 2.0 here (the paper's
   "2.0x across all CNNs" observation). *)
let im2col_cycles kind ~patch_elems =
  let rocket_cycles = of_f (12.0 *. float_of_int patch_elems) in
  match kind with
  | Rocket -> rocket_cycles
  | Boom -> (rocket_cycles + 1) / 2
