(** The cycle-accurate execution backend: elaborates the SoC and runs
    every job through the event-driven simulator ({!Runtime.run} /
    {!Runtime.run_parallel}). *)

include Backend.S

val run_on : Gem_soc.Soc.t -> Backend.request -> Runtime.result array
(** Like [run] but on a caller-elaborated SoC (so fault injection, trace
    collectors, or TLB observers can be armed first). The request's
    [bq_config] is assumed to match the SoC. *)
