(** Tuned kernels — the low-level layer of Gemmini's multi-level
    programming stack (the [tiled_matmul], [tiled_conv], resadd and
    pooling functions of the C library), emitting RoCC command streams.

    Each kernel takes virtual addresses (translation happens in the DMA),
    picks tile sizes through {!Tiling} (or accepts manual ones), and emits
    the same double-buffered preload/compute structure as the C library:
    B-blocks are kept stationary across the I dimension
    ([Compute_accumulated] reuses resident weights), C tiles live in the
    accumulator across the K loop, and activation/scaling are applied on
    the way out by the store unit. *)

type op = Gem_soc.Soc.op

val matmul_ops :
  Gemmini.Params.t ->
  ?tiling:Tiling.t ->
  ?schedule:Schedule.t ->
  ?bias:int ->
  ?bias_column:int ->
  ?act:Gemmini.Peripheral.activation ->
  ?scale:float ->
  ?a_row_stride:int ->
  ?b_row_stride:int ->
  ?c_row_stride:int ->
  ?a_condense:float ->
  a:int ->
  b:int ->
  out:int ->
  m:int ->
  k:int ->
  n:int ->
  unit ->
  op list
(** C = act(scale * (A.B + bias)), int8 in/out, int32 accumulate.
    [schedule] fixes tile sizes, loop order and dataflow (it subsumes and
    wins over [tiling], which wraps legacy manual tile sizes in the
    default schedule); when neither is given the kernel runs
    {!Schedule.choose}.
    [bias] is the VA of an int32 per-output-column vector, broadcast to
    every row with a stride-0 mvin. [bias_column] instead biases per
    output {e row} (each accumulator row loads its own int32 word; used by
    the transposed batch-1 GEMM lowering; requires [n <= DIM]). Strides are DRAM row strides in bytes
    (defaults: dense [k]/[n]/[n]). [a_condense] (timing mode only) scales
    the A-side fetch footprint to model the on-the-fly im2col unit
    reading the raw input instead of the expanded patch matrix. *)

val matmul_loop_ws_ops :
  Gemmini.Params.t ->
  ?bias:int ->
  ?act:Gemmini.Peripheral.activation ->
  ?scale:float ->
  a:int ->
  b:int ->
  out:int ->
  m:int ->
  k:int ->
  n:int ->
  unit ->
  op list
(** The CISC path: the same matmul as {!matmul_ops}, issued as three
    configuration commands plus one [LOOP_WS] — the hardware sequencer
    expands the tile loop, so the host pays four dispatches instead of
    thousands. Dense strides. *)

type conv_im2col =
  | Im2col_on_cpu  (** host materializes the patch matrix (Fig. 7 left) *)
  | Im2col_on_accel  (** the optional hardware block expands on the fly *)
  | Im2col_preexpanded of int
      (** patch matrix already at this VA (functional-mode path) *)

val conv_ops :
  Gemmini.Params.t ->
  cpu:Gem_cpu.Cpu_model.kind ->
  im2col:conv_im2col ->
  ?bias:int ->
  ?scale:float ->
  input:int ->
  weights:int ->
  out:int ->
  spec:Gem_dnn.Layer.conv_spec ->
  patch_scratch:int ->
  unit ->
  op list
(** Convolution as im2col + tiled matmul. [patch_scratch] is the VA of
    the reusable patch-matrix buffer (used by the CPU path). Depthwise
    convolutions lower to per-channel skinny matmuls (poor array
    utilization — the MobileNetV2 effect). *)

val resadd_ops :
  Gemmini.Params.t ->
  ?relu:bool ->
  x:int ->
  y:int ->
  out:int ->
  elems:int ->
  unit ->
  op list
(** Element-wise int8 addition through the accumulator: stream X in,
    accumulate Y onto it, store back. No weight reuse at all — the
    memory-bound layer class of Fig. 9. *)

val maxpool_ops :
  Gemmini.Params.t ->
  cpu:Gem_cpu.Cpu_model.kind ->
  input:int ->
  out:int ->
  spec:Gem_dnn.Layer.pool_spec ->
  unit ->
  op list
(** With the pooling unit: data streams through the accelerator's store
    path. Without: host-CPU loop. *)

val host_elementwise_ops :
  cpu:Gem_cpu.Cpu_model.kind -> elems:int -> tag:string -> op list
(** Softmax / layernorm / GELU / global-average-pool host work. *)

val fence : op
val flush_tlb : op
