let all : (module Backend.S) list =
  [ (module Backend_cycle); (module Backend_analytic) ]

let of_kind : Backend.kind -> (module Backend.S) = function
  | Backend.Cycle -> (module Backend_cycle)
  | Backend.Analytic -> (module Backend_analytic)

let names = List.map Backend.kind_name Backend.all_kinds

let run kind rq =
  let module B = (val of_kind kind : Backend.S) in
  B.run rq
