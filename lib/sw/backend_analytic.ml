module Soc_config = Gem_soc.Soc_config
module P = Gemmini.Params
module Layer = Gem_dnn.Layer
module Cpu = Gem_cpu.Cpu_model
module Fault = Gem_sim.Fault
module Mathx = Gem_util.Mathx

let kind = Backend.Analytic

(* A closed-form latency estimator for the same lowering the
   cycle-accurate backend executes. Per kernel it walks the outer tile
   grid of the {!Schedule.t} (never the per-row / per-command stream) and
   advances three cursors — issue, the DMA path, the mesh — with
   aggregate occupancies:

   - mesh occupancy per DIM-block from [Mesh.pipelined_block_cycles]
     (WS fill [max rows DIM + bubble] for preloaded blocks, [rows +
     bubble] for accumulated ones; OS [k + DIM + bubble]);
   - DMA transfers priced as the max of three paces, matching the
     engine's resource chain: bus bytes ([ceil (row bytes / bus)] per
     row), the shared L2 port (the DMA issues one L2 access per row, so
     small-row transfers are port-bound at [port_line_occ] cycles per
     row), and DRAM line fetches for the stream's cold / non-resident
     lines. Loads and stores share one DMA cursor, like the engine's
     single per-core bus resource; the L2-port and DRAM paces scale with
     the number of active cores;
   - a TLB term from tile footprints: page-crossing counts per operand
     stream, classified into private hits / shared hits / walks by
     footprint-vs-capacity reasoning;
   - the ROB window ([max_in_flight]) limits how far issue runs ahead of
     retirement, which bounds inter-group overlap.

   Cost: O(outer tiles) per kernel — microseconds where the event-driven
   engine takes seconds. *)

(* --- machine constants ------------------------------------------------------- *)

type machine = {
  dim : int;
  bus : int;  (* DMA bus bytes per cycle (per core) *)
  ic : int;  (* host issue cycles per command *)
  bubble : int;  (* mesh inter-block bubble *)
  rob : int;  (* max in-flight commands *)
  page : int;
  priv_lat : int;
  shared_lat : int;
  shared_entries : int;
  walk_cost : int;  (* TLB-miss latency beyond the shared probe *)
  l2_bytes : int;
  l2_hit : int;
  line : int;
  port_line_occ : int;  (* L2-port cycles per line-sized access *)
  dram_line : int;  (* DRAM channel cycles per line fetch *)
  dram_lat : int;
  cores : int;  (* contention factor on shared L2 port / DRAM *)
}

let machine (cfg : Soc_config.t) (cc : Soc_config.core_config) ~cores =
  let p = cc.Soc_config.accel in
  let tlb = cc.Soc_config.tlb in
  let line = cfg.Soc_config.l2_line_bytes in
  let port_line_occ =
    Mathx.ceil_div line (max 1 cfg.Soc_config.l2_port_bytes)
  in
  {
    dim = P.dim p;
    bus = max 1 p.P.dma_bus_bytes;
    ic = Cpu.issue_cycles cc.Soc_config.cpu;
    bubble = 4;
    rob = max 1 p.P.max_in_flight;
    page = Gem_vm.Page_table.page_size;
    priv_lat = tlb.Gem_vm.Hierarchy.private_hit_latency;
    shared_lat = tlb.Gem_vm.Hierarchy.shared_hit_latency;
    shared_entries = tlb.Gem_vm.Hierarchy.shared_entries;
    (* A walk pays the full TLB probe chain plus the leaf PTE read; PTE
       lines are hot in the L2 after the first touch. *)
    walk_cost = cfg.Soc_config.l2_hit_latency + port_line_occ;
    l2_bytes = cfg.Soc_config.l2_size_bytes;
    l2_hit = cfg.Soc_config.l2_hit_latency;
    line;
    port_line_occ;
    dram_line =
      Mathx.ceil_div line (max 1 cfg.Soc_config.dram_bytes_per_cycle);
    dram_lat = cfg.Soc_config.dram_latency;
    cores;
  }

(* --- pipeline cursors --------------------------------------------------------- *)

type cursors = {
  mutable issue : int;
  mutable dma : int;  (* shared load/store DMA-path busy-until *)
  mutable ex : int;
  mutable last_ld_fin : int;  (* data-landed horizon (DMA + memory tail) *)
  mutable last_st_fin : int;
  mutable ex_busy : int;  (* accumulated mesh occupancy (utilization) *)
  mutable tlb_requests : int;
  mutable tlb_walks : int;
  mutable tlb_shared : int;
  mutable ld_bytes : int;
  mutable st_bytes : int;
}

let fresh_cursors () =
  {
    issue = 0;
    dma = 0;
    ex = 0;
    last_ld_fin = 0;
    last_st_fin = 0;
    ex_busy = 0;
    tlb_requests = 0;
    tlb_walks = 0;
    tlb_shared = 0;
    ld_bytes = 0;
    st_bytes = 0;
  }

let horizon c =
  max c.issue (max (max c.dma c.ex) (max c.last_ld_fin c.last_st_fin))

(* A fence joins every cursor (Controller: issue <- finish_time). *)
let fence c = c.issue <- horizon c

(* ROB back-pressure: after a long command group, issue cannot run more
   than [rob] commands ahead of the group's retirement. *)
let rob_clamp m c ~cmds ~fin ~work =
  if cmds > m.rob then begin
    let per = work / max 1 cmds in
    c.issue <- max c.issue (fin - (m.rob * per))
  end

(* One DMA transfer group: [rows] row-granular accesses spanning
   [row_lines] cache lines each, [bus_occ] total bus cycles, with
   [miss_lines] lines missing the L2. The group's pace is the slowest of
   the three shared resources on the engine's DMA chain: the per-core
   bus, the shared L2 port (one access per row — small rows are
   port-bound), and the DRAM channel for the missing lines. *)
let dma_work m ~rows ~row_lines ~bus_occ ~translate ~miss_lines ~write =
  let port = rows * row_lines * m.port_line_occ * m.cores in
  (* A write miss allocates: line fetch plus the eventual dirty
     writeback, both consuming DRAM channel bandwidth. *)
  let dram = miss_lines * m.dram_line * (if write then 2 else 1) * m.cores in
  max (bus_occ + translate) (max port dram)

(* Memory tail of a transfer group: port occupancy plus the hit-or-miss
   latency of the last accesses in flight, weighted by the per-access
   miss probability. *)
let mem_tail m ~rows ~miss_lines =
  let p = min 1.0 (float_of_int miss_lines /. float_of_int (max 1 rows)) in
  let miss = m.dram_lat + m.dram_line in
  m.port_line_occ
  + int_of_float
      ((p *. float_of_int miss) +. ((1. -. p) *. float_of_int m.l2_hit))

let dispatch_ld m c ~cmds ~work ~bytes ~tail =
  if cmds > 0 then begin
    let start = max c.dma c.issue in
    c.issue <- c.issue + (cmds * m.ic);
    c.dma <- start + work;
    c.last_ld_fin <- max c.last_ld_fin (c.dma + tail);
    c.ld_bytes <- c.ld_bytes + bytes;
    rob_clamp m c ~cmds ~fin:c.last_ld_fin ~work
  end

let dispatch_ex m c ~cmds ~work =
  if cmds > 0 then begin
    let start = max (max c.ex c.issue) c.last_ld_fin in
    c.issue <- c.issue + (cmds * m.ic);
    c.ex <- start + work;
    c.ex_busy <- c.ex_busy + work;
    rob_clamp m c ~cmds ~fin:c.ex ~work
  end

let dispatch_st m c ~cmds ~work ~bytes ~tail =
  if cmds > 0 then begin
    (* Mvout ready = max(issue, ex busy, loads landed); it then queues on
       the same DMA path the loads use. *)
    let ready = max c.issue (max c.ex c.last_ld_fin) in
    let start = max c.dma ready in
    c.issue <- c.issue + (cmds * m.ic);
    c.dma <- start + work;
    c.last_st_fin <- max c.last_st_fin (c.dma + tail);
    c.st_bytes <- c.st_bytes + bytes;
    rob_clamp m c ~cmds ~fin:c.last_st_fin ~work
  end

let host_work c ~cycles = c.issue <- c.issue + cycles

(* --- per-kernel TLB model ----------------------------------------------------- *)

(* One operand stream: [crossings] filter misses, of which [walks] go to
   the page-table walker, [shared] hit the shared TLB and the rest hit
   the private TLB. *)
type tlb_stream = { requests : int; crossings : int; walks : int; shared : int }

let tlb_stream m ~requests ~crossings ~pages ~sweeps ~working_pages =
  let pages = max 1 pages in
  let crossings = min requests (max crossings pages) in
  let resident = working_pages <= m.shared_entries in
  let walks, shared =
    if resident then (pages, pages * (sweeps - 1))
    else (pages * sweeps, 0)
  in
  let walks = min crossings walks in
  let shared = min (crossings - walks) shared in
  { requests; crossings; walks; shared }

let tlb_cost m s =
  (s.crossings * m.priv_lat)
  + (s.shared * m.shared_lat)
  + (s.walks * (m.shared_lat + m.walk_cost))

let add_tlb c s =
  c.tlb_requests <- c.tlb_requests + s.requests;
  c.tlb_walks <- c.tlb_walks + s.walks;
  c.tlb_shared <- c.tlb_shared + s.shared

(* Cold-miss line count of a strided stream: the lines its span touches,
   re-missed on every sweep unless the stream is L2-resident. *)
let stream_miss_lines m ~span ~sweeps =
  let lines = Mathx.ceil_div (max 1 span) m.line in
  let resident = span * 2 <= m.l2_bytes in
  lines * (1 + ((sweeps - 1) * if resident then 0 else 1))

(* --- matmul ------------------------------------------------------------------- *)

let max_block_len = 4

(* Exact command counts of one [Kernels.matmul_ops] invocation, derived
   from the schedule alone. The conformance test diffs these against the
   emitted stream, proving both backends price the same program. *)
type mm_counts = {
  mc_configs : int;
  mc_bias_mvins : int;
  mc_a_mvins : int;
  mc_b_mvins : int;
  mc_preloads : int;
  mc_computes : int;
  mc_mvouts : int;
}

let mm_total c =
  c.mc_configs + c.mc_bias_mvins + c.mc_a_mvins + c.mc_b_mvins + c.mc_preloads
  + c.mc_computes + c.mc_mvouts

let groups_of total tile =
  (* sum over outer iterations of ceil(v / max_block_len) *)
  let acc = ref 0 in
  for o = 0 to Mathx.ceil_div total tile - 1 do
    let v = min tile (total - (o * tile)) in
    acc := !acc + Mathx.ceil_div v max_block_len
  done;
  !acc

let matmul_command_counts p (ms : Lower.matmul_shape) =
  let tl = ms.Lower.ms_schedule.Schedule.tiling in
  let bi, bk, bj =
    Tiling.blocks p ~m:ms.Lower.ms_m ~k:ms.Lower.ms_k ~n:ms.Lower.ms_n
  in
  let oi = Mathx.ceil_div bi tl.Tiling.ti
  and oj = Mathx.ceil_div bj tl.Tiling.tj in
  let gk = groups_of bk tl.Tiling.tk and gj = groups_of bj tl.Tiling.tj in
  {
    mc_configs = 5;
    mc_bias_mvins = (if ms.Lower.ms_bias = `None then 0 else bi * bj);
    mc_a_mvins = oj * bi * gk;
    mc_b_mvins = oi * bk * gj;
    mc_preloads = bi * bk * bj;
    mc_computes = bi * bk * bj;
    mc_mvouts = bi * bj;
  }

(* Row extents of one outer tile along a dimension: number of DIM-blocks,
   summed element extent, and the extent of the first block. *)
let tile_extent ~total ~dim ~blocks ~tile ~o =
  let lo = o * tile in
  let v = min tile (blocks - lo) in
  let hi = lo + v in
  let sum = if hi = blocks then total - (lo * dim) else v * dim in
  let first = min dim (total - (lo * dim)) in
  (v, sum, first)

let condense_len c x =
  max 1 (int_of_float (Float.round (float_of_int x *. c)))

(* Per-row bus occupancy and bytes of the MAX_BLOCK_LEN column groups
   covering [v] blocks starting at block [b0] of a [total]-wide
   operand. *)
let col_groups ~dim ~bus ~total ~b0 ~v ~condense =
  let occ = ref 0 and bytes = ref 0 in
  let i = ref 0 in
  while !i < v do
    let w = min max_block_len (v - !i) in
    let cols = min (w * dim) (total - ((b0 + !i) * dim)) in
    let b = condense_len condense cols in
    occ := !occ + Mathx.ceil_div b bus;
    bytes := !bytes + b;
    i := !i + w
  done;
  (!occ, !bytes)

(* Per-row bus occupancy / bytes of per-block transfers (bias mvins and
   mvouts move one DIM-block of columns per command). *)
let block_cols ~dim ~bus ~total ~b0 ~v ~eb =
  let occ = ref 0 and bytes = ref 0 in
  for jj = 0 to v - 1 do
    let cols = min dim (total - ((b0 + jj) * dim)) in
    let b = cols * eb in
    occ := !occ + Mathx.ceil_div b bus;
    bytes := !bytes + b
  done;
  (!occ, !bytes)

let estimate_matmul m c (ms : Lower.matmul_shape) ~reps =
  let dim = m.dim in
  let mm = ms.Lower.ms_m and kk = ms.Lower.ms_k and nn = ms.Lower.ms_n in
  let sch = ms.Lower.ms_schedule in
  let tl = sch.Schedule.tiling in
  let ti = tl.Tiling.ti and tk = tl.Tiling.tk and tj = tl.Tiling.tj in
  let bi = Mathx.ceil_div mm dim
  and bk = Mathx.ceil_div kk dim
  and bj = Mathx.ceil_div nn dim in
  let oi = Mathx.ceil_div bi ti
  and ok = Mathx.ceil_div bk tk
  and oj = Mathx.ceil_div bj tj in
  let iters = oi * oj * ok in
  let cond = ms.Lower.ms_a_condense in
  let has_bias = ms.Lower.ms_bias <> `None in
  (* Kernel-level operand footprints. Spans use the DMA's address
     arithmetic: A rows advance by the condensed stride. *)
  let a_span = condense_len cond (mm * ms.Lower.ms_a_stride) in
  let b_span = kk * ms.Lower.ms_b_stride in
  let o_span = mm * ms.Lower.ms_c_stride in
  let bias_span = if has_bias then 4 * nn else 0 in
  let pages_a = Mathx.ceil_div a_span m.page
  and pages_b = Mathx.ceil_div b_span m.page
  and pages_o = Mathx.ceil_div o_span m.page in
  let working = pages_a + pages_b + pages_o in
  let gk_total = groups_of bk tk and gj_total = groups_of bj tj in
  (* Instance repetitions (attention heads, depthwise channels) stream
     through the same tensors, so only the first repetition pays the
     cold DRAM misses when the joint footprint is L2-resident. *)
  let inst_resident = (a_span + b_span + o_span) * 2 <= m.l2_bytes in
  (* TLB streams (whole kernel), amortized per iteration below. *)
  let s_a =
    tlb_stream m
      ~requests:(oj * gk_total * mm)
      ~crossings:(oj * gk_total * pages_a)
      ~pages:pages_a ~sweeps:oj ~working_pages:working
  in
  let s_b =
    tlb_stream m
      ~requests:(oi * gj_total * kk)
      ~crossings:(oi * gj_total * pages_b)
      ~pages:pages_b ~sweeps:oi ~working_pages:working
  in
  let s_bias =
    if has_bias then
      tlb_stream m ~requests:(mm * bj) ~crossings:(oi * oj)
        ~pages:(Mathx.ceil_div bias_span m.page)
        ~sweeps:1 ~working_pages:working
    else { requests = 0; crossings = 0; walks = 0; shared = 0 }
  in
  let s_out =
    tlb_stream m ~requests:(mm * bj)
      ~crossings:(pages_o + (oi * oj))
      ~pages:pages_o ~sweeps:1 ~working_pages:working
  in
  let t_ld_iter =
    (tlb_cost m s_a + tlb_cost m s_b + tlb_cost m s_bias) / max 1 iters
  in
  let t_st_iter = tlb_cost m s_out / max 1 (oi * oj) in
  (* Cold / non-resident DRAM lines per stream, amortized over the
     transfer groups that carry them. *)
  let a_miss = stream_miss_lines m ~span:a_span ~sweeps:oj in
  let b_miss = stream_miss_lines m ~span:b_span ~sweeps:oi in
  let bias_miss =
    if has_bias then stream_miss_lines m ~span:bias_span ~sweeps:1 else 0
  in
  let o_miss = stream_miss_lines m ~span:o_span ~sweeps:1 in
  for rep = 1 to reps do
    let rf = if rep = 1 || not inst_resident then 1 else 0 in
    if rep = 1 then begin
      add_tlb c s_a;
      add_tlb c s_b;
      add_tlb c s_bias;
      add_tlb c s_out
    end;
    let ab_miss_iter = rf * (a_miss + b_miss) / max 1 iters in
    let bias_miss_iter = rf * bias_miss / max 1 (oi * oj) in
    let o_miss_iter = rf * o_miss / max 1 (oi * oj) in
    c.issue <- c.issue + (5 * m.ic);
    for i0 = 0 to oi - 1 do
      let vi, rows_i, r0 =
        tile_extent ~total:mm ~dim ~blocks:bi ~tile:ti ~o:i0
      in
      for j0 = 0 to oj - 1 do
        let vj, _, _ = tile_extent ~total:nn ~dim ~blocks:bj ~tile:tj ~o:j0 in
        (* Bias staging: per-block int32 mvins through the accumulator
           channel. *)
        if has_bias then begin
          let occ_bias, bytes_bias_row =
            block_cols ~dim ~bus:m.bus ~total:nn ~b0:(j0 * tj) ~v:vj ~eb:4
          in
          let rows = rows_i * vj in
          let work =
            dma_work m ~rows ~row_lines:1 ~bus_occ:(occ_bias * rows_i)
              ~translate:0 ~miss_lines:bias_miss_iter ~write:false
          in
          dispatch_ld m c ~cmds:(vi * vj) ~work
            ~bytes:(bytes_bias_row * rows_i)
            ~tail:(mem_tail m ~rows ~miss_lines:bias_miss_iter)
        end;
        for k0 = 0 to ok - 1 do
          let vk, krows, _ =
            tile_extent ~total:kk ~dim ~blocks:bk ~tile:tk ~o:k0
          in
          let occ_a, bytes_a_row =
            col_groups ~dim ~bus:m.bus ~total:kk ~b0:(k0 * tk) ~v:vk
              ~condense:cond
          in
          let occ_b, bytes_b_row =
            col_groups ~dim ~bus:m.bus ~total:nn ~b0:(j0 * tj) ~v:vj
              ~condense:1.0
          in
          let a_cmds = vi * Mathx.ceil_div vk max_block_len in
          let b_cmds = vk * Mathx.ceil_div vj max_block_len in
          let a_rows = rows_i * Mathx.ceil_div vk max_block_len in
          let b_rows = krows * Mathx.ceil_div vj max_block_len in
          let a_bytes = bytes_a_row * rows_i in
          let b_bytes = bytes_b_row * krows in
          let work =
            dma_work m ~rows:(a_rows + b_rows) ~row_lines:1
              ~bus_occ:((occ_a * rows_i) + (occ_b * krows))
              ~translate:t_ld_iter ~miss_lines:ab_miss_iter ~write:false
          in
          dispatch_ld m c ~cmds:(a_cmds + b_cmds) ~work
            ~bytes:(a_bytes + b_bytes)
            ~tail:
              (mem_tail m ~rows:(a_rows + b_rows) ~miss_lines:ab_miss_iter);
          (* Compute: per (kk, jj) one preloaded block (fill) plus (vi-1)
             accumulated blocks. *)
          let ex_work =
            match sch.Schedule.dataflow with
            | `WS ->
                vk * vj
                * (max r0 dim + m.bubble + (rows_i - r0)
                  + (m.bubble * (vi - 1)))
            | `OS -> vi * vj * (krows + (vk * (dim + m.bubble)))
          in
          dispatch_ex m c ~cmds:(2 * vi * vj * vk) ~work:ex_work
        done;
        (* Drain the C tile: per-block int8 mvouts. *)
        let occ_c, bytes_c_row =
          block_cols ~dim ~bus:m.bus ~total:nn ~b0:(j0 * tj) ~v:vj ~eb:1
        in
        let st_rows = rows_i * vj in
        let st_work =
          dma_work m ~rows:st_rows ~row_lines:1 ~bus_occ:(occ_c * rows_i)
            ~translate:t_st_iter ~miss_lines:o_miss_iter ~write:true
        in
        dispatch_st m c ~cmds:(vi * vj) ~work:st_work
          ~bytes:(bytes_c_row * rows_i)
          ~tail:(mem_tail m ~rows:st_rows ~miss_lines:o_miss_iter)
      done
    done
  done

(* --- resadd ------------------------------------------------------------------- *)

let estimate_resadd m c ~elems =
  let dim = m.dim in
  let total_rows = Mathx.ceil_div elems dim in
  let row_occ = Mathx.ceil_div dim m.bus in
  let groups = Mathx.ceil_div total_rows dim in
  let pages = Mathx.ceil_div elems m.page in
  (* x and y interleave at mvin granularity: the read filter flips twice
     per group on top of the sequential page crossings. *)
  let s_rd =
    tlb_stream m ~requests:(2 * total_rows)
      ~crossings:((2 * groups) + (2 * pages))
      ~pages:(2 * pages) ~sweeps:1 ~working_pages:(3 * pages)
  in
  let s_wr =
    tlb_stream m ~requests:total_rows ~crossings:pages ~pages ~sweeps:1
      ~working_pages:(3 * pages)
  in
  add_tlb c s_rd;
  add_tlb c s_wr;
  let t_ld = tlb_cost m s_rd / max 1 groups in
  let t_st = tlb_cost m s_wr / max 1 groups in
  let rd_miss_g = 2 * stream_miss_lines m ~span:elems ~sweeps:1 / max 1 groups in
  let wr_miss_g = stream_miss_lines m ~span:elems ~sweeps:1 / max 1 groups in
  c.issue <- c.issue + (3 * m.ic);
  let row = ref 0 in
  while !row < total_rows do
    let rows = min dim (total_rows - !row) in
    let work =
      dma_work m ~rows:(2 * rows) ~row_lines:1 ~bus_occ:(2 * rows * row_occ)
        ~translate:t_ld ~miss_lines:rd_miss_g ~write:false
    in
    dispatch_ld m c ~cmds:2 ~work ~bytes:(2 * rows * dim)
      ~tail:(mem_tail m ~rows:(2 * rows) ~miss_lines:rd_miss_g);
    let st_work =
      dma_work m ~rows ~row_lines:1 ~bus_occ:(rows * row_occ) ~translate:t_st
        ~miss_lines:wr_miss_g ~write:true
    in
    dispatch_st m c ~cmds:1 ~work:st_work ~bytes:(rows * dim)
      ~tail:(mem_tail m ~rows ~miss_lines:wr_miss_g);
    row := !row + rows
  done

(* --- maxpool ------------------------------------------------------------------ *)

let estimate_maxpool m c (spec : Layer.pool_spec) =
  let dim = m.dim in
  let in_elems = spec.Layer.p_in_h * spec.Layer.p_in_w * spec.Layer.p_ch in
  let out_h =
    ((spec.Layer.p_in_h + (2 * spec.Layer.p_padding) - spec.Layer.window)
     / spec.Layer.p_stride)
    + 1
  in
  let out_w =
    ((spec.Layer.p_in_w + (2 * spec.Layer.p_padding) - spec.Layer.window)
     / spec.Layer.p_stride)
    + 1
  in
  let out_elems = out_h * out_w * spec.Layer.p_ch in
  let in_rows = Mathx.ceil_div in_elems dim in
  let out_rows = Mathx.ceil_div out_elems dim in
  let lps = max 1 (Mathx.ceil_div in_rows (max 1 out_rows)) in
  let row_occ = Mathx.ceil_div dim m.bus in
  let pages_in = Mathx.ceil_div in_elems m.page in
  let pages_out = Mathx.ceil_div out_elems m.page in
  let s_rd =
    tlb_stream m ~requests:in_rows ~crossings:pages_in ~pages:pages_in
      ~sweeps:1 ~working_pages:(pages_in + pages_out)
  in
  let s_wr =
    tlb_stream m ~requests:out_rows ~crossings:pages_out ~pages:pages_out
      ~sweeps:1 ~working_pages:(pages_in + pages_out)
  in
  add_tlb c s_rd;
  add_tlb c s_wr;
  let iters = max 1 (Mathx.ceil_div in_rows (dim * lps)) in
  let t_ld = tlb_cost m s_rd / iters in
  let t_st = tlb_cost m s_wr / iters in
  let rd_miss = stream_miss_lines m ~span:in_elems ~sweeps:1 / iters in
  let wr_miss = stream_miss_lines m ~span:out_elems ~sweeps:1 / iters in
  c.issue <- c.issue + (2 * m.ic);
  let li = ref 0 and si = ref 0 in
  while !li < in_rows || !si < out_rows do
    if !li < in_rows then begin
      let rows = min (dim * lps) (in_rows - !li) in
      let work =
        dma_work m ~rows ~row_lines:1 ~bus_occ:(rows * row_occ)
          ~translate:t_ld ~miss_lines:rd_miss ~write:false
      in
      dispatch_ld m c ~cmds:lps ~work ~bytes:(rows * dim)
        ~tail:(mem_tail m ~rows ~miss_lines:rd_miss);
      li := !li + rows
    end;
    if !si < out_rows then begin
      let rows = min dim (out_rows - !si) in
      let work =
        dma_work m ~rows ~row_lines:1 ~bus_occ:(rows * row_occ)
          ~translate:t_st ~miss_lines:wr_miss ~write:true
      in
      dispatch_st m c ~cmds:1 ~work ~bytes:(rows * dim)
        ~tail:(mem_tail m ~rows ~miss_lines:wr_miss);
      si := !si + rows
    end
  done

(* --- per-core estimation ------------------------------------------------------ *)

type detail = {
  d_result : Runtime.result;
  d_tlb_requests : int;
  d_tlb_walks : int;
  d_tlb_shared : int;
  d_mesh_busy : int;
  d_ld_bytes : int;
  d_st_bytes : int;
}

let estimate_core (cfg : Soc_config.t) ~core ~cores model ~(mode : Lower.mode)
    ~(policy : Runtime.policy) ~watchdog =
  let cc =
    match List.nth_opt cfg.Soc_config.cores core with
    | Some cc -> cc
    | None -> invalid_arg "Backend_analytic: core index out of range"
  in
  let p = cc.Soc_config.accel in
  let cpu = cc.Soc_config.cpu in
  let m = machine cfg cc ~cores in
  let c = fresh_cursors () in
  let plans = Lower.plan p ~cpu ~mode model in
  let faults = ref [] in
  let records = ref [] in
  List.iter
    (fun (lp : Lower.layer_plan) ->
      let start = horizon c in
      (match lp.Lower.lp_kernel with
      | Lower.K_host hw -> host_work c ~cycles:hw.Lower.hw_cycles
      | Lower.K_matmul { prep; insts } ->
          Option.iter (fun hw -> host_work c ~cycles:hw.Lower.hw_cycles) prep;
          List.iter
            (fun (ms, count) -> estimate_matmul m c ms ~reps:count)
            insts
      | Lower.K_resadd { elems } -> estimate_resadd m c ~elems
      | Lower.K_maxpool { spec } -> estimate_maxpool m c spec);
      fence c;
      let spent = horizon c - start in
      (match watchdog with
      | Some limit when spent > limit -> (
          let fault =
            Fault.make ~core ~component:(Printf.sprintf "core%d/host" core)
              ~cycle:(horizon c)
              (Fault.Watchdog_timeout { limit; spent })
          in
          match policy with
          | Runtime.Degrade ->
              faults :=
                {
                  Runtime.fr_fault = fault;
                  fr_layer = lp.Lower.lp_name;
                  fr_action = "degrade";
                }
                :: !faults;
              host_work c ~cycles:lp.Lower.lp_cpu_cycles;
              fence c
          | Runtime.Abort | Runtime.Retry_map | Runtime.Resume_checkpoint ->
              (* The analytic estimator has no snapshot to resume from;
                 a watchdog trip unwinds as Abort does. *)
              faults :=
                {
                  Runtime.fr_fault = fault;
                  fr_layer = lp.Lower.lp_name;
                  fr_action = "abort";
                }
                :: !faults;
              raise (Fault.Trap fault))
      | _ -> ());
      records :=
        {
          Runtime.lr_name = lp.Lower.lp_name;
          lr_class = lp.Lower.lp_class;
          lr_cycles = horizon c - start;
          lr_macs = lp.Lower.lp_macs;
        }
        :: !records)
    plans;
  let total = horizon c in
  {
    d_result =
      {
        Runtime.r_model = model.Layer.model_name;
        r_mode = Lower.mode_desc mode;
        r_core = core;
        r_total_cycles = total;
        r_layers = List.rev !records;
        r_profile = [];
        r_faults = List.rev !faults;
      };
    d_tlb_requests = c.tlb_requests;
    d_tlb_walks = c.tlb_walks;
    d_tlb_shared = c.tlb_shared;
    d_mesh_busy = c.ex_busy;
    d_ld_bytes = c.ld_bytes;
    d_st_bytes = c.st_bytes;
  }

let estimate (rq : Backend.request) =
  let cores = Array.length rq.Backend.bq_jobs in
  Array.mapi
    (fun core (model, mode) ->
      estimate_core rq.Backend.bq_config ~core ~cores model ~mode
        ~policy:rq.Backend.bq_policy ~watchdog:rq.Backend.bq_watchdog)
    rq.Backend.bq_jobs

let run rq = Array.map (fun d -> d.d_result) (estimate rq)
