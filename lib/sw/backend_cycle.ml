module Soc = Gem_soc.Soc

let kind = Backend.Cycle

(* Run a request's jobs on an existing SoC (the caller may have armed
   fault injection, attached a trace collector, or installed TLB
   observers on it). Dispatch mirrors the pre-backend-seam callers
   exactly: a single job goes through [Runtime.run] on core 0, multiple
   jobs through [Runtime.run_parallel] — byte-identical cycle counts to
   the seed runtime are a regression-gated invariant. *)
let run_on soc (rq : Backend.request) =
  let policy = rq.Backend.bq_policy and watchdog = rq.Backend.bq_watchdog in
  match rq.Backend.bq_jobs with
  | [| (model, mode) |] ->
      [| Runtime.run ~policy ?watchdog soc ~core:0 model ~mode |]
  | jobs ->
      Runtime.run_parallel ~policy ?watchdog ~domains:rq.Backend.bq_domains
        soc jobs

let run (rq : Backend.request) =
  let soc = Soc.create rq.Backend.bq_config in
  run_on soc rq
