type kind = Cycle | Analytic

let kind_name = function Cycle -> "cycle" | Analytic -> "analytic"
let all_kinds = [ Cycle; Analytic ]

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "cycle" -> Some Cycle
  | "analytic" -> Some Analytic
  | _ -> None

type request = {
  bq_config : Gem_soc.Soc_config.t;
  bq_jobs : (Gem_dnn.Layer.model * Lower.mode) array;
  bq_policy : Runtime.policy;
  bq_watchdog : int option;
  bq_domains : int;
      (* host Domains for the cycle backend's multi-core driver; the
         analytic backend ignores it *)
}

let request ?(policy = Runtime.Abort) ?watchdog ?(domains = 1) ~config jobs =
  if Array.length jobs = 0 then invalid_arg "Backend.request: no jobs";
  if Array.length jobs > List.length config.Gem_soc.Soc_config.cores then
    invalid_arg "Backend.request: more jobs than cores";
  if domains < 1 then invalid_arg "Backend.request: domains must be >= 1";
  {
    bq_config = config;
    bq_jobs = jobs;
    bq_policy = policy;
    bq_watchdog = watchdog;
    bq_domains = domains;
  }

module type S = sig
  val kind : kind

  val run : request -> Runtime.result array
  (** One result per job, in job order. Contracts shared by every
      implementation: [r_layers] lists the model's layers in execution
      order with the classes {!Gem_dnn.Layer.class_of} assigns;
      [r_total_cycles] is the fenced finish horizon; [r_faults] records
      policy-handled traps in program order; [Abort] re-raises. *)
end
