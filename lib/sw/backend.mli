(** The execution-backend seam.

    A backend turns (SoC configuration, jobs, fault policy) into
    {!Runtime.result}s. Two implementations exist: {!Backend_cycle}
    drives the cycle-accurate SoC simulator, {!Backend_analytic} prices
    the same lowering ({!Lower.plan} / {!Schedule.t}) with a closed-form
    latency model. {!Backends} is the registry. *)

type kind = Cycle | Analytic

val kind_name : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

type request = {
  bq_config : Gem_soc.Soc_config.t;
  bq_jobs : (Gem_dnn.Layer.model * Lower.mode) array;
      (** one job per core, in core order *)
  bq_policy : Runtime.policy;
  bq_watchdog : int option;
  bq_domains : int;
      (** host Domains for the cycle backend's multi-core driver (results
          are byte-identical at any count); the analytic backend ignores
          it *)
}

val request :
  ?policy:Runtime.policy ->
  ?watchdog:int ->
  ?domains:int ->
  config:Gem_soc.Soc_config.t ->
  (Gem_dnn.Layer.model * Lower.mode) array ->
  request
(** Validates the job/core shape (at least one job, no more jobs than
    cores) and [domains >= 1] (default 1). *)

module type S = sig
  val kind : kind

  val run : request -> Runtime.result array
  (** One result per job, in job order. Contracts shared by every
      implementation: [r_layers] lists the model's layers in execution
      order with the classes {!Gem_dnn.Layer.class_of} assigns;
      [r_total_cycles] is the fenced finish horizon; [r_faults] records
      policy-handled traps in program order; [Abort] re-raises. *)
end
