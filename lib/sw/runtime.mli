(** The model runtime: Gemmini's "push-button" software flow, one level
    above the kernel library.

    Given a {!Gem_dnn.Layer.model} and an elaborated SoC, the runtime
    allocates virtual memory for every tensor (through the core's page
    table), lowers each layer onto the accelerator kernels (or onto the
    host CPU for the software baseline), interposes per-layer fences and
    bookkeeping markers, and executes the resulting command stream on the
    simulated SoC.

    Two execution styles:
    - {b timing}: shape-only simulation of full networks (what every
      figure of the paper uses);
    - {b functional}: real int8 data flows through the DMA, scratchpad and
      cycle-accurate mesh; validated against {!reference_inference} in the
      integration tests. *)

type mode = Lower.mode =
  | Accel of { im2col_on_accel : bool }
  | Cpu_only  (** the Fig. 7 baseline: every layer in software *)

val mode_desc : mode -> string

(** What the runtime does when an accelerator command raises a
    {!Gem_sim.Fault.Trap}. *)
type policy =
  | Abort  (** record the fault and re-raise (default) *)
  | Retry_map
      (** page faults: map the page (host fault handler) and re-issue the
          command; DMA bus errors: re-issue; anything else aborts *)
  | Degrade
      (** fall back to the CPU kernel for the offending layer: charge the
          host the layer's software cost and drop its remaining
          accelerator ops *)
  | Resume_checkpoint
      (** record the fault and unwind; a checkpointing driver above the
          runtime ({!Gem_persist}) replays from the last snapshot *)

val policy_desc : policy -> string

type fault_record = {
  fr_fault : Gem_sim.Fault.t;
  fr_layer : string;  (** the layer executing when the trap fired *)
  fr_action : string;
      (** ["abort"], ["remap"], ["retry"], ["degrade"] or
          ["resume-checkpoint"] *)
}

type layer_record = {
  lr_name : string;
  lr_class : Gem_dnn.Layer.klass;
  lr_cycles : Gem_sim.Time.cycles;  (** wall time of this layer (fenced) *)
  lr_macs : int;
}

type result = {
  r_model : string;
  r_mode : string;
  r_core : int;
  r_total_cycles : Gem_sim.Time.cycles;
  r_layers : layer_record list;
  r_profile : Gem_sim.Engine.stat list;
      (** per-component engine statistics at the end of the run, in SoC
          registration order (L2 port, DRAM, then per-core components) *)
  r_faults : fault_record list;
      (** every trap the run's policy handled, in program order; empty on
          a clean run *)
}

val cycles_by_class :
  result -> (Gem_dnn.Layer.klass * Gem_sim.Time.cycles) list
(** Aggregated per-layer-class wall time (the Fig. 9 breakdown). *)

val register_metrics : Gem_obs.Metrics.t -> result -> unit
(** Registers [runtime.coreN.total_cycles]/[.layers]/[.faults] and the
    per-class cycle breakdown as constant samples. Backend-independent:
    call once per core result, after the run. *)

val plan_ops :
  Gem_soc.Soc.t ->
  Gem_soc.Soc.core ->
  Gem_dnn.Layer.model ->
  mode:mode ->
  records:layer_record list ref ->
  Kernels.op Seq.t
(** Lazily-produced command stream for one inference. Tensor allocation
    happens immediately; per-layer ops materialize as the stream is
    consumed. *)

(* Serving re-entry: one allocation, many inferences. *)

type session
(** A model pinned to one core with its tensors allocated exactly once.
    Each {!request_ops} stream re-executes the network over the same
    virtual addresses — weights stay resident, activation buffers are
    reused — so a serving run's address space and page tables do not grow
    with the request count. *)

val make_session :
  Gem_soc.Soc.t -> core:int -> Gem_dnn.Layer.model -> mode:mode -> session
(** Allocates the model's tensors on the core (deterministic bump
    allocation, exactly as {!run} would). *)

val session_core : session -> Gem_soc.Soc.core
val session_model : session -> Gem_dnn.Layer.model

val request_ops : session -> records:layer_record list ref -> Gem_soc.Soc.op Seq.t
(** The command stream of one inference over the session's tensors,
    including the network/layer span markers and per-layer fences. The
    stream starts with a zero-cost marker rebasing per-layer cycle
    accounting on the core's finish horizon at dispatch, so [records]
    report cycles relative to the request's own start. Traps propagate
    ({!Abort} semantics); serving drivers decide recovery above this
    level. *)

val run :
  ?policy:policy ->
  ?watchdog:int ->
  ?prepare:(Gem_soc.Soc.core -> unit) ->
  ?start_layer:int ->
  ?resume:layer_record list * Gem_sim.Time.cycles ->
  ?on_layer:
    (layer:int -> records:layer_record list -> finish:Gem_sim.Time.cycles -> unit) ->
  Gem_soc.Soc.t ->
  core:int ->
  Gem_dnn.Layer.model ->
  mode:mode ->
  result
(** Single-core inference (timing). [policy] (default {!Abort}) selects
    the trap-recovery behavior; [watchdog] bounds the cycles any single
    layer may spend before a [Watchdog_timeout] trap fires; [prepare]
    runs after tensor allocation but before the first command issues
    (e.g. to unmap pages for recovery tests, or to restore a snapshot —
    tensor allocation is deterministic, so a resumed run recomputes the
    interrupted run's addresses before [prepare] overlays its state).

    Checkpoint/restore hooks: [start_layer] skips execution (not
    allocation) of layers before it and suppresses the network span-open
    marker, which a restored trace ring already carries; [resume]
    [(records, last_finish)] seeds the salvaged per-layer records and the
    finish horizon the next layer's [lr_cycles] measures from; [on_layer]
    fires after each layer's fence — the SoC is quiesced, so this is
    where {!Gem_persist} snapshots.

    When a trap escapes the policy, the still-open layer and network
    spans are closed at the abort horizon before the exception
    propagates, so observed aborts leave a well-formed span tree.

    The guarding is zero-cost: with the default policy a clean run is
    cycle-identical to older, unguarded runtimes. *)

val run_parallel :
  ?policy:policy ->
  ?watchdog:int ->
  ?domains:int ->
  Gem_soc.Soc.t ->
  (Gem_dnn.Layer.model * mode) array ->
  result array
(** One inference per core, interleaved in simulated time (the Fig. 9
    dual-core experiments). Each core gets its own recovery state under
    the shared [policy]. With [domains > 1], core-private work runs on
    worker Domains ({!Gem_soc.Soc.run_parallel}); results are
    byte-identical at any Domain count. *)

val cpu_only_cycles :
  Gem_cpu.Cpu_model.kind -> Gem_dnn.Layer.model -> Gem_sim.Time.cycles
(** Analytic software baseline (no SoC needed): the Fig. 7 denominators. *)

(* Functional execution (small models). *)

val run_functional :
  Gem_soc.Soc.t ->
  core:int ->
  Gem_dnn.Layer.model ->
  input:Gem_util.Tensor.t ->
  seed:int ->
  Gem_util.Tensor.t
(** Runs a real inference through the accelerator datapath: weights are
    generated deterministically from [seed], data moves through the DMA /
    scratchpad / mesh. Returns the final activation tensor (NHWC). The
    SoC must be functional. *)

val reference_inference :
  Gem_dnn.Layer.model ->
  input:Gem_util.Tensor.t ->
  seed:int ->
  Gem_util.Tensor.t
(** Pure-host golden model with the same weight generation and
    quantization; [run_functional] must match it bit-for-bit. *)
