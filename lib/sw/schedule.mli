(** A typed execution schedule for one tiled matmul: tile sizes, loop
    order, and dataflow choice. Both execution backends consume the same
    [Schedule.t] — the cycle-accurate emitter walks it to produce the
    command stream, the analytic estimator walks it to produce a latency —
    so the two provably price the same program. *)

type dataflow = [ `WS | `OS ]

type loop_order =
  | Output_stationary_outer
      (** i0 -> j0 -> k0 with the C tile resident in the accumulator
          across the K loop (the only order the emitter produces). *)

type t = {
  tiling : Tiling.t;
  dataflow : dataflow;
  loop_order : loop_order;
  double_buffer : bool;  (** A/B tiles ping-pong between two buffers *)
}

val choose : Gemmini.Params.t -> m:int -> k:int -> n:int -> t
(** [Tiling.choose] plus the instance's preferred dataflow
    (weight-stationary when supported — the controller's reset default). *)

val of_tiling : Gemmini.Params.t -> Tiling.t -> t
(** Wrap manually-chosen tile sizes in the default dataflow/loop order. *)

val pick_dataflow : Gemmini.Params.t -> dataflow
val fits : Gemmini.Params.t -> t -> bool
val dataflow_name : dataflow -> string
val describe : t -> string
