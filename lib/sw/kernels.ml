open Gemmini
open Gem_util
module L = Local_addr

type op = Gem_soc.Soc.op

let insn i = Gem_soc.Soc.Insn i

let fence = insn Isa.Fence
let flush_tlb = insn Isa.Flush

(* Hardware limits of the mover: one mvin touches at most DIM rows and
   MAX_BLOCK_LEN (4) adjacent DIM-blocks of columns. *)
let max_block_len = 4

type conv_im2col = Im2col_on_cpu | Im2col_on_accel | Im2col_preexpanded of int

let matmul_ops p ?tiling ?schedule ?bias ?bias_column
    ?(act = Peripheral.No_activation) ?(scale = 1.0) ?a_row_stride
    ?b_row_stride ?c_row_stride ?(a_condense = 1.0) ~a ~b ~out ~m ~k ~n () =
  if m <= 0 || k <= 0 || n <= 0 then invalid_arg "Kernels.matmul: empty problem";
  if Option.is_some bias && Option.is_some bias_column then
    invalid_arg "Kernels.matmul: bias and bias_column are exclusive";
  if Option.is_some bias_column && n > Gemmini.Params.dim p then
    invalid_arg "Kernels.matmul: bias_column requires n <= DIM";
  let p = Params.validate_exn p in
  let dim = Params.dim p in
  let sched =
    match (schedule, tiling) with
    | Some s, _ ->
        if not (Schedule.fits p s) then
          invalid_arg "Kernels.matmul: schedule tiling does not fit the memories";
        s
    | None, Some t ->
        if not (Tiling.fits p t) then
          invalid_arg "Kernels.matmul: manual tiling does not fit the memories";
        Schedule.of_tiling p t
    | None, None -> Schedule.choose p ~m ~k ~n
  in
  let tl = sched.Schedule.tiling in
  let bi, bk, bj = Tiling.blocks p ~m ~k ~n in
  let a_stride = Option.value a_row_stride ~default:k in
  let b_stride = Option.value b_row_stride ~default:n in
  let c_stride = Option.value c_row_stride ~default:n in
  (* Condensed A fetch models the on-the-fly im2col unit: the loader reads
     the raw input footprint instead of the expanded patch matrix. Timing
     mode only. *)
  let condense_len x = max 1 (int_of_float (Float.round (float_of_int x *. a_condense))) in
  let condense_off x = int_of_float (Float.round (float_of_int x *. a_condense)) in
  let a_tile_rows = tl.Tiling.ti * tl.Tiling.tk * dim in
  let b_tile_rows = tl.Tiling.tk * tl.Tiling.tj * dim in
  let a_base parity = parity * a_tile_rows in
  let b_base parity = (2 * a_tile_rows) + (parity * b_tile_rows) in
  let c_base ii jj = (ii * tl.Tiling.tj) + jj |> ( * ) dim in
  let ops = ref [] in
  let emit i = ops := insn i :: !ops in
  emit
    (Isa.Config_ex
       {
         dataflow = sched.Schedule.dataflow;
         activation = Peripheral.No_activation;
         sys_shift = 0;
         a_transpose = false;
         b_transpose = false;
       });
  emit (Isa.Config_ld { ld_stride_bytes = condense_len a_stride; ld_scale = 1.0; ld_shrunk = false; ld_id = 0 });
  emit (Isa.Config_ld { ld_stride_bytes = b_stride; ld_scale = 1.0; ld_shrunk = false; ld_id = 1 });
  emit
    (Isa.Config_ld
       {
         ld_stride_bytes = (if Option.is_some bias_column then 4 else 0);
         ld_scale = 1.0;
         ld_shrunk = false;
         ld_id = 2;
       });
  emit
    (Isa.Config_st
       { st_stride_bytes = c_stride; st_activation = act; st_scale = scale; st_pool = None });
  let rows_of gi = min dim (m - (gi * dim)) in
  let kcols_of gk = min dim (k - (gk * dim)) in
  let ncols_of gj = min dim (n - (gj * dim)) in
  let it = ref 0 in
  for i0 = 0 to Mathx.ceil_div bi tl.Tiling.ti - 1 do
    let vi = min tl.Tiling.ti (bi - (i0 * tl.Tiling.ti)) in
    for j0 = 0 to Mathx.ceil_div bj tl.Tiling.tj - 1 do
      let vj = min tl.Tiling.tj (bj - (j0 * tl.Tiling.tj)) in
      (* Stage the bias (if any) into the C accumulator tile: a stride-0
         broadcast mvin per block. *)
      (match (bias, bias_column) with
      | None, None -> ()
      | Some bias_va, _ | None, Some bias_va ->
          for ii = 0 to vi - 1 do
            for jj = 0 to vj - 1 do
              let gi = (i0 * tl.Tiling.ti) + ii and gj = (j0 * tl.Tiling.tj) + jj in
              let dram_addr =
                match bias_column with
                | Some _ -> bias_va + (gi * dim * 4) (* one word per row *)
                | None -> bias_va + (gj * dim * 4) (* broadcast per column *)
              in
              emit
                (Isa.Mvin
                   ( {
                       Isa.dram_addr;
                       local = L.accumulator ~row:(c_base ii jj) ();
                       cols = ncols_of gj;
                       rows = rows_of gi;
                     },
                     2 ))
            done
          done);
      for k0 = 0 to Mathx.ceil_div bk tl.Tiling.tk - 1 do
        let vk = min tl.Tiling.tk (bk - (k0 * tl.Tiling.tk)) in
        let parity = !it land 1 in
        incr it;
        (* Load the A tile. *)
        for ii = 0 to vi - 1 do
          let gi = (i0 * tl.Tiling.ti) + ii in
          let kk = ref 0 in
          while !kk < vk do
            let w = min max_block_len (vk - !kk) in
            let gk = (k0 * tl.Tiling.tk) + !kk in
            let cols = min (w * dim) (k - (gk * dim)) in
            emit
              (Isa.Mvin
                 ( {
                     Isa.dram_addr = a + condense_off ((gi * dim * a_stride) + (gk * dim));
                     local = L.scratchpad ~row:(a_base parity + (((ii * tl.Tiling.tk) + !kk) * dim));
                     cols = condense_len cols;
                     rows = rows_of gi;
                   },
                   0 ));
            kk := !kk + w
          done
        done;
        (* Load the B tile. *)
        for kk = 0 to vk - 1 do
          let gk = (k0 * tl.Tiling.tk) + kk in
          let jj = ref 0 in
          while !jj < vj do
            let w = min max_block_len (vj - !jj) in
            let gj = (j0 * tl.Tiling.tj) + !jj in
            let cols = min (w * dim) (n - (gj * dim)) in
            emit
              (Isa.Mvin
                 ( {
                     Isa.dram_addr = b + (gk * dim * b_stride) + (gj * dim);
                     local = L.scratchpad ~row:(b_base parity + (((kk * tl.Tiling.tj) + !jj) * dim));
                     cols;
                     rows = kcols_of gk;
                   },
                   1 ));
            jj := !jj + w
          done
        done;
        (* Compute: keep each B block stationary across the I dimension. *)
        for kk = 0 to vk - 1 do
          let gk = (k0 * tl.Tiling.tk) + kk in
          for jj = 0 to vj - 1 do
            let gj = (j0 * tl.Tiling.tj) + jj in
            let b_local =
              L.scratchpad ~row:(b_base parity + (((kk * tl.Tiling.tj) + jj) * dim))
            in
            for ii = 0 to vi - 1 do
              let gi = (i0 * tl.Tiling.ti) + ii in
              let first_of_b = ii = 0 in
              let accumulate =
                Option.is_some bias || Option.is_some bias_column || k0 > 0 || kk > 0
              in
              let c_la = L.accumulator ~accumulate ~row:(c_base ii jj) () in
              emit
                (Isa.Preload
                   {
                     b = (if first_of_b then b_local else L.garbage);
                     c = c_la;
                     b_rows = kcols_of gk;
                     b_cols = ncols_of gj;
                     c_rows = rows_of gi;
                     c_cols = ncols_of gj;
                   });
              let args =
                {
                  Isa.a =
                    L.scratchpad ~row:(a_base parity + (((ii * tl.Tiling.tk) + kk) * dim));
                  bd = L.garbage;
                  a_cols = kcols_of gk;
                  a_rows = rows_of gi;
                  bd_cols = ncols_of gj;
                  bd_rows = rows_of gi;
                }
              in
              emit
                (if first_of_b then Isa.Compute_preloaded args
                 else Isa.Compute_accumulated args)
            done
          done
        done
      done;
      (* Drain the C tile. *)
      for ii = 0 to vi - 1 do
        for jj = 0 to vj - 1 do
          let gi = (i0 * tl.Tiling.ti) + ii and gj = (j0 * tl.Tiling.tj) + jj in
          emit
            (Isa.Mvout
               {
                 Isa.dram_addr = out + (gi * dim * c_stride) + (gj * dim);
                 local = L.accumulator ~row:(c_base ii jj) ();
                 cols = ncols_of gj;
                 rows = rows_of gi;
               })
        done
      done
    done
  done;
  List.rev !ops

let matmul_loop_ws_ops p ?bias ?(act = Peripheral.No_activation) ?(scale = 1.0)
    ~a ~b ~out ~m ~k ~n () =
  let _ = Params.validate_exn p in
  [
    insn
      (Isa.Loop_ws_bounds
         { Isa.lw_m = m; lw_k = k; lw_n = n; lw_has_bias = Option.is_some bias; lw_activation = act });
    insn (Isa.Loop_ws_addrs { Isa.lw_a = a; lw_b = b });
    insn (Isa.Loop_ws_outs { Isa.lw_bias = Option.value bias ~default:0; lw_c = out });
    insn
      (Isa.Loop_ws
         { Isa.lw_a_stride = k; lw_b_stride = n; lw_c_stride = n; lw_scale = scale });
  ]

(* --- residual addition ---------------------------------------------------- *)

let resadd_ops p ?(relu = false) ~x ~y ~out ~elems () =
  if elems <= 0 then invalid_arg "Kernels.resadd: empty";
  let p = Params.validate_exn p in
  let dim = Params.dim p in
  let acc_groups = Params.acc_rows p / dim in
  let ops = ref [] in
  let emit i = ops := insn i :: !ops in
  let row_bytes = dim in
  emit (Isa.Config_ld { ld_stride_bytes = row_bytes; ld_scale = 1.0; ld_shrunk = true; ld_id = 0 });
  emit (Isa.Config_ld { ld_stride_bytes = row_bytes; ld_scale = 1.0; ld_shrunk = true; ld_id = 1 });
  emit
    (Isa.Config_st
       {
         st_stride_bytes = row_bytes;
         st_activation = (if relu then Peripheral.Relu else Peripheral.No_activation);
         st_scale = 1.0;
         st_pool = None;
       });
  let total_rows = Mathx.ceil_div elems dim in
  let g = ref 0 in
  let row = ref 0 in
  while !row < total_rows do
    let rows = min dim (total_rows - !row) in
    (* Rows in the last group may be ragged; process full-width rows and a
       partial tail row in the same mvin by clamping cols. *)
    let base_off = !row * dim in
    let acc_row = !g mod acc_groups * dim in
    let mv vaddr ~accumulate id =
      emit
        (Isa.Mvin
           ( {
               Isa.dram_addr = vaddr + base_off;
               local = L.accumulator ~accumulate ~row:acc_row ();
               cols = dim;
               rows;
             },
             id ))
    in
    mv x ~accumulate:false 0;
    mv y ~accumulate:true 1;
    emit
      (Isa.Mvout
         {
           Isa.dram_addr = out + base_off;
           local = L.accumulator ~row:acc_row ();
           cols = dim;
           rows;
         });
    incr g;
    row := !row + rows
  done;
  List.rev !ops

(* --- pooling --------------------------------------------------------------- *)

let maxpool_ops p ~cpu ~input ~out ~spec () =
  let open Gem_dnn.Layer in
  let p = Params.validate_exn p in
  let dim = Params.dim p in
  let in_elems = spec.p_in_h * spec.p_in_w * spec.p_ch in
  let out_h = ((spec.p_in_h + (2 * spec.p_padding) - spec.window) / spec.p_stride) + 1 in
  let out_w = ((spec.p_in_w + (2 * spec.p_padding) - spec.window) / spec.p_stride) + 1 in
  let out_elems = out_h * out_w * spec.p_ch in
  if not p.Params.has_pooling then
    [
      Gem_soc.Soc.Host_work
        {
          cycles = Gem_cpu.Cpu_model.pooling_cycles cpu ~elems:out_elems ~window:spec.window;
          tag = "maxpool(cpu)";
        };
    ]
  else begin
    (* The pooling unit works on the store path: stream the input through
       the scratchpad, write the pooled map back. *)
    let ops = ref [] in
    let emit i = ops := insn i :: !ops in
    emit (Isa.Config_ld { ld_stride_bytes = dim; ld_scale = 1.0; ld_shrunk = false; ld_id = 0 });
    emit
      (Isa.Config_st
         {
           st_stride_bytes = dim;
           st_activation = Peripheral.No_activation;
           st_scale = 1.0;
           st_pool =
             Some { Isa.window = spec.window; stride = spec.p_stride; padding = spec.p_padding };
         });
    let sp_rows = Params.sp_rows p in
    let in_rows = Mathx.ceil_div in_elems dim in
    let out_rows = Mathx.ceil_div out_elems dim in
    (* Interleave loads and pooled stores at the steady-state ratio. *)
    let loads_per_store = max 1 (Mathx.ceil_div in_rows (max 1 out_rows)) in
    let li = ref 0 and si = ref 0 and g = ref 0 in
    while !li < in_rows || !si < out_rows do
      if !li < in_rows then begin
        let rows = min dim (in_rows - !li) in
        for _ = 1 to loads_per_store do
          if !li < in_rows then begin
            let rows = min rows (in_rows - !li) in
            emit
              (Isa.Mvin
                 ( {
                     Isa.dram_addr = input + (!li * dim);
                     local = L.scratchpad ~row:(!g * dim mod sp_rows);
                     cols = dim;
                     rows;
                   },
                   0 ));
            incr g;
            li := !li + rows
          end
        done
      end;
      if !si < out_rows then begin
        let rows = min dim (out_rows - !si) in
        emit
          (Isa.Mvout
             {
               Isa.dram_addr = out + (!si * dim);
               local = L.scratchpad ~row:(max 0 ((!g - 1) * dim mod sp_rows));
               cols = dim;
               rows;
             });
        si := !si + rows
      end
    done;
    List.rev !ops
  end

(* --- host-side work -------------------------------------------------------- *)

let host_elementwise_ops ~cpu ~elems ~tag =
  [
    Gem_soc.Soc.Host_work
      { cycles = Gem_cpu.Cpu_model.elementwise_cycles cpu ~elems; tag };
  ]

(* --- convolution ------------------------------------------------------------ *)

let conv_ops p ~cpu ~im2col ?bias ?(scale = 1.0) ~input ~weights ~out ~spec
    ~patch_scratch () =
  let open Gem_dnn.Layer in
  let oh, ow = conv_out_dims spec in
  let act = if spec.relu then Peripheral.Relu else Peripheral.No_activation in
  if spec.depthwise then begin
    (* One skinny matmul per channel: M = output pixels, K = kernel^2,
       N = 1. Low reuse and a mostly-idle array — the MobileNetV2
       bottleneck the paper calls out. *)
    let m = oh * ow and k = spec.kernel * spec.kernel in
    let per_channel_patch = m * k in
    let host =
      match im2col with
      | Im2col_on_cpu ->
          [
            Gem_soc.Soc.Host_work
              {
                cycles =
                  Gem_cpu.Cpu_model.im2col_cycles cpu
                    ~patch_elems:(per_channel_patch * spec.in_ch);
                tag = "im2col(cpu,dw)";
              };
          ]
      | Im2col_on_accel | Im2col_preexpanded _ -> []
    in
    let channel_ops ch =
      let a_va, a_condense, a_stride =
        match im2col with
        | Im2col_on_cpu -> (patch_scratch + (ch * per_channel_patch), 1.0, k)
        | Im2col_preexpanded va -> (va + (ch * per_channel_patch), 1.0, k)
        | Im2col_on_accel ->
            let ratio =
              float_of_int (spec.in_h * spec.in_w) /. float_of_int (m * k)
            in
            (input + (ch * spec.in_h * spec.in_w / max 1 spec.in_ch), min 1.0 ratio, k)
      in
      matmul_ops p
        ?bias:(Option.map (fun b -> b + (4 * ch)) bias)
        ~act ~scale ~a_row_stride:a_stride ~a_condense ~a:a_va
        ~b:(weights + (ch * k))
        ~out:(out + ch) ~c_row_stride:spec.in_ch (* NHWC channel-strided output *)
        ~m ~k ~n:1 ()
    in
    host @ List.concat (List.init spec.in_ch channel_ops)
  end
  else begin
    let m = oh * ow and k = spec.kernel * spec.kernel * spec.in_ch and n = spec.out_ch in
    match im2col with
    | Im2col_on_cpu ->
        Gem_soc.Soc.Host_work
          {
            cycles = Gem_cpu.Cpu_model.im2col_cycles cpu ~patch_elems:(m * k);
            tag = "im2col(cpu)";
          }
        :: matmul_ops p ?bias ~act ~scale ~a:patch_scratch ~b:weights ~out ~m ~k ~n ()
    | Im2col_preexpanded va ->
        matmul_ops p ?bias ~act ~scale ~a:va ~b:weights ~out ~m ~k ~n ()
    | Im2col_on_accel ->
        if not p.Params.has_im2col then
          invalid_arg "Kernels.conv: accelerator has no im2col block";
        (* The im2col unit expands on the fly: the A loads read only the
           raw input footprint. *)
        let ratio =
          float_of_int (spec.in_h * spec.in_w * spec.in_ch) /. float_of_int (m * k)
        in
        matmul_ops p ?bias ~act ~scale ~a:input ~a_condense:(min 1.0 ratio) ~m ~k ~n
          ~b:weights ~out ()
  end
