open Gem_util
open Gem_dnn
module Soc = Gem_soc.Soc
module Cpu = Gem_cpu.Cpu_model
module P = Gem_obs.Profile
module Fault = Gem_sim.Fault

(* The mode (and every other backend-agnostic lowering decision) lives in
   [Lower]; re-exported here so existing [Runtime.Accel]/[Runtime.Cpu_only]
   users keep working. *)
type mode = Lower.mode = Accel of { im2col_on_accel : bool } | Cpu_only

let mode_desc = Lower.mode_desc

type policy = Abort | Retry_map | Degrade | Resume_checkpoint

let policy_desc = function
  | Abort -> "abort"
  | Retry_map -> "retry-map"
  | Degrade -> "degrade"
  | Resume_checkpoint -> "resume-checkpoint"

type fault_record = {
  fr_fault : Fault.t;
  fr_layer : string;
  fr_action : string;
}

type layer_record = {
  lr_name : string;
  lr_class : Layer.klass;
  lr_cycles : Gem_sim.Time.cycles;
  lr_macs : int;
}

type result = {
  r_model : string;
  r_mode : string;
  r_core : int;
  r_total_cycles : Gem_sim.Time.cycles;
  r_layers : layer_record list;
  r_profile : Gem_sim.Engine.stat list;
  r_faults : fault_record list;
}

let cycles_by_class r =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun lr ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl lr.lr_class) in
      Hashtbl.replace tbl lr.lr_class (prev + lr.lr_cycles))
    r.r_layers;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

(* Backend-independent run metrics: the cycle engine and the analytic
   estimator both produce [result]s, so a snapshot works on either. *)
let register_metrics reg (r : result) =
  let module M = Gem_obs.Metrics in
  let pre = Printf.sprintf "runtime.core%d." r.r_core in
  M.int reg (pre ^ "total_cycles") r.r_total_cycles;
  M.int reg (pre ^ "layers") (List.length r.r_layers);
  M.int reg (pre ^ "faults") (List.length r.r_faults);
  List.iter
    (fun (k, c) -> M.int reg (pre ^ "class." ^ Layer.class_name k) c)
    (cycles_by_class r)

(* Fixed requantization scale applied by every MAC layer's store path (and
   by the golden model): int32 accumulator -> int8 activation. *)
let out_scale = 0.0625

(* Deterministic test weights. *)
let weight_rng ~seed ~idx = Rng.create ~seed:((seed * 7919) + idx)

let gen_weight_matrix ~seed ~idx ~rows ~cols =
  Matrix.random (weight_rng ~seed ~idx) ~rows ~cols ~lo:(-8) ~hi:8

let gen_bias ~seed ~idx ~n =
  let rng = Rng.create ~seed:((seed * 104729) + idx + 1) in
  Array.init n (fun _ -> Rng.int_in rng ~lo:(-128) ~hi:128)

(* --- CPU-only costs (shared with the analytic backend via Lower) ------------ *)

let cpu_layer_cycles = Lower.cpu_layer_cycles
let cpu_only_cycles = Lower.cpu_only_cycles

(* --- fault policies ---------------------------------------------------------- *)

(* Per-core recovery state threaded through the guarded op stream. The
   fields describing the current layer are set by a zero-cost begin
   marker, so recovery actions (CPU fallback cost, fault attribution)
   know which layer trapped without any timing impact on clean runs. *)
type guard = {
  g_policy : policy;
  g_watchdog : int option;  (** max cycles a single layer may spend *)
  mutable g_layer : string;
  mutable g_layer_cpu : int;  (** CPU-kernel cost of the layer (Degrade) *)
  mutable g_layer_start : Gem_sim.Time.cycles;
  mutable g_skip : bool;  (** degraded: drain this layer's remaining ops *)
  mutable g_faults : fault_record list;
}

let make_guard ~policy ~watchdog =
  {
    g_policy = policy;
    g_watchdog = watchdog;
    g_layer = "";
    g_layer_cpu = 0;
    g_layer_start = 0;
    g_skip = false;
    g_faults = [];
  }

let watchdog_check guard core =
  match guard.g_watchdog with
  | None -> ()
  | Some limit ->
      let ctrl = Soc.controller core in
      let spent = Gemmini.Controller.finish_time ctrl - guard.g_layer_start in
      if spent > limit then
        Gem_sim.Engine.trap
          (Gemmini.Controller.engine ctrl)
          (Fault.make ~core:(Soc.core_id core)
             ~component:(Printf.sprintf "core%d/host" (Soc.core_id core))
             ~cycle:(Gemmini.Controller.now ctrl)
             (Fault.Watchdog_timeout { limit; spent }))

let rec guarded_exec soc guard core op =
  try
    if guard.g_skip then
      (* Degraded layer: its remaining accelerator ops are dropped; the
         layer-boundary fence still executes so downstream layers stay
         ordered behind whatever was in flight when the layer trapped. *)
      match op with
      | Soc.Insn Gemmini.Isa.Fence -> Soc.exec_op core op
      | _ -> ()
    else begin
      watchdog_check guard core;
      Soc.exec_op core op
    end
  with Fault.Trap f -> handle_trap soc guard core op f

and handle_trap soc guard core op (f : Fault.t) =
  let record action =
    guard.g_faults <-
      { fr_fault = f; fr_layer = guard.g_layer; fr_action = action }
      :: guard.g_faults
  in
  match (guard.g_policy, f.Fault.cause) with
  | Abort, _ ->
      record "abort";
      raise (Fault.Trap f)
  | Retry_map, Fault.Page_fault { vpn; _ } ->
      (* The host's page-fault handler: map (or swap back in) the
         faulting page, then re-issue the whole command. *)
      record "remap";
      Soc.map_page soc core ~vaddr:(vpn * Gem_vm.Page_table.page_size);
      guarded_exec soc guard core op
  | Retry_map, Fault.Dma_bus_error _ ->
      (* Transient bus error: re-issue. Injection re-rolls on the retry,
         so with rate < 1 this converges. *)
      record "retry";
      guarded_exec soc guard core op
  | Retry_map, _ ->
      (* Not a recoverable-by-retry condition (illegal instruction,
         out-of-bounds, watchdog): give up as Abort would. *)
      record "abort";
      raise (Fault.Trap f)
  | Degrade, _ ->
      (* CPU-kernel fallback: charge the host the software cost of the
         whole layer and drop its remaining accelerator ops. *)
      record "degrade";
      guard.g_skip <- true;
      Gemmini.Controller.host_work (Soc.controller core)
        ~cycles:guard.g_layer_cpu
  | Resume_checkpoint, _ ->
      (* Recovery happens above the runtime: the checkpointing driver
         (Gem_persist) catches the escaping trap and replays from the
         last snapshot. Here we only record and unwind. *)
      record "resume-checkpoint";
      raise (Fault.Trap f)

(* --- planning --------------------------------------------------------------- *)

type tensors = {
  t_out : int array;  (** output VA per layer index *)
  t_weights : int array;
  t_bias : int array;
  t_patch : int array;  (** per-layer patch VA (functional) or shared scratch *)
  t_input : int;  (** VA of the network input *)
}

let page = 4096

let allocate_tensors soc core model ~functional =
  let layers = Array.of_list model.Layer.layers in
  let n = Array.length layers in
  let alloc bytes = Soc.alloc soc core ~bytes:(bytes + page) in
  let first_in_bytes =
    match layers with
    | [||] -> page
    | _ -> Layer.in_bytes (snd layers.(0))
  in
  let t_input = alloc (max page first_in_bytes) in
  let t_out = Array.make n 0 in
  let t_weights = Array.make n 0 in
  let t_bias = Array.make n 0 in
  let t_patch = Array.make n 0 in
  (* Shared patch scratch for timing mode: sized for the largest conv. *)
  let max_patch =
    Array.fold_left
      (fun acc (_, l) ->
        match l with
        | Layer.Conv c ->
            (match Layer.as_matmul l with
            | Some mm ->
                let per = mm.Layer.m * mm.Layer.k * mm.Layer.count in
                max acc (if c.Layer.depthwise then per else per)
            | None -> acc)
        | _ -> acc)
      0 layers
  in
  let shared_patch = if max_patch > 0 then alloc max_patch else 0 in
  Array.iteri
    (fun i (_, l) ->
      t_out.(i) <- alloc (max 16 (Layer.out_bytes l));
      let wb = Layer.weight_bytes l in
      if wb > 0 then t_weights.(i) <- alloc wb;
      (match Layer.as_matmul l with
      | Some mm ->
          t_bias.(i) <- alloc (4 * mm.Layer.n * mm.Layer.count)
      | None -> ());
      t_patch.(i) <-
        (match l with
        | Layer.Conv _ when functional ->
            (match Layer.as_matmul l with
            | Some mm -> alloc (mm.Layer.m * mm.Layer.k * mm.Layer.count)
            | None -> 0)
        | Layer.Conv _ -> shared_patch
        | _ -> 0))
    layers;
  { t_out; t_weights; t_bias; t_patch; t_input }

(* Functional-mode data staging helpers. *)

(* Batch-1 GEMMs are emitted transposed (see Lower.swapped_matmul); the
   weights of such layers are therefore stored transposed. *)
let swapped_matmul = Lower.swapped_matmul

let write_weights soc core tensors ~seed model =
  List.iteri
    (fun i (_, l) ->
      match Layer.as_matmul l with
      | None -> ()
      | Some mm ->
          let rows = mm.Layer.k and cols = mm.Layer.n in
          let total = mm.Layer.count in
          for inst = 0 to total - 1 do
            let w = gen_weight_matrix ~seed ~idx:((i * 131) + inst) ~rows ~cols in
            let w = if swapped_matmul l then Matrix.transpose w else w in
            let flat = Array.concat (Array.to_list w) in
            Soc.host_write_i8 soc core
              ~vaddr:(tensors.t_weights.(i) + (inst * rows * cols))
              flat
          done;
          let bias = gen_bias ~seed ~idx:i ~n:(cols * total) in
          Soc.host_write_i32 soc core ~vaddr:(tensors.t_bias.(i)) bias)
    model.Layer.layers

let read_tensor soc core ~vaddr ~shape =
  let n = Array.fold_left ( * ) 1 shape in
  let data = Soc.host_read_i8 soc core ~vaddr ~n in
  let t = Tensor.create shape in
  Array.blit data 0 (Tensor.data t) 0 n;
  t

let write_tensor soc core ~vaddr t =
  Soc.host_write_i8 soc core ~vaddr (Tensor.data t)

(* --- span markers ------------------------------------------------------------ *)

module Span = Gem_sim.Span

(* Zero-cost observability hooks: each marker reads the controller clock
   and emits a span event only when the engine is live, so unobserved runs
   execute the identical op stream with no event allocation. *)
let span_open_marker ~cat ~name time_of =
  Soc.Marker
    (fun core ->
      let ctrl = Soc.controller core in
      Span.emit_open
        (Gemmini.Controller.engine ctrl)
        ~component:(Gemmini.Controller.host_component ctrl)
        ~time:(time_of ctrl) ~cat name)

let span_close_marker ~name time_of =
  Soc.Marker
    (fun core ->
      let ctrl = Soc.controller core in
      Span.emit_close
        (Gemmini.Controller.engine ctrl)
        ~component:(Gemmini.Controller.host_component ctrl)
        ~time:(time_of ctrl) name)

(* A kernel span opens at the issue cursor (dispatch of the kernel's first
   command) and closes at the finish horizon once its commands retire. *)
let kernel_span name = function
  | [] -> []
  | ops ->
      (span_open_marker ~cat:"kernel" ~name Gemmini.Controller.now :: ops)
      @ [ span_close_marker ~name Gemmini.Controller.finish_time ]

(* --- per-layer emission ------------------------------------------------------ *)

let layer_ops soc core tensors ~mode ~functional ~idx ~input_va layer =
  let params = Gemmini.Controller.params (Soc.controller core) in
  let cpu = Soc.cpu core in
  let out_va = tensors.t_out.(idx) in
  let marker f = [ Soc.Marker f ] in
  match (mode, layer) with
  | Cpu_only, l ->
      [ Soc.Host_work { cycles = cpu_layer_cycles cpu l; tag = "cpu-layer" } ]
  | Accel _, Layer.Elementwise { e_elems; e_name } ->
      (if functional then
         (* Host ops are identity passes in the functional model. *)
         marker (fun core ->
             let data = Soc.host_read_i8 soc core ~vaddr:input_va ~n:e_elems in
             Soc.host_write_i8 soc core ~vaddr:out_va data)
       else [])
      @ kernel_span e_name
          (Kernels.host_elementwise_ops ~cpu ~elems:e_elems ~tag:e_name)
  | Accel _, Layer.Global_avg_pool { g_h; g_w; g_ch } ->
      (if functional then
         marker (fun core ->
             let t = read_tensor soc core ~vaddr:input_va ~shape:[| 1; g_h; g_w; g_ch |] in
             write_tensor soc core ~vaddr:out_va (Gemmini.Peripheral.avg_pool_global t))
       else [])
      @ kernel_span "gap"
          (Kernels.host_elementwise_ops ~cpu ~elems:(g_h * g_w * g_ch)
             ~tag:"gap")
  | Accel _, Layer.Max_pool p ->
      if functional then
        marker (fun core ->
            let t =
              read_tensor soc core ~vaddr:input_va
                ~shape:[| 1; p.Layer.p_in_h; p.Layer.p_in_w; p.Layer.p_ch |]
            in
            let pooled =
              Gemmini.Peripheral.max_pool ~window:p.Layer.window
                ~stride:p.Layer.p_stride ~padding:p.Layer.p_padding t
            in
            write_tensor soc core ~vaddr:out_va pooled)
      else
        kernel_span "maxpool"
          (Kernels.maxpool_ops params ~cpu ~input:input_va ~out:out_va ~spec:p
             ())
  | Accel _, Layer.Residual_add { r_h; r_w; r_ch; back1; back2 } ->
      let operand back =
        let j = idx - back in
        if j < 0 then tensors.t_input else tensors.t_out.(j)
      in
      kernel_span "resadd"
        (Kernels.resadd_ops params ~x:(operand back1) ~y:(operand back2)
           ~out:out_va
           ~elems:(r_h * r_w * r_ch) ())
  | Accel { im2col_on_accel }, Layer.Conv spec ->
      let patch_va = tensors.t_patch.(idx) in
      let prep =
        if functional then
          (* Materialize the patch matrix so the datapath reads real data;
             the hardware im2col block is modeled in timing mode only. *)
          marker (fun core ->
              let t =
                read_tensor soc core ~vaddr:input_va
                  ~shape:[| 1; spec.Layer.in_h; spec.Layer.in_w; spec.Layer.in_ch |]
              in
              if spec.Layer.depthwise then begin
                let mk = Layer.as_matmul layer |> Option.get in
                let per = mk.Layer.m * mk.Layer.k in
                for ch = 0 to spec.Layer.in_ch - 1 do
                  let chan =
                    Tensor.init [| 1; spec.Layer.in_h; spec.Layer.in_w; 1 |]
                      (fun i -> Tensor.get4 t 0 i.(1) i.(2) ch)
                  in
                  let patch =
                    Gemmini.Peripheral.im2col ~input:chan ~kernel:spec.Layer.kernel
                      ~stride:spec.Layer.stride ~padding:spec.Layer.padding
                  in
                  let flat = Array.concat (Array.to_list patch) in
                  Soc.host_write_i8 soc core ~vaddr:(patch_va + (ch * per)) flat
                done
              end
              else begin
                let patch =
                  Gemmini.Peripheral.im2col ~input:t ~kernel:spec.Layer.kernel
                    ~stride:spec.Layer.stride ~padding:spec.Layer.padding
                in
                let flat = Array.concat (Array.to_list patch) in
                Soc.host_write_i8 soc core ~vaddr:patch_va flat
              end)
        else []
      in
      let im2col : Kernels.conv_im2col =
        match
          Lower.resolve_im2col params ~mode:(Accel { im2col_on_accel })
            ~functional
        with
        | Lower.Im_pre -> Kernels.Im2col_preexpanded patch_va
        | Lower.Im_accel -> Kernels.Im2col_on_accel
        | Lower.Im_cpu -> Kernels.Im2col_on_cpu
      in
      prep
      @ kernel_span "conv"
          (Kernels.conv_ops params ~cpu ~im2col ~bias:(tensors.t_bias.(idx))
             ~scale:out_scale ~input:input_va ~weights:(tensors.t_weights.(idx))
             ~out:out_va ~spec ~patch_scratch:tensors.t_patch.(idx) ())
  | Accel _, Layer.Matmul mm ->
      let act =
        if mm.Layer.relu then Gemmini.Peripheral.Relu
        else Gemmini.Peripheral.No_activation
      in
      let instance i =
        kernel_span "matmul"
        @@
        if mm.Layer.m = 1 then
          (* C^T = W^T . x: the transposed weight matrix is the streaming
             A operand (page-sequential rows); x and C^T are flat vectors,
             so no data movement changes. Bias becomes per-row, which the
             store path cannot broadcast — the kernel biases through the
             accumulator mvin channel all the same because each output
             block row sees its own bias word. For the swapped layout the
             bias is added via a host-free accumulate mvin of the bias
             vector reinterpreted column-wise. *)
          Kernels.matmul_ops params
            ~bias_column:(tensors.t_bias.(idx) + (4 * mm.Layer.n * i))
            ~act ~scale:out_scale
            ~a:(tensors.t_weights.(idx) + (i * mm.Layer.k * mm.Layer.n))
            ~b:(input_va + (i * mm.Layer.m * mm.Layer.k))
            ~out:(out_va + (i * mm.Layer.m * mm.Layer.n))
            ~m:mm.Layer.n ~k:mm.Layer.k ~n:1 ()
        else
          Kernels.matmul_ops params
            ~bias:(tensors.t_bias.(idx) + (4 * mm.Layer.n * i))
            ~act ~scale:out_scale
            ~a:(input_va + (i * mm.Layer.m * mm.Layer.k))
            ~b:(tensors.t_weights.(idx) + (i * mm.Layer.k * mm.Layer.n))
            ~out:(out_va + (i * mm.Layer.m * mm.Layer.n))
            ~m:mm.Layer.m ~k:mm.Layer.k ~n:mm.Layer.n ()
      in
      List.concat (List.init mm.Layer.count instance)

(* Emission over pre-allocated tensors: the shared core of one-shot plans
   ([plan_ops_with] allocates then emits) and serving re-entry
   ([request_ops] allocates once per session, then emits per request).
   [rebase] prepends a zero-cost marker that rebases the per-layer cycle
   accounting on the core's finish horizon at execution time — a request
   dispatched mid-run then reports layer cycles relative to its own start
   rather than to cycle 0. *)
let network_ops ?(start_layer = 0) ?(resume_finish = 0) ?(rebase = false)
    ?on_layer soc core model ~mode ~records ~guard ~tensors =
  let functional = Option.is_some (Soc.mainmem soc) in
  let layers = Array.of_list model.Layer.layers in
  let cpu = Soc.cpu core in
  let last_finish = ref resume_finish in
  let emit_layer_quiet idx =
    let name, layer = layers.(idx) in
    let input_va = if idx = 0 then tensors.t_input else tensors.t_out.(idx - 1) in
    let ops = layer_ops soc core tensors ~mode ~functional ~idx ~input_va layer in
    (* The layer span opens at the previous layer's finish horizon (the
       same base lr_cycles measures from), so layer slices tile the
       timeline without overlap. *)
    let layer_open =
      span_open_marker ~cat:"layer" ~name Gemmini.Controller.finish_time
    in
    let finish_marker =
      Soc.Marker
        (fun core ->
          let ctrl = Soc.controller core in
          let f = Gemmini.Controller.finish_time ctrl in
          Span.emit_close
            (Gemmini.Controller.engine ctrl)
            ~component:(Gemmini.Controller.host_component ctrl)
            ~time:f name;
          records :=
            {
              lr_name = name;
              lr_class = Layer.class_of layer;
              lr_cycles = f - !last_finish;
              lr_macs = Layer.macs layer;
            }
            :: !records;
          last_finish := f;
          (* The fence just ran, so the pipeline is quiesced: this is the
             one point where a snapshot of the SoC is meaningful. *)
          match on_layer with
          | None -> ()
          | Some cb -> cb ~layer:idx ~records:(List.rev !records) ~finish:f)
    in
    let ops = ops @ [ Kernels.fence ] in
    match guard with
    | None -> (layer_open :: ops) @ [ finish_marker ]
    | Some g ->
        (* Guarded stream: a begin marker arms the per-layer recovery
           state, and every op routes through [guarded_exec]. Plan-level
           markers (functional-mode data staging) run unguarded — they
           are host code, not accelerator commands. All wrapping is
           zero-cost, so clean runs are cycle-identical to unguarded
           ones. *)
        let begin_marker =
          Soc.Marker
            (fun core ->
              g.g_layer <- name;
              g.g_layer_cpu <- cpu_layer_cycles cpu layer;
              g.g_layer_start <-
                Gemmini.Controller.finish_time (Soc.controller core);
              g.g_skip <- false)
        in
        let wrap op =
          match op with
          | Soc.Marker _ -> op
          | _ ->
              (* [Guarded] rather than an opaque [Marker]: the parallel
                 driver can still see the underlying op to classify it as
                 core-private or shared. *)
              Soc.Guarded
                { op; run = (fun core -> guarded_exec soc g core op) }
        in
        (layer_open :: begin_marker :: List.map wrap ops) @ [ finish_marker ]
  in
  (* Lowering is forced lazily between dispatches (Seq consumption), so
     it sits outside the soc.dispatch probe and needs its own. *)
  let emit_layer idx =
    if !P.on then begin
      P.enter P.lowering;
      let ops = emit_layer_quiet idx in
      P.leave P.lowering;
      ops
    end
    else emit_layer_quiet idx
  in
  let n = Array.length layers in
  let net_name = model.Layer.model_name in
  let body =
    Seq.concat_map
      (fun idx -> List.to_seq (emit_layer idx))
      (Seq.init (max 0 (n - start_layer)) (fun i -> start_layer + i))
  in
  (* The whole program sits under one network-level span. A resumed run
     does not re-open it: the open event is already in the restored trace
     ring, so re-emitting would double it and break byte-identity. *)
  let head =
    if start_layer = 0 then
      Seq.return
        (span_open_marker ~cat:"network" ~name:net_name
           Gemmini.Controller.finish_time)
    else Seq.empty
  in
  let head =
    if rebase then
      Seq.cons
        (Soc.Marker
           (fun core ->
             last_finish :=
               Gemmini.Controller.finish_time (Soc.controller core)))
        head
    else head
  in
  Seq.append head
    (Seq.append body
       (Seq.return
          (span_close_marker ~name:net_name Gemmini.Controller.finish_time)))

let plan_ops_with ?start_layer ?resume_finish ?on_layer soc core model ~mode
    ~records ~guard =
  (* Tensor allocation always covers the WHOLE network, even when
     execution starts mid-way: the bump allocators are deterministic, so
     a resumed run recomputes the exact addresses of the interrupted one
     and the restored snapshot's mappings line up. *)
  let functional = Option.is_some (Soc.mainmem soc) in
  let tensors = allocate_tensors soc core model ~functional in
  network_ops ?start_layer ?resume_finish ?on_layer soc core model ~mode
    ~records ~guard ~tensors

let plan_ops soc core model ~mode ~records =
  plan_ops_with soc core model ~mode ~records ~guard:None

(* --- serving re-entry --------------------------------------------------------- *)

(* A session pins one model to one core with its tensors allocated exactly
   once; every subsequent request re-executes the network over the same
   virtual addresses (weights resident, activation buffers reused), the
   way a warm inference server never re-loads a model per request. *)
type session = {
  se_soc : Soc.t;
  se_core : Soc.core;
  se_model : Layer.model;
  se_mode : mode;
  se_tensors : tensors;
}

let make_session soc ~core:core_idx model ~mode =
  let core = Soc.core soc core_idx in
  let functional = Option.is_some (Soc.mainmem soc) in
  {
    se_soc = soc;
    se_core = core;
    se_model = model;
    se_mode = mode;
    se_tensors = allocate_tensors soc core model ~functional;
  }

let session_core s = s.se_core
let session_model s = s.se_model

let request_ops session ~records =
  network_ops ~rebase:true session.se_soc session.se_core session.se_model
    ~mode:session.se_mode ~records ~guard:None ~tensors:session.se_tensors

let make_result soc core_id model mode records total ~faults =
  {
    r_model = model.Layer.model_name;
    r_mode = mode_desc mode;
    r_core = core_id;
    r_total_cycles = total;
    r_layers = List.rev records;
    r_profile = Gem_sim.Engine.stats (Soc.engine soc);
    r_faults = List.rev faults;
  }

(* When a trap escapes the fault policy, the op stream is abandoned past
   its layer/network close markers. Emit those closes here so every abort
   path leaves a well-formed span tree (the network span in particular
   always carries an end stamp); a skipping close force-closes any open
   kernel/command spans underneath, which the recorder counts without
   orphaning. *)
let close_spans_on_abort core guard net_name =
  (* An empty g_layer means no guarded op ever ran on this core — the
     network span may not have opened yet, so emitting closes could only
     orphan. Leave whatever is open to Span.finalize. *)
  if guard.g_layer <> "" then begin
    let ctrl = Soc.controller core in
    let engine = Gemmini.Controller.engine ctrl in
    let component = Gemmini.Controller.host_component ctrl in
    let time = Gemmini.Controller.finish_time ctrl in
    Span.emit_close engine ~component ~time guard.g_layer;
    Span.emit_close engine ~component ~time net_name
  end

let run ?(policy = Abort) ?watchdog ?prepare ?(start_layer = 0) ?resume
    ?on_layer soc ~core:core_idx model ~mode =
  let core = Soc.core soc core_idx in
  let prior_records, resume_finish =
    match resume with None -> ([], 0) | Some (rs, f) -> (rs, f)
  in
  (* [records] accumulates most-recent-first; seed it with the salvaged
     prefix so the final result covers the whole network. *)
  let records = ref (List.rev prior_records) in
  let guard = make_guard ~policy ~watchdog in
  let ops =
    plan_ops_with ~start_layer ~resume_finish ?on_layer soc core model ~mode
      ~records ~guard:(Some guard)
  in
  (* Tensors are allocated by now; [prepare] can perturb the address
     space (e.g. unmap pages) or restore a snapshot before the first
     command issues. *)
  (match prepare with Some f -> f core | None -> ());
  let total =
    try Soc.run_program soc core ops
    with Fault.Trap f ->
      close_spans_on_abort core guard model.Layer.model_name;
      raise (Fault.Trap f)
  in
  make_result soc core_idx model mode !records total ~faults:guard.g_faults

let run_parallel ?(policy = Abort) ?watchdog ?(domains = 1) soc jobs =
  let programs =
    Array.mapi
      (fun i (model, mode) ->
        let core = Soc.core soc i in
        let records = ref [] in
        let guard = make_guard ~policy ~watchdog in
        let ops =
          plan_ops_with soc core model ~mode ~records ~guard:(Some guard)
        in
        (records, guard, ops))
      jobs
  in
  let finishes =
    try
      Soc.run_parallel ~domains soc
        (Array.map (fun (_, _, ops) -> ops) programs)
    with Fault.Trap f ->
      (* Close the faulting core's open spans; the other cores' streams
         were cut mid-flight, so close theirs too. *)
      Array.iteri
        (fun i (model, _) ->
          let _, guard, _ = programs.(i) in
          close_spans_on_abort (Soc.core soc i) guard model.Layer.model_name)
        jobs;
      raise (Fault.Trap f)
  in
  Array.mapi
    (fun i (model, mode) ->
      let records, guard, _ = programs.(i) in
      make_result soc i model mode !records finishes.(i)
        ~faults:guard.g_faults)
    jobs

(* --- functional execution and the golden model ------------------------------- *)

let act_fn relu v = if relu then Gemmini.Peripheral.apply_activation Gemmini.Peripheral.Relu v else v

let requantize ~relu v =
  act_fn relu (Gemmini.Peripheral.scale_to Gemmini.Dtype.Int8 ~scale:out_scale v)

let reference_inference model ~input ~seed =
  let layers = Array.of_list model.Layer.layers in
  let outputs = Array.make (Array.length layers) input in
  let current = ref input in
  Array.iteri
    (fun idx (_, layer) ->
      let inp = if idx = 0 then input else !current in
      let out =
        match layer with
        | Layer.Conv spec ->
            let oh, ow = Layer.conv_out_dims spec in
            if spec.Layer.depthwise then begin
              let k2 = spec.Layer.kernel * spec.Layer.kernel in
              let out = Tensor.create [| 1; oh; ow; spec.Layer.in_ch |] in
              for ch = 0 to spec.Layer.in_ch - 1 do
                let chan =
                  Tensor.init [| 1; spec.Layer.in_h; spec.Layer.in_w; 1 |]
                    (fun i -> Tensor.get4 inp 0 i.(1) i.(2) ch)
                in
                let patch =
                  Gemmini.Peripheral.im2col ~input:chan ~kernel:spec.Layer.kernel
                    ~stride:spec.Layer.stride ~padding:spec.Layer.padding
                in
                let w = gen_weight_matrix ~seed ~idx:((idx * 131) + ch) ~rows:k2 ~cols:1 in
                let bias = gen_bias ~seed ~idx ~n:spec.Layer.in_ch in
                let prod = Matrix.mul_sat32 patch w in
                for px = 0 to (oh * ow) - 1 do
                  let v = Fixed.sat32 (Matrix.get prod px 0 + bias.(ch)) in
                  Tensor.set4 out 0 (px / ow) (px mod ow) ch
                    (requantize ~relu:spec.Layer.relu v)
                done
              done;
              out
            end
            else begin
              let patch =
                Gemmini.Peripheral.im2col ~input:inp ~kernel:spec.Layer.kernel
                  ~stride:spec.Layer.stride ~padding:spec.Layer.padding
              in
              let k = spec.Layer.kernel * spec.Layer.kernel * spec.Layer.in_ch in
              let w = gen_weight_matrix ~seed ~idx:(idx * 131) ~rows:k ~cols:spec.Layer.out_ch in
              let bias = gen_bias ~seed ~idx ~n:spec.Layer.out_ch in
              let prod = Matrix.mul_sat32 patch w in
              Tensor.init [| 1; oh; ow; spec.Layer.out_ch |] (fun i ->
                  let px = (i.(1) * ow) + i.(2) in
                  let v = Fixed.sat32 (Matrix.get prod px i.(3) + bias.(i.(3))) in
                  requantize ~relu:spec.Layer.relu v)
            end
        | Layer.Matmul mm ->
            if mm.Layer.count <> 1 then
              invalid_arg "Runtime.reference_inference: batched matmul unsupported";
            let a =
              Matrix.init ~rows:mm.Layer.m ~cols:mm.Layer.k (fun r c ->
                  (Tensor.data inp).((r * mm.Layer.k) + c))
            in
            let w = gen_weight_matrix ~seed ~idx:(idx * 131) ~rows:mm.Layer.k ~cols:mm.Layer.n in
            let bias = gen_bias ~seed ~idx ~n:mm.Layer.n in
            let prod = Matrix.mul_sat32 a w in
            Tensor.init [| mm.Layer.m; mm.Layer.n |] (fun i ->
                let v = Fixed.sat32 (Matrix.get prod i.(0) i.(1) + bias.(i.(1))) in
                requantize ~relu:mm.Layer.relu v)
        | Layer.Residual_add { back1; back2; _ } ->
            let operand back = if idx - back < 0 then input else outputs.(idx - back) in
            let x = operand back1 and y = operand back2 in
            let xd = Tensor.data x and yd = Tensor.data y in
            let t = Tensor.create (Tensor.shape x) in
            let td = Tensor.data t in
            for i = 0 to Array.length td - 1 do
              td.(i) <- Fixed.sat8 (xd.(i) + yd.(i))
            done;
            t
        | Layer.Max_pool p ->
            Gemmini.Peripheral.max_pool ~window:p.Layer.window ~stride:p.Layer.p_stride
              ~padding:p.Layer.p_padding inp
        | Layer.Global_avg_pool _ -> Gemmini.Peripheral.avg_pool_global inp
        | Layer.Elementwise _ -> inp
      in
      outputs.(idx) <- out;
      current := out)
    layers;
  !current

let run_functional soc ~core:core_idx model ~input ~seed =
  if Option.is_none (Soc.mainmem soc) then
    invalid_arg "Runtime.run_functional: SoC is not functional";
  let core = Soc.core soc core_idx in
  let records = ref [] in
  (* Allocation happens inside plan_ops; stage input and weights before
     executing. The tensors record is recomputed identically because the
     bump allocator is deterministic — so instead we plan first, then pull
     the input VA from the plan via a prelude marker. *)
  let mode = Accel { im2col_on_accel = false } in
  let tensors_ref = ref None in
  let ops =
    (* Re-implement plan_ops with access to tensors: allocate here, then
       reuse the internal emission path. *)
    let functional = true in
    let tensors = allocate_tensors soc core model ~functional in
    tensors_ref := Some tensors;
    let layers = Array.of_list model.Layer.layers in
    let last_finish = ref 0 in
    let emit_layer idx =
      let name, layer = layers.(idx) in
      let input_va = if idx = 0 then tensors.t_input else tensors.t_out.(idx - 1) in
      let ops = layer_ops soc core tensors ~mode ~functional ~idx ~input_va layer in
      let finish_marker =
        Soc.Marker
          (fun core ->
            let f = Gemmini.Controller.finish_time (Soc.controller core) in
            records :=
              {
                lr_name = name;
                lr_class = Layer.class_of layer;
                lr_cycles = f - !last_finish;
                lr_macs = Layer.macs layer;
              }
              :: !records;
            last_finish := f)
      in
      ops @ [ Kernels.fence; finish_marker ]
    in
    Seq.concat_map
      (fun idx -> List.to_seq (emit_layer idx))
      (Seq.init (Array.length layers) (fun i -> i))
  in
  let tensors = Option.get !tensors_ref in
  write_weights soc core tensors ~seed model;
  write_tensor soc core ~vaddr:tensors.t_input input;
  ignore (Soc.run_program soc core ops);
  (* Read back the final output with the golden model's shape. *)
  let reference_shape =
    Tensor.shape (reference_inference model ~input ~seed)
  in
  let n = List.length model.Layer.layers in
  read_tensor soc core ~vaddr:(tensors.t_out.(n - 1)) ~shape:reference_shape
