open Gem_util

type t = { ti : int; tk : int; tj : int }

let manual ~ti ~tk ~tj =
  if ti <= 0 || tk <= 0 || tj <= 0 then invalid_arg "Tiling.manual: non-positive tile";
  { ti; tk; tj }

let fits p t =
  let dim = Gemmini.Params.dim p in
  (* A tile: ti*tk DIM-blocks, one block = DIM scratchpad rows; B tile:
     tk*tj blocks. Both double-buffered. C tile: ti*tj blocks in the
     accumulator. *)
  let sp_rows_needed = 2 * ((t.ti * t.tk) + (t.tk * t.tj)) * dim in
  let acc_rows_needed = t.ti * t.tj * dim in
  sp_rows_needed <= Gemmini.Params.sp_rows p
  && acc_rows_needed <= Gemmini.Params.acc_rows p

let blocks p ~m ~k ~n =
  let dim = Gemmini.Params.dim p in
  (Mathx.ceil_div m dim, Mathx.ceil_div k dim, Mathx.ceil_div n dim)

let choose p ~m ~k ~n =
  let bi, bk, bj = blocks p ~m ~k ~n in
  (* Round-robin growth, like gemmini's tiled_matmul_auto: repeatedly try
     to bump each tile dimension (capped at the problem extent) and keep
     the bump if the tiles still fit. *)
  let t = ref { ti = 1; tk = 1; tj = 1 } in
  let continue = ref true in
  while !continue do
    continue := false;
    let try_bump f cap current =
      let candidate = f !t in
      if current < cap && fits p candidate then begin
        t := candidate;
        continue := true
      end
    in
    try_bump (fun t -> { t with ti = t.ti + 1 }) bi !t.ti;
    try_bump (fun t -> { t with tj = t.tj + 1 }) bj !t.tj;
    try_bump (fun t -> { t with tk = t.tk + 1 }) bk !t.tk
  done;
  !t

let dram_traffic_bytes p t ~m ~k ~n =
  let bi, bk, bj = blocks p ~m ~k ~n in
  let sweeps_a = Mathx.ceil_div bj t.tj in
  let sweeps_b = Mathx.ceil_div bi t.ti in
  ignore bk;
  (m * k * sweeps_a) + (k * n * sweeps_b) + (m * n)

let describe t = Printf.sprintf "ti=%d tk=%d tj=%d (DIM-blocks)" t.ti t.tk t.tj
