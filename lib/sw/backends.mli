(** Registry of execution backends. *)

val all : (module Backend.S) list
(** Every registered backend, in {!Backend.all_kinds} order. *)

val of_kind : Backend.kind -> (module Backend.S)
val names : string list

val run : Backend.kind -> Backend.request -> Runtime.result array
(** Dispatch a request to the backend of the given kind. *)
