(** Backend-agnostic lowering decisions.

    Everything both execution backends must agree on lives here: the
    execution mode, per-layer software-fallback costs, im2col placement,
    and the abstract per-layer kernel shapes (matmul dimensions,
    {!Schedule.t}, operand strides). {!Runtime} turns these decisions
    into the cycle-accurate command stream; {!Backend_analytic} prices
    the same decisions in closed form. A conformance test asserts the
    emitted command stream matches the shapes predicted here. *)

type mode =
  | Accel of { im2col_on_accel : bool }
  | Cpu_only  (** the Fig. 7 baseline: every layer in software *)

val mode_desc : mode -> string

val cpu_layer_cycles : Gem_cpu.Cpu_model.kind -> Gem_dnn.Layer.t -> int
(** Software cost of one layer on the host (Fig. 7 baselines, the
    Degrade-policy fallback charge). *)

val cpu_only_cycles :
  Gem_cpu.Cpu_model.kind -> Gem_dnn.Layer.model -> Gem_sim.Time.cycles
(** Whole-model software baseline. *)

val swapped_matmul : Gem_dnn.Layer.t -> bool
(** Batch-1 GEMMs run transposed (C^T = W^T . x) so the weight operand
    streams page-sequentially. *)

type im2col_choice =
  | Im_cpu  (** host materializes the patch matrix *)
  | Im_accel  (** the hardware im2col block expands on the fly *)
  | Im_pre  (** patch matrix pre-expanded in DRAM (functional mode) *)

val resolve_im2col :
  Gemmini.Params.t -> mode:mode -> functional:bool -> im2col_choice

(** Abstract shape of one tiled matmul invocation. *)
type matmul_shape = {
  ms_m : int;
  ms_k : int;
  ms_n : int;
  ms_schedule : Schedule.t;
  ms_bias : [ `Broadcast | `Column | `None ];
  ms_a_stride : int;  (** A row stride in DRAM, bytes *)
  ms_b_stride : int;
  ms_c_stride : int;
  ms_a_condense : float;  (** on-the-fly im2col fetch-footprint ratio *)
}

type host_work = { hw_cycles : int; hw_tag : string }

type kernel =
  | K_host of host_work
  | K_matmul of { prep : host_work option; insts : (matmul_shape * int) list }
      (** each shape runs [count] times (batched GEMM instances,
          depthwise per-channel matmuls) *)
  | K_resadd of { elems : int }
  | K_maxpool of { spec : Gem_dnn.Layer.pool_spec }

type layer_plan = {
  lp_name : string;
  lp_class : Gem_dnn.Layer.klass;
  lp_macs : int;
  lp_span : string option;
      (** kernel span name; [None] for un-spanned CPU-only layers *)
  lp_kernel : kernel;
  lp_cpu_cycles : int;
}

val plan :
  Gemmini.Params.t ->
  cpu:Gem_cpu.Cpu_model.kind ->
  mode:mode ->
  Gem_dnn.Layer.model ->
  layer_plan list
(** One plan entry per model layer, in execution order. Timing-mode
    semantics (functional runs always pre-expand patches and are planned
    by {!Runtime} directly). *)
