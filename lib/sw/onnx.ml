open Gem_dnn

type op =
  | Conv of { stride : int; padding : int; group : int }
  | Gemm
  | Relu
  | Add
  | Max_pool of { kernel : int; stride : int; padding : int }
  | Global_average_pool
  | Flatten
  | Softmax

type node = { n_name : string; op : op; inputs : string list; output : string }

type tensor_info = { t_name : string; dims : int array }

type graph = {
  g_name : string;
  g_input : tensor_info;
  initializers : tensor_info list;
  nodes : node list;
  g_output : string;
}

(* --- validation ------------------------------------------------------------ *)

let validate g =
  let defined = Hashtbl.create 16 in
  Hashtbl.replace defined g.g_input.t_name ();
  List.iter (fun t -> Hashtbl.replace defined t.t_name ()) g.initializers;
  let rec go = function
    | [] ->
        if Hashtbl.mem defined g.g_output then Ok ()
        else Error (Printf.sprintf "graph output %S is never produced" g.g_output)
    | n :: rest -> (
        match List.find_opt (fun i -> not (Hashtbl.mem defined i)) n.inputs with
        | Some missing ->
            Error
              (Printf.sprintf "node %S reads undefined tensor %S" n.n_name missing)
        | None ->
            if Hashtbl.mem defined n.output then
              Error (Printf.sprintf "tensor %S assigned twice" n.output)
            else begin
              Hashtbl.replace defined n.output ();
              go rest
            end)
  in
  go g.nodes

(* --- shape inference --------------------------------------------------------- *)

let conv_out ~in_dim ~kernel ~stride ~padding =
  ((in_dim + (2 * padding) - kernel) / stride) + 1

let infer_shapes g =
  (match validate g with Ok () -> () | Error e -> invalid_arg ("Onnx: " ^ e));
  let shapes = Hashtbl.create 16 in
  Hashtbl.replace shapes g.g_input.t_name g.g_input.dims;
  List.iter (fun t -> Hashtbl.replace shapes t.t_name t.dims) g.initializers;
  let shape_of name = Hashtbl.find shapes name in
  let out_shapes =
    List.map
      (fun n ->
        let out =
          match (n.op, n.inputs) with
          | Conv { stride; padding; group }, [ x; w ] ->
              let xs = shape_of x and ws = shape_of w in
              if Array.length xs <> 4 || Array.length ws <> 4 then
                invalid_arg (Printf.sprintf "Onnx: %s: Conv wants rank-4 tensors" n.n_name);
              let kh = ws.(0) and cin = ws.(2) and cout = ws.(3) in
              let expected_cin = if group > 1 then 1 else xs.(3) in
              if cin <> expected_cin then
                invalid_arg
                  (Printf.sprintf "Onnx: %s: weight channels %d, input %d (group %d)"
                     n.n_name cin xs.(3) group);
              if group > 1 && group <> xs.(3) then
                invalid_arg (Printf.sprintf "Onnx: %s: only depthwise grouping" n.n_name);
              [|
                xs.(0);
                conv_out ~in_dim:xs.(1) ~kernel:kh ~stride ~padding;
                conv_out ~in_dim:xs.(2) ~kernel:kh ~stride ~padding;
                cout;
              |]
          | Gemm, [ x; w ] ->
              let xs = shape_of x and ws = shape_of w in
              let k = xs.(Array.length xs - 1) in
              if Array.length ws <> 2 || ws.(0) <> k then
                invalid_arg (Printf.sprintf "Onnx: %s: Gemm dims mismatch" n.n_name);
              let m = Array.fold_left ( * ) 1 xs / k in
              [| m; ws.(1) |]
          | (Relu | Softmax), [ x ] -> shape_of x
          | Add, [ a; b ] ->
              let sa = shape_of a and sb = shape_of b in
              if sa <> sb then
                invalid_arg (Printf.sprintf "Onnx: %s: Add shape mismatch" n.n_name);
              sa
          | Max_pool { kernel; stride; padding }, [ x ] ->
              let xs = shape_of x in
              [|
                xs.(0);
                conv_out ~in_dim:xs.(1) ~kernel ~stride ~padding;
                conv_out ~in_dim:xs.(2) ~kernel ~stride ~padding;
                xs.(3);
              |]
          | Global_average_pool, [ x ] ->
              let xs = shape_of x in
              [| xs.(0); 1; 1; xs.(3) |]
          | Flatten, [ x ] ->
              let xs = shape_of x in
              [| xs.(0); Array.fold_left ( * ) 1 xs / xs.(0) |]
          | _ ->
              invalid_arg
                (Printf.sprintf "Onnx: %s: wrong number of inputs" n.n_name)
        in
        Hashtbl.replace shapes n.output out;
        (n.n_name, out))
      g.nodes
  in
  out_shapes

(* --- lowering ----------------------------------------------------------------- *)

(* Relu nodes fuse into the producing Conv/Gemm; Flatten disappears. Each
   remaining node becomes one Layer.t. Add operands are mapped to layer
   back-references by position among emitted layers. *)
let lower g =
  ignore (infer_shapes g);
  let shapes = Hashtbl.create 16 in
  Hashtbl.replace shapes g.g_input.t_name g.g_input.dims;
  List.iter (fun t -> Hashtbl.replace shapes t.t_name t.dims) g.initializers;
  List.iter2
    (fun n (_, s) -> Hashtbl.replace shapes n.output s)
    g.nodes (infer_shapes g);
  let shape_of name = Hashtbl.find shapes name in
  (* producer: tensor name -> index of the layer that produces it (after
     fusion), or None for the graph input. *)
  let producer = Hashtbl.create 16 in
  let layers = ref [] in
  let n_layers = ref 0 in
  let emit name layer source_tensor =
    layers := (name, layer) :: !layers;
    Hashtbl.replace producer source_tensor !n_layers;
    incr n_layers
  in
  let alias out inp =
    (* out is produced wherever inp was (fused/erased node) *)
    match Hashtbl.find_opt producer inp with
    | Some i -> Hashtbl.replace producer out i
    | None -> ()
  in
  (* A Relu that immediately follows a Conv/Gemm consuming its unique
     output fuses into it: pre-scan consumers. *)
  let relu_after = Hashtbl.create 8 in
  let rec scan = function
    | a :: (b :: _ as rest) ->
        (match (a.op, b.op) with
        | (Conv _ | Gemm), Relu when b.inputs = [ a.output ] ->
            Hashtbl.replace relu_after a.n_name b.n_name
        | _ -> ());
        scan rest
    | _ -> []
  in
  ignore (scan g.nodes);
  let fused_relu n = Hashtbl.mem relu_after n.n_name in
  let is_fused_relu_node n =
    n.op = Relu
    && Hashtbl.fold (fun _ v acc -> acc || v = n.n_name) relu_after false
  in
  List.iter
    (fun n ->
      match n.op with
      | Conv { stride; padding; group } ->
          let x = List.nth n.inputs 0 and w = List.nth n.inputs 1 in
          let xs = shape_of x and ws = shape_of w in
          let spec =
            {
              Layer.in_h = xs.(1);
              in_w = xs.(2);
              in_ch = xs.(3);
              out_ch = ws.(3);
              kernel = ws.(0);
              stride;
              padding;
              relu = fused_relu n;
              depthwise = group > 1;
            }
          in
          emit n.n_name (Layer.Conv spec) n.output
      | Gemm ->
          let x = List.nth n.inputs 0 and w = List.nth n.inputs 1 in
          let xs = shape_of x and ws = shape_of w in
          let k = ws.(0) and out = ws.(1) in
          let m = Array.fold_left ( * ) 1 xs / k in
          emit n.n_name
            (Layer.Matmul { m; k; n = out; relu = fused_relu n; count = 1 })
            n.output
      | Relu ->
          if is_fused_relu_node n then alias n.output (List.hd n.inputs)
          else begin
            let xs = shape_of (List.hd n.inputs) in
            emit n.n_name
              (Layer.Elementwise
                 { e_elems = Array.fold_left ( * ) 1 xs; e_name = "relu" })
              n.output
          end
      | Add ->
          let a = List.nth n.inputs 0 and b = List.nth n.inputs 1 in
          let back tensor =
            match Hashtbl.find_opt producer tensor with
            | Some i -> !n_layers - i
            | None ->
                invalid_arg
                  (Printf.sprintf "Onnx: %s adds the graph input directly" n.n_name)
          in
          let xs = shape_of a in
          emit n.n_name
            (Layer.Residual_add
               { r_h = xs.(1); r_w = xs.(2); r_ch = xs.(3); back1 = back a; back2 = back b })
            n.output
      | Max_pool { kernel; stride; padding } ->
          let xs = shape_of (List.hd n.inputs) in
          emit n.n_name
            (Layer.Max_pool
               {
                 p_in_h = xs.(1);
                 p_in_w = xs.(2);
                 p_ch = xs.(3);
                 window = kernel;
                 p_stride = stride;
                 p_padding = padding;
               })
            n.output
      | Global_average_pool ->
          let xs = shape_of (List.hd n.inputs) in
          emit n.n_name
            (Layer.Global_avg_pool { g_h = xs.(1); g_w = xs.(2); g_ch = xs.(3) })
            n.output
      | Flatten -> alias n.output (List.hd n.inputs)
      | Softmax ->
          let xs = shape_of (List.hd n.inputs) in
          emit n.n_name
            (Layer.Elementwise
               { e_elems = Array.fold_left ( * ) 1 xs; e_name = "softmax" })
            n.output)
    g.nodes;
  {
    Layer.model_name = g.g_name;
    input_desc =
      String.concat "x" (Array.to_list (Array.map string_of_int g.g_input.dims));
    layers = List.rev !layers;
  }

(* --- textual format ------------------------------------------------------------ *)

type sexp = Atom of string | List of sexp list

let rec sexp_to_buf buf = function
  | Atom s -> Buffer.add_string buf s
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          sexp_to_buf buf item)
        items;
      Buffer.add_char buf ')'

let dims_sexp dims =
  List (Array.to_list (Array.map (fun d -> Atom (string_of_int d)) dims))

let op_sexp = function
  | Conv { stride; padding; group } ->
      [ Atom "Conv"; Atom (string_of_int stride); Atom (string_of_int padding); Atom (string_of_int group) ]
  | Gemm -> [ Atom "Gemm" ]
  | Relu -> [ Atom "Relu" ]
  | Add -> [ Atom "Add" ]
  | Max_pool { kernel; stride; padding } ->
      [ Atom "MaxPool"; Atom (string_of_int kernel); Atom (string_of_int stride); Atom (string_of_int padding) ]
  | Global_average_pool -> [ Atom "GlobalAveragePool" ]
  | Flatten -> [ Atom "Flatten" ]
  | Softmax -> [ Atom "Softmax" ]

let to_string g =
  let node_sexp n =
    List
      ([ Atom "node"; Atom n.n_name ]
      @ op_sexp n.op
      @ [ List (List.map (fun i -> Atom i) n.inputs); Atom n.output ])
  in
  let buf = Buffer.create 512 in
  sexp_to_buf buf
    (List
       ([
          Atom "graph";
          Atom g.g_name;
          List [ Atom "input"; Atom g.g_input.t_name; dims_sexp g.g_input.dims ];
        ]
       @ List.map
           (fun t -> List [ Atom "init"; Atom t.t_name; dims_sexp t.dims ])
           g.initializers
       @ List.map node_sexp g.nodes
       @ [ List [ Atom "output"; Atom g.g_output ] ]));
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* tokenizer + reader *)
let tokenize s =
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := `Atom (Buffer.contents buf) :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '(' ->
          flush ();
          tokens := `L :: !tokens
      | ')' ->
          flush ();
          tokens := `R :: !tokens
      | ' ' | '\t' | '\n' | '\r' -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !tokens

let read_sexp tokens =
  let rec go tokens =
    match tokens with
    | [] -> Error "unexpected end of input"
    | `Atom a :: rest -> Ok (Atom a, rest)
    | `L :: rest ->
        let rec items acc rest =
          match rest with
          | `R :: rest -> Ok (List (List.rev acc), rest)
          | [] -> Error "unclosed parenthesis"
          | _ -> (
              match go rest with
              | Ok (item, rest) -> items (item :: acc) rest
              | Error _ as e -> e)
        in
        items [] rest
    | `R :: _ -> Error "unexpected )"
  in
  match go tokens with
  | Ok (sexp, []) -> Ok sexp
  | Ok (_, _ :: _) -> Error "trailing tokens"
  | Error _ as e -> e

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_dims = function
  | List atoms ->
      let dims =
        List.map (function Atom a -> int_of_string a | List _ -> failwith "dims") atoms
      in
      Ok (Array.of_list dims)
  | Atom _ -> Error "expected dimension list"

let parse_int a = match int_of_string_opt a with Some i -> Ok i | None -> Error ("bad int " ^ a)

let parse_node items =
  match items with
  | Atom name :: Atom op :: rest -> (
      let finish op rest =
        match rest with
        | [ List inputs; Atom output ] ->
            let inputs =
              List.map (function Atom a -> a | List _ -> "") inputs
            in
            Ok { n_name = name; op; inputs; output }
        | _ -> Error (Printf.sprintf "node %s: malformed inputs/output" name)
      in
      match (op, rest) with
      | "Conv", Atom s :: Atom p :: Atom grp :: rest ->
          let* s = parse_int s in
          let* p = parse_int p in
          let* grp = parse_int grp in
          finish (Conv { stride = s; padding = p; group = grp }) rest
      | "Gemm", rest -> finish Gemm rest
      | "Relu", rest -> finish Relu rest
      | "Add", rest -> finish Add rest
      | "MaxPool", Atom k :: Atom s :: Atom p :: rest ->
          let* k = parse_int k in
          let* s = parse_int s in
          let* p = parse_int p in
          finish (Max_pool { kernel = k; stride = s; padding = p }) rest
      | "GlobalAveragePool", rest -> finish Global_average_pool rest
      | "Flatten", rest -> finish Flatten rest
      | "Softmax", rest -> finish Softmax rest
      | other, _ -> Error (Printf.sprintf "unknown op %S" other))
  | _ -> Error "malformed node"

let parse text =
  let* sexp = read_sexp (tokenize text) in
  match sexp with
  | List (Atom "graph" :: Atom g_name :: rest) ->
      let input = ref None in
      let inits = ref [] in
      let nodes = ref [] in
      let output = ref None in
      let* () =
        List.fold_left
          (fun acc item ->
            let* () = acc in
            match item with
            | List [ Atom "input"; Atom name; dims ] ->
                let* dims = parse_dims dims in
                input := Some { t_name = name; dims };
                Ok ()
            | List [ Atom "init"; Atom name; dims ] ->
                let* dims = parse_dims dims in
                inits := { t_name = name; dims } :: !inits;
                Ok ()
            | List (Atom "node" :: items) ->
                let* node = parse_node items in
                nodes := node :: !nodes;
                Ok ()
            | List [ Atom "output"; Atom name ] ->
                output := Some name;
                Ok ()
            | _ -> Error "unrecognized graph item")
          (Ok ()) rest
      in
      let* g_input =
        match !input with Some i -> Ok i | None -> Error "graph has no input"
      in
      let* g_output =
        match !output with Some o -> Ok o | None -> Error "graph has no output"
      in
      let g =
        {
          g_name;
          g_input;
          initializers = List.rev !inits;
          nodes = List.rev !nodes;
          g_output;
        }
      in
      let* () = validate g in
      Ok g
  | _ -> Error "expected (graph ...)"

(* --- builders --------------------------------------------------------------- *)

let conv_node ~name ~input ~weight ?(stride = 1) ?(padding = 0) ?(group = 1) () =
  {
    n_name = name;
    op = Conv { stride; padding; group };
    inputs = [ input; weight ];
    output = name ^ "_out";
  }

let simple_cnn =
  {
    g_name = "simple-cnn";
    g_input = { t_name = "data"; dims = [| 1; 8; 8; 3 |] };
    initializers =
      [
        { t_name = "w1"; dims = [| 3; 3; 3; 8 |] };
        { t_name = "w2"; dims = [| 3; 3; 8; 8 |] };
        { t_name = "wfc"; dims = [| 8; 10 |] };
      ];
    nodes =
      [
        conv_node ~name:"conv1" ~input:"data" ~weight:"w1" ~padding:1 ();
        { n_name = "relu1"; op = Relu; inputs = [ "conv1_out" ]; output = "act1" };
        conv_node ~name:"conv2" ~input:"act1" ~weight:"w2" ~padding:1 ();
        { n_name = "add"; op = Add; inputs = [ "conv2_out"; "act1" ]; output = "sum" };
        {
          n_name = "pool";
          op = Max_pool { kernel = 2; stride = 2; padding = 0 };
          inputs = [ "sum" ];
          output = "pooled";
        };
        { n_name = "gap"; op = Global_average_pool; inputs = [ "pooled" ]; output = "gapped" };
        { n_name = "flat"; op = Flatten; inputs = [ "gapped" ]; output = "flatted" };
        { n_name = "fc"; op = Gemm; inputs = [ "flatted"; "wfc" ]; output = "logits" };
        { n_name = "prob"; op = Softmax; inputs = [ "logits" ]; output = "probs" };
      ];
    g_output = "probs";
  }
