(** ONNX-style graph front end — the top of Gemmini's multi-level
    programming stack ("a push-button software flow which reads DNN
    descriptions in the ONNX file format", Section III-B).

    The module defines a graph IR with named tensors and operator nodes, a
    textual serialization (an s-expression dialect standing in for ONNX
    protobuf), NHWC shape inference, and a lowering pass onto the
    {!Gem_dnn.Layer} IR that the runtime executes. Residual [Add] nodes
    are resolved to layer back-references during lowering, so cache-reuse
    distances survive the translation. *)

type op =
  | Conv of { stride : int; padding : int; group : int }
      (** [group = in_channels] expresses depthwise convolution *)
  | Gemm
  | Relu
  | Add
  | Max_pool of { kernel : int; stride : int; padding : int }
  | Global_average_pool
  | Flatten
  | Softmax

type node = {
  n_name : string;
  op : op;
  inputs : string list;  (** tensor names: activations then initializers *)
  output : string;
}

type tensor_info = { t_name : string; dims : int array }

type graph = {
  g_name : string;
  g_input : tensor_info;  (** NHWC activation input *)
  initializers : tensor_info list;  (** weights: conv [kh;kw;cin;cout], gemm [k;n] *)
  nodes : node list;  (** topologically ordered *)
  g_output : string;
}

val validate : graph -> (unit, string) result
(** Checks reference integrity (every node input is the graph input, an
    initializer, or an earlier node's output) and single assignment. *)

val infer_shapes : graph -> (string * int array) list
(** Output shape for every node, in node order. Raises [Invalid_argument]
    on malformed graphs (wrong ranks, mismatched channels). *)

val lower : graph -> Gem_dnn.Layer.model
(** Translates to the layer IR: Conv(+Relu) fuse, Gemm becomes a matmul,
    Add becomes a residual-add with correct back-references, Softmax
    becomes host elementwise work. *)

(* Textual format. *)

val to_string : graph -> string
val parse : string -> (graph, string) result
(** [parse (to_string g) = Ok g]. *)

(* Builders for tests/examples. *)

val conv_node :
  name:string -> input:string -> weight:string -> ?stride:int -> ?padding:int ->
  ?group:int -> unit -> node

val simple_cnn : graph
(** A small example graph exercising every operator. *)
