open Gem_dnn
module Cpu = Gem_cpu.Cpu_model

(* Backend-agnostic lowering: everything both execution backends must
   agree on — execution mode, per-layer software-fallback costs, the
   im2col placement decision, and the abstract per-layer kernel shapes
   (matmul dimensions, schedules, operand strides) — lives here. The
   cycle-accurate emitter ([Runtime] / [Kernels]) turns these decisions
   into RoCC commands; the analytic backend prices the same decisions in
   closed form. *)

type mode = Accel of { im2col_on_accel : bool } | Cpu_only

let mode_desc = function
  | Accel { im2col_on_accel = true } -> "accel+im2col"
  | Accel { im2col_on_accel = false } -> "accel(cpu-im2col)"
  | Cpu_only -> "cpu-only"

(* --- software-fallback costs -------------------------------------------------- *)

let cpu_layer_cycles cpu layer =
  let macs = Layer.macs layer in
  match layer with
  | Layer.Conv { depthwise = true; _ } -> Cpu.depthwise_macs_cycles cpu ~macs
  | Layer.Conv _ -> Cpu.conv_macs_cycles cpu ~macs
  | Layer.Matmul _ -> Cpu.matmul_macs_cycles cpu ~macs
  | Layer.Residual_add _ ->
      Cpu.elementwise_cycles cpu ~elems:(Layer.out_bytes layer)
  | Layer.Max_pool p ->
      Cpu.pooling_cycles cpu ~elems:(Layer.out_bytes layer) ~window:p.Layer.window
  | Layer.Global_avg_pool { g_h; g_w; g_ch } ->
      Cpu.elementwise_cycles cpu ~elems:(g_h * g_w * g_ch)
  | Layer.Elementwise { e_elems; _ } -> Cpu.elementwise_cycles cpu ~elems:e_elems

let cpu_only_cycles cpu model =
  Gem_util.Mathx.sum_list
    (List.map (fun (_, l) -> cpu_layer_cycles cpu l) model.Layer.layers)

(* --- shared lowering decisions ------------------------------------------------- *)

(* Batch-1 GEMMs are emitted transposed (C^T = W^T . x) so the big weight
   operand streams through pages sequentially instead of page-strided. *)
let swapped_matmul (l : Layer.t) =
  match l with Layer.Matmul { m = 1; _ } -> true | _ -> false

type im2col_choice = Im_cpu | Im_accel | Im_pre

(* Functional runs must materialize the patch matrix (real data); timing
   runs use the hardware block when the mode asks for it and the instance
   has one, else fall back to a host im2col pass. *)
let resolve_im2col p ~mode ~functional =
  if functional then Im_pre
  else
    match mode with
    | Cpu_only -> Im_cpu
    | Accel { im2col_on_accel } ->
        if im2col_on_accel && p.Gemmini.Params.has_im2col then Im_accel
        else Im_cpu

(* --- abstract kernel shapes ---------------------------------------------------- *)

type matmul_shape = {
  ms_m : int;
  ms_k : int;
  ms_n : int;
  ms_schedule : Schedule.t;
  ms_bias : [ `Broadcast | `Column | `None ];
  ms_a_stride : int;  (** A row stride in DRAM, bytes *)
  ms_b_stride : int;
  ms_c_stride : int;
  ms_a_condense : float;  (** on-the-fly im2col fetch-footprint ratio *)
}

type host_work = { hw_cycles : int; hw_tag : string }

type kernel =
  | K_host of host_work
  | K_matmul of { prep : host_work option; insts : (matmul_shape * int) list }
      (** each shape runs [count] times (batched GEMM instances,
          depthwise per-channel matmuls) *)
  | K_resadd of { elems : int }
  | K_maxpool of { spec : Layer.pool_spec }

type layer_plan = {
  lp_name : string;
  lp_class : Layer.klass;
  lp_macs : int;
  lp_span : string option;
      (** kernel span name; [None] for un-spanned CPU-only layers *)
  lp_kernel : kernel;
  lp_cpu_cycles : int;  (** software cost (Degrade fallback / baseline) *)
}

let matmul_shape p ?(bias = `Broadcast) ?a_stride ?c_stride
    ?(a_condense = 1.0) ~m ~k ~n () =
  {
    ms_m = m;
    ms_k = k;
    ms_n = n;
    ms_schedule = Schedule.choose p ~m ~k ~n;
    ms_bias = bias;
    ms_a_stride = Option.value a_stride ~default:k;
    ms_b_stride = n;
    ms_c_stride = Option.value c_stride ~default:n;
    ms_a_condense = a_condense;
  }

let plan_layer p ~cpu ~mode layer =
  let host cycles tag = K_host { hw_cycles = cycles; hw_tag = tag } in
  match (mode, layer) with
  | Cpu_only, l -> (None, host (cpu_layer_cycles cpu l) "cpu-layer")
  | Accel _, Layer.Elementwise { e_elems; e_name } ->
      (Some e_name, host (Cpu.elementwise_cycles cpu ~elems:e_elems) e_name)
  | Accel _, Layer.Global_avg_pool { g_h; g_w; g_ch } ->
      (Some "gap", host (Cpu.elementwise_cycles cpu ~elems:(g_h * g_w * g_ch)) "gap")
  | Accel _, Layer.Max_pool spec ->
      if p.Gemmini.Params.has_pooling then (Some "maxpool", K_maxpool { spec })
      else
        let out_h =
          ((spec.Layer.p_in_h + (2 * spec.Layer.p_padding) - spec.Layer.window)
           / spec.Layer.p_stride)
          + 1
        in
        let out_w =
          ((spec.Layer.p_in_w + (2 * spec.Layer.p_padding) - spec.Layer.window)
           / spec.Layer.p_stride)
          + 1
        in
        ( Some "maxpool",
          host
            (Cpu.pooling_cycles cpu
               ~elems:(out_h * out_w * spec.Layer.p_ch)
               ~window:spec.Layer.window)
            "maxpool(cpu)" )
  | Accel _, Layer.Residual_add { r_h; r_w; r_ch; _ } ->
      (Some "resadd", K_resadd { elems = r_h * r_w * r_ch })
  | Accel _, Layer.Conv spec ->
      let im2col = resolve_im2col p ~mode ~functional:false in
      let oh, ow = Layer.conv_out_dims spec in
      if spec.Layer.depthwise then begin
        let m = oh * ow and k = spec.Layer.kernel * spec.Layer.kernel in
        let prep =
          match im2col with
          | Im_cpu ->
              Some
                {
                  hw_cycles =
                    Cpu.im2col_cycles cpu ~patch_elems:(m * k * spec.Layer.in_ch);
                  hw_tag = "im2col(cpu,dw)";
                }
          | Im_accel | Im_pre -> None
        in
        let a_condense =
          match im2col with
          | Im_accel ->
              min 1.0
                (float_of_int (spec.Layer.in_h * spec.Layer.in_w)
                /. float_of_int (m * k))
          | Im_cpu | Im_pre -> 1.0
        in
        let shape =
          matmul_shape p ~a_stride:k ~c_stride:spec.Layer.in_ch ~a_condense ~m
            ~k ~n:1 ()
        in
        (Some "conv", K_matmul { prep; insts = [ (shape, spec.Layer.in_ch) ] })
      end
      else begin
        let m = oh * ow
        and k = spec.Layer.kernel * spec.Layer.kernel * spec.Layer.in_ch
        and n = spec.Layer.out_ch in
        let prep =
          match im2col with
          | Im_cpu ->
              Some
                {
                  hw_cycles = Cpu.im2col_cycles cpu ~patch_elems:(m * k);
                  hw_tag = "im2col(cpu)";
                }
          | Im_accel | Im_pre -> None
        in
        let a_condense =
          match im2col with
          | Im_accel ->
              min 1.0
                (float_of_int (spec.Layer.in_h * spec.Layer.in_w * spec.Layer.in_ch)
                /. float_of_int (m * k))
          | Im_cpu | Im_pre -> 1.0
        in
        let shape = matmul_shape p ~a_condense ~m ~k ~n () in
        (Some "conv", K_matmul { prep; insts = [ (shape, 1) ] })
      end
  | Accel _, (Layer.Matmul mm as l) ->
      let shape =
        if swapped_matmul l then
          matmul_shape p ~bias:`Column ~m:mm.Layer.n ~k:mm.Layer.k ~n:1 ()
        else matmul_shape p ~m:mm.Layer.m ~k:mm.Layer.k ~n:mm.Layer.n ()
      in
      (Some "matmul", K_matmul { prep = None; insts = [ (shape, mm.Layer.count) ] })

let plan p ~cpu ~mode model =
  List.map
    (fun (name, layer) ->
      let span, kernel = plan_layer p ~cpu ~mode layer in
      {
        lp_name = name;
        lp_class = Layer.class_of layer;
        lp_macs = Layer.macs layer;
        lp_span = span;
        lp_kernel = kernel;
        lp_cpu_cycles = cpu_layer_cycles cpu layer;
      })
    model.Layer.layers
