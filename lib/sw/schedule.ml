type dataflow = [ `WS | `OS ]

type loop_order = Output_stationary_outer
(* The only nest the kernel emitter produces today: i0 -> j0 -> k0 with the
   C tile resident in the accumulator across the K loop. The variant exists
   so future emitters (and the analytic model) can name other orders. *)

type t = {
  tiling : Tiling.t;
  dataflow : dataflow;
  loop_order : loop_order;
  double_buffer : bool;
}

let dataflow_name = function `WS -> "WS" | `OS -> "OS"

(* Mirrors the controller's reset default: prefer weight-stationary when
   the instance supports it. Every stock preset is [Dataflow.Both], so this
   choice is identical to the historical hard-wired [`WS]. *)
let pick_dataflow p =
  if Gemmini.Dataflow.supports p.Gemmini.Params.dataflow `WS then `WS else `OS

let of_tiling p tiling =
  { tiling; dataflow = pick_dataflow p; loop_order = Output_stationary_outer; double_buffer = true }

let choose p ~m ~k ~n = of_tiling p (Tiling.choose p ~m ~k ~n)
let fits p t = Tiling.fits p t.tiling

let describe t =
  Printf.sprintf "%s %s %s" (Tiling.describe t.tiling)
    (dataflow_name t.dataflow)
    (if t.double_buffer then "double-buffered" else "single-buffered")
