(** The analytic execution backend: a closed-form latency estimator over
    the same lowering ({!Lower.plan} / {!Schedule.t}) the cycle-accurate
    backend executes.

    Per kernel the estimator walks the outer tile grid — never the
    per-row command stream — advancing issue/load/execute/store cursors
    with aggregate occupancies: mesh fill+drain per DIM-block (WS/OS),
    DMA bytes over the bus with compute/DMA overlap bounded by the ROB
    window, shared L2-port / DRAM bandwidth floors scaled by core count,
    and a TLB term (private / shared / walk) classified from tile
    footprints against TLB reach. Cost is O(outer tiles) per kernel:
    microseconds where the event-driven engine takes seconds.

    Estimates are approximate by design; the cross-validation harness
    ({!Gem_dse.Xval}) gates the per-network error against a committed
    budget in CI. *)

include Backend.S

(** {1 Estimator detail}

    Everything [run] computes plus the model-internal tallies the DSE
    layer surfaces in {!Gem_dse.Outcome} (the cycle backend gets these
    from engine observers; the analytic backend estimates them). *)

type detail = {
  d_result : Runtime.result;
  d_tlb_requests : int;  (** estimated TLB lookups (DMA rows) *)
  d_tlb_walks : int;  (** estimated page-table walks *)
  d_tlb_shared : int;  (** estimated shared-TLB hits *)
  d_mesh_busy : int;  (** accumulated mesh occupancy, cycles *)
  d_ld_bytes : int;  (** DMA bytes loaded *)
  d_st_bytes : int;  (** DMA bytes stored *)
}

val estimate : Backend.request -> detail array

val estimate_core :
  Gem_soc.Soc_config.t ->
  core:int ->
  cores:int ->
  Gem_dnn.Layer.model ->
  mode:Lower.mode ->
  policy:Runtime.policy ->
  watchdog:int option ->
  detail
(** Estimate one job. [cores] is the contention factor applied to the
    shared L2-port / DRAM bandwidth floors (number of concurrently
    active jobs, not the SoC's core count). *)

(** {1 Schedule introspection} *)

type mm_counts = {
  mc_configs : int;
  mc_bias_mvins : int;
  mc_a_mvins : int;
  mc_b_mvins : int;
  mc_preloads : int;
  mc_computes : int;
  mc_mvouts : int;
}

val matmul_command_counts : Gemmini.Params.t -> Lower.matmul_shape -> mm_counts
(** Exact per-opcode command counts of one {!Kernels.matmul_ops}
    invocation, derived from the schedule alone. The backend-seam
    conformance test diffs these against the emitted instruction stream,
    proving both backends price the same program. *)

val mm_total : mm_counts -> int
