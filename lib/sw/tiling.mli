(** Loop-tile selection — the paper's "Data Staging and Mapping" heuristic
    (Section III-B): "based on the dimensions of a layer's inputs, and the
    hardware parameters of the accelerator instantiation, Gemmini uses
    heuristics to maximize the amount of data moved into the scratchpad
    per iteration."

    A matmul [M x K x N] is tiled into blocks of [ti x tk x tj]
    DIM-square sub-blocks. The A and B tiles must fit (double-buffered)
    in the scratchpad; the C tile must fit in the accumulator. Larger
    tiles mean less re-streaming of A and B from DRAM/L2 — the mechanism
    behind the Fig. 9 BigSP speedups. *)

type t = {
  ti : int;  (** M-dimension tile, in DIM-blocks *)
  tk : int;  (** K-dimension tile, in DIM-blocks *)
  tj : int;  (** N-dimension tile, in DIM-blocks *)
}

val choose : Gemmini.Params.t -> m:int -> k:int -> n:int -> t
(** The automatic heuristic: grow ti/tj/tk round-robin while the tiles
    fit, never exceeding the problem's own extent. *)

val manual : ti:int -> tk:int -> tj:int -> t
(** "If the programmer wishes, the low-level API also allows them to
    manually set tile-sizes for each kernel." Validated at kernel-emission
    time against the instance's memories. *)

val fits : Gemmini.Params.t -> t -> bool
(** Double-buffered A+B fit the scratchpad and C fits the accumulator. *)

val blocks : Gemmini.Params.t -> m:int -> k:int -> n:int -> int * int * int
(** Problem extents in DIM-blocks (ceiling division). *)

val dram_traffic_bytes : Gemmini.Params.t -> t -> m:int -> k:int -> n:int -> int
(** Predicted bytes moved for the tiled schedule: A is re-read once per
    J-tile sweep, B once per I-tile sweep, C written once (int8 out). The
    kernel emitter's actual traffic matches this model (asserted in
    tests). *)

val describe : t -> string
