(** Self-profiler: where does the {e simulator's own} host time go?

    PR 4 made the simulated machine observable; this module makes the
    simulator observable. Probed regions (controller dispatch, resource
    acquisition, event construction, DMA stepping, lowering, serve
    scheduling, DSE evaluation) attribute wall-clock seconds and
    allocated bytes to named phases, ranked hottest-first — the evidence
    ROADMAP item 3 ("flatten the run hot path") needs.

    Probe sites guard on [!on] before calling {!enter}/{!leave}, so the
    disabled cost is one branch on a bool ref: no allocation, no clock
    read. Enabled or not, the profiler reads only host wall time and GC
    counters — simulated cycle counts are unaffected (gated in bench).

    Exclusive ("self") time follows the standard stack discipline: a
    phase's self time excludes time spent in nested probed phases.
    State is per-Domain ({!Domain.DLS}) and merged at reporting time, so
    DSE worker pools profile safely. *)

val on : bool ref
(** The hot-path guard. Probe sites write
    [if !Profile.on then Profile.enter Profile.dispatch]. Mutate via
    {!enable}/{!disable}. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero all accumulated phases and anomaly counters in every domain's
    state (open frames are dropped). Call between independent runs. *)

(** {2 Canonical phase names} *)

val dispatch : string
(** SoC op dispatch: the per-op execute loop. *)

val acquire : string
(** Engine resource acquisition/occupation (arbitration + counters). *)

val event : string
(** Event ring push + sink fan-out in {e Engine.emit}. *)

val dma : string
(** DMA burst stepping (per-row translate/acquire walk). *)

val lowering : string
(** Runtime network-to-ops lowering. *)

val schedule : string
(** Serving-scheduler decision loop. *)

val dse : string
(** One DSE design-point evaluation. *)

(** {2 Probes} *)

val enter : string -> unit
(** Open a frame for [name]. Callers must guard with [!on]. *)

val leave : string -> unit
(** Close the innermost open frame named [name]. Frames opened inside it
    that were unwound by an exception are force-popped (still
    attributed, counted as forced); a leave with no matching open frame
    counts as an orphan and is otherwise ignored. *)

val record : string -> (unit -> 'a) -> 'a
(** [record name f] runs [f] inside an exception-safe probe when
    enabled, or just runs [f] when disabled. For coarse phases (not the
    per-op hot path, where the closure would allocate). *)

(** {2 Reporting} *)

type phase = {
  ph_name : string;
  ph_calls : int;
  ph_self_s : float;  (** exclusive wall seconds *)
  ph_total_s : float;  (** inclusive wall seconds *)
  ph_alloc_bytes : float;  (** exclusive allocated bytes *)
}

val phases : unit -> phase list
(** Merged across all domains, ranked by self time descending (name
    breaks ties, so the order is stable). *)

val anomalies : unit -> int * int
(** [(orphan_leaves, forced_leaves)] summed across domains. *)

val attributed_s : phase list -> float
(** Sum of self times: wall seconds the profiler can account for. *)

val coverage_pct : total_s:float -> phase list -> float
(** Attributed share of [total_s] (the caller-measured run wall). *)

val to_json : total_s:float -> unit -> Gem_util.Jsonx.t
(** Ranked phase table plus coverage and anomaly counts. Wall times are
    inherently nondeterministic; this output is never byte-gated. *)

val render : total_s:float -> unit -> string
(** The same table as text, for terminals. *)

val write_file : total_s:float -> string -> unit
(** Pretty-printed {!to_json} to [path]. *)
