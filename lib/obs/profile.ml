(* Self-profiler: wall-clock and allocation attribution of the
   simulator's own host-side phases.

   The design constraints, in order:

   1. Disabled cost must be a single [!on] branch at every probe site —
      the quiet-run hot path (~19ns/op) is the asset ROADMAP item 3
      protects, so probes never allocate, never read the clock, and
      never touch a hashtable unless profiling is enabled.
   2. Simulated time must be untouched: the profiler observes only host
      wall time ([Unix.gettimeofday]) and host allocation
      ([Gc.allocated_bytes]), so cycle counts are byte-identical with
      profiling on or off (gated in bench/main.ml).
   3. Domain-safe: DSE executors spawn worker Domains; each domain gets
      its own state via [Domain.DLS], registered under a mutex into a
      global list that [phases]/[reset] merge or clear.

   Exclusive ("self") time uses the classic stack discipline: entering a
   phase closes the parent's current slice; leaving a phase closes its
   own slice and reopens the parent's. A phase's self time is therefore
   the wall time spent in it *excluding* nested probed phases, which is
   exactly the "where would flattening pay off" number. *)

type acc = {
  mutable a_calls : int;
  mutable a_self_s : float;
  mutable a_total_s : float;
  mutable a_self_bytes : float;
}

type frame = {
  fr_name : string;
  fr_acc : acc;
  (* start of the current exclusive slice; reset when a child leaves *)
  mutable fr_slice_t : float;
  mutable fr_slice_b : float;
  (* entry stamp, for inclusive time *)
  fr_t0 : float;
}

type dstate = {
  accs : (string, acc) Hashtbl.t;
  mutable stack : frame list;
  mutable orphans : int;
  mutable forced : int;
}

let on = ref false
let enabled () = !on

(* All per-domain states ever created, so reports can merge across the
   DSE worker pool. Guarded by [lock]; the hot path never takes it —
   only state creation (once per domain) and reporting do. *)
let lock = Mutex.create ()
let states : dstate list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let st =
        { accs = Hashtbl.create 16; stack = []; orphans = 0; forced = 0 }
      in
      Mutex.lock lock;
      states := st :: !states;
      Mutex.unlock lock;
      st)

let state () = Domain.DLS.get key

let acc_for st name =
  match Hashtbl.find_opt st.accs name with
  | Some a -> a
  | None ->
      let a =
        { a_calls = 0; a_self_s = 0.; a_total_s = 0.; a_self_bytes = 0. }
      in
      Hashtbl.add st.accs name a;
      a

let enable () = on := true
let disable () = on := false

let reset () =
  Mutex.lock lock;
  List.iter
    (fun st ->
      Hashtbl.reset st.accs;
      st.stack <- [];
      st.orphans <- 0;
      st.forced <- 0)
    !states;
  Mutex.unlock lock

(* Canonical phase names, so every instrumented layer agrees on the
   vocabulary and reports line up across runs. *)
let dispatch = "soc.dispatch"
let acquire = "engine.acquire"
let event = "engine.event"
let dma = "dma.transfer"
let lowering = "runtime.lowering"
let schedule = "serve.schedule"
let dse = "dse.evaluate"

let close_slice now bytes fr =
  fr.fr_acc.a_self_s <- fr.fr_acc.a_self_s +. (now -. fr.fr_slice_t);
  fr.fr_acc.a_self_bytes <- fr.fr_acc.a_self_bytes +. (bytes -. fr.fr_slice_b)

let enter name =
  let st = state () in
  let now = Unix.gettimeofday () in
  let bytes = Gc.allocated_bytes () in
  (match st.stack with [] -> () | top :: _ -> close_slice now bytes top);
  let fr =
    {
      fr_name = name;
      fr_acc = acc_for st name;
      fr_slice_t = now;
      fr_slice_b = bytes;
      fr_t0 = now;
    }
  in
  st.stack <- fr :: st.stack

let pop_frame now bytes fr =
  close_slice now bytes fr;
  fr.fr_acc.a_calls <- fr.fr_acc.a_calls + 1;
  fr.fr_acc.a_total_s <- fr.fr_acc.a_total_s +. (now -. fr.fr_t0)

(* [leave name] pops the innermost frame with that name. Probed regions
   can be unwound by exceptions (a simulated trap propagating to the
   runtime's recovery policy), so a mismatched top is not fatal: frames
   above the match are force-popped (their elapsed time still
   attributed), and a leave with no matching open frame is counted as an
   orphan and otherwise ignored. *)
let leave name =
  let st = state () in
  if not (List.exists (fun fr -> fr.fr_name = name) st.stack) then
    st.orphans <- st.orphans + 1
  else begin
    let now = Unix.gettimeofday () in
    let bytes = Gc.allocated_bytes () in
    let rec pop = function
      | [] -> []
      | fr :: rest ->
          pop_frame now bytes fr;
          if fr.fr_name = name then rest
          else begin
            st.forced <- st.forced + 1;
            pop rest
          end
    in
    st.stack <- pop st.stack;
    match st.stack with
    | [] -> ()
    | top :: _ ->
        top.fr_slice_t <- now;
        top.fr_slice_b <- bytes
  end

let record name f =
  if not !on then f ()
  else begin
    enter name;
    Fun.protect ~finally:(fun () -> leave name) f
  end

(* --- reporting ---------------------------------------------------------- *)

type phase = {
  ph_name : string;
  ph_calls : int;
  ph_self_s : float;
  ph_total_s : float;
  ph_alloc_bytes : float;
}

let phases () =
  Mutex.lock lock;
  let merged : (string, acc) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun st ->
      Hashtbl.iter
        (fun name a ->
          match Hashtbl.find_opt merged name with
          | None ->
              Hashtbl.add merged name
                {
                  a_calls = a.a_calls;
                  a_self_s = a.a_self_s;
                  a_total_s = a.a_total_s;
                  a_self_bytes = a.a_self_bytes;
                }
          | Some m ->
              m.a_calls <- m.a_calls + a.a_calls;
              m.a_self_s <- m.a_self_s +. a.a_self_s;
              m.a_total_s <- m.a_total_s +. a.a_total_s;
              m.a_self_bytes <- m.a_self_bytes +. a.a_self_bytes)
        st.accs)
    !states;
  Mutex.unlock lock;
  let rows =
    Hashtbl.fold
      (fun name a rows ->
        {
          ph_name = name;
          ph_calls = a.a_calls;
          ph_self_s = a.a_self_s;
          ph_total_s = a.a_total_s;
          ph_alloc_bytes = a.a_self_bytes;
        }
        :: rows)
      merged []
  in
  (* Rank hottest-first; ties break on the name so the table is stable. *)
  List.sort
    (fun a b ->
      match compare b.ph_self_s a.ph_self_s with
      | 0 -> compare a.ph_name b.ph_name
      | c -> c)
    rows

let anomalies () =
  Mutex.lock lock;
  let o, f =
    List.fold_left
      (fun (o, f) st -> (o + st.orphans, f + st.forced))
      (0, 0) !states
  in
  Mutex.unlock lock;
  (o, f)

let attributed_s rows = List.fold_left (fun s p -> s +. p.ph_self_s) 0. rows

let coverage_pct ~total_s rows =
  if total_s <= 0. then 0. else 100. *. attributed_s rows /. total_s

module J = Gem_util.Jsonx

let to_json ~total_s () =
  let rows = phases () in
  let orphans, forced = anomalies () in
  J.Obj
    [
      ("schema", J.Int 1);
      ("total_wall_s", J.Float total_s);
      ("attributed_wall_s", J.Float (attributed_s rows));
      ("coverage_pct", J.Float (coverage_pct ~total_s rows));
      ( "phases",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("phase", J.String p.ph_name);
                   ("calls", J.Int p.ph_calls);
                   ("self_s", J.Float p.ph_self_s);
                   ( "self_pct",
                     J.Float
                       (if total_s <= 0. then 0.
                        else 100. *. p.ph_self_s /. total_s) );
                   ("total_s", J.Float p.ph_total_s);
                   ("alloc_mb", J.Float (p.ph_alloc_bytes /. 1048576.));
                 ])
             rows) );
      ("orphan_leaves", J.Int orphans);
      ("forced_leaves", J.Int forced);
    ]

let render ~total_s () =
  let module Table = Gem_util.Table in
  let rows = phases () in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "Self-profile (%.3fs wall, %.1f%% attributed)"
           total_s (coverage_pct ~total_s rows))
      [ "Phase"; "Calls"; "Self (s)"; "Self %"; "Total (s)"; "Alloc (MB)" ]
  in
  List.iter (fun i -> Table.set_align tbl i Table.Right) [ 1; 2; 3; 4; 5 ];
  List.iter
    (fun p ->
      Table.add_row tbl
        [
          p.ph_name;
          Table.fmt_int p.ph_calls;
          Table.fmt_f ~dec:3 p.ph_self_s;
          Table.fmt_pct
            (if total_s <= 0. then 0. else 100. *. p.ph_self_s /. total_s);
          Table.fmt_f ~dec:3 p.ph_total_s;
          Table.fmt_f ~dec:2 (p.ph_alloc_bytes /. 1048576.);
        ])
    rows;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Table.render tbl);
  let orphans, forced = anomalies () in
  if orphans > 0 || forced > 0 then
    Buffer.add_string buf
      (Printf.sprintf "probe anomalies: %d orphan leave(s), %d forced leave(s)\n"
         orphans forced);
  Buffer.contents buf

let write_file ~total_s path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~pretty:true (to_json ~total_s ()));
      output_char oc '\n')
