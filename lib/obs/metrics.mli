(** A unified metrics registry: one flat, named namespace for the
    counters, gauges, histograms and windowed series the simulator's
    layers expose, snapshotted deterministically to JSON or CSV.

    Registration is cheap and sampling is lazy: pull sources are
    closures over live components, read exactly once when a snapshot is
    taken (after the run), so registering metrics costs the hot path
    nothing. Every consumer (engine, runtime, serve scheduler, DSE
    executor) registers into a registry the CLI creates per run and
    writes via [--metrics-out FILE].

    Snapshots are deterministic: rows sort by metric name, floats print
    with ["%.17g"] (the {!Gem_util.Jsonx} convention), and histograms
    expand into fixed [.count]/[.p50]/[.p95]/[.p99]/[.max] sub-rows. *)

type t

val create : unit -> t

val int : t -> string -> int -> unit
(** A constant sample recorded at registration time. *)

val float : t -> string -> float -> unit

val pull_int : t -> string -> (unit -> int) -> unit
(** A gauge: the closure is called once per snapshot. *)

val pull_float : t -> string -> (unit -> float) -> unit

val counter : t -> string -> Gem_util.Stats.Counter.t
(** Creates, registers and returns a named push counter. *)

val histogram : t -> string -> Gem_util.Stats.Histogram.t -> unit
(** Snapshots as [.count]/[.p50]/[.p95]/[.p99]/[.max] sub-rows. *)

val series : t -> string -> Gem_util.Stats.Series.t -> unit
(** Snapshots as [(window_start, mean)] pairs under a separate
    ["series"] section (or long-format CSV rows). *)

val series_total : t -> string -> Gem_util.Stats.Series.t -> unit
(** Like {!series} but snapshots window {e sums} instead of means —
    occupancy/burn totals rather than per-sample averages. *)

val mem : t -> string -> bool
val size : t -> int

val to_json : t -> Gem_util.Jsonx.t
(** [{ "schema": 1, "scalars": {...}, "series": {...} }], rows sorted by
    name. *)

val to_csv : t -> string
(** Long format: [metric,time,value] — scalars with an empty time
    column, series one row per window. *)

val write_file : t -> string -> unit
(** CSV when [path] ends in [.csv], pretty JSON otherwise.

    Raises [Invalid_argument] on duplicate metric names at registration,
    not here: a collision is a programming error, caught early. *)
