module Stats = Gem_util.Stats
module J = Gem_util.Jsonx

(* A registry is a flat namespace of metric sources sampled once, at
   snapshot time. Pull sources (closures over live components) keep
   registration off the simulation hot path: registering costs one list
   cell, and nothing is read until the run is over. *)

type source =
  | Const_int of int
  | Const_float of float
  | Pull_int of (unit -> int)
  | Pull_float of (unit -> float)
  | Counter of Stats.Counter.t
  | Hist of Stats.Histogram.t
  | Ser of Stats.Series.t
  | Ser_total of Stats.Series.t

type t = {
  mutable items : (string * source) list; (* reversed registration order *)
  names : (string, unit) Hashtbl.t;
}

let create () = { items = []; names = Hashtbl.create 32 }

let register t name src =
  if name = "" then invalid_arg "Metrics.register: empty name";
  if Hashtbl.mem t.names name then
    invalid_arg (Printf.sprintf "Metrics.register: duplicate metric %S" name);
  Hashtbl.replace t.names name ();
  t.items <- (name, src) :: t.items

let int t name v = register t name (Const_int v)
let float t name v = register t name (Const_float v)
let pull_int t name f = register t name (Pull_int f)
let pull_float t name f = register t name (Pull_float f)

let counter t name =
  let c = Stats.Counter.create name in
  register t name (Counter c);
  c

let histogram t name h = register t name (Hist h)
let series t name s = register t name (Ser s)
let series_total t name s = register t name (Ser_total s)
let mem t name = Hashtbl.mem t.names name
let size t = List.length t.items

(* --- snapshot ------------------------------------------------------------ *)

(* Scalars: one row per metric, histograms expanded into
   .count/.p50/.p95/.p99/.max sub-rows. Sorted by name so the snapshot
   is deterministic regardless of registration order. *)

let hist_rows name h =
  let s = Stats.Histogram.summary h in
  [
    (name ^ ".count", J.Int (Stats.Histogram.count h));
    (name ^ ".p50", J.Float s.Stats.Histogram.p50);
    (name ^ ".p95", J.Float s.Stats.Histogram.p95);
    (name ^ ".p99", J.Float s.Stats.Histogram.p99);
    (name ^ ".max", J.Float s.Stats.Histogram.max);
  ]

let scalar_rows t =
  let rows =
    List.concat_map
      (fun (name, src) ->
        match src with
        | Const_int v -> [ (name, J.Int v) ]
        | Const_float v -> [ (name, J.Float v) ]
        | Pull_int f -> [ (name, J.Int (f ())) ]
        | Pull_float f -> [ (name, J.Float (f ())) ]
        | Counter c -> [ (name, J.Int (Stats.Counter.get c)) ]
        | Hist h -> hist_rows name h
        | Ser _ | Ser_total _ -> [])
      (List.rev t.items)
  in
  List.sort (fun (a, _) (b, _) -> compare a b) rows

let series_rows t =
  List.filter_map
    (fun (name, src) ->
      match src with
      | Ser s -> Some (name, Stats.Series.windows s)
      | Ser_total s ->
          Some
            ( name,
              Array.map (fun (t, sum, _) -> (t, sum)) (Stats.Series.window_totals s)
            )
      | _ -> None)
    (List.rev t.items)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json t =
  J.Obj
    [
      ("schema", J.Int 1);
      ("scalars", J.Obj (scalar_rows t));
      ( "series",
        J.Obj
          (List.map
             (fun (name, windows) ->
               ( name,
                 J.List
                   (Array.to_list
                      (Array.map
                         (fun (time, v) -> J.List [ J.Float time; J.Float v ])
                         windows)) ))
             (series_rows t)) );
    ]

(* CSV: a single long-format table. Scalars leave the time column empty;
   series emit one row per window. Floats print with %.17g (exact
   round-trip), matching the Jsonx emitter. *)
let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "metric,time,value\n";
  let value = function
    | J.Int n -> string_of_int n
    | J.Float f -> Printf.sprintf "%.17g" f
    | j -> J.to_string j
  in
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "%s,,%s\n" name (value v)))
    (scalar_rows t);
  List.iter
    (fun (name, windows) ->
      Array.iter
        (fun (time, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%.17g,%.17g\n" name time v))
        windows)
    (series_rows t);
  Buffer.contents buf

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      if Filename.check_suffix path ".csv" then
        output_string oc (to_csv t)
      else begin
        output_string oc (J.to_string ~pretty:true (to_json t));
        output_char oc '\n'
      end)
