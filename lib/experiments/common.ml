(* Shared experiment plumbing. Every figure driver supports a [quick] mode
   (channel-scaled models) so experiment-shaped assertions can run in the
   test suite in seconds; the bench harness runs them at full size. *)

module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime

let resnet_scale ~quick = if quick then 4 else 1

let resnet ~quick =
  if quick then Gem_dnn.Model_zoo.(scale_model ~factor:4 resnet50)
  else Gem_dnn.Model_zoo.resnet50

let accel_mode = Runtime.Accel { im2col_on_accel = true }

let single_core_config ?(tlb = (Soc_config.default_core).Soc_config.tlb)
    ?accel () =
  let accel = Option.value accel ~default:Gemmini.Params.default in
  {
    Soc_config.default with
    cores = [ { Soc_config.default_core with accel; tlb } ];
  }

let single_core_soc ?tlb ?accel () =
  Soc.create (single_core_config ?tlb ?accel ())

let run_single ?tlb ?accel model ~mode =
  let soc = single_core_soc ?tlb ?accel () in
  (soc, Runtime.run soc ~core:0 model ~mode)

let speedup ~baseline ~cycles = float_of_int baseline /. float_of_int cycles

let fps cycles = Gem_sim.Time.fps ~freq_ghz:1.0 ~cycles_per_item:cycles
