(* Fig. 6: area breakdown and layout of the default accelerator (16x16
   array, 256 KB scratchpad, 64 KB accumulator) with its Rocket host.

   Paper: spatial array 11.3%, scratchpad 52.9%, accumulator 14.2%,
   CPU 16.6%; total ~1.03M um^2. *)

open Gem_util

type result = { report : Gemmini.Synthesis.report }

let paper_shares =
  [
    ("spatial array", 11.3);
    ("scratchpad", 52.9);
    ("accumulator", 14.2);
    ("cpu", 16.6);
  ]

let measured_share r prefix =
  100.
  *. Gemmini.Synthesis.component_area r.report prefix
  /. r.report.Gemmini.Synthesis.total_area_um2

let measure () =
  { report = Gemmini.Synthesis.estimate ~host:Gemmini.Synthesis.Rocket Gemmini.Params.default }

let table r =
  let t = Gemmini.Floorplan.breakdown_table r.report in
  Table.add_sep t;
  List.iter
    (fun (prefix, paper) ->
      Table.add_row t
        [
          Printf.sprintf "paper: %s" prefix;
          "";
          Printf.sprintf "%.1f%% (measured %.1f%%)" paper (measured_share r prefix);
        ])
    paper_shares;
  t

let run () =
  let r = measure () in
  Table.print (table r);
  print_newline ();
  print_string (Gemmini.Floorplan.layout_sketch r.report);
  r
