(* Fig. 9 (case study V-B): memory partitioning — given 1 MB of extra SRAM,
   should it enlarge the accelerators' private scratchpads (BigSP) or the
   shared L2 (BigL2)? ResNet50, single-core and dual-core SoCs.

   Paper observations:
   - single-core: BigSP wins (convolutions +10%, matmuls +1%, residual
     additions slightly hurt);
   - dual-core: BigL2 wins overall (+8.0% vs BigSP's +4.2%) because the
     two cores' residual additions (+22% with BigL2) thrash each other's
     layer outputs out of the 1 MB L2; L2 miss rate drops by ~7 points. *)

open Gem_util
module Layer = Gem_dnn.Layer
module Runtime = Gem_sw.Runtime
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config

type config_name = Base | BigSP | BigL2

let config_label = function Base -> "Base" | BigSP -> "BigSP" | BigL2 -> "BigL2"

(* Base: 256 KB scratchpad + 256 KB accumulator per core, 1 MB shared L2.
   BigSP doubles the private memories; BigL2 doubles the L2. *)
let soc_config name ~cores =
  let sp, acc, l2 =
    match name with
    | Base -> (256, 256, 1024)
    | BigSP -> (512, 512, 1024)
    | BigL2 -> (256, 256, 2048)
  in
  let accel =
    {
      Gemmini.Params.default with
      sp_capacity_bytes = sp * 1024;
      acc_capacity_bytes = acc * 1024;
    }
  in
  {
    Soc_config.default with
    cores = List.init cores (fun _ -> { Soc_config.default_core with accel });
    l2_size_bytes = l2 * 1024;
  }

type run = {
  name : config_name;
  cores : int;
  total_cycles : int;
  conv_cycles : int;
  matmul_cycles : int;
  resadd_cycles : int;
  l2_miss_rate : float;
}

type result = { runs : run list }

let measure ?(quick = false) () =
  (* Cores x memory-partitioning as one DSE sweep; the evaluator runs one
     inference per core ([Runtime.run_parallel] on the dual-core SoCs) and
     returns per-class cycles summed over cores. *)
  let combos =
    List.concat_map
      (fun cores -> List.map (fun name -> (cores, name)) [ Base; BigSP; BigL2 ])
      [ 1; 2 ]
  in
  let sweep =
    Gem_dse.Sweep.points
      (List.map
         (fun (cores, name) ->
           Gem_dse.Point.make
             ~label:(Printf.sprintf "%dc/%s" cores (config_label name))
             ~soc:(soc_config name ~cores)
             ~scale:(Common.resnet_scale ~quick) ())
         combos)
  in
  let rr = Gem_dse.Exec.run sweep in
  {
    runs =
      List.map2
        (fun (cores, name) (_, (o : Gem_dse.Outcome.t)) ->
          {
            name;
            cores;
            total_cycles = o.Gem_dse.Outcome.total_cycles;
            conv_cycles = Gem_dse.Outcome.class_cycles_of o Layer.Class_conv;
            matmul_cycles = Gem_dse.Outcome.class_cycles_of o Layer.Class_matmul;
            resadd_cycles = Gem_dse.Outcome.class_cycles_of o Layer.Class_resadd;
            l2_miss_rate = o.Gem_dse.Outcome.l2_miss_rate;
          })
        combos
        (Array.to_list rr.Gem_dse.Exec.results);
  }

let find r ~name ~cores =
  List.find (fun x -> x.name = name && x.cores = cores) r.runs

let table r =
  let t =
    Table.create
      ~title:
        "Fig. 9: memory partitioning (ResNet50; per-class cycles summed over cores; normalized perf vs Base)"
      [ "Cores"; "Config"; "Total cycles"; "Norm perf"; "Conv"; "Matmul"; "Resadd"; "L2 miss" ]
  in
  List.iter (fun i -> Table.set_align t i Table.Right) [ 2; 3; 4; 5; 6; 7 ];
  List.iter
    (fun cores ->
      let base = find r ~name:Base ~cores in
      List.iter
        (fun name ->
          let x = find r ~name ~cores in
          Table.add_row t
            [
              string_of_int cores;
              config_label name;
              Table.fmt_int x.total_cycles;
              Table.fmt_f ~dec:3
                (float_of_int base.total_cycles /. float_of_int x.total_cycles);
              Table.fmt_int x.conv_cycles;
              Table.fmt_int x.matmul_cycles;
              Table.fmt_int x.resadd_cycles;
              Table.fmt_pct (100. *. x.l2_miss_rate);
            ])
        [ Base; BigSP; BigL2 ];
      Table.add_sep t)
    [ 1; 2 ];
  t

let run ?quick () =
  let r = measure ?quick () in
  Table.print (table r);
  let b2 = find r ~name:Base ~cores:2 in
  let sp2 = find r ~name:BigSP ~cores:2 in
  let l22 = find r ~name:BigL2 ~cores:2 in
  Printf.printf
    "dual-core: BigL2 %+.1f%% overall, BigSP %+.1f%% (paper: +8.0%% / +4.2%%); \
     resadd with BigL2 %+.1f%% (paper: +22%%); L2 miss rate %.1f%% -> %.1f%% (paper: -7.1 points)\n"
    (100. *. ((float_of_int b2.total_cycles /. float_of_int l22.total_cycles) -. 1.))
    (100. *. ((float_of_int b2.total_cycles /. float_of_int sp2.total_cycles) -. 1.))
    (100. *. ((float_of_int b2.resadd_cycles /. float_of_int l22.resadd_cycles) -. 1.))
    (100. *. b2.l2_miss_rate)
    (100. *. l22.l2_miss_rate);
  r
