(* Ablations of the design choices DESIGN.md calls out: each row removes or
   resizes one mechanism and reports the end-to-end effect on a ResNet50
   inference (plus a GEMM for the CISC-loop ablation). These are the
   "why is this feature in the architecture" experiments the paper's
   prose argues qualitatively. *)

open Gem_util
module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime
module Kernels = Gem_sw.Kernels
module H = Gem_vm.Hierarchy

type row = { ablation : string; baseline : int; ablated : int }

type result = { rows : row list }

let resnet_cycles ?(quick = false) cfg =
  let soc = Soc.create cfg in
  (Runtime.run soc ~core:0 (Common.resnet ~quick) ~mode:Common.accel_mode)
    .Runtime.r_total_cycles

let with_accel f cfg =
  { cfg with Soc_config.cores = List.map (fun c -> { c with Soc_config.accel = f c.Soc_config.accel }) cfg.Soc_config.cores }

let measure ?(quick = false) () =
  let base_cfg = Soc_config.default in
  let base = resnet_cycles ~quick base_cfg in
  let filter_off =
    resnet_cycles ~quick
      (Soc_config.map_tlb (fun t -> { t with H.filter_registers = false }) base_cfg)
  in
  let rob4 =
    resnet_cycles ~quick
      (with_accel (fun p -> { p with Gemmini.Params.max_in_flight = 4 }) base_cfg)
  in
  let dma_half =
    resnet_cycles ~quick
      (with_accel (fun p -> { p with Gemmini.Params.dma_bus_bytes = 4 }) base_cfg)
  in
  let no_shared_tlb =
    resnet_cycles ~quick
      (Soc_config.map_tlb (fun t -> { t with H.shared_entries = 0 }) base_cfg)
  in
  let no_im2col =
    let soc = Soc.create (with_accel (Gemmini.Params.with_im2col false) base_cfg) in
    (Runtime.run soc ~core:0 (Common.resnet ~quick)
       ~mode:(Runtime.Accel { im2col_on_accel = false }))
      .Runtime.r_total_cycles
  in
  (* CISC loop ablation on a large GEMM with a slow (deeply-shared) host. *)
  let gemm use_loop =
    let soc = Soc.create base_cfg in
    let core = Soc.core soc 0 in
    (* A heavily time-shared host: every RoCC dispatch costs 20 cycles. *)
    Gemmini.Controller.set_issue_cycles (Soc.controller core) 20;
    let m, k, n = ((if quick then 128 else 256), 256, 256) in
    let a = Soc.alloc soc core ~bytes:(m * k) in
    let b = Soc.alloc soc core ~bytes:(k * n) in
    let out = Soc.alloc soc core ~bytes:(m * n) in
    let p = Gemmini.Params.default in
    let ops =
      (if use_loop then Kernels.matmul_loop_ws_ops p ~a ~b ~out ~m ~k ~n ()
       else Kernels.matmul_ops p ~a ~b ~out ~m ~k ~n ())
      @ [ Kernels.fence ]
    in
    Soc.run_program soc core (List.to_seq ops)
  in
  {
    rows =
      [
        { ablation = "no TLB filter registers"; baseline = base; ablated = filter_off };
        { ablation = "ROB depth 16 -> 4"; baseline = base; ablated = rob4 };
        { ablation = "DMA width 8 -> 4 B/cycle"; baseline = base; ablated = dma_half };
        { ablation = "no shared L2 TLB"; baseline = base; ablated = no_shared_tlb };
        { ablation = "no im2col block (CPU im2col)"; baseline = base; ablated = no_im2col };
        { ablation = "discrete stream vs LOOP_WS (GEMM, busy host)"; baseline = gemm true; ablated = gemm false };
      ];
  }

let table r =
  let t =
    Table.create ~title:"Ablations (ResNet50 unless noted; cycles, lower is better)"
      [ "Mechanism removed/shrunk"; "With"; "Without"; "Slowdown" ]
  in
  List.iter (fun i -> Table.set_align t i Table.Right) [ 1; 2; 3 ];
  List.iter
    (fun row ->
      Table.add_row t
        [
          row.ablation;
          Table.fmt_int row.baseline;
          Table.fmt_int row.ablated;
          Table.fmt_x ~dec:2 (float_of_int row.ablated /. float_of_int row.baseline);
        ])
    r.rows;
  t

let run ?quick () =
  let r = measure ?quick () in
  Table.print (table r);
  r
