(* Fig. 7: end-to-end speedup over an in-order CPU baseline for the five
   evaluation DNNs, with im2col performed either by the host CPU or by the
   accelerator's optional im2col block, for Rocket and BOOM hosts.

   Paper reference points: ResNet50 2,670x (22.8 FPS) / BOOM 1,130x;
   AlexNet 79.3 FPS; SqueezeNet 1,760x; MobileNetV2 127x (18.7 FPS);
   BERT 144x; without the im2col block the BOOM host is ~2x faster than
   Rocket across CNNs. *)

open Gem_util
module Cpu = Gem_cpu.Cpu_model
module Runtime = Gem_sw.Runtime
module Soc_config = Gem_soc.Soc_config
module Soc = Gem_soc.Soc

type row = {
  model : string;
  baseline_rocket : int;  (** cycles, software on Rocket *)
  rocket_cpu_im2col : int;
  boom_cpu_im2col : int;
  rocket_accel_im2col : int;
  boom_accel_im2col : int;
}

type result = { rows : row list }

let paper_notes =
  [
    ("resnet50", "2670x / 1130x (BOOM); 22.8 FPS");
    ("alexnet", "79.3 FPS");
    ("squeezenet1.1", "1760x");
    ("mobilenetv2", "127x; 18.7 FPS");
    ("bert-base-seq128", "144x");
  ]

let run_config model cpu ~im2col =
  let soc =
    Soc.create
      { Soc_config.default with cores = [ { Soc_config.default_core with cpu } ] }
  in
  (Runtime.run soc ~core:0 model ~mode:(Runtime.Accel { im2col_on_accel = im2col }))
    .Runtime.r_total_cycles

let measure_model model =
  {
    model = model.Gem_dnn.Layer.model_name;
    baseline_rocket = Runtime.cpu_only_cycles Cpu.Rocket model;
    rocket_cpu_im2col = run_config model Cpu.Rocket ~im2col:false;
    boom_cpu_im2col = run_config model Cpu.Boom ~im2col:false;
    rocket_accel_im2col = run_config model Cpu.Rocket ~im2col:true;
    boom_accel_im2col = run_config model Cpu.Boom ~im2col:true;
  }

let models ~quick =
  let scale m = if quick then Gem_dnn.Model_zoo.scale_model ~factor:4 m else m in
  List.map scale Gem_dnn.Model_zoo.all

let measure ?(quick = false) () = { rows = List.map measure_model (models ~quick) }

let table r =
  let t =
    Table.create
      ~title:
        "Fig. 7: speedup vs in-order Rocket software baseline (im2col on CPU vs on accelerator)"
      [
        "DNN";
        "Rocket host, CPU im2col";
        "BOOM host, CPU im2col";
        "Rocket host, accel im2col";
        "BOOM host, accel im2col";
        "FPS @1GHz";
        "paper";
      ]
  in
  List.iter (fun i -> Table.set_align t i Table.Right) [ 1; 2; 3; 4; 5 ];
  List.iter
    (fun row ->
      let sp c = Common.speedup ~baseline:row.baseline_rocket ~cycles:c in
      Table.add_row t
        [
          row.model;
          Table.fmt_x (sp row.rocket_cpu_im2col);
          Table.fmt_x (sp row.boom_cpu_im2col);
          Table.fmt_x (sp row.rocket_accel_im2col);
          Table.fmt_x (sp row.boom_accel_im2col);
          Table.fmt_f ~dec:1 (Common.fps row.rocket_accel_im2col);
          (match List.assoc_opt row.model paper_notes with
          | Some note -> note
          | None -> "");
        ])
    r.rows;
  t

let boom_host_effect row =
  float_of_int row.rocket_cpu_im2col /. float_of_int row.boom_cpu_im2col

let run ?quick () =
  let r = measure ?quick () in
  Table.print (table r);
  Printf.printf
    "BOOM-vs-Rocket host effect without the im2col block (paper: ~2.0x on CNNs):\n";
  List.iter
    (fun row -> Printf.printf "  %-18s %.2fx\n" row.model (boom_host_effect row))
    r.rows;
  r
