(* Fig. 3 + Section III-A: pipelined (TPU-like) vs combinational
   (NVDLA-like) spatial arrays, both with 256 PEs, plus the intermediate
   tile factorizations only a two-level template can express.

   Paper numbers: the fully-pipelined design achieves 2.7x higher maximum
   frequency, but takes 1.8x the area and 3.0x the power of the
   combinational design. *)

open Gem_util

type point = {
  label : string;
  params : Gemmini.Params.t;
  fmax_ghz : float;
  array_area_um2 : float;
  power_mw : float;
}

type result = {
  points : point list;
  fmax_ratio : float;  (** pipelined / combinational; paper: 2.7 *)
  area_ratio : float;  (** paper: 1.8 *)
  power_ratio : float;  (** paper: 3.0 *)
}

let design_points ~pes =
  let side = int_of_float (sqrt (float_of_int pes)) in
  let rec factorizations tile =
    if tile > side then []
    else if side mod tile = 0 then
      (Printf.sprintf "%dx%d mesh of %dx%d tiles" (side / tile) (side / tile)
         tile tile,
       {
         Gemmini.Params.default with
         mesh_rows = side / tile;
         mesh_cols = side / tile;
         tile_rows = tile;
         tile_cols = tile;
       })
      :: factorizations (tile * 2)
    else factorizations (tile + 1)
  in
  factorizations 1

let measure ?(pes = 256) () =
  let designs = design_points ~pes in
  (* Synthesis-only DSE sweep: no timing simulation, bare accelerator
     (no host CPU in the estimate). *)
  let sweep =
    Gem_dse.Sweep.points
      (List.map
         (fun (label, params) ->
           Gem_dse.Point.with_accel params
             (Gem_dse.Point.make ~label ~simulate:false
                ~synth_host:Gemmini.Synthesis.No_host ()))
         designs)
  in
  let rr = Gem_dse.Exec.run sweep in
  let points =
    List.map2
      (fun (label, params) (_, o) ->
        {
          label;
          params;
          fmax_ghz = o.Gem_dse.Outcome.fmax_ghz;
          array_area_um2 = o.Gem_dse.Outcome.array_area_um2;
          power_mw = o.Gem_dse.Outcome.power_mw;
        })
      designs
      (Array.to_list rr.Gem_dse.Exec.results)
  in
  let first = List.hd points in
  let last = List.nth points (List.length points - 1) in
  {
    points;
    fmax_ratio = first.fmax_ghz /. last.fmax_ghz;
    area_ratio = first.array_area_um2 /. last.array_area_um2;
    power_ratio = first.power_mw /. last.power_mw;
  }

let table r =
  let t =
    Table.create
      ~title:
        "Fig. 3: TPU-like (fully pipelined) vs NVDLA-like (combinational) arrays, 256 PEs"
      [ "Design point"; "fmax (GHz)"; "Array area (um^2)"; "Power (mW)" ]
  in
  List.iter (fun i -> Table.set_align t i Table.Right) [ 1; 2; 3 ];
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.label;
          Table.fmt_f ~dec:2 p.fmax_ghz;
          Table.fmt_int (int_of_float p.array_area_um2);
          Table.fmt_f ~dec:1 p.power_mw;
        ])
    r.points;
  Table.add_sep t;
  Table.add_row t
    [
      "pipelined/combinational";
      Table.fmt_x r.fmax_ratio;
      Table.fmt_x r.area_ratio;
      Table.fmt_x r.power_ratio;
    ];
  Table.add_row t [ "paper"; "2.7x"; "1.8x"; "3.0x" ];
  t

let run () =
  let r = measure () in
  Table.print (table r);
  r
