(* Fig. 4: TLB miss rate over a full ResNet50 inference, profiled on the
   accelerator's private TLB. The paper observes that "the miss rate
   occasionally climbs to 20-30% of recent requests, due to the tiled
   nature of DNN workloads".

   We install a translate observer, bucket requests into time windows, and
   report the per-window miss rate (a walk or shared-TLB fallback counts
   as a private miss, like the paper's profile). The profiled design point
   is the small-TLB edge configuration of Section V-A. *)

open Gem_util
module H = Gem_vm.Hierarchy

type result = {
  windows : (float * float) array;  (** (time, miss rate in [0,1]) per window *)
  overall_miss_rate : float;
  peak_window_miss_rate : float;
  total_requests : int;
}

let measure ?(quick = false) ?(window_cycles = 200_000.) ?(tlb_entries = 4) () =
  let tlb_cfg =
    {
      H.default_config with
      private_entries = tlb_entries;
      shared_entries = 0;
      filter_registers = false;
    }
  in
  (* A one-point DSE sweep with the TLB time-series probe enabled; the
     windowed miss profile comes back in the outcome, so a cached rerun
     reproduces the plot without simulating. *)
  let point =
    Gem_dse.Point.make ~label:"fig4"
      ~soc:(Common.single_core_config ~tlb:tlb_cfg ())
      ~scale:(Common.resnet_scale ~quick)
      ~tlb_window:window_cycles ()
  in
  let rr = Gem_dse.Exec.run (Gem_dse.Sweep.points [ point ]) in
  let _, o = rr.Gem_dse.Exec.results.(0) in
  let windows = o.Gem_dse.Outcome.tlb_windows in
  let misses =
    float_of_int (o.Gem_dse.Outcome.tlb_walks + o.Gem_dse.Outcome.tlb_shared_hits)
  in
  let total = o.Gem_dse.Outcome.tlb_requests in
  let peak =
    Array.fold_left (fun acc (_, rate) -> max acc rate) 0. windows
  in
  {
    windows;
    overall_miss_rate = misses /. float_of_int (max 1 total);
    peak_window_miss_rate = peak;
    total_requests = total;
  }

(* A textual rendering of the time series: one bar per window bucket. *)
let sparkline r ~buckets =
  let n = Array.length r.windows in
  if n = 0 then ""
  else begin
    let buf = Buffer.create 256 in
    let per = Mathx.ceil_div n buckets in
    let i = ref 0 in
    while !i < n do
      let stop = min n (!i + per) in
      let avg = ref 0. in
      for j = !i to stop - 1 do
        avg := !avg +. snd r.windows.(j)
      done;
      let avg = !avg /. float_of_int (stop - !i) in
      let bar = int_of_float (avg *. 40.) in
      Buffer.add_string buf
        (Printf.sprintf "%8.0f %5.1f%% |%s\n"
           (fst r.windows.(!i))
           (100. *. avg)
           (String.make (Mathx.clamp ~lo:0 ~hi:40 bar) '#'));
      i := stop
    done;
    Buffer.contents buf
  end

let run ?quick () =
  let r = measure ?quick () in
  Printf.printf
    "Fig. 4: private TLB miss rate over a ResNet50 inference (4-entry TLB, no filters)\n";
  Printf.printf "  requests: %s, overall miss rate %.1f%%, peak window %.1f%% (paper: spikes to 20-30%%)\n"
    (Table.fmt_int r.total_requests)
    (100. *. r.overall_miss_rate)
    (100. *. r.peak_window_miss_rate);
  print_string (sparkline r ~buckets:40);
  r
