(* Table I: feature comparison of DNN accelerator generators. A data-driven
   rendering of the paper's qualitative table; Gemmini's row is derived
   from the capabilities this repository actually implements. *)

open Gem_util

type generator = {
  g_name : string;
  datatypes : string;
  dataflows : string;
  spatial_array : string;
  direct_conv : bool;
  software : string;
  virtual_memory : bool;
  full_soc : bool;
  os_support : bool;
}

let generators =
  [
    {
      g_name = "NVDLA";
      datatypes = "Int/Float";
      dataflows = "fixed";
      spatial_array = "vector";
      direct_conv = true;
      software = "Compiler";
      virtual_memory = false;
      full_soc = false;
      os_support = true;
    };
    {
      g_name = "VTA";
      datatypes = "Int";
      dataflows = "fixed";
      spatial_array = "vector";
      direct_conv = false;
      software = "TVM";
      virtual_memory = false;
      full_soc = false;
      os_support = true;
    };
    {
      g_name = "PolySA";
      datatypes = "Int";
      dataflows = "fixed";
      spatial_array = "systolic";
      direct_conv = false;
      software = "SDAccel";
      virtual_memory = false;
      full_soc = false;
      os_support = false;
    };
    {
      g_name = "DNNBuilder";
      datatypes = "Int";
      dataflows = "fixed";
      spatial_array = "systolic";
      direct_conv = true;
      software = "Caffe";
      virtual_memory = false;
      full_soc = false;
      os_support = false;
    };
    {
      g_name = "MAGNet";
      datatypes = "Int";
      dataflows = "flexible";
      spatial_array = "vector";
      direct_conv = true;
      software = "C";
      virtual_memory = false;
      full_soc = false;
      os_support = false;
    };
    {
      g_name = "DNNWeaver";
      datatypes = "Int";
      dataflows = "fixed";
      spatial_array = "vector";
      direct_conv = false;
      software = "Caffe";
      virtual_memory = false;
      full_soc = false;
      os_support = false;
    };
    {
      g_name = "MAERI";
      datatypes = "Int";
      dataflows = "flexible";
      spatial_array = "vector";
      direct_conv = true;
      software = "Custom";
      virtual_memory = false;
      full_soc = false;
      os_support = false;
    };
  ]

(* Gemmini's row is computed from the implementation, not hard-coded: the
   claims of Table I must hold for this codebase. *)
let gemmini_row () =
  let p = Gemmini.Params.default in
  let dataflows =
    match p.Gemmini.Params.dataflow with
    | Gemmini.Dataflow.Both -> "flexible (WS+OS)"
    | df -> Gemmini.Dataflow.to_string df
  in
  {
    g_name = "Gemmini";
    datatypes = "Int/Float";
    dataflows;
    spatial_array = "vector/systolic";
    direct_conv = p.Gemmini.Params.has_im2col;
    software = "ONNX/C";
    virtual_memory = true;
    full_soc = true;
    os_support = true;
  }

let check = function true -> "yes" | false -> "-"

let table () =
  let t =
    Table.create ~title:"Table I: comparison of DNN accelerator generators"
      [
        "Generator";
        "Datatypes";
        "Dataflows";
        "Spatial array";
        "Direct conv";
        "Software";
        "Virtual memory";
        "Full SoC";
        "OS support";
      ]
  in
  List.iter
    (fun g ->
      Table.add_row t
        [
          g.g_name;
          g.datatypes;
          g.dataflows;
          g.spatial_array;
          check g.direct_conv;
          g.software;
          check g.virtual_memory;
          check g.full_soc;
          check g.os_support;
        ])
    (generators @ [ gemmini_row () ]);
  t

let run () = Table.print (table ())
