(* Fig. 8 (case study V-A): ResNet50 performance across private and shared
   TLB sizes, without (8a) and with (8b) the read/write filter registers.

   Paper observations reproduced here:
   - the private TLB matters far more than the much larger shared L2 TLB
     (4 -> 16 private entries buys up to 11%; 512 shared entries never
     buys more than 8%);
   - consecutive same-page fractions are high (87% reads / 83% writes);
   - with filter registers, a 4-entry private TLB with NO shared TLB gets
     within a few percent of the best configuration, with an effective
     hit rate around 90%. *)

open Gem_util
module H = Gem_vm.Hierarchy

type point = {
  private_entries : int;
  shared_entries : int;
  filters : bool;
  cycles : int;
  effective_hit_rate : float;
  same_page_reads : float;
  same_page_writes : float;
}

type result = {
  points : point list;
  best_cycles : int;
  small_with_filters_gap : float;
      (** (4-entry + filters, no shared) vs best, as a fraction *)
}

let private_sizes = [ 4; 8; 16; 32; 64 ]
let shared_sizes = [ 0; 128; 512 ]

let tlb_config ~priv ~shared ~filters =
  {
    H.private_entries = priv;
    shared_entries = shared;
    filter_registers = filters;
    private_hit_latency = 2;
    shared_hit_latency = 8;
  }

let measure ?(quick = false) () =
  let privs = if quick then [ 4; 16; 64 ] else private_sizes in
  let shareds = if quick then [ 0; 512 ] else shared_sizes in
  (* The full cartesian TLB-sizing sweep as one DSE run: filters outermost,
     then private size, then shared size — the paper's Fig. 8a/8b grid. *)
  let map_tlb f (p : Gem_dse.Point.t) =
    { p with Gem_dse.Point.soc = Gem_soc.Soc_config.map_tlb f p.Gem_dse.Point.soc }
  in
  let base =
    Gem_dse.Point.make ~scale:(Common.resnet_scale ~quick)
      ~soc:
        (Common.single_core_config
           ~tlb:(tlb_config ~priv:4 ~shared:0 ~filters:false)
           ())
      ()
  in
  let sweep =
    Gem_dse.Sweep.cartesian ~base
      [
        Gem_dse.Sweep.axis "filters"
          (List.map
             (fun filters ->
               ( (if filters then "filters" else "nofilters"),
                 map_tlb (fun t -> { t with H.filter_registers = filters }) ))
             [ false; true ]);
        Gem_dse.Sweep.ints "private"
          (fun n -> map_tlb (fun t -> { t with H.private_entries = n }))
          privs;
        Gem_dse.Sweep.ints "shared"
          (fun n -> map_tlb (fun t -> { t with H.shared_entries = n }))
          shareds;
      ]
  in
  let rr = Gem_dse.Exec.run sweep in
  let points =
    List.map
      (fun ((p : Gem_dse.Point.t), (o : Gem_dse.Outcome.t)) ->
        let tlb =
          match p.Gem_dse.Point.soc.Gem_soc.Soc_config.cores with
          | c :: _ -> c.Gem_soc.Soc_config.tlb
          | [] -> assert false
        in
        {
          private_entries = tlb.H.private_entries;
          shared_entries = tlb.H.shared_entries;
          filters = tlb.H.filter_registers;
          cycles = o.Gem_dse.Outcome.total_cycles;
          effective_hit_rate = o.Gem_dse.Outcome.tlb_hit_rate;
          same_page_reads = o.Gem_dse.Outcome.tlb_same_page_reads;
          same_page_writes = o.Gem_dse.Outcome.tlb_same_page_writes;
        })
      (Array.to_list rr.Gem_dse.Exec.results)
  in
  let best_cycles =
    List.fold_left (fun acc p -> min acc p.cycles) max_int points
  in
  let small =
    List.find
      (fun p -> p.private_entries = 4 && p.shared_entries = 0 && p.filters)
      points
  in
  {
    points;
    best_cycles;
    small_with_filters_gap =
      (float_of_int small.cycles -. float_of_int best_cycles)
      /. float_of_int best_cycles;
  }

let table r =
  let t =
    Table.create
      ~title:
        "Fig. 8: ResNet50 performance vs TLB sizing (normalized to the best point)"
      [
        "Filters";
        "Private TLB";
        "Shared L2 TLB";
        "Cycles";
        "Normalized perf";
        "Effective hit rate";
      ]
  in
  List.iter (fun i -> Table.set_align t i Table.Right) [ 1; 2; 3; 4; 5 ];
  List.iter
    (fun p ->
      Table.add_row t
        [
          (if p.filters then "yes" else "no");
          string_of_int p.private_entries;
          string_of_int p.shared_entries;
          Table.fmt_int p.cycles;
          Table.fmt_f ~dec:3 (float_of_int r.best_cycles /. float_of_int p.cycles);
          Table.fmt_pct (100. *. p.effective_hit_rate);
        ])
    r.points;
  t

let run ?quick () =
  let r = measure ?quick () in
  Table.print (table r);
  let sample = List.hd r.points in
  Printf.printf
    "same-page consecutive requests: reads %.0f%%, writes %.0f%% (paper: 87%% / 83%%)\n"
    (100. *. sample.same_page_reads)
    (100. *. sample.same_page_writes);
  Printf.printf
    "4-entry private TLB + filter registers, no shared TLB: %.1f%% below best (paper: ~2%%)\n"
    (100. *. r.small_with_filters_gap);
  r
