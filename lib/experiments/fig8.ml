(* Fig. 8 (case study V-A): ResNet50 performance across private and shared
   TLB sizes, without (8a) and with (8b) the read/write filter registers.

   Paper observations reproduced here:
   - the private TLB matters far more than the much larger shared L2 TLB
     (4 -> 16 private entries buys up to 11%; 512 shared entries never
     buys more than 8%);
   - consecutive same-page fractions are high (87% reads / 83% writes);
   - with filter registers, a 4-entry private TLB with NO shared TLB gets
     within a few percent of the best configuration, with an effective
     hit rate around 90%. *)

open Gem_util
module H = Gem_vm.Hierarchy

type point = {
  private_entries : int;
  shared_entries : int;
  filters : bool;
  cycles : int;
  effective_hit_rate : float;
  same_page_reads : float;
  same_page_writes : float;
}

type result = {
  points : point list;
  best_cycles : int;
  small_with_filters_gap : float;
      (** (4-entry + filters, no shared) vs best, as a fraction *)
}

let private_sizes = [ 4; 8; 16; 32; 64 ]
let shared_sizes = [ 0; 128; 512 ]

let measure_point ~quick ~priv ~shared ~filters =
  let tlb =
    {
      H.private_entries = priv;
      shared_entries = shared;
      filter_registers = filters;
      private_hit_latency = 2;
      shared_hit_latency = 8;
    }
  in
  let soc, r = Common.run_single ~tlb (Common.resnet ~quick) ~mode:Common.accel_mode in
  let h = Gem_soc.Soc.tlb (Gem_soc.Soc.core soc 0) in
  {
    private_entries = priv;
    shared_entries = shared;
    filters;
    cycles = r.Gem_sw.Runtime.r_total_cycles;
    effective_hit_rate = H.effective_hit_rate h;
    same_page_reads = H.same_page_fraction_reads h;
    same_page_writes = H.same_page_fraction_writes h;
  }

let measure ?(quick = false) () =
  let privs = if quick then [ 4; 16; 64 ] else private_sizes in
  let shareds = if quick then [ 0; 512 ] else shared_sizes in
  let points =
    List.concat_map
      (fun filters ->
        List.concat_map
          (fun priv ->
            List.map
              (fun shared -> measure_point ~quick ~priv ~shared ~filters)
              shareds)
          privs)
      [ false; true ]
  in
  let best_cycles =
    List.fold_left (fun acc p -> min acc p.cycles) max_int points
  in
  let small =
    List.find
      (fun p -> p.private_entries = 4 && p.shared_entries = 0 && p.filters)
      points
  in
  {
    points;
    best_cycles;
    small_with_filters_gap =
      (float_of_int small.cycles -. float_of_int best_cycles)
      /. float_of_int best_cycles;
  }

let table r =
  let t =
    Table.create
      ~title:
        "Fig. 8: ResNet50 performance vs TLB sizing (normalized to the best point)"
      [
        "Filters";
        "Private TLB";
        "Shared L2 TLB";
        "Cycles";
        "Normalized perf";
        "Effective hit rate";
      ]
  in
  List.iter (fun i -> Table.set_align t i Table.Right) [ 1; 2; 3; 4; 5 ];
  List.iter
    (fun p ->
      Table.add_row t
        [
          (if p.filters then "yes" else "no");
          string_of_int p.private_entries;
          string_of_int p.shared_entries;
          Table.fmt_int p.cycles;
          Table.fmt_f ~dec:3 (float_of_int r.best_cycles /. float_of_int p.cycles);
          Table.fmt_pct (100. *. p.effective_hit_rate);
        ])
    r.points;
  t

let run ?quick () =
  let r = measure ?quick () in
  Table.print (table r);
  let sample = List.hd r.points in
  Printf.printf
    "same-page consecutive requests: reads %.0f%%, writes %.0f%% (paper: 87%% / 83%%)\n"
    (100. *. sample.same_page_reads)
    (100. *. sample.same_page_writes);
  Printf.printf
    "4-entry private TLB + filter registers, no shared TLB: %.1f%% below best (paper: ~2%%)\n"
    (100. *. r.small_with_filters_gap);
  r
