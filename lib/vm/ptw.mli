(** Hardware page-table walker.

    The paper's Section V-A design point uses a single PTW shared by the
    host CPU and the accelerator ("suitable for low-power devices"), so
    walks serialize on one resource. Each level of the walk reads an 8-byte
    PTE from physical memory through a caller-supplied access function —
    in the SoC this routes through the shared L2, so walks both suffer and
    cause cache traffic. *)

type t

val create :
  ?engine:Gem_sim.Engine.t ->
  ?name:string ->
  ?pte_cache_entries:int ->
  page_table:Page_table.t ->
  mem_read:(now:Gem_sim.Time.cycles -> paddr:int -> bytes:int -> Gem_sim.Time.cycles) ->
  unit ->
  t
(** [pte_cache_entries] (default 64) bounds the walker's cache of
    {e non-leaf} PTEs (Rocket's "page-table cache"): upper levels of hot
    regions are served without memory reads, so a typical walk costs one
    leaf PTE read. Leaf PTEs are never cached — that is the TLB's job. *)

exception Page_fault of int
(** Raised with the faulting virtual page number when no mapping exists. *)

val walk : t -> now:Gem_sim.Time.cycles -> vpn:int -> int * Gem_sim.Time.cycles
(** [walk t ~now ~vpn] performs a serialized hardware walk and returns
    [(ppn, finish_time)]. Raises {!Page_fault} on an unmapped page. *)

val walks : t -> int
val pte_reads : t -> int
val pte_cache_hits : t -> int
val total_walk_cycles : t -> Gem_sim.Time.cycles
val reset_stats : t -> unit

val snapshot : t -> Gem_util.Jsonx.t
(** PTE-cache contents in FIFO insertion order plus statistics; the walker
    resource itself travels with the engine snapshot. *)

val restore : t -> Gem_util.Jsonx.t -> unit
