(** Sv39-style three-level radix page table.

    Each process in the simulated SoC has its own page table mapping 4 KiB
    virtual pages to physical pages. Table nodes are themselves assigned
    physical addresses (from a dedicated region supplied at creation), so a
    page-table walk issues real memory reads that travel through the shared
    L2 — exactly the cross-stack effect Gemmini's full-SoC integration is
    meant to expose. *)

val page_bits : int
(** 12: 4 KiB pages. *)

val page_size : int
val levels : int
(** 3 levels of 9 bits of VPN each. *)

val vpn_of_vaddr : int -> int
val page_offset : int -> int
val vaddr_of_vpn : int -> int

type t

val create : node_region_base:int -> unit -> t
(** [node_region_base] is the physical address where table nodes are
    allocated (each node occupies 4 KiB). *)

val map : t -> vpn:int -> ppn:int -> unit
(** Installs (or replaces) a translation. Allocates intermediate nodes as
    needed. *)

val map_range : t -> vaddr:int -> bytes:int -> paddr:int -> unit
(** Maps every page overlapping [vaddr, vaddr+bytes) linearly onto the
    physical range starting at [paddr]. Both addresses must be
    page-aligned. *)

val unmap : t -> vpn:int -> int option
(** Removes a translation, returning the PPN it pointed at ([None] when
    the page was not mapped). Interior nodes are left in place — like a
    real OS swap-out, only the leaf PTE is cleared. *)

val translate : t -> vaddr:int -> int option
(** Full software translation of a virtual address, [None] if unmapped. *)

val walk : t -> vpn:int -> int list * int option
(** [walk t ~vpn] returns the physical addresses of the page-table entries
    a hardware walker reads (one per level actually visited, in order) and
    the resulting PPN ([None] on a page fault). *)

val mapped_pages : t -> int
val node_count : t -> int

val snapshot : t -> Gem_util.Jsonx.t
(** The complete radix tree with per-node physical addresses (allocation
    order determines PTE read addresses, hence walk timing) plus the node
    allocator cursor. *)

val restore : t -> Gem_util.Jsonx.t -> unit
(** Replaces the tree of a table created with the same
    [node_region_base]; raises {!Gem_util.Snap.Malformed} otherwise. *)
