(** Gemmini's accelerator-side address-translation system: optional
    read/write filter registers in front of a private TLB, backed by a
    shared L2 TLB, backed by a single page-table walker.

    This is the structure co-designed in the paper's Section V-A:
    - the {e filter registers} cache the last translation used by the read
      stream and the write stream separately; a filter hit costs 0 cycles
      and avoids read/write contention on the TLB ports;
    - the {e private TLB} is small (4–64 entries) with a several-cycle hit
      latency;
    - the {e shared L2 TLB} (0–512 entries) is slower but cheaper than a
      page walk;
    - walks go to the shared {!Ptw}. *)

type config = {
  private_entries : int;
  shared_entries : int; (** 0 disables the shared L2 TLB. *)
  filter_registers : bool;
  private_hit_latency : Gem_sim.Time.cycles;
      (** cycles added to a request that hits in the private TLB *)
  shared_hit_latency : Gem_sim.Time.cycles;
      (** additional cycles for a shared-TLB hit *)
}

val default_config : config
(** 4-entry private, no shared TLB, filter registers on — the paper's
    recommended low-cost design point. *)

type t

val create :
  ?engine:Gem_sim.Engine.t -> ?name:string -> ?core:int -> config -> ptw:Ptw.t -> t
(** Registers a TLB metrics probe in [engine] (fresh private engine when
    none is supplied) and, when the engine is observing, emits a typed
    [Translate] event per request. [core] (default -1) attributes faults
    raised by this hierarchy. *)

val config : t -> config

type level = Filter | Private | Shared | Walk

type outcome = {
  paddr : int;
  finish : Gem_sim.Time.cycles;
  level : level; (** where the translation was satisfied *)
}

val translate :
  t -> now:Gem_sim.Time.cycles -> vaddr:int -> write:bool -> outcome
(** Translates one request. An unmapped page raises a structured
    {!Gem_sim.Fault.Trap} (cause [Page_fault]) through the engine, which
    records it against this hierarchy's component name. *)

type slot = {
  mutable s_paddr : int;
  mutable s_finish : Gem_sim.Time.cycles;
  mutable s_level : level;
}
(** A caller-owned result cell for the allocation-free hot path. *)

val make_slot : unit -> slot

val translate_into :
  t -> slot -> now:Gem_sim.Time.cycles -> vaddr:int -> write:bool -> unit
(** {!translate}, but writes the result into [slot] instead of allocating
    an {!outcome}. The DMA calls this once per page segment of every row,
    so the quiet path must not allocate per request. *)

val invalidate : t -> vpn:int -> unit
(** Drops one translation from the filter registers and both TLBs (the
    page-unmap shootdown path). The next access re-walks. *)

val set_inject :
  t -> plan:Gem_sim.Inject.t -> ?unmap:(vaddr:int -> unit) -> unit -> unit
(** Arms deterministic fault injection: every translation rolls the
    plan's [Unmap] stream (fires [unmap] and a shootdown — the host must
    remap) and its [Tlb_drop] stream (fires a shootdown only — the next
    access re-walks but succeeds). *)

val set_observer : t -> (Gem_sim.Time.cycles -> level -> unit) option -> unit
(** Installs a per-request probe (used to record miss-rate time series,
    Fig. 4). The observer sees the request time and the level that
    satisfied it. *)

val flush : t -> unit
(** Invalidate filter registers and both TLBs (context switch). *)

(* Statistics *)

val requests : t -> int
val filter_hits : t -> int
val private_hits : t -> int
(** Hits in the private TLB proper (excludes filter hits). *)

val shared_hits : t -> int
val walks : t -> int

val private_hit_rate : t -> float
(** Private TLB hit rate over requests that reached it. *)

val effective_hit_rate : t -> float
(** Paper's "private TLB hit rate (including hits on the filter
    registers)": (filter hits + private hits) / all requests. *)

val same_page_fraction_reads : t -> float
(** Fraction of consecutive read requests to the same virtual page
    (paper reports 87 %). *)

val same_page_fraction_writes : t -> float
(** Same for writes (paper reports 83 %). *)

val translation_stall_cycles : t -> Gem_sim.Time.cycles
(** Total cycles requests spent waiting on translation. *)

val reset_stats : t -> unit

val snapshot : t -> Gem_util.Jsonx.t
(** Both TLBs, the nested PTW, the filter registers, locality cursors and
    statistics. Injection plan state is {e not} included — the plan is
    shared with the DMA and serialized once at the SoC level. *)

val restore : t -> Gem_util.Jsonx.t -> unit
(** Restores into a hierarchy of identical configuration; raises
    {!Gem_util.Snap.Malformed} otherwise. *)
