(** Fully-associative TLB with true LRU replacement.

    Gemmini's private accelerator TLB and the larger shared L2 TLB of the
    Section V-A case study are both instances of this structure (the paper
    sweeps 4–512 entries, small enough that full associativity is what the
    RTL builds). An [entries = 0] TLB is legal and misses on every lookup —
    that is the "no shared L2 TLB" design point of Fig. 8. *)

type t

val create : entries:int -> t

val entries : t -> int

type result = Hit of int (** PPN *) | Miss

val lookup : t -> vpn:int -> result
(** Updates recency on hit, counts statistics. *)

val probe : t -> vpn:int -> int option
(** Like {!lookup} but with no recency/statistics side effects. *)

val fill : t -> vpn:int -> ppn:int -> unit
(** Installs a translation, evicting the LRU entry if full. No-op on a
    0-entry TLB. Refilling an existing vpn updates its PPN and recency. *)

val invalidate : t -> vpn:int -> unit
(** Invalidates one translation if present (targeted sfence.vma / page
    unmap). No-op when [vpn] is not resident. *)

val flush : t -> unit
(** Invalidates everything (context switch / sfence.vma). *)

val occupancy : t -> int

(* Statistics *)

val lookups : t -> int
val hits : t -> int
val misses : t -> int
val hit_rate : t -> float
val reset_stats : t -> unit

val snapshot : t -> Gem_util.Jsonx.t
(** Slot-exact state: every slot's vpn/ppn/recency in allocation order,
    plus the LRU clock and statistics — a restored TLB makes byte-identical
    replacement decisions. *)

val restore : t -> Gem_util.Jsonx.t -> unit
(** Restores into a TLB of the same size; raises
    {!Gem_util.Snap.Malformed} otherwise. *)
