type entry = { mutable vpn : int; mutable ppn : int; mutable age : int }

type t = {
  entries : int;
  index : (int, entry) Hashtbl.t; (* vpn -> live entry *)
  slots : entry array;
  mutable used : int;
  mutable clock : int;
  mutable lookups : int;
  mutable hits : int;
}

type result = Hit of int | Miss

let create ~entries =
  if entries < 0 then invalid_arg "Tlb.create: negative size";
  {
    entries;
    index = Hashtbl.create (max 16 entries);
    slots = Array.init entries (fun _ -> { vpn = -1; ppn = -1; age = 0 });
    used = 0;
    clock = 0;
    lookups = 0;
    hits = 0;
  }

let entries t = t.entries

let lookup t ~vpn =
  t.lookups <- t.lookups + 1;
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.index vpn with
  | Some e ->
      t.hits <- t.hits + 1;
      e.age <- t.clock;
      Hit e.ppn
  | None -> Miss

let probe t ~vpn =
  match Hashtbl.find_opt t.index vpn with Some e -> Some e.ppn | None -> None

let fill t ~vpn ~ppn =
  if t.entries > 0 then begin
    t.clock <- t.clock + 1;
    match Hashtbl.find_opt t.index vpn with
    | Some e ->
        e.ppn <- ppn;
        e.age <- t.clock
    | None ->
        let e =
          if t.used < t.entries then begin
            let e = t.slots.(t.used) in
            t.used <- t.used + 1;
            e
          end
          else begin
            (* Evict true LRU; the scan only runs on fills of a full TLB. *)
            let victim = ref t.slots.(0) in
            Array.iter (fun e -> if e.age < !victim.age then victim := e) t.slots;
            Hashtbl.remove t.index !victim.vpn;
            !victim
          end
        in
        e.vpn <- vpn;
        e.ppn <- ppn;
        e.age <- t.clock;
        Hashtbl.replace t.index vpn e
  end

let invalidate t ~vpn =
  match Hashtbl.find_opt t.index vpn with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.index vpn;
      (* The slot stays allocated but becomes the LRU victim; evicting a
         vpn of -1 later is a harmless Hashtbl.remove of a missing key. *)
      e.vpn <- -1;
      e.ppn <- -1;
      e.age <- 0

let flush t =
  Array.iter
    (fun e ->
      e.vpn <- -1;
      e.ppn <- -1;
      e.age <- 0)
    t.slots;
  Hashtbl.reset t.index;
  t.used <- 0

let occupancy t = t.used

let lookups t = t.lookups
let hits t = t.hits
let misses t = t.lookups - t.hits
let hit_rate t = Gem_util.Stats.hit_rate ~hits:t.hits ~total:t.lookups

let reset_stats t =
  t.lookups <- 0;
  t.hits <- 0

module J = Gem_util.Jsonx
module Snap = Gem_util.Snap

let snapshot t =
  J.Obj
    [ ("entries", J.Int t.entries);
      ( "slots",
        J.List
          (Array.to_list
             (Array.map
                (fun e -> Snap.of_int_list [ e.vpn; e.ppn; e.age ])
                t.slots)) );
      ("used", J.Int t.used);
      ("clock", J.Int t.clock);
      ("lookups", J.Int t.lookups);
      ("hits", J.Int t.hits) ]

let restore t j =
  Snap.check ~what:"tlb size" (Snap.get_int "entries" j = t.entries);
  let slots = Snap.get_list "slots" j in
  Snap.check ~what:"tlb slot count" (List.length slots = t.entries);
  Hashtbl.reset t.index;
  List.iteri
    (fun i s ->
      match Snap.int_list s with
      | [ vpn; ppn; age ] ->
          let e = t.slots.(i) in
          e.vpn <- vpn;
          e.ppn <- ppn;
          e.age <- age;
          (* Invalidated slots stay allocated but carry vpn = -1 and must
             not re-enter the index. *)
          if vpn >= 0 then Hashtbl.replace t.index vpn e
      | _ -> Snap.fail "tlb slot: expected [vpn; ppn; age]")
    slots;
  t.used <- Snap.get_int "used" j;
  t.clock <- Snap.get_int "clock" j;
  t.lookups <- Snap.get_int "lookups" j;
  t.hits <- Snap.get_int "hits" j
