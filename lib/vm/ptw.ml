open Gem_sim

type t = {
  page_table : Page_table.t;
  mem_read : now:Time.cycles -> paddr:int -> bytes:int -> Time.cycles;
  engine : Engine.t;
  walker : Resource.t;
  pte_cache_entries : int;
  pte_cache : (int, unit) Hashtbl.t; (* non-leaf PTE paddrs *)
  pte_cache_fifo : int Queue.t;
  mutable walks : int;
  mutable pte_reads : int;
  mutable pte_cache_hits : int;
  mutable total_walk_cycles : Time.cycles;
}

exception Page_fault of int

let create ?engine ?(name = "ptw") ?(pte_cache_entries = 64) ~page_table
    ~mem_read () =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  {
    page_table;
    mem_read;
    engine;
    walker = Engine.resource engine ~kind:Engine.Ptw ~name;
    pte_cache_entries;
    pte_cache = Hashtbl.create (max 16 pte_cache_entries);
    pte_cache_fifo = Queue.create ();
    walks = 0;
    pte_reads = 0;
    pte_cache_hits = 0;
    total_walk_cycles = 0;
  }

let cache_insert t paddr =
  if t.pte_cache_entries > 0 && not (Hashtbl.mem t.pte_cache paddr) then begin
    if Queue.length t.pte_cache_fifo >= t.pte_cache_entries then
      Hashtbl.remove t.pte_cache (Queue.pop t.pte_cache_fifo);
    Hashtbl.add t.pte_cache paddr ();
    Queue.push paddr t.pte_cache_fifo
  end

let walk t ~now ~vpn =
  t.walks <- t.walks + 1;
  (* Wait for the (single) walker to become free. *)
  let start = Resource.next_free t.walker ~now in
  let pte_addrs, result = Page_table.walk t.page_table ~vpn in
  let n_levels = List.length pte_addrs in
  (* Each level's PTE read depends on the previous one completing; cached
     non-leaf levels are free. *)
  let finish =
    List.fold_left
      (fun (time, level) paddr ->
        let is_leaf = level = n_levels - 1 in
        let time' =
          if (not is_leaf) && Hashtbl.mem t.pte_cache paddr then begin
            t.pte_cache_hits <- t.pte_cache_hits + 1;
            time
          end
          else begin
            t.pte_reads <- t.pte_reads + 1;
            if not is_leaf then cache_insert t paddr;
            t.mem_read ~now:time ~paddr ~bytes:8
          end
        in
        (time', level + 1))
      (start, 0) pte_addrs
    |> fst
  in
  match result with
  | None ->
      (* A faulting walk must not commit the walker reservation: the trap
         unwinds past the requester, and an occupied walker would stall
         every later walk (including the re-walk after the fault is
         repaired) behind a request that never completed. *)
      raise (Page_fault vpn)
  | Some ppn ->
      (* Occupy the walker for the walk's duration so concurrent
         requesters queue behind it. *)
      Engine.occupy t.engine t.walker ~now ~start ~until:finish;
      t.total_walk_cycles <- t.total_walk_cycles + (finish - now);
      (ppn, finish)

let walks t = t.walks
let pte_reads t = t.pte_reads
let pte_cache_hits t = t.pte_cache_hits
let total_walk_cycles t = t.total_walk_cycles

let reset_stats t =
  t.walks <- 0;
  t.pte_reads <- 0;
  t.pte_cache_hits <- 0;
  t.total_walk_cycles <- 0

module J = Gem_util.Jsonx
module Snap = Gem_util.Snap

(* The walker resource is engine-owned; what lives here is the PTE cache
   (FIFO order matters for future evictions) and the statistics. *)
let snapshot t =
  J.Obj
    [ ("pte_cache", Snap.of_int_list (List.of_seq (Queue.to_seq t.pte_cache_fifo)));
      ("walks", J.Int t.walks);
      ("pte_reads", J.Int t.pte_reads);
      ("pte_cache_hits", J.Int t.pte_cache_hits);
      ("total_walk_cycles", J.Int t.total_walk_cycles) ]

let restore t j =
  let cached = Snap.int_list (Snap.member "pte_cache" j) in
  Snap.check ~what:"pte cache occupancy"
    (List.length cached <= max t.pte_cache_entries 0);
  Hashtbl.reset t.pte_cache;
  Queue.clear t.pte_cache_fifo;
  List.iter
    (fun paddr ->
      Hashtbl.add t.pte_cache paddr ();
      Queue.push paddr t.pte_cache_fifo)
    cached;
  t.walks <- Snap.get_int "walks" j;
  t.pte_reads <- Snap.get_int "pte_reads" j;
  t.pte_cache_hits <- Snap.get_int "pte_cache_hits" j;
  t.total_walk_cycles <- Snap.get_int "total_walk_cycles" j
