open Gem_sim

type config = {
  private_entries : int;
  shared_entries : int;
  filter_registers : bool;
  private_hit_latency : Time.cycles;
  shared_hit_latency : Time.cycles;
}

let default_config =
  {
    private_entries = 4;
    shared_entries = 0;
    filter_registers = true;
    private_hit_latency = 2;
    shared_hit_latency = 8;
  }

type filter = { mutable vpn : int; mutable ppn : int }

type inject_hooks = {
  plan : Inject.t;
  unmap_cb : (vaddr:int -> unit) option;
}

type t = {
  cfg : config;
  name : string;
  core : int;
  engine : Engine.t;
  mutable inject : inject_hooks option;
  private_tlb : Tlb.t;
  shared_tlb : Tlb.t;
  ptw : Ptw.t;
  filter_read : filter;
  filter_write : filter;
  (* last vpn per direction, tracked regardless of filter enablement, for
     the paper's page-locality statistics *)
  mutable last_read_vpn : int;
  mutable last_write_vpn : int;
  mutable reads : int;
  mutable writes : int;
  mutable same_page_reads : int;
  mutable same_page_writes : int;
  mutable requests : int;
  mutable filter_hits : int;
  mutable private_hits : int;
  mutable shared_hits : int;
  mutable walks : int;
  mutable stall_cycles : Time.cycles;
  mutable observer : (Time.cycles -> level -> unit) option;
}

and level = Filter | Private | Shared | Walk

type outcome = { paddr : int; finish : Time.cycles; level : level }

let level_label = function
  | Filter -> "filter"
  | Private -> "private"
  | Shared -> "shared"
  | Walk -> "walk"

let create ?engine ?(name = "tlb") ?(core = -1) cfg ~ptw =
  if cfg.private_entries <= 0 then
    invalid_arg "Hierarchy.create: private TLB needs at least one entry";
  if cfg.shared_entries < 0 then
    invalid_arg "Hierarchy.create: negative shared TLB size";
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let t =
    {
      cfg;
      name;
      core;
      engine;
      inject = None;
      private_tlb = Tlb.create ~entries:cfg.private_entries;
      shared_tlb = Tlb.create ~entries:cfg.shared_entries;
      ptw;
      filter_read = { vpn = -1; ppn = -1 };
      filter_write = { vpn = -1; ppn = -1 };
      last_read_vpn = -1;
      last_write_vpn = -1;
      reads = 0;
      writes = 0;
      same_page_reads = 0;
      same_page_writes = 0;
      requests = 0;
      filter_hits = 0;
      private_hits = 0;
      shared_hits = 0;
      walks = 0;
      stall_cycles = 0;
      observer = None;
    }
  in
  Engine.register_probe engine ~kind:Engine.Tlb ~name ~sample:(fun () ->
      {
        Engine.p_requests = t.requests;
        p_busy = 0;
        p_wait = t.stall_cycles;
        p_note =
          Printf.sprintf "%.1f%% effective hit, %d walks"
            (100.
            *. Gem_util.Stats.hit_rate
                 ~hits:(t.filter_hits + t.private_hits)
                 ~total:t.requests)
            t.walks;
      });
  t

let config t = t.cfg
let set_observer t obs = t.observer <- obs
let set_inject t ~plan ?unmap () = t.inject <- Some { plan; unmap_cb = unmap }

let invalidate t ~vpn =
  Tlb.invalidate t.private_tlb ~vpn;
  Tlb.invalidate t.shared_tlb ~vpn;
  if t.filter_read.vpn = vpn then begin
    t.filter_read.vpn <- -1;
    t.filter_read.ppn <- -1
  end;
  if t.filter_write.vpn = vpn then begin
    t.filter_write.vpn <- -1;
    t.filter_write.ppn <- -1
  end

let observe t now level =
  (match t.observer with None -> () | Some f -> f now level);
  if Engine.live t.engine then
    Engine.emit t.engine
      (Engine.Translate
         { component = t.name; time = now; level = level_label level })

let note_locality t ~vpn ~write =
  if write then begin
    t.writes <- t.writes + 1;
    if t.last_write_vpn = vpn then t.same_page_writes <- t.same_page_writes + 1;
    t.last_write_vpn <- vpn
  end
  else begin
    t.reads <- t.reads + 1;
    if t.last_read_vpn = vpn then t.same_page_reads <- t.same_page_reads + 1;
    t.last_read_vpn <- vpn
  end

(* The DMA translates every page-sized segment of every row, so this is
   one of the hottest calls in a run. [translate_into] writes the result
   into a caller-owned mutable slot instead of allocating an outcome
   record per request; {!translate} keeps the record-returning interface
   for cold callers. *)
type slot = {
  mutable s_paddr : int;
  mutable s_finish : Time.cycles;
  mutable s_level : level;
}

let make_slot () = { s_paddr = 0; s_finish = 0; s_level = Filter }

(* Top-level so the compiler emits direct calls instead of allocating a
   closure over [offset] on every translation — this sits on the
   allocation-free quiet path the test suite pins down. *)
let paddr_of ~offset ppn = (ppn lsl Page_table.page_bits) lor offset

let translate_into t slot ~now ~vaddr ~write =
  let vpn = Page_table.vpn_of_vaddr vaddr in
  let offset = Page_table.page_offset vaddr in
  (* Injection rolls happen before the lookup so a fired unmap or drop is
     seen by this very request. Roll order is fixed (unmap, then drop) so
     a given seed replays the same trace. *)
  (match t.inject with
  | None -> ()
  | Some { plan; unmap_cb } ->
      if Inject.fire plan Inject.Unmap then (
        (match unmap_cb with None -> () | Some f -> f ~vaddr);
        invalidate t ~vpn);
      if Inject.fire plan Inject.Tlb_drop then invalidate t ~vpn);
  t.requests <- t.requests + 1;
  note_locality t ~vpn ~write;
  let filter = if write then t.filter_write else t.filter_read in
  if t.cfg.filter_registers && filter.vpn = vpn then begin
    (* Filter hit: 0-cycle translation, skips the TLB entirely. *)
    t.filter_hits <- t.filter_hits + 1;
    observe t now Filter;
    slot.s_paddr <- paddr_of ~offset filter.ppn;
    slot.s_finish <- now;
    slot.s_level <- Filter
  end
  else begin
    let fill_filter ppn =
      if t.cfg.filter_registers then begin
        filter.vpn <- vpn;
        filter.ppn <- ppn
      end
    in
    match Tlb.lookup t.private_tlb ~vpn with
    | Tlb.Hit ppn ->
        t.private_hits <- t.private_hits + 1;
        fill_filter ppn;
        observe t now Private;
        let finish = now + t.cfg.private_hit_latency in
        t.stall_cycles <- t.stall_cycles + (finish - now);
        slot.s_paddr <- paddr_of ~offset ppn;
        slot.s_finish <- finish;
        slot.s_level <- Private
    | Tlb.Miss -> (
        match Tlb.lookup t.shared_tlb ~vpn with
        | Tlb.Hit ppn ->
            t.shared_hits <- t.shared_hits + 1;
            Tlb.fill t.private_tlb ~vpn ~ppn;
            fill_filter ppn;
            observe t now Shared;
            let finish =
              now + t.cfg.private_hit_latency + t.cfg.shared_hit_latency
            in
            t.stall_cycles <- t.stall_cycles + (finish - now);
            slot.s_paddr <- paddr_of ~offset ppn;
            slot.s_finish <- finish;
            slot.s_level <- Shared
        | Tlb.Miss ->
            t.walks <- t.walks + 1;
            observe t now Walk;
            let miss_time =
              now + t.cfg.private_hit_latency + t.cfg.shared_hit_latency
            in
            let ppn, finish =
              try Ptw.walk t.ptw ~now:miss_time ~vpn
              with Ptw.Page_fault vpn ->
                Engine.trap t.engine
                  (Fault.make ~core:t.core ~component:t.name ~cycle:miss_time
                     (Fault.Page_fault { vpn; write }))
            in
            Tlb.fill t.private_tlb ~vpn ~ppn;
            Tlb.fill t.shared_tlb ~vpn ~ppn;
            fill_filter ppn;
            t.stall_cycles <- t.stall_cycles + (finish - now);
            slot.s_paddr <- paddr_of ~offset ppn;
            slot.s_finish <- finish;
            slot.s_level <- Walk)
  end

let translate t ~now ~vaddr ~write =
  let slot = make_slot () in
  translate_into t slot ~now ~vaddr ~write;
  { paddr = slot.s_paddr; finish = slot.s_finish; level = slot.s_level }

let flush t =
  Tlb.flush t.private_tlb;
  Tlb.flush t.shared_tlb;
  t.filter_read.vpn <- -1;
  t.filter_write.vpn <- -1;
  t.last_read_vpn <- -1;
  t.last_write_vpn <- -1

let requests t = t.requests
let filter_hits t = t.filter_hits
let private_hits t = t.private_hits
let shared_hits t = t.shared_hits
let walks t = t.walks

let private_hit_rate t =
  Gem_util.Stats.hit_rate ~hits:t.private_hits
    ~total:(t.requests - t.filter_hits)

let effective_hit_rate t =
  Gem_util.Stats.hit_rate ~hits:(t.filter_hits + t.private_hits) ~total:t.requests

let same_page_fraction_reads t =
  Gem_util.Stats.hit_rate ~hits:t.same_page_reads ~total:t.reads

let same_page_fraction_writes t =
  Gem_util.Stats.hit_rate ~hits:t.same_page_writes ~total:t.writes

let translation_stall_cycles t = t.stall_cycles

module J = Gem_util.Jsonx
module Snap = Gem_util.Snap

(* The hierarchy owns the PTW in the SoC wiring, so its snapshot nests the
   walker's. Injection plan state is snapshotted at the SoC level (the
   plan is shared with the DMA); only the translation state lives here. *)
let snapshot t =
  J.Obj
    [ ("private_tlb", Tlb.snapshot t.private_tlb);
      ("shared_tlb", Tlb.snapshot t.shared_tlb);
      ("ptw", Ptw.snapshot t.ptw);
      ("filter_read", Snap.of_int_list [ t.filter_read.vpn; t.filter_read.ppn ]);
      ( "filter_write",
        Snap.of_int_list [ t.filter_write.vpn; t.filter_write.ppn ] );
      ("last_read_vpn", J.Int t.last_read_vpn);
      ("last_write_vpn", J.Int t.last_write_vpn);
      ("reads", J.Int t.reads);
      ("writes", J.Int t.writes);
      ("same_page_reads", J.Int t.same_page_reads);
      ("same_page_writes", J.Int t.same_page_writes);
      ("requests", J.Int t.requests);
      ("filter_hits", J.Int t.filter_hits);
      ("private_hits", J.Int t.private_hits);
      ("shared_hits", J.Int t.shared_hits);
      ("walks", J.Int t.walks);
      ("stall_cycles", J.Int t.stall_cycles) ]

let restore t j =
  Tlb.restore t.private_tlb (Snap.member "private_tlb" j);
  Tlb.restore t.shared_tlb (Snap.member "shared_tlb" j);
  Ptw.restore t.ptw (Snap.member "ptw" j);
  let filter dst key =
    match Snap.int_list (Snap.member key j) with
    | [ vpn; ppn ] ->
        dst.vpn <- vpn;
        dst.ppn <- ppn
    | _ -> Snap.fail "bad filter register pair %S" key
  in
  filter t.filter_read "filter_read";
  filter t.filter_write "filter_write";
  t.last_read_vpn <- Snap.get_int "last_read_vpn" j;
  t.last_write_vpn <- Snap.get_int "last_write_vpn" j;
  t.reads <- Snap.get_int "reads" j;
  t.writes <- Snap.get_int "writes" j;
  t.same_page_reads <- Snap.get_int "same_page_reads" j;
  t.same_page_writes <- Snap.get_int "same_page_writes" j;
  t.requests <- Snap.get_int "requests" j;
  t.filter_hits <- Snap.get_int "filter_hits" j;
  t.private_hits <- Snap.get_int "private_hits" j;
  t.shared_hits <- Snap.get_int "shared_hits" j;
  t.walks <- Snap.get_int "walks" j;
  t.stall_cycles <- Snap.get_int "stall_cycles" j

let reset_stats t =
  Tlb.reset_stats t.private_tlb;
  Tlb.reset_stats t.shared_tlb;
  t.reads <- 0;
  t.writes <- 0;
  t.same_page_reads <- 0;
  t.same_page_writes <- 0;
  t.requests <- 0;
  t.filter_hits <- 0;
  t.private_hits <- 0;
  t.shared_hits <- 0;
  t.walks <- 0;
  t.stall_cycles <- 0
