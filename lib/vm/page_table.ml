let page_bits = 12
let page_size = 1 lsl page_bits
let levels = 3
let index_bits = 9
let entries_per_node = 1 lsl index_bits

let vpn_of_vaddr vaddr = vaddr lsr page_bits
let page_offset vaddr = vaddr land (page_size - 1)
let vaddr_of_vpn vpn = vpn lsl page_bits

type node = {
  paddr : int; (* physical base of this node *)
  children : node option array; (* interior levels *)
  leaves : int array; (* leaf level: PPN or -1 *)
}

type t = {
  root : node;
  mutable next_node_paddr : int;
  mutable mapped_pages : int;
  mutable node_count : int;
}

let make_node paddr =
  {
    paddr;
    children = Array.make entries_per_node None;
    leaves = Array.make entries_per_node (-1);
  }

let create ~node_region_base () =
  if node_region_base land (page_size - 1) <> 0 then
    invalid_arg "Page_table.create: node region must be page-aligned";
  let root = make_node node_region_base in
  {
    root;
    next_node_paddr = node_region_base + page_size;
    mapped_pages = 0;
    node_count = 1;
  }

(* VPN is split into [levels] fields of [index_bits]; level 0 is the root. *)
let index_at ~level vpn =
  vpn lsr ((levels - 1 - level) * index_bits) land (entries_per_node - 1)

let alloc_node t =
  let node = make_node t.next_node_paddr in
  t.next_node_paddr <- t.next_node_paddr + page_size;
  t.node_count <- t.node_count + 1;
  node

let map t ~vpn ~ppn =
  if vpn < 0 || ppn < 0 then invalid_arg "Page_table.map: negative page number";
  let rec go node level =
    let idx = index_at ~level vpn in
    if level = levels - 1 then begin
      if node.leaves.(idx) = -1 then t.mapped_pages <- t.mapped_pages + 1;
      node.leaves.(idx) <- ppn
    end
    else begin
      let child =
        match node.children.(idx) with
        | Some c -> c
        | None ->
            let c = alloc_node t in
            node.children.(idx) <- Some c;
            c
      in
      go child (level + 1)
    end
  in
  go t.root 0

let map_range t ~vaddr ~bytes ~paddr =
  if vaddr land (page_size - 1) <> 0 || paddr land (page_size - 1) <> 0 then
    invalid_arg "Page_table.map_range: unaligned range";
  if bytes < 0 then invalid_arg "Page_table.map_range: negative size";
  let pages = Gem_util.Mathx.ceil_div bytes page_size in
  for i = 0 to pages - 1 do
    map t ~vpn:(vpn_of_vaddr vaddr + i) ~ppn:(vpn_of_vaddr paddr + i)
  done

let unmap t ~vpn =
  if vpn < 0 then invalid_arg "Page_table.unmap: negative page number";
  let rec go node level =
    let idx = index_at ~level vpn in
    if level = levels - 1 then begin
      let ppn = node.leaves.(idx) in
      if ppn = -1 then None
      else begin
        node.leaves.(idx) <- -1;
        t.mapped_pages <- t.mapped_pages - 1;
        Some ppn
      end
    end
    else match node.children.(idx) with None -> None | Some c -> go c (level + 1)
  in
  go t.root 0

let pte_paddr node idx = node.paddr + (idx * 8)

let walk t ~vpn =
  let rec go node level acc =
    let idx = index_at ~level vpn in
    let acc = pte_paddr node idx :: acc in
    if level = levels - 1 then
      let ppn = node.leaves.(idx) in
      (List.rev acc, if ppn = -1 then None else Some ppn)
    else
      match node.children.(idx) with
      | None -> (List.rev acc, None)
      | Some child -> go child (level + 1) acc
  in
  go t.root 0 []

let translate t ~vaddr =
  match walk t ~vpn:(vpn_of_vaddr vaddr) with
  | _, None -> None
  | _, Some ppn -> Some ((ppn lsl page_bits) lor page_offset vaddr)

let mapped_pages t = t.mapped_pages
let node_count t = t.node_count

module J = Gem_util.Jsonx
module Snap = Gem_util.Snap

(* The full radix tree is serialized, including each node's physical base
   address: node allocation order determines the PTE addresses a hardware
   walk reads, so rebuilding the tree any other way would shift walk
   timing. Only populated slots are stored. *)
let rec node_to_json n =
  let children =
    Array.to_list n.children
    |> List.mapi (fun i c -> (i, c))
    |> List.filter_map (fun (i, c) ->
           match c with
           | None -> None
           | Some c -> Some (J.List [ J.Int i; node_to_json c ]))
  in
  let leaves =
    Array.to_list n.leaves
    |> List.mapi (fun i ppn -> (i, ppn))
    |> List.filter_map (fun (i, ppn) ->
           if ppn = -1 then None else Some (J.List [ J.Int i; J.Int ppn ]))
  in
  J.Obj [ ("p", J.Int n.paddr); ("c", J.List children); ("l", J.List leaves) ]

let rec node_of_json j =
  let n = make_node (Snap.get_int "p" j) in
  List.iter
    (fun pair ->
      match Snap.list pair with
      | [ i; c ] -> n.children.(Snap.int i) <- Some (node_of_json c)
      | _ -> Snap.fail "bad page-table child entry")
    (Snap.get_list "c" j);
  List.iter
    (fun pair ->
      match Snap.list pair with
      | [ i; ppn ] -> n.leaves.(Snap.int i) <- Snap.int ppn
      | _ -> Snap.fail "bad page-table leaf entry")
    (Snap.get_list "l" j);
  n

let snapshot t =
  J.Obj
    [ ("root", node_to_json t.root);
      ("next_node_paddr", J.Int t.next_node_paddr);
      ("mapped_pages", J.Int t.mapped_pages);
      ("node_count", J.Int t.node_count) ]

let restore t j =
  let root = node_of_json (Snap.member "root" j) in
  Snap.check ~what:"page-table node region" (root.paddr = t.root.paddr);
  Array.blit root.children 0 t.root.children 0 entries_per_node;
  Array.blit root.leaves 0 t.root.leaves 0 entries_per_node;
  t.next_node_paddr <- Snap.get_int "next_node_paddr" j;
  t.mapped_pages <- Snap.get_int "mapped_pages" j;
  t.node_count <- Snap.get_int "node_count" j
