module Soc = Gem_soc.Soc
module Soc_config = Gem_soc.Soc_config
module Runtime = Gem_sw.Runtime
module J = Gem_util.Jsonx

type scenario = {
  sv_model : string;
  sv_scale : int;
  sv_soc : Soc_config.t;
  sv_backend : Gem_sw.Backend.kind;
  sv_mode : Gem_sw.Runtime.mode;
  sv_arrival : Arrival.spec;
  sv_seed : int;
  sv_batch : Batch.policy;
  sv_slos_ms : float list;
  sv_duration_ms : float;
  sv_warmup : bool;
}

let config_for ~cores accel =
  Soc_config.with_cores
    (List.init cores (fun _ -> { Soc_config.default_core with accel }))
    Soc_config.default

let cores sv = List.length sv.sv_soc.Soc_config.cores

let default =
  {
    sv_model = "mobilenetv2";
    sv_scale = 16;
    sv_soc = config_for ~cores:2 Gemmini.Params.default;
    sv_backend = Gem_sw.Backend.Cycle;
    sv_mode = Runtime.Accel { im2col_on_accel = true };
    sv_arrival = Arrival.Poisson { rate_rps = 2000. };
    sv_seed = 42;
    sv_batch = Batch.Fixed 4;
    sv_slos_ms = [ 5.0; 10.0 ];
    sv_duration_ms = 5.0;
    sv_warmup = true;
  }

type result = {
  sr_scenario : scenario;
  sr_report : Slo.report;
  sr_completions : Slo.completion list;
  sr_dispatches : (int * int list) list;
  sr_comp_util : (string * float) list;
  sr_comp_wait : (string * int) list;
  sr_comp_p95 : (string * float) list;
}

let resolve_model sv =
  match Gem_dnn.Model_zoo.find sv.sv_model with
  | None ->
      invalid_arg (Printf.sprintf "Gem_serve: unknown model %S" sv.sv_model)
  | Some m ->
      if sv.sv_scale = 1 then m
      else Gem_dnn.Model_zoo.scale_model ~factor:sv.sv_scale m

let by_id completions =
  List.sort (fun a b -> compare a.Slo.c_id b.Slo.c_id) completions

(* --- analytic backend: pure event loop over a closed-form service time --- *)

let run_analytic ?hist sv =
  let model = resolve_model sv in
  let ncores = cores sv in
  (* Price one inference under steady-state contention: all cores active
     on the shared L2 port / DRAM floors. *)
  let detail =
    Gem_sw.Backend_analytic.estimate_core sv.sv_soc ~core:0 ~cores:ncores
      model ~mode:sv.sv_mode ~policy:Runtime.Abort ~watchdog:None
  in
  let svc =
    max 1 detail.Gem_sw.Backend_analytic.d_result.Runtime.r_total_cycles
  in
  let duration = Slo.cycles_of_ms sv.sv_duration_ms in
  let arrivals = Arrival.generate sv.sv_arrival ~seed:sv.sv_seed ~duration in
  let n = Array.length arrivals in
  let free = Array.make ncores 0 in
  let served = Array.make ncores 0 in
  let next = ref 0 in
  let completions = ref [] in
  let dispatches = ref [] in
  while !next < n do
    (* Mirror of the cycle scheduler's claiming discipline: the earliest-
       free core takes the queue head; ties go to the lowest index. *)
    let core = ref 0 in
    for i = 1 to ncores - 1 do
      if free.(i) < free.(!core) then core := i
    done;
    let i = !core in
    let k, start =
      Batch.form sv.sv_batch ~arrivals ~next:!next ~free:free.(i)
    in
    let ids = ref [] in
    for j = 0 to k - 1 do
      let rq = arrivals.(!next + j) in
      ids := rq.Arrival.rq_id :: !ids;
      completions :=
        {
          Slo.c_id = rq.Arrival.rq_id;
          c_core = i;
          c_arrival = rq.Arrival.rq_arrival;
          c_start = start + (j * svc);
          c_finish = start + ((j + 1) * svc);
        }
        :: !completions
    done;
    dispatches := (i, List.rev !ids) :: !dispatches;
    next := !next + k;
    free.(i) <- start + (k * svc);
    served.(i) <- served.(i) + k
  done;
  let completions = List.rev !completions in
  let horizon =
    List.fold_left (fun acc c -> max acc c.Slo.c_finish) 1 completions
  in
  let comp_util =
    List.init ncores (fun i ->
        ( Printf.sprintf "core%d/mesh" i,
          float_of_int
            (served.(i) * detail.Gem_sw.Backend_analytic.d_mesh_busy)
          /. float_of_int horizon ))
  in
  {
    sr_scenario = sv;
    sr_report =
      Slo.analyze ?hist ~origin:0 ~offered:n ~cores:ncores
        ~slos_ms:sv.sv_slos_ms completions;
    sr_completions = by_id completions;
    sr_dispatches = List.rev !dispatches;
    sr_comp_util = comp_util;
    sr_comp_wait = [];
    sr_comp_p95 = [];
  }

(* --- cycle backend: the real SoC --------------------------------------- *)

let warm_meta sv base =
  [
    ("kind", J.String "serve-warm");
    ("model", J.String sv.sv_model);
    ("scale", J.Int sv.sv_scale);
    ("cores", J.Int (cores sv));
    ("mode", J.String (Runtime.mode_desc sv.sv_mode));
    ("finish", J.Int base);
  ]

let check_warm_meta sv meta =
  let str k =
    match List.assoc_opt k meta with Some (J.String s) -> Some s | _ -> None
  in
  let int k =
    match List.assoc_opt k meta with Some (J.Int i) -> Some i | _ -> None
  in
  let ok =
    str "kind" = Some "serve-warm"
    && str "model" = Some sv.sv_model
    && int "scale" = Some sv.sv_scale
    && int "cores" = Some (cores sv)
    && str "mode" = Some (Runtime.mode_desc sv.sv_mode)
  in
  if not ok then
    invalid_arg
      "Gem_serve: warm-start envelope does not match this scenario \
       (model/scale/cores/mode)"

let run_cycle ?hist ?attach ?warm_in ?warm_out ?(domains = 1) sv =
  let model = resolve_model sv in
  let duration = Slo.cycles_of_ms sv.sv_duration_ms in
  let arrivals = Arrival.generate sv.sv_arrival ~seed:sv.sv_seed ~duration in
  let ncores = cores sv in
  let soc = Soc.create sv.sv_soc in
  (* Internal collector: queue-latency histograms only. An extra span-
     recording collector (Chrome trace) rides in via [attach]; neither
     perturbs simulated timing. *)
  let collector = Gem_sim.Export.attach ~spans:false (Soc.engine soc) in
  Option.iter (fun f -> f soc) attach;
  (* Tensor allocation is deterministic, so sessions made on the fresh
     SoC compute the same addresses a warm snapshot was taken over;
     restoring afterwards overlays the identical allocator state. *)
  let sessions =
    Array.init ncores (fun i ->
        Runtime.make_session soc ~core:i model ~mode:sv.sv_mode)
  in
  (match warm_in with
  | Some path -> (
      match Gem_persist.Persist.load ~path with
      | Error reason ->
          invalid_arg
            (Printf.sprintf "Gem_serve: cannot load warm state %s: %s" path
               reason)
      | Ok (meta, payload) ->
          check_warm_meta sv meta;
          Soc.restore soc payload)
  | None ->
      if sv.sv_warmup then begin
        (* One inference per core, contending — the steady state the
           measured window continues from. Completions are discarded. *)
        let programs =
          Array.map
            (fun s -> Runtime.request_ops s ~records:(ref []))
            sessions
        in
        ignore (Soc.run_parallel soc programs)
      end);
  let base = Soc.finish_time soc in
  Option.iter
    (fun path ->
      Gem_persist.Persist.save ~path ~meta:(warm_meta sv base)
        ~payload:(Soc.snapshot soc))
    warm_out;
  let arrivals =
    Array.map
      (fun r -> { r with Arrival.rq_arrival = r.Arrival.rq_arrival + base })
      arrivals
  in
  let sched =
    Sched.run ~domains soc ~sessions ~arrivals ~policy:sv.sv_batch
  in
  let horizon_abs = max 1 (Soc.finish_time soc) in
  let engine_stats = Gem_sim.Engine.stats (Soc.engine soc) in
  let comp_util =
    List.map
      (fun (s : Gem_sim.Engine.stat) ->
        ( s.Gem_sim.Engine.stat_name,
          float_of_int s.Gem_sim.Engine.stat_busy /. float_of_int horizon_abs
        ))
      engine_stats
  in
  let comp_wait =
    List.map
      (fun (s : Gem_sim.Engine.stat) ->
        (s.Gem_sim.Engine.stat_name, s.Gem_sim.Engine.stat_wait))
      engine_stats
  in
  let comp_p95 =
    List.map
      (fun (name, _, (s : Gem_util.Stats.Histogram.summary)) ->
        (name, s.Gem_util.Stats.Histogram.p95))
      (Gem_sim.Export.latency collector)
  in
  {
    sr_scenario = sv;
    sr_report =
      Slo.analyze ?hist ~origin:base ~offered:(Array.length arrivals)
        ~cores:ncores ~slos_ms:sv.sv_slos_ms sched.Sched.sc_completions;
    sr_completions = by_id sched.Sched.sc_completions;
    sr_dispatches = sched.Sched.sc_dispatches;
    sr_comp_util = comp_util;
    sr_comp_wait = comp_wait;
    sr_comp_p95 = comp_p95;
  }

let run ?hist ?attach ?warm_in ?warm_out ?domains sv =
  match sv.sv_backend with
  | Gem_sw.Backend.Cycle ->
      run_cycle ?hist ?attach ?warm_in ?warm_out ?domains sv
  | Gem_sw.Backend.Analytic ->
      if warm_in <> None || warm_out <> None then
        invalid_arg "Gem_serve: warm start needs the cycle backend";
      run_analytic ?hist sv

(* --- metrics registration -------------------------------------------------

   One call registers everything a serving run contributes to a metrics
   snapshot: headline SLO figures, per-core and merged latency
   histograms (merged via Stats.Histogram.merge — the per-core
   histograms share one geometry by construction), per-SLO burn-rate
   series (fraction of completions in each 1 ms window that missed the
   SLO) and per-core occupancy series (busy fraction of each window). *)

let ms_window = 1e6 (* 1 ms of cycles at the 1 GHz convention *)

let register_metrics reg r =
  let module M = Gem_obs.Metrics in
  let module H = Gem_util.Stats.Histogram in
  let module S = Gem_util.Stats.Series in
  let rp = r.sr_report in
  M.int reg "serve.offered" rp.Slo.rp_offered;
  M.int reg "serve.completed" rp.Slo.rp_completed;
  M.int reg "serve.horizon_cycles" rp.Slo.rp_horizon;
  M.float reg "serve.throughput_rps" rp.Slo.rp_throughput_rps;
  List.iter
    (fun (slo, a) ->
      M.float reg (Printf.sprintf "serve.slo.%gms.attainment" slo) a)
    rp.Slo.rp_attainment;
  List.iter
    (fun (i, n) -> M.int reg (Printf.sprintf "serve.core%d.completed" i) n)
    rp.Slo.rp_per_core;
  let completions = r.sr_completions in
  let latency c = c.Slo.c_finish - c.Slo.c_arrival in
  (* Completions carry absolute cycles (warm-start base included); series
     are reported relative to the earliest arrival so timelines start
     near zero regardless of warmup. *)
  let origin =
    List.fold_left
      (fun acc c -> min acc c.Slo.c_arrival)
      (match completions with [] -> 0 | c :: _ -> c.Slo.c_arrival)
      completions
  in
  let ncores = cores r.sr_scenario in
  let max_lat = List.fold_left (fun acc c -> max acc (latency c)) 0 completions in
  let range = float_of_int (max_lat + 1) in
  let per_core = Array.init ncores (fun _ -> H.create ~buckets:512 ~range) in
  List.iter
    (fun c ->
      if c.Slo.c_core >= 0 && c.Slo.c_core < ncores then
        H.add per_core.(c.Slo.c_core) (float_of_int (latency c)))
    completions;
  Array.iteri
    (fun i h -> M.histogram reg (Printf.sprintf "serve.core%d.latency" i) h)
    per_core;
  if ncores > 0 then begin
    let merged = Array.fold_left H.merge per_core.(0) (Array.sub per_core 1 (ncores - 1)) in
    M.histogram reg "serve.latency" merged
  end;
  List.iter
    (fun (slo, _) ->
      let budget = Slo.cycles_of_ms slo in
      let s = S.create ~window:ms_window in
      List.iter
        (fun c ->
          S.add s
            ~time:(float_of_int (c.Slo.c_finish - origin))
            (if latency c > budget then 1.0 else 0.0))
        completions;
      M.series reg (Printf.sprintf "serve.slo.%gms.burn_rate" slo) s)
    rp.Slo.rp_attainment;
  for i = 0 to ncores - 1 do
    let s = S.create ~window:ms_window in
    List.iter
      (fun c ->
        if c.Slo.c_core = i then
          S.add s
            ~time:(float_of_int (c.Slo.c_start - origin))
            (float_of_int (c.Slo.c_finish - c.Slo.c_start) /. ms_window))
      completions;
    M.series_total reg (Printf.sprintf "serve.core%d.occupancy" i) s
  done
