type completion = {
  c_id : int;
  c_core : int;
  c_arrival : Gem_sim.Time.cycles;
  c_start : Gem_sim.Time.cycles;
  c_finish : Gem_sim.Time.cycles;
}

type report = {
  rp_offered : int;
  rp_completed : int;
  rp_horizon : Gem_sim.Time.cycles;
  rp_latency : Gem_util.Stats.Histogram.summary;
  rp_throughput_rps : float;
  rp_attainment : (float * float) list;
  rp_per_core : (int * int) list;
}

let ms_of_cycles c = float_of_int c /. 1e6
let cycles_of_ms ms = int_of_float (ms *. 1e6)

let latency c = c.c_finish - c.c_arrival

let analyze ?hist ~origin ~offered ~cores ~slos_ms completions =
  let completed = List.length completions in
  let horizon =
    List.fold_left (fun acc c -> max acc (c.c_finish - origin)) 0 completions
  in
  let max_lat =
    List.fold_left (fun acc c -> max acc (latency c)) 0 completions
  in
  let h =
    match hist with
    | Some h ->
        Gem_util.Stats.Histogram.reset h;
        h
    | None ->
        (* Range depends only on the data, so equal completion lists give
           equal (deterministic) summaries. *)
        Gem_util.Stats.Histogram.create ~buckets:512
          ~range:(float_of_int (max_lat + 1))
  in
  List.iter
    (fun c -> Gem_util.Stats.Histogram.add h (float_of_int (latency c)))
    completions;
  let summary =
    if completed = 0 then
      (* All-zero, not NaN: summaries land in CSV/JSON reports where NaN
         is at best ugly and at worst unparseable. *)
      { Gem_util.Stats.Histogram.p50 = 0.; p95 = 0.; p99 = 0.; max = 0. }
    else Gem_util.Stats.Histogram.summary h
  in
  let attainment =
    List.map
      (fun slo ->
        let budget = cycles_of_ms slo in
        let ok =
          List.fold_left
            (fun acc c -> if latency c <= budget then acc + 1 else acc)
            0 completions
        in
        (* Offered, not completed, in the denominator: a request still
           queued at the end of the run has missed its SLO. *)
        (slo, if offered = 0 then 1.0 else float_of_int ok /. float_of_int offered))
      slos_ms
  in
  let per_core =
    List.init cores (fun i ->
        ( i,
          List.fold_left
            (fun acc c -> if c.c_core = i then acc + 1 else acc)
            0 completions ))
  in
  {
    rp_offered = offered;
    rp_completed = completed;
    rp_horizon = horizon;
    rp_latency = summary;
    rp_throughput_rps =
      (if horizon = 0 then 0.0
       else float_of_int completed /. float_of_int horizon *. 1e9);
    rp_attainment = attainment;
    rp_per_core = per_core;
  }
