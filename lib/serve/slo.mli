(** Per-request latency accounting and SLO attainment.

    Latency is end-to-end: completion cycle minus {e arrival} cycle, so
    queueing delay under load is part of the number (the quantity an SLO
    is written against), not just on-accelerator service time. *)

type completion = {
  c_id : int;
  c_core : int;
  c_arrival : Gem_sim.Time.cycles;
  c_start : Gem_sim.Time.cycles;  (** first cycle of service *)
  c_finish : Gem_sim.Time.cycles;
}

type report = {
  rp_offered : int;  (** requests in the arrival stream *)
  rp_completed : int;
  rp_horizon : Gem_sim.Time.cycles;
      (** last completion relative to the serving origin (0 if none) *)
  rp_latency : Gem_util.Stats.Histogram.summary;  (** in cycles *)
  rp_throughput_rps : float;
      (** completed requests per second at 1 GHz over the horizon *)
  rp_attainment : (float * float) list;
      (** per requested SLO: (slo in ms, fraction of {e offered} requests
          finished within it) — an uncompleted request counts as missed *)
  rp_per_core : (int * int) list;
      (** completions per core, ascending core id, all cores present *)
}

val ms_of_cycles : Gem_sim.Time.cycles -> float
(** At the 1 GHz convention: cycles / 1e6. *)

val cycles_of_ms : float -> Gem_sim.Time.cycles

val analyze :
  ?hist:Gem_util.Stats.Histogram.t ->
  origin:Gem_sim.Time.cycles ->
  offered:int ->
  cores:int ->
  slos_ms:float list ->
  completion list ->
  report
(** Builds the report. [origin] is the serving timeline origin (non-zero
    for warm-started runs whose completions carry absolute cycles).

    SLO attainment is counted exactly from the completion list; only the
    percentile summary goes through the histogram. When [hist] is given
    it is {!Gem_util.Stats.Histogram.reset} and reused (its bucket range
    must already suit the data); otherwise a fresh histogram sized to the
    observed maximum is used, so equal completions yield an equal report. *)
