(** The serving scheduler: shards an arrival stream across the SoC's
    cores on the cycle-accurate backend.

    Each core runs a lazy decision loop as its {!Gem_soc.Soc.run_parallel}
    program: whenever the core drains its current work, the next stream
    element is decided {e at force time} from the shared admission queue.
    Because the interleaver always advances the core whose issue cursor is
    earliest, decisions are serialized in nondecreasing simulated-time
    order — a core that is free {e parks} at the next arrival cycle (via
    {!Gemmini.Controller.advance_to}) and re-decides, so competing idle
    cores converge on the arrival and the interleaver's lowest-index
    tie-break picks the winner deterministically.

    Requests dispatched in one batch execute back-to-back on their core;
    every request is a full inference via {!Gem_sw.Runtime.request_ops},
    wrapped in a ["request"]-category span on the core's host track so
    traces read request > network > layer > ... *)

type result = {
  sc_completions : Slo.completion list;
      (** in completion (simulated-time) order *)
  sc_dispatches : (int * int list) list;
      (** (core, request ids) per batch, in dispatch order *)
}

val run :
  ?domains:int ->
  Gem_soc.Soc.t ->
  sessions:Gem_sw.Runtime.session array ->
  arrivals:Arrival.request array ->
  policy:Batch.policy ->
  result
(** [sessions] must hold one session per SoC core (index = core id);
    [arrivals] must be sorted by [rq_arrival] and carry {e absolute}
    cycles (already offset by the warm-start base, if any). Runs the SoC
    until every request completes. [domains] is forwarded to
    {!Gem_soc.Soc.run_parallel}; results are byte-identical at any
    count. *)
