module Soc = Gem_soc.Soc
module Runtime = Gem_sw.Runtime
module Controller = Gemmini.Controller
module Span = Gem_sim.Span
module P = Gem_obs.Profile

type result = {
  sc_completions : Slo.completion list;
  sc_dispatches : (int * int list) list;
}

type state = {
  arrivals : Arrival.request array;
  policy : Batch.policy;
  sessions : Runtime.session array;
  mutable next : int;  (** first undispatched arrival *)
  mutable completions : Slo.completion list;  (** newest first *)
  mutable dispatches : (int * int list) list;  (** newest first *)
}

(* One request: open a "request" span on the core's host track, run the
   inference, then record the completion at the core's finish horizon.
   The open marker reads the horizon at execution time, so queueing delay
   (arrival to start) is measured, not assumed. *)
let request_seq st (rq : Arrival.request) =
  let name = Printf.sprintf "req%d" rq.Arrival.rq_id in
  let started = ref 0 in
  let open_op =
    Soc.Marker
      (fun core ->
        let ctrl = Soc.controller core in
        let t = Controller.finish_time ctrl in
        started := t;
        Span.emit_open (Controller.engine ctrl)
          ~component:(Controller.host_component ctrl)
          ~time:t ~cat:"request"
          ~args:[ ("arrival", string_of_int rq.Arrival.rq_arrival) ]
          name)
  in
  let close_op =
    Soc.Marker
      (fun core ->
        let ctrl = Soc.controller core in
        let t = Controller.finish_time ctrl in
        Span.emit_close (Controller.engine ctrl)
          ~component:(Controller.host_component ctrl)
          ~time:t name;
        st.completions <-
          {
            Slo.c_id = rq.Arrival.rq_id;
            c_core = Soc.core_id core;
            c_arrival = rq.Arrival.rq_arrival;
            c_start = !started;
            c_finish = t;
          }
          :: st.completions)
  in
  let records = ref [] in
  fun session ->
    Seq.append (Seq.return open_op)
      (Seq.append (Runtime.request_ops session ~records) (Seq.return close_op))

(* The per-core decision loop. The thunk is forced exactly when the core
   has drained its previous work, so all shared-queue reads/writes happen
   in simulated-time order (see the interface comment). *)
(* Decisions are forced between dispatches (Seq laziness), outside the
   soc.dispatch probe, so the scheduler carries its own phase. *)
let rec core_stream st i () =
  if !P.on then P.enter P.schedule;
  let node = core_decide st i in
  if !P.on then P.leave P.schedule;
  node

and core_decide st i =
  if st.next >= Array.length st.arrivals then Seq.Nil
  else begin
    let session = st.sessions.(i) in
    let ctrl = Soc.controller (Runtime.session_core session) in
    let free = Controller.finish_time ctrl in
    let head = st.arrivals.(st.next).Arrival.rq_arrival in
    if head > free then
      (* Nothing has arrived yet: park at the arrival cycle and re-decide.
         advance_to charges no host cycles, so an idle core accrues wall
         time but no utilization. *)
      Seq.Cons
        ( Soc.Marker
            (fun core ->
              Controller.advance_to (Soc.controller core) ~cycle:head),
          core_stream st i )
    else begin
      let k, start =
        Batch.form st.policy ~arrivals:st.arrivals ~next:st.next ~free
      in
      let batch = Array.sub st.arrivals st.next k in
      st.next <- st.next + k;
      st.dispatches <-
        (i, Array.to_list (Array.map (fun r -> r.Arrival.rq_id) batch))
        :: st.dispatches;
      let lead =
        (* Deadline batches may start after [free] (waiting for members);
           model the hold as idle time before the first request opens. *)
        Seq.return
          (Soc.Marker
             (fun core ->
               Controller.advance_to (Soc.controller core) ~cycle:start))
      in
      let body =
        Seq.concat_map
          (fun rq -> request_seq st rq session)
          (Array.to_seq batch)
      in
      Seq.append (Seq.append lead body) (core_stream st i) ()
    end
  end

let run ?(domains = 1) soc ~sessions ~arrivals ~policy =
  let cores = Array.length (Soc.cores soc) in
  if Array.length sessions <> cores then
    invalid_arg "Sched.run: need one session per core";
  let st =
    { arrivals; policy; sessions; next = 0; completions = []; dispatches = [] }
  in
  let programs = Array.init cores (fun i -> core_stream st i) in
  ignore (Soc.run_parallel ~domains soc programs);
  {
    sc_completions = List.rev st.completions;
    sc_dispatches = List.rev st.dispatches;
  }
