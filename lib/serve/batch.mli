(** Admission-queue batching policies.

    The admission queue is a FIFO: a batch is always a contiguous prefix
    of the undispatched requests, so no request is ever reordered past a
    later one. A policy only decides {e how many} queued requests ride
    together and {e when} the batch starts. *)

type policy =
  | No_batch  (** every request dispatches alone ([Fixed 1]) *)
  | Fixed of int
      (** greedy size-capped batching: take every request already waiting
          when the core frees up, at most [n] of them; never waits for
          future arrivals *)
  | Deadline of { capacity : int; max_wait : Gem_sim.Time.cycles }
      (** dynamic batching: hold the queue head at most [max_wait] cycles
          to let up to [capacity] requests accumulate; the batch starts
          the moment it fills or the wait expires, whichever is first *)

val policy_of_string : string -> (policy, string) result
(** Parses ["none"], ["fixed:N"] and ["deadline:N:WAIT_US"] ([WAIT_US] in
    microseconds, i.e. thousands of cycles at 1 GHz). *)

val policy_to_string : policy -> string

val capacity : policy -> int
(** Upper bound on batch size (1 for {!No_batch}). *)

val form :
  policy ->
  arrivals:Arrival.request array ->
  next:int ->
  free:Gem_sim.Time.cycles ->
  int * Gem_sim.Time.cycles
(** [form p ~arrivals ~next ~free] decides the next batch for a core that
    becomes free at [free], where [arrivals] is the full arrival-sorted
    stream and [arrivals.(next)..] are still undispatched ([next] must be
    in bounds). Returns [(k, start)]: the batch is the [k] requests
    [arrivals.(next) .. arrivals.(next+k-1)] and it begins execution at
    [start].

    Invariants, for every policy: [1 <= k <= capacity p];
    [start >= free]; [start >= arrivals.(next+k-1).rq_arrival] (a batch
    cannot start before its last member exists). A {!Deadline} batch
    starts exactly at [max free arrivals.(next).rq_arrival + max_wait]
    unless it fills earlier, in which case it starts when the last seat
    is taken — the batcher is not an oracle, so a non-full batch always
    waits out its deadline. *)
