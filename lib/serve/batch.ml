type policy =
  | No_batch
  | Fixed of int
  | Deadline of { capacity : int; max_wait : Gem_sim.Time.cycles }

let policy_of_string s =
  match String.split_on_char ':' s with
  | [ "none" ] -> Ok No_batch
  | [ "fixed"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Ok (Fixed n)
      | _ -> Error (Printf.sprintf "fixed batch size must be >= 1: %S" n))
  | [ "deadline"; n; wait_us ] -> (
      match (int_of_string_opt n, float_of_string_opt wait_us) with
      | Some n, Some w when n >= 1 && w >= 0. ->
          Ok (Deadline { capacity = n; max_wait = int_of_float (w *. 1e3) })
      | _ ->
          Error
            (Printf.sprintf "deadline needs CAPACITY>=1 and WAIT_US>=0: %S:%S"
               n wait_us))
  | _ ->
      Error
        (Printf.sprintf
           "unknown batch policy %S (want none, fixed:N or deadline:N:WAIT_US)"
           s)

let policy_to_string = function
  | No_batch -> "none"
  | Fixed n -> Printf.sprintf "fixed:%d" n
  | Deadline { capacity; max_wait } ->
      Printf.sprintf "deadline:%d:%g" capacity (float_of_int max_wait /. 1e3)

let capacity = function
  | No_batch -> 1
  | Fixed n -> n
  | Deadline { capacity; _ } -> capacity

(* Count the contiguous run of requests (from [next], at most [cap]) that
   have arrived by [horizon]. The head is included unconditionally: the
   caller only forms a batch once the head exists. *)
let arrived_by arrivals ~next ~cap ~horizon =
  let n = Array.length arrivals in
  let k = ref 1 in
  while
    !k < cap
    && next + !k < n
    && arrivals.(next + !k).Arrival.rq_arrival <= horizon
  do
    incr k
  done;
  !k

let form policy ~arrivals ~next ~free =
  let head = arrivals.(next).Arrival.rq_arrival in
  let t0 = max free head in
  match policy with
  | No_batch -> (1, t0)
  | Fixed cap ->
      (* Greedy: whatever is already waiting at t0 rides along; never
         stall the head for stragglers. *)
      (arrived_by arrivals ~next ~cap ~horizon:t0, t0)
  | Deadline { capacity; max_wait } ->
      let close = t0 + max_wait in
      let k = arrived_by arrivals ~next ~cap:capacity ~horizon:close in
      if k = capacity then
        (* Filled before the deadline: dispatch the instant the last seat
           is taken, not at the deadline itself. *)
        (k, max t0 arrivals.(next + k - 1).Arrival.rq_arrival)
      else
        (* Not full: the batcher cannot know nothing more is coming, so
           it holds the batch until the deadline expires. *)
        (k, close)
