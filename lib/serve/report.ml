let pct x = 100. *. x

(* Aggregate per-component stats by name suffix, so "mesh utilization"
   means the mean over core0/accel/mesh, core1/accel/mesh, ... *)
let matching pairs suffix =
  List.filter_map
    (fun (name, v) -> if String.ends_with ~suffix name then Some v else None)
    pairs

let util_mean result suffix =
  match matching result.Serve.sr_comp_util suffix with
  | [] -> 0.
  | vs -> List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)

let wait_sum result suffix =
  List.fold_left ( + ) 0 (matching result.Serve.sr_comp_wait suffix)

let ms = Slo.ms_of_cycles

let render (r : Serve.result) =
  let sv = r.Serve.sr_scenario in
  let rp = r.Serve.sr_report in
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "serving %s/%d: %d core%s, %s backend, %s" sv.Serve.sv_model
    sv.Serve.sv_scale (Serve.cores sv)
    (if Serve.cores sv = 1 then "" else "s")
    (Gem_sw.Backend.kind_name sv.Serve.sv_backend)
    (Gem_sw.Runtime.mode_desc sv.Serve.sv_mode);
  line "arrival %s seed %d, batch %s, window %.3f ms%s"
    (Arrival.spec_to_string sv.Serve.sv_arrival)
    sv.Serve.sv_seed
    (Batch.policy_to_string sv.Serve.sv_batch)
    sv.Serve.sv_duration_ms
    (if sv.Serve.sv_warmup && sv.Serve.sv_backend = Gem_sw.Backend.Cycle then
       ", warmed"
     else "");
  line "requests: %d offered, %d completed; horizon %.3f ms; throughput %.1f req/s"
    rp.Slo.rp_offered rp.Slo.rp_completed
    (ms rp.Slo.rp_horizon)
    rp.Slo.rp_throughput_rps;
  let s = rp.Slo.rp_latency in
  let f c = c /. 1e6 in
  line "latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f"
    (f s.Gem_util.Stats.Histogram.p50)
    (f s.Gem_util.Stats.Histogram.p95)
    (f s.Gem_util.Stats.Histogram.p99)
    (f s.Gem_util.Stats.Histogram.max);
  List.iter
    (fun (slo, att) -> line "slo %.2f ms: %.2f%% attained" slo (pct att))
    rp.Slo.rp_attainment;
  let batches = List.length r.Serve.sr_dispatches in
  let mean_batch =
    if batches = 0 then 0.
    else
      float_of_int rp.Slo.rp_offered /. float_of_int batches
  in
  line "batches: %d dispatched, mean size %.2f" batches mean_batch;
  line "per-core completed: %s"
    (String.concat ", "
       (List.map
          (fun (core, n) -> Printf.sprintf "core%d %d" core n)
          rp.Slo.rp_per_core));
  if r.Serve.sr_comp_util <> [] then
    line "util: mesh %.1f%%  dma %.1f%%" (pct (util_mean r "mesh"))
      (pct (util_mean r "/dma"));
  Buffer.contents buf

let csv_header =
  "model,scale,cores,backend,arrival,batch,seed,window_ms,offered,completed,\
   horizon_ms,throughput_rps,p50_ms,p95_ms,p99_ms,max_ms,slo_ms,\
   slo_attained_pct,mesh_util_pct,dma_util_pct,dma_wait_cycles\n"

let csv_row (r : Serve.result) =
  let sv = r.Serve.sr_scenario in
  let rp = r.Serve.sr_report in
  let s = rp.Slo.rp_latency in
  let f c = c /. 1e6 in
  let slo, att =
    match rp.Slo.rp_attainment with (s, a) :: _ -> (s, a) | [] -> (0., 1.)
  in
  Printf.sprintf
    "%s,%d,%d,%s,%s,%s,%d,%.3f,%d,%d,%.3f,%.1f,%.3f,%.3f,%.3f,%.3f,%.2f,%.2f,%.2f,%.2f,%d\n"
    sv.Serve.sv_model sv.Serve.sv_scale (Serve.cores sv)
    (Gem_sw.Backend.kind_name sv.Serve.sv_backend)
    (Arrival.spec_to_string sv.Serve.sv_arrival)
    (Batch.policy_to_string sv.Serve.sv_batch)
    sv.Serve.sv_seed sv.Serve.sv_duration_ms rp.Slo.rp_offered
    rp.Slo.rp_completed
    (ms rp.Slo.rp_horizon)
    rp.Slo.rp_throughput_rps
    (f s.Gem_util.Stats.Histogram.p50)
    (f s.Gem_util.Stats.Histogram.p95)
    (f s.Gem_util.Stats.Histogram.p99)
    (f s.Gem_util.Stats.Histogram.max)
    slo (pct att)
    (pct (util_mean r "mesh"))
    (pct (util_mean r "/dma"))
    (wait_sum r "/dma")
