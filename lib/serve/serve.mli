(** Serving-scenario driver: ties the arrival generator, admission queue,
    scheduler and SLO accounting together over one SoC configuration.

    On the {!Gem_sw.Backend.Cycle} backend the requests execute on the
    real multi-core SoC — batches on different cores contend for the
    shared L2 port and DRAM bandwidth, so tail latency under load is
    emergent. On {!Gem_sw.Backend.Analytic} the same admission queue and
    core-claiming discipline run as a pure event loop over a closed-form
    per-request service time, which makes dense throughput-vs-latency
    rate sweeps cheap.

    Everything is deterministic: equal scenarios (including the seed)
    produce byte-identical reports, which CI gates. *)

type scenario = {
  sv_model : string;  (** {!Gem_dnn.Model_zoo} name *)
  sv_scale : int;
  sv_soc : Gem_soc.Soc_config.t;
      (** the full chip: cores, shared L2, DRAM channel *)
  sv_backend : Gem_sw.Backend.kind;
  sv_mode : Gem_sw.Runtime.mode;
  sv_arrival : Arrival.spec;
  sv_seed : int;
  sv_batch : Batch.policy;
  sv_slos_ms : float list;
  sv_duration_ms : float;  (** arrival-window length *)
  sv_warmup : bool;
      (** run one untimed inference per core before the measured window
          (cycle backend only), so weight-load cold-start cost is not
          charged to the first requests *)
}

val config_for : cores:int -> Gemmini.Params.t -> Gem_soc.Soc_config.t
(** [cores] copies of the default core carrying the given accelerator, on
    the default shared memory system. *)

val cores : scenario -> int

val default : scenario
(** mobilenetv2 at scale 16 on 2 default cores: Poisson 2000 req/s, seed
    42, [fixed:4] batching, 5 ms / 10 ms SLOs over a 5 ms window, warmed
    up, cycle backend. *)

type result = {
  sr_scenario : scenario;
  sr_report : Slo.report;
  sr_completions : Slo.completion list;  (** sorted by request id *)
  sr_dispatches : (int * int list) list;  (** dispatch order *)
  sr_comp_util : (string * float) list;
      (** per-component busy fraction of the run horizon (cycle backend:
          every engine component; analytic: per-core mesh estimate) *)
  sr_comp_wait : (string * int) list;  (** cycle backend only *)
  sr_comp_p95 : (string * float) list;
      (** per-component p95 queue latency (cycle backend only) *)
}

val run :
  ?hist:Gem_util.Stats.Histogram.t ->
  ?attach:(Gem_soc.Soc.t -> unit) ->
  ?warm_in:string ->
  ?warm_out:string ->
  ?domains:int ->
  scenario ->
  result
(** Runs the scenario. [hist] is passed to {!Slo.analyze} (reset and
    reused). [attach] runs after SoC creation and before any simulation —
    the hook for an extra {!Gem_sim.Export} collector when a Chrome trace
    is wanted; cycle backend only.

    Warm start (cycle backend only): [warm_out] saves a
    {!Gem_persist.Persist} envelope of the post-warmup SoC snapshot;
    [warm_in] restores one saved by an identical (model, scale, cores)
    scenario instead of re-running the warmup, and the arrival timeline
    is rebased past the restored finish horizon. Raises
    [Invalid_argument] on an unknown model, a warm-envelope mismatch, or
    warm flags on the analytic backend. *)

val register_metrics : Gem_obs.Metrics.t -> result -> unit
(** Registers the run's serving metrics: headline figures
    ([serve.offered]/[completed]/[throughput_rps]), per-SLO attainment,
    per-core and merged latency histograms, per-SLO burn-rate series
    (fraction of completions per 1 ms window missing the SLO) and
    per-core occupancy series (busy window share). Works on both
    backends — everything derives from the completion list. *)
