type request = { rq_id : int; rq_arrival : Gem_sim.Time.cycles }

type spec =
  | Poisson of { rate_rps : float }
  | Bursty of { rate_rps : float; burst : int }
  | Trace of string

let spec_of_string s =
  match String.split_on_char ':' s with
  | [ "poisson"; rate ] -> (
      match float_of_string_opt rate with
      | Some r when r > 0. -> Ok (Poisson { rate_rps = r })
      | _ -> Error (Printf.sprintf "poisson rate must be positive: %S" rate))
  | [ "bursty"; rate; burst ] -> (
      match (float_of_string_opt rate, int_of_string_opt burst) with
      | Some r, Some b when r > 0. && b >= 1 ->
          Ok (Bursty { rate_rps = r; burst = b })
      | _ ->
          Error
            (Printf.sprintf "bursty needs RATE>0 and BURST>=1: %S:%S" rate
               burst))
  | "trace" :: rest when rest <> [] ->
      (* File paths may themselves contain ':'. *)
      Ok (Trace (String.concat ":" rest))
  | _ ->
      Error
        (Printf.sprintf
           "unknown arrival spec %S (want poisson:RATE, bursty:RATE:BURST or \
            trace:FILE)"
           s)

let spec_to_string = function
  | Poisson { rate_rps } -> Printf.sprintf "poisson:%g" rate_rps
  | Bursty { rate_rps; burst } -> Printf.sprintf "bursty:%g:%d" rate_rps burst
  | Trace file -> "trace:" ^ file

(* 1 GHz convention: one simulated cycle is one nanosecond, so a rate in
   requests/second is a mean gap of 1e9/rate cycles. *)
let cycles_per_second = 1e9

let exponential rng ~mean =
  (* Rng.float returns u in [0, bound); 1-u is in (0, 1] so log is finite. *)
  let u = Gem_util.Rng.float rng 1.0 in
  -.mean *. log (1. -. u)

let of_times times =
  let times = List.stable_sort compare times in
  Array.of_list (List.mapi (fun i t -> { rq_id = i; rq_arrival = t }) times)

let read_trace file ~duration =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let times = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           incr lineno;
           if line <> "" && line.[0] <> '#' then
             match int_of_string_opt line with
             | Some t when t >= 0 ->
                 if t < duration then times := t :: !times
             | _ ->
                 invalid_arg
                   (Printf.sprintf "%s:%d: bad arrival cycle %S" file !lineno
                      line)
         done
       with End_of_file -> ());
      List.rev !times)

let generate spec ~seed ~duration =
  let times =
    match spec with
    | Poisson { rate_rps } ->
        let rng = Gem_util.Rng.create ~seed in
        let mean = cycles_per_second /. rate_rps in
        let rec go t acc =
          let t = t +. exponential rng ~mean in
          let cycle = int_of_float t in
          if cycle >= duration then List.rev acc else go t (cycle :: acc)
        in
        go 0.0 []
    | Bursty { rate_rps; burst } ->
        let rng = Gem_util.Rng.create ~seed in
        (* Bursts arrive as a Poisson process slowed by the burst size so
           the long-run request rate stays rate_rps. *)
        let mean = cycles_per_second *. float_of_int burst /. rate_rps in
        let rec go t acc =
          let t = t +. exponential rng ~mean in
          let cycle = int_of_float t in
          if cycle >= duration then List.rev acc
          else go t (List.init burst (fun _ -> cycle) @ acc)
        in
        go 0.0 []
    | Trace file -> read_trace file ~duration
  in
  of_times times
