(** Deterministic rendering of serving results: the text report the CLI
    prints (and CI diffs byte-for-byte) and a CSV row per scenario for
    throughput-vs-latency curves. *)

val render : Serve.result -> string
(** Multi-line human-readable report; ends with a newline. Equal results
    render to equal strings. *)

val csv_header : string
(** Column names, with a trailing newline. *)

val csv_row : Serve.result -> string
(** One CSV line (trailing newline). The SLO columns report the first
    SLO in the scenario's list (0 / 100% when none was requested);
    utilization columns aggregate engine components by name suffix:
    mean over matching [*/mesh] and [*/dma] tracks, sum over matching
    wait counters. *)
