(** Open-loop request generators.

    A serving experiment is driven by an arrival process that does not
    react to the system under test (open loop): requests keep coming at
    their scheduled cycles whether or not the accelerator has fallen
    behind, which is what exposes queueing delay under overload.

    All stochastic choices draw from a seeded {!Gem_util.Rng} (splitmix64),
    so a given [(spec, seed, duration)] triple reproduces the exact same
    arrival stream byte-for-byte — the foundation of the CI serving
    determinism gate. *)

type request = {
  rq_id : int;  (** 0-based, in arrival order *)
  rq_arrival : Gem_sim.Time.cycles;  (** cycles from the serving origin *)
}

type spec =
  | Poisson of { rate_rps : float }
      (** exponential inter-arrival gaps with mean [1e9 / rate] cycles
          (requests per second at 1 GHz) *)
  | Bursty of { rate_rps : float; burst : int }
      (** bursts of [burst] back-to-back requests; burst starts are
          Poisson with the mean spaced so the long-run rate is
          [rate_rps] *)
  | Trace of string
      (** arrival cycles read from a file: one integer per line, [#]
          comments and blank lines ignored *)

val spec_of_string : string -> (spec, string) result
(** Parses ["poisson:RATE"], ["bursty:RATE:BURST"] and ["trace:FILE"]. *)

val spec_to_string : spec -> string
(** Round-trips with {!spec_of_string} (rates rendered with [%g]). *)

val generate :
  spec -> seed:int -> duration:Gem_sim.Time.cycles -> request array
(** The arrival stream: requests with cycles in [[0, duration)], sorted by
    arrival time (ties keep generation order), ids [0..n-1]. Equal
    arguments produce equal arrays. Trace files are filtered to the
    duration window like generated streams; a malformed line or an
    unreadable file raises [Invalid_argument]/[Sys_error]. *)
