(** The accelerator's RoCC instruction set.

    Gemmini is programmed through RISC-V custom instructions, each carrying
    a 7-bit funct plus two 64-bit source registers. This module defines the
    command set (the low-level layer of the paper's multi-level programming
    interface), together with a bit-exact encoder/decoder for the packed
    register formats — the same packing the C intrinsics perform:

    - data movers: [Mvin] (DRAM->scratchpad/accumulator, three configurable
      stride channels) and [Mvout] (accumulator/scratchpad->DRAM, with
      optional activation and max-pooling applied on the way out);
    - execution: [Preload] (stage B and the C destination) and the two
      compute flavours ([Compute_preloaded] re-preloads, [Compute_accumulated]
      reuses the resident stationary operand);
    - configuration: [Config_ex] / [Config_ld] / [Config_st];
    - the CISC-style loop instruction: [Loop_ws] executes an entire tiled
      matmul from one command (after three loop-configuration commands),
      so the host does not pay a dispatch round trip per mvin/compute —
      Gemmini's answer to host-issue bottlenecks;
    - [Flush] (TLB flush) and [Fence].

    All addresses in [Mvin]/[Mvout] are {e virtual}: translation happens in
    the DMA through the {!Gem_vm.Hierarchy}. *)

type pool_cfg = { window : int; stride : int; padding : int }

type config_ex = {
  dataflow : [ `WS | `OS ];
  activation : Peripheral.activation;
  sys_shift : int;  (** OS-mode output rounding shift; 0..63 *)
  a_transpose : bool;
  b_transpose : bool;
}

type config_ld = {
  ld_stride_bytes : int;  (** DRAM row stride for mvin; 0..2^32-1 *)
  ld_scale : float;  (** multiplier applied while loading (mvin scaling) *)
  ld_shrunk : bool;
      (** the DRAM data is input-type even though the destination is the
          accumulator: each element is widened on the way in (used to
          stream int8 feature maps into the int32 accumulator, e.g. for
          residual additions) *)
  ld_id : int;  (** which of the three mvin channels; 0..2 *)
}

type config_st = {
  st_stride_bytes : int;
  st_activation : Peripheral.activation;
  st_scale : float;  (** accumulator read-out multiplier (ACC_SCALE) *)
  st_pool : pool_cfg option;
}

type mv = {
  dram_addr : int;  (** virtual address; 0..2^48-1 *)
  local : Local_addr.t;
  cols : int;  (** 1..2^16-1 *)
  rows : int;
}

type compute_args = {
  a : Local_addr.t;
  bd : Local_addr.t;
  a_cols : int;
  a_rows : int;
  bd_cols : int;
  bd_rows : int;
}

type loop_bounds = {
  lw_m : int;  (** problem dims in elements; 1..2^16-1 each *)
  lw_k : int;
  lw_n : int;
  lw_has_bias : bool;
  lw_activation : Peripheral.activation;
}

type loop_addrs = { lw_a : int; lw_b : int }  (** virtual addresses *)

type loop_outs = { lw_bias : int; lw_c : int }

type loop_strides = {
  lw_a_stride : int;  (** DRAM row strides in bytes; 0..2^24-1 *)
  lw_b_stride : int;
  lw_c_stride : int;
  lw_scale : float;  (** accumulator read-out scale *)
}

type t =
  | Config_ex of config_ex
  | Config_ld of config_ld
  | Config_st of config_st
  | Mvin of mv * int  (** channel id 0..2 *)
  | Mvout of mv
  | Preload of { b : Local_addr.t; c : Local_addr.t; b_cols : int; b_rows : int; c_cols : int; c_rows : int }
  | Compute_preloaded of compute_args
  | Compute_accumulated of compute_args
  | Loop_ws_bounds of loop_bounds
  | Loop_ws_addrs of loop_addrs
  | Loop_ws_outs of loop_outs
  | Loop_ws of loop_strides
      (** fires the loop using the three preceding configuration commands *)
  | Flush
  | Fence

(** Packed RoCC encoding. *)
type insn = { funct : int; rs1 : int64; rs2 : int64 }

val encode : t -> insn
(** Raises [Invalid_argument] when a field is out of its encodable range. *)

val decode : insn -> (t, string) result
(** Exact inverse of {!encode} on its image. *)

val validate : Params.t -> t -> (unit, Gem_sim.Fault.cause) result
(** Architectural validity of a command against one accelerator instance:
    field ranges, dataflow support, finite scale factors, and
    scratchpad/accumulator bounds for every local access. [Ok ()] means
    the controller may dispatch it; [Error cause] is the structured fault
    the controller raises as a trap instead of executing. Commands
    accepted by {!encode} can still be rejected here — encoding checks
    bit-widths, validation checks meaning. *)

val funct_name : int -> string

val mnemonic : t -> string
(** Constant short name of the command ("mvin", "compute.preloaded", ...);
    the span name used by per-command tracing. Allocation-free. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
