type t = int (* the raw 32-bit encoding *)

let acc_bit = 1 lsl 31
let accumulate_bit = 1 lsl 30
let full_bit = 1 lsl 29
let row_mask = (1 lsl 29) - 1
let mask32 = 0xFFFF_FFFF

let garbage = mask32

let check_row row =
  if row < 0 || row > row_mask then
    invalid_arg (Printf.sprintf "Local_addr: row %d out of range" row)

let scratchpad ~row =
  check_row row;
  row

let accumulator ?(accumulate = false) ?(full_width = false) ~row () =
  check_row row;
  acc_bit lor (if accumulate then accumulate_bit else 0)
  lor (if full_width then full_bit else 0)
  lor row

let is_garbage t = t = garbage
let is_accumulator t = (not (is_garbage t)) && t land acc_bit <> 0
let accumulate_flag t = (not (is_garbage t)) && t land accumulate_bit <> 0
let full_width_flag t = (not (is_garbage t)) && t land full_bit <> 0
let row t = t land row_mask

let add_rows t n =
  if is_garbage t then t
  else begin
    let r = row t + n in
    check_row r;
    (t land lnot row_mask) lor r
  end

let to_bits t = t land mask32
let of_bits bits = bits land mask32

let to_string t =
  if is_garbage t then "GARBAGE"
  else
    Printf.sprintf "%s[%d]%s%s"
      (if is_accumulator t then "acc" else "sp")
      (row t)
      (if accumulate_flag t then "+acc" else "")
      (if full_width_flag t then "+full" else "")

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) (b : t) = a = b
