open Gem_util
open Gem_sim

type ex_cfg = {
  dataflow : [ `WS | `OS ];
  activation : Peripheral.activation;
  sys_shift : int;
  a_transpose : bool;
  b_transpose : bool;
}

type ld_cfg = { stride : int; scale : float; shrunk : bool }

type st_cfg = {
  st_stride : int;
  st_act : Peripheral.activation;
  st_scale : float;
  st_pool : Isa.pool_cfg option;
}

type preload_state = {
  pl_bd : Local_addr.t;
  pl_c : Local_addr.t;
  pl_bd_rows : int;
  pl_bd_cols : int;
  pl_c_rows : int;
  pl_c_cols : int;
}

type os_resident = { os_data : Matrix.t; os_dest : Local_addr.t }

type mutable_stats = {
  mutable insns : int;
  mutable loop_micro_ops : int;
  mutable loads : int;
  mutable stores : int;
  mutable computes : int;
  mutable macs : int;
  mutable host_cycles : int;
  mutable flushes : int;
}

type t = {
  p : Params.t;
  name : string;
  host : string; (* host-interface component name: <name>/host *)
  core : int;
  engine : Engine.t;
  spad : Scratchpad.t;
  mesh : Mesh.t;
  dma : Dma.t;
  functional : bool;
  mutable issue_cycles : int;
  (* configuration state *)
  mutable ex_cfg : ex_cfg;
  ld_cfgs : ld_cfg array; (* three mvin channels *)
  mutable st_cfg : st_cfg;
  mutable preload : preload_state option;
  mutable loop_bounds : Isa.loop_bounds option;
  mutable loop_addrs : Isa.loop_addrs option;
  mutable loop_outs : Isa.loop_outs option;
  mutable resident_b : Matrix.t option; (* WS: weights currently in PEs *)
  mutable os_acc : os_resident option; (* OS: results resident in PEs *)
  (* The decoupled pipelines are engine-owned resources; their busy_until
     is the old ld_free/ex_free/st_free. *)
  ld_pipe : Resource.t;
  ex_pipe : Resource.t;
  st_pipe : Resource.t;
  (* issue cursor and data-landing high-water marks *)
  mutable issue : Time.cycles;
  mutable last_ld_finish : Time.cycles;
  mutable last_st_finish : Time.cycles;
  (* retire high-water mark of the command currently executing; the close
     stamp of its span *)
  mutable cmd_finish : Time.cycles;
  (* in-order retirement buffer, a preallocated ring of max_in_flight+1
     finish times (a Queue cell per retired command was the hottest
     allocation in the issue path). [rob_head] indexes the oldest. *)
  rob : Time.cycles array;
  mutable rob_head : int;
  mutable rob_len : int;
  s : mutable_stats;
}

let flush_cost = 10

let create ?engine ?(name = "accel") ?(core = 0) ~params ~port ~tlb
    ~issue_cycles () =
  let p = Params.validate_exn params in
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let s =
    {
      insns = 0;
      loop_micro_ops = 0;
      loads = 0;
      stores = 0;
      computes = 0;
      macs = 0;
      host_cycles = 0;
      flushes = 0;
    }
  in
  Engine.register_probe engine ~kind:Engine.Host ~name:(name ^ "/host")
    ~sample:(fun () ->
      {
        Engine.p_requests = s.insns;
        p_busy = s.host_cycles;
        p_wait = 0;
        p_note =
          Printf.sprintf "%s insns, %s loop micro-ops"
            (Gem_util.Table.fmt_int s.insns)
            (Gem_util.Table.fmt_int s.loop_micro_ops);
      });
  (* Explicit lets fix the registry order: pipes, then DMA, then the
     scratchpad banks. *)
  let ld_pipe = Engine.resource engine ~kind:Engine.Pipeline ~name:(name ^ "/ld") in
  let ex_pipe = Engine.resource engine ~kind:Engine.Pipeline ~name:(name ^ "/mesh") in
  let st_pipe = Engine.resource engine ~kind:Engine.Pipeline ~name:(name ^ "/st") in
  let dma = Dma.create ~engine ~name:(name ^ "/dma") ~core p ~port ~tlb in
  let spad = Scratchpad.create ~engine ~name:(name ^ "/spad") ~core p in
  {
    p;
    name;
    host = name ^ "/host";
    core;
    engine;
    spad;
    (* The mesh shares the ex-pipe's registry name so its faults land in
       that profile row (it registers no resource of its own). *)
    mesh = Mesh.create ~engine ~name:(name ^ "/mesh") ~core p;
    dma;
    functional = Option.is_some port.Dma.read_data;
    issue_cycles;
    ex_cfg =
      {
        dataflow = (if Dataflow.supports p.Params.dataflow `WS then `WS else `OS);
        activation = Peripheral.No_activation;
        sys_shift = 0;
        a_transpose = false;
        b_transpose = false;
      };
    ld_cfgs = Array.init 3 (fun _ -> { stride = 0; scale = 1.0; shrunk = false });
    st_cfg =
      { st_stride = 0; st_act = Peripheral.No_activation; st_scale = 1.0; st_pool = None };
    preload = None;
    loop_bounds = None;
    loop_addrs = None;
    loop_outs = None;
    resident_b = None;
    os_acc = None;
    ld_pipe;
    ex_pipe;
    st_pipe;
    issue = 0;
    last_ld_finish = 0;
    last_st_finish = 0;
    cmd_finish = 0;
    rob = Array.make (p.Params.max_in_flight + 1) 0;
    rob_head = 0;
    rob_len = 0;
    s;
  }

let params t = t.p
let engine t = t.engine
let scratchpad t = t.spad
let dma t = t.dma
let tlb t = Dma.tlb t.dma

let now t = t.issue

(* Dispatch-stage faults are attributed to the host-interface component:
   the RoCC queue is where a malformed command is caught. *)
let trap t cause =
  Engine.trap t.engine
    (Fault.make ~core:t.core ~component:t.host ~cycle:t.issue cause)

let host_component t = t.host

let finish_time t =
  Mathx.imax3 t.last_ld_finish
    (Resource.busy_until t.ex_pipe)
    (Mathx.imax3 t.last_st_finish
       (Resource.busy_until t.st_pipe)
       (max (Resource.busy_until t.ld_pipe) t.issue))

let set_issue_cycles t n = t.issue_cycles <- n

let host_work t ~cycles =
  if cycles < 0 then invalid_arg "Controller.host_work: negative cycles";
  (* The host cannot run ahead while its accelerator queue is full either,
     but host work itself simply occupies the issue cursor. *)
  t.issue <- t.issue + cycles;
  t.s.host_cycles <- t.s.host_cycles + cycles

let advance_to t ~cycle =
  (* Idle time, not work: the issue cursor moves forward but no host
     cycles are charged and no resource is occupied. A serving core
     parked between request arrivals burns wall-clock, not utilization. *)
  if cycle > t.issue then t.issue <- cycle

let rob_clear t =
  t.rob_head <- 0;
  t.rob_len <- 0

let retire t finish =
  if finish > t.cmd_finish then t.cmd_finish <- finish;
  let cap = Array.length t.rob in
  t.rob.((t.rob_head + t.rob_len) mod cap) <- finish;
  t.rob_len <- t.rob_len + 1;
  if t.rob_len > t.p.Params.max_in_flight then begin
    let oldest = t.rob.(t.rob_head) in
    t.rob_head <- (t.rob_head + 1) mod cap;
    t.rob_len <- t.rob_len - 1;
    if oldest > t.issue then t.issue <- oldest
  end

(* --- functional helpers ------------------------------------------------- *)

let elem_bytes t la =
  if Local_addr.is_accumulator la then Dtype.bytes t.p.Params.acc_type
  else Dtype.bytes t.p.Params.input_type

(* Convert DMA bytes to stored elements. Scratchpad rows store input-type
   values (sign-extended); accumulator rows store acc-type values
   (little-endian). *)
let bytes_to_elems la ~cols (bytes : int array) =
  if Local_addr.is_accumulator la then
    Array.init cols (fun i ->
        let b0 = bytes.(4 * i)
        and b1 = bytes.((4 * i) + 1)
        and b2 = bytes.((4 * i) + 2)
        and b3 = bytes.((4 * i) + 3) in
        let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
        (v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32))
  else
    Array.init cols (fun i ->
        let b = bytes.(i) in
        if b >= 128 then b - 256 else b)

let elems_to_bytes la (elems : int array) =
  if Local_addr.is_accumulator la then begin
    let out = Array.make (4 * Array.length elems) 0 in
    Array.iteri
      (fun i v ->
        out.(4 * i) <- v land 0xFF;
        out.((4 * i) + 1) <- (v asr 8) land 0xFF;
        out.((4 * i) + 2) <- (v asr 16) land 0xFF;
        out.((4 * i) + 3) <- (v asr 24) land 0xFF)
      elems;
    out
  end
  else Array.map (fun v -> v land 0xFF) elems

(* --- command handlers ---------------------------------------------------- *)

let do_mvin t (mv : Isa.mv) id =
  t.s.loads <- t.s.loads + 1;
  let cfg = t.ld_cfgs.(id) in
  let eb = if cfg.shrunk then Dtype.bytes t.p.Params.input_type else elem_bytes t mv.Isa.local in
  let row_bytes = mv.Isa.cols * eb in
  let stride = cfg.stride in
  let start = Resource.next_free t.ld_pipe ~now:t.issue in
  let tr =
    Dma.mvin t.dma ~now:start ~vaddr:mv.Isa.dram_addr ~stride_bytes:stride
      ~rows:mv.Isa.rows ~row_bytes
  in
  if t.functional then begin
    let dim = Params.dim_cols t.p in
    Array.iteri
      (fun r bytes ->
        let src_la =
          (* shrunk loads carry input-type bytes even into the accumulator *)
          if cfg.shrunk then Local_addr.scratchpad ~row:0 else mv.Isa.local
        in
        let elems = bytes_to_elems src_la ~cols:mv.Isa.cols bytes in
        let elems =
          if cfg.scale = 1.0 then elems
          else
            Array.map
              (fun v ->
                Peripheral.scale_to
                  (if Local_addr.is_accumulator mv.Isa.local then
                     t.p.Params.acc_type
                   else t.p.Params.input_type)
                  ~scale:cfg.scale v)
              elems
        in
        (* A wide mvin (cols > DIM) fills [cols/DIM] adjacent DIM-blocks:
           row r of block b lands at local + b*DIM + r, exactly like the
           hardware's MAX_BLOCK_LEN moves. *)
        let nblocks = Mathx.ceil_div mv.Isa.cols dim in
        for b = 0 to nblocks - 1 do
          let lo = b * dim in
          let len = min dim (mv.Isa.cols - lo) in
          Scratchpad.write_row t.spad mv.Isa.local
            ~offset:((b * dim) + r)
            (Array.sub elems lo len)
        done)
      tr.Dma.rows_data
  end;
  (* The engine streams on; only consumers of the data wait for it. *)
  Engine.occupy t.engine t.ld_pipe ~now:t.issue ~start ~until:tr.Dma.engine_free;
  t.last_ld_finish <- max t.last_ld_finish tr.Dma.finish;
  retire t tr.Dma.finish

let apply_store_path t (elems : int array) =
  (* Accumulator read-out: scale to input type, then activation. *)
  Array.map
    (fun v ->
      let scaled = Peripheral.scale_to t.p.Params.input_type ~scale:t.st_cfg.st_scale v in
      Peripheral.apply_activation t.st_cfg.st_act scaled)
    elems

let do_mvout t (mv : Isa.mv) =
  t.s.stores <- t.s.stores + 1;
  let full = Local_addr.full_width_flag mv.Isa.local in
  let out_eb =
    if Local_addr.is_accumulator mv.Isa.local && not full then
      Dtype.bytes t.p.Params.input_type
    else elem_bytes t mv.Isa.local
  in
  let row_bytes = mv.Isa.cols * out_eb in
  let stride = t.st_cfg.st_stride in
  (* Stores read data produced by computes (matmul C tiles) or by earlier
     loads (resadd accumulator contents), so they wait on both pipes. *)
  let ready =
    Mathx.imax3 t.issue (Resource.busy_until t.ex_pipe) t.last_ld_finish
  in
  let start = Resource.next_free t.st_pipe ~now:ready in
  let engine_free, finish =
    if t.functional then begin
      let rows_data =
        Array.init mv.Isa.rows (fun r ->
            let elems = Scratchpad.read_row t.spad mv.Isa.local ~offset:r in
            let elems = Array.sub elems 0 mv.Isa.cols in
            let elems =
              if Local_addr.is_accumulator mv.Isa.local && not full then
                apply_store_path t elems
              else elems
            in
            let out_la =
              (* Encode destination element width through the address the
                 bytes are derived from: scaled-down rows leave as input
                 type. *)
              if Local_addr.is_accumulator mv.Isa.local && not full then
                Local_addr.scratchpad ~row:0
              else mv.Isa.local
            in
            elems_to_bytes out_la elems)
      in
      Dma.mvout t.dma ~now:start ~vaddr:mv.Isa.dram_addr ~stride_bytes:stride
        ~rows_data ~row_bytes
    end
    else
      Dma.mvout_timing_rows t.dma ~now:start ~vaddr:mv.Isa.dram_addr
        ~stride_bytes:stride ~rows:mv.Isa.rows ~row_bytes
  in
  Engine.occupy t.engine t.st_pipe ~now:ready ~start ~until:engine_free;
  t.last_st_finish <- max t.last_st_finish finish;
  retire t finish

let do_preload t ~b ~c ~b_rows ~b_cols ~c_rows ~c_cols =
  (* In OS mode a new preload flushes the resident result tile first. *)
  (match (t.ex_cfg.dataflow, t.os_acc) with
  | `OS, Some { os_data; os_dest } ->
      if t.functional && not (Local_addr.is_garbage os_dest) then begin
        let scaled =
          if Local_addr.is_accumulator os_dest then os_data
          else
            Matrix.map
              (fun v ->
                Dtype.saturate t.p.Params.input_type
                  (Fixed.rounding_shift v t.ex_cfg.sys_shift))
              os_data
        in
        Scratchpad.write_block t.spad os_dest scaled
      end;
      t.os_acc <- None
  | _ -> ());
  t.preload <-
    Some
      {
        pl_bd = b;
        pl_c = c;
        pl_bd_rows = b_rows;
        pl_bd_cols = b_cols;
        pl_c_rows = c_rows;
        pl_c_cols = c_cols;
      };
  retire t t.issue

let read_block_or_zeros t la ~rows ~cols =
  if Local_addr.is_garbage la then Matrix.create ~rows ~cols
  else Scratchpad.read_block t.spad la ~rows ~cols

let do_compute t (args : Isa.compute_args) ~preloaded =
  t.s.computes <- t.s.computes + 1;
  let dim = Params.dim t.p in
  let a_rows = min args.Isa.a_rows dim and a_cols = min args.Isa.a_cols dim in
  match t.ex_cfg.dataflow with
  | `WS ->
      let pl =
        match t.preload with
        | Some pl -> pl
        | None -> trap t (Fault.Illegal_inst "WS compute without preload")
      in
      let k = a_cols and out_cols = pl.pl_c_cols in
      let cycles =
        Mesh.pipelined_block_cycles t.p ~dataflow:`WS ~rows:a_rows ~k
          ~cols:out_cols ~preload:preloaded
      in
      let ex_done =
        Engine.acquire t.engine t.ex_pipe
          ~now:(max t.issue t.last_ld_finish)
          ~occupancy:cycles
      in
      t.s.macs <- t.s.macs + (a_rows * k * out_cols);
      if t.functional then begin
        let b =
          if preloaded then begin
            let b =
              read_block_or_zeros t pl.pl_bd ~rows:pl.pl_bd_rows
                ~cols:pl.pl_bd_cols
            in
            let b = if t.ex_cfg.b_transpose then Matrix.transpose b else b in
            t.resident_b <- Some b;
            b
          end
          else
            match t.resident_b with
            | Some b -> b
            | None ->
                trap t
                  (Fault.Illegal_inst
                     "accumulate-compute without resident weights")
        in
        let a =
          read_block_or_zeros t args.Isa.a ~rows:a_rows ~cols:a_cols
        in
        let a = if t.ex_cfg.a_transpose then Matrix.transpose a else a in
        let d =
          if Local_addr.is_garbage args.Isa.bd then None
          else
            Some
              (Scratchpad.read_block t.spad args.Isa.bd
                 ~rows:(min args.Isa.bd_rows dim)
                 ~cols:(min args.Isa.bd_cols dim))
        in
        (* Zero-pad B to K rows if needed by taking only meaningful dims. *)
        let result =
          Mesh.run_matmul t.mesh ~dataflow:`WS ~a ~b ?d ()
        in
        if not (Local_addr.is_garbage pl.pl_c) then
          Scratchpad.write_block t.spad pl.pl_c result.Mesh.out
      end;
      if preloaded then t.preload <- Some { pl with pl_bd = Local_addr.garbage };
      retire t ex_done
  | `OS ->
      let pl =
        match t.preload with
        | Some pl -> pl
        | None -> trap t (Fault.Illegal_inst "OS compute without preload")
      in
      let k = a_cols in
      let out_rows = a_rows and out_cols = min args.Isa.bd_cols dim in
      let cycles =
        Mesh.pipelined_block_cycles t.p ~dataflow:`OS ~rows:out_rows ~k
          ~cols:out_cols ~preload:false
      in
      let ex_done =
        Engine.acquire t.engine t.ex_pipe
          ~now:(max t.issue t.last_ld_finish)
          ~occupancy:cycles
      in
      t.s.macs <- t.s.macs + (out_rows * k * out_cols);
      if t.functional then begin
        let a = read_block_or_zeros t args.Isa.a ~rows:out_rows ~cols:k in
        let a = if t.ex_cfg.a_transpose then Matrix.transpose a else a in
        let b =
          read_block_or_zeros t args.Isa.bd ~rows:(min args.Isa.bd_rows dim)
            ~cols:out_cols
        in
        let b = if t.ex_cfg.b_transpose then Matrix.transpose b else b in
        let d =
          match t.os_acc with
          | Some { os_data; _ } when not preloaded -> Some os_data
          | _ ->
              if Local_addr.is_garbage pl.pl_bd then None
              else
                Some
                  (Scratchpad.read_block t.spad pl.pl_bd ~rows:pl.pl_bd_rows
                     ~cols:pl.pl_bd_cols)
        in
        let result = Mesh.run_matmul t.mesh ~dataflow:`OS ~a ~b ?d () in
        t.os_acc <- Some { os_data = result.Mesh.out; os_dest = pl.pl_c }
      end;
      retire t ex_done

let do_flush t =
  t.s.flushes <- t.s.flushes + 1;
  Gem_vm.Hierarchy.flush (tlb t);
  t.issue <- t.issue + flush_cost

let do_fence t =
  (* Drain everything; also flush an OS-resident tile to its destination. *)
  (match (t.os_acc, t.functional) with
  | Some { os_data; os_dest }, true when not (Local_addr.is_garbage os_dest) ->
      let scaled =
        if Local_addr.is_accumulator os_dest then os_data
        else
          Matrix.map
            (fun v ->
              Dtype.saturate t.p.Params.input_type
                (Fixed.rounding_shift v t.ex_cfg.sys_shift))
            os_data
      in
      Scratchpad.write_block t.spad os_dest scaled
  | _ -> ());
  t.os_acc <- None;
  t.issue <- finish_time t;
  rob_clear t

(* --- the LOOP_WS hardware sequencer ----------------------------------------

   Mirrors Gemmini's LoopMatmul.scala: once the host has staged bounds,
   operand addresses and output addresses with the three configuration
   commands, a single LOOP_WS executes the whole double-buffered tiled
   matmul. Sub-commands are issued by the sequencer at one cycle each
   instead of the host's RoCC dispatch cost — the point of the CISC
   extension. The staging heuristic is the hardware twin of the software
   library's (grow tile dims round-robin while the tiles fit). *)

let loop_tile_factors t ~bi ~bk ~bj =
  let dim = Params.dim t.p in
  let fits (ti, tk, tj) =
    (2 * ((ti * tk) + (tk * tj)) * dim) <= Params.sp_rows t.p
    && ti * tj * dim <= Params.acc_rows t.p
  in
  let tile = ref (1, 1, 1) in
  let continue = ref true in
  while !continue do
    continue := false;
    let try_bump f cap cur =
      let cand = f !tile in
      if cur < cap && fits cand then begin
        tile := cand;
        continue := true
      end
    in
    let ti, tk, tj = !tile in
    try_bump (fun (ti, tk, tj) -> (ti + 1, tk, tj)) bi ti;
    try_bump (fun (ti, tk, tj) -> (ti, tk, tj + 1)) bj tj;
    try_bump (fun (ti, tk, tj) -> (ti, tk + 1, tj)) bk tk
  done;
  !tile

let do_loop_ws t (strides : Isa.loop_strides) ~execute_sub =
  let bounds =
    match t.loop_bounds with
    | Some b -> b
    | None -> trap t (Fault.Illegal_inst "LOOP_WS without LOOP_WS_CONFIG_BOUNDS")
  in
  let addrs =
    match t.loop_addrs with
    | Some a -> a
    | None -> trap t (Fault.Illegal_inst "LOOP_WS without LOOP_WS_CONFIG_ADDRS")
  in
  let outs =
    match t.loop_outs with
    | Some o -> o
    | None -> trap t (Fault.Illegal_inst "LOOP_WS without LOOP_WS_CONFIG_OUTS")
  in
  let dim = Params.dim t.p in
  let m = bounds.Isa.lw_m and k = bounds.Isa.lw_k and n = bounds.Isa.lw_n in
  let bi = Mathx.ceil_div m dim
  and bk = Mathx.ceil_div k dim
  and bj = Mathx.ceil_div n dim in
  let ti, tk, tj = loop_tile_factors t ~bi ~bk ~bj in
  let a_stride = strides.Isa.lw_a_stride
  and b_stride = strides.Isa.lw_b_stride
  and c_stride = strides.Isa.lw_c_stride in
  let a_tile_rows = ti * tk * dim in
  let b_tile_rows = tk * tj * dim in
  let a_base parity = parity * a_tile_rows in
  let b_base parity = (2 * a_tile_rows) + (parity * b_tile_rows) in
  let c_base ii jj = ((ii * tj) + jj) * dim in
  let rows_of gi = min dim (m - (gi * dim)) in
  let kcols_of gk = min dim (k - (gk * dim)) in
  let ncols_of gj = min dim (n - (gj * dim)) in
  let max_block_len = 4 in
  (* Configure the mover/store channels once. *)
  execute_sub
    (Isa.Config_ex
       {
         Isa.dataflow = `WS;
         activation = Peripheral.No_activation;
         sys_shift = 0;
         a_transpose = false;
         b_transpose = false;
       });
  execute_sub (Isa.Config_ld { Isa.ld_stride_bytes = a_stride; ld_scale = 1.0; ld_shrunk = false; ld_id = 0 });
  execute_sub (Isa.Config_ld { Isa.ld_stride_bytes = b_stride; ld_scale = 1.0; ld_shrunk = false; ld_id = 1 });
  execute_sub (Isa.Config_ld { Isa.ld_stride_bytes = 0; ld_scale = 1.0; ld_shrunk = false; ld_id = 2 });
  execute_sub
    (Isa.Config_st
       {
         Isa.st_stride_bytes = c_stride;
         st_activation = bounds.Isa.lw_activation;
         st_scale = strides.Isa.lw_scale;
         st_pool = None;
       });
  let it = ref 0 in
  for i0 = 0 to Mathx.ceil_div bi ti - 1 do
    let vi = min ti (bi - (i0 * ti)) in
    for j0 = 0 to Mathx.ceil_div bj tj - 1 do
      let vj = min tj (bj - (j0 * tj)) in
      if bounds.Isa.lw_has_bias then
        for ii = 0 to vi - 1 do
          for jj = 0 to vj - 1 do
            let gi = (i0 * ti) + ii and gj = (j0 * tj) + jj in
            execute_sub
              (Isa.Mvin
                 ( {
                     Isa.dram_addr = outs.Isa.lw_bias + (gj * dim * 4);
                     local = Local_addr.accumulator ~row:(c_base ii jj) ();
                     cols = ncols_of gj;
                     rows = rows_of gi;
                   },
                   2 ))
          done
        done;
      for k0 = 0 to Mathx.ceil_div bk tk - 1 do
        let vk = min tk (bk - (k0 * tk)) in
        let parity = !it land 1 in
        incr it;
        for ii = 0 to vi - 1 do
          let gi = (i0 * ti) + ii in
          let kk = ref 0 in
          while !kk < vk do
            let w = min max_block_len (vk - !kk) in
            let gk = (k0 * tk) + !kk in
            execute_sub
              (Isa.Mvin
                 ( {
                     Isa.dram_addr = addrs.Isa.lw_a + (gi * dim * a_stride) + (gk * dim);
                     local = Local_addr.scratchpad ~row:(a_base parity + (((ii * tk) + !kk) * dim));
                     cols = min (w * dim) (k - (gk * dim));
                     rows = rows_of gi;
                   },
                   0 ));
            kk := !kk + w
          done
        done;
        for kk = 0 to vk - 1 do
          let gk = (k0 * tk) + kk in
          let jj = ref 0 in
          while !jj < vj do
            let w = min max_block_len (vj - !jj) in
            let gj = (j0 * tj) + !jj in
            execute_sub
              (Isa.Mvin
                 ( {
                     Isa.dram_addr = addrs.Isa.lw_b + (gk * dim * b_stride) + (gj * dim);
                     local = Local_addr.scratchpad ~row:(b_base parity + (((kk * tj) + !jj) * dim));
                     cols = min (w * dim) (n - (gj * dim));
                     rows = kcols_of gk;
                   },
                   1 ));
            jj := !jj + w
          done
        done;
        for kk = 0 to vk - 1 do
          let gk = (k0 * tk) + kk in
          for jj = 0 to vj - 1 do
            let gj = (j0 * tj) + jj in
            let b_local =
              Local_addr.scratchpad ~row:(b_base parity + (((kk * tj) + jj) * dim))
            in
            for ii = 0 to vi - 1 do
              let gi = (i0 * ti) + ii in
              let first_of_b = ii = 0 in
              let accumulate = bounds.Isa.lw_has_bias || k0 > 0 || kk > 0 in
              execute_sub
                (Isa.Preload
                   {
                     b = (if first_of_b then b_local else Local_addr.garbage);
                     c = Local_addr.accumulator ~accumulate ~row:(c_base ii jj) ();
                     b_rows = kcols_of gk;
                     b_cols = ncols_of gj;
                     c_rows = rows_of gi;
                     c_cols = ncols_of gj;
                   });
              let args =
                {
                  Isa.a = Local_addr.scratchpad ~row:(a_base parity + (((ii * tk) + kk) * dim));
                  bd = Local_addr.garbage;
                  a_cols = kcols_of gk;
                  a_rows = rows_of gi;
                  bd_cols = ncols_of gj;
                  bd_rows = rows_of gi;
                }
              in
              execute_sub
                (if first_of_b then Isa.Compute_preloaded args
                 else Isa.Compute_accumulated args)
            done
          done
        done
      done;
      for ii = 0 to vi - 1 do
        for jj = 0 to vj - 1 do
          let gi = (i0 * ti) + ii and gj = (j0 * tj) + jj in
          execute_sub
            (Isa.Mvout
               {
                 Isa.dram_addr = outs.Isa.lw_c + (gi * dim * c_stride) + (gj * dim);
                 local = Local_addr.accumulator ~row:(c_base ii jj) ();
                 cols = ncols_of gj;
                 rows = rows_of gi;
               })
        done
      done
    done
  done

(* Per-command span support. [span_track] is the unit that services a
   command — the trace track its span lands on. Staging commands
   (configs, Preload, the three loop-configuration commands) occupy no
   unit and would only add noise at LOOP_WS micro-op volume, so they get
   no span. *)
let spanned = function
  | Isa.Mvin _ | Isa.Mvout _ | Isa.Compute_preloaded _
  | Isa.Compute_accumulated _ | Isa.Loop_ws _ | Isa.Flush | Isa.Fence ->
      true
  | Isa.Config_ex _ | Isa.Config_ld _ | Isa.Config_st _ | Isa.Preload _
  | Isa.Loop_ws_bounds _ | Isa.Loop_ws_addrs _ | Isa.Loop_ws_outs _ ->
      false

let span_track t = function
  | Isa.Mvin _ -> Resource.name t.ld_pipe
  | Isa.Mvout _ -> Resource.name t.st_pipe
  | Isa.Compute_preloaded _ | Isa.Compute_accumulated _ ->
      Resource.name t.ex_pipe
  | _ -> t.host

let span_args t cmd =
  match cmd with
  | Isa.Mvin (mv, id) ->
      [
        ("rows", string_of_int mv.Isa.rows);
        ("cols", string_of_int mv.Isa.cols);
        ("ch", string_of_int id);
      ]
  | Isa.Mvout mv ->
      [
        ("rows", string_of_int mv.Isa.rows);
        ("cols", string_of_int mv.Isa.cols);
      ]
  | Isa.Compute_preloaded args | Isa.Compute_accumulated args ->
      let dim = Params.dim t.p in
      let rows = min args.Isa.a_rows dim and k = min args.Isa.a_cols dim in
      (* Mirrors do_compute: WS output width comes from the staged
         preload, OS from the command itself. *)
      let cols =
        match (t.ex_cfg.dataflow, t.preload) with
        | `WS, Some pl -> pl.pl_c_cols
        | _ -> min args.Isa.bd_cols dim
      in
      let preload =
        match cmd with Isa.Compute_preloaded _ -> true | _ -> false
      in
      Mesh.block_attrs ~dataflow:t.ex_cfg.dataflow ~rows ~k ~cols ~preload
  | Isa.Loop_ws _ -> (
      match t.loop_bounds with
      | Some b ->
          [
            ("m", string_of_int b.Isa.lw_m);
            ("k", string_of_int b.Isa.lw_k);
            ("n", string_of_int b.Isa.lw_n);
          ]
      | None -> [])
  | _ -> []

let rec execute_with t ~issue_cost ~count_insn (cmd : Isa.t) =
  (* Validation runs before any state moves (insn counters, issue cursor):
     a trapped command has no side effects, so a recovery policy can
     repair the cause and re-issue it cleanly. *)
  (match Isa.validate t.p cmd with
  | Ok () -> ()
  | Error cause -> trap t cause);
  if count_insn then t.s.insns <- t.s.insns + 1
  else t.s.loop_micro_ops <- t.s.loop_micro_ops + 1;
  (* Span opens at dispatch, closes at the retire high-water mark the
     command reaches — so a span covers queueing as well as service.
     LOOP_WS micro-ops fold into the parent LOOP_WS span. *)
  let span = count_insn && Engine.live t.engine && spanned cmd in
  if span then begin
    t.cmd_finish <- t.issue;
    Engine.emit t.engine
      (Engine.Span_open
         {
           component = span_track t cmd;
           time = t.issue;
           name = Isa.mnemonic cmd;
           cat = "command";
           args = span_args t cmd;
         })
  end;
  t.issue <- t.issue + issue_cost;
  (match cmd with
  | Isa.Config_ex c ->
      t.ex_cfg <-
        {
          dataflow = c.Isa.dataflow;
          activation = c.Isa.activation;
          sys_shift = c.Isa.sys_shift;
          a_transpose = c.Isa.a_transpose;
          b_transpose = c.Isa.b_transpose;
        }
  | Isa.Config_ld c ->
      t.ld_cfgs.(c.Isa.ld_id) <-
        {
          stride = c.Isa.ld_stride_bytes;
          scale = c.Isa.ld_scale;
          shrunk = c.Isa.ld_shrunk;
        }
  | Isa.Config_st c ->
      t.st_cfg <-
        {
          st_stride = c.Isa.st_stride_bytes;
          st_act = c.Isa.st_activation;
          st_scale = c.Isa.st_scale;
          st_pool = c.Isa.st_pool;
        }
  | Isa.Mvin (mv, id) -> do_mvin t mv id
  | Isa.Mvout mv -> do_mvout t mv
  | Isa.Preload { b; c; b_cols; b_rows; c_cols; c_rows } ->
      do_preload t ~b ~c ~b_rows ~b_cols ~c_rows ~c_cols
  | Isa.Compute_preloaded args -> do_compute t args ~preloaded:true
  | Isa.Compute_accumulated args -> do_compute t args ~preloaded:false
  | Isa.Loop_ws_bounds b -> t.loop_bounds <- Some b
  | Isa.Loop_ws_addrs a -> t.loop_addrs <- Some a
  | Isa.Loop_ws_outs o -> t.loop_outs <- Some o
  | Isa.Loop_ws strides ->
      (* The sequencer issues micro-ops at one cycle each, independent of
         the host's RoCC dispatch cost. *)
      do_loop_ws t strides
        ~execute_sub:(execute_with t ~issue_cost:1 ~count_insn:false)
  | Isa.Flush -> do_flush t
  | Isa.Fence -> do_fence t);
  if span then
    Engine.emit t.engine
      (Engine.Span_close
         {
           component = span_track t cmd;
           time = max t.issue t.cmd_finish;
           name = Isa.mnemonic cmd;
         })

let execute t cmd = execute_with t ~issue_cost:t.issue_cycles ~count_insn:true cmd

let execute_all t cmds = List.iter (execute t) cmds

type stats = {
  insns : int;
  loop_micro_ops : int;
  loads : int;
  stores : int;
  computes : int;
  macs : int;
  host_cycles : int;
  flushes : int;
  ld_busy : Time.cycles;
  ex_busy : Time.cycles;
  st_busy : Time.cycles;
}

let stats t =
  {
    insns = t.s.insns;
    loop_micro_ops = t.s.loop_micro_ops;
    loads = t.s.loads;
    stores = t.s.stores;
    computes = t.s.computes;
    macs = t.s.macs;
    host_cycles = t.s.host_cycles;
    flushes = t.s.flushes;
    ld_busy = Resource.busy_cycles t.ld_pipe;
    ex_busy = Resource.busy_cycles t.ex_pipe;
    st_busy = Resource.busy_cycles t.st_pipe;
  }

let utilization t =
  let total = finish_time t in
  if total = 0 then 0.
  else
    float_of_int t.s.macs
    /. (float_of_int total *. float_of_int (Params.pes t.p))

(* --- snapshot / restore ----------------------------------------------------

   Everything the next command's timing or decode depends on: the issue
   cursor and data-landing high-water marks, the reorder window, the staged
   configuration state, and the counters. The three pipes are engine-owned
   and travel with the engine snapshot. Functional tile state (resident_b /
   os_acc) is serialized when present; at a fenced layer boundary — the
   only place the runtime checkpoints — os_acc is always None. *)

module J = Jsonx

let activation_to_json = function
  | Peripheral.No_activation -> J.String "none"
  | Peripheral.Relu -> J.String "relu"
  | Peripheral.Relu6 { shift } -> J.List [ J.String "relu6"; J.Int shift ]

let activation_of_json = function
  | J.String "none" -> Peripheral.No_activation
  | J.String "relu" -> Peripheral.Relu
  | J.List [ J.String "relu6"; s ] -> Peripheral.Relu6 { shift = Snap.int s }
  | _ -> Snap.fail "bad activation"

let matrix_to_json (m : Matrix.t) =
  J.List (Array.to_list (Array.map Snap.of_int_array m))

let matrix_of_json j =
  Array.of_list (List.map Snap.int_array (Snap.list j))

let opt_to_json f = function None -> J.Null | Some v -> f v
let opt_of_json f = function J.Null -> None | j -> Some (f j)

let snapshot t =
  let ex_cfg_json =
    J.Obj
      [ ("dataflow", J.String (match t.ex_cfg.dataflow with `WS -> "ws" | `OS -> "os"));
        ("activation", activation_to_json t.ex_cfg.activation);
        ("sys_shift", J.Int t.ex_cfg.sys_shift);
        ("a_transpose", J.Bool t.ex_cfg.a_transpose);
        ("b_transpose", J.Bool t.ex_cfg.b_transpose) ]
  in
  let ld_cfg_json (c : ld_cfg) =
    J.Obj
      [ ("stride", J.Int c.stride); ("scale", J.Float c.scale);
        ("shrunk", J.Bool c.shrunk) ]
  in
  let st_cfg_json =
    J.Obj
      [ ("stride", J.Int t.st_cfg.st_stride);
        ("act", activation_to_json t.st_cfg.st_act);
        ("scale", J.Float t.st_cfg.st_scale);
        ( "pool",
          opt_to_json
            (fun (p : Isa.pool_cfg) ->
              Snap.of_int_list [ p.Isa.window; p.Isa.stride; p.Isa.padding ])
            t.st_cfg.st_pool ) ]
  in
  let preload_json pl =
    Snap.of_int_list
      [ Local_addr.to_bits pl.pl_bd; Local_addr.to_bits pl.pl_c;
        pl.pl_bd_rows; pl.pl_bd_cols; pl.pl_c_rows; pl.pl_c_cols ]
  in
  let bounds_json (b : Isa.loop_bounds) =
    J.Obj
      [ ("m", J.Int b.Isa.lw_m); ("k", J.Int b.Isa.lw_k); ("n", J.Int b.Isa.lw_n);
        ("bias", J.Bool b.Isa.lw_has_bias);
        ("act", activation_to_json b.Isa.lw_activation) ]
  in
  J.Obj
    [ ("issue", J.Int t.issue);
      ("last_ld_finish", J.Int t.last_ld_finish);
      ("last_st_finish", J.Int t.last_st_finish);
      ("cmd_finish", J.Int t.cmd_finish);
      ( "rob",
        Snap.of_int_list
          (List.init t.rob_len (fun k ->
               t.rob.((t.rob_head + k) mod Array.length t.rob))) );
      ( "stats",
        Snap.of_int_list
          [ t.s.insns; t.s.loop_micro_ops; t.s.loads; t.s.stores; t.s.computes;
            t.s.macs; t.s.host_cycles; t.s.flushes ] );
      ("ex_cfg", ex_cfg_json);
      ("ld_cfgs", J.List (Array.to_list (Array.map ld_cfg_json t.ld_cfgs)));
      ("st_cfg", st_cfg_json);
      ("preload", opt_to_json preload_json t.preload);
      ("loop_bounds", opt_to_json bounds_json t.loop_bounds);
      ( "loop_addrs",
        opt_to_json
          (fun (a : Isa.loop_addrs) ->
            Snap.of_int_list [ a.Isa.lw_a; a.Isa.lw_b ])
          t.loop_addrs );
      ( "loop_outs",
        opt_to_json
          (fun (o : Isa.loop_outs) ->
            Snap.of_int_list [ o.Isa.lw_bias; o.Isa.lw_c ])
          t.loop_outs );
      ("resident_b", opt_to_json matrix_to_json t.resident_b);
      ( "os_acc",
        opt_to_json
          (fun { os_data; os_dest } ->
            J.Obj
              [ ("data", matrix_to_json os_data);
                ("dest", J.Int (Local_addr.to_bits os_dest)) ])
          t.os_acc );
      ("spad", Scratchpad.snapshot ~with_data:t.functional t.spad);
      ("dma", Dma.snapshot t.dma) ]

let restore t j =
  t.issue <- Snap.get_int "issue" j;
  t.last_ld_finish <- Snap.get_int "last_ld_finish" j;
  t.last_st_finish <- Snap.get_int "last_st_finish" j;
  t.cmd_finish <- Snap.get_int "cmd_finish" j;
  rob_clear t;
  List.iter
    (fun c ->
      Gem_util.Snap.check ~what:"rob length"
        (t.rob_len < Array.length t.rob);
      t.rob.(t.rob_len) <- c;
      t.rob_len <- t.rob_len + 1)
    (Snap.int_list (Snap.member "rob" j));
  (match Snap.int_list (Snap.member "stats" j) with
  | [ insns; loop_micro_ops; loads; stores; computes; macs; host_cycles; flushes ] ->
      t.s.insns <- insns;
      t.s.loop_micro_ops <- loop_micro_ops;
      t.s.loads <- loads;
      t.s.stores <- stores;
      t.s.computes <- computes;
      t.s.macs <- macs;
      t.s.host_cycles <- host_cycles;
      t.s.flushes <- flushes
  | _ -> Snap.fail "controller stats: expected 8 counters");
  let ex = Snap.member "ex_cfg" j in
  t.ex_cfg <-
    {
      dataflow =
        (match Snap.get_str "dataflow" ex with
        | "ws" -> `WS
        | "os" -> `OS
        | s -> Snap.fail "bad dataflow %S" s);
      activation = activation_of_json (Snap.member "activation" ex);
      sys_shift = Snap.get_int "sys_shift" ex;
      a_transpose = Snap.get_bool "a_transpose" ex;
      b_transpose = Snap.get_bool "b_transpose" ex;
    };
  let lds = Snap.get_list "ld_cfgs" j in
  Snap.check ~what:"ld channel count" (List.length lds = 3);
  List.iteri
    (fun i c ->
      t.ld_cfgs.(i) <-
        {
          stride = Snap.get_int "stride" c;
          scale = Snap.get_float "scale" c;
          shrunk = Snap.get_bool "shrunk" c;
        })
    lds;
  let st = Snap.member "st_cfg" j in
  t.st_cfg <-
    {
      st_stride = Snap.get_int "stride" st;
      st_act = activation_of_json (Snap.member "act" st);
      st_scale = Snap.get_float "scale" st;
      st_pool =
        opt_of_json
          (fun p ->
            match Snap.int_list p with
            | [ window; stride; padding ] -> { Isa.window; stride; padding }
            | _ -> Snap.fail "bad pool cfg")
          (Snap.member "pool" st);
    };
  t.preload <-
    opt_of_json
      (fun p ->
        match Snap.int_list p with
        | [ bd; c; bd_rows; bd_cols; c_rows; c_cols ] ->
            {
              pl_bd = Local_addr.of_bits bd;
              pl_c = Local_addr.of_bits c;
              pl_bd_rows = bd_rows;
              pl_bd_cols = bd_cols;
              pl_c_rows = c_rows;
              pl_c_cols = c_cols;
            }
        | _ -> Snap.fail "bad preload state")
      (Snap.member "preload" j);
  t.loop_bounds <-
    opt_of_json
      (fun b ->
        {
          Isa.lw_m = Snap.get_int "m" b;
          lw_k = Snap.get_int "k" b;
          lw_n = Snap.get_int "n" b;
          lw_has_bias = Snap.get_bool "bias" b;
          lw_activation = activation_of_json (Snap.member "act" b);
        })
      (Snap.member "loop_bounds" j);
  t.loop_addrs <-
    opt_of_json
      (fun a ->
        match Snap.int_list a with
        | [ lw_a; lw_b ] -> { Isa.lw_a; lw_b }
        | _ -> Snap.fail "bad loop addrs")
      (Snap.member "loop_addrs" j);
  t.loop_outs <-
    opt_of_json
      (fun o ->
        match Snap.int_list o with
        | [ lw_bias; lw_c ] -> { Isa.lw_bias; lw_c }
        | _ -> Snap.fail "bad loop outs")
      (Snap.member "loop_outs" j);
  t.resident_b <- opt_of_json matrix_of_json (Snap.member "resident_b" j);
  t.os_acc <-
    opt_of_json
      (fun o ->
        {
          os_data = matrix_of_json (Snap.member "data" o);
          os_dest = Local_addr.of_bits (Snap.get_int "dest" o);
        })
      (Snap.member "os_acc" j);
  Scratchpad.restore t.spad (Snap.member "spad" j);
  Dma.restore t.dma (Snap.member "dma" j)

let reset_time t =
  t.issue <- 0;
  (* Only this controller's own pipes rewind: the engine may be shared
     with SoC-level resources whose history other cores still depend on. *)
  Resource.reset t.ld_pipe;
  Resource.reset t.ex_pipe;
  Resource.reset t.st_pipe;
  t.last_ld_finish <- 0;
  t.last_st_finish <- 0;
  rob_clear t;
  t.s.insns <- 0;
  t.s.loop_micro_ops <- 0;
  t.s.loads <- 0;
  t.s.stores <- 0;
  t.s.computes <- 0;
  t.s.macs <- 0;
  t.s.host_cycles <- 0;
  t.s.flushes <- 0
