open Gem_util

type host_cpu = No_host | Rocket | Boom

type component = { comp_name : string; area_um2 : float; share : float }

type report = {
  params : Params.t;
  host : host_cpu;
  components : component list;
  total_area_um2 : float;
  critical_path_ns : float;
  fmax_ghz : float;
  power_mw : float;
  pipeline_reg_bits : int;
  spatial_array_area_um2 : float;
}

(* Inter-tile pipeline register bits: horizontal boundaries carry `a`
   (input type + 1 control bit) per PE row, vertical boundaries carry
   psums (accumulator type + 4 control bits) per PE column. *)
let pipeline_reg_bits (p : Params.t) =
  let in_bits = Dtype.bits p.input_type in
  let acc_bits = Dtype.bits p.acc_type in
  let h_boundaries = (p.mesh_cols - 1) * p.mesh_rows in
  let v_boundaries = (p.mesh_rows - 1) * p.mesh_cols in
  (h_boundaries * p.tile_rows * (in_bits + 1))
  + (v_boundaries * p.tile_cols * (acc_bits + 4))

let pe_struct_area (tech : Tech.t) (p : Params.t) =
  let in_bits = float_of_int (Dtype.bits p.input_type) in
  let acc_bits = float_of_int (Dtype.bits p.acc_type) in
  let mul = tech.mul_area_per_bit2 *. in_bits *. in_bits in
  let add = tech.add_area_per_bit *. acc_bits in
  (* Double-buffered stationary operand registers. *)
  let stationary = 2.0 *. in_bits *. tech.reg_area_per_bit in
  mul +. add +. stationary +. tech.pe_control_area

let critical_path_ns (tech : Tech.t) (p : Params.t) =
  (* Synthesis retimes the in-tile reduction into a tree: depth grows with
     log2 of the tile dimensions. A 1x1 tile has a single mul+add stage. *)
  let depth_of n = if n <= 1 then 0 else Mathx.log2_ceil n in
  let tree_levels = depth_of p.tile_rows + depth_of p.tile_cols in
  tech.ff_delay_ns +. tech.mul_delay_ns +. tech.add_delay_ns
  +. (float_of_int tree_levels *. tech.tree_level_delay_ns)

let mesh_fmax_ghz ?(tech = Tech.intel_22ffl) p =
  1.0 /. critical_path_ns tech p

let estimate ?(tech = Tech.intel_22ffl) ?(host = Rocket) p =
  let p = Params.validate_exn p in
  let fmax = mesh_fmax_ghz ~tech p in
  let freq_factor = 1.0 +. (tech.area_freq_slope *. fmax) in
  let reg_bits = pipeline_reg_bits p in
  let array_struct =
    (float_of_int (Params.pes p) *. pe_struct_area tech p)
    +. (float_of_int reg_bits *. tech.reg_area_per_bit)
  in
  let array_area = array_struct *. freq_factor in
  let sp_area =
    (float_of_int p.sp_capacity_bytes *. tech.sram_area_per_byte)
    +. (float_of_int p.sp_banks *. tech.sram_bank_overhead)
  in
  let acc_area =
    (float_of_int p.acc_capacity_bytes *. tech.acc_sram_area_per_byte)
    +. (float_of_int p.acc_banks *. tech.sram_bank_overhead)
  in
  let blocks =
    List.filter_map
      (fun (cond, name, area) -> if cond then Some (name, area) else None)
      [
        (true, "dma", tech.dma_area);
        (true, "controller", tech.controller_area);
        (p.has_im2col, "im2col unit", tech.im2col_area);
        (p.has_pooling, "pooling unit", tech.pooling_area);
        ( p.has_transposer,
          "transposer",
          tech.transposer_area_per_pe_col *. float_of_int (Params.dim_cols p) );
      ]
  in
  let cpu_area =
    match host with
    | No_host -> 0.
    | Rocket -> tech.rocket_area
    | Boom -> tech.boom_area
  in
  let named =
    [
      (Printf.sprintf "spatial array (%dx%d)" (Params.dim_rows p) (Params.dim_cols p), array_area);
      (Printf.sprintf "scratchpad (%s)" (Table.fmt_bytes p.sp_capacity_bytes), sp_area);
      (Printf.sprintf "accumulator (%s)" (Table.fmt_bytes p.acc_capacity_bytes), acc_area);
    ]
    @ blocks
    @
    match host with
    | No_host -> []
    | Rocket -> [ ("cpu (rocket, 1 core)", cpu_area) ]
    | Boom -> [ ("cpu (boom, 1 core)", cpu_area) ]
  in
  let total = Mathx.sum_listf (List.map snd named) in
  let components =
    List.map
      (fun (comp_name, area_um2) ->
        { comp_name; area_um2; share = area_um2 /. total })
      named
  in
  (* Power at fmax: combinational switching scales with logic area, clock
     power with register bits, SRAM with capacity; leakage with total
     area. *)
  (* Switching power follows the structural (pre-upsizing) logic area:
     upsized gates buy drive strength, not proportionally more switched
     capacitance. *)
  let comb_area = float_of_int (Params.pes p) *. pe_struct_area tech p in
  let reg_power = float_of_int reg_bits *. tech.reg_power_per_bit_ghz *. fmax in
  let comb_power = comb_area *. tech.comb_power_per_um2_ghz *. fmax in
  let sram_kb = float_of_int (p.sp_capacity_bytes + p.acc_capacity_bytes) /. 1024. in
  let sram_power = sram_kb *. tech.sram_power_per_kb_ghz *. fmax in
  let leakage = total *. tech.leakage_power_per_um2 in
  {
    params = p;
    host;
    components;
    total_area_um2 = total;
    critical_path_ns = critical_path_ns tech p;
    fmax_ghz = fmax;
    power_mw = comb_power +. reg_power +. sram_power +. leakage;
    pipeline_reg_bits = reg_bits;
    spatial_array_area_um2 = array_area;
  }

let component_area report prefix =
  List.fold_left
    (fun acc c ->
      if String.length c.comp_name >= String.length prefix
         && String.sub c.comp_name 0 (String.length prefix) = prefix
      then acc +. c.area_um2
      else acc)
    0. report.components

let compare_design_points ?(tech = Tech.intel_22ffl) p1 p2 =
  let r1 = estimate ~tech ~host:No_host p1 in
  let r2 = estimate ~tech ~host:No_host p2 in
  Printf.sprintf
    "%s\n  fmax %.2f GHz, array %.0f um^2, power %.1f mW\n\
     %s\n  fmax %.2f GHz, array %.0f um^2, power %.1f mW\n\
     ratios (first/second): fmax %.2fx, area %.2fx, power %.2fx"
    (Params.describe p1) r1.fmax_ghz r1.spatial_array_area_um2 r1.power_mw
    (Params.describe p2) r2.fmax_ghz r2.spatial_array_area_um2 r2.power_mw
    (r1.fmax_ghz /. r2.fmax_ghz)
    (r1.spatial_array_area_um2 /. r2.spatial_array_area_um2)
    (r1.power_mw /. r2.power_mw)
