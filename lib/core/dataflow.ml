type t = WS | OS | Both

let supports t which =
  match (t, which) with
  | (WS | Both), `WS -> true
  | (OS | Both), `OS -> true
  | WS, `OS | OS, `WS -> false

let to_string = function WS -> "WS" | OS -> "OS" | Both -> "BOTH"

let of_string s =
  match String.uppercase_ascii s with
  | "WS" -> Ok WS
  | "OS" -> Ok OS
  | "BOTH" -> Ok Both
  | other -> Error (Printf.sprintf "unknown dataflow %S" other)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) (b : t) = a = b
