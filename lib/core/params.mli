(** Generator parameters — the design space of the Gemmini architectural
    template (paper Section III-A).

    A parameter record describes one accelerator instance: the two-level
    spatial array (a [mesh_rows] x [mesh_cols] mesh of pipelined tiles,
    each tile a combinational [tile_rows] x [tile_cols] grid of PEs), the
    datatypes, the dataflow(s), the private memories, the optional
    peripheral compute blocks, and the DMA/system interface. *)

type t = {
  (* Spatial array: mesh of tiles of PEs. *)
  mesh_rows : int;  (** tiles vertically; pipeline registers between tiles *)
  mesh_cols : int;  (** tiles horizontally *)
  tile_rows : int;  (** PEs per tile, vertically; combinational *)
  tile_cols : int;  (** PEs per tile, horizontally *)
  dataflow : Dataflow.t;
  input_type : Dtype.t;
  acc_type : Dtype.t;
  (* Private memories. *)
  sp_capacity_bytes : int;  (** scratchpad capacity *)
  sp_banks : int;
  acc_capacity_bytes : int; (** accumulator capacity *)
  acc_banks : int;
  (* Optional peripheral blocks (paper: pooling, ReLU/ReLU6, im2col,
     transposition, matrix-scalar). *)
  has_im2col : bool;
  has_pooling : bool;
  has_transposer : bool;
  has_activations : bool;
  (* DMA / system interface. *)
  dma_bus_bytes : int;     (** DMA beat width, bytes per cycle *)
  max_in_flight : int;     (** reorder-buffer depth for issued commands *)
  freq_ghz : float;        (** nominal clock for FPS conversions *)
}

(* Derived quantities. *)

val dim_rows : t -> int
(** PE rows of the full array = mesh_rows * tile_rows. *)

val dim_cols : t -> int

val dim : t -> int
(** For square arrays (required by the kernel library): PE rows. *)

val pes : t -> int

val sp_row_bytes : t -> int
(** One scratchpad row holds [dim_cols] input-type elements. *)

val sp_rows : t -> int
val sp_rows_per_bank : t -> int
val acc_row_bytes : t -> int
val acc_rows : t -> int
val acc_rows_per_bank : t -> int

val validate : t -> (unit, string list) result
(** All structural constraints: positive dims, square array, capacities
    divisible by banks and rows, power-of-two banks, valid type pairing,
    positive bus width. *)

val validate_exn : t -> t
(** Returns the record unchanged or raises [Invalid_argument] listing every
    violation. *)

(* Presets. *)

val default : t
(** The paper's evaluation configuration (Fig. 6): 16x16 fully-pipelined
    int8 array (1x1 tiles), 256 KB scratchpad, 64 KB accumulator, WS
    dataflow, all peripheral blocks, 16-byte DMA, 1 GHz. *)

val tpu_like : pes:int -> t
(** Fully-pipelined square array: NxN mesh of 1x1 tiles (Fig. 3 left). *)

val nvdla_like : pes:int -> t
(** Fully-combinational array: 1x1 mesh of one NxN tile, i.e. parallel
    MAC reduction trees (Fig. 3 right). *)

val edge : t
(** Small low-power instance: 8x8, 64 KB scratchpad, in-order host. *)

val cloud : t
(** Large instance: 32x32, 512 KB scratchpad, 128 KB accumulator. *)

val with_im2col : bool -> t -> t
val with_dataflow : Dataflow.t -> t -> t
val with_memories : sp_capacity_bytes:int -> acc_capacity_bytes:int -> t -> t

val describe : t -> string
(** One-line human-readable summary. *)
