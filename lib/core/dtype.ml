type t = Int8 | Int16 | Int32 | Fp16 | Fp32

let bits = function
  | Int8 -> 8
  | Int16 -> 16
  | Int32 -> 32
  | Fp16 -> 16
  | Fp32 -> 32

let bytes t = bits t / 8

let is_float = function Fp16 | Fp32 -> true | Int8 | Int16 | Int32 -> false

let min_int_value = function
  | Int8 -> -128
  | Int16 -> -32768
  | Int32 -> Gem_util.Fixed.int32_min
  | Fp16 | Fp32 -> invalid_arg "Dtype.min_int_value: float type"

let max_int_value = function
  | Int8 -> 127
  | Int16 -> 32767
  | Int32 -> Gem_util.Fixed.int32_max
  | Fp16 | Fp32 -> invalid_arg "Dtype.max_int_value: float type"

let saturate t v =
  if is_float t then v
  else Gem_util.Mathx.clamp ~lo:(min_int_value t) ~hi:(max_int_value t) v

let c_name = function
  | Int8 -> "int8_t"
  | Int16 -> "int16_t"
  | Int32 -> "int32_t"
  | Fp16 -> "_Float16"
  | Fp32 -> "float"

let to_string = function
  | Int8 -> "int8"
  | Int16 -> "int16"
  | Int32 -> "int32"
  | Fp16 -> "fp16"
  | Fp32 -> "fp32"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) (b : t) = a = b

let valid_acc_for ~input ~acc =
  is_float input = is_float acc && bits acc >= bits input
