open Gem_util

type t = {
  mesh_rows : int;
  mesh_cols : int;
  tile_rows : int;
  tile_cols : int;
  dataflow : Dataflow.t;
  input_type : Dtype.t;
  acc_type : Dtype.t;
  sp_capacity_bytes : int;
  sp_banks : int;
  acc_capacity_bytes : int;
  acc_banks : int;
  has_im2col : bool;
  has_pooling : bool;
  has_transposer : bool;
  has_activations : bool;
  dma_bus_bytes : int;
  max_in_flight : int;
  freq_ghz : float;
}

let dim_rows t = t.mesh_rows * t.tile_rows
let dim_cols t = t.mesh_cols * t.tile_cols
let dim t = dim_rows t
let pes t = dim_rows t * dim_cols t

let sp_row_bytes t = dim_cols t * Dtype.bytes t.input_type
let sp_rows t = t.sp_capacity_bytes / sp_row_bytes t
let sp_rows_per_bank t = sp_rows t / t.sp_banks
let acc_row_bytes t = dim_cols t * Dtype.bytes t.acc_type
let acc_rows t = t.acc_capacity_bytes / acc_row_bytes t
let acc_rows_per_bank t = acc_rows t / t.acc_banks

let validate t =
  let errors = ref [] in
  let check cond msg = if not cond then errors := msg :: !errors in
  check (t.mesh_rows > 0 && t.mesh_cols > 0) "mesh dimensions must be positive";
  check (t.tile_rows > 0 && t.tile_cols > 0) "tile dimensions must be positive";
  check (dim_rows t = dim_cols t)
    (Printf.sprintf "spatial array must be square, got %dx%d" (dim_rows t)
       (dim_cols t));
  check
    (Dtype.valid_acc_for ~input:t.input_type ~acc:t.acc_type)
    (Printf.sprintf "accumulator type %s cannot accumulate %s inputs"
       (Dtype.to_string t.acc_type)
       (Dtype.to_string t.input_type));
  check (t.sp_capacity_bytes > 0) "scratchpad capacity must be positive";
  check (t.acc_capacity_bytes > 0) "accumulator capacity must be positive";
  check (Mathx.is_pow2 t.sp_banks) "scratchpad bank count must be a power of two";
  check (Mathx.is_pow2 t.acc_banks) "accumulator bank count must be a power of two";
  if t.mesh_rows > 0 && t.mesh_cols > 0 && t.tile_rows > 0 && t.tile_cols > 0 then begin
    check
      (t.sp_capacity_bytes mod (sp_row_bytes t * t.sp_banks) = 0)
      "scratchpad capacity must divide evenly into banked rows";
    check
      (t.acc_capacity_bytes mod (acc_row_bytes t * t.acc_banks) = 0)
      "accumulator capacity must divide evenly into banked rows"
  end;
  check (t.dma_bus_bytes > 0) "DMA bus width must be positive";
  check (t.max_in_flight > 0) "in-flight command window must be positive";
  check (t.freq_ghz > 0.) "clock frequency must be positive";
  match !errors with [] -> Ok () | errs -> Error (List.rev errs)

let validate_exn t =
  match validate t with
  | Ok () -> t
  | Error errs -> invalid_arg ("Params: " ^ String.concat "; " errs)

let default =
  {
    mesh_rows = 16;
    mesh_cols = 16;
    tile_rows = 1;
    tile_cols = 1;
    dataflow = Dataflow.Both;
    input_type = Dtype.Int8;
    acc_type = Dtype.Int32;
    sp_capacity_bytes = 256 * 1024;
    sp_banks = 4;
    acc_capacity_bytes = 64 * 1024;
    acc_banks = 2;
    has_im2col = true;
    has_pooling = true;
    has_transposer = true;
    has_activations = true;
    dma_bus_bytes = 8;
    max_in_flight = 16;
    freq_ghz = 1.0;
  }

let square_side ~pes =
  let side = int_of_float (sqrt (float_of_int pes) +. 0.5) in
  if side * side <> pes then
    invalid_arg (Printf.sprintf "Params: %d PEs is not a square count" pes);
  side

let tpu_like ~pes =
  let side = square_side ~pes in
  validate_exn
    { default with mesh_rows = side; mesh_cols = side; tile_rows = 1; tile_cols = 1 }

let nvdla_like ~pes =
  let side = square_side ~pes in
  validate_exn
    { default with mesh_rows = 1; mesh_cols = 1; tile_rows = side; tile_cols = side }

let edge =
  validate_exn
    {
      default with
      mesh_rows = 8;
      mesh_cols = 8;
      sp_capacity_bytes = 64 * 1024;
      acc_capacity_bytes = 32 * 1024;
      dma_bus_bytes = 8;
    }

let cloud =
  validate_exn
    {
      default with
      mesh_rows = 32;
      mesh_cols = 32;
      sp_capacity_bytes = 512 * 1024;
      acc_capacity_bytes = 128 * 1024;
      dma_bus_bytes = 32;
    }

let with_im2col b t = { t with has_im2col = b }
let with_dataflow df t = { t with dataflow = df }

let with_memories ~sp_capacity_bytes ~acc_capacity_bytes t =
  { t with sp_capacity_bytes; acc_capacity_bytes }

let describe t =
  Printf.sprintf
    "%dx%d PEs (mesh %dx%d of %dx%d tiles), %s/%s, %s dataflow, SP %s/%d banks, ACC %s/%d banks%s%s"
    (dim_rows t) (dim_cols t) t.mesh_rows t.mesh_cols t.tile_rows t.tile_cols
    (Dtype.to_string t.input_type)
    (Dtype.to_string t.acc_type)
    (Dataflow.to_string t.dataflow)
    (Table.fmt_bytes t.sp_capacity_bytes)
    t.sp_banks
    (Table.fmt_bytes t.acc_capacity_bytes)
    t.acc_banks
    (if t.has_im2col then ", im2col" else "")
    (if t.has_pooling then ", pooling" else "")
