(** Generated C header ([gemmini_params.h]).

    "Every time a new accelerator is produced, Gemmini also generates an
    accompanying header file containing various parameters, e.g. the
    dimensions of the spatial array, the dataflows supported, and the
    compute blocks that are included" (paper Section III-B). This module
    emits that artifact from an elaborated parameter set so the low-level
    C API can be tuned per instance. *)

val generate : ?guard:string -> Params.t -> string
(** The full header text. [guard] overrides the include guard macro. *)

val defines : Params.t -> (string * string) list
(** The macro/value pairs, for programmatic inspection and tests. *)
