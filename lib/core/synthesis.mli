(** Analytical synthesis: area / timing / power estimation of an elaborated
    accelerator instance (the Cadence Genus + Innovus substitute).

    The estimates drive Fig. 3 (pipelined vs combinational spatial arrays),
    Fig. 6 (area breakdown of the default instance with its host CPU), and
    the design-space-exploration example. Coefficients live in {!Tech}. *)

type host_cpu = No_host | Rocket | Boom

type component = {
  comp_name : string;
  area_um2 : float;
  share : float;  (** fraction of total area *)
}

type report = {
  params : Params.t;
  host : host_cpu;
  components : component list;  (** ordered: array, SP, ACC, blocks, CPU *)
  total_area_um2 : float;
  critical_path_ns : float;
  fmax_ghz : float;
  power_mw : float;  (** dynamic + leakage at [fmax_ghz] *)
  pipeline_reg_bits : int;  (** inter-tile register bits in the array *)
  spatial_array_area_um2 : float;
}

val estimate : ?tech:Tech.t -> ?host:host_cpu -> Params.t -> report

val component_area : report -> string -> float
(** Area of a named component; 0 when absent. *)

val mesh_fmax_ghz : ?tech:Tech.t -> Params.t -> float
(** Maximum clock frequency of the spatial array alone. *)

val compare_design_points :
  ?tech:Tech.t -> Params.t -> Params.t -> string
(** Human-readable comparison (area/fmax/power ratios) of two instances —
    the Fig. 3 experiment in one call. *)
