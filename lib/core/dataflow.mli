(** Spatial-array dataflows.

    Gemmini PEs support the weight-stationary (WS, TPU-style) and
    output-stationary (OS) dataflows. The dataflow can be fixed at design
    time (cheaper PEs) or selected at run time ([Both]). *)

type t = WS | OS | Both

val supports : t -> [ `WS | `OS ] -> bool
(** Whether an accelerator elaborated with dataflow [t] can run the given
    dataflow at run time. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
