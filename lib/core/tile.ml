type t = {
  rows : int;
  cols : int;
  acc_type : Dtype.t;
  stationary : int array array;
}

let create ~rows ~cols ~acc_type =
  if rows <= 0 || cols <= 0 then invalid_arg "Tile.create: non-positive dims";
  { rows; cols; acc_type; stationary = Array.make_matrix rows cols 0 }

let rows t = t.rows
let cols t = t.cols

let set_stationary t ~r ~c v = t.stationary.(r).(c) <- v
let get_stationary t ~r ~c = t.stationary.(r).(c)

let clear_stationary t =
  Array.iter (fun row -> Array.fill row 0 t.cols 0) t.stationary

let ws_pass t ~a_in ~psum_in =
  if Array.length a_in <> t.rows || Array.length psum_in <> t.cols then
    invalid_arg "Tile.ws_pass: edge width mismatch";
  let a = Array.copy a_in in
  let psum = Array.copy psum_in in
  (* Raster order resolves the combinational network: values flow right
     along rows and down along columns within the same cycle. *)
  for r = 0 to t.rows - 1 do
    let a_cur = ref a.(r) in
    for c = 0 to t.cols - 1 do
      let out =
        Pe.ws_step ~acc_type:t.acc_type ~weight:t.stationary.(r).(c)
          ~a_in:!a_cur ~psum_in:psum.(c)
      in
      psum.(c) <- out.Pe.psum_out;
      a_cur := out.Pe.a_out
    done;
    a.(r) <- !a_cur
  done;
  (a, psum)

let os_pass t ~a_in ~b_in =
  if Array.length a_in <> t.rows || Array.length b_in <> t.cols then
    invalid_arg "Tile.os_pass: edge width mismatch";
  let a = Array.copy a_in in
  let b = Array.copy b_in in
  for r = 0 to t.rows - 1 do
    let a_cur = ref a.(r) in
    for c = 0 to t.cols - 1 do
      let out =
        Pe.os_step ~acc_type:t.acc_type ~acc:t.stationary.(r).(c) ~a_in:!a_cur
          ~b_in:b.(c)
      in
      t.stationary.(r).(c) <- out.Pe.acc;
      b.(c) <- out.Pe.b_out;
      a_cur := out.Pe.a_out
    done;
    a.(r) <- !a_cur
  done;
  (a, b)

let shift_weights_down t ~incoming =
  if Array.length incoming <> t.cols then
    invalid_arg "Tile.shift_weights_down: width mismatch";
  let outgoing = Array.copy t.stationary.(t.rows - 1) in
  for r = t.rows - 1 downto 1 do
    Array.blit t.stationary.(r - 1) 0 t.stationary.(r) 0 t.cols
  done;
  Array.blit incoming 0 t.stationary.(0) 0 t.cols;
  outgoing
