(** The two-level spatial array: a mesh of combinational tiles joined by
    pipeline registers (paper Fig. 2), simulated cycle-by-cycle.

    The same structure expresses the whole Fig. 3 design space: a
    [16x16 mesh of 1x1 tiles] is a TPU-like fully-pipelined systolic array,
    a [1x1 mesh of one 16x16 tile] is an NVDLA-like array of combinational
    MAC reduction trees, and intermediate factorizations trade pipeline
    depth against clock period.

    The functional model is exact: [run_matmul] produces bit-identical
    results to the reference matrix product (with saturation) and returns
    the schedule's cycle count, which the closed-form {!block_cycles} used
    by the timing simulator must match (enforced by property tests). *)

type t

val create :
  ?engine:Gem_sim.Engine.t -> ?name:string -> ?core:int -> Params.t -> t
(** [engine]/[name]/[core] attribute faults: malformed operands
    (dimension mismatches, unsupported dataflow) raise a structured
    {!Gem_sim.Fault.Trap} tagged with [name] — counted and streamed
    through [engine] when one is attached. Oversized weight preloads and
    non-positive cost-model blocks remain [Invalid_argument]: those are
    caller bugs, not architectural events. *)

val params : t -> Params.t
val dim_rows : t -> int
val dim_cols : t -> int

val preload_weights : t -> Gem_util.Matrix.t -> int
(** Loads a weight matrix (dimensions at most [dim_rows x dim_cols],
    zero-padded) into the PEs' stationary registers and returns the number
    of cycles the shift-in takes ([dim_rows]). *)

val clear : t -> unit
(** Clears stationary state and pipeline registers. *)

type result = { out : Gem_util.Matrix.t; cycles : int }

val run_matmul :
  t ->
  dataflow:[ `WS | `OS ] ->
  a:Gem_util.Matrix.t ->
  b:Gem_util.Matrix.t ->
  ?d:Gem_util.Matrix.t ->
  unit ->
  result
(** Computes [A*B + D] on the array using the systolic schedule of the
    chosen dataflow. [A] is [I x K], [B] is [K x J], [D] (optional bias)
    is [I x J]; requires [K <= dim_rows] (WS) or [I <= dim_rows] (OS) and
    [J <= dim_cols]. [cycles] includes weight preload (WS) or result
    drain (OS). Dimension violations and an unsupported dataflow trap
    ({!Gem_sim.Fault.Trap}, cause [Illegal_inst]). *)

val block_cycles :
  Params.t ->
  dataflow:[ `WS | `OS ] ->
  rows:int ->
  k:int ->
  cols:int ->
  preload:bool ->
  int
(** Closed-form cycle count for one [rows x k x cols] block matmul on the
    array described by [Params]; the timing simulator's mesh cost. With
    [preload:false] (WS only) the weights are assumed resident and only
    the streaming cost is charged. *)

val pipelined_block_cycles :
  Params.t ->
  dataflow:[ `WS | `OS ] ->
  rows:int ->
  k:int ->
  cols:int ->
  preload:bool ->
  int
(** Steady-state issue occupancy of one block in a stream of back-to-back
    blocks. Unlike {!block_cycles} (an isolated block, paying the full
    skew fill/drain), consecutive blocks overlap in the array: WS weight
    preloads are double-buffered behind the previous block's rows, so a
    block occupies the array for [max rows dim] (preloaded) or [rows]
    (weights resident) cycles plus a small inter-block bubble. This is the
    cost the controller's execute pipeline charges. *)

val block_attrs :
  dataflow:[ `WS | `OS ] ->
  rows:int ->
  k:int ->
  cols:int ->
  preload:bool ->
  (string * string) list
(** Span attributes describing one block execution (dataflow, block shape,
    whether weights were re-preloaded); attached to compute-command spans
    so a trace shows what each array occupation computed. Only call when
    the engine is live — this allocates. *)

val peak_macs_per_cycle : Params.t -> int
val utilization : Params.t -> dataflow:[ `WS | `OS ] -> rows:int -> k:int -> cols:int -> float
(** Fraction of peak MACs achieved by one block execution. *)
