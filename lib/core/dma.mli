(** The accelerator's DMA engine.

    Every [mvin]/[mvout] decomposes into per-row requests: each row is
    translated through the {!Gem_vm.Hierarchy} (splitting at page
    boundaries, exactly where the real DMA splits TileLink requests), then
    moves across the accelerator's private bus into the shared memory
    system. Translation latency is on the critical path — the DMA blocks
    on a TLB miss — which is what makes the Fig. 8 TLB-sizing and
    filter-register effects visible end to end. *)

(** Connection to the SoC memory system. Timing closures charge the shared
    L2/DRAM resources and return completion times; data closures (optional:
    present in functional mode) move real bytes. *)
type port = {
  read_timing :
    now:Gem_sim.Time.cycles -> paddr:int -> bytes:int -> Gem_sim.Time.cycles;
  write_timing :
    now:Gem_sim.Time.cycles -> paddr:int -> bytes:int -> Gem_sim.Time.cycles;
  read_data : (paddr:int -> n:int -> int array) option;
      (** returns unsigned bytes *)
  write_data : (paddr:int -> int array -> unit) option;
}

val null_port : port
(** Zero-latency, no-data port for unit tests. *)

type t

val create :
  ?engine:Gem_sim.Engine.t ->
  ?name:string ->
  ?core:int ->
  Params.t ->
  port:port ->
  tlb:Gem_vm.Hierarchy.t ->
  t
(** The DMA link registers itself in [engine]'s resource registry (fresh
    private engine when none is supplied) and emits typed [Transfer]
    events per burst when the engine is observing. [core] (default -1)
    attributes bus-error faults. *)

val tlb : t -> Gem_vm.Hierarchy.t

val set_inject : t -> Gem_sim.Inject.t -> unit
(** Arms deterministic injection: every burst segment rolls the plan's
    [Dma_error] stream after securing its bus slot; a fired roll raises a
    {!Gem_sim.Fault.Trap} (cause [Dma_bus_error]) instead of completing
    the segment. *)

val bus : t -> Gem_sim.Resource.t
(** The engine-registered DMA link resource. *)

type transfer = {
  engine_free : Gem_sim.Time.cycles;
      (** when the DMA engine can issue its next burst: the engine streams
          ahead with multiple requests outstanding, so in-flight misses do
          not block it *)
  finish : Gem_sim.Time.cycles;  (** when all of the burst's data has landed *)
  rows_data : int array array;  (** per-row bytes; empty when timing-only *)
}

val mvin :
  t ->
  now:Gem_sim.Time.cycles ->
  vaddr:int ->
  stride_bytes:int ->
  rows:int ->
  row_bytes:int ->
  transfer
(** Reads [rows] rows of [row_bytes], the i-th at
    [vaddr + i*stride_bytes]. *)

val mvout :
  t ->
  now:Gem_sim.Time.cycles ->
  vaddr:int ->
  stride_bytes:int ->
  rows_data:int array array ->
  row_bytes:int ->
  Gem_sim.Time.cycles * Gem_sim.Time.cycles
(** Writes rows; returns [(engine_free, finish)]. *)

val mvout_timing_rows :
  t ->
  now:Gem_sim.Time.cycles ->
  vaddr:int ->
  stride_bytes:int ->
  rows:int ->
  row_bytes:int ->
  Gem_sim.Time.cycles * Gem_sim.Time.cycles
(** Timing-only variant of {!mvout}. *)

(* Statistics *)

val bytes_in : t -> int
val bytes_out : t -> int
val row_requests : t -> int
val busy_cycles : t -> Gem_sim.Time.cycles
val reset_stats : t -> unit

val inject : t -> Gem_sim.Inject.t option
(** The armed injection plan, if any — the SoC snapshots it once (it is
    the same instance the TLB hierarchy rolls). *)

val snapshot : t -> Gem_util.Jsonx.t
(** Byte/row counters only; bus timing is engine-owned and the injection
    plan is serialized at the SoC level. *)

val restore : t -> Gem_util.Jsonx.t -> unit
