open Gem_mem
open Gem_sim

type t = {
  p : Params.t;
  engine : Engine.t option;
  name : string;
  core : int;
  sp : Sram.t;
  acc : Sram.t;
}

(* Bad local addresses are architecturally reachable from mvin/mvout and
   compute operands, so they trap rather than invalid_arg. *)
let trap t cause =
  let cycle = match t.engine with Some e -> Engine.now e | None -> 0 in
  let fault = Fault.make ~core:t.core ~component:t.name ~cycle cause in
  match t.engine with Some e -> Engine.trap e fault | None -> Fault.trap fault

let register_bank_probe engine ~name ~banks (sram : Sram.t) =
  Engine.register_probe engine ~kind:Engine.Scratchpad ~name ~sample:(fun () ->
      {
        Engine.p_requests = Sram.reads sram + Sram.writes sram;
        p_busy = 0;
        p_wait = 0;
        p_note =
          Printf.sprintf "%d banks, %s reads, %s writes" banks
            (Gem_util.Table.fmt_int (Sram.reads sram))
            (Gem_util.Table.fmt_int (Sram.writes sram));
      })

let create ?engine ?(name = "spad") ?(core = -1) p =
  let p = Params.validate_exn p in
  let t =
    {
      p;
      engine;
      name;
      core;
      sp =
        Sram.create ~banks:p.Params.sp_banks
          ~rows_per_bank:(Params.sp_rows_per_bank p)
          ~elems_per_row:(Params.dim_cols p);
      acc =
        Sram.create ~banks:p.Params.acc_banks
          ~rows_per_bank:(Params.acc_rows_per_bank p)
          ~elems_per_row:(Params.dim_cols p);
    }
  in
  (match engine with
  | None -> ()
  | Some e ->
      register_bank_probe e ~name ~banks:p.Params.sp_banks t.sp;
      register_bank_probe e ~name:(name ^ "-acc") ~banks:p.Params.acc_banks
        t.acc);
  t

let params t = t.p

let target t la =
  if Local_addr.is_garbage la then
    trap t (Fault.Illegal_inst "dereference of the garbage local address");
  if Local_addr.is_accumulator la then t.acc else t.sp

let oob_target t la = if Local_addr.is_accumulator la then t.name ^ "-acc" else t.name

let check_row t la mem row =
  let limit = Sram.total_rows mem in
  if row < 0 || row >= limit then
    trap t (Fault.Local_oob { target = oob_target t la; row; rows = 1; limit })

let read_row t la ~offset =
  let mem = target t la in
  let row = Local_addr.row la + offset in
  check_row t la mem row;
  Sram.read_row mem ~row

let write_row t la ~offset elems =
  let mem = target t la in
  let row = Local_addr.row la + offset in
  check_row t la mem row;
  if Local_addr.accumulate_flag la then begin
    if not (Local_addr.is_accumulator la) then
      trap t (Fault.Illegal_inst "accumulate flag on a scratchpad address");
    Sram.accumulate_row mem ~row elems
  end
  else Sram.write_row mem ~row elems

let read_block t la ~rows ~cols =
  Array.init rows (fun r -> Array.sub (read_row t la ~offset:r) 0 cols)

let write_block t la m =
  let rows = Gem_util.Matrix.rows m in
  for r = 0 to rows - 1 do
    write_row t la ~offset:r m.(r)
  done

let sp_rows t = Sram.total_rows t.sp
let acc_rows t = Sram.total_rows t.acc

let sp_accesses t = Sram.reads t.sp + Sram.writes t.sp
let acc_accesses t = Sram.reads t.acc + Sram.writes t.acc

let reset_stats t =
  Sram.reset_stats t.sp;
  Sram.reset_stats t.acc

let snapshot ?(with_data = false) t =
  Gem_util.Jsonx.Obj
    [ ("sp", Sram.snapshot ~with_data t.sp);
      ("acc", Sram.snapshot ~with_data t.acc) ]

let restore t j =
  Sram.restore t.sp (Gem_util.Snap.member "sp" j);
  Sram.restore t.acc (Gem_util.Snap.member "acc" j)
