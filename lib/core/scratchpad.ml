open Gem_mem
open Gem_sim

type t = { p : Params.t; sp : Sram.t; acc : Sram.t }

let register_bank_probe engine ~name ~banks (sram : Sram.t) =
  Engine.register_probe engine ~kind:Engine.Scratchpad ~name ~sample:(fun () ->
      {
        Engine.p_requests = Sram.reads sram + Sram.writes sram;
        p_busy = 0;
        p_wait = 0;
        p_note =
          Printf.sprintf "%d banks, %s reads, %s writes" banks
            (Gem_util.Table.fmt_int (Sram.reads sram))
            (Gem_util.Table.fmt_int (Sram.writes sram));
      })

let create ?engine ?(name = "spad") p =
  let p = Params.validate_exn p in
  let t =
    {
      p;
      sp =
        Sram.create ~banks:p.Params.sp_banks
          ~rows_per_bank:(Params.sp_rows_per_bank p)
          ~elems_per_row:(Params.dim_cols p);
      acc =
        Sram.create ~banks:p.Params.acc_banks
          ~rows_per_bank:(Params.acc_rows_per_bank p)
          ~elems_per_row:(Params.dim_cols p);
    }
  in
  (match engine with
  | None -> ()
  | Some e ->
      register_bank_probe e ~name ~banks:p.Params.sp_banks t.sp;
      register_bank_probe e ~name:(name ^ "-acc") ~banks:p.Params.acc_banks
        t.acc);
  t

let params t = t.p

let target t la =
  if Local_addr.is_garbage la then invalid_arg "Scratchpad: garbage address";
  if Local_addr.is_accumulator la then t.acc else t.sp

let read_row t la ~offset =
  Sram.read_row (target t la) ~row:(Local_addr.row la + offset)

let write_row t la ~offset elems =
  let mem = target t la in
  let row = Local_addr.row la + offset in
  if Local_addr.accumulate_flag la then begin
    if not (Local_addr.is_accumulator la) then
      invalid_arg "Scratchpad: accumulate flag on scratchpad address";
    Sram.accumulate_row mem ~row elems
  end
  else Sram.write_row mem ~row elems

let read_block t la ~rows ~cols =
  Array.init rows (fun r -> Array.sub (read_row t la ~offset:r) 0 cols)

let write_block t la m =
  let rows = Gem_util.Matrix.rows m in
  for r = 0 to rows - 1 do
    write_row t la ~offset:r m.(r)
  done

let sp_rows t = Sram.total_rows t.sp
let acc_rows t = Sram.total_rows t.acc

let sp_accesses t = Sram.reads t.sp + Sram.writes t.sp
let acc_accesses t = Sram.reads t.acc + Sram.writes t.acc

let reset_stats t =
  Sram.reset_stats t.sp;
  Sram.reset_stats t.acc
