(** The accelerator controller: decodes the RoCC command stream and models
    Gemmini's decoupled load / execute / store pipelines.

    Timing model. Commands are issued by the host at a per-instruction
    cost, subject to a reorder-window back-pressure of
    [Params.max_in_flight] outstanding commands. Each functional unit
    (DMA-in, mesh, DMA-out) processes its commands in order on its own
    clock, so loads for the next tile overlap computation of the current
    one (double buffering emerges from the program order of the command
    stream, as on the real chip). Data dependencies are the conservative
    program-order ones the hardware enforces through its ROB: a compute
    waits for every earlier load, a store waits for every earlier
    compute.

    Functional model. When the DMA port carries data closures, commands
    also move real bytes through the scratchpad/accumulator and run real
    matmuls on the cycle-accurate {!Mesh} — the same datapath the unit
    tests validate against the reference product. *)

type t

val create :
  ?engine:Gem_sim.Engine.t ->
  ?name:string ->
  ?core:int ->
  params:Params.t ->
  port:Dma.port ->
  tlb:Gem_vm.Hierarchy.t ->
  issue_cycles:int ->
  unit ->
  t
(** [issue_cycles] is the host CPU's cost to dispatch one RoCC command.

    All pipeline timing lives in [engine] (a fresh private
    {!Gem_sim.Engine} when none is supplied): the load / mesh / store
    pipes register as resources [name ^ "/ld"], [name ^ "/mesh"] and
    [name ^ "/st"], the scratchpad, DMA link and a host probe alongside
    them. [name] defaults to ["accel"]. [core] (default 0) tags every
    fault this controller or its sub-components raise. *)

val engine : t -> Gem_sim.Engine.t
(** The simulation context carrying this controller's clocks and
    per-component statistics. *)

val params : t -> Params.t
val scratchpad : t -> Scratchpad.t
val dma : t -> Dma.t
val tlb : t -> Gem_vm.Hierarchy.t

val execute : t -> Isa.t -> unit
(** Executes one command (decode + dispatch + simulate). Every command is
    first checked with {!Isa.validate}; an invalid one raises a
    structured {!Gem_sim.Fault.Trap} before any state moves, as do
    sequencing errors caught later (compute without preload, LOOP_WS
    without its configuration commands) and faults from the memory
    system underneath. *)

val execute_all : t -> Isa.t list -> unit

val host_work : t -> cycles:int -> unit
(** Host-CPU busy time (im2col, data marshalling) that blocks further
    command issue. *)

val advance_to : t -> cycle:Gem_sim.Time.cycles -> unit
(** Parks the issue cursor at [cycle] (no-op when it is already past):
    pure idle time, charging no host cycles and no resource occupancy.
    Used by the serving scheduler to make a core wait for the next
    request arrival. *)

val now : t -> Gem_sim.Time.cycles
(** The issue cursor: when the host could dispatch the next command. *)

val host_component : t -> string
(** Name of the host-interface component ("<name>/host") — the span track
    for software-level (network/layer/kernel) and host-serviced command
    spans. *)

val finish_time : t -> Gem_sim.Time.cycles
(** When all issued work (including in-flight DMA/compute) completes. *)

val set_issue_cycles : t -> int -> unit

(* Statistics *)

type stats = {
  insns : int;  (** host-dispatched commands *)
  loop_micro_ops : int;  (** commands expanded internally by LOOP_WS *)
  loads : int;
  stores : int;
  computes : int;
  macs : int;
  host_cycles : int;
  flushes : int;
  ld_busy : Gem_sim.Time.cycles;  (** from the engine's ld-pipe resource *)
  ex_busy : Gem_sim.Time.cycles;  (** from the engine's mesh-pipe resource *)
  st_busy : Gem_sim.Time.cycles;  (** from the engine's st-pipe resource *)
}

val stats : t -> stats

val utilization : t -> float
(** MACs performed / (PEs x total cycles). *)

val reset_time : t -> unit
(** Rewind all clocks and counters to zero (new measurement run); keeps
    configuration and scratchpad contents. *)

val snapshot : t -> Gem_util.Jsonx.t
(** Everything the next command's timing or decode depends on: issue
    cursor, data-landing high-water marks, the reorder window, staged
    configuration (ex/ld/st configs, preload, LOOP_WS staging), counters,
    nested scratchpad and DMA counters, and — in functional mode — the
    mesh-resident tiles and SRAM contents. The three pipeline resources
    travel with {!Gem_sim.Engine.snapshot}. *)

val restore : t -> Gem_util.Jsonx.t -> unit
(** Restores into a controller of the same parameters; raises
    {!Gem_util.Snap.Malformed} on a shape mismatch. *)
