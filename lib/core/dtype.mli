(** Datatypes supported by the generator.

    Gemmini distinguishes the {e input type} (what the spatial array
    multiplies, and what the scratchpad stores) from the {e accumulator
    type} (the wider type partial sums are kept in). Table I's "Int/Float"
    datatype support is design-time: any of these can be chosen when
    elaborating an accelerator. The functional simulator executes integer
    datapaths bit-exactly; float types elaborate (area/power/header) but
    their functional model is host-float based. *)

type t = Int8 | Int16 | Int32 | Fp16 | Fp32

val bits : t -> int
val bytes : t -> int
val is_float : t -> bool

val min_int_value : t -> int
(** Most negative representable value. Raises [Invalid_argument] for float
    types. *)

val max_int_value : t -> int

val saturate : t -> int -> int
(** Clamp an integer to the type's range. Identity for float types. *)

val c_name : t -> string
(** Type name emitted into the generated C header. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val valid_acc_for : input:t -> acc:t -> bool
(** An accumulator type is valid when it is at least as wide as the input
    type and in the same number class (int with int, float with float). *)
