open Gem_util

type activation = No_activation | Relu | Relu6 of { shift : int }

let apply_activation = function
  | No_activation -> fun x -> x
  | Relu -> Fixed.relu
  | Relu6 { shift } -> Fixed.relu6 ~shift

let scale_to dtype ~scale x =
  if Dtype.is_float dtype then x
  else begin
    let scaled = float_of_int x *. scale in
    let rounded = Float.round scaled in
    let rounded =
      (* round-half-to-even, matching the RTL *)
      if Float.abs (scaled -. rounded) = 0.5 && Float.rem rounded 2. <> 0. then
        rounded -. Float.copy_sign 1. rounded
      else rounded
    in
    Dtype.saturate dtype (int_of_float rounded)
  end

let matrix_scalar_mul ~scale ~out_type m = Matrix.map (scale_to out_type ~scale) m

let conv_output_dim ~in_dim ~kernel ~stride ~padding =
  ((in_dim + (2 * padding) - kernel) / stride) + 1

let check_nhwc t =
  if Tensor.rank t <> 4 then invalid_arg "Peripheral: tensor must be rank-4 NHWC"

let max_pool ~window ~stride ~padding input =
  check_nhwc input;
  if window <= 0 || stride <= 0 || padding < 0 then
    invalid_arg "Peripheral.max_pool: bad geometry";
  let s = Tensor.shape input in
  let n = s.(0) and h = s.(1) and w = s.(2) and c = s.(3) in
  let oh = conv_output_dim ~in_dim:h ~kernel:window ~stride ~padding in
  let ow = conv_output_dim ~in_dim:w ~kernel:window ~stride ~padding in
  let out = Tensor.create [| n; oh; ow; c |] in
  for b = 0 to n - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        for ch = 0 to c - 1 do
          let best = ref min_int in
          for ky = 0 to window - 1 do
            for kx = 0 to window - 1 do
              let iy = (oy * stride) + ky - padding in
              let ix = (ox * stride) + kx - padding in
              if iy >= 0 && iy < h && ix >= 0 && ix < w then begin
                let v = Tensor.get4 input b iy ix ch in
                if v > !best then best := v
              end
            done
          done;
          Tensor.set4 out b oy ox ch !best
        done
      done
    done
  done;
  out

let avg_pool_global input =
  check_nhwc input;
  let s = Tensor.shape input in
  let n = s.(0) and h = s.(1) and w = s.(2) and c = s.(3) in
  let out = Tensor.create [| n; 1; 1; c |] in
  let count = h * w in
  for b = 0 to n - 1 do
    for ch = 0 to c - 1 do
      let sum = ref 0 in
      for y = 0 to h - 1 do
        for x = 0 to w - 1 do
          sum := !sum + Tensor.get4 input b y x ch
        done
      done;
      let avg =
        let s = !sum in
        if s >= 0 then (s + (count / 2)) / count else -((-s + (count / 2)) / count)
      in
      Tensor.set4 out b 0 0 ch avg
    done
  done;
  out

let im2col ~input ~kernel ~stride ~padding =
  check_nhwc input;
  if kernel <= 0 || stride <= 0 || padding < 0 then
    invalid_arg "Peripheral.im2col: bad geometry";
  let s = Tensor.shape input in
  let n = s.(0) and h = s.(1) and w = s.(2) and c = s.(3) in
  let oh = conv_output_dim ~in_dim:h ~kernel ~stride ~padding in
  let ow = conv_output_dim ~in_dim:w ~kernel ~stride ~padding in
  let rows = n * oh * ow in
  let cols = kernel * kernel * c in
  Matrix.init ~rows ~cols (fun r col ->
      let b = r / (oh * ow) in
      let oy = r mod (oh * ow) / ow in
      let ox = r mod ow in
      let ky = col / (kernel * c) in
      let kx = col mod (kernel * c) / c in
      let ch = col mod c in
      let iy = (oy * stride) + ky - padding in
      let ix = (ox * stride) + kx - padding in
      if iy >= 0 && iy < h && ix >= 0 && ix < w then Tensor.get4 input b iy ix ch
      else 0)

let transpose = Matrix.transpose
