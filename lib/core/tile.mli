(** A combinational tile: a rectangular grid of PEs with no pipeline
    registers between them (paper Fig. 2).

    Signals entering a tile's left/top edges propagate through every PE of
    the tile within a single clock cycle; the mesh places pipeline
    registers only {e between} tiles. Larger tiles therefore shorten the
    array's pipeline (and its area/power) at the cost of a longer
    combinational critical path — the Fig. 3 trade-off. *)

type t

val create : rows:int -> cols:int -> acc_type:Dtype.t -> t

val rows : t -> int
val cols : t -> int

val set_stationary : t -> r:int -> c:int -> int -> unit
(** Loads the stationary register of PE (r,c): the weight in WS mode, the
    running output in OS mode. *)

val get_stationary : t -> r:int -> c:int -> int

val clear_stationary : t -> unit

val ws_pass : t -> a_in:int array -> psum_in:int array -> int array * int array
(** One combinational pass in WS mode. [a_in] has [rows] elements entering
    the left edge; [psum_in] has [cols] elements entering the top edge.
    Returns [(a_out, psum_out)] leaving the right and bottom edges. *)

val os_pass : t -> a_in:int array -> b_in:int array -> int array * int array
(** One combinational pass in OS mode; accumulators update in place.
    Returns [(a_out, b_out)]. *)

val shift_weights_down : t -> incoming:int array -> int array
(** Weight-preload behaviour: every PE row passes its stationary values to
    the row below; row 0 takes [incoming] ([cols] wide); the previous
    bottom row's values are returned (they continue into the tile below). *)
