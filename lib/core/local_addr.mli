(** Gemmini local (scratchpad/accumulator) address encoding.

    Local addresses are 32-bit values whose top bits carry routing flags,
    exactly as in the Gemmini ISA:

    - bit 31: targets the accumulator (otherwise the scratchpad);
    - bit 30: accumulate into the destination instead of overwriting
      (accumulator targets only);
    - bit 29: read/write full accumulator width (otherwise values are
      scaled down to the input type on the way out);
    - bits 28..0: row index.

    The special value with all bits set is "garbage": compute instructions
    use it to mean "no operand". *)

type t

val scratchpad : row:int -> t
val accumulator : ?accumulate:bool -> ?full_width:bool -> row:int -> unit -> t
val garbage : t

val is_garbage : t -> bool
val is_accumulator : t -> bool
val accumulate_flag : t -> bool
val full_width_flag : t -> bool

val row : t -> int
(** Row index (meaningless for {!garbage}). *)

val add_rows : t -> int -> t
(** Advance the row index, keeping flags. *)

val to_bits : t -> int
(** The raw 32-bit encoding. *)

val of_bits : int -> t
(** Inverse of {!to_bits}; masks to 32 bits. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
