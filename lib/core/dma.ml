open Gem_sim
open Gem_util

type port = {
  read_timing : now:Time.cycles -> paddr:int -> bytes:int -> Time.cycles;
  write_timing : now:Time.cycles -> paddr:int -> bytes:int -> Time.cycles;
  read_data : (paddr:int -> n:int -> int array) option;
  write_data : (paddr:int -> int array -> unit) option;
}

let null_port =
  {
    read_timing = (fun ~now ~paddr:_ ~bytes:_ -> now);
    write_timing = (fun ~now ~paddr:_ ~bytes:_ -> now);
    read_data = None;
    write_data = None;
  }

type t = {
  p : Params.t;
  port : port;
  tlb : Gem_vm.Hierarchy.t;
  engine : Engine.t;
  bus : Resource.t; (* the accelerator's private DMA link *)
  bytes_in : int ref;
  bytes_out : int ref;
  mutable row_requests : int;
  core : int;
  mutable inject : Inject.t option;
  (* Reused scratch for the timing-only segment walk: one transfer is in
     flight per DMA at a time, so a single translation slot plus two
     result cells make the whole walk allocation-free. *)
  tslot : Gem_vm.Hierarchy.slot;
  mutable w_cursor : Time.cycles;
  mutable w_finish : Time.cycles;
}

let create ?engine ?(name = "dma") ?(core = -1) p ~port ~tlb =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let bytes_in = ref 0 and bytes_out = ref 0 in
  let bus =
    Engine.resource engine ~kind:Engine.Dma ~name ~note:(fun () ->
        Printf.sprintf "%s B in, %s B out"
          (Gem_util.Table.fmt_int !bytes_in)
          (Gem_util.Table.fmt_int !bytes_out))
  in
  {
    p = Params.validate_exn p;
    port;
    tlb;
    engine;
    bus;
    bytes_in;
    bytes_out;
    row_requests = 0;
    core;
    inject = None;
    tslot = Gem_vm.Hierarchy.make_slot ();
    w_cursor = 0;
    w_finish = 0;
  }

let tlb t = t.tlb
let set_inject t plan = t.inject <- Some plan

type transfer = {
  engine_free : Time.cycles;
  finish : Time.cycles;
  rows_data : int array array;
}

let page_size = Gem_vm.Page_table.page_size

module P = Gem_obs.Profile

(* Split [vaddr, vaddr+bytes) at page boundaries; the DMA issues one
   translated request per segment. The engine {e blocks} on translation:
   the next segment's TLB lookup starts only after this segment has
   secured its bus slot, so TLB hit latency (and every miss) sits on the
   streaming critical path — precisely why the paper's 0-cycle filter
   registers pay off (Section V-A). Returns (issue cursor, overall
   finish). *)
let for_segments t ~now ~vaddr ~bytes ~write ~f =
  let cursor = ref now in
  let finish = ref now in
  let va = ref vaddr in
  let remaining = ref bytes in
  while !remaining > 0 do
    let in_page = page_size - (!va land (page_size - 1)) in
    let seg = min in_page !remaining in
    let outcome = Gem_vm.Hierarchy.translate t.tlb ~now:!cursor ~vaddr:!va ~write in
    let occupancy = Mathx.ceil_div seg t.p.Params.dma_bus_bytes in
    let bus_done =
      Engine.acquire t.engine t.bus ~now:outcome.Gem_vm.Hierarchy.finish
        ~occupancy
    in
    (* A segment's bus slot is the injection decision point: a fired
       Dma_error means this burst was dropped by the interconnect. *)
    (match t.inject with
    | Some plan when Inject.fire plan Inject.Dma_error ->
        Engine.trap t.engine
          (Fault.make ~core:t.core ~component:(Resource.name t.bus)
             ~cycle:bus_done
             (Fault.Dma_bus_error { vaddr = !va; bytes = seg }))
    | _ -> ());
    let seg_done = f ~now:bus_done ~vaddr:!va ~paddr:outcome.Gem_vm.Hierarchy.paddr ~bytes:seg in
    cursor := bus_done;
    finish := max !finish seg_done;
    va := !va + seg;
    remaining := !remaining - seg
  done;
  (!cursor, !finish)

(* The timing-only walk: identical traversal and event order to
   {!for_segments}, but the port timing callback is invoked directly and
   the translation lands in the reused [t.tslot] — no closure, no outcome
   record, no refs, no result tuple. This is the simulator's hottest
   loop (one iteration per page segment of every DMA row), so results
   come back through [t.w_cursor] / [t.w_finish]. *)
let rec seg_walk_go t ~write cursor finish va remaining =
  if remaining <= 0 then begin
    t.w_cursor <- cursor;
    t.w_finish <- finish
  end
  else begin
    let slot = t.tslot in
    let in_page = page_size - (va land (page_size - 1)) in
    let seg = min in_page remaining in
    Gem_vm.Hierarchy.translate_into t.tlb slot ~now:cursor ~vaddr:va ~write;
    let occupancy = Mathx.ceil_div seg t.p.Params.dma_bus_bytes in
    let bus_done =
      Engine.acquire t.engine t.bus ~now:slot.Gem_vm.Hierarchy.s_finish
        ~occupancy
    in
    (match t.inject with
    | Some plan when Inject.fire plan Inject.Dma_error ->
        Engine.trap t.engine
          (Fault.make ~core:t.core ~component:(Resource.name t.bus)
             ~cycle:bus_done
             (Fault.Dma_bus_error { vaddr = va; bytes = seg }))
    | _ -> ());
    let paddr = slot.Gem_vm.Hierarchy.s_paddr in
    let seg_done =
      if write then t.port.write_timing ~now:bus_done ~paddr ~bytes:seg
      else t.port.read_timing ~now:bus_done ~paddr ~bytes:seg
    in
    seg_walk_go t ~write bus_done
      (if seg_done > finish then seg_done else finish)
      (va + seg) (remaining - seg)
  end

let seg_walk_timing t ~now ~vaddr ~bytes ~write =
  seg_walk_go t ~write now now vaddr bytes

(* One span per burst on the bus track (cat "dma"): open at request time,
   close at overall finish. Rendered async so overlapping bursts (memory
   latency of one row under the issue of the next command) display
   faithfully. *)
let burst_open t ~now ~name ~rows ~bytes =
  if Engine.live t.engine then
    Engine.emit t.engine
      (Engine.Span_open
         {
           component = Resource.name t.bus;
           time = now;
           name;
           cat = "dma";
           args =
             [ ("rows", string_of_int rows); ("bytes", string_of_int bytes) ];
         })

let burst_close t ~time ~name =
  if Engine.live t.engine then
    Engine.emit t.engine
      (Engine.Span_close { component = Resource.name t.bus; time; name })

let mvin t ~now ~vaddr ~stride_bytes ~rows ~row_bytes =
  if rows <= 0 || row_bytes <= 0 then invalid_arg "Dma.mvin: empty transfer";
  if !P.on then P.enter P.dma;
  burst_open t ~now ~name:"dma-read" ~rows ~bytes:(rows * row_bytes);
  let functional = Option.is_some t.port.read_data in
  let rows_data =
    if functional then Array.make rows [||] else [||]
  in
  let cursor = ref now in
  let finish = ref now in
  for r = 0 to rows - 1 do
    t.row_requests <- t.row_requests + 1;
    let row_va = vaddr + (r * stride_bytes) in
    if functional then begin
      let buf = Array.make row_bytes 0 in
      let written = ref 0 in
      let row_cursor, row_done =
        for_segments t ~now:!cursor ~vaddr:row_va ~bytes:row_bytes
          ~write:false
          ~f:(fun ~now ~vaddr:_ ~paddr ~bytes ->
            (match t.port.read_data with
            | Some read ->
                let seg = read ~paddr ~n:bytes in
                Array.blit seg 0 buf !written bytes;
                written := !written + bytes
            | None -> ());
            t.port.read_timing ~now ~paddr ~bytes)
      in
      rows_data.(r) <- buf;
      cursor := max !cursor row_cursor;
      finish := max !finish row_done
    end
    else begin
      seg_walk_timing t ~now:!cursor ~vaddr:row_va ~bytes:row_bytes
        ~write:false;
      (* Rows issue serially through the translate+bus path; memory
         latency of one row still overlaps the issue of the next. *)
      cursor := max !cursor t.w_cursor;
      finish := max !finish t.w_finish
    end
  done;
  t.bytes_in := !(t.bytes_in) + (rows * row_bytes);
  if Engine.live t.engine then
    Engine.emit t.engine
      (Engine.Transfer
         {
           component = Resource.name t.bus;
           time = now;
           dir = `Read;
           bytes = rows * row_bytes;
         });
  burst_close t ~time:!finish ~name:"dma-read";
  if !P.on then P.leave P.dma;
  { engine_free = !cursor; finish = !finish; rows_data }

let mvout_common t ~now ~vaddr ~stride_bytes ~rows ~row_bytes ~data =
  if rows <= 0 || row_bytes <= 0 then invalid_arg "Dma.mvout: empty transfer";
  if !P.on then P.enter P.dma;
  burst_open t ~now ~name:"dma-write" ~rows ~bytes:(rows * row_bytes);
  let functional =
    Option.is_some t.port.write_data && Option.is_some data
  in
  let cursor = ref now in
  let finish = ref now in
  for r = 0 to rows - 1 do
    t.row_requests <- t.row_requests + 1;
    let row_va = vaddr + (r * stride_bytes) in
    if functional then begin
      let consumed = ref 0 in
      let row_cursor, row_done =
        for_segments t ~now:!cursor ~vaddr:row_va ~bytes:row_bytes
          ~write:true
          ~f:(fun ~now ~vaddr:_ ~paddr ~bytes ->
            (match (t.port.write_data, data) with
            | Some write, Some rows_data ->
                write ~paddr (Array.sub rows_data.(r) !consumed bytes);
                consumed := !consumed + bytes
            | _ -> ());
            t.port.write_timing ~now ~paddr ~bytes)
      in
      cursor := max !cursor row_cursor;
      finish := max !finish row_done
    end
    else begin
      seg_walk_timing t ~now:!cursor ~vaddr:row_va ~bytes:row_bytes
        ~write:true;
      cursor := max !cursor t.w_cursor;
      finish := max !finish t.w_finish
    end
  done;
  t.bytes_out := !(t.bytes_out) + (rows * row_bytes);
  if Engine.live t.engine then
    Engine.emit t.engine
      (Engine.Transfer
         {
           component = Resource.name t.bus;
           time = now;
           dir = `Write;
           bytes = rows * row_bytes;
         });
  burst_close t ~time:!finish ~name:"dma-write";
  if !P.on then P.leave P.dma;
  (!cursor, !finish)

let mvout t ~now ~vaddr ~stride_bytes ~rows_data ~row_bytes =
  let rows = Array.length rows_data in
  mvout_common t ~now ~vaddr ~stride_bytes ~rows ~row_bytes ~data:(Some rows_data)

let mvout_timing_rows t ~now ~vaddr ~stride_bytes ~rows ~row_bytes =
  mvout_common t ~now ~vaddr ~stride_bytes ~rows ~row_bytes ~data:None

let bytes_in t = !(t.bytes_in)
let bytes_out t = !(t.bytes_out)
let row_requests t = t.row_requests
let busy_cycles t = Resource.busy_cycles t.bus
let bus t = t.bus

let reset_stats t =
  t.bytes_in := 0;
  t.bytes_out := 0;
  t.row_requests <- 0

let inject t = t.inject

(* The bus resource is engine-owned, the injection plan is shared with
   the TLB hierarchy and snapshotted once at the SoC level — only the
   byte/row counters live here. *)
let snapshot t =
  Jsonx.Obj
    [ ("bytes_in", Jsonx.Int !(t.bytes_in));
      ("bytes_out", Jsonx.Int !(t.bytes_out));
      ("row_requests", Jsonx.Int t.row_requests) ]

let restore t j =
  t.bytes_in := Snap.get_int "bytes_in" j;
  t.bytes_out := Snap.get_int "bytes_out" j;
  t.row_requests <- Snap.get_int "row_requests" j
