type ws_out = { a_out : int; psum_out : int }

let ws_step ~acc_type ~weight ~a_in ~psum_in =
  { a_out = a_in; psum_out = Dtype.saturate acc_type (psum_in + (a_in * weight)) }

type os_out = { a_out : int; b_out : int; acc : int }

let os_step ~acc_type ~acc ~a_in ~b_in =
  { a_out = a_in; b_out = b_in; acc = Dtype.saturate acc_type (acc + (a_in * b_in)) }
