(** The accelerator's private memories behind the {!Local_addr} space:
    a banked input-type scratchpad and a banked accumulator.

    Rows are [dim] elements wide. The accumulator stores accumulator-type
    values and supports the accumulate-on-write path used by tiled matmuls
    that sum partial products across K-tiles. *)

type t

val create :
  ?engine:Gem_sim.Engine.t -> ?name:string -> ?core:int -> Params.t -> t
(** When [engine] is given, the scratchpad and accumulator banks register
    metrics probes ([name], [name ^ "-acc"]) in its registry. Garbage
    dereferences, misplaced accumulate flags and out-of-bounds rows raise
    {!Gem_sim.Fault.Trap} attributed to [core] (default -1). *)

val params : t -> Params.t

val read_row : t -> Local_addr.t -> offset:int -> int array
(** [read_row t la ~offset] reads row [Local_addr.row la + offset] from
    whichever memory [la] targets. Returns raw stored elements. *)

val write_row : t -> Local_addr.t -> offset:int -> int array -> unit
(** Writes a row; when [la] has the accumulate flag set (accumulator
    targets only) the row is summed into the existing contents with
    int32 saturation. *)

val read_block : t -> Local_addr.t -> rows:int -> cols:int -> Gem_util.Matrix.t
val write_block : t -> Local_addr.t -> Gem_util.Matrix.t -> unit

val sp_rows : t -> int
val acc_rows : t -> int

val sp_accesses : t -> int
(** Total scratchpad row reads+writes. *)

val acc_accesses : t -> int
val reset_stats : t -> unit

val snapshot : ?with_data:bool -> t -> Gem_util.Jsonx.t
(** Both SRAMs' counters; [~with_data:true] includes contents (functional
    mode). *)

val restore : t -> Gem_util.Jsonx.t -> unit
