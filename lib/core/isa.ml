type pool_cfg = { window : int; stride : int; padding : int }

type config_ex = {
  dataflow : [ `WS | `OS ];
  activation : Peripheral.activation;
  sys_shift : int;
  a_transpose : bool;
  b_transpose : bool;
}

type config_ld = { ld_stride_bytes : int; ld_scale : float; ld_shrunk : bool; ld_id : int }

type config_st = {
  st_stride_bytes : int;
  st_activation : Peripheral.activation;
  st_scale : float;
  st_pool : pool_cfg option;
}

type mv = { dram_addr : int; local : Local_addr.t; cols : int; rows : int }

type compute_args = {
  a : Local_addr.t;
  bd : Local_addr.t;
  a_cols : int;
  a_rows : int;
  bd_cols : int;
  bd_rows : int;
}

type loop_bounds = {
  lw_m : int;
  lw_k : int;
  lw_n : int;
  lw_has_bias : bool;
  lw_activation : Peripheral.activation;
}

type loop_addrs = { lw_a : int; lw_b : int }

type loop_outs = { lw_bias : int; lw_c : int }

type loop_strides = {
  lw_a_stride : int;
  lw_b_stride : int;
  lw_c_stride : int;
  lw_scale : float;
}

type t =
  | Config_ex of config_ex
  | Config_ld of config_ld
  | Config_st of config_st
  | Mvin of mv * int
  | Mvout of mv
  | Preload of { b : Local_addr.t; c : Local_addr.t; b_cols : int; b_rows : int; c_cols : int; c_rows : int }
  | Compute_preloaded of compute_args
  | Compute_accumulated of compute_args
  | Loop_ws_bounds of loop_bounds
  | Loop_ws_addrs of loop_addrs
  | Loop_ws_outs of loop_outs
  | Loop_ws of loop_strides
  | Flush
  | Fence

type insn = { funct : int; rs1 : int64; rs2 : int64 }

(* funct values follow the upstream Gemmini ISA where they exist. *)
let funct_config = 0
let funct_mvin2 = 1
let funct_mvin = 2
let funct_mvout = 3
let funct_compute_preloaded = 4
let funct_compute_accumulated = 5
let funct_preload = 6
let funct_flush = 7
let funct_loop_ws = 8
let funct_loop_ws_bounds = 9
let funct_loop_ws_addrs = 10
let funct_loop_ws_outs = 11
let funct_mvin3 = 14
let funct_fence = 15

let funct_name f =
  match f with
  | 0 -> "CONFIG"
  | 1 -> "MVIN2"
  | 2 -> "MVIN"
  | 3 -> "MVOUT"
  | 4 -> "COMPUTE_PRELOADED"
  | 5 -> "COMPUTE_ACCUMULATED"
  | 6 -> "PRELOAD"
  | 7 -> "FLUSH"
  | 8 -> "LOOP_WS"
  | 9 -> "LOOP_WS_CONFIG_BOUNDS"
  | 10 -> "LOOP_WS_CONFIG_ADDRS"
  | 11 -> "LOOP_WS_CONFIG_OUTS"
  | 14 -> "MVIN3"
  | 15 -> "FENCE"
  | _ -> Printf.sprintf "UNKNOWN(%d)" f

(* --- bit packing helpers ------------------------------------------------ *)

let mask width = Int64.sub (Int64.shift_left 1L width) 1L

let put ~lo ~width value acc =
  let v = Int64.of_int value in
  if Int64.logand v (Int64.lognot (mask width)) <> 0L then
    invalid_arg
      (Printf.sprintf "Isa: field value %d exceeds %d bits" value width);
  Int64.logor acc (Int64.shift_left v lo)

let take ~lo ~width v = Int64.to_int (Int64.logand (Int64.shift_right_logical v lo) (mask width))

let check_range ~what ~lo ~hi v =
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "Isa: %s = %d out of range [%d, %d]" what v lo hi)

(* Activation encoding: 0 = none, 1 = relu, 2 = relu6 (shift in its own
   field). *)
let activation_code = function
  | Peripheral.No_activation -> 0
  | Peripheral.Relu -> 1
  | Peripheral.Relu6 _ -> 2

let activation_shift = function Peripheral.Relu6 { shift } -> shift | _ -> 0

let activation_decode ~code ~shift =
  match code with
  | 0 -> Ok Peripheral.No_activation
  | 1 -> Ok Peripheral.Relu
  | 2 -> Ok (Peripheral.Relu6 { shift })
  | n -> Error (Printf.sprintf "bad activation code %d" n)

let fp32_bits f = Int32.bits_of_float f |> Int64.of_int32 |> Int64.logand (mask 32)
let fp32_of_bits b = Int32.float_of_bits (Int64.to_int32 b)

(* config subcommand selectors in rs1[1:0] *)
let cfg_ex = 0
let cfg_ld = 1
let cfg_st = 2

let encode_mv { dram_addr; local; cols; rows } =
  check_range ~what:"dram_addr" ~lo:0 ~hi:((1 lsl 48) - 1) dram_addr;
  check_range ~what:"cols" ~lo:1 ~hi:0xFFFF cols;
  check_range ~what:"rows" ~lo:1 ~hi:0xFFFF rows;
  let rs1 = put ~lo:0 ~width:48 dram_addr 0L in
  let rs2 =
    0L
    |> put ~lo:0 ~width:32 (Local_addr.to_bits local)
    |> put ~lo:32 ~width:16 cols
    |> put ~lo:48 ~width:16 rows
  in
  (rs1, rs2)

let decode_mv ~rs1 ~rs2 =
  {
    dram_addr = take ~lo:0 ~width:48 rs1;
    local = Local_addr.of_bits (take ~lo:0 ~width:32 rs2);
    cols = take ~lo:32 ~width:16 rs2;
    rows = take ~lo:48 ~width:16 rs2;
  }

let encode_block ~addr ~cols ~rows =
  check_range ~what:"block cols" ~lo:0 ~hi:0xFFFF cols;
  check_range ~what:"block rows" ~lo:0 ~hi:0xFFFF rows;
  0L
  |> put ~lo:0 ~width:32 (Local_addr.to_bits addr)
  |> put ~lo:32 ~width:16 cols
  |> put ~lo:48 ~width:16 rows

let decode_block v =
  ( Local_addr.of_bits (take ~lo:0 ~width:32 v),
    take ~lo:32 ~width:16 v,
    take ~lo:48 ~width:16 v )

let encode = function
  | Config_ex { dataflow; activation; sys_shift; a_transpose; b_transpose } ->
      check_range ~what:"sys_shift" ~lo:0 ~hi:63 sys_shift;
      let rs1 =
        0L
        |> put ~lo:0 ~width:2 cfg_ex
        |> put ~lo:2 ~width:1 (match dataflow with `OS -> 0 | `WS -> 1)
        |> put ~lo:3 ~width:2 (activation_code activation)
        |> put ~lo:5 ~width:6 (activation_shift activation)
        |> put ~lo:11 ~width:1 (if a_transpose then 1 else 0)
        |> put ~lo:12 ~width:1 (if b_transpose then 1 else 0)
        |> put ~lo:16 ~width:6 sys_shift
      in
      { funct = funct_config; rs1; rs2 = 0L }
  | Config_ld { ld_stride_bytes; ld_scale; ld_shrunk; ld_id } ->
      check_range ~what:"ld_id" ~lo:0 ~hi:2 ld_id;
      check_range ~what:"ld_stride" ~lo:0 ~hi:0xFFFF_FFFF ld_stride_bytes;
      let rs1 =
        0L
        |> put ~lo:0 ~width:2 cfg_ld
        |> put ~lo:2 ~width:1 (if ld_shrunk then 1 else 0)
        |> put ~lo:3 ~width:2 ld_id
        |> Int64.logor (Int64.shift_left (fp32_bits ld_scale) 32)
      in
      { funct = funct_config; rs1; rs2 = put ~lo:0 ~width:32 ld_stride_bytes 0L }
  | Config_st { st_stride_bytes; st_activation; st_scale; st_pool } ->
      check_range ~what:"st_stride" ~lo:0 ~hi:0xFFFF_FFFF st_stride_bytes;
      let rs1 =
        0L
        |> put ~lo:0 ~width:2 cfg_st
        |> put ~lo:3 ~width:2 (activation_code st_activation)
        |> put ~lo:5 ~width:6 (activation_shift st_activation)
        |> Int64.logor (Int64.shift_left (fp32_bits st_scale) 32)
      in
      let rs1 =
        match st_pool with
        | None -> rs1
        | Some { window; stride; padding } ->
            check_range ~what:"pool window" ~lo:1 ~hi:15 window;
            check_range ~what:"pool stride" ~lo:1 ~hi:15 stride;
            check_range ~what:"pool padding" ~lo:0 ~hi:15 padding;
            rs1
            |> put ~lo:11 ~width:1 1
            |> put ~lo:12 ~width:4 window
            |> put ~lo:16 ~width:4 stride
            |> put ~lo:20 ~width:4 padding
      in
      { funct = funct_config; rs1; rs2 = put ~lo:0 ~width:32 st_stride_bytes 0L }
  | Mvin (mv, id) ->
      check_range ~what:"mvin id" ~lo:0 ~hi:2 id;
      let rs1, rs2 = encode_mv mv in
      let funct =
        match id with
        | 0 -> funct_mvin
        | 1 -> funct_mvin2
        | _ -> funct_mvin3
      in
      { funct; rs1; rs2 }
  | Mvout mv ->
      let rs1, rs2 = encode_mv mv in
      { funct = funct_mvout; rs1; rs2 }
  | Preload { b; c; b_cols; b_rows; c_cols; c_rows } ->
      {
        funct = funct_preload;
        rs1 = encode_block ~addr:b ~cols:b_cols ~rows:b_rows;
        rs2 = encode_block ~addr:c ~cols:c_cols ~rows:c_rows;
      }
  | Compute_preloaded { a; bd; a_cols; a_rows; bd_cols; bd_rows } ->
      {
        funct = funct_compute_preloaded;
        rs1 = encode_block ~addr:a ~cols:a_cols ~rows:a_rows;
        rs2 = encode_block ~addr:bd ~cols:bd_cols ~rows:bd_rows;
      }
  | Compute_accumulated { a; bd; a_cols; a_rows; bd_cols; bd_rows } ->
      {
        funct = funct_compute_accumulated;
        rs1 = encode_block ~addr:a ~cols:a_cols ~rows:a_rows;
        rs2 = encode_block ~addr:bd ~cols:bd_cols ~rows:bd_rows;
      }
  | Loop_ws_bounds { lw_m; lw_k; lw_n; lw_has_bias; lw_activation } ->
      check_range ~what:"loop m" ~lo:1 ~hi:0xFFFF lw_m;
      check_range ~what:"loop k" ~lo:1 ~hi:0xFFFF lw_k;
      check_range ~what:"loop n" ~lo:1 ~hi:0xFFFF lw_n;
      let rs1 = 0L |> put ~lo:0 ~width:16 lw_m |> put ~lo:16 ~width:16 lw_k |> put ~lo:32 ~width:16 lw_n in
      let rs2 =
        0L
        |> put ~lo:0 ~width:1 (if lw_has_bias then 1 else 0)
        |> put ~lo:1 ~width:2 (activation_code lw_activation)
        |> put ~lo:3 ~width:6 (activation_shift lw_activation)
      in
      { funct = funct_loop_ws_bounds; rs1; rs2 }
  | Loop_ws_addrs { lw_a; lw_b } ->
      check_range ~what:"loop a" ~lo:0 ~hi:((1 lsl 48) - 1) lw_a;
      check_range ~what:"loop b" ~lo:0 ~hi:((1 lsl 48) - 1) lw_b;
      { funct = funct_loop_ws_addrs; rs1 = put ~lo:0 ~width:48 lw_a 0L; rs2 = put ~lo:0 ~width:48 lw_b 0L }
  | Loop_ws_outs { lw_bias; lw_c } ->
      check_range ~what:"loop bias" ~lo:0 ~hi:((1 lsl 48) - 1) lw_bias;
      check_range ~what:"loop c" ~lo:0 ~hi:((1 lsl 48) - 1) lw_c;
      { funct = funct_loop_ws_outs; rs1 = put ~lo:0 ~width:48 lw_bias 0L; rs2 = put ~lo:0 ~width:48 lw_c 0L }
  | Loop_ws { lw_a_stride; lw_b_stride; lw_c_stride; lw_scale } ->
      check_range ~what:"a stride" ~lo:0 ~hi:0xFF_FFFF lw_a_stride;
      check_range ~what:"b stride" ~lo:0 ~hi:0xFF_FFFF lw_b_stride;
      check_range ~what:"c stride" ~lo:0 ~hi:0xFF_FFFF lw_c_stride;
      let rs1 = 0L |> put ~lo:0 ~width:24 lw_a_stride |> put ~lo:24 ~width:24 lw_b_stride in
      let rs2 =
        0L
        |> put ~lo:0 ~width:24 lw_c_stride
        |> Int64.logor (Int64.shift_left (fp32_bits lw_scale) 32)
      in
      { funct = funct_loop_ws; rs1; rs2 }
  | Flush -> { funct = funct_flush; rs1 = 0L; rs2 = 0L }
  | Fence -> { funct = funct_fence; rs1 = 0L; rs2 = 0L }

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let decode { funct; rs1; rs2 } =
  if funct = funct_config then begin
    match take ~lo:0 ~width:2 rs1 with
    | n when n = cfg_ex ->
        let* activation =
          activation_decode ~code:(take ~lo:3 ~width:2 rs1)
            ~shift:(take ~lo:5 ~width:6 rs1)
        in
        Ok
          (Config_ex
             {
               dataflow = (if take ~lo:2 ~width:1 rs1 = 1 then `WS else `OS);
               activation;
               sys_shift = take ~lo:16 ~width:6 rs1;
               a_transpose = take ~lo:11 ~width:1 rs1 = 1;
               b_transpose = take ~lo:12 ~width:1 rs1 = 1;
             })
    | n when n = cfg_ld ->
        Ok
          (Config_ld
             {
               ld_stride_bytes = take ~lo:0 ~width:32 rs2;
               ld_scale = fp32_of_bits (Int64.shift_right_logical rs1 32);
               ld_shrunk = take ~lo:2 ~width:1 rs1 = 1;
               ld_id = take ~lo:3 ~width:2 rs1;
             })
    | n when n = cfg_st ->
        let* st_activation =
          activation_decode ~code:(take ~lo:3 ~width:2 rs1)
            ~shift:(take ~lo:5 ~width:6 rs1)
        in
        let st_pool =
          if take ~lo:11 ~width:1 rs1 = 1 then
            Some
              {
                window = take ~lo:12 ~width:4 rs1;
                stride = take ~lo:16 ~width:4 rs1;
                padding = take ~lo:20 ~width:4 rs1;
              }
          else None
        in
        Ok
          (Config_st
             {
               st_stride_bytes = take ~lo:0 ~width:32 rs2;
               st_activation;
               st_scale = fp32_of_bits (Int64.shift_right_logical rs1 32);
               st_pool;
             })
    | n -> Error (Printf.sprintf "bad config selector %d" n)
  end
  else if funct = funct_mvin then Ok (Mvin (decode_mv ~rs1 ~rs2, 0))
  else if funct = funct_mvin2 then Ok (Mvin (decode_mv ~rs1 ~rs2, 1))
  else if funct = funct_mvin3 then Ok (Mvin (decode_mv ~rs1 ~rs2, 2))
  else if funct = funct_mvout then Ok (Mvout (decode_mv ~rs1 ~rs2))
  else if funct = funct_preload then begin
    let b, b_cols, b_rows = decode_block rs1 in
    let c, c_cols, c_rows = decode_block rs2 in
    Ok (Preload { b; c; b_cols; b_rows; c_cols; c_rows })
  end
  else if funct = funct_compute_preloaded || funct = funct_compute_accumulated
  then begin
    let a, a_cols, a_rows = decode_block rs1 in
    let bd, bd_cols, bd_rows = decode_block rs2 in
    let args = { a; bd; a_cols; a_rows; bd_cols; bd_rows } in
    if funct = funct_compute_preloaded then Ok (Compute_preloaded args)
    else Ok (Compute_accumulated args)
  end
  else if funct = funct_loop_ws_bounds then
    let* lw_activation =
      activation_decode ~code:(take ~lo:1 ~width:2 rs2) ~shift:(take ~lo:3 ~width:6 rs2)
    in
    Ok
      (Loop_ws_bounds
         {
           lw_m = take ~lo:0 ~width:16 rs1;
           lw_k = take ~lo:16 ~width:16 rs1;
           lw_n = take ~lo:32 ~width:16 rs1;
           lw_has_bias = take ~lo:0 ~width:1 rs2 = 1;
           lw_activation;
         })
  else if funct = funct_loop_ws_addrs then
    Ok (Loop_ws_addrs { lw_a = take ~lo:0 ~width:48 rs1; lw_b = take ~lo:0 ~width:48 rs2 })
  else if funct = funct_loop_ws_outs then
    Ok (Loop_ws_outs { lw_bias = take ~lo:0 ~width:48 rs1; lw_c = take ~lo:0 ~width:48 rs2 })
  else if funct = funct_loop_ws then
    Ok
      (Loop_ws
         {
           lw_a_stride = take ~lo:0 ~width:24 rs1;
           lw_b_stride = take ~lo:24 ~width:24 rs1;
           lw_c_stride = take ~lo:0 ~width:24 rs2;
           lw_scale = fp32_of_bits (Int64.shift_right_logical rs2 32);
         })
  else if funct = funct_flush then Ok Flush
  else if funct = funct_fence then Ok Fence
  else Error (Printf.sprintf "unknown funct %d" funct)

let activation_to_string = function
  | Peripheral.No_activation -> "none"
  | Peripheral.Relu -> "relu"
  | Peripheral.Relu6 { shift } -> Printf.sprintf "relu6<<%d" shift

let mnemonic = function
  | Config_ex _ -> "config_ex"
  | Config_ld _ -> "config_ld"
  | Config_st _ -> "config_st"
  | Mvin _ -> "mvin"
  | Mvout _ -> "mvout"
  | Preload _ -> "preload"
  | Compute_preloaded _ -> "compute.preloaded"
  | Compute_accumulated _ -> "compute.accumulated"
  | Loop_ws_bounds _ -> "loop_ws.bounds"
  | Loop_ws_addrs _ -> "loop_ws.addrs"
  | Loop_ws_outs _ -> "loop_ws.outs"
  | Loop_ws _ -> "loop_ws"
  | Flush -> "flush"
  | Fence -> "fence"

let to_string = function
  | Config_ex c ->
      Printf.sprintf "config_ex df=%s act=%s shift=%d%s%s"
        (match c.dataflow with `WS -> "WS" | `OS -> "OS")
        (activation_to_string c.activation)
        c.sys_shift
        (if c.a_transpose then " At" else "")
        (if c.b_transpose then " Bt" else "")
  | Config_ld c ->
      Printf.sprintf "config_ld[%d] stride=%d scale=%g%s" c.ld_id c.ld_stride_bytes
        c.ld_scale
        (if c.ld_shrunk then " shrunk" else "")
  | Config_st c ->
      Printf.sprintf "config_st stride=%d act=%s scale=%g%s" c.st_stride_bytes
        (activation_to_string c.st_activation)
        c.st_scale
        (match c.st_pool with
        | None -> ""
        | Some p -> Printf.sprintf " pool=%dx%d/s%d/p%d" p.window p.window p.stride p.padding)
  | Mvin (mv, id) ->
      Printf.sprintf "mvin%d 0x%x -> %s (%dx%d)" id mv.dram_addr
        (Local_addr.to_string mv.local) mv.rows mv.cols
  | Mvout mv ->
      Printf.sprintf "mvout %s -> 0x%x (%dx%d)"
        (Local_addr.to_string mv.local) mv.dram_addr mv.rows mv.cols
  | Preload p ->
      Printf.sprintf "preload b=%s (%dx%d) c=%s (%dx%d)"
        (Local_addr.to_string p.b) p.b_rows p.b_cols (Local_addr.to_string p.c)
        p.c_rows p.c_cols
  | Compute_preloaded a ->
      Printf.sprintf "compute.preloaded a=%s (%dx%d) bd=%s (%dx%d)"
        (Local_addr.to_string a.a) a.a_rows a.a_cols (Local_addr.to_string a.bd)
        a.bd_rows a.bd_cols
  | Compute_accumulated a ->
      Printf.sprintf "compute.accumulated a=%s (%dx%d) bd=%s (%dx%d)"
        (Local_addr.to_string a.a) a.a_rows a.a_cols (Local_addr.to_string a.bd)
        a.bd_rows a.bd_cols
  | Loop_ws_bounds b ->
      Printf.sprintf "loop_ws.bounds %dx%dx%d%s act=%s" b.lw_m b.lw_k b.lw_n
        (if b.lw_has_bias then " +bias" else "")
        (activation_to_string b.lw_activation)
  | Loop_ws_addrs a -> Printf.sprintf "loop_ws.addrs a=0x%x b=0x%x" a.lw_a a.lw_b
  | Loop_ws_outs o -> Printf.sprintf "loop_ws.outs bias=0x%x c=0x%x" o.lw_bias o.lw_c
  | Loop_ws s ->
      Printf.sprintf "loop_ws strides=%d/%d/%d scale=%g" s.lw_a_stride
        s.lw_b_stride s.lw_c_stride s.lw_scale
  | Flush -> "flush"
  | Fence -> "fence"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) (b : t) = a = b

(* --- semantic validation ------------------------------------------------- *)

module Fault = Gem_sim.Fault

let ceil_div a b = (a + b - 1) / b

let illegal fmt =
  Printf.ksprintf (fun msg -> Error (Fault.Illegal_inst msg)) fmt

let field ~what ~lo ~hi v =
  if v < lo || v > hi then
    illegal "%s = %d out of range [%d, %d]" what v lo hi
  else Ok ()

let finite_scale scale =
  if Float.is_finite scale then Ok () else Error (Fault.Acc_overflow { scale })

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

(* A strided local access touches rows [row, row + strides*dim + rows) of
   its target memory: mvin/mvout place each dim-wide column block a full
   array-height further down, mirroring how the kernels tile wide
   matrices. *)
let local_extent ~p ~local ~cols ~rows =
  let dim = Params.dim p in
  let blocks = ceil_div cols dim in
  let row = Local_addr.row local in
  let target, limit =
    if Local_addr.is_accumulator local then ("accumulator", Params.acc_rows p)
    else ("scratchpad", Params.sp_rows p)
  in
  let last = row + ((blocks - 1) * dim) + rows in
  if last > limit then
    Error (Fault.Local_oob { target; row; rows = last - row; limit })
  else Ok ()

let block_extent ~p ~local ~rows =
  let row = Local_addr.row local in
  let target, limit =
    if Local_addr.is_accumulator local then ("accumulator", Params.acc_rows p)
    else ("scratchpad", Params.sp_rows p)
  in
  if row + rows > limit then
    Error (Fault.Local_oob { target; row; rows; limit })
  else Ok ()

let dram_max = (1 lsl 48) - 1

let validate p cmd =
  let dim = Params.dim p in
  match cmd with
  | Config_ex { dataflow; sys_shift; _ } ->
      let* () = field ~what:"sys_shift" ~lo:0 ~hi:63 sys_shift in
      if Dataflow.supports p.Params.dataflow dataflow then Ok ()
      else
        illegal "dataflow %s not supported by this instance (%s)"
          (match dataflow with `WS -> "WS" | `OS -> "OS")
          (Dataflow.to_string p.Params.dataflow)
  | Config_ld { ld_stride_bytes; ld_scale; ld_id; _ } ->
      let* () = field ~what:"ld_id" ~lo:0 ~hi:2 ld_id in
      let* () = field ~what:"ld_stride" ~lo:0 ~hi:0xFFFF_FFFF ld_stride_bytes in
      finite_scale ld_scale
  | Config_st { st_stride_bytes; st_scale; st_pool; _ } ->
      let* () = field ~what:"st_stride" ~lo:0 ~hi:0xFFFF_FFFF st_stride_bytes in
      let* () =
        match st_pool with
        | None -> Ok ()
        | Some { window; stride; padding } ->
            let* () = field ~what:"pool window" ~lo:1 ~hi:15 window in
            let* () = field ~what:"pool stride" ~lo:1 ~hi:15 stride in
            field ~what:"pool padding" ~lo:0 ~hi:15 padding
      in
      finite_scale st_scale
  | Mvin ({ dram_addr; local; cols; rows }, id) ->
      let* () = field ~what:"mvin id" ~lo:0 ~hi:2 id in
      let* () = field ~what:"dram_addr" ~lo:0 ~hi:dram_max dram_addr in
      let* () = field ~what:"mvin cols" ~lo:1 ~hi:(4 * dim) cols in
      let* () = field ~what:"mvin rows" ~lo:1 ~hi:dim rows in
      if Local_addr.is_garbage local then
        illegal "mvin destination is the garbage address"
      else if Local_addr.accumulate_flag local && not (Local_addr.is_accumulator local)
      then illegal "mvin accumulate flag on a scratchpad destination"
      else local_extent ~p ~local ~cols ~rows
  | Mvout { dram_addr; local; cols; rows } ->
      let* () = field ~what:"dram_addr" ~lo:0 ~hi:dram_max dram_addr in
      let* () = field ~what:"mvout cols" ~lo:1 ~hi:dim cols in
      let* () = field ~what:"mvout rows" ~lo:1 ~hi:dim rows in
      if Local_addr.is_garbage local then
        illegal "mvout source is the garbage address"
      else local_extent ~p ~local ~cols ~rows
  | Preload { b; c; b_cols; b_rows; c_cols; c_rows } ->
      let* () = field ~what:"preload b_cols" ~lo:1 ~hi:dim b_cols in
      let* () = field ~what:"preload b_rows" ~lo:1 ~hi:dim b_rows in
      let* () = field ~what:"preload c_cols" ~lo:1 ~hi:dim c_cols in
      let* () = field ~what:"preload c_rows" ~lo:1 ~hi:dim c_rows in
      let* () =
        if Local_addr.is_garbage b then Ok ()
        else block_extent ~p ~local:b ~rows:b_rows
      in
      if Local_addr.is_garbage c then Ok ()
      else block_extent ~p ~local:c ~rows:c_rows
  | Compute_preloaded { a; bd; a_cols; a_rows; bd_cols; bd_rows }
  | Compute_accumulated { a; bd; a_cols; a_rows; bd_cols; bd_rows } ->
      let* () = field ~what:"compute a_cols" ~lo:1 ~hi:0xFFFF a_cols in
      let* () = field ~what:"compute a_rows" ~lo:1 ~hi:0xFFFF a_rows in
      let* () = field ~what:"compute bd_cols" ~lo:1 ~hi:0xFFFF bd_cols in
      let* () = field ~what:"compute bd_rows" ~lo:1 ~hi:0xFFFF bd_rows in
      let* () =
        if Local_addr.is_garbage a then Ok ()
        else block_extent ~p ~local:a ~rows:(min a_rows dim)
      in
      if Local_addr.is_garbage bd then Ok ()
      else block_extent ~p ~local:bd ~rows:(min bd_rows dim)
  | Loop_ws_bounds { lw_m; lw_k; lw_n; _ } ->
      let* () = field ~what:"loop m" ~lo:1 ~hi:0xFFFF lw_m in
      let* () = field ~what:"loop k" ~lo:1 ~hi:0xFFFF lw_k in
      field ~what:"loop n" ~lo:1 ~hi:0xFFFF lw_n
  | Loop_ws_addrs { lw_a; lw_b } ->
      let* () = field ~what:"loop a" ~lo:0 ~hi:dram_max lw_a in
      field ~what:"loop b" ~lo:0 ~hi:dram_max lw_b
  | Loop_ws_outs { lw_bias; lw_c } ->
      let* () = field ~what:"loop bias" ~lo:0 ~hi:dram_max lw_bias in
      field ~what:"loop c" ~lo:0 ~hi:dram_max lw_c
  | Loop_ws { lw_a_stride; lw_b_stride; lw_c_stride; lw_scale } ->
      let* () = field ~what:"a stride" ~lo:0 ~hi:0xFF_FFFF lw_a_stride in
      let* () = field ~what:"b stride" ~lo:0 ~hi:0xFF_FFFF lw_b_stride in
      let* () = field ~what:"c stride" ~lo:0 ~hi:0xFF_FFFF lw_c_stride in
      finite_scale lw_scale
  | Flush | Fence -> Ok ()
