open Gem_util

let breakdown_table (r : Synthesis.report) =
  let table =
    Table.create
      ~title:
        (Printf.sprintf "Area breakdown (%s, fmax %.2f GHz, %.1f mW)"
           (Params.describe r.Synthesis.params)
           r.Synthesis.fmax_ghz r.Synthesis.power_mw)
      [ "Component"; "Area (um^2)"; "% of system area" ]
  in
  Table.set_align table 1 Table.Right;
  Table.set_align table 2 Table.Right;
  List.iter
    (fun c ->
      Table.add_row table
        [
          c.Synthesis.comp_name;
          Table.fmt_int (int_of_float c.Synthesis.area_um2);
          Table.fmt_pct (100. *. c.Synthesis.share);
        ])
    r.Synthesis.components;
  Table.add_sep table;
  Table.add_row table
    [ "total"; Table.fmt_int (int_of_float r.Synthesis.total_area_um2); "100.0%" ];
  table

let layout_sketch ?(width = 48) (r : Synthesis.report) =
  let total_rows = 24 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.make (width + 2) '-');
  Buffer.add_char buf '\n';
  (* Stack components vertically, each box's height proportional to its
     area share; label centered inside. *)
  let remaining = ref total_rows in
  let n = List.length r.Synthesis.components in
  List.iteri
    (fun i c ->
      let rows =
        if i = n - 1 then !remaining
        else
          let h =
            max 1 (int_of_float (Float.round (c.Synthesis.share *. float_of_int total_rows)))
          in
          min h (max 1 (!remaining - (n - 1 - i)))
      in
      remaining := !remaining - rows;
      let label =
        Printf.sprintf "%s (%.1f%%)" c.Synthesis.comp_name (100. *. c.Synthesis.share)
      in
      let label =
        if String.length label > width then String.sub label 0 width else label
      in
      for row = 0 to rows - 1 do
        if row = rows / 2 then begin
          let pad = width - String.length label in
          let left = pad / 2 in
          Buffer.add_char buf '|';
          Buffer.add_string buf (String.make left ' ');
          Buffer.add_string buf label;
          Buffer.add_string buf (String.make (pad - left) ' ');
          Buffer.add_string buf "|\n"
        end
        else begin
          Buffer.add_char buf '|';
          Buffer.add_string buf (String.make width ' ');
          Buffer.add_string buf "|\n"
        end
      done;
      Buffer.add_string buf (String.make (width + 2) '-');
      Buffer.add_char buf '\n')
    r.Synthesis.components;
  Buffer.contents buf

let render r = Table.render (breakdown_table r) ^ "\n" ^ layout_sketch r
