open Gem_util
module Fault = Gem_sim.Fault
module Engine = Gem_sim.Engine

type t = {
  p : Params.t;
  engine : Engine.t option;
  name : string;
  core : int;
  tiles : Tile.t array array; (* mesh_rows x mesh_cols *)
  (* h_regs.(tr).(tc): pipeline register bank feeding tile (tr,tc) from the
     left (only tc >= 1 is used). Each bank carries [tile_rows] `a` values. *)
  mutable h_regs : int array array array;
  (* v_regs.(tr).(tc): register bank feeding tile (tr,tc) from above (only
     tr >= 1 is used). Carries [tile_cols] psum (WS) or `b` (OS) values. *)
  mutable v_regs : int array array array;
}

let fresh_regs p =
  let h =
    Array.init p.Params.mesh_rows (fun _ ->
        Array.init p.Params.mesh_cols (fun _ -> Array.make p.Params.tile_rows 0))
  in
  let v =
    Array.init p.Params.mesh_rows (fun _ ->
        Array.init p.Params.mesh_cols (fun _ -> Array.make p.Params.tile_cols 0))
  in
  (h, v)

let create ?engine ?(name = "mesh") ?(core = -1) p =
  let p = Params.validate_exn p in
  let tiles =
    Array.init p.Params.mesh_rows (fun _ ->
        Array.init p.Params.mesh_cols (fun _ ->
            Tile.create ~rows:p.Params.tile_rows ~cols:p.Params.tile_cols
              ~acc_type:p.Params.acc_type))
  in
  let h_regs, v_regs = fresh_regs p in
  { p; engine; name; core; tiles; h_regs; v_regs }

(* Architecturally reachable errors (malformed operands fed to the array)
   trap; with an engine attached the trap is also counted and streamed. *)
let trap t cause =
  let cycle = match t.engine with Some e -> Engine.now e | None -> 0 in
  let fault = Fault.make ~core:t.core ~component:t.name ~cycle cause in
  match t.engine with Some e -> Engine.trap e fault | None -> Fault.trap fault

let illegal t fmt =
  Printf.ksprintf (fun msg -> trap t (Fault.Illegal_inst msg)) fmt

let params t = t.p
let dim_rows t = Params.dim_rows t.p
let dim_cols t = Params.dim_cols t.p

let clear t =
  Array.iter (Array.iter Tile.clear_stationary) t.tiles;
  let h, v = fresh_regs t.p in
  t.h_regs <- h;
  t.v_regs <- v

let preload_weights t w =
  let r = dim_rows t and c = dim_cols t in
  if Matrix.rows w > r || Matrix.cols w > c then
    invalid_arg
      (Printf.sprintf
         "Mesh.preload_weights: %dx%d weight matrix larger than %dx%d array"
         (Matrix.rows w) (Matrix.cols w) r c);
  for pr = 0 to r - 1 do
    for pc = 0 to c - 1 do
      let v =
        if pr < Matrix.rows w && pc < Matrix.cols w then Matrix.get w pr pc else 0
      in
      let tile = t.tiles.(pr / t.p.Params.tile_rows).(pc / t.p.Params.tile_cols) in
      Tile.set_stationary tile ~r:(pr mod t.p.Params.tile_rows)
        ~c:(pc mod t.p.Params.tile_cols) v
    done
  done;
  (* The shift-in pipeline moves one row per cycle through the vertical
     ports: dim_rows cycles to fill the array. *)
  r

(* One synchronous step of the mesh. Tiles read only edge inputs and the
   previous cycle's register values, so evaluation order between tiles is
   irrelevant; registers are double-buffered. [vertical] carries psums in
   WS mode and `b` values in OS mode. Returns the combinational outputs of
   the bottom tile row (one value per array column). *)
let step t ~pass ~a_edge ~top_edge =
  let p = t.p in
  let mr = p.Params.mesh_rows and mc = p.Params.mesh_cols in
  let tr = p.Params.tile_rows and tc = p.Params.tile_cols in
  let new_h, new_v = fresh_regs p in
  let bottom = Array.make (dim_cols t) 0 in
  for i = 0 to mr - 1 do
    for j = 0 to mc - 1 do
      let a_in =
        if j = 0 then Array.sub a_edge (i * tr) tr else t.h_regs.(i).(j)
      in
      let top_in =
        if i = 0 then Array.sub top_edge (j * tc) tc else t.v_regs.(i).(j)
      in
      let a_out, down_out = pass t.tiles.(i).(j) ~a_in ~top_in in
      if j < mc - 1 then new_h.(i).(j + 1) <- a_out;
      if i < mr - 1 then new_v.(i + 1).(j) <- down_out
      else Array.blit down_out 0 bottom (j * tc) tc
    done
  done;
  t.h_regs <- new_h;
  t.v_regs <- new_v;
  bottom

let ws_pass tile ~a_in ~top_in = Tile.ws_pass tile ~a_in ~psum_in:top_in
let os_pass tile ~a_in ~top_in = Tile.os_pass tile ~a_in ~b_in:top_in

(* Tile-granularity signal delays: crossing into horizontal tile index k
   costs k registers. *)
let hdelay t c = c / t.p.Params.tile_cols
let vdelay t r = r / t.p.Params.tile_rows

type result = { out : Matrix.t; cycles : int }

let check_dataflow t which =
  if not (Dataflow.supports t.p.Params.dataflow which) then
    illegal t "dataflow %s not supported by this instance"
      (match which with `WS -> "WS" | `OS -> "OS")

let run_ws t ~a ~b ~d =
  let i_n = Matrix.rows a and k_n = Matrix.cols a in
  let j_n = Matrix.cols b in
  if Matrix.rows b <> k_n then
    illegal t "run_matmul: A is %dx%d but B is %dx%d" i_n k_n (Matrix.rows b)
      j_n;
  if k_n > dim_rows t then
    illegal t "run_matmul: K=%d exceeds %d array rows" k_n (dim_rows t);
  if j_n > dim_cols t then
    illegal t "run_matmul: J=%d exceeds %d array cols" j_n (dim_cols t);
  (match d with
  | Some d ->
      if Matrix.rows d <> i_n || Matrix.cols d <> j_n then
        illegal t "run_matmul: D is %dx%d, want %dx%d" (Matrix.rows d)
          (Matrix.cols d) i_n j_n
  | None -> ());
  let preload_cycles = preload_weights t b in
  let out = Matrix.create ~rows:i_n ~cols:j_n in
  let bottom_delay = t.p.Params.mesh_rows - 1 in
  (* Last sample time: output (i_n-1, j_n-1). *)
  let t_last = i_n - 1 + hdelay t (j_n - 1) + bottom_delay in
  let a_edge = Array.make (dim_rows t) 0 in
  let top_edge = Array.make (dim_cols t) 0 in
  for cycle = 0 to t_last do
    (* Feed A: array row r receives a[i][r] at cycle i + vdelay(r). *)
    Array.fill a_edge 0 (dim_rows t) 0;
    for r = 0 to min (dim_rows t) k_n - 1 do
      let i = cycle - vdelay t r in
      if i >= 0 && i < i_n then a_edge.(r) <- Matrix.get a i r
    done;
    (* Feed bias D at the top: column c receives d[i][c] at i + hdelay(c). *)
    Array.fill top_edge 0 (dim_cols t) 0;
    (match d with
    | None -> ()
    | Some d ->
        for c = 0 to j_n - 1 do
          let i = cycle - hdelay t c in
          if i >= 0 && i < i_n then top_edge.(c) <- Matrix.get d i c
        done);
    let bottom = step t ~pass:ws_pass ~a_edge ~top_edge in
    (* Sample C: output (i,c) leaves the bottom at i + hdelay(c) + depth. *)
    for c = 0 to j_n - 1 do
      let i = cycle - hdelay t c - bottom_delay in
      if i >= 0 && i < i_n then Matrix.set out i c bottom.(c)
    done
  done;
  { out; cycles = preload_cycles + t_last + 1 }

let run_os t ~a ~b ~d =
  let i_n = Matrix.rows a and k_n = Matrix.cols a in
  let j_n = Matrix.cols b in
  if Matrix.rows b <> k_n then
    illegal t "run_matmul: A is %dx%d but B is %dx%d" i_n k_n (Matrix.rows b)
      j_n;
  if i_n > dim_rows t then
    illegal t "run_matmul: I=%d exceeds %d array rows" i_n (dim_rows t);
  if j_n > dim_cols t then
    illegal t "run_matmul: J=%d exceeds %d array cols" j_n (dim_cols t);
  clear t;
  (* Optional bias: pre-bias the stationary accumulators. *)
  (match d with
  | None -> ()
  | Some d ->
      if Matrix.rows d <> i_n || Matrix.cols d <> j_n then
        illegal t "run_matmul: D is %dx%d, want %dx%d" (Matrix.rows d)
          (Matrix.cols d) i_n j_n;
      for r = 0 to i_n - 1 do
        for c = 0 to j_n - 1 do
          let tile = t.tiles.(r / t.p.Params.tile_rows).(c / t.p.Params.tile_cols) in
          Tile.set_stationary tile ~r:(r mod t.p.Params.tile_rows)
            ~c:(c mod t.p.Params.tile_cols) (Matrix.get d r c)
        done
      done);
  let t_last = k_n - 1 + vdelay t (i_n - 1) + hdelay t (j_n - 1) in
  let a_edge = Array.make (dim_rows t) 0 in
  let top_edge = Array.make (dim_cols t) 0 in
  for cycle = 0 to t_last do
    Array.fill a_edge 0 (dim_rows t) 0;
    for r = 0 to min (dim_rows t) i_n - 1 do
      let k = cycle - vdelay t r in
      if k >= 0 && k < k_n then a_edge.(r) <- Matrix.get a r k
    done;
    Array.fill top_edge 0 (dim_cols t) 0;
    for c = 0 to j_n - 1 do
      let k = cycle - hdelay t c in
      if k >= 0 && k < k_n then top_edge.(c) <- Matrix.get b k c
    done;
    ignore (step t ~pass:os_pass ~a_edge ~top_edge)
  done;
  (* Read the stationary results; the hardware shifts them out over
     [dim_rows] cycles, which we charge in the cycle count. *)
  let out =
    Matrix.init ~rows:i_n ~cols:j_n (fun r c ->
        let tile = t.tiles.(r / t.p.Params.tile_rows).(c / t.p.Params.tile_cols) in
        Tile.get_stationary tile ~r:(r mod t.p.Params.tile_rows)
          ~c:(c mod t.p.Params.tile_cols))
  in
  { out; cycles = t_last + 1 + dim_rows t }

let run_matmul t ~dataflow ~a ~b ?d () =
  check_dataflow t dataflow;
  match dataflow with `WS -> run_ws t ~a ~b ~d | `OS -> run_os t ~a ~b ~d

let block_cycles p ~dataflow ~rows ~k ~cols ~preload =
  let p = Params.validate_exn p in
  if rows <= 0 || k <= 0 || cols <= 0 then
    invalid_arg
      (Printf.sprintf "Mesh.block_cycles: non-positive block %dx%dx%d" rows k
         cols);
  let hdelay c = c / p.Params.tile_cols in
  let vdelay r = r / p.Params.tile_rows in
  match dataflow with
  | `WS ->
      let pl = if preload then Params.dim_rows p else 0 in
      pl + rows + hdelay (cols - 1) + (p.Params.mesh_rows - 1)
  | `OS ->
      (* Preload-less dataflow; drain always charged. *)
      k + vdelay (rows - 1) + hdelay (cols - 1) + Params.dim_rows p

(* Back-to-back blocks hide the pipeline skew; only the issue occupancy
   remains. The 2-cycle bubble covers the control handoff between blocks. *)
let inter_block_bubble = 4

let pipelined_block_cycles p ~dataflow ~rows ~k ~cols ~preload =
  let p = Params.validate_exn p in
  if rows <= 0 || k <= 0 || cols <= 0 then
    invalid_arg
      (Printf.sprintf "Mesh.pipelined_block_cycles: non-positive block %dx%dx%d"
         rows k cols);
  match dataflow with
  | `WS ->
      let occupancy = if preload then max rows (Params.dim p) else rows in
      occupancy + inter_block_bubble
  | `OS ->
      (* The OS drain shares the vertical ports, so it is not hidden. *)
      k + Params.dim p + inter_block_bubble

let block_attrs ~dataflow ~rows ~k ~cols ~preload =
  [
    ("dataflow", match dataflow with `WS -> "ws" | `OS -> "os");
    ("rows", string_of_int rows);
    ("k", string_of_int k);
    ("cols", string_of_int cols);
    ("preload", if preload then "1" else "0");
  ]

let peak_macs_per_cycle p = Params.pes p

let utilization p ~dataflow ~rows ~k ~cols =
  let cyc = block_cycles p ~dataflow ~rows ~k ~cols ~preload:true in
  let macs = rows * k * cols in
  float_of_int macs /. (float_of_int cyc *. float_of_int (peak_macs_per_cycle p))
