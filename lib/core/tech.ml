type t = {
  name : string;
  ff_delay_ns : float;
  mul_delay_ns : float;
  add_delay_ns : float;
  tree_level_delay_ns : float;
  mul_area_per_bit2 : float;
  add_area_per_bit : float;
  reg_area_per_bit : float;
  pe_control_area : float;
  area_freq_slope : float;
  sram_area_per_byte : float;
  acc_sram_area_per_byte : float;
  sram_bank_overhead : float;
  dma_area : float;
  controller_area : float;
  im2col_area : float;
  pooling_area : float;
  transposer_area_per_pe_col : float;
  rocket_area : float;
  boom_area : float;
  comb_power_per_um2_ghz : float;
  reg_power_per_bit_ghz : float;
  sram_power_per_kb_ghz : float;
  leakage_power_per_um2 : float;
}

let intel_22ffl =
  {
    name = "intel-22ffl";
    ff_delay_ns = 0.15;
    mul_delay_ns = 0.25;
    add_delay_ns = 0.10;
    tree_level_delay_ns = 0.105;
    mul_area_per_bit2 = 1.45;
    add_area_per_bit = 1.50;
    reg_area_per_bit = 1.00;
    pe_control_area = 26.4;
    area_freq_slope = 0.50;
    sram_area_per_byte = 2.125;
    acc_sram_area_per_byte = 2.28;
    sram_bank_overhead = 1500.0;
    dma_area = 22_000.0;
    controller_area = 26_000.0;
    im2col_area = 14_000.0;
    pooling_area = 8_000.0;
    transposer_area_per_pe_col = 140.0;
    rocket_area = 171_000.0;
    boom_area = 1_150_000.0;
    comb_power_per_um2_ghz = 0.00105;
    reg_power_per_bit_ghz = 0.00125;
    sram_power_per_kb_ghz = 0.045;
    leakage_power_per_um2 = 0.0000085;
  }

let scale_to_node t ~factor =
  if factor <= 0. then invalid_arg "Tech.scale_to_node: non-positive factor";
  let a x = x *. factor *. factor in
  let d x = x *. factor in
  {
    t with
    name = Printf.sprintf "%s-x%.2f" t.name factor;
    ff_delay_ns = d t.ff_delay_ns;
    mul_delay_ns = d t.mul_delay_ns;
    add_delay_ns = d t.add_delay_ns;
    tree_level_delay_ns = d t.tree_level_delay_ns;
    mul_area_per_bit2 = a t.mul_area_per_bit2;
    add_area_per_bit = a t.add_area_per_bit;
    reg_area_per_bit = a t.reg_area_per_bit;
    pe_control_area = a t.pe_control_area;
    sram_area_per_byte = a t.sram_area_per_byte;
    acc_sram_area_per_byte = a t.acc_sram_area_per_byte;
    sram_bank_overhead = a t.sram_bank_overhead;
    dma_area = a t.dma_area;
    controller_area = a t.controller_area;
    im2col_area = a t.im2col_area;
    pooling_area = a t.pooling_area;
    transposer_area_per_pe_col = a t.transposer_area_per_pe_col;
    rocket_area = a t.rocket_area;
    boom_area = a t.boom_area;
  }
