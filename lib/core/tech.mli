(** Process-technology coefficients for the analytical synthesis model.

    The paper synthesizes Gemmini instances with Cadence Genus/Innovus in
    Intel 22FFL; we replace that flow with an analytical model whose
    coefficients are fitted to the paper's published data points:

    - Fig. 6: 16x16 int8 array = 116K um^2, 256 KB scratchpad = 544K um^2,
      64 KB accumulator = 146K um^2, Rocket core = 171K um^2;
    - Fig. 3 / Section III-A: fully-pipelined vs fully-combinational 256-PE
      arrays differ by 2.7x in fmax, 1.8x in area and 3.0x in power.

    Two modeling choices matter: (1) synthesized area grows with target
    frequency (gate upsizing), captured by [area_freq_slope]; (2) a
    combinational tile's reduction is retimed into a tree by synthesis, so
    critical path grows with log2 of the tile dimensions. *)

type t = {
  name : string;
  (* delay, ns *)
  ff_delay_ns : float;  (** clk->q + setup *)
  mul_delay_ns : float;  (** 8-bit multiplier *)
  add_delay_ns : float;  (** accumulator-width adder *)
  tree_level_delay_ns : float;  (** per log2 level of in-tile reduction *)
  (* area, um^2 *)
  mul_area_per_bit2 : float;  (** x input_bits^2 *)
  add_area_per_bit : float;
  reg_area_per_bit : float;
  pe_control_area : float;
  area_freq_slope : float;  (** synthesized area x (1 + slope * fmax_ghz) *)
  sram_area_per_byte : float;  (** single-port scratchpad SRAM *)
  acc_sram_area_per_byte : float;  (** accumulator SRAM (wider, rd+wr) *)
  sram_bank_overhead : float;  (** per-bank periphery *)
  dma_area : float;
  controller_area : float;
  im2col_area : float;
  pooling_area : float;
  transposer_area_per_pe_col : float;
  rocket_area : float;  (** in-order host CPU *)
  boom_area : float;  (** out-of-order host CPU *)
  (* power, mW *)
  comb_power_per_um2_ghz : float;
  reg_power_per_bit_ghz : float;
  sram_power_per_kb_ghz : float;
  leakage_power_per_um2 : float;
}

val intel_22ffl : t
(** The calibrated default. *)

val scale_to_node : t -> factor:float -> t
(** Crude node scaling: multiplies areas by [factor^2], delays by
    [factor], keeping the model self-consistent for what-if studies. *)
