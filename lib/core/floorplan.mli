(** Renders a synthesis report as the paper's Fig. 6: an area-breakdown
    table plus a proportional ASCII floorplan sketch (the Innovus layout
    substitute). *)

val breakdown_table : Synthesis.report -> Gem_util.Table.t
(** Component / area (um^2) / % of system area, plus a total row. *)

val layout_sketch : ?width:int -> Synthesis.report -> string
(** A [width]-character-wide ASCII rendering where each component's box
    area is proportional to its silicon area (default width 48). *)

val render : Synthesis.report -> string
(** Table followed by sketch. *)
