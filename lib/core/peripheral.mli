(** Configurable peripheral circuitry around the spatial array.

    The paper (Section III-A) lists the "other commonly-used DNN kernels"
    Gemmini supports in hardware next to the array: pooling, non-linear
    activations (ReLU / ReLU6), matrix-scalar multiplications, an optional
    on-the-fly im2col block, and a transposer. These are the functional
    models; whether each block exists in a given instance is a
    {!Params.t} choice, and the area they add is accounted by
    {!Synthesis}. *)

type activation = No_activation | Relu | Relu6 of { shift : int }

val apply_activation : activation -> int -> int

val scale_to : Dtype.t -> scale:float -> int -> int
(** The accumulator read-out path: scale (rounding, nearest-even) and
    saturate an accumulator value down to the given narrower type.
    [scale_to Int32 ~scale:1.0] is the identity used for full-width
    reads. *)

val matrix_scalar_mul : scale:float -> out_type:Dtype.t -> Gem_util.Matrix.t -> Gem_util.Matrix.t

(** 2-D max pooling over an NHWC tensor, as performed by the mvout path's
    pooling unit. *)
val max_pool :
  window:int ->
  stride:int ->
  padding:int ->
  Gem_util.Tensor.t ->
  Gem_util.Tensor.t
(** Input and output are rank-4 NHWC. Padding cells are -infinity
    (never selected). *)

val avg_pool_global : Gem_util.Tensor.t -> Gem_util.Tensor.t
(** Global average pooling N,H,W,C -> N,1,1,C with round-to-nearest. *)

val im2col :
  input:Gem_util.Tensor.t ->
  kernel:int ->
  stride:int ->
  padding:int ->
  Gem_util.Matrix.t
(** Lowers an NHWC input into the patch matrix of a [kernel x kernel]
    convolution: rows are output pixels (n*oh*ow), columns are
    [kernel*kernel*channels] patch elements, zero-padded at the borders.
    This is the transform the optional hardware im2col block performs
    on-the-fly, and the host CPU performs in software when the block is
    absent (the Fig. 7 trade-off). *)

val conv_output_dim : in_dim:int -> kernel:int -> stride:int -> padding:int -> int

val transpose : Gem_util.Matrix.t -> Gem_util.Matrix.t
(** The transposer block (used to feed A^T in OS dataflow). *)
