(** A single processing element — one multiply-accumulate per cycle.

    A PE holds one stationary operand in a register and combines the two
    streaming operands flowing through it. Under the weight-stationary
    dataflow the stationary value is a weight and partial sums flow
    vertically; under output-stationary the stationary value is the output
    accumulator and both inputs stream. Arithmetic saturates in the
    accumulator type, matching the integer RTL datapath. *)

type ws_out = { a_out : int; psum_out : int }

val ws_step : acc_type:Dtype.t -> weight:int -> a_in:int -> psum_in:int -> ws_out
(** [psum_out = sat (psum_in + a_in * weight)]; [a_out] forwards [a_in]. *)

type os_out = { a_out : int; b_out : int; acc : int }

val os_step : acc_type:Dtype.t -> acc:int -> a_in:int -> b_in:int -> os_out
(** [acc' = sat (acc + a_in * b_in)]; both streams forward. *)
