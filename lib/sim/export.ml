module Stats = Gem_util.Stats
module J = Gem_util.Jsonx
module Table = Gem_util.Table

(* Per-component aggregates fed by Acquire/Transfer events. *)
type comp = {
  c_name : string;
  c_lat : Stats.Histogram.t; (* queue latency: service start - request *)
  c_busy : Stats.Series.t; (* busy cycles, attributed to the start window *)
  c_backlog : Stats.Series.t; (* outstanding occupancy: finish - request *)
  c_bytes : Stats.Series.t; (* transferred bytes per window *)
  mutable c_acquires : int;
  mutable c_transfers : int;
}

type fault_mark = {
  f_component : string;
  f_time : Time.cycles;
  f_kind : string;
  f_detail : string;
}

type t = {
  engine : Engine.t;
  window : int;
  lat_range : float;
  lat_buckets : int;
  recorder : Span.t;
  spans_on : bool;
  comps : (string, comp) Hashtbl.t;
  mutable comp_order : string list; (* first-seen, reversed *)
  mutable faults : fault_mark list; (* reversed *)
}

let comp_for t name =
  match Hashtbl.find_opt t.comps name with
  | Some c -> c
  | None ->
      let w = float_of_int t.window in
      let c =
        {
          c_name = name;
          c_lat = Stats.Histogram.create ~buckets:t.lat_buckets ~range:t.lat_range;
          c_busy = Stats.Series.create ~window:w;
          c_backlog = Stats.Series.create ~window:w;
          c_bytes = Stats.Series.create ~window:w;
          c_acquires = 0;
          c_transfers = 0;
        }
      in
      Hashtbl.add t.comps name c;
      t.comp_order <- name :: t.comp_order;
      c

let on_event t (ev : Engine.event) =
  (match ev with
  | Engine.Acquire { component; time; start; finish } ->
      let c = comp_for t component in
      c.c_acquires <- c.c_acquires + 1;
      Stats.Histogram.add c.c_lat (float_of_int (start - time));
      Stats.Series.add c.c_busy ~time:(float_of_int start)
        (float_of_int (finish - start));
      Stats.Series.add c.c_backlog ~time:(float_of_int time)
        (float_of_int (finish - time))
  | Engine.Transfer { component; time; bytes; _ } ->
      let c = comp_for t component in
      c.c_transfers <- c.c_transfers + 1;
      Stats.Series.add c.c_bytes ~time:(float_of_int time) (float_of_int bytes)
  | Engine.Fault { component; time; kind; detail } ->
      t.faults <-
        { f_component = component; f_time = time; f_kind = kind; f_detail = detail }
        :: t.faults
  | Engine.Span_open _ | Engine.Span_close _ | Engine.Translate _
  | Engine.Note _ ->
      ());
  if t.spans_on then Span.on_event t.recorder ev

let attach ?(window = 65536) ?(lat_range = 4096.) ?(lat_buckets = 64)
    ?(spans = true) ?acquire_spans engine =
  if window <= 0 then invalid_arg "Export.attach: window <= 0";
  let t =
    {
      engine;
      window;
      lat_range;
      lat_buckets;
      recorder = Span.create ?acquire_spans ();
      spans_on = spans;
      comps = Hashtbl.create 16;
      comp_order = [];
      faults = [];
    }
  in
  Engine.add_sink engine (on_event t);
  t

let recorder t = t.recorder
let engine t = t.engine
let finalize t = Span.finalize t.recorder ~horizon:(Engine.horizon t.engine)

(* --- track table ---------------------------------------------------------

   One Chrome "process" per core scope (shared components form the "soc"
   process), one "thread" per component. Order is the engine registration
   order, which is construction order and thus deterministic; components
   that emitted events without registering (unit tests with bare engines)
   are appended in sorted order. *)

type track = { tk_name : string; tk_scope : string; tk_pid : int; tk_tid : int }

let scope_of_name name =
  match String.index_opt name '/' with
  | Some i -> String.sub name 0 i
  | None -> "soc"

let tracks t =
  let registered = List.map fst (Engine.components t.engine) in
  let seen = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace seen n ()) registered;
  let extra = ref [] in
  let note n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      extra := n :: !extra
    end
  in
  List.iter note (List.rev t.comp_order);
  Span.iter t.recorder (fun s -> note s.Span.component);
  let names = registered @ List.sort compare !extra in
  let pids = Hashtbl.create 8 in
  let next_pid = ref 0 in
  let tids = Hashtbl.create 8 in
  List.map
    (fun name ->
      let scope = scope_of_name name in
      let pid =
        match Hashtbl.find_opt pids scope with
        | Some p -> p
        | None ->
            incr next_pid;
            Hashtbl.add pids scope !next_pid;
            !next_pid
      in
      let tid =
        let n = Option.value ~default:0 (Hashtbl.find_opt tids scope) + 1 in
        Hashtbl.replace tids scope n;
        n
      in
      { tk_name = name; tk_scope = scope; tk_pid = pid; tk_tid = tid })
    names

(* --- chrome trace export ------------------------------------------------- *)

(* The file is one big JSON array. Each event is built as a Jsonx value and
   printed on its own line, so the emitter stays deterministic and the
   whole file still parses as standard JSON. *)
let write_chrome t out =
  let tks = tracks t in
  let track_tbl = Hashtbl.create 32 in
  List.iter (fun tk -> Hashtbl.replace track_tbl tk.tk_name tk) tks;
  let track name =
    match Hashtbl.find_opt track_tbl name with
    | Some tk -> tk
    | None -> { tk_name = name; tk_scope = "soc"; tk_pid = 1; tk_tid = 0 }
  in
  let first = ref true in
  let event j =
    if !first then first := false else out ",\n";
    out (J.to_string j)
  in
  out "[\n";
  (* A wrapped engine ring silently lost history; say so in-band rather
     than shipping a trace that looks complete. Only emitted when events
     were actually dropped, so unwrapped traces are byte-identical to
     before. *)
  let dropped = Engine.dropped_events t.engine in
  if dropped > 0 then
    event
      (J.Obj
         [
           ("ph", J.String "i");
           ("name", J.String "dropped_events");
           ("cat", J.String "meta");
           ("s", J.String "g");
           ("pid", J.Int 0);
           ("tid", J.Int 0);
           ("ts", J.Int 0);
           ("args", J.Obj [ ("dropped", J.Int dropped) ]);
         ]);
  (* Metadata: process and thread names. *)
  let seen_pid = Hashtbl.create 8 in
  List.iter
    (fun tk ->
      if not (Hashtbl.mem seen_pid tk.tk_pid) then begin
        Hashtbl.replace seen_pid tk.tk_pid ();
        event
          (J.Obj
             [
               ("ph", J.String "M");
               ("name", J.String "process_name");
               ("pid", J.Int tk.tk_pid);
               ("args", J.Obj [ ("name", J.String tk.tk_scope) ]);
             ]);
        event
          (J.Obj
             [
               ("ph", J.String "M");
               ("name", J.String "process_sort_index");
               ("pid", J.Int tk.tk_pid);
               ("args", J.Obj [ ("sort_index", J.Int tk.tk_pid) ]);
             ])
      end;
      event
        (J.Obj
           [
             ("ph", J.String "M");
             ("name", J.String "thread_name");
             ("pid", J.Int tk.tk_pid);
             ("tid", J.Int tk.tk_tid);
             ("args", J.Obj [ ("name", J.String tk.tk_name) ]);
           ]);
      event
        (J.Obj
           [
             ("ph", J.String "M");
             ("name", J.String "thread_sort_index");
             ("pid", J.Int tk.tk_pid);
             ("tid", J.Int tk.tk_tid);
             ("args", J.Obj [ ("sort_index", J.Int tk.tk_tid) ]);
           ]))
    tks;
  (* Spans. Network and layer spans obey sync-slice stack discipline on
     their track; kernels, commands and DMA bursts overlap their siblings
     (issue-side pipelining), so they render as async b/e pairs. *)
  Span.iter t.recorder (fun s ->
      let tk = track s.Span.component in
      let args =
        ("span", J.Int s.Span.id)
        :: ("parent", J.Int s.Span.parent)
        :: List.map (fun (k, v) -> (k, J.String v)) s.Span.args
      in
      let t1 = if s.Span.t1 < 0 then s.Span.t0 else s.Span.t1 in
      match s.Span.cat with
      | "network" | "layer" | "acquire" ->
          event
            (J.Obj
               [
                 ("ph", J.String "X");
                 ("name", J.String s.Span.name);
                 ("cat", J.String s.Span.cat);
                 ("pid", J.Int tk.tk_pid);
                 ("tid", J.Int tk.tk_tid);
                 ("ts", J.Int s.Span.t0);
                 ("dur", J.Int (t1 - s.Span.t0));
                 ("args", J.Obj args);
               ])
      | _ ->
          event
            (J.Obj
               [
                 ("ph", J.String "b");
                 ("name", J.String s.Span.name);
                 ("cat", J.String s.Span.cat);
                 ("id", J.Int s.Span.id);
                 ("pid", J.Int tk.tk_pid);
                 ("tid", J.Int tk.tk_tid);
                 ("ts", J.Int s.Span.t0);
                 ("args", J.Obj args);
               ]);
          event
            (J.Obj
               [
                 ("ph", J.String "e");
                 ("name", J.String s.Span.name);
                 ("cat", J.String s.Span.cat);
                 ("id", J.Int s.Span.id);
                 ("pid", J.Int tk.tk_pid);
                 ("tid", J.Int tk.tk_tid);
                 ("ts", J.Int t1);
               ]));
  (* Counter tracks: windowed utilization, outstanding occupancy and
     transferred bytes per component with activity. *)
  let counter ~name ~pid ~ts ~key v =
    event
      (J.Obj
         [
           ("ph", J.String "C");
           ("name", J.String name);
           ("pid", J.Int pid);
           ("ts", J.Int ts);
           ("args", J.Obj [ (key, v) ]);
         ])
  in
  List.iter
    (fun tk ->
      match Hashtbl.find_opt t.comps tk.tk_name with
      | None -> ()
      | Some c ->
          let w = float_of_int t.window in
          Array.iter
            (fun (time, sum, _) ->
              counter
                ~name:(tk.tk_name ^ " util %")
                ~pid:tk.tk_pid ~ts:(int_of_float time) ~key:"value"
                (J.Float (100. *. sum /. w)))
            (Stats.Series.window_totals c.c_busy);
          Array.iter
            (fun (time, mean) ->
              counter
                ~name:(tk.tk_name ^ " outstanding")
                ~pid:tk.tk_pid ~ts:(int_of_float time) ~key:"cycles"
                (J.Float mean))
            (Stats.Series.windows c.c_backlog);
          if c.c_transfers > 0 then
            Array.iter
              (fun (time, sum, _) ->
                counter
                  ~name:(tk.tk_name ^ " bytes")
                  ~pid:tk.tk_pid ~ts:(int_of_float time) ~key:"value"
                  (J.Int (int_of_float sum)))
              (Stats.Series.window_totals c.c_bytes))
    tks;
  (* Faults as instant events on their component's track. *)
  List.iter
    (fun f ->
      let tk = track f.f_component in
      event
        (J.Obj
           [
             ("ph", J.String "i");
             ("name", J.String f.f_kind);
             ("cat", J.String "fault");
             ("s", J.String "t");
             ("pid", J.Int tk.tk_pid);
             ("tid", J.Int tk.tk_tid);
             ("ts", J.Int f.f_time);
             ("args", J.Obj [ ("detail", J.String f.f_detail) ]);
           ]))
    (List.rev t.faults);
  out "\n]\n"

let chrome_string t =
  let buf = Buffer.create 65536 in
  write_chrome t (Buffer.add_string buf);
  Buffer.contents buf

let write_chrome_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_chrome t (output_string oc))

(* --- summaries ------------------------------------------------------------ *)

let latency t =
  List.filter_map
    (fun tk ->
      match Hashtbl.find_opt t.comps tk.tk_name with
      | Some c when c.c_acquires > 0 ->
          Some (tk.tk_name, c.c_acquires, Stats.Histogram.summary c.c_lat)
      | _ -> None)
    (tracks t)

(* --- text report ---------------------------------------------------------- *)

let fmt_cycles f = if Float.is_nan f then "-" else Table.fmt_f ~dec:1 f

let report t =
  let horizon = Engine.horizon t.engine in
  let buf = Buffer.create 4096 in
  (* Per-layer breakdown from the span tree. *)
  let layers = ref [] and kernels = Hashtbl.create 16 in
  let commands = Hashtbl.create 16 in
  (* layer id of a span: nearest ancestor with cat = "layer" *)
  let rec layer_of id =
    if id < 0 then -1
    else
      let s = Span.get t.recorder id in
      if s.Span.cat = "layer" then id else layer_of s.Span.parent
  in
  Span.iter t.recorder (fun s ->
      match s.Span.cat with
      | "layer" -> layers := s :: !layers
      | "kernel" ->
          let l = layer_of s.Span.parent in
          let prev = Option.value ~default:[] (Hashtbl.find_opt kernels l) in
          if not (List.mem s.Span.name prev) then
            Hashtbl.replace kernels l (s.Span.name :: prev)
      | "command" ->
          let l = layer_of s.Span.parent in
          Hashtbl.replace commands l
            (Option.value ~default:0 (Hashtbl.find_opt commands l) + 1)
      | _ -> ());
  let layers = List.rev !layers in
  (* Multi-core runs repeat layer names; prefix each row with its core so
     rows line up with the core-prefixed component names elsewhere. *)
  let scopes =
    List.sort_uniq compare
      (List.map (fun (s : Span.span) -> scope_of_name s.Span.component) layers)
  in
  let label (s : Span.span) =
    match scopes with
    | [] | [ _ ] -> s.Span.name
    | _ -> scope_of_name s.Span.component ^ ":" ^ s.Span.name
  in
  if layers <> [] then begin
    let tbl =
      Table.create
        ~title:
          (Printf.sprintf "Layer profile (horizon = %s cycles)"
             (Table.fmt_int horizon))
        [ "Layer"; "Kernels"; "Commands"; "Cycles"; "Share" ]
    in
    List.iter (fun i -> Table.set_align tbl i Table.Right) [ 2; 3; 4 ];
    List.iter
      (fun (s : Span.span) ->
        let cycles = max 0 (s.Span.t1 - s.Span.t0) in
        let share =
          if horizon <= 0 then 0.
          else 100. *. float_of_int cycles /. float_of_int horizon
        in
        Table.add_row tbl
          [
            label s;
            String.concat "+"
              (List.rev
                 (Option.value ~default:[]
                    (Hashtbl.find_opt kernels s.Span.id)));
            Table.fmt_int
              (Option.value ~default:0 (Hashtbl.find_opt commands s.Span.id));
            Table.fmt_int cycles;
            Table.fmt_pct share;
          ])
      layers;
    Buffer.add_string buf (Table.render tbl);
    Buffer.add_char buf '\n'
  end;
  (* Queue-latency distribution per component. *)
  (match latency t with
  | [] -> ()
  | rows ->
      let tbl =
        Table.create ~title:"Queue latency (cycles from request to service)"
          [ "Component"; "Acquires"; "p50"; "p95"; "p99"; "Max" ]
      in
      List.iter (fun i -> Table.set_align tbl i Table.Right) [ 1; 2; 3; 4; 5 ];
      List.iter
        (fun (name, acquires, (s : Stats.Histogram.summary)) ->
          Table.add_row tbl
            [
              name;
              Table.fmt_int acquires;
              fmt_cycles s.Stats.Histogram.p50;
              fmt_cycles s.Stats.Histogram.p95;
              fmt_cycles s.Stats.Histogram.p99;
              fmt_cycles s.Stats.Histogram.max;
            ])
        rows;
      Buffer.add_string buf (Table.render tbl));
  (* Span bookkeeping anomalies are worth surfacing, not hiding. *)
  let orphans = Span.orphan_closes t.recorder
  and forced = Span.forced_closes t.recorder in
  if orphans > 0 || forced > 0 then
    Buffer.add_string buf
      (Printf.sprintf "span anomalies: %d orphan close(s), %d forced close(s)\n"
         orphans forced);
  (* Ring truncation must not be silent: the retained-event view is what
     [events]-based consumers see, and it is incomplete once wrapped. *)
  let dropped = Engine.dropped_events t.engine in
  if dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "trace ring wrapped: %d of %d event(s) dropped from the retained view\n"
         dropped
         (Engine.event_count t.engine));
  Buffer.contents buf

(* --- streaming chrome export ----------------------------------------------

   The batch exporter above buffers the whole span tree in memory before
   writing; long serving runs would grow without bound. The streaming
   writer is an engine sink that appends Chrome events to its output as
   they retire: async spans (kernel/command/dma/request) cost nothing to
   hold — the "b" half is written at open — and sync slices
   (network/layer) are held only while open, so memory is bounded by the
   span nesting depth, not the run length.

   Track metadata is emitted lazily, the first time a component appears;
   because the simulation is deterministic, first-appearance order is
   too, and two identical runs stream byte-identical files. Counter
   tracks and queue-latency aggregation are deliberately out of scope —
   attach a batch collector alongside when those are wanted. *)

module Streaming = struct
  type frame = {
    sf_id : int;
    sf_parent : int;
    sf_name : string;
    sf_cat : string;
    sf_component : string;
    sf_t0 : Time.cycles;
    sf_args : (string * string) list;
  }

  type stream = {
    st_engine : Engine.t;
    st_out : string -> unit;
    mutable st_close : unit -> unit;
    mutable st_first : bool;
    st_pids : (string, int) Hashtbl.t; (* scope -> pid *)
    mutable st_next_pid : int;
    st_tid_counts : (string, int) Hashtbl.t; (* scope -> tids handed out *)
    st_tracks : (string, int * int) Hashtbl.t; (* component -> (pid, tid) *)
    st_stacks : (string, frame list ref) Hashtbl.t; (* scope -> open spans *)
    st_scope_memo : (string, string) Hashtbl.t;
    mutable st_scope : string; (* last scope that opened a span *)
    mutable st_next_id : int;
    mutable st_orphans : int;
    mutable st_forced : int;
    mutable st_events : int;
    mutable st_finished : bool;
  }

  type t = stream

  let event t j =
    if t.st_first then t.st_first <- false else t.st_out ",\n";
    t.st_out (J.to_string j);
    t.st_events <- t.st_events + 1

  (* Same dynamic scoping as Span.on_event: unprefixed (shared)
     components attribute to the scope that most recently opened a span,
     which is the executing core. *)
  let dyn_scope t component =
    match Hashtbl.find_opt t.st_scope_memo component with
    | Some s -> s
    | None -> (
        match String.index_opt component '/' with
        | Some i ->
            let s = String.sub component 0 i in
            Hashtbl.replace t.st_scope_memo component s;
            s
        | None -> if t.st_scope = "" then component else t.st_scope)

  let stack_for t scope =
    match Hashtbl.find_opt t.st_stacks scope with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add t.st_stacks scope s;
        s

  (* Track assignment mirrors the batch exporter (one process per static
     scope, one thread per component) but is lazy: metadata rows are
     written right before the first event that needs them. *)
  let track t component =
    match Hashtbl.find_opt t.st_tracks component with
    | Some pt -> pt
    | None ->
        let scope = scope_of_name component in
        let pid =
          match Hashtbl.find_opt t.st_pids scope with
          | Some p -> p
          | None ->
              t.st_next_pid <- t.st_next_pid + 1;
              let p = t.st_next_pid in
              Hashtbl.add t.st_pids scope p;
              event t
                (J.Obj
                   [
                     ("ph", J.String "M");
                     ("name", J.String "process_name");
                     ("pid", J.Int p);
                     ("args", J.Obj [ ("name", J.String scope) ]);
                   ]);
              event t
                (J.Obj
                   [
                     ("ph", J.String "M");
                     ("name", J.String "process_sort_index");
                     ("pid", J.Int p);
                     ("args", J.Obj [ ("sort_index", J.Int p) ]);
                   ]);
              p
        in
        let tid =
          let n =
            Option.value ~default:0 (Hashtbl.find_opt t.st_tid_counts scope) + 1
          in
          Hashtbl.replace t.st_tid_counts scope n;
          n
        in
        event t
          (J.Obj
             [
               ("ph", J.String "M");
               ("name", J.String "thread_name");
               ("pid", J.Int pid);
               ("tid", J.Int tid);
               ("args", J.Obj [ ("name", J.String component) ]);
             ]);
        event t
          (J.Obj
             [
               ("ph", J.String "M");
               ("name", J.String "thread_sort_index");
               ("pid", J.Int pid);
               ("tid", J.Int tid);
               ("args", J.Obj [ ("sort_index", J.Int tid) ]);
             ]);
        Hashtbl.add t.st_tracks component (pid, tid);
        (pid, tid)

  let is_sync cat = cat = "network" || cat = "layer" || cat = "acquire"

  let frame_args fr =
    ("span", J.Int fr.sf_id)
    :: ("parent", J.Int fr.sf_parent)
    :: List.map (fun (k, v) -> (k, J.String v)) fr.sf_args

  (* Writes a frame's terminating record: the full X slice for sync
     categories (only now is the duration known), the "e" half for async
     ones (their "b" went out at open time). *)
  let close_frame t fr ~time =
    let pid, tid = track t fr.sf_component in
    if is_sync fr.sf_cat then
      event t
        (J.Obj
           [
             ("ph", J.String "X");
             ("name", J.String fr.sf_name);
             ("cat", J.String fr.sf_cat);
             ("pid", J.Int pid);
             ("tid", J.Int tid);
             ("ts", J.Int fr.sf_t0);
             ("dur", J.Int (time - fr.sf_t0));
             ("args", J.Obj (frame_args fr));
           ])
    else
      event t
        (J.Obj
           [
             ("ph", J.String "e");
             ("name", J.String fr.sf_name);
             ("cat", J.String fr.sf_cat);
             ("id", J.Int fr.sf_id);
             ("pid", J.Int pid);
             ("tid", J.Int tid);
             ("ts", J.Int time);
           ])

  let on_event t (ev : Engine.event) =
    if not t.st_finished then
      match ev with
      | Engine.Span_open { component; time; name; cat; args } ->
          let scope = dyn_scope t component in
          t.st_scope <- scope;
          let stack = stack_for t scope in
          let parent =
            match !stack with [] -> -1 | fr :: _ -> fr.sf_id
          in
          let fr =
            {
              sf_id = t.st_next_id;
              sf_parent = parent;
              sf_name = name;
              sf_cat = cat;
              sf_component = component;
              sf_t0 = time;
              sf_args = args;
            }
          in
          t.st_next_id <- t.st_next_id + 1;
          stack := fr :: !stack;
          if not (is_sync cat) then begin
            let pid, tid = track t component in
            event t
              (J.Obj
                 [
                   ("ph", J.String "b");
                   ("name", J.String name);
                   ("cat", J.String cat);
                   ("id", J.Int fr.sf_id);
                   ("pid", J.Int pid);
                   ("tid", J.Int tid);
                   ("ts", J.Int time);
                   ("args", J.Obj (frame_args fr));
                 ])
          end
      | Engine.Span_close { component; time; name } ->
          let scope = dyn_scope t component in
          let stack = stack_for t scope in
          if List.exists (fun fr -> fr.sf_name = name) !stack then begin
            (* Same discipline as Span: close the innermost open span
               with this name; anything still open inside it is
               force-closed at the same stamp. *)
            let rec close = function
              | [] -> []
              | fr :: rest ->
                  close_frame t fr ~time;
                  if fr.sf_name = name then rest
                  else begin
                    t.st_forced <- t.st_forced + 1;
                    close rest
                  end
            in
            stack := close !stack
          end
          else t.st_orphans <- t.st_orphans + 1
      | Engine.Fault { component; time; kind; detail } ->
          let pid, tid = track t component in
          event t
            (J.Obj
               [
                 ("ph", J.String "i");
                 ("name", J.String kind);
                 ("cat", J.String "fault");
                 ("s", J.String "t");
                 ("pid", J.Int pid);
                 ("tid", J.Int tid);
                 ("ts", J.Int time);
                 ("args", J.Obj [ ("detail", J.String detail) ]);
               ])
      | Engine.Acquire _ | Engine.Transfer _ | Engine.Translate _
      | Engine.Note _ ->
          ()

  let attach engine ~out =
    let t =
      {
        st_engine = engine;
        st_out = out;
        st_close = (fun () -> ());
        st_first = true;
        st_pids = Hashtbl.create 8;
        st_next_pid = 0;
        st_tid_counts = Hashtbl.create 8;
        st_tracks = Hashtbl.create 32;
        st_stacks = Hashtbl.create 8;
        st_scope_memo = Hashtbl.create 16;
        st_scope = "";
        st_next_id = 0;
        st_orphans = 0;
        st_forced = 0;
        st_events = 0;
        st_finished = false;
      }
    in
    out "[\n";
    Engine.add_sink engine (on_event t);
    t

  let attach_file engine path =
    let oc = open_out path in
    let t = attach engine ~out:(output_string oc) in
    t.st_close <- (fun () -> close_out oc);
    t

  let finish t =
    if not t.st_finished then begin
      let horizon = Engine.horizon t.st_engine in
      (* Deterministic sweep order for still-open frames. *)
      let scopes =
        List.sort compare
          (Hashtbl.fold (fun k _ acc -> k :: acc) t.st_stacks [])
      in
      List.iter
        (fun scope ->
          let stack = stack_for t scope in
          List.iter
            (fun fr ->
              t.st_forced <- t.st_forced + 1;
              close_frame t fr ~time:horizon)
            !stack;
          stack := [])
        scopes;
      t.st_out "\n]\n";
      t.st_finished <- true;
      t.st_close ()
    end

  let events_written t = t.st_events
  let orphan_closes t = t.st_orphans
  let forced_closes t = t.st_forced
end
