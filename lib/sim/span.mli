(** Hierarchical spans over the engine's event stream.

    A span is a named interval of simulated time (begin/end cycle stamps)
    with a parent link and free-form attributes. Components open and close
    spans by emitting {!Engine.Span_open}/{!Engine.Span_close} events —
    usually via {!emit_open}/{!emit_close}, which are no-ops unless the
    engine is {!Engine.live} — and a recorder attached as an engine sink
    rebuilds the tree:

    {v network > layer > kernel > ISA command > resource acquisition v}

    Nesting is tracked per {e scope}: the [coreN] prefix of the component
    name. Each scope keeps its own stack of open spans, so interleaved
    multi-core runs cannot cross-link one core's commands under another
    core's layer. Events from shared, unprefixed components ([l2],
    [dram], ...) attach to the scope that opened a span most recently —
    correct here because cores execute one operation at a time.

    Close events are matched by name against the scope's stack. A close
    with no matching open is counted as an {e orphan} and ignored; a close
    that skips over inner open spans force-closes them (counted in
    {!forced_closes}), so one missing close cannot corrupt the rest of the
    tree. *)

type span = {
  id : int;  (** index in recording order; stable span identifier *)
  parent : int;  (** [id] of the enclosing span, [-1] for roots *)
  name : string;
  cat : string;  (** hierarchy level: network/layer/kernel/command/... *)
  component : string;  (** the track the span renders on *)
  t0 : Time.cycles;
  mutable t1 : Time.cycles;  (** [-1] while the span is still open *)
  args : (string * string) list;
}

type t
(** A span recorder; feed it events via {!on_event} or {!attach}. *)

val create : ?acquire_spans:(string -> bool) -> unit -> t
(** [acquire_spans component] decides whether [Acquire] events on
    [component] become leaf spans (category ["acquire"], spanning service
    start to finish). Default: never — full runs see millions of acquires,
    which belong in histograms, not individual spans. *)

val attach : ?acquire_spans:(string -> bool) -> Engine.t -> t
(** {!create} + {!Engine.add_sink}. *)

val on_event : t -> Engine.event -> unit
(** Processes one event; non-span, non-acquire events are ignored. *)

val finalize : t -> horizon:Time.cycles -> unit
(** Force-closes every still-open span at [horizon] (counted in
    {!forced_closes}) and empties the stacks. Call once after a run; spans
    a fault aborted mid-flight then still carry an end stamp. *)

(* --- emission helpers --------------------------------------------------- *)

val emit_open :
  Engine.t ->
  component:string ->
  time:Time.cycles ->
  ?cat:string ->
  ?args:(string * string) list ->
  string ->
  unit
(** Emits [Span_open] when the engine is {!Engine.live}; otherwise does
    nothing. [cat] defaults to ["span"]. Call sites on hot paths should
    additionally guard argument construction behind {!Engine.live}. *)

val emit_close : Engine.t -> component:string -> time:Time.cycles -> string -> unit

(* --- accessors ----------------------------------------------------------- *)

val count : t -> int
(** Spans recorded so far; ids are [0 .. count - 1]. *)

val get : t -> int -> span
(** Raises [Invalid_argument] for an out-of-range id. *)

val iter : t -> (span -> unit) -> unit
(** In recording order (parents before their children). *)

val to_list : t -> span list

val open_count : t -> int
(** Spans currently open across all scopes. *)

val orphan_closes : t -> int
(** Closes that matched no open span and were dropped. *)

val forced_closes : t -> int
(** Spans closed implicitly by a skipping close or by {!finalize}. *)
