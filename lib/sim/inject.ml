type target = Dma_error | Tlb_drop | Unmap

type t = {
  seed : int;
  rate : float;
  dma : Gem_util.Rng.t;
  tlb : Gem_util.Rng.t;
  unmap : Gem_util.Rng.t;
  mutable dma_fired : int;
  mutable tlb_fired : int;
  mutable unmap_fired : int;
}

let create ~seed ~rate () =
  let rate = Float.max 0.0 (Float.min 1.0 rate) in
  (* One independent stream per target: the per-target roll sequences are
     stable even when components roll at different relative frequencies. *)
  let root = Gem_util.Rng.create ~seed in
  let dma = Gem_util.Rng.split root in
  let tlb = Gem_util.Rng.split root in
  let unmap = Gem_util.Rng.split root in
  { seed; rate; dma; tlb; unmap; dma_fired = 0; tlb_fired = 0; unmap_fired = 0 }

let seed t = t.seed
let rate t = t.rate

let fire t target =
  let rng =
    match target with Dma_error -> t.dma | Tlb_drop -> t.tlb | Unmap -> t.unmap
  in
  let hit = Gem_util.Rng.float rng 1.0 < t.rate in
  if hit then begin
    match target with
    | Dma_error -> t.dma_fired <- t.dma_fired + 1
    | Tlb_drop -> t.tlb_fired <- t.tlb_fired + 1
    | Unmap -> t.unmap_fired <- t.unmap_fired + 1
  end;
  hit

let count t = function
  | Dma_error -> t.dma_fired
  | Tlb_drop -> t.tlb_fired
  | Unmap -> t.unmap_fired

let total t = t.dma_fired + t.tlb_fired + t.unmap_fired

module J = Gem_util.Jsonx
module Snap = Gem_util.Snap

let to_json t =
  J.Obj
    [ ("seed", J.Int t.seed);
      ("rate", J.Float t.rate);
      ("dma", Snap.of_i64 (Gem_util.Rng.state t.dma));
      ("tlb", Snap.of_i64 (Gem_util.Rng.state t.tlb));
      ("unmap", Snap.of_i64 (Gem_util.Rng.state t.unmap));
      ("dma_fired", J.Int t.dma_fired);
      ("tlb_fired", J.Int t.tlb_fired);
      ("unmap_fired", J.Int t.unmap_fired) ]

let of_json j =
  let t = create ~seed:(Snap.get_int "seed" j) ~rate:(Snap.get_float "rate" j) () in
  Gem_util.Rng.set_state t.dma (Snap.get_i64 "dma" j);
  Gem_util.Rng.set_state t.tlb (Snap.get_i64 "tlb" j);
  Gem_util.Rng.set_state t.unmap (Snap.get_i64 "unmap" j);
  t.dma_fired <- Snap.get_int "dma_fired" j;
  t.tlb_fired <- Snap.get_int "tlb_fired" j;
  t.unmap_fired <- Snap.get_int "unmap_fired" j;
  t

let describe t =
  Printf.sprintf
    "inject seed=%d rate=%g: %d dma errors, %d tlb drops, %d unmaps" t.seed
    t.rate t.dma_fired t.tlb_fired t.unmap_fired
