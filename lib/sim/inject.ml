type target = Dma_error | Tlb_drop | Unmap

type t = {
  seed : int;
  rate : float;
  dma : Gem_util.Rng.t;
  tlb : Gem_util.Rng.t;
  unmap : Gem_util.Rng.t;
  mutable dma_fired : int;
  mutable tlb_fired : int;
  mutable unmap_fired : int;
}

let create ~seed ~rate () =
  let rate = Float.max 0.0 (Float.min 1.0 rate) in
  (* One independent stream per target: the per-target roll sequences are
     stable even when components roll at different relative frequencies. *)
  let root = Gem_util.Rng.create ~seed in
  let dma = Gem_util.Rng.split root in
  let tlb = Gem_util.Rng.split root in
  let unmap = Gem_util.Rng.split root in
  { seed; rate; dma; tlb; unmap; dma_fired = 0; tlb_fired = 0; unmap_fired = 0 }

let seed t = t.seed
let rate t = t.rate

let fire t target =
  let rng =
    match target with Dma_error -> t.dma | Tlb_drop -> t.tlb | Unmap -> t.unmap
  in
  let hit = Gem_util.Rng.float rng 1.0 < t.rate in
  if hit then begin
    match target with
    | Dma_error -> t.dma_fired <- t.dma_fired + 1
    | Tlb_drop -> t.tlb_fired <- t.tlb_fired + 1
    | Unmap -> t.unmap_fired <- t.unmap_fired + 1
  end;
  hit

let count t = function
  | Dma_error -> t.dma_fired
  | Tlb_drop -> t.tlb_fired
  | Unmap -> t.unmap_fired

let total t = t.dma_fired + t.tlb_fired + t.unmap_fired

let describe t =
  Printf.sprintf
    "inject seed=%d rate=%g: %d dma errors, %d tlb drops, %d unmaps" t.seed
    t.rate t.dma_fired t.tlb_fired t.unmap_fired
