(** Trace collection and export: Chrome Trace Event JSON and text reports.

    An [Export.t] is an engine sink that aggregates the event stream into
    - a {!Span.t} recorder (the network > layer > kernel > command tree),
    - per-component queue-latency {e histograms} (request-to-service-start
      cycles of every [Acquire] event),
    - windowed {e time series}: busy occupancy, outstanding backlog and
      transferred bytes per fixed-width window of simulated time.

    Two export formats:

    - {!write_chrome} emits Chrome Trace Event JSON, loadable in Perfetto
      ({:https://ui.perfetto.dev}) or [chrome://tracing]. One process lane
      per core (shared memory-system components form a ["soc"] lane), one
      thread track per registered component, X slices for network/layer
      spans, async b/e pairs for kernels, ISA commands and DMA bursts
      (these overlap their siblings, which sync slices cannot express),
      and counter tracks for windowed utilization, outstanding occupancy
      and transferred bytes. Timestamps are cycle numbers presented as
      microseconds. Output is deterministic byte-for-byte: fixed track
      order, insertion-order spans, and {!Gem_util.Jsonx} printing.

    - {!report} renders a plain-text hierarchical profile: per-layer
      breakdown (cycles, share of total, kernels, command count) plus a
      per-component queue-latency table (p50/p95/p99/max).

    Attaching a collector never changes simulated timing — events carry
    timestamps already observed by the clock — so traced runs report
    cycle counts identical to quiet runs. *)

type t

val attach :
  ?window:int ->
  ?lat_range:float ->
  ?lat_buckets:int ->
  ?spans:bool ->
  ?acquire_spans:(string -> bool) ->
  Engine.t ->
  t
(** Registers the collector as a sink on [engine] (making it
    {!Engine.live}) and returns it.

    [window] (default 65536) is the time-series bucket width in cycles.
    [lat_range]/[lat_buckets] (default 4096.0 / 64) shape the queue-latency
    histograms; samples beyond the range clamp into the last bucket while
    the recorded maximum stays exact. [spans:false] drops span and acquire
    events (histograms and series only — what a DSE sweep wants).
    [acquire_spans] is passed to {!Span.create}. *)

val recorder : t -> Span.t
val engine : t -> Engine.t

val finalize : t -> unit
(** {!Span.finalize} at the engine horizon. Call after the run, before
    exporting. Idempotent in effect: already-closed spans are untouched. *)

val latency : t -> (string * int * Gem_util.Stats.Histogram.summary) list
(** Per-component [(name, acquires, latency summary)] in track order. *)

val write_chrome : t -> (string -> unit) -> unit
(** Streams the JSON through the callback (called many times with small
    chunks); full-model traces reach hundreds of MB, so no intermediate
    whole-file string is built. *)

val chrome_string : t -> string
(** {!write_chrome} into a buffer. For tests and small runs. *)

val write_chrome_file : t -> string -> unit
(** {!write_chrome} into a file (buffered). *)

val report : t -> string
(** The plain-text hierarchical profile. Ends with a
    ["trace ring wrapped: ..."] line when the engine's bounded event
    ring overwrote history ({!Engine.dropped_events} > 0); the chrome
    output likewise carries a ["dropped_events"] instant. Runs whose
    ring never wrapped produce byte-identical output to before these
    markers existed. *)

(** Constant-memory Chrome-trace writer for arbitrarily long runs.

    An engine sink that appends events to its output as they retire
    instead of buffering the whole span tree: async spans (kernel,
    command, dma, request) write their ["b"] half at open and ["e"] half
    at close; sync slices (network/layer) are held only while open, so
    live memory is bounded by span nesting depth, not run length. This
    is what [serve --trace-out] uses.

    Differences from the batch exporter: track metadata appears lazily
    (first use) rather than up front, and there are no counter tracks or
    queue-latency aggregates — attach a batch collector alongside when
    those are needed. Determinism is unchanged: a deterministic run
    streams a byte-identical file every time. *)
module Streaming : sig
  type t

  val attach : Engine.t -> out:(string -> unit) -> t
  (** Writes the array opener immediately and registers the sink.
      The engine becomes {!Engine.live}. *)

  val attach_file : Engine.t -> string -> t
  (** {!attach} to a freshly opened file; {!finish} closes it. *)

  val finish : t -> unit
  (** Force-closes any still-open spans at the engine horizon, writes
      the array closer, and releases the output. Idempotent; events
      arriving after [finish] are ignored. *)

  val events_written : t -> int
  val orphan_closes : t -> int
  val forced_closes : t -> int
end
