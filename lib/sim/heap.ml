type 'a entry = { key : Time.cycles; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let size t = t.size

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let push t ~key value =
  let entry = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.data = 0 then t.data <- Array.make 16 entry
  else if t.size >= Array.length t.data then begin
    let grown = Array.make (2 * Array.length t.data) entry in
    Array.blit t.data 0 grown 0 t.size;
    t.data <- grown
  end;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  let i = ref (t.size - 1) in
  while !i > 0 && less t.data.(!i) t.data.((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    swap t !i parent;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap t !i !smallest;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.key, top.value)
  end

let peek_key t = if t.size = 0 then None else Some t.data.(0).key
