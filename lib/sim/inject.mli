(** Deterministic fault injection plans.

    A plan is a set of independent seeded {!Gem_util.Rng} streams, one per
    injectable fault class. Components that hold a plan roll it at their
    decision points (per DMA burst segment, per translation request); a
    roll fires with the configured probability. Because every stream is
    derived from the plan's seed and rolls happen in simulated order, the
    same seed always reproduces the same fault trace — which is what makes
    the dual-core determinism guard hold under injection. *)

(** Which decision point is being rolled. *)
type target =
  | Dma_error  (** fail the current DMA burst segment on the bus *)
  | Tlb_drop  (** invalidate the translation being requested (re-walk) *)
  | Unmap  (** unmap the page being translated (host must remap) *)

type t

val create : seed:int -> rate:float -> unit -> t
(** [create ~seed ~rate ()] builds a plan whose every roll fires with
    probability [rate] (clamped to [0, 1]). Equal seeds give equal
    plans. *)

val seed : t -> int
val rate : t -> float

val fire : t -> target -> bool
(** Rolls [target]'s stream once; true means inject here. Streams are
    independent: rolling one never perturbs the others. *)

val count : t -> target -> int
(** How many times [target] has fired so far. *)

val total : t -> int

val describe : t -> string
(** One-line summary: seed, rate, per-target fire counts. *)

val to_json : t -> Gem_util.Jsonx.t
(** Full plan state: seed, rate, the three RNG cursors and fire counts. *)

val of_json : Gem_util.Jsonx.t -> t
(** Rebuilds a plan mid-stream: subsequent rolls continue exactly where
    the snapshotted plan left off. Raises {!Gem_util.Snap.Malformed}. *)
