(** Bounded event trace for debugging and profiling simulations.

    Recording is off by default; when enabled the trace keeps the most
    recent [capacity] events in a ring buffer so long simulations cannot
    exhaust memory. *)

type event = { time : Time.cycles; tag : string; detail : string }

type t

val create : ?capacity:int -> enabled:bool -> unit -> t
(** Default capacity is 4096 events. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> time:Time.cycles -> tag:string -> string -> unit
(** No-op when disabled. *)

val recordf :
  t -> time:Time.cycles -> tag:string -> ('a, unit, string, unit) format4 -> 'a
(** Like {!record} with a format string; the formatting cost is only paid
    when the trace is enabled. *)

val events : t -> event list
(** Most recent events, oldest first. *)

val count : t -> int
(** Total number of events recorded (including overwritten ones). *)

val pp : Format.formatter -> t -> unit
