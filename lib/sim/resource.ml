type t = {
  name : string;
  mutable id : int;
  mutable busy_until : Time.cycles;
  mutable busy_cycles : Time.cycles;
  mutable requests : int;
  mutable wait_cycles : Time.cycles;
}

let create ~name =
  { name; id = -1; busy_until = 0; busy_cycles = 0; requests = 0; wait_cycles = 0 }

let name t = t.name
let id t = t.id
let set_id t id = t.id <- id

let acquire t ~now ~occupancy =
  if occupancy < 0 then invalid_arg "Resource.acquire: negative occupancy";
  let start = max now t.busy_until in
  t.wait_cycles <- t.wait_cycles + (start - now);
  t.requests <- t.requests + 1;
  (* A zero-occupancy request is a probe of the service slot: it must not
     advance [busy_until], or a later probe would make earlier-in-time
     requesters queue behind simulated time that was never occupied. *)
  if occupancy > 0 then begin
    t.busy_until <- start + occupancy;
    t.busy_cycles <- t.busy_cycles + occupancy
  end;
  start + occupancy

let next_free t ~now = max now t.busy_until

let occupy_until t ~now ~start ~until =
  if start < now then invalid_arg "Resource.occupy_until: start before now";
  if until < start then invalid_arg "Resource.occupy_until: until before start";
  t.wait_cycles <- t.wait_cycles + (start - now);
  t.requests <- t.requests + 1;
  if until > start then begin
    t.busy_cycles <- t.busy_cycles + (until - start);
    if until > t.busy_until then t.busy_until <- until
  end

let busy_until t = t.busy_until
let busy_cycles t = t.busy_cycles
let requests t = t.requests
let wait_cycles t = t.wait_cycles

let utilization t ~horizon =
  if horizon <= 0 then 0.
  else float_of_int t.busy_cycles /. float_of_int horizon

let reset t =
  t.busy_until <- 0;
  t.busy_cycles <- 0;
  t.requests <- 0;
  t.wait_cycles <- 0

let force_state t ~busy_until ~busy_cycles ~requests ~wait_cycles =
  t.busy_until <- busy_until;
  t.busy_cycles <- busy_cycles;
  t.requests <- requests;
  t.wait_cycles <- wait_cycles
