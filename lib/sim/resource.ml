type t = {
  name : string;
  mutable busy_until : Time.cycles;
  mutable busy_cycles : Time.cycles;
  mutable requests : int;
  mutable wait_cycles : Time.cycles;
}

let create ~name =
  { name; busy_until = 0; busy_cycles = 0; requests = 0; wait_cycles = 0 }

let name t = t.name

let acquire t ~now ~occupancy =
  if occupancy < 0 then invalid_arg "Resource.acquire: negative occupancy";
  let start = max now t.busy_until in
  t.wait_cycles <- t.wait_cycles + (start - now);
  t.busy_until <- start + occupancy;
  t.busy_cycles <- t.busy_cycles + occupancy;
  t.requests <- t.requests + 1;
  t.busy_until

let busy_until t = t.busy_until
let busy_cycles t = t.busy_cycles
let requests t = t.requests
let wait_cycles t = t.wait_cycles

let utilization t ~horizon =
  if horizon <= 0 then 0.
  else float_of_int t.busy_cycles /. float_of_int horizon

let reset t =
  t.busy_until <- 0;
  t.busy_cycles <- 0;
  t.requests <- 0;
  t.wait_cycles <- 0
