(** The simulation engine: one shared substrate for timing and
    observability.

    An [Engine.t] is the simulation context every layer of the stack hangs
    off. It owns
    - the {e clock}: a high-water mark of simulated time observed across
      all components;
    - a named {e resource registry}: every bus, DRAM channel, cache port,
      scratchpad bank, page-table walker and mesh pipeline registers
      itself at construction, either as an engine-{e owned}
      {!Resource.t} (serially-occupied, timing-bearing) or as a {e probe}
      (a pure statistics sampler for components whose timing is charged
      elsewhere);
    - a {e typed event stream}: components emit structured {!event}s at
      their boundaries instead of ad-hoc string traces, kept in a bounded
      ring and fanned out to pluggable sinks;
    - {e metric sinks}: per-component busy/wait/utilization counters
      aggregated on demand into {!stat} rows or a rendered table (the
      "where did the cycles go" view behind [gemmini_cli --profile]).

    Components that are constructed without an engine get a fresh private
    one, so unit tests of a single layer need no ceremony; an SoC creates
    one engine and threads it through every core, memory and TLB so that
    contention and attribution are consistent across the whole stack. *)

type t

(** What a registered component is, for grouping and display. *)
type kind =
  | Bus
  | Dram
  | Cache
  | Scratchpad
  | Tlb
  | Ptw
  | Dma
  | Pipeline
  | Host

val kind_label : kind -> string

(** Typed events emitted at component boundaries. *)
type event =
  | Acquire of {
      component : string;
      time : Time.cycles;  (** when the request was made *)
      start : Time.cycles;  (** when service began (>= time if queued) *)
      finish : Time.cycles;  (** when service completed *)
    }
  | Transfer of {
      component : string;
      time : Time.cycles;
      dir : [ `Read | `Write ];
      bytes : int;
    }
  | Translate of { component : string; time : Time.cycles; level : string }
  | Note of { component : string; time : Time.cycles; detail : string }
  | Fault of {
      component : string;
      time : Time.cycles;
      kind : string;  (** {!Fault.cause_label} of the cause *)
      detail : string;  (** {!Fault.cause_detail} of the cause *)
    }
  | Span_open of {
      component : string;  (** track the span renders on *)
      time : Time.cycles;  (** begin stamp *)
      name : string;  (** e.g. a layer name or ISA mnemonic *)
      cat : string;  (** hierarchy level: network/layer/kernel/command/... *)
      args : (string * string) list;  (** free-form attributes *)
    }
  | Span_close of { component : string; time : Time.cycles; name : string }
      (** Closes the innermost open span with this [name] on [component]'s
          scope; see {!Span} for the stack discipline. *)

val event_time : event -> Time.cycles
val event_component : event -> string
val pp_event : Format.formatter -> event -> unit

(** A probe's answer when sampled. *)
type sample = {
  p_requests : int;
  p_busy : Time.cycles;
  p_wait : Time.cycles;
  p_note : string;
}

(** One aggregated metric row. *)
type stat = {
  stat_name : string;
  stat_kind : kind;
  stat_requests : int;
  stat_busy : Time.cycles;
  stat_wait : Time.cycles;
  stat_faults : int;  (** traps attributed to this component *)
  stat_note : string;
}

val create : ?trace_capacity:int -> ?trace:bool -> unit -> t
(** A fresh context. Event tracing is off by default; the ring keeps the
    most recent [trace_capacity] (default 4096) events when on. *)

(* --- registry ---------------------------------------------------------- *)

val resource : ?note:(unit -> string) -> t -> kind:kind -> name:string -> Resource.t
(** Registers and returns an engine-owned resource. Registered names are
    unique: a colliding [name] is deterministically suffixed ([name#2],
    [name#3], ...). [note] supplies free-form detail for reports. *)

val register_probe : t -> kind:kind -> name:string -> sample:(unit -> sample) -> unit
(** Registers a statistics-only component. Probes appear in {!stats} and
    the utilization table but own no timing state; {!reset} does not touch
    the external state they sample. *)

val components : t -> (string * kind) list
(** Registered components in registration order. *)

(* --- timing ------------------------------------------------------------ *)

val acquire :
  t -> Resource.t -> now:Time.cycles -> occupancy:Time.cycles -> Time.cycles
(** {!Resource.acquire} plus clock advance and an [Acquire] event. This is
    the one-call path for requests whose occupancy is known up front. *)

val next_free : t -> Resource.t -> now:Time.cycles -> Time.cycles
(** When a request arriving at [now] could start service. Pure query: no
    counters move. Pair with {!occupy} for requests whose duration is only
    known after downstream simulation (e.g. a DMA burst). *)

val occupy :
  t -> Resource.t -> now:Time.cycles -> start:Time.cycles -> until:Time.cycles -> unit
(** Commits a reservation computed via {!next_free}: charges
    [start - now] wait and [until - start] busy cycles, advances the
    resource and the clock, and emits an [Acquire] event. *)

(* --- clock ------------------------------------------------------------- *)

val now : t -> Time.cycles
(** High-water mark of simulated time observed by the engine. *)

val observe : t -> Time.cycles -> unit
(** Advances the clock to [max (now t) time]. Inside a parallel section
    (see {!enter_parallel}) the calling domain advances only its own
    clock slot; the maxima are folded back into the clock at
    {!exit_parallel}. *)

(* --- parallel sections -------------------------------------------------- *)

val enter_parallel : t -> slots:int -> unit
(** Opens a parallel section with [slots] per-domain clock slots, each
    seeded with the current clock. While open, {!observe} (and therefore
    {!acquire}/{!occupy}) advances the calling domain's slot instead of
    the shared clock, so worker domains never race on it. The engine
    must be quiet ([live t = false]) — the caller guarantees no events
    are emitted from workers. *)

val exit_parallel : t -> unit
(** Closes the section: folds every slot's high-water mark back into the
    clock. Must be called from the coordinating domain after all workers
    have joined. *)

val set_domain_slot : int -> unit
(** Pins the calling domain to clock slot [i] of the open parallel
    section. The coordinating domain keeps the default slot 0. *)

(* --- events ------------------------------------------------------------ *)

val tracing : t -> bool
val set_tracing : t -> bool -> unit

val live : t -> bool
(** True when emitted events go anywhere (tracing on or sinks attached);
    components use this to skip event construction on the hot path. A
    disabled run must allocate no event records at all. *)

val observing : t -> bool
(** Alias of {!live} (the original name; kept for existing callers). *)

val emit : t -> event -> unit
(** Feeds the sinks, and the ring when tracing. Advances the clock. *)

val add_sink : t -> (event -> unit) -> unit
(** Sinks see every event from registration on, regardless of tracing. *)

val events : t -> event list
(** Retained events, oldest first. *)

val event_count : t -> int
(** Total events recorded while tracing (including overwritten ones). *)

val dropped_events : t -> int
(** Events recorded while tracing but overwritten by the wrapping ring —
    the amount of history {!events} silently lost. 0 while the ring has
    not wrapped. Sinks never drop: they see every event at emission. *)

(* --- faults ------------------------------------------------------------ *)

val trap : t -> Fault.t -> 'a
(** Records the fault against its component, advances the clock to the
    fault cycle, emits a [Fault] event when anyone is observing, and
    raises {!Fault.Trap}. The single reporting path for engine-attached
    components. *)

val faults : t -> component:string -> int
(** Traps recorded against [component] (0 for unknown names). *)

val total_faults : t -> int

(* --- metrics ----------------------------------------------------------- *)

val stats : t -> stat list
(** One row per registered component, in registration order. *)

val horizon : t -> Time.cycles
(** Alias of {!now}: the denominator for utilization. *)

val utilization_table : t -> ?horizon:Time.cycles -> unit -> Gem_util.Table.t
(** Per-component utilization/wait table ready for printing. [horizon]
    defaults to the engine clock. *)

val register_metrics : ?prefix:string -> t -> Gem_obs.Metrics.t -> unit
(** Registers pull gauges for the clock, event/drop/fault totals and
    per-component requests/busy/wait under [prefix] (default
    ["engine."]). Sampling happens at registry-snapshot time, never on
    the simulation path. *)

val reset : t -> unit
(** Rewind the clock, clear the ring, zero the fault counters and reset
    every owned resource. Registrations, sinks and probe targets
    survive. *)

(* --- snapshot / restore ------------------------------------------------- *)

val event_to_json : event -> Gem_util.Jsonx.t
(** Deterministic tagged encoding; inverse of {!event_of_json}. *)

val event_of_json : Gem_util.Jsonx.t -> event
(** Raises {!Gem_util.Snap.Malformed} on shape mismatch. *)

val snapshot : t -> Gem_util.Jsonx.t
(** The engine's full mutable state: clock, every owned resource's
    arbitration counters (keyed by unique registered name), fault
    attribution, and the retained event ring (oldest first). Probes are
    excluded — the components they sample serialize their own state. *)

val restore : t -> Gem_util.Jsonx.t -> unit
(** Overwrites the engine's mutable state from a {!snapshot}. The target
    engine must carry the same resource registry (same names, elaborated
    from the same SoC config); any mismatch raises
    {!Gem_util.Snap.Malformed}. Tracing/sink configuration is an observer
    setting and is left untouched. *)
